package firmup_test

import (
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/uir"
)

// buildScenario produces a packed firmware image (bytes, as a user would
// have) plus a query executable for the wget CVE.
func buildScenario(t *testing.T) (imgBytes []byte, queryBytes []byte, hasWget bool) {
	t.Helper()
	c, err := corpus.Build(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	var target *corpus.BuiltImage
	var arch uir.Arch
	for _, bi := range c.Images {
		for _, e := range bi.Exes {
			if e.Pkg == "wget" && e.PkgVersion == "1.15" {
				target = bi
				arch = e.Arch
			}
		}
	}
	if target == nil {
		t.Fatal("no wget 1.15 image in default corpus")
	}
	_, qf, err := corpus.QueryExe("wget", "1.15", arch)
	if err != nil {
		t.Fatal(err)
	}
	return target.Image.Pack(true), qf.Bytes(), true
}

func TestEndToEndSearch(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	img, err := firmup.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Exes) == 0 {
		t.Fatal("no executables")
	}
	q, err := firmup.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := firmup.SearchImage(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("vulnerable procedure not found")
	}
	f := findings[0]
	if f.Confidence < 0.42 || f.Score < 8 {
		t.Errorf("weak finding: %+v", f)
	}
	if f.ProcName == "" {
		t.Error("finding lacks a procedure name")
	}
}

func TestProcedureListing(t *testing.T) {
	_, queryBytes, _ := buildScenario(t)
	q, err := firmup.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	procs := q.Procedures()
	if len(procs) < 20 {
		t.Fatalf("only %d procedures", len(procs))
	}
	found := false
	for _, p := range procs {
		if p.Name == "ftp_retrieve_glob" {
			found = true
			if p.Strands == 0 || p.Blocks == 0 {
				t.Errorf("empty representation: %+v", p)
			}
		}
	}
	if !found {
		t.Error("query listing lacks ftp_retrieve_glob")
	}
}

func TestMatchProcedureSingleTarget(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	img, _ := firmup.OpenImage(imgBytes)
	q, _ := firmup.LoadQueryExecutable(queryBytes)
	var wget *firmup.Executable
	for _, e := range img.Exes {
		if e.Path == "bin/wget" {
			wget = e
		}
	}
	if wget == nil {
		t.Skip("image lacks bin/wget")
	}
	f, steps, err := firmup.MatchProcedure(q, "ftp_retrieve_glob", wget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatalf("no match after %d steps", steps)
	}
}

func TestOpenImageErrors(t *testing.T) {
	if _, err := firmup.OpenImage([]byte("garbage")); err == nil {
		t.Error("garbage image must fail")
	}
	if _, err := firmup.LoadQueryExecutable([]byte("nope")); err == nil {
		t.Error("garbage executable must fail")
	}
}

func TestCarvingFallback(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	// Repack without compression and damage the header magic: the
	// structural unpacker fails, carving must still find executables.
	img, err := firmup.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	_ = img
	c, err := corpus.Build(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	raw := c.Images[0].Image.Pack(false)
	raw[0], raw[1] = 'X', 'X'
	carved, err := firmup.OpenImage(raw)
	if err != nil {
		t.Fatalf("carving fallback failed: %v", err)
	}
	if len(carved.Exes) == 0 {
		t.Error("carving found nothing")
	}
	_ = queryBytes
}

func TestUnknownQueryProcedure(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	img, _ := firmup.OpenImage(imgBytes)
	q, _ := firmup.LoadQueryExecutable(queryBytes)
	if _, err := firmup.SearchImage(q, "no_such_procedure", img, nil); err == nil {
		t.Error("unknown procedure must fail")
	}
}
