package firmup

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"firmup/internal/cfg"
	"firmup/internal/core"
	"firmup/internal/corpusindex"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/snapshot"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// SealedCorpus is the immutable, serve-oriented form of an analysis
// session: a frozen strand vocabulary plus every sealed image's
// executables and inverted index, re-expressed as read-only views. The
// query path — AnalyzeQuery through SearchImage — performs no writes to
// the corpus: query executables are analyzed under per-request overlay
// interners whose private IDs sit above the frozen vocabulary, so their
// sets remain directly comparable with sealed sets while the corpus
// itself is shared, lock-free, by unlimited concurrent readers.
//
// A sealed corpus answers searches identically to the live session it
// was sealed from: same candidate ranking, same acceptance floors, same
// game — byte-identical findings, examined counts and step histograms.
type SealedCorpus struct {
	frozen *corpusindex.Frozen
	images []*SealedImage

	// shards is non-empty only for corpora opened from FWCORP v2 shard
	// files (OpenSealedCorpus / OpenSealedCorpusDir); it drives the
	// per-shard fan-out of corpus-wide searches and Close.
	shards []*sealedShardRef
}

// SealedImage is one firmware image of a sealed corpus.
//
// In-RAM images (Seal, LoadSealedCorpus) carry all executables in
// Exes. Store-backed images (OpenSealedCorpus) leave Exes nil until a
// search needs every executable: individual executables materialize
// from the mapped shard on demand, so access Exes only through
// Executable / search APIs, which fault them in as needed.
type SealedImage struct {
	Vendor  string
	Device  string
	Version string
	Exes    []*Executable
	// Skipped carries the analysis-time skip diagnostics verbatim.
	Skipped []SkipReason

	index   *corpusindex.FrozenIndex
	targets []*sim.Exe

	// tel, when non-nil, is applied to the image's frozen index —
	// immediately for in-RAM images, at first index build for
	// store-backed ones (see SealedCorpus.SetTelemetry).
	tel *corpusindex.Telemetry

	// Store-backed state (nil/zero for in-RAM images).
	store    *sealedStore
	storeImg int // image index within the shard
	nExes    int
	lazy     []lazyExe
	idxOnce  sync.Once
	idxErr   error
	allOnce  sync.Once
	allErr   error
}

// Executable returns the sealed executable with the given in-image
// path, or nil. On a store-backed image this materializes the whole
// image; nil is also returned if the shard fails to decode.
func (im *SealedImage) Executable(path string) *Executable {
	if err := im.ensureAll(); err != nil {
		return nil
	}
	for _, e := range im.Exes {
		if e.Path == path {
			return e
		}
	}
	return nil
}

// IndexedStrands reports the number of postings in the image's sealed
// search index, or 0 when the image was sealed without one (or its
// shard index fails to decode).
func (im *SealedImage) IndexedStrands() int {
	if err := im.ensureIndex(); err != nil {
		return 0
	}
	if im.index == nil {
		return 0
	}
	return im.index.Postings()
}

// Seal freezes the session's current state into an immutable corpus
// over the given images. The live Analyzer and its images stay fully
// usable afterwards — Seal copies what it must (procedure headers,
// posting slabs) and shares what is already final (hash and ID slices,
// CSR rows) — so sealing is cheap relative to analysis while the sealed
// corpus aliases no mutable session state.
//
// Every image must have been analyzed (or loaded) under this session;
// an executable from another session has incomparable dense IDs and is
// rejected.
func (a *Analyzer) Seal(images ...*Image) (*SealedCorpus, error) {
	frozen := a.interner.Freeze()
	sc := &SealedCorpus{frozen: frozen}
	for ii, img := range images {
		si := &SealedImage{
			Vendor:  img.Vendor,
			Device:  img.Device,
			Version: img.Version,
			Skipped: append([]SkipReason(nil), img.Skipped...),
		}
		for _, e := range img.Exes {
			if e.exe.Session() != strand.Interner(a.interner) {
				return nil, fmt.Errorf("firmup: Seal: image %d executable %s was not analyzed under this session", ii, e.Path)
			}
			si.Exes = append(si.Exes, &Executable{Path: e.Path, exe: e.exe.Rebound(frozen), rec: e.rec})
		}
		si.nExes = len(si.Exes)
		si.targets = make([]*sim.Exe, len(si.Exes))
		for i, e := range si.Exes {
			si.targets[i] = e.exe
		}
		if img.index != nil {
			idx, err := corpusindex.NewFrozenIndex(frozen, si.targets, img.index.Rows())
			if err != nil {
				return nil, fmt.Errorf("firmup: Seal: image %d: %w", ii, err)
			}
			// Carry the live index's MinHash slab across the seal: the
			// signatures are over dense IDs, which Freeze and Rebound
			// preserve, so the sealed LSH tier agrees with the live one
			// verbatim.
			if err := idx.SetSignatures(img.index.Signatures()); err != nil {
				return nil, fmt.Errorf("firmup: Seal: image %d: %w", ii, err)
			}
			si.index = idx
		}
		sc.images = append(sc.images, si)
	}
	return sc, nil
}

// Images returns the sealed images in seal order. The slice is shared;
// treat it as read-only.
func (sc *SealedCorpus) Images() []*SealedImage { return sc.images }

// UniqueStrands reports the frozen vocabulary size.
func (sc *SealedCorpus) UniqueStrands() int { return sc.frozen.Size() }

// SetTelemetry attaches prefilter telemetry to every image index of the
// corpus: the exact tier's index.queries / index.fallbacks /
// index.fanout plus the LSH tier's lsh.probes / lsh.fallbacks /
// lsh.candidates. Call before serving searches — store-backed images
// apply the handles when their index first builds, in-RAM images
// immediately. A nil registry detaches.
func (sc *SealedCorpus) SetTelemetry(r *telemetry.Registry) {
	var tel *corpusindex.Telemetry
	if r != nil {
		tel = &corpusindex.Telemetry{
			Queries:       r.Counter("index.queries"),
			Fallbacks:     r.Counter("index.fallbacks"),
			Fanout:        r.Histogram("index.fanout"),
			LSHProbes:     r.Counter("lsh.probes"),
			LSHFallbacks:  r.Counter("lsh.fallbacks"),
			LSHCandidates: r.Histogram("lsh.candidates"),
		}
	}
	for _, im := range sc.images {
		im.tel = tel
		if im.index != nil {
			im.index.SetTelemetry(tel)
		}
	}
}

// Executables reports the total executable count across all images.
// Cheap even when store-backed: counts come from shard metadata, not
// materialization.
func (sc *SealedCorpus) Executables() int {
	n := 0
	for _, im := range sc.images {
		n += im.nExes
	}
	return n
}

// AnalyzeQuery analyzes a query binary against the sealed corpus under
// a fresh per-request overlay interner (see AnalyzeQueryWith).
func (sc *SealedCorpus) AnalyzeQuery(data []byte) (*Executable, error) {
	return sc.AnalyzeQueryWith("query", data, 0)
}

// AnalyzeQueryWith analyzes one FWELF binary for querying this sealed
// corpus, with a bounded procedure-level worker budget (≤ 0 selects
// GOMAXPROCS). The analysis runs under a request-private overlay of the
// frozen vocabulary: strands the corpus knows resolve to their frozen
// IDs, novel strands get private IDs above the vocabulary, and nothing
// in the corpus is written. The returned executable queries this corpus
// on the interned fast paths; against any other corpus it falls back to
// hash-based comparison (still correct, just slower).
func (sc *SealedCorpus) AnalyzeQueryWith(path string, data []byte, workers int) (*Executable, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f, err := obj.Read(data)
	if err != nil {
		return nil, err
	}
	rec, err := cfg.Recover(f)
	if err != nil {
		return nil, fmt.Errorf("firmup: %s: %w", path, err)
	}
	qit := corpusindex.NewQueryInterner(sc.frozen)
	bc := &sim.BuildConfig{Workers: workers}
	return &Executable{Path: path, exe: sim.BuildWith(path, rec, qit, bc), rec: rec}, nil
}

// sealedView adapts one sealed image to the core search layer's
// read-only corpus interface, with the acceptance floors baked in so
// candidate narrowing stays sound (see corpusindex.Candidates).
type sealedView struct {
	img        *SealedImage
	minScore   int
	minRatio   float64
	exhaustive bool
	approx     bool
}

func (v sealedView) Targets() []*sim.Exe { return v.img.targets }

func (v sealedView) Candidates(q *sim.Exe, qi int) ([]int, bool) {
	if v.img.index == nil || v.exhaustive {
		return nil, false
	}
	return v.img.index.CandidateIndicesLSH(q.Procs[qi].Set, v.minScore, v.minRatio, v.approx, nil)
}

// SearchImageDetailed looks for the query executable's procedure in
// every executable of one sealed image, with the search accounting
// exposed. The result is identical to the live Analyzer's
// SearchImageDetailed over the image this one was sealed from.
func (sc *SealedCorpus) SearchImageDetailed(query *Executable, procedure string, img *SealedImage, opt *Options) (*SearchResult, error) {
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	return sc.searchImageIdx(query, qi, img, opt, opt.traceSpan())
}

// searchImageIdx runs one resolved query procedure against one image,
// dispatching between the in-RAM view path and the store-backed lazy
// path. Both produce byte-identical results. parent is the trace span
// the search spans attach under — the caller's TraceSpan for direct
// searches, the per-shard span inside a corpus-wide fan-out.
func (sc *SealedCorpus) searchImageIdx(query *Executable, qi int, img *SealedImage, opt *Options, parent telemetry.SpanID) (*SearchResult, error) {
	if img.store != nil {
		return sc.storeSearch(query, qi, img, opt, parent)
	}
	s := opt.search()
	s.TraceParent = parent
	v := sealedView{
		img:        img,
		minScore:   s.MinScore,
		minRatio:   s.MinRatio,
		exhaustive: opt != nil && opt.Exhaustive,
		approx:     opt != nil && opt.Approx,
	}
	return searchResultFromCore(core.SearchView(query.exe, qi, v, s)), nil
}

// SearchBatch looks for every batch query in one sealed image in a
// single batched game-engine pass (see Analyzer.SearchBatch). Results
// align with queries and are byte-identical to per-query
// SearchImageDetailed calls against this sealed image — and therefore
// to the live session the image was sealed from.
func (sc *SealedCorpus) SearchBatch(queries []BatchQuery, img *SealedImage, opt *Options) ([]*SearchResult, error) {
	cqs, err := coreBatch(queries)
	if err != nil {
		return nil, err
	}
	return sc.searchBatchCore(cqs, img, opt, opt.traceSpan())
}

// searchBatchCore is SearchBatch after query resolution, shared with
// the corpus-wide fan-out so resolution runs once per corpus pass.
func (sc *SealedCorpus) searchBatchCore(cqs []core.BatchQuery, img *SealedImage, opt *Options, parent telemetry.SpanID) ([]*SearchResult, error) {
	if img.store != nil {
		return sc.storeSearchBatch(cqs, img, opt, parent)
	}
	s := opt.search()
	s.TraceParent = parent
	v := sealedView{
		img:        img,
		minScore:   s.MinScore,
		minRatio:   s.MinRatio,
		exhaustive: opt != nil && opt.Exhaustive,
		approx:     opt != nil && opt.Approx,
	}
	res := core.SearchViewBatch(cqs, v, s)
	out := make([]*SearchResult, len(res))
	for i := range res {
		out[i] = searchResultFromCore(res[i])
	}
	return out, nil
}

// SearchImage looks for the query executable's procedure in every
// executable of one sealed image.
func (sc *SealedCorpus) SearchImage(query *Executable, procedure string, img *SealedImage, opt *Options) ([]Finding, error) {
	res, err := sc.SearchImageDetailed(query, procedure, img, opt)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// ImageFindings is one sealed image's outcome of a corpus-wide search.
type ImageFindings struct {
	Vendor   string    `json:"vendor"`
	Device   string    `json:"device"`
	Version  string    `json:"version"`
	Findings []Finding `json:"findings"`
	Examined int       `json:"examined"`
}

// SearchAll runs the query against every image of the corpus in seal
// order. On a sharded corpus the shards are searched in parallel; the
// merged result is index-for-index identical to the sequential pass —
// per-image searches share no mutable state, so fan-out order cannot
// influence findings, examined counts or step histograms.
func (sc *SealedCorpus) SearchAll(query *Executable, procedure string, opt *Options) ([]ImageFindings, error) {
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	out := make([]ImageFindings, len(sc.images))
	err := sc.fanOut(opt.trace(), opt.traceSpan(), func(i int, parent telemetry.SpanID) error {
		img := sc.images[i]
		res, err := sc.searchImageIdx(query, qi, img, opt, parent)
		if err != nil {
			return err
		}
		out[i] = ImageFindings{
			Vendor:   img.Vendor,
			Device:   img.Device,
			Version:  img.Version,
			Findings: res.Findings,
			Examined: res.Examined,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fanOut fills per-image results for every image of the corpus: one
// sequential pass when the corpus is a single range (in-RAM), one
// goroutine per shard otherwise, merged by global image index. The
// first error in shard order wins. When the corpus is sharded and a
// trace is attached, each shard's pass runs under its own
// "corpus.shard" span (shard index + image count attributes), so a
// slow request attributes its latency to the shard that caused it;
// fill receives the span it should parent its own spans under.
func (sc *SealedCorpus) fanOut(tr *telemetry.Trace, parent telemetry.SpanID, fill func(i int, parent telemetry.SpanID) error) error {
	ranges := sc.shardRanges()
	if len(ranges) == 1 {
		r := ranges[0]
		for i := r[0]; i < r[0]+r[1]; i++ {
			if err := fill(i, parent); err != nil {
				return err
			}
		}
		return nil
	}
	workers := min(len(ranges), runtime.GOMAXPROCS(0))
	sem := make(chan struct{}, workers)
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri int, r [2]int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			shardParent := parent
			if tr != nil {
				sp := tr.Start("corpus.shard", parent)
				sp.SetAttr("shard", int64(ri))
				sp.SetAttr("images", int64(r[1]))
				defer sp.End()
				shardParent = sp.ID()
			}
			for i := r[0]; i < r[0]+r[1]; i++ {
				if err := fill(i, shardParent); err != nil {
					errs[ri] = err
					return
				}
			}
		}(ri, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SearchAllBatch runs every batch query against every image of the
// corpus in seal order, one batched game-engine pass per image. The
// outer result dimension aligns with queries, the inner with Images();
// each entry is byte-identical to the corresponding sequential
// SearchAll call. This is the serve path's coalesced form: concurrent
// requests against one corpus share each image's target pass instead of
// replaying it per request.
func (sc *SealedCorpus) SearchAllBatch(queries []BatchQuery, opt *Options) ([][]ImageFindings, error) {
	cqs, err := coreBatch(queries)
	if err != nil {
		return nil, err
	}
	out := make([][]ImageFindings, len(queries))
	for qx := range queries {
		out[qx] = make([]ImageFindings, len(sc.images))
	}
	err = sc.fanOut(opt.trace(), opt.traceSpan(), func(i int, parent telemetry.SpanID) error {
		img := sc.images[i]
		res, err := sc.searchBatchCore(cqs, img, opt, parent)
		if err != nil {
			return err
		}
		for qx, r := range res {
			out[qx][i] = ImageFindings{
				Vendor:   img.Vendor,
				Device:   img.Device,
				Version:  img.Version,
				Findings: r.Findings,
				Examined: r.Examined,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatchProcedure runs the back-and-forth game for one query procedure
// against a single sealed executable.
func (sc *SealedCorpus) MatchProcedure(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, int, error) {
	f, r, err := matchTracedCore(nil, query, procedure, target, opt, false)
	if err != nil {
		return nil, 0, err
	}
	return f, r.Steps, nil
}

// MatchProcedureTraced is MatchProcedure with the full game course
// recorded, for sealed targets. Traces are identical to the live
// session's for the same query/target pair.
func (sc *SealedCorpus) MatchProcedureTraced(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, *GameTrace, error) {
	f, r, err := matchTracedCore(nil, query, procedure, target, opt, true)
	if err != nil {
		return nil, nil, err
	}
	return f, traceFromResult(r), nil
}

// Save serializes the sealed corpus into the FWCORP artifact: one
// shared frozen vocabulary plus every image's executables and index, so
// a serving process cold-starts by LoadSealedCorpus instead of
// re-analyzing firmware.
func (sc *SealedCorpus) Save() ([]byte, error) {
	c := &snapshot.Corpus{Interner: sc.frozen.Vocab()}
	for i := range sc.images {
		ci, err := sc.imageModel(i)
		if err != nil {
			return nil, err
		}
		c.Images = append(c.Images, ci)
	}
	return snapshot.EncodeCorpus(c)
}

// exeToModel serializes one sealed executable into the snapshot model.
func exeToModel(path string, e *sim.Exe) snapshot.Exe {
	se := snapshot.Exe{Path: path, Arch: uint8(e.Arch), Stripped: e.Stripped}
	for _, p := range e.Procs {
		sp := snapshot.Proc{
			Name:       p.Name,
			Addr:       p.Addr,
			Exported:   p.Exported,
			IDs:        p.Set.IDs,
			Markers:    p.Markers,
			BlockCount: p.BlockCount,
			EdgeCount:  p.EdgeCount,
			InstCount:  p.InstCount,
		}
		for _, c := range p.Calls {
			sp.Calls = append(sp.Calls, int32(c))
		}
		se.Procs = append(se.Procs, sp)
	}
	return se
}

// LoadSealedCorpus reconstructs a sealed corpus from a Save artifact.
// No live session is involved: the saved vocabulary restores directly
// into a frozen interner, the saved dense-ID sets and indexes are valid
// in its ID space verbatim, and the result serves queries exactly like
// the corpus that was saved. Unreadable input fails with an error
// wrapping ErrSnapshotCorrupt.
func LoadSealedCorpus(data []byte) (*SealedCorpus, error) {
	c, err := snapshot.DecodeCorpus(data)
	if err != nil {
		return nil, err
	}
	frozen, err := corpusindex.FrozenFromVocab(c.Interner)
	if err != nil {
		return nil, err
	}
	sc := &SealedCorpus{frozen: frozen}
	for ii := range c.Images {
		ci := &c.Images[ii]
		si := &SealedImage{Vendor: ci.Vendor, Device: ci.Device, Version: ci.Version}
		for _, s := range ci.Skipped {
			si.Skipped = append(si.Skipped, SkipReason{Path: s.Path, Err: errors.New(s.Err)})
		}
		for ei := range ci.Exes {
			se := &ci.Exes[ei]
			procs := make([]*sim.Proc, len(se.Procs))
			for pi := range se.Procs {
				procs[pi] = loadFrozenProc(&se.Procs[pi], c.Interner, frozen)
			}
			for i, p := range procs {
				for _, cl := range p.Calls {
					procs[cl].CalledBy = append(procs[cl].CalledBy, i)
				}
			}
			e := sim.FromProcsSession(se.Path, procs, frozen)
			e.Arch = uir.Arch(se.Arch)
			e.Stripped = se.Stripped
			si.Exes = append(si.Exes, &Executable{Path: se.Path, exe: e})
			si.targets = append(si.targets, e)
		}
		si.nExes = len(si.Exes)
		if ci.Index != nil {
			rows := make([]corpusindex.Row, len(ci.Index))
			for i, r := range ci.Index {
				rows[i] = corpusindex.Row{ID: r.ID, Posts: postsFromModel(r.Posts)}
			}
			idx, err := corpusindex.NewFrozenIndex(frozen, si.targets, rows)
			if err != nil {
				return nil, err
			}
			si.index = idx
		}
		sc.images = append(sc.images, si)
	}
	return sc, nil
}

// loadFrozenProc rebuilds one procedure in the frozen ID space: the
// saved dense IDs are the frozen IDs themselves, and the hashes are
// recovered through the vocabulary. The set binds to the frozen
// interner directly, so no Intern call ever runs during load.
func loadFrozenProc(sp *snapshot.Proc, vocab []uint64, frozen *corpusindex.Frozen) *sim.Proc {
	ids := append([]uint32(nil), sp.IDs...)
	hashes := make([]uint64, len(sp.IDs))
	for k, id := range sp.IDs {
		hashes[k] = vocab[id]
	}
	// Set invariant: Hashes sorted ascending (IDs already are).
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	p := &sim.Proc{
		Name:       sp.Name,
		Addr:       sp.Addr,
		Exported:   sp.Exported,
		Set:        strand.Set{Hashes: hashes, IDs: ids, It: frozen},
		Markers:    sp.Markers,
		BlockCount: sp.BlockCount,
		EdgeCount:  sp.EdgeCount,
		InstCount:  sp.InstCount,
	}
	for _, c := range sp.Calls {
		p.Calls = append(p.Calls, int(c))
	}
	return p
}
