// Package firmup is a reproduction of "FirmUp: Precise Static Detection
// of Common Vulnerabilities in Firmware" (David, Partush, Yahav —
// ASPLOS 2018): a static, precise and scalable engine for locating known
// vulnerable procedures inside stripped firmware images.
//
// The package is a facade over the full pipeline:
//
//	firmware image → unpack → recover procedures & blocks → lift to IR →
//	decompose into canonical strands → back-and-forth game matching
//
// Quick start:
//
//	img, _ := firmup.OpenImage(imageBytes)
//	query, _ := firmup.LoadQueryExecutable(queryBytes)
//	findings, _ := firmup.SearchImage(query, "ftp_retrieve_glob", img, nil)
//
// Everything underneath — the firmlang compiler and its four ISA
// backends, the FWELF container, the lifters, the canonicalizer, the
// game engine, the baselines and the evaluation corpus — lives in the
// internal packages and is exercised by the cmd/ tools, the examples/
// programs and the benchmark harness.
package firmup

import (
	"fmt"

	"firmup/internal/cfg"
	"firmup/internal/core"
	"firmup/internal/image"
	_ "firmup/internal/isa/arm"  // register the ARM32 backend
	_ "firmup/internal/isa/mips" // register the MIPS32 backend
	_ "firmup/internal/isa/ppc"  // register the PPC32 backend
	_ "firmup/internal/isa/x86"  // register the x86 backend
	"firmup/internal/obj"
	"firmup/internal/sim"
)

// Executable is an analyzed binary: its procedures recovered, lifted and
// indexed as sets of canonical strands.
type Executable struct {
	// Path is the binary's path inside its image (or a caller-chosen
	// label for standalone executables).
	Path string
	exe  *sim.Exe
	rec  *cfg.Recovered
}

// Procedures lists the recovered procedures.
func (e *Executable) Procedures() []ProcedureInfo {
	out := make([]ProcedureInfo, len(e.exe.Procs))
	for i, p := range e.exe.Procs {
		out[i] = ProcedureInfo{
			Name:     p.Name,
			Addr:     p.Addr,
			Exported: p.Exported,
			Strands:  p.Set.Size(),
			Blocks:   p.BlockCount,
		}
	}
	return out
}

// ProcedureInfo summarizes one recovered procedure.
type ProcedureInfo struct {
	Name     string
	Addr     uint32
	Exported bool
	Strands  int
	Blocks   int
}

// Image is an unpacked firmware image with its analyzable executables.
type Image struct {
	Vendor  string
	Device  string
	Version string
	Exes    []*Executable
}

// AnalyzeExecutable parses and analyzes one FWELF binary.
func AnalyzeExecutable(path string, data []byte) (*Executable, error) {
	f, err := obj.Read(data)
	if err != nil {
		return nil, err
	}
	return analyzeFile(path, f)
}

func analyzeFile(path string, f *obj.File) (*Executable, error) {
	rec, err := cfg.Recover(f)
	if err != nil {
		return nil, fmt.Errorf("firmup: %s: %w", path, err)
	}
	return &Executable{Path: path, exe: sim.Build(path, rec), rec: rec}, nil
}

// OpenImage unpacks a firmware image and analyzes every executable in
// it. Images that fail structural unpacking are carved binwalk-style for
// embedded executables.
func OpenImage(data []byte) (*Image, error) {
	im, err := image.Unpack(data)
	if err != nil {
		// Carving fallback: damaged or unknown container.
		files := image.Carve(data)
		if len(files) == 0 {
			return nil, fmt.Errorf("firmup: cannot unpack image and carving found no executables: %w", err)
		}
		out := &Image{}
		for i, f := range files {
			e, err := analyzeFile(fmt.Sprintf("carved_%d", i), f)
			if err != nil {
				continue
			}
			out.Exes = append(out.Exes, e)
		}
		return out, nil
	}
	out := &Image{Vendor: im.Vendor, Device: im.Device, Version: im.Version}
	for _, pe := range im.Executables() {
		e, err := analyzeFile(pe.Path, pe.File)
		if err != nil {
			continue
		}
		out.Exes = append(out.Exes, e)
	}
	if len(out.Exes) == 0 {
		return nil, fmt.Errorf("firmup: image contains no analyzable executables")
	}
	return out, nil
}

// LoadQueryExecutable analyzes the analyst's query binary (typically
// compiled from the latest vulnerable package version, symbols intact).
func LoadQueryExecutable(data []byte) (*Executable, error) {
	return AnalyzeExecutable("query", data)
}

// Options tune the search engine. The zero value selects the defaults
// used throughout the evaluation.
type Options struct {
	// MinScore is the minimum number of shared canonical strands for a
	// detection (default 8).
	MinScore int
	// MinRatio is the minimum fraction of the query's strands that must
	// be shared (default 0.42).
	MinRatio float64
	// MaxGameSteps caps back-and-forth iterations (default 64).
	MaxGameSteps int
	// Workers bounds search parallelism (default GOMAXPROCS).
	Workers int
}

func (o *Options) search() *core.SearchOptions {
	s := &core.SearchOptions{MinScore: 8, MinRatio: 0.42}
	if o != nil {
		if o.MinScore > 0 {
			s.MinScore = o.MinScore
		}
		if o.MinRatio > 0 {
			s.MinRatio = o.MinRatio
		}
		if o.MaxGameSteps > 0 {
			s.Game.MaxSteps = o.MaxGameSteps
		}
		if o.Workers > 0 {
			s.Workers = o.Workers
		}
	}
	return s
}

// Finding reports one detection of the query procedure.
type Finding struct {
	// ExePath locates the containing executable within the image.
	ExePath string
	// ProcName is the matched procedure's recovered name (sub_<addr> in
	// stripped binaries).
	ProcName string
	// ProcAddr is its entry address — the "exact location" the paper's
	// stripped-search findings provide.
	ProcAddr uint32
	// Score is Sim(query, match): the number of shared canonical strands.
	Score int
	// Confidence is Score over the query's strand count.
	Confidence float64
	// GameSteps is the number of back-and-forth iterations needed.
	GameSteps int
}

// SearchImage looks for the query executable's procedure in every
// executable of the image.
func SearchImage(query *Executable, procedure string, img *Image, opt *Options) ([]Finding, error) {
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	targets := make([]*sim.Exe, len(img.Exes))
	for i, e := range img.Exes {
		targets[i] = e.exe
	}
	res := core.Search(query.exe, qi, targets, opt.search())
	out := make([]Finding, 0, len(res.Findings))
	for _, f := range res.Findings {
		out = append(out, Finding{
			ExePath:    f.ExePath,
			ProcName:   f.ProcName,
			ProcAddr:   f.ProcAddr,
			Score:      f.Score,
			Confidence: f.Ratio,
			GameSteps:  f.Steps,
		})
	}
	return out, nil
}

// MatchProcedure runs the back-and-forth game for one query procedure
// against a single target executable, returning the finding (nil when
// the target does not appear to contain the procedure) and the number of
// game steps played.
func MatchProcedure(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, int, error) {
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, 0, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	f, r := core.MatchOne(query.exe, qi, target.exe, opt.search())
	if f == nil {
		return nil, r.Steps, nil
	}
	return &Finding{
		ExePath:    f.ExePath,
		ProcName:   f.ProcName,
		ProcAddr:   f.ProcAddr,
		Score:      f.Score,
		Confidence: f.Ratio,
		GameSteps:  f.Steps,
	}, r.Steps, nil
}
