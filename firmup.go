// Package firmup is a reproduction of "FirmUp: Precise Static Detection
// of Common Vulnerabilities in Firmware" (David, Partush, Yahav —
// ASPLOS 2018): a static, precise and scalable engine for locating known
// vulnerable procedures inside stripped firmware images.
//
// The package is a facade over the full pipeline:
//
//	firmware image → unpack → recover procedures & blocks → lift to IR →
//	decompose into canonical strands → back-and-forth game matching
//
// Analysis runs under an Analyzer session: every executable analyzed by
// one session shares a strand-hash interner (canonical strand hashes
// deduplicated to dense IDs) and every opened image carries a
// corpus-level inverted index that lets SearchImage rank candidate
// executables by shared-strand count and skip targets that provably
// cannot clear the acceptance threshold.
//
// Quick start (the package-level functions share one default session):
//
//	img, _ := firmup.OpenImage(imageBytes)
//	query, _ := firmup.LoadQueryExecutable(queryBytes)
//	findings, _ := firmup.SearchImage(query, "ftp_retrieve_glob", img, nil)
//
// Long-lived services should create their own sessions:
//
//	a := firmup.NewAnalyzer(nil)
//	img, _ := a.OpenImage(imageBytes)
//
// Everything underneath — the firmlang compiler and its four ISA
// backends, the FWELF container, the lifters, the canonicalizer, the
// game engine, the baselines and the evaluation corpus — lives in the
// internal packages and is exercised by the cmd/ tools, the examples/
// programs and the benchmark harness.
package firmup

import (
	"fmt"
	"runtime"
	"sync"

	"firmup/internal/cfg"
	"firmup/internal/core"
	"firmup/internal/corpusindex"
	"firmup/internal/image"
	_ "firmup/internal/isa/arm"  // register the ARM32 backend
	_ "firmup/internal/isa/mips" // register the MIPS32 backend
	_ "firmup/internal/isa/ppc"  // register the PPC32 backend
	_ "firmup/internal/isa/x86"  // register the x86 backend
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// AnalyzerOptions tune an analyzer session. The zero value selects the
// defaults.
type AnalyzerOptions struct {
	// Workers is the session's total analysis worker budget (default
	// GOMAXPROCS). It is shared — not multiplied — across the two nested
	// pools: OpenImage runs min(Workers, #executables) executables
	// concurrently, and each in-flight executable build gets the
	// remaining budget as procedure-level workers, so at most ~Workers
	// goroutines analyze at any moment.
	Workers int
	// DisableIndex turns off the corpus-level search index: opened
	// images carry no index and every search examines every target.
	// Findings are identical either way.
	DisableIndex bool
	// DisableBlockCache turns off the session's block canonicalization
	// cache: every lifted block is re-extracted from scratch. Analyzed
	// output is identical either way; only the work done differs.
	DisableBlockCache bool
	// Telemetry, when non-nil, is the registry the session records its
	// pipeline metrics into. The default (nil) disables telemetry
	// entirely: instrumented code paths hold nil handles and every
	// recording call is a no-op. Analysis and search output are
	// identical either way.
	Telemetry *telemetry.Registry
}

func (o *AnalyzerOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// splitWorkers divides the session's worker budget between the two
// nested pools for n pending executables: the image-level pool takes
// min(budget, n) slots and each in-flight build gets budget/exeWorkers
// procedure-level workers, so the product stays ≈ budget instead of
// budget².
func splitWorkers(budget, n int) (exeWorkers, procWorkers int) {
	exeWorkers = budget
	if exeWorkers > n {
		exeWorkers = n
	}
	if exeWorkers < 1 {
		exeWorkers = 1
	}
	procWorkers = budget / exeWorkers
	if procWorkers < 1 {
		procWorkers = 1
	}
	return exeWorkers, procWorkers
}

func (o *AnalyzerOptions) indexed() bool { return o == nil || !o.DisableIndex }

// Analyzer is one analysis session. All executables analyzed under it —
// queries and image contents alike — share its strand-hash interner, so
// their strand sets carry comparable dense IDs and searches between
// them take the interned fast paths. An Analyzer is safe for concurrent
// use.
type Analyzer struct {
	opt      AnalyzerOptions
	interner *corpusindex.Interner
	// cache memoizes per-block canonicalization across every executable
	// the session analyzes; nil when DisableBlockCache is set.
	cache *strand.BlockCache
	// met holds the session's telemetry handles; nil when telemetry is
	// disabled, in which case every handle accessor returns nil and the
	// instrumented layers run their uninstrumented fast paths.
	met *sessionMetrics
}

// sessionMetrics is the full handle set one session records against,
// created once so hot paths never consult the registry's maps. Stage
// and metric names are part of the report schema (see
// telemetry.SchemaVersion); renaming any of them is a breaking change.
type sessionMetrics struct {
	obj  *obj.Telemetry
	cfg  *cfg.Telemetry
	sim  *sim.Telemetry
	core *core.Telemetry
	idx  *corpusindex.Telemetry

	imageOpen   *telemetry.Stage
	imageUnpack *telemetry.Stage
	snapSave    *telemetry.Stage
	snapLoad    *telemetry.Stage
	searchImage *telemetry.Stage

	snapSaveBytes *telemetry.Counter
	snapLoadBytes *telemetry.Counter
	exesAnalyzed  *telemetry.Counter
	exesSkipped   *telemetry.Counter
}

func newSessionMetrics(r *telemetry.Registry) *sessionMetrics {
	if r == nil {
		return nil
	}
	return &sessionMetrics{
		obj: &obj.Telemetry{
			Parse:    r.Stage("obj.parse"),
			Bytes:    r.Counter("obj.bytes"),
			BadClass: r.Counter("obj.bad_class"),
		},
		cfg: &cfg.Telemetry{
			Recover:        r.Stage("cfg.recover"),
			Sweep:          r.Stage("cfg.sweep"),
			Lift:           r.Stage("cfg.lift"),
			Decoded:        r.Counter("cfg.insts_decoded"),
			Procs:          r.Counter("cfg.procs"),
			Blocks:         r.Counter("cfg.blocks"),
			Insts:          r.Counter("cfg.insts"),
			CoverageRounds: r.Counter("cfg.coverage_rounds"),
		},
		sim: &sim.Telemetry{
			Build: r.Stage("sim.build"),
			Index: r.Stage("sim.index"),
			Procs: r.Counter("sim.procs"),
			Extract: &strand.Telemetry{
				Blocks:   r.Counter("strand.blocks"),
				Computed: r.Counter("strand.blocks_computed"),
				Strands:  r.Counter("strand.strands"),
			},
		},
		core: &core.Telemetry{
			Games:                 r.Counter("game.played"),
			Steps:                 r.Histogram("game.steps"),
			AcceptedSteps:         r.Histogram("game.steps.accepted"),
			MatcherHits:           r.Counter("game.matcher_hits"),
			MatcherMisses:         r.Counter("game.matcher_misses"),
			Searches:              r.Counter("search.runs"),
			PrefilterKept:         r.Counter("search.targets_kept"),
			PrefilterSkipped:      r.Counter("search.targets_skipped"),
			BatchSearches:         r.Counter("batch.searches"),
			BatchSharedGames:      r.Counter("batch.shared_games"),
			BatchQueriesPerTarget: r.Histogram("batch.queries_per_target"),
		},
		idx: &corpusindex.Telemetry{
			Queries:       r.Counter("index.queries"),
			Fallbacks:     r.Counter("index.fallbacks"),
			Fanout:        r.Histogram("index.fanout"),
			LSHProbes:     r.Counter("lsh.probes"),
			LSHFallbacks:  r.Counter("lsh.fallbacks"),
			LSHCandidates: r.Histogram("lsh.candidates"),
		},
		imageOpen:     r.Stage("image.open"),
		imageUnpack:   r.Stage("image.unpack"),
		snapSave:      r.Stage("snapshot.save"),
		snapLoad:      r.Stage("snapshot.load"),
		searchImage:   r.Stage("search.image"),
		snapSaveBytes: r.Counter("snapshot.save_bytes"),
		snapLoadBytes: r.Counter("snapshot.load_bytes"),
		exesAnalyzed:  r.Counter("exe.analyzed"),
		exesSkipped:   r.Counter("exe.skipped"),
	}
}

// Per-layer handle accessors; each returns nil on a telemetry-disabled
// session, which the layers interpret as "record nothing".
func (a *Analyzer) objTel() *obj.Telemetry {
	if a.met == nil {
		return nil
	}
	return a.met.obj
}

func (a *Analyzer) cfgTel() *cfg.Telemetry {
	if a.met == nil {
		return nil
	}
	return a.met.cfg
}

func (a *Analyzer) simTel() *sim.Telemetry {
	if a.met == nil {
		return nil
	}
	return a.met.sim
}

func (a *Analyzer) coreTel() *core.Telemetry {
	if a.met == nil {
		return nil
	}
	return a.met.core
}

func (a *Analyzer) idxTel() *corpusindex.Telemetry {
	if a.met == nil {
		return nil
	}
	return a.met.idx
}

// NewAnalyzer creates a session. NewAnalyzer(nil) selects the defaults.
func NewAnalyzer(opt *AnalyzerOptions) *Analyzer {
	a := &Analyzer{interner: corpusindex.NewInterner()}
	if opt != nil {
		a.opt = *opt
	}
	if !a.opt.DisableBlockCache {
		a.cache = strand.NewBlockCache(a.interner)
	}
	a.met = newSessionMetrics(a.opt.Telemetry)
	if r := a.opt.Telemetry; r != nil {
		// Gauge mirrors of state the session already tracks: evaluated at
		// snapshot time, costing the hot paths nothing.
		interner := a.interner
		r.GaugeFunc("corpus.unique_strands", func() int64 { return int64(interner.Size()) })
		if cache := a.cache; cache != nil {
			r.GaugeFunc("strand.cache.blocks", func() int64 { return cache.Stats().Blocks })
			r.GaugeFunc("strand.cache.hits", func() int64 { return cache.Stats().Hits })
			r.GaugeFunc("strand.cache.unique", func() int64 { return int64(cache.Stats().Unique) })
		}
	}
	return a
}

// Metrics snapshots the session's telemetry registry. On a
// telemetry-disabled session it returns an empty snapshot carrying only
// the schema version.
func (a *Analyzer) Metrics() telemetry.Snapshot {
	return a.opt.Telemetry.Snapshot()
}

// UniqueStrands reports the session's strand vocabulary: the number of
// distinct canonical strand hashes interned across every executable
// analyzed so far.
func (a *Analyzer) UniqueStrands() int { return a.interner.Size() }

// CacheStats is the session block cache's traffic summary.
type CacheStats = strand.CacheStats

// CacheStats reports the session's block canonicalization cache
// counters: blocks looked up, lookups answered from the cache, and
// distinct canonicalized blocks stored. The zero value is returned when
// the cache is disabled.
func (a *Analyzer) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.Stats()
}

// defaultSession backs the package-level one-liner API; sharing one
// session keeps package-level queries and images ID-comparable.
var (
	defaultOnce    sync.Once
	defaultSession *Analyzer
)

func defaultAnalyzer() *Analyzer {
	defaultOnce.Do(func() { defaultSession = NewAnalyzer(nil) })
	return defaultSession
}

// Executable is an analyzed binary: its procedures recovered, lifted and
// indexed as sets of canonical strands.
type Executable struct {
	// Path is the binary's path inside its image (or a caller-chosen
	// label for standalone executables).
	Path string
	exe  *sim.Exe
	rec  *cfg.Recovered
}

// Procedures lists the recovered procedures.
func (e *Executable) Procedures() []ProcedureInfo {
	out := make([]ProcedureInfo, len(e.exe.Procs))
	for i, p := range e.exe.Procs {
		out[i] = ProcedureInfo{
			Name:     p.Name,
			Addr:     p.Addr,
			Exported: p.Exported,
			Strands:  p.Set.Size(),
			Blocks:   p.BlockCount,
		}
	}
	return out
}

// ProcedureInfo summarizes one recovered procedure.
type ProcedureInfo struct {
	Name     string
	Addr     uint32
	Exported bool
	Strands  int
	Blocks   int
}

// ProcedureStrands returns procedure i's sorted canonical strand
// hashes (a copy). Hashes — unlike session-local dense IDs — are
// stable across sessions, worker counts and cache configuration, which
// makes them the right handle for equivalence checks.
func (e *Executable) ProcedureStrands(i int) []uint64 {
	return append([]uint64(nil), e.exe.Procs[i].Set.Hashes...)
}

// ProcedureMarkers returns procedure i's sorted distinctive constants
// (a copy; see strand.ConstMarkers).
func (e *Executable) ProcedureMarkers(i int) []uint32 {
	return append([]uint32(nil), e.exe.Procs[i].Markers...)
}

// SkipReason records one in-image executable that parsed as an FWELF but
// failed analysis and was left out of Image.Exes.
type SkipReason struct {
	// Path locates the file within the image (carved_<n> for carved
	// executables).
	Path string
	Err  error
}

// Image is an unpacked firmware image with its analyzable executables.
type Image struct {
	Vendor  string
	Device  string
	Version string
	Exes    []*Executable
	// Skipped lists the executables that failed analysis; they are not
	// searchable but no longer silently dropped.
	Skipped []SkipReason

	index *corpusindex.Index
}

// Executable returns the image executable with the given in-image
// path, or nil.
func (im *Image) Executable(path string) *Executable {
	for _, e := range im.Exes {
		if e.Path == path {
			return e
		}
	}
	return nil
}

// IndexedStrands reports the number of (strand, executable, procedure)
// postings in the image's search index, or 0 when the image was opened
// without one.
func (im *Image) IndexedStrands() int {
	if im.index == nil {
		return 0
	}
	return im.index.Postings()
}

// AnalyzeExecutable parses and analyzes one FWELF binary under the
// session.
func (a *Analyzer) AnalyzeExecutable(path string, data []byte) (*Executable, error) {
	f, err := obj.ReadWith(data, a.objTel())
	if err != nil {
		return nil, err
	}
	// A standalone analysis is the only build in flight: give it the
	// whole worker budget at the procedure level.
	return a.analyzeFile(path, f, a.opt.workers())
}

func (a *Analyzer) analyzeFile(path string, f *obj.File, procWorkers int) (*Executable, error) {
	rec, err := cfg.RecoverWith(f, a.cfgTel())
	if err != nil {
		return nil, fmt.Errorf("firmup: %s: %w", path, err)
	}
	bc := &sim.BuildConfig{Cache: a.cache, Workers: procWorkers, Tel: a.simTel()}
	return &Executable{Path: path, exe: sim.BuildWith(path, rec, a.interner, bc), rec: rec}, nil
}

// LoadQueryExecutable analyzes the analyst's query binary (typically
// compiled from the latest vulnerable package version, symbols intact)
// under the session.
func (a *Analyzer) LoadQueryExecutable(data []byte) (*Executable, error) {
	return a.AnalyzeExecutable("query", data)
}

// OpenImage unpacks a firmware image and analyzes every executable in
// it, in parallel under the session's worker pool. Images that fail
// structural unpacking are carved binwalk-style for embedded
// executables. Executables that fail analysis are reported in
// Image.Skipped rather than silently dropped.
func (a *Analyzer) OpenImage(data []byte) (*Image, error) {
	var openSpan, unpackSpan telemetry.Span
	if a.met != nil {
		openSpan = a.met.imageOpen.Start()
		unpackSpan = a.met.imageUnpack.Start()
	}
	var out *Image
	var pending []pendingExe
	im, err := image.Unpack(data)
	if err != nil {
		// Carving fallback: damaged or unknown container.
		files := image.CarveWith(data, a.objTel())
		if len(files) == 0 {
			return nil, fmt.Errorf("firmup: cannot unpack image and carving found no executables: %w", err)
		}
		out = &Image{}
		for i, f := range files {
			pending = append(pending, pendingExe{path: fmt.Sprintf("carved_%d", i), file: f})
		}
	} else {
		out = &Image{Vendor: im.Vendor, Device: im.Device, Version: im.Version}
		for _, pe := range im.ExecutablesWith(a.objTel()) {
			pending = append(pending, pendingExe{path: pe.Path, file: pe.File})
		}
	}
	if a.met != nil {
		unpackSpan.End()
	}
	a.analyzeAll(pending, out)
	if len(out.Exes) == 0 {
		return nil, fmt.Errorf("firmup: image contains no analyzable executables")
	}
	if a.opt.indexed() {
		out.index = corpusindex.NewIndex(a.interner)
		out.index.SetTelemetry(a.idxTel())
		for _, e := range out.Exes {
			out.index.Add(e.exe)
		}
	}
	if a.met != nil {
		a.met.exesAnalyzed.Add(int64(len(out.Exes)))
		a.met.exesSkipped.Add(int64(len(out.Skipped)))
		openSpan.End()
	}
	return out, nil
}

type pendingExe struct {
	path string
	file *obj.File
}

// analyzeAll runs the session's bounded worker pool over the pending
// executables, preserving input order in both Exes and Skipped. The
// worker budget is split between this pool and the per-executable
// procedure pools (see splitWorkers).
func (a *Analyzer) analyzeAll(pending []pendingExe, out *Image) {
	exes := make([]*Executable, len(pending))
	errs := make([]error, len(pending))
	workers, procWorkers := splitWorkers(a.opt.workers(), len(pending))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				exes[i], errs[i] = a.analyzeFile(pending[i].path, pending[i].file, procWorkers)
			}
		}()
	}
	for i := range pending {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range pending {
		if errs[i] != nil {
			out.Skipped = append(out.Skipped, SkipReason{Path: pending[i].path, Err: errs[i]})
			continue
		}
		out.Exes = append(out.Exes, exes[i])
	}
}

// AnalyzeExecutable parses and analyzes one FWELF binary under the
// package's default session.
func AnalyzeExecutable(path string, data []byte) (*Executable, error) {
	return defaultAnalyzer().AnalyzeExecutable(path, data)
}

// OpenImage opens an image under the package's default session (see
// Analyzer.OpenImage).
func OpenImage(data []byte) (*Image, error) {
	return defaultAnalyzer().OpenImage(data)
}

// LoadQueryExecutable analyzes a query binary under the package's
// default session.
func LoadQueryExecutable(data []byte) (*Executable, error) {
	return defaultAnalyzer().LoadQueryExecutable(data)
}

// Options tune the search engine. The zero value selects the defaults
// used throughout the evaluation.
type Options struct {
	// MinScore is the minimum number of shared canonical strands for a
	// detection (default 8).
	MinScore int
	// MinRatio is the minimum fraction of the query's strands that must
	// be shared (default 0.42).
	MinRatio float64
	// MaxGameSteps caps back-and-forth iterations (default 64).
	MaxGameSteps int
	// Workers bounds search parallelism (default GOMAXPROCS).
	Workers int
	// Exhaustive disables the image's corpus-index prefilter for this
	// search: every executable is examined. Findings are identical; only
	// the work done differs.
	Exhaustive bool
	// Approx gates the candidate set by the MinHash/LSH band buckets
	// instead of only ordering it: a candidate passing the exact
	// prefilter floors is examined only if it also shares at least one
	// signature band with the query procedure, so the expensive game
	// stage (and, for store-backed corpora, executable materialization)
	// runs on a strict subset of the exact candidates. Findings become
	// a subset of the exact search's — only false negatives are
	// possible, and measured recall on the evaluation corpus stays
	// ≥ 0.95. Ignored where no signatures are available (the search
	// silently stays exact), and by Exhaustive.
	Approx bool
	// Trace, when set, attaches a request-scoped trace: the search
	// layers record spans (core search, shard fan-out, store
	// materialization) into it, parented under TraceSpan (0 = trace
	// root). Purely observational — findings are byte-identical with
	// and without it, and the serve layer's request-coalescing key
	// zeroes both fields, so tracing never splits otherwise-identical
	// requests. nil disables tracing at zero cost.
	Trace *telemetry.Trace
	// TraceSpan is the span within Trace the search spans attach under.
	TraceSpan telemetry.SpanID
}

// trace and traceSpan are nil-safe accessors for the sealed-corpus
// fan-out layer.
func (o *Options) trace() *telemetry.Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *Options) traceSpan() telemetry.SpanID {
	if o == nil {
		return 0
	}
	return o.TraceSpan
}

func (o *Options) search() *core.SearchOptions {
	s := &core.SearchOptions{MinScore: 8, MinRatio: 0.42}
	if o != nil {
		if o.MinScore > 0 {
			s.MinScore = o.MinScore
		}
		if o.MinRatio > 0 {
			s.MinRatio = o.MinRatio
		}
		if o.MaxGameSteps > 0 {
			s.Game.MaxSteps = o.MaxGameSteps
		}
		if o.Workers > 0 {
			s.Workers = o.Workers
		}
		s.Trace = o.Trace
		s.TraceParent = o.TraceSpan
	}
	return s
}

// Finding reports one detection of the query procedure. The JSON field
// names are part of the firmupd response schema.
type Finding struct {
	// ExePath locates the containing executable within the image.
	ExePath string `json:"exe_path"`
	// ProcName is the matched procedure's recovered name (sub_<addr> in
	// stripped binaries).
	ProcName string `json:"proc_name"`
	// ProcAddr is its entry address — the "exact location" the paper's
	// stripped-search findings provide.
	ProcAddr uint32 `json:"proc_addr"`
	// Score is Sim(query, match): the number of shared canonical strands.
	Score int `json:"score"`
	// Confidence is Score over the query's strand count.
	Confidence float64 `json:"confidence"`
	// GameSteps is the number of back-and-forth iterations needed.
	GameSteps int `json:"game_steps"`
}

// SearchResult pairs an image search's findings with its accounting.
type SearchResult struct {
	Findings []Finding
	// Examined is the number of executables the game was actually played
	// against; with the corpus-index prefilter this is usually well below
	// len(img.Exes).
	Examined int
	// StepsHistogram counts accepted findings by game steps needed.
	StepsHistogram map[int]int
}

// SearchImage looks for the query executable's procedure in every
// executable of the image. When the image carries a search index and the
// query shares its session, provably-irrelevant executables are skipped
// without playing the game; the findings are identical either way.
func SearchImage(query *Executable, procedure string, img *Image, opt *Options) ([]Finding, error) {
	return defaultAnalyzer().SearchImage(query, procedure, img, opt)
}

// SearchImageDetailed is SearchImage with the search accounting
// (examined-target count, steps histogram) exposed, under the package's
// default session.
func SearchImageDetailed(query *Executable, procedure string, img *Image, opt *Options) (*SearchResult, error) {
	return defaultAnalyzer().SearchImageDetailed(query, procedure, img, opt)
}

// SearchImageDetailed is SearchImage with the search accounting
// (examined-target count, steps histogram) exposed. Game and search
// metrics are recorded into this session's registry, if any.
func (a *Analyzer) SearchImageDetailed(query *Executable, procedure string, img *Image, opt *Options) (*SearchResult, error) {
	var searchSpan telemetry.Span
	if a.met != nil {
		searchSpan = a.met.searchImage.Start()
	}
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	s := a.imageSearchOptions(img, opt)
	res := core.Search(query.exe, qi, img.targets(), s)
	out := searchResultFromCore(res)
	if a.met != nil {
		searchSpan.End()
	}
	return out, nil
}

// imageSearchOptions builds the core search options for one image under
// this session: game telemetry attached and, when the image carries an
// index and the caller did not ask for an exhaustive search, the
// corpus-index prefilter installed.
func (a *Analyzer) imageSearchOptions(img *Image, opt *Options) *core.SearchOptions {
	s := opt.search()
	s.Game.Tel = a.coreTel()
	if img.index != nil && (opt == nil || !opt.Exhaustive) {
		// The acceptance ratio here is plain Score/|Strands(q)| (the
		// facade sets no strand weigher), so both floors prune soundly.
		minScore, minRatio := s.MinScore, s.MinRatio
		idx := img.index
		if opt != nil && opt.Approx {
			s.Prefilter = func(q *sim.Exe, qpi int, _ []*sim.Exe) ([]int, bool) {
				return idx.CandidateIndicesLSH(q.Procs[qpi].Set, minScore, minRatio, true, nil)
			}
		} else {
			// The default live path stays on the plain exact prefilter:
			// it is the baseline the LSH equivalence suites compare the
			// sealed tiers against.
			s.Prefilter = func(q *sim.Exe, qpi int, _ []*sim.Exe) ([]int, bool) {
				return idx.CandidateIndices(q.Procs[qpi].Set, minScore, minRatio, nil)
			}
		}
	}
	return s
}

// targets lists the image executables' indexed views, aligned with Exes.
func (im *Image) targets() []*sim.Exe {
	out := make([]*sim.Exe, len(im.Exes))
	for i, e := range im.Exes {
		out[i] = e.exe
	}
	return out
}

// searchResultFromCore converts a core search result into the facade
// form.
func searchResultFromCore(res core.SearchResult) *SearchResult {
	out := &SearchResult{
		Findings:       make([]Finding, 0, len(res.Findings)),
		Examined:       res.Examined,
		StepsHistogram: res.StepsHistogram,
	}
	for _, f := range res.Findings {
		out.Findings = append(out.Findings, Finding{
			ExePath:    f.ExePath,
			ProcName:   f.ProcName,
			ProcAddr:   f.ProcAddr,
			Score:      f.Score,
			Confidence: f.Ratio,
			GameSteps:  f.Steps,
		})
	}
	return out
}

// BatchQuery names one query procedure for a batched image search.
type BatchQuery struct {
	// Query is the analyzed query executable.
	Query *Executable
	// Procedure is the query procedure's name within it.
	Procedure string
}

// coreBatch resolves the facade batch queries to core form, rejecting
// unknown procedure names with the same error the sequential path
// reports.
func coreBatch(queries []BatchQuery) ([]core.BatchQuery, error) {
	out := make([]core.BatchQuery, len(queries))
	for i, bq := range queries {
		qi := bq.Query.exe.ProcByName(bq.Procedure)
		if qi < 0 {
			return nil, fmt.Errorf("firmup: query executable has no procedure %q", bq.Procedure)
		}
		out[i] = core.BatchQuery{Q: bq.Query.exe, QI: qi}
	}
	return out, nil
}

// SearchBatch looks for every batch query in the image in one batched
// game-engine pass: each image executable is visited once for the whole
// batch, and queries from the same query executable share matcher
// caches and similarity vectors. The returned results are positionally
// aligned with queries and byte-identical to calling
// SearchImageDetailed once per query.
func (a *Analyzer) SearchBatch(queries []BatchQuery, img *Image, opt *Options) ([]*SearchResult, error) {
	var searchSpan telemetry.Span
	if a.met != nil {
		searchSpan = a.met.searchImage.Start()
	}
	cqs, err := coreBatch(queries)
	if err != nil {
		return nil, err
	}
	s := a.imageSearchOptions(img, opt)
	res := core.SearchBatch(cqs, img.targets(), s)
	out := make([]*SearchResult, len(res))
	for i := range res {
		out[i] = searchResultFromCore(res[i])
	}
	if a.met != nil {
		searchSpan.End()
	}
	return out, nil
}

// SearchBatch runs a batched image search under the package's default
// session (see Analyzer.SearchBatch).
func SearchBatch(queries []BatchQuery, img *Image, opt *Options) ([]*SearchResult, error) {
	return defaultAnalyzer().SearchBatch(queries, img, opt)
}

// SearchImage on a session is the package-level SearchImage; it is
// provided so session users never touch package-level state.
func (a *Analyzer) SearchImage(query *Executable, procedure string, img *Image, opt *Options) ([]Finding, error) {
	res, err := a.SearchImageDetailed(query, procedure, img, opt)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// MatchProcedure runs the back-and-forth game for one query procedure
// against a single target executable, returning the finding (nil when
// the target does not appear to contain the procedure) and the number of
// game steps played.
func MatchProcedure(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, int, error) {
	return defaultAnalyzer().MatchProcedure(query, procedure, target, opt)
}

// MatchProcedure on a session is the package-level MatchProcedure with
// game metrics recorded into the session's registry, if any.
func (a *Analyzer) MatchProcedure(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, int, error) {
	f, r, err := a.matchTraced(query, procedure, target, opt, false)
	if err != nil {
		return nil, 0, err
	}
	return f, r.Steps, nil
}

// TraceStep is one player/rival exchange of a recorded game course
// (Table 1 of the paper).
type TraceStep struct {
	Actor   string `json:"actor"` // "player" or "rival"
	Text    string `json:"text"`
	Matches string `json:"matches"`
}

// GameTrace is the full course of one back-and-forth game in a
// JSON-encodable form: the outcome plus every recorded exchange.
type GameTrace struct {
	// Target is the matched procedure's index in the target executable,
	// or -1 when the game produced no match.
	Target int `json:"target"`
	// Score is Sim(query, Target); 0 without a match.
	Score int `json:"score"`
	// Steps counts game iterations (1 = the first pick already agreed).
	Steps int `json:"steps"`
	// MatchedPairs is the partial matching built along the way as
	// (query procedure index, target procedure index) pairs.
	MatchedPairs [][2]int `json:"matched_pairs,omitempty"`
	// Reason is the game's end reason: "matched", "no-candidate",
	// "stuck", "step-limit" or "match-limit".
	Reason string `json:"reason"`
	// Trace is the recorded game course.
	Trace []TraceStep `json:"trace,omitempty"`
}

// MatchProcedureTraced is MatchProcedure with the full game course
// recorded and returned as a JSON-encodable trace, under the package's
// default session.
func MatchProcedureTraced(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, *GameTrace, error) {
	return defaultAnalyzer().MatchProcedureTraced(query, procedure, target, opt)
}

// MatchProcedureTraced is MatchProcedure with the full game course
// recorded and returned as a JSON-encodable trace.
func (a *Analyzer) MatchProcedureTraced(query *Executable, procedure string, target *Executable, opt *Options) (*Finding, *GameTrace, error) {
	f, r, err := a.matchTraced(query, procedure, target, opt, true)
	if err != nil {
		return nil, nil, err
	}
	return f, traceFromResult(r), nil
}

// traceFromResult converts a game result into its JSON-encodable trace.
func traceFromResult(r core.Result) *GameTrace {
	gt := &GameTrace{
		Target:       r.Target,
		Score:        r.Score,
		Steps:        r.Steps,
		MatchedPairs: r.MatchedPairs,
		Reason:       r.Reason.String(),
	}
	for _, ts := range r.Trace {
		gt.Trace = append(gt.Trace, TraceStep{Actor: ts.Actor, Text: ts.Text, Matches: ts.Matches})
	}
	return gt
}

// matchTraced is the shared MatchProcedure body; recordTrace selects
// whether the game course is captured.
func (a *Analyzer) matchTraced(query *Executable, procedure string, target *Executable, opt *Options, recordTrace bool) (*Finding, core.Result, error) {
	return matchTracedCore(a.coreTel(), query, procedure, target, opt, recordTrace)
}

// matchTracedCore is the session-independent MatchProcedure body shared
// by the live Analyzer and SealedCorpus paths; tel may be nil.
func matchTracedCore(tel *core.Telemetry, query *Executable, procedure string, target *Executable, opt *Options, recordTrace bool) (*Finding, core.Result, error) {
	qi := query.exe.ProcByName(procedure)
	if qi < 0 {
		return nil, core.Result{}, fmt.Errorf("firmup: query executable has no procedure %q", procedure)
	}
	s := opt.search()
	s.Game.Tel = tel
	s.Game.RecordTrace = recordTrace
	f, r := core.MatchOne(query.exe, qi, target.exe, s)
	if f == nil {
		return nil, r, nil
	}
	return &Finding{
		ExePath:    f.ExePath,
		ProcName:   f.ProcName,
		ProcAddr:   f.ProcAddr,
		Score:      f.Score,
		Confidence: f.Ratio,
		GameSteps:  f.Steps,
	}, r, nil
}
