// Cross-architecture demo: reproduce the paper's Fig. 1 and Fig. 3
// narrative. The same wget procedure is compiled by two different tool
// chains; the machine code shares no instructions, yet after lifting,
// decomposition and canonicalization the two builds share most of their
// canonical strands — and the same holds across architectures.
//
// Run with: go run ./examples/crossarch
package main

import (
	"fmt"
	"log"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/corpus"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

const procName = "ftp_retrieve_glob"

// build compiles wget 1.15 for arch under the given profile and returns
// the recovered view plus the target procedure's strand set.
func build(arch uir.Arch, prof compiler.Profile, opt isa.Options) (*cfg.Proc, strand.Set, error) {
	src, err := corpus.PackageSource("wget", "1.15")
	if err != nil {
		return nil, strand.Set{}, err
	}
	pkg, err := compiler.CompileToMIR(src, prof)
	if err != nil {
		return nil, strand.Set{}, err
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		return nil, strand.Set{}, err
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		return nil, strand.Set{}, err
	}
	f := obj.FromArtifact(art)
	rec, err := cfg.Recover(f)
	if err != nil {
		return nil, strand.Set{}, err
	}
	p := rec.Proc(procName)
	if p == nil {
		return nil, strand.Set{}, fmt.Errorf("%s not recovered", procName)
	}
	set := strand.FromBlocks(p.Blocks, &strand.Options{ABI: be.ABI(), Sections: f.Map()})
	return p, set, nil
}

func main() {
	features := map[string]bool{"OPIE": true, "SSL": true, "COOKIES": true, "IPV6": true}

	// Build A: the analyst's query tool chain (gcc52-O2 style, MIPS).
	profA := compiler.DefaultQueryProfile(uir.ArchMIPS32)
	pA, setA, err := build(uir.ArchMIPS32, profA, isa.Options{
		TextBase: 0x400000, RegSeed: 1, SchedSeed: 1, MulByShift: true})
	if err != nil {
		log.Fatal(err)
	}

	// Build B: a vendor-style tool chain on the same architecture.
	profB := compiler.Profile{OptLevel: 1, Features: features, RegSeed: 77, SchedSeed: 13}
	pB, setB, err := build(uir.ArchMIPS32, profB, isa.Options{
		TextBase: 0x80001000, RegSeed: 77, SchedSeed: 13, ShuffleProcs: true})
	if err != nil {
		log.Fatal(err)
	}

	// Build C: a different architecture entirely.
	profC := compiler.Profile{OptLevel: 2, Features: features, RegSeed: 5}
	_, setC, err := build(uir.ArchARM32, profC, isa.Options{TextBase: 0x8000, RegSeed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 1: the syntactic gap ===")
	fmt.Printf("\nFirst basic block of %s, build A (gcc52-O2, MIPS):\n", procName)
	printHead(pA, 7)
	fmt.Printf("\nFirst basic block of %s, build B (vendor tool chain, MIPS):\n", procName)
	printHead(pB, 7)

	beMIPS, _ := isa.ByArch(uir.ArchMIPS32)

	shared := map[string]bool{}
	for _, in := range pA.Insts[:min(20, len(pA.Insts))] {
		shared[isa.Disasm(beMIPS, in)] = true
	}
	overlap := 0
	for _, in := range pB.Insts[:min(20, len(pB.Insts))] {
		if shared[isa.Disasm(beMIPS, in)] {
			overlap++
		}
	}
	fmt.Printf("\nidentical instruction lines among the first 20: %d\n", overlap)

	fmt.Println("\n=== Fig. 3: canonical strands bridge the gap ===")
	fmt.Printf("build A: %3d canonical strands\n", setA.Size())
	fmt.Printf("build B: %3d canonical strands, %d shared with A (Sim)\n", setB.Size(), setA.Intersect(setB))
	fmt.Printf("build C: %3d canonical strands, %d shared with A — across architectures (ARM vs MIPS)\n",
		setC.Size(), setA.Intersect(setC))

	fmt.Println("\nA canonical branch strand from build A:")
	be, _ := isa.ByArch(uir.ArchMIPS32)
	opt := &strand.Options{ABI: be.ABI()}
	for _, s := range strand.ExtractBlock(pA.Blocks[0], opt) {
		fmt.Println("  ---")
		fmt.Println("  " + s.Text)
	}
}

func printHead(p *cfg.Proc, n int) {
	be, _ := isa.ByArch(uir.ArchMIPS32)
	for i, in := range p.Insts {
		if i >= n {
			return
		}
		fmt.Printf("  %08x  %s\n", in.Addr, isa.Disasm(be, in))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
