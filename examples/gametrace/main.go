// Game trace: reproduce the paper's Table 1 — the step-by-step course of
// the back-and-forth game for the wget ftp_retrieve_glob query against a
// vendor firmware target, showing the player/rival exchanges that
// correct an initially-wrong pairwise match.
//
// Run with: go run ./examples/gametrace
package main

import (
	"fmt"
	"log"

	"firmup/internal/corpus"
	"firmup/internal/eval"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
)

func main() {
	env, err := eval.Prepare(corpus.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	trace, err := eval.GameTrace(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(trace)

	graphs, err := eval.CallGraphs(env)
	if err == nil {
		fmt.Println(graphs)
	}
}
