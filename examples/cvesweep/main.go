// CVE sweep: reproduce the paper's Table 2 scenario — hunt every
// registry CVE across the whole corpus and print a findings table with
// ground-truth verification.
//
// Run with: go run ./examples/cvesweep [eval]
package main

import (
	"fmt"
	"log"
	"os"

	"firmup/internal/corpus"
	"firmup/internal/eval"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
)

func main() {
	sc := corpus.DefaultScale()
	if len(os.Args) > 1 && os.Args[1] == "eval" {
		sc = corpus.EvalScale()
	}
	env, err := eval.Prepare(sc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eval.Table2(env, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Format())
	confirmed, latest := res.TotalConfirmed()
	fmt.Printf("total: %d confirmed vulnerable procedures; %d devices vulnerable at their latest firmware\n",
		confirmed, latest)
}
