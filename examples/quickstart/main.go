// Quickstart: the end-to-end FirmUp workflow in one file.
//
// It generates a small firmware corpus in memory (the stand-in for
// crawling vendor support sites), compiles the analyst's query
// executable from the latest vulnerable wget, and searches every image
// for the CVE-2014-4877 procedure.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"firmup"
	"firmup/internal/corpus"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/uir"
)

func main() {
	// 1. Obtain firmware images (here: generate the synthetic corpus).
	c, err := corpus.Build(corpus.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d firmware images\n", len(c.Images))

	// 2. Start an analyzer session: queries and images analyzed under it
	// share one strand-hash interner, so every search runs over the
	// session's dense-ID fast paths and per-image corpus indexes.
	analyzer := firmup.NewAnalyzer(nil)

	// 3. Compile the query: wget 1.15 (the latest vulnerable version for
	// CVE-2014-4877), default tool chain, symbols intact. A query is
	// built per target architecture, as in the paper.
	queries := map[uir.Arch]*firmup.Executable{}
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		_, qf, err := corpus.QueryExe("wget", "1.15", arch)
		if err != nil {
			log.Fatal(err)
		}
		q, err := analyzer.LoadQueryExecutable(qf.Bytes())
		if err != nil {
			log.Fatal(err)
		}
		queries[arch] = q
	}

	// 4. Search every image. Images are packed and re-opened through the
	// public API, exactly as an external user would handle crawled files.
	total, skipped := 0, 0
	for _, bi := range c.Images {
		data := bi.Image.Pack(true)
		img, err := analyzer.OpenImage(data)
		if err != nil {
			log.Printf("skip %s %s: %v", bi.Vendor, bi.Device, err)
			continue
		}
		skipped += len(img.Skipped)
		for _, s := range img.Skipped {
			log.Printf("%s %s: skipped %s: %v", bi.Vendor, bi.Device, s.Path, s.Err)
		}
		arch := bi.Exes[0].Arch
		findings, err := analyzer.SearchImage(queries[arch], "ftp_retrieve_glob", img, nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range findings {
			total++
			fmt.Printf("  %-10s %-18s fw %-8s → %s at %#x in %s (Sim=%d, %.0f%%, %d steps)\n",
				bi.Vendor, bi.Device, bi.FwVersion,
				f.ProcName, f.ProcAddr, f.ExePath, f.Score, 100*f.Confidence, f.GameSteps)
		}
	}
	fmt.Printf("\nCVE-2014-4877 (wget ftp_retrieve_glob): %d occurrence(s) found in stripped firmware\n", total)
	fmt.Printf("session: %d unique strands interned, %d executable(s) skipped during analysis\n",
		analyzer.UniqueStrands(), skipped)
}
