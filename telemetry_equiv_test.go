package firmup_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"firmup"
	"firmup/internal/telemetry"
)

// Telemetry must be pure observation: the analyzed procedures, strand
// sets, markers and findings of a session recording into a registry are
// byte-identical to a silent session's, in every analyzer configuration.
func TestTelemetryEquivalence(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	base, _ := analyzeScenario(t, imgBytes, queryBytes, nil)
	for _, opt := range []*firmup.AnalyzerOptions{
		{Telemetry: telemetry.New()},
		{Telemetry: telemetry.New(), Workers: 8},
		{Telemetry: telemetry.New(), DisableBlockCache: true},
		{Telemetry: telemetry.New(), DisableIndex: true},
	} {
		got, _ := analyzeScenario(t, imgBytes, queryBytes, opt)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("analysis with telemetry under %+v diverged from silent baseline", *opt)
		}
	}
	if len(base.Findings) == 0 {
		t.Error("equivalence check matched nothing; scenario is vacuous")
	}
}

// A full open → search → match flow against a live registry must leave
// the pipeline's stage timers, counters and histograms populated, and
// Metrics() must expose them.
func TestAnalyzerMetrics(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	reg := telemetry.New()
	a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Telemetry: reg})
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.SearchImageDetailed(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("search matched nothing; scenario is vacuous")
	}
	snap := a.Metrics()
	if snap.Schema != telemetry.SchemaVersion {
		t.Errorf("snapshot schema = %d, want %d", snap.Schema, telemetry.SchemaVersion)
	}
	for _, stage := range []string{"image.open", "image.unpack", "obj.parse", "cfg.recover", "cfg.sweep", "cfg.lift", "sim.build", "sim.index", "search.image"} {
		if snap.Stages[stage].Calls == 0 {
			t.Errorf("stage %q recorded no calls", stage)
		}
	}
	for _, counter := range []string{"obj.bytes", "cfg.procs", "cfg.blocks", "cfg.insts", "sim.procs", "strand.blocks", "strand.strands", "game.played", "search.runs", "exe.analyzed"} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %q is zero", counter)
		}
	}
	steps := snap.Histograms["game.steps"]
	if steps.Count == 0 || len(steps.Buckets) == 0 {
		t.Errorf("game.steps histogram is empty: %+v", steps)
	}
	accepted := snap.Histograms["game.steps.accepted"]
	if accepted.Count != int64(len(res.Findings)) {
		t.Errorf("game.steps.accepted count = %d, want %d accepted findings", accepted.Count, len(res.Findings))
	}
	if got, want := snap.Gauges["corpus.unique_strands"], int64(a.UniqueStrands()); got != want {
		t.Errorf("corpus.unique_strands gauge = %d, want %d", got, want)
	}
	cs := a.CacheStats()
	if got := snap.Gauges["strand.cache.blocks"]; got != cs.Blocks {
		t.Errorf("strand.cache.blocks gauge = %d, want %d", got, cs.Blocks)
	}
	// The snapshot must survive a JSON round trip unchanged — it is the
	// -report payload.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, snap) {
		t.Error("snapshot changed across a JSON round trip")
	}
}

// MatchProcedureTraced must agree with the untraced match and produce a
// JSON-round-trippable game course consistent with the finding.
func TestMatchProcedureTraced(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.SearchImageDetailed(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("search matched nothing; scenario is vacuous")
	}
	f := res.Findings[0]
	target := img.Executable(f.ExePath)
	if target == nil {
		t.Fatalf("image has no executable %q", f.ExePath)
	}
	plain, steps, err := a.MatchProcedure(q, "ftp_retrieve_glob", target, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, gt, err := a.MatchProcedureTraced(q, "ftp_retrieve_glob", target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("traced finding %+v differs from untraced %+v", traced, plain)
	}
	if gt.Steps != steps {
		t.Errorf("trace steps = %d, untraced steps = %d", gt.Steps, steps)
	}
	if traced == nil {
		t.Fatal("matched finding from the search did not re-match one-on-one")
	}
	if gt.Reason != "matched" || gt.Target < 0 {
		t.Errorf("accepted match traced as reason=%q target=%d", gt.Reason, gt.Target)
	}
	if len(gt.Trace) == 0 {
		t.Error("recorded game course is empty")
	}
	blob, err := json.Marshal(gt)
	if err != nil {
		t.Fatal(err)
	}
	var back firmup.GameTrace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, gt) {
		t.Error("game trace changed across a JSON round trip")
	}
}
