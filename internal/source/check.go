package source

import (
	"fmt"
	"sort"
)

// PackageInfo is the result of a successful Check: symbol tables consumed
// by the compiler front end.
type PackageInfo struct {
	File   *File
	Consts map[string]int32
	// Globals maps name to declaration (scalars and arrays).
	Globals map[string]*VarDecl
	// Funcs maps name to declaration, including externs.
	Funcs map[string]*FuncDecl
	// FuncNames is the declaration order of non-extern functions.
	FuncNames []string
}

// Check resolves names and validates a parsed file. It returns symbol
// tables for the compiler.
func Check(f *File) (*PackageInfo, error) {
	info := &PackageInfo{
		File:    f,
		Consts:  map[string]int32{},
		Globals: map[string]*VarDecl{},
		Funcs:   map[string]*FuncDecl{},
	}
	// Pass 1: collect top-level names.
	for _, d := range f.Decls {
		switch v := d.(type) {
		case *ConstDecl:
			if err := info.declareTop(v.Name, v.Pos); err != nil {
				return nil, err
			}
			info.Consts[v.Name] = v.Val
		case *VarDecl:
			if err := info.declareTop(v.Name, v.Pos); err != nil {
				return nil, err
			}
			info.Globals[v.Name] = v
		case *FuncDecl:
			if err := info.declareTop(v.Name, v.Pos); err != nil {
				return nil, err
			}
			info.Funcs[v.Name] = v
			if !v.Extern {
				info.FuncNames = append(info.FuncNames, v.Name)
			}
		}
	}
	// Pass 2: check function bodies.
	for _, d := range f.Decls {
		fn, ok := d.(*FuncDecl)
		if !ok || fn.Extern {
			continue
		}
		c := &checker{info: info, fn: fn}
		c.pushScope()
		for _, p := range fn.Params {
			if err := c.declare(p, fn.Pos, 0); err != nil {
				return nil, err
			}
		}
		if err := c.checkBlock(fn.Body); err != nil {
			return nil, err
		}
	}
	return info, nil
}

func (info *PackageInfo) declareTop(name string, pos Pos) error {
	_, c := info.Consts[name]
	_, g := info.Globals[name]
	_, f := info.Funcs[name]
	if c || g || f {
		return &Error{pos, fmt.Sprintf("%s redeclared at top level", name)}
	}
	return nil
}

// SortedGlobals returns global names in a deterministic order (used by
// layout and tests).
func (info *PackageInfo) SortedGlobals() []string {
	names := make([]string, 0, len(info.Globals))
	for n := range info.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type localVar struct {
	size int // 0 scalar, >0 array length
}

type checker struct {
	info      *PackageInfo
	fn        *FuncDecl
	scopes    []map[string]localVar
	loopDepth int
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]localVar{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, pos Pos, size int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[name]; ok {
		return &Error{pos, fmt.Sprintf("%s redeclared in this scope", name)}
	}
	top[name] = localVar{size: size}
	return nil
}

func (c *checker) lookupLocal(name string) (localVar, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch v := s.(type) {
	case *BlockStmt:
		return c.checkBlock(v)
	case *DeclStmt:
		if v.Init != nil {
			if v.Size > 0 {
				return &Error{v.Pos, fmt.Sprintf("array %s cannot have an expression initializer", v.Name)}
			}
			if err := c.checkExpr(v.Init); err != nil {
				return err
			}
		}
		return c.declare(v.Name, v.Pos, v.Size)
	case *AssignStmt:
		if err := c.checkLValue(v.LHS); err != nil {
			return err
		}
		return c.checkExpr(v.RHS)
	case *IfStmt:
		if err := c.checkExpr(v.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(v.Then); err != nil {
			return err
		}
		if v.Else != nil {
			return c.checkStmt(v.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(v.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(v.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if v.Init != nil {
			if err := c.checkStmt(v.Init); err != nil {
				return err
			}
		}
		if v.Cond != nil {
			if err := c.checkExpr(v.Cond); err != nil {
				return err
			}
		}
		if v.Post != nil {
			if err := c.checkStmt(v.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(v.Body)
	case *ReturnStmt:
		if v.Value != nil {
			return c.checkExpr(v.Value)
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(v.X)
	case *BreakStmt:
		if c.loopDepth == 0 {
			return &Error{v.Pos, "break outside loop"}
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return &Error{v.Pos, "continue outside loop"}
		}
		return nil
	default:
		return fmt.Errorf("source: unknown statement %T", s)
	}
}

func (c *checker) checkLValue(e Expr) error {
	switch v := e.(type) {
	case *Ident:
		if _, ok := c.lookupLocal(v.Name); ok {
			return nil
		}
		if _, ok := c.info.Globals[v.Name]; ok {
			return nil
		}
		if _, ok := c.info.Consts[v.Name]; ok {
			return &Error{v.Pos, fmt.Sprintf("cannot assign to constant %s", v.Name)}
		}
		return &Error{v.Pos, fmt.Sprintf("undefined: %s", v.Name)}
	case *Index:
		if err := c.checkExpr(v.X); err != nil {
			return err
		}
		return c.checkExpr(v.I)
	default:
		return fmt.Errorf("source: bad lvalue %T", e)
	}
}

func (c *checker) checkExpr(e Expr) error {
	switch v := e.(type) {
	case *IntLit, *StrLit:
		return nil
	case *Ident:
		if _, ok := c.lookupLocal(v.Name); ok {
			return nil
		}
		if _, ok := c.info.Globals[v.Name]; ok {
			return nil
		}
		if _, ok := c.info.Consts[v.Name]; ok {
			return nil
		}
		return &Error{v.Pos, fmt.Sprintf("undefined: %s", v.Name)}
	case *Unary:
		return c.checkExpr(v.X)
	case *Binary:
		if err := c.checkExpr(v.X); err != nil {
			return err
		}
		return c.checkExpr(v.Y)
	case *Call:
		fn, ok := c.info.Funcs[v.Name]
		if !ok {
			return &Error{v.Pos, fmt.Sprintf("call to undefined procedure %s", v.Name)}
		}
		if len(v.Args) != len(fn.Params) {
			return &Error{v.Pos, fmt.Sprintf("%s takes %d arguments, got %d", v.Name, len(fn.Params), len(v.Args))}
		}
		for _, a := range v.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
		}
		return nil
	case *Index:
		if err := c.checkExpr(v.X); err != nil {
			return err
		}
		return c.checkExpr(v.I)
	default:
		return fmt.Errorf("source: unknown expression %T", e)
	}
}
