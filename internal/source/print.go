package source

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a File back to parseable firmlang text. The corpus
// generator emits ASTs and prints them; parse∘print round-trips (checked
// by property tests).
func Print(f *File) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "package %s", f.Package)
	if f.Version != "" {
		fmt.Fprintf(&sb, " version %q", f.Version)
	}
	sb.WriteString("\n\n")
	for _, d := range f.Decls {
		printDecl(&sb, d)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func printDecl(sb *strings.Builder, d Decl) {
	switch v := d.(type) {
	case *ConstDecl:
		fmt.Fprintf(sb, "const %s = %d;\n", v.Name, v.Val)
	case *VarDecl:
		fmt.Fprintf(sb, "var %s", v.Name)
		if v.Size > 0 {
			fmt.Fprintf(sb, "[%d]", v.Size)
		}
		switch {
		case v.IsStr:
			fmt.Fprintf(sb, " = %s", quoteString(v.Str))
		case len(v.Init) == 1 && v.Size == 0:
			fmt.Fprintf(sb, " = %d", v.Init[0])
		case len(v.Init) > 0:
			sb.WriteString(" = {")
			for i, x := range v.Init {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(sb, "%d", x)
			}
			sb.WriteString("}")
		}
		sb.WriteString(";\n")
	case *FuncDecl:
		if v.Extern {
			fmt.Fprintf(sb, "extern func %s(%s);\n", v.Name, strings.Join(v.Params, ", "))
			return
		}
		if v.Feature != "" {
			fmt.Fprintf(sb, "feature(%s) ", v.Feature)
		}
		fmt.Fprintf(sb, "func %s(%s) ", v.Name, strings.Join(v.Params, ", "))
		printBlock(sb, v.Body, 0)
		sb.WriteByte('\n')
	}
}

func quoteString(s string) string {
	q := strconv.Quote(s)
	// strconv escapes NUL as \x00; the firmlang lexer expects \0.
	return strings.ReplaceAll(q, `\x00`, `\0`)
}

func indent(sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		sb.WriteString("    ")
	}
}

func printBlock(sb *strings.Builder, b *BlockStmt, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		printStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}")
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch v := s.(type) {
	case *BlockStmt:
		printBlock(sb, v, depth)
		sb.WriteByte('\n')
	case *DeclStmt:
		fmt.Fprintf(sb, "var %s", v.Name)
		if v.Size > 0 {
			fmt.Fprintf(sb, "[%d]", v.Size)
		}
		if v.Init != nil {
			sb.WriteString(" = ")
			printExpr(sb, v.Init, 0)
		}
		sb.WriteString(";\n")
	case *AssignStmt:
		printExpr(sb, v.LHS, 0)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.RHS, 0)
		sb.WriteString(";\n")
	case *IfStmt:
		printIf(sb, v, depth)
		sb.WriteByte('\n')
	case *WhileStmt:
		sb.WriteString("while ")
		printExpr(sb, v.Cond, 0)
		sb.WriteByte(' ')
		printBlock(sb, v.Body, depth)
		sb.WriteByte('\n')
	case *ForStmt:
		sb.WriteString("for ")
		if v.Init != nil {
			printSimple(sb, v.Init)
		}
		// A DeclStmt initializer already supplies the first separator when
		// printed by printSimple.
		sb.WriteString("; ")
		if v.Cond != nil {
			printExpr(sb, v.Cond, 0)
		}
		sb.WriteString("; ")
		if v.Post != nil {
			printSimple(sb, v.Post)
		}
		sb.WriteByte(' ')
		printBlock(sb, v.Body, depth)
		sb.WriteByte('\n')
	case *ReturnStmt:
		sb.WriteString("return")
		if v.Value != nil {
			sb.WriteByte(' ')
			printExpr(sb, v.Value, 0)
		}
		sb.WriteString(";\n")
	case *ExprStmt:
		printExpr(sb, v.X, 0)
		sb.WriteString(";\n")
	case *BreakStmt:
		sb.WriteString("break;\n")
	case *ContinueStmt:
		sb.WriteString("continue;\n")
	}
}

func printIf(sb *strings.Builder, v *IfStmt, depth int) {
	sb.WriteString("if ")
	printExpr(sb, v.Cond, 0)
	sb.WriteByte(' ')
	printBlock(sb, v.Then, depth)
	switch e := v.Else.(type) {
	case nil:
	case *IfStmt:
		sb.WriteString(" else ")
		printIf(sb, e, depth)
	case *BlockStmt:
		sb.WriteString(" else ")
		printBlock(sb, e, depth)
	}
}

// printSimple prints an assignment/expression/decl statement without a
// trailing newline or semicolon (for-loop clauses).
func printSimple(sb *strings.Builder, s Stmt) {
	switch v := s.(type) {
	case *AssignStmt:
		printExpr(sb, v.LHS, 0)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.RHS, 0)
	case *ExprStmt:
		printExpr(sb, v.X, 0)
	case *DeclStmt:
		fmt.Fprintf(sb, "var %s", v.Name)
		if v.Init != nil {
			sb.WriteString(" = ")
			printExpr(sb, v.Init, 0)
		}
	}
}

// printExpr prints with minimal parentheses using the parser's precedence
// table; parent is the enclosing precedence level.
func printExpr(sb *strings.Builder, e Expr, parent int) {
	switch v := e.(type) {
	case *Ident:
		sb.WriteString(v.Name)
	case *IntLit:
		fmt.Fprintf(sb, "%d", v.Val)
	case *StrLit:
		sb.WriteString(quoteString(v.Val))
	case *Unary:
		sb.WriteString(v.Op)
		printExpr(sb, v.X, 10)
	case *Binary:
		prec := binPrec[v.Op]
		if prec < parent {
			sb.WriteByte('(')
		}
		printExpr(sb, v.X, prec)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.Y, prec+1)
		if prec < parent {
			sb.WriteByte(')')
		}
	case *Call:
		sb.WriteString(v.Name)
		sb.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Index:
		printExpr(sb, v.X, 11)
		sb.WriteByte('[')
		printExpr(sb, v.I, 0)
		sb.WriteByte(']')
	}
}
