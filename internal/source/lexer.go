package source

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkInt
	tkString
	tkPunct
	tkKeyword
)

var keywords = map[string]bool{
	"package": true, "version": true, "var": true, "const": true,
	"func": true, "extern": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "feature": true,
}

type token struct {
	kind tokenKind
	text string
	val  int32
	pos  Pos
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "EOF"
	}
	return t.text
}

// Error is a positioned source diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Offset: l.off, Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.off+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{start, "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-byte punctuation, longest first.
var punct2 = []string{"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tkEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case c == '_' || unicode.IsLetter(rune(c)):
		start := l.off
		for l.off < len(l.src) {
			c := l.peekByte()
			if c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
				l.advance()
			} else {
				break
			}
		}
		text := l.src[start:l.off]
		if keywords[text] {
			return token{kind: tkKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tkIdent, text: text, pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := l.off
		base := 10
		if c == '0' && l.off+1 < len(l.src) && (l.src[l.off+1] == 'x' || l.src[l.off+1] == 'X') {
			base = 16
			l.advance()
			l.advance()
		}
		for l.off < len(l.src) {
			c := l.peekByte()
			if unicode.IsDigit(rune(c)) || (base == 16 && isHexLetter(c)) {
				l.advance()
			} else {
				break
			}
		}
		text := l.src[start:l.off]
		digits := text
		if base == 16 {
			digits = text[2:]
			if digits == "" {
				return token{}, &Error{pos, "malformed hex literal"}
			}
		}
		v, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return token{}, &Error{pos, fmt.Sprintf("bad integer literal %q", text)}
		}
		return token{kind: tkInt, text: text, val: int32(uint32(v)), pos: pos}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return token{}, &Error{pos, "unterminated string literal"}
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if l.off >= len(l.src) {
					return token{}, &Error{pos, "unterminated escape"}
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '0':
					sb.WriteByte(0)
				case '\\', '"':
					sb.WriteByte(e)
				default:
					return token{}, &Error{pos, fmt.Sprintf("unknown escape \\%c", e)}
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tkString, text: sb.String(), pos: pos}, nil
	default:
		for _, p := range punct2 {
			if strings.HasPrefix(l.src[l.off:], p) {
				for range p {
					l.advance()
				}
				return token{kind: tkPunct, text: p, pos: pos}, nil
			}
		}
		if strings.ContainsRune("+-*/%&|^~!<>=(){}[],;", rune(c)) {
			l.advance()
			return token{kind: tkPunct, text: string(c), pos: pos}, nil
		}
		return token{}, &Error{pos, fmt.Sprintf("unexpected character %q", c)}
	}
}

func isHexLetter(c byte) bool {
	return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole input; used by the parser and tests.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tkEOF {
			return toks, nil
		}
	}
}
