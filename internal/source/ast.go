// Package source implements firmlang, the small C-like language the
// reproduction's package corpus is written in.
//
// The FirmUp paper searches for procedures that "originate from the same
// source code" across wildly different compilations. To reproduce that
// setting with known ground truth, the corpus packages (wget, vsftpd,
// libcurl, ... analogs) are authored in firmlang and compiled by
// internal/compiler to each target ISA under divergent toolchain
// profiles. firmlang is deliberately small — 32-bit integers, global
// scalars/arrays/strings, procedures — but expressive enough to produce
// realistic control flow and data flow.
package source

import "fmt"

// Pos is a byte offset plus line/column for diagnostics.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// File is one firmlang translation unit: a package of declarations.
type File struct {
	Package string
	Version string
	Decls   []Decl
}

// Decl is a top-level declaration.
type Decl interface{ declNode() }

// VarDecl declares a global scalar (Size == 0) or array (Size > 0),
// optionally initialized. A string initializer allocates the bytes in the
// read-only data section.
type VarDecl struct {
	Pos   Pos
	Name  string
	Size  int
	Init  []int32
	Str   string
	IsStr bool
}

// ConstDecl declares a named integer constant.
type ConstDecl struct {
	Pos  Pos
	Name string
	Val  int32
}

// FuncDecl declares a procedure. Feature, when non-empty, names a
// configure-style build flag: the procedure (and calls to it) are only
// compiled when the flag is enabled, reproducing the paper's
// --disable-opie structural-variance effect. Extern procedures have no
// body; the linker satisfies them from the runtime shim package.
type FuncDecl struct {
	Pos     Pos
	Name    string
	Params  []string
	Body    *BlockStmt
	Feature string
	Extern  bool
}

func (*VarDecl) declNode()   {}
func (*ConstDecl) declNode() {}
func (*FuncDecl) declNode()  {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable with an optional initializer.
// Locals may also be arrays (stack buffers), a common source of the
// buffer-overflow CVEs the paper hunts.
type DeclStmt struct {
	Pos  Pos
	Name string
	Size int
	Init Expr
}

// AssignStmt assigns to an identifier or an index expression. Op is "="
// or a compound form ("+=", "-=", ...).
type AssignStmt struct {
	Pos Pos
	LHS Expr
	Op  string
	RHS Expr
}

// IfStmt is a conditional with an optional else arm.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is the C-style three-clause loop; any clause may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns from the procedure; Value may be nil.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// ExprStmt evaluates an expression (typically a call) for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node. All values are 32-bit integers; arrays and
// strings evaluate to their base address.
type Expr interface{ exprNode() }

// Ident references a constant, global, parameter or local.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int32
}

// StrLit evaluates to the read-only data address of its bytes
// (NUL-terminated).
type StrLit struct {
	Pos Pos
	Val string
}

// Binary applies an infix operator: + - * / % & | ^ << >>
// == != < <= > >= && ||. Logical forms short-circuit.
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Unary applies a prefix operator: - ! ~.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Call invokes a procedure by name.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Index reads element X[I]; elements are 32-bit words for int arrays and
// bytes for string data accessed through byteload/bytestore externs.
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

func (*Ident) exprNode()  {}
func (*IntLit) exprNode() {}
func (*StrLit) exprNode() {}
func (*Binary) exprNode() {}
func (*Unary) exprNode()  {}
func (*Call) exprNode()   {}
func (*Index) exprNode()  {}
