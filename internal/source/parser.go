package source

import (
	"fmt"
)

// Parse parses a firmlang translation unit.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{p.cur().pos, fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tkPunct || t.text != s {
		return p.errf("expected %q, found %q", s, t.String())
	}
	p.advance()
	return nil
}

func (p *parser) expectKeyword(s string) error {
	t := p.cur()
	if t.kind != tkKeyword || t.text != s {
		return p.errf("expected keyword %q, found %q", s, t.String())
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, Pos, error) {
	t := p.cur()
	if t.kind != tkIdent {
		return "", t.pos, p.errf("expected identifier, found %q", t.String())
	}
	p.advance()
	return t.text, t.pos, nil
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tkPunct && p.cur().text == s
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tkKeyword && p.cur().text == s
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	if err := p.expectKeyword("package"); err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f.Package = name
	if p.isKeyword("version") {
		p.advance()
		t := p.cur()
		if t.kind != tkString {
			return nil, p.errf("expected version string")
		}
		f.Version = t.text
		p.advance()
	}
	for p.cur().kind != tkEOF {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

func (p *parser) parseDecl() (Decl, error) {
	switch {
	case p.isKeyword("var"):
		return p.parseVarDecl()
	case p.isKeyword("const"):
		return p.parseConstDecl()
	case p.isKeyword("extern"):
		pos := p.advance().pos
		if err := p.expectKeyword("func"); err != nil {
			return nil, err
		}
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		p.skipSemi()
		return &FuncDecl{Pos: pos, Name: name, Params: params, Extern: true}, nil
	case p.isKeyword("feature"), p.isKeyword("func"):
		return p.parseFuncDecl()
	default:
		return nil, p.errf("expected declaration, found %q", p.cur().String())
	}
}

func (p *parser) skipSemi() {
	for p.isPunct(";") {
		p.advance()
	}
}

// parseConstInt parses an optionally-negated integer literal.
func (p *parser) parseConstInt() (int32, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		p.advance()
	}
	t := p.cur()
	if t.kind != tkInt {
		return 0, p.errf("expected integer literal, found %q", t.String())
	}
	p.advance()
	if neg {
		return -t.val, nil
	}
	return t.val, nil
}

func (p *parser) parseVarDecl() (Decl, error) {
	pos := p.advance().pos // "var"
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: pos, Name: name}
	if p.isPunct("[") {
		p.advance()
		n, err := p.parseConstInt()
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, &Error{pos, fmt.Sprintf("array %s has non-positive size %d", name, n)}
		}
		d.Size = int(n)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.isPunct("=") {
		p.advance()
		switch {
		case p.cur().kind == tkString:
			d.Str = p.cur().text
			d.IsStr = true
			p.advance()
		case p.isPunct("{"):
			p.advance()
			for !p.isPunct("}") {
				v, err := p.parseConstInt()
				if err != nil {
					return nil, err
				}
				d.Init = append(d.Init, v)
				if p.isPunct(",") {
					p.advance()
				}
			}
			p.advance() // "}"
		default:
			v, err := p.parseConstInt()
			if err != nil {
				return nil, err
			}
			d.Init = []int32{v}
		}
	}
	p.skipSemi()
	return d, nil
}

func (p *parser) parseConstDecl() (Decl, error) {
	pos := p.advance().pos // "const"
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	v, err := p.parseConstInt()
	if err != nil {
		return nil, err
	}
	p.skipSemi()
	return &ConstDecl{Pos: pos, Name: name, Val: v}, nil
}

func (p *parser) parseParams() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isPunct(")") {
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, name)
		if p.isPunct(",") {
			p.advance()
		} else {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) parseFuncDecl() (Decl, error) {
	var feature string
	pos := p.cur().pos
	if p.isKeyword("feature") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		feature = name
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("func"); err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: pos, Name: name, Params: params, Body: body, Feature: feature}, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	pos := p.cur().pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	for !p.isPunct("}") {
		if p.cur().kind == tkEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // "}"
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.isKeyword("var"):
		return p.parseDeclStmt()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		pos := p.advance().pos
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("return"):
		pos := p.advance().pos
		var val Expr
		if !p.isPunct(";") && !p.isPunct("}") {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		p.skipSemi()
		return &ReturnStmt{Pos: pos, Value: val}, nil
	case p.isKeyword("break"):
		pos := p.advance().pos
		p.skipSemi()
		return &BreakStmt{Pos: pos}, nil
	case p.isKeyword("continue"):
		pos := p.advance().pos
		p.skipSemi()
		return &ContinueStmt{Pos: pos}, nil
	case p.isPunct("{"):
		return p.parseBlock()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		p.skipSemi()
		return s, nil
	}
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	pos := p.advance().pos // "var"
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Pos: pos, Name: name}
	if p.isPunct("[") {
		p.advance()
		n, err := p.parseConstInt()
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, &Error{pos, fmt.Sprintf("array %s has non-positive size %d", name, n)}
		}
		d.Size = int(n)
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if p.isPunct("=") {
		p.advance()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	p.skipSemi()
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.advance().pos // "if"
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.isKeyword("else") {
		p.advance()
		if p.isKeyword("if") {
			el, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = el
		} else {
			el, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = el
		}
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.advance().pos // "for"
	st := &ForStmt{Pos: pos}
	if !p.isPunct(";") {
		var err error
		if p.isKeyword("var") {
			st.Init, err = p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			// parseDeclStmt consumed the separating semicolon.
		} else {
			st.Init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct("{") {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

// parseSimpleStmt parses an assignment or expression statement (without
// consuming a trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	pos := p.cur().pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tkPunct && assignOps[p.cur().text] {
		op := p.advance().text
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *Ident, *Index:
		default:
			return nil, &Error{pos, "left side of assignment must be a name or index expression"}
		}
		return &AssignStmt{Pos: pos, LHS: lhs, Op: op, RHS: rhs}, nil
	}
	return &ExprStmt{Pos: pos, X: lhs}, nil
}

// Precedence climbing. Level 1 is loosest.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"|":  4,
	"^":  5,
	"&":  6,
	"<<": 7, ">>": 7,
	"+": 8, "-": 8,
	"*": 9, "/": 9, "%": 9,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.pos, Op: t.text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tkPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.pos, Op: t.text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("[") {
		pos := p.advance().pos
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		x = &Index{Pos: pos, X: x, I: idx}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkInt:
		p.advance()
		return &IntLit{Pos: t.pos, Val: t.val}, nil
	case t.kind == tkString:
		p.advance()
		return &StrLit{Pos: t.pos, Val: t.text}, nil
	case t.kind == tkIdent:
		p.advance()
		if p.isPunct("(") {
			p.advance()
			call := &Call{Pos: t.pos, Name: t.text}
			for !p.isPunct(")") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.isPunct(",") {
					p.advance()
				} else {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos: t.pos, Name: t.text}, nil
	case t.kind == tkPunct && t.text == "(":
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, p.errf("expected expression, found %q", t.String())
	}
}
