package source

import (
	"strings"
	"testing"
)

const sampleSrc = `
package wget version "1.15"

const RETR_CODE = 31;
var retry_count = 3;
var buf[64];
var banner = "220 ready\n";
var table[4] = {1, 2, 4, 8};

extern func memcopy(dst, src, n);

feature(OPIE) func skey_resp(chal, out) {
    var i = 0;
    while i < 8 {
        out = out + chal;
        i = i + 1;
    }
    return out;
}

func ftp_retrieve_glob(u, action) {
    var res = 0;
    if action == RETR_CODE {
        res = get_ftp(u);
    } else if action > 0 {
        res = res | 1;
    } else {
        return 0 - 1;
    }
    for var i = 0; i < retry_count; i = i + 1 {
        buf[i] = res * 2;
        if buf[i] >= 100 {
            break;
        }
        continue;
    }
    memcopy(buf, banner, 8);
    return res;
}

func get_ftp(u) {
    return (u << 2) ^ 0x1F;
}
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseSample(t *testing.T) {
	f := mustParse(t, sampleSrc)
	if f.Package != "wget" || f.Version != "1.15" {
		t.Errorf("package = %s version %s", f.Package, f.Version)
	}
	if len(f.Decls) != 9 {
		t.Fatalf("got %d decls, want 9", len(f.Decls))
	}
	c := f.Decls[0].(*ConstDecl)
	if c.Name != "RETR_CODE" || c.Val != 31 {
		t.Errorf("const = %+v", c)
	}
	v := f.Decls[2].(*VarDecl)
	if v.Name != "buf" || v.Size != 64 {
		t.Errorf("buf = %+v", v)
	}
	s := f.Decls[3].(*VarDecl)
	if !s.IsStr || s.Str != "220 ready\n" {
		t.Errorf("banner = %+v", s)
	}
	tab := f.Decls[4].(*VarDecl)
	if tab.Size != 4 || len(tab.Init) != 4 || tab.Init[2] != 4 {
		t.Errorf("table = %+v", tab)
	}
	ext := f.Decls[5].(*FuncDecl)
	if !ext.Extern || len(ext.Params) != 3 {
		t.Errorf("extern = %+v", ext)
	}
	sk := f.Decls[6].(*FuncDecl)
	if sk.Feature != "OPIE" {
		t.Errorf("feature = %q", sk.Feature)
	}
}

func TestCheckSample(t *testing.T) {
	f := mustParse(t, sampleSrc)
	info, err := Check(f)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(info.FuncNames) != 3 {
		t.Errorf("FuncNames = %v", info.FuncNames)
	}
	if info.Consts["RETR_CODE"] != 31 {
		t.Error("constant table")
	}
	if got := info.SortedGlobals(); len(got) != 4 || got[0] != "banner" {
		t.Errorf("SortedGlobals = %v", got)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := mustParse(t, sampleSrc)
	text := Print(f)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of printed source failed: %v\n%s", err, text)
	}
	text2 := Print(f2)
	if text != text2 {
		t.Errorf("print∘parse not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"package", "expected identifier"},
		{"package p\nvar x[0];", "non-positive size"},
		{"package p\nfunc f( {", "expected identifier"},
		{"package p\nfunc f() { if x { }", "unterminated block"},
		{"package p\nconst c = ;", "expected integer"},
		{"package p\nfunc f() { return 1 + ; }", "expected expression"},
		{"package p\nfunc f() { x = ", "expected expression"},
		{"package p\nvar s = \"abc", "unterminated string"},
		{"package p\n/* open", "unterminated block comment"},
		{"package p\nfunc f() { @ }", "unexpected character"},
		{"package p\nfunc f() { 1 = 2; }", "left side of assignment"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			f, _ := Parse(c.src)
			_, err = Check(f)
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"package p\nfunc f() { return y; }", "undefined: y"},
		{"package p\nvar x;\nvar x;", "redeclared"},
		{"package p\nfunc f() { var a; var a; }", "redeclared in this scope"},
		{"package p\nconst c = 1;\nfunc f() { c = 2; }", "cannot assign to constant"},
		{"package p\nfunc f() { break; }", "break outside loop"},
		{"package p\nfunc f() { continue; }", "continue outside loop"},
		{"package p\nfunc f() { g(); }", "undefined procedure"},
		{"package p\nfunc g(a) { return a; }\nfunc f() { return g(); }", "takes 1 arguments, got 0"},
		{"package p\nfunc f() { var a[4] = 3; }", "cannot have an expression initializer"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) unexpectedly failed: %v", c.src, err)
			continue
		}
		_, err = Check(f)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestScopingAllowsShadowing(t *testing.T) {
	src := `package p
func f(a) {
    var x = 1;
    if a {
        var x = 2;
        x = x + 1;
    }
    return x;
}`
	f := mustParse(t, src)
	if _, err := Check(f); err != nil {
		t.Errorf("shadowing in nested scope must be legal: %v", err)
	}
}

func TestForLoopVariants(t *testing.T) {
	variants := []string{
		"for ; ; { break; }",
		"for var i = 0; i < 3; i = i + 1 { }",
		"for i = 0; i < 3; i = i + 1 { }",
		"for ; i < 3; { i = i + 1; }",
	}
	for _, v := range variants {
		src := "package p\nvar i;\nfunc f() { " + v + " }"
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", v, err)
			continue
		}
		if _, err := Check(f); err != nil {
			t.Errorf("Check(%q): %v", v, err)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// 1 + 2*3 == 7 should parse as (1 + (2*3)) == 7.
	f := mustParse(t, "package p\nfunc f() { return 1 + 2 * 3 == 7; }")
	ret := f.Decls[0].(*FuncDecl).Body.Stmts[0].(*ReturnStmt)
	eq := ret.Value.(*Binary)
	if eq.Op != "==" {
		t.Fatalf("top op = %q, want ==", eq.Op)
	}
	add := eq.X.(*Binary)
	if add.Op != "+" {
		t.Fatalf("left op = %q, want +", add.Op)
	}
	mul := add.Y.(*Binary)
	if mul.Op != "*" {
		t.Fatalf("right of + is %q, want *", mul.Op)
	}
}

func TestHexAndNegativeLiterals(t *testing.T) {
	f := mustParse(t, "package p\nconst a = 0x1F;\nconst b = -5;")
	if f.Decls[0].(*ConstDecl).Val != 31 {
		t.Error("hex literal")
	}
	if f.Decls[1].(*ConstDecl).Val != -5 {
		t.Error("negative literal")
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "package p // trailing\n/* block\ncomment */ var x = 1;\n"
	f := mustParse(t, src)
	if len(f.Decls) != 1 {
		t.Errorf("decls = %d", len(f.Decls))
	}
}

func TestLexAllPositions(t *testing.T) {
	toks, err := lexAll("package p\nvar x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].pos.Line != 2 || toks[2].pos.Col != 1 {
		t.Errorf("var token at %v, want 2:1", toks[2].pos)
	}
}
