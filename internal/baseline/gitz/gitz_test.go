package gitz

import (
	"testing"

	"firmup/internal/sim"
	"firmup/internal/strand"
)

func mk(name string, hashes ...uint64) *sim.Proc {
	s := append([]uint64(nil), hashes...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return &sim.Proc{Name: name, Set: strand.Set{Hashes: s}}
}

func TestWeightFavorsRareStrands(t *testing.T) {
	// Strand 1 appears in every procedure; strand 9 in exactly one.
	sample := sim.FromProcs("s", []*sim.Proc{
		mk("a", 1, 9),
		mk("b", 1, 2),
		mk("c", 1, 3),
		mk("d", 1, 4),
	})
	ctx := Train([]*sim.Exe{sample})
	if ctx.Weight(1) >= ctx.Weight(9) {
		t.Errorf("ubiquitous strand weight %.3f must be below rare strand %.3f", ctx.Weight(1), ctx.Weight(9))
	}
	if ctx.Weight(1234) <= ctx.Weight(1) {
		t.Error("never-seen strand must outweigh ubiquitous strand")
	}
}

func TestNilContextDegradesToCount(t *testing.T) {
	var c *Context
	if c.Weight(7) != 1 {
		t.Error("nil context must weight uniformly")
	}
}

// The weighting is the point of the baseline: a procedure sharing one
// rare strand must outrank one sharing a slightly larger number of
// ubiquitous strands.
func TestRankingUsesContext(t *testing.T) {
	// Training: strands 1..4 are everywhere, 100 is unique.
	var trainProcs []*sim.Proc
	for i := 0; i < 40; i++ {
		trainProcs = append(trainProcs, mk("p", 1, 2, 3, 4))
	}
	trainProcs = append(trainProcs, mk("rare", 100))
	ctx := Train([]*sim.Exe{sim.FromProcs("train", trainProcs)})
	e := &Engine{Ctx: ctx}

	q := mk("query", 1, 2, 100)
	tgt := sim.FromProcs("T", []*sim.Proc{
		mk("common_twin", 1, 2, 3, 4), // shares 2 ubiquitous strands
		mk("real_twin", 100, 7),       // shares the 1 rare strand
	})
	top := e.TopK(q.Set, tgt, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Proc != 1 {
		t.Errorf("top-1 = %s, want real_twin", tgt.Procs[top[0].Proc].Name)
	}
}

func TestTopKOrderingAndCutoff(t *testing.T) {
	e := &Engine{Ctx: Train(nil)}
	q := mk("q", 1, 2, 3)
	tgt := sim.FromProcs("T", []*sim.Proc{
		mk("a", 1),
		mk("b", 1, 2),
		mk("c", 1, 2, 3),
		mk("d", 9),
	})
	top := e.TopK(q.Set, tgt, 2)
	if len(top) != 2 || top[0].Proc != 2 || top[1].Proc != 1 {
		t.Errorf("top = %+v", top)
	}
}
