// Package gitz implements the procedure-centric baseline of the paper's
// evaluation, modeled on GitZ (David et al., PLDI'17): pairwise strand
// similarity weighted by a statistical global context, with no use of the
// surrounding executable. Given a query it returns a ranked top-k list;
// the paper's comparison takes the top-1 as GitZ's answer.
package gitz

import (
	"math"
	"sort"

	"firmup/internal/sim"
	"firmup/internal/strand"
)

// Context is the trained global context: for every strand, how common it
// is in a random sample of procedures "in the wild". Rare strands carry
// more evidence of shared origin than ubiquitous ones.
type Context struct {
	df     map[uint64]int
	nprocs int
}

// Train builds a context from a sample of executables (the paper trains
// one per architecture over more than a thousand procedures).
func Train(sample []*sim.Exe) *Context {
	c := &Context{df: map[uint64]int{}}
	for _, e := range sample {
		for _, p := range e.Procs {
			c.nprocs++
			for _, h := range p.Set.Hashes {
				c.df[h]++
			}
		}
	}
	return c
}

// Weight returns the significance of a strand: log(N/df), the inverse
// document frequency over the sampled procedures.
func (c *Context) Weight(h uint64) float64 {
	if c == nil || c.nprocs == 0 {
		return 1
	}
	df := c.df[h]
	return math.Log(float64(c.nprocs+1) / float64(df+1))
}

// Engine is a GitZ-style searcher.
type Engine struct {
	Ctx *Context
}

// Score computes the context-weighted similarity between a query strand
// set and procedure i of t.
func (e *Engine) Score(q strand.Set, t *sim.Exe, i int) float64 {
	shared := 0.0
	tp := t.Procs[i]
	j, k := 0, 0
	for j < len(q.Hashes) && k < len(tp.Set.Hashes) {
		switch {
		case q.Hashes[j] == tp.Set.Hashes[k]:
			shared += e.Ctx.Weight(q.Hashes[j])
			j++
			k++
		case q.Hashes[j] < tp.Set.Hashes[k]:
			j++
		default:
			k++
		}
	}
	return shared
}

// TopK ranks the procedures of t by decreasing weighted similarity to q.
// There is no notion of a positive or negative match: the caller decides
// what to do with the ranking (the paper's comparison takes top-1).
func (e *Engine) TopK(q strand.Set, t *sim.Exe, k int) []sim.Scored {
	var out []sim.Scored
	for i := range t.Procs {
		s := e.Score(q, t, i)
		if s > 0 {
			out = append(out, sim.Scored{Proc: i, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Proc < out[j].Proc
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
