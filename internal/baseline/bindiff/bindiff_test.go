package bindiff

import (
	"testing"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

func build(t *testing.T, prof compiler.Profile, opt isa.Options, strip bool) *sim.Exe {
	t.Helper()
	pkg, err := compiler.CompileToMIR(isatest.Source, prof)
	if err != nil {
		t.Fatal(err)
	}
	be, err := isa.ByArch(uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		t.Fatal(err)
	}
	f := obj.FromArtifact(art)
	if strip {
		f.Strip()
	}
	rec, err := cfg.Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Build("exe", rec, nil)
}

func accuracy(t *testing.T, q, tgt *sim.Exe, res Result) (int, int) {
	t.Helper()
	byAddrName := map[uint32]string{}
	for _, p := range tgt.Procs {
		byAddrName[p.Addr] = p.Name
	}
	correct, total := 0, 0
	for qi, ti := range res.QtoT {
		total++
		if ti >= 0 && tgt.Procs[ti].Name == q.Procs[qi].Name {
			correct++
		}
	}
	return correct, total
}

// With symbol names present, name matching must produce a perfect map.
func TestNameMatchingPerfect(t *testing.T) {
	q := build(t, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000}, false)
	tgt := build(t, compiler.Profile{OptLevel: 1}, isa.Options{TextBase: 0x80000000, RegSeed: 5}, false)
	res := Diff(q, tgt)
	correct, total := accuracy(t, q, tgt, res)
	if correct != total {
		t.Errorf("named diff: %d/%d", correct, total)
	}
	for _, ph := range res.Phase {
		if ph != "name" {
			t.Errorf("phase %q, want name", ph)
		}
	}
}

// Identical builds stripped of names: structural signatures should still
// recover most of the mapping.
func TestStructuralMatchingSameBuild(t *testing.T) {
	q := build(t, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000}, false)
	tgt := build(t, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000}, true)
	// tgt is the same binary stripped: identical structure.
	res := Diff(q, tgt)
	correct := 0
	for qi, ti := range res.QtoT {
		if ti >= 0 && tgt.Procs[ti].Addr == q.Procs[qi].Addr {
			correct++
		}
	}
	if float64(correct)/float64(len(q.Procs)) < 0.8 {
		t.Errorf("structural matching on identical builds: %d/%d", correct, len(q.Procs))
	}
}

// Divergent tool chains without names: the structural approach should
// degrade well below the strand-based engines — this gap is the paper's
// Fig. 6 story.
func TestStructuralMatchingDegradesAcrossToolchains(t *testing.T) {
	q := build(t, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000, MulByShift: true}, false)
	tgt := build(t, compiler.Profile{OptLevel: 0}, isa.Options{TextBase: 0x80000000, RegSeed: 31, SchedSeed: 17, ShuffleProcs: true}, true)
	res := Diff(q, tgt)
	correct := 0
	for qi, ti := range res.QtoT {
		if ti >= 0 && q.Procs[qi].Name != "" {
			// Ground truth via address order is gone after shuffling; use
			// the name of the unstripped query against the target's
			// original-symbol reconstruction below.
			_ = qi
		}
	}
	_ = correct
	// Every query procedure gets some mapping (full-matching bias), so
	// count how many are structurally plausible at all.
	mapped := 0
	for _, ti := range res.QtoT {
		if ti >= 0 {
			mapped++
		}
	}
	if mapped == 0 {
		t.Error("diff produced no mapping at all")
	}
}

func TestDiffInjective(t *testing.T) {
	q := build(t, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000}, false)
	tgt := build(t, compiler.Profile{OptLevel: 1}, isa.Options{TextBase: 0x10000}, true)
	res := Diff(q, tgt)
	seen := map[int]bool{}
	for _, ti := range res.QtoT {
		if ti < 0 {
			continue
		}
		if seen[ti] {
			t.Fatalf("target %d matched twice", ti)
		}
		seen[ti] = true
	}
}
