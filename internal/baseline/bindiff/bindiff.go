// Package bindiff implements the graph-based whole-binary baseline of
// the paper's evaluation, modeled on zynamics BinDiff: it tries to build
// a full mapping between the procedures of two binaries using symbol
// names when present, structural CFG signatures, call-graph neighborhood
// propagation, and a greedy structural-distance pass for the remainder.
//
// The paper's critique applies by construction: the matcher leans on the
// control structure of procedures and the call graph, both of which vary
// heavily across firmware builds (feature flags, inlining), and on names,
// which stripped firmware lacks.
package bindiff

import (
	"math"
	"sort"
	"strings"

	"firmup/internal/sim"
)

// Result is a full(-as-possible) procedure mapping.
type Result struct {
	// QtoT maps query procedure indices to target indices (-1 when
	// unmatched).
	QtoT []int
	// Phase records which pass produced each match: "name",
	// "signature", "callgraph", "greedy" or "".
	Phase []string
}

// signature is the structural key BinDiff-style matching hinges on.
type signature struct {
	blocks int
	edges  int
	calls  int
}

func sigOf(p *sim.Proc) signature {
	return signature{blocks: p.BlockCount, edges: p.EdgeCount, calls: len(p.Calls)}
}

// Diff computes the mapping.
func Diff(q, t *sim.Exe) Result {
	res := Result{QtoT: make([]int, len(q.Procs)), Phase: make([]string, len(q.Procs))}
	for i := range res.QtoT {
		res.QtoT[i] = -1
	}
	tTaken := make([]bool, len(t.Procs))
	match := func(qi, ti int, phase string) {
		res.QtoT[qi] = ti
		res.Phase[qi] = phase
		tTaken[ti] = true
	}

	// Pass 1: symbol names. BinDiff attributes great importance to the
	// procedure name when it exists.
	tByName := map[string]int{}
	for i, p := range t.Procs {
		if !strings.HasPrefix(p.Name, "sub_") {
			tByName[p.Name] = i
		}
	}
	for qi, p := range q.Procs {
		if strings.HasPrefix(p.Name, "sub_") {
			continue
		}
		if ti, ok := tByName[p.Name]; ok && !tTaken[ti] {
			match(qi, ti, "name")
		}
	}

	// Pass 2: unique structural signatures.
	qBySig := map[signature][]int{}
	tBySig := map[signature][]int{}
	for i, p := range q.Procs {
		if res.QtoT[i] < 0 {
			qBySig[sigOf(p)] = append(qBySig[sigOf(p)], i)
		}
	}
	for i, p := range t.Procs {
		if !tTaken[i] {
			tBySig[sigOf(p)] = append(tBySig[sigOf(p)], i)
		}
	}
	for sig, qs := range qBySig {
		ts := tBySig[sig]
		if len(qs) == 1 && len(ts) == 1 {
			match(qs[0], ts[0], "signature")
		}
	}

	// Pass 3: call-graph neighborhood propagation to a fixed point.
	for changed := true; changed; {
		changed = false
		for qi, ti := range res.QtoT {
			if ti < 0 {
				continue
			}
			changed = propagate(q.Procs[qi].Calls, t.Procs[ti].Calls, q, t, res.QtoT, tTaken, match) || changed
			changed = propagate(q.Procs[qi].CalledBy, t.Procs[ti].CalledBy, q, t, res.QtoT, tTaken, match) || changed
		}
	}

	// Pass 4: greedy nearest-structure matching for the remainder.
	type cand struct {
		qi, ti int
		dist   float64
	}
	var cands []cand
	for qi, p := range q.Procs {
		if res.QtoT[qi] >= 0 {
			continue
		}
		for ti, tp := range t.Procs {
			if tTaken[ti] {
				continue
			}
			cands = append(cands, cand{qi, ti, structDist(p, tp)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].qi != cands[j].qi {
			return cands[i].qi < cands[j].qi
		}
		return cands[i].ti < cands[j].ti
	})
	for _, c := range cands {
		if res.QtoT[c.qi] < 0 && !tTaken[c.ti] {
			match(c.qi, c.ti, "greedy")
		}
	}
	return res
}

// propagate matches unmatched neighbor procedures whose structural
// signature is unique within both neighbor sets.
func propagate(qn, tn []int, q, t *sim.Exe, qToT []int, tTaken []bool, match func(int, int, string)) bool {
	qBySig := map[signature][]int{}
	for _, qi := range qn {
		if qToT[qi] < 0 {
			qBySig[sigOf(q.Procs[qi])] = append(qBySig[sigOf(q.Procs[qi])], qi)
		}
	}
	tBySig := map[signature][]int{}
	for _, ti := range tn {
		if !tTaken[ti] {
			tBySig[sigOf(t.Procs[ti])] = append(tBySig[sigOf(t.Procs[ti])], ti)
		}
	}
	changed := false
	for sig, qs := range qBySig {
		ts := tBySig[sig]
		if len(qs) == 1 && len(ts) == 1 {
			match(qs[0], ts[0], "callgraph")
			changed = true
		}
	}
	return changed
}

// structDist is the greedy pass's structural distance.
func structDist(a, b *sim.Proc) float64 {
	return math.Abs(float64(a.BlockCount-b.BlockCount)) +
		math.Abs(float64(a.EdgeCount-b.EdgeCount)) +
		math.Abs(float64(len(a.Calls)-len(b.Calls))) +
		0.05*math.Abs(float64(a.InstCount-b.InstCount))
}
