// Package buildinfo surfaces the binary's build identity — git
// revision and Go toolchain version — read once from the runtime's
// embedded build information. Every CLI's -version flag and firmupd's
// /healthz report it, so a deployed daemon can always be matched back
// to the commit it was built from.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

var (
	once sync.Once
	rev  string
)

// Revision returns the VCS revision the binary was built from,
// shortened to 12 hex digits, with a "-dirty" suffix when the working
// tree was modified. Builds without VCS stamping (go test, go run from
// a non-repo) report "unknown".
func Revision() string {
	once.Do(func() {
		rev = "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var r string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				r = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if r == "" {
			return
		}
		if len(r) > 12 {
			r = r[:12]
		}
		if dirty {
			r += "-dirty"
		}
		rev = r
	})
	return rev
}

// GoVersion returns the Go toolchain version the binary runs on.
func GoVersion() string { return runtime.Version() }

// String is the one-line -version output shared by the CLIs.
func String() string { return "firmup build " + Revision() + " (" + GoVersion() + ")" }
