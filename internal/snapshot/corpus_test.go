package snapshot

import (
	"errors"
	"reflect"
	"testing"
)

// testCorpus is a small but fully featured sealed corpus: one shared
// vocabulary, two images with differing shapes (skips, no index,
// present-but-empty index).
func testCorpus() *Corpus {
	return &Corpus{
		Interner: []uint64{0xdeadbeef, 0x1122334455667788, 0xcafebabe, 42, 7},
		Images: []CorpusImage{
			{
				Vendor: "netgear", Device: "R6250", Version: "1.0.4",
				Skipped: []Skip{{Path: "bin/busybox", Err: "unsupported arch 0xC8"}},
				Exes: []Exe{
					{
						Path: "bin/wget", Arch: 1, Stripped: true,
						Procs: []Proc{
							{
								Name: "sub_400100", Addr: 0x400100,
								IDs: []uint32{0, 2, 4}, Markers: []uint32{0x1f},
								BlockCount: 7, EdgeCount: 9, InstCount: 55, Calls: []int32{1},
							},
							{
								Name: "sub_400200", Addr: 0x400200, Exported: true,
								IDs: []uint32{1, 3}, BlockCount: 2, EdgeCount: 1, InstCount: 12,
							},
						},
					},
				},
				Index: []IndexRow{
					{ID: 0, Posts: []Posting{{Exe: 0, Proc: 0}}},
					{ID: 2, Posts: []Posting{{Exe: 0, Proc: 0}}},
					{ID: 3, Posts: []Posting{{Exe: 0, Proc: 1}}},
				},
			},
			{
				Vendor: "dlink", Device: "DIR-850", Version: "2.07",
				Exes: []Exe{
					{
						Path: "sbin/httpd", Arch: 2,
						Procs: []Proc{
							{Name: "main", Addr: 0x10000, IDs: []uint32{2}, BlockCount: 1, InstCount: 3},
						},
					},
				},
				// No index: must round-trip as nil, not empty.
			},
		},
	}
}

func mustEncodeCorpus(t *testing.T, c *Corpus) []byte {
	t.Helper()
	b, err := EncodeCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCorpusRoundTrip(t *testing.T) {
	want := testCorpus()
	got, err := DecodeCorpus(mustEncodeCorpus(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCorpusRoundTripEmptyIndex(t *testing.T) {
	// A present-but-empty index is distinct from no index at all: the
	// former means "indexed, nothing qualified", the latter "never
	// indexed". The flag byte must preserve the distinction.
	want := testCorpus()
	want.Images[0].Index = []IndexRow{}
	got, err := DecodeCorpus(mustEncodeCorpus(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Images[0].Index == nil {
		t.Error("present-but-empty index decoded as nil")
	}
	if got.Images[1].Index != nil {
		t.Error("absent index decoded as present")
	}
}

func TestCorpusRoundTripEmpty(t *testing.T) {
	want := &Corpus{}
	got, err := DecodeCorpus(mustEncodeCorpus(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Interner) != 0 || len(got.Images) != 0 {
		t.Errorf("empty corpus round trip: %+v", got)
	}
}

func TestCorpusEncodeRejectsInvalid(t *testing.T) {
	// An ID outside the vocabulary must be rejected at encode time.
	c := testCorpus()
	c.Images[0].Exes[0].Procs[0].IDs = []uint32{99}
	if _, err := EncodeCorpus(c); err == nil {
		t.Error("out-of-vocabulary ID encoded successfully")
	}
	// An index posting pointing past the image's executables likewise.
	c = testCorpus()
	c.Images[0].Index[0].Posts[0].Exe = 9
	if _, err := EncodeCorpus(c); err == nil {
		t.Error("out-of-range index posting encoded successfully")
	}
}

func TestCorpusDecodeCorruption(t *testing.T) {
	blob := mustEncodeCorpus(t, testCorpus())
	for off := 0; off < len(blob); off++ {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x01
		if _, err := DecodeCorpus(bad); err == nil {
			t.Errorf("bit flip at offset %d decoded successfully", off)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at offset %d: error does not wrap ErrCorrupt: %v", off, err)
		}
	}
}

func TestCorpusDecodeTruncation(t *testing.T) {
	blob := mustEncodeCorpus(t, testCorpus())
	for n := 0; n < len(blob); n += 17 {
		if _, err := DecodeCorpus(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestCorpusRejectsImageSnapshot(t *testing.T) {
	// A per-image FWSNAP artifact must not decode as a corpus (different
	// magic), and vice versa.
	img := testModel()
	blob, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCorpus(blob); err == nil {
		t.Error("image snapshot decoded as corpus")
	}
	if _, err := Decode(mustEncodeCorpus(t, testCorpus())); err == nil {
		t.Error("corpus decoded as image snapshot")
	}
}
