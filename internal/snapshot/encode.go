package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Encode serializes an image model into the snapshot container. It
// validates the model's internal references (sorted ID runs, in-range
// calls and postings) so that a successful Encode always produces a
// snapshot Decode accepts.
func Encode(img *Image) ([]byte, error) {
	if err := validate(img); err != nil {
		return nil, err
	}
	type section struct {
		tag     uint32
		payload []byte
	}
	sections := []section{
		{secMeta, encodeMeta(img)},
		{secInterner, encodeInterner(img)},
		{secExes, encodeExes(img)},
	}
	if img.Index != nil {
		sections = append(sections, section{secIndex, encodeIndex(img)})
	}

	out := make([]byte, 0, headerSize+len(sections)*tableEntrySize+payloadLen(sections, func(s section) int { return len(s.payload) }))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	off := uint64(headerSize + len(sections)*tableEntrySize)
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, s.tag)
		out = binary.LittleEndian.AppendUint64(out, off)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.payload, castagnoli))
		off += uint64(len(s.payload))
	}
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out, nil
}

func payloadLen[T any](xs []T, f func(T) int) int {
	n := 0
	for _, x := range xs {
		n += f(x)
	}
	return n
}

// validate checks the model invariants Decode will enforce, so an
// invalid model fails at save time instead of producing an unreadable
// snapshot.
func validate(img *Image) error {
	if err := validateExes(len(img.Interner), img.Exes); err != nil {
		return err
	}
	if err := validateIndex(len(img.Interner), img.Exes, img.Index); err != nil {
		return err
	}
	if len(img.Interner) > math.MaxUint32 {
		return fmt.Errorf("snapshot: encode: vocabulary of %d exceeds the dense-ID space", len(img.Interner))
	}
	return nil
}

func validateExes(vocab int, exes []Exe) error {
	for ei, e := range exes {
		for pi, p := range e.Procs {
			for k, id := range p.IDs {
				if k > 0 && id <= p.IDs[k-1] {
					return fmt.Errorf("snapshot: encode: exe %d proc %d: strand IDs not strictly increasing", ei, pi)
				}
				if int(id) >= vocab {
					return fmt.Errorf("snapshot: encode: exe %d proc %d: strand ID %d outside vocabulary of %d", ei, pi, id, vocab)
				}
			}
			for _, c := range p.Calls {
				if c < 0 || int(c) >= len(e.Procs) {
					return fmt.Errorf("snapshot: encode: exe %d proc %d: call target %d out of range", ei, pi, c)
				}
			}
			if p.BlockCount < 0 || p.EdgeCount < 0 || p.InstCount < 0 {
				return fmt.Errorf("snapshot: encode: exe %d proc %d: negative shape counts", ei, pi)
			}
		}
	}
	return nil
}

func validateIndex(vocab int, exes []Exe, rows []IndexRow) error {
	for ri, r := range rows {
		if ri > 0 && r.ID <= rows[ri-1].ID {
			return fmt.Errorf("snapshot: encode: index rows not strictly increasing at row %d", ri)
		}
		if int(r.ID) >= vocab {
			return fmt.Errorf("snapshot: encode: index row %d: strand ID %d outside vocabulary", ri, r.ID)
		}
		for _, p := range r.Posts {
			if p.Exe < 0 || int(p.Exe) >= len(exes) {
				return fmt.Errorf("snapshot: encode: index row %d: posting exe %d out of range", ri, p.Exe)
			}
			if p.Proc < 0 || int(p.Proc) >= len(exes[p.Exe].Procs) {
				return fmt.Errorf("snapshot: encode: index row %d: posting proc %d out of range", ri, p.Proc)
			}
		}
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeMeta(img *Image) []byte {
	var b []byte
	b = appendString(b, img.Vendor)
	b = appendString(b, img.Device)
	b = appendString(b, img.Version)
	b = appendUvarint(b, uint64(len(img.Skipped)))
	for _, s := range img.Skipped {
		b = appendString(b, s.Path)
		b = appendString(b, s.Err)
	}
	return b
}

func encodeInterner(img *Image) []byte {
	b := make([]byte, 0, binary.MaxVarintLen64+8*len(img.Interner))
	b = appendUvarint(b, uint64(len(img.Interner)))
	for _, h := range img.Interner {
		b = binary.LittleEndian.AppendUint64(b, h)
	}
	return b
}

func encodeExes(img *Image) []byte {
	return encodeExesList(img.Exes)
}

func encodeExesList(exes []Exe) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(exes)))
	for _, e := range exes {
		b = appendString(b, e.Path)
		b = append(b, e.Arch)
		if e.Stripped {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendUvarint(b, uint64(len(e.Procs)))
		for _, p := range e.Procs {
			b = appendString(b, p.Name)
			b = binary.LittleEndian.AppendUint32(b, p.Addr)
			if p.Exported {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			// Strictly increasing IDs, delta-encoded: first value raw,
			// then gaps (always >= 1).
			b = appendUvarint(b, uint64(len(p.IDs)))
			prev := uint32(0)
			for k, id := range p.IDs {
				if k == 0 {
					b = appendUvarint(b, uint64(id))
				} else {
					b = appendUvarint(b, uint64(id-prev))
				}
				prev = id
			}
			b = appendUvarint(b, uint64(len(p.Markers)))
			for _, m := range p.Markers {
				b = appendUvarint(b, uint64(m))
			}
			b = appendUvarint(b, uint64(p.BlockCount))
			b = appendUvarint(b, uint64(p.EdgeCount))
			b = appendUvarint(b, uint64(p.InstCount))
			b = appendUvarint(b, uint64(len(p.Calls)))
			for _, c := range p.Calls {
				b = appendUvarint(b, uint64(c))
			}
		}
	}
	return b
}

func encodeIndex(img *Image) []byte {
	return encodeIndexRows(img.Index)
}

func encodeIndexRows(rows []IndexRow) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(rows)))
	prev := uint32(0)
	for ri, r := range rows {
		if ri == 0 {
			b = appendUvarint(b, uint64(r.ID))
		} else {
			b = appendUvarint(b, uint64(r.ID-prev))
		}
		prev = r.ID
		b = appendUvarint(b, uint64(len(r.Posts)))
		for _, p := range r.Posts {
			b = appendUvarint(b, uint64(p.Exe))
			b = appendUvarint(b, uint64(p.Proc))
		}
	}
	return b
}
