//go:build !linux

package snapshot

import "os"

// mapFile on platforms without wired-up mmap support reads the whole
// file into memory. Same contract, no zero-copy benefit.
func mapFile(f *os.File, size int64) (data []byte, closer func() error, mapped bool, err error) {
	return readAllFile(f, size)
}
