package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustEncodeShard(t *testing.T, c *Corpus, hdr ShardHeader) []byte {
	t.Helper()
	b, err := EncodeCorpusShard(c, hdr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// touchShard walks every accessor of an open shard — the complete
// first-touch surface — returning the first error. Every byte the
// shard can ever serve is CRC-verified by the end of a clean walk.
func touchShard(s *CorpusShard) error {
	if _, err := s.Vocab(); err != nil {
		return err
	}
	if _, _, err := s.SortedVocab(); err != nil {
		return err
	}
	if _, err := s.SigSlab(); err != nil {
		return err
	}
	for i := 0; i < s.NumImages(); i++ {
		info := s.Image(i)
		if _, err := s.ProcCounts(i); err != nil {
			return err
		}
		for e := 0; e < info.Executables; e++ {
			if _, err := s.Exe(i, e); err != nil {
				return err
			}
		}
		if _, err := s.Index(i); err != nil {
			return err
		}
		if _, err := s.ImageSigs(i); err != nil {
			return err
		}
	}
	return nil
}

// corpusProcs counts the procedures of a corpus model — the unit the
// signature slab is sized by.
func corpusProcs(c *Corpus) int {
	n := 0
	for _, img := range c.Images {
		for _, e := range img.Exes {
			n += len(e.Procs)
		}
	}
	return n
}

// withSigs attaches a filled per-procedure signature slab, upgrading
// the model to the v3 shard layout. A model with no procedures is left
// untouched: there is nothing for a slab to describe.
func withSigs(c *Corpus, rng *rand.Rand) *Corpus {
	n := corpusProcs(c)
	if n == 0 {
		return c
	}
	c.Sigs = make([]uint32, n*CorpusSigWords)
	for i := range c.Sigs {
		c.Sigs[i] = rng.Uint32()
	}
	return c
}

// shardToCorpus reconstructs the encoder-side model from an open
// shard, canonicalizing empty slices to nil to match model form.
func shardToCorpus(t *testing.T, s *CorpusShard) *Corpus {
	t.Helper()
	vocab, err := s.Vocab()
	if err != nil {
		t.Fatal(err)
	}
	c := &Corpus{Interner: append([]uint64(nil), vocab...)}
	if len(c.Interner) == 0 {
		c.Interner = nil
	}
	for i := 0; i < s.NumImages(); i++ {
		info := s.Image(i)
		ci := CorpusImage{Vendor: info.Vendor, Device: info.Device, Version: info.Version, Skipped: info.Skipped}
		for e := 0; e < info.Executables; e++ {
			ed, err := s.Exe(i, e)
			if err != nil {
				t.Fatal(err)
			}
			se := Exe{Path: ed.Path, Arch: ed.Arch, Stripped: ed.Stripped}
			for _, pd := range ed.Procs {
				sp := Proc{
					Name: pd.Name, Addr: pd.Addr, Exported: pd.Exported,
					BlockCount: pd.BlockCount, EdgeCount: pd.EdgeCount, InstCount: pd.InstCount,
				}
				if len(pd.IDs) > 0 {
					sp.IDs = append([]uint32(nil), pd.IDs...)
				}
				if len(pd.Markers) > 0 {
					sp.Markers = append([]uint32(nil), pd.Markers...)
				}
				if len(pd.Calls) > 0 {
					sp.Calls = append([]int32(nil), pd.Calls...)
				}
				se.Procs = append(se.Procs, sp)
			}
			ci.Exes = append(ci.Exes, se)
		}
		slabs, err := s.Index(i)
		if err != nil {
			t.Fatal(err)
		}
		if slabs != nil {
			ci.Index = []IndexRow{}
			for k, id := range slabs.RowIDs {
				lo := uint32(0)
				if k > 0 {
					lo = slabs.RowEnds[k-1]
				}
				ci.Index = append(ci.Index, IndexRow{
					ID:    id,
					Posts: append([]Posting(nil), slabs.Posts[lo:slabs.RowEnds[k]]...),
				})
			}
		}
		c.Images = append(c.Images, ci)
	}
	if s.HasSignatures() {
		slab, err := s.SigSlab()
		if err != nil {
			t.Fatal(err)
		}
		c.Sigs = append([]uint32(nil), slab...)
	}
	return c
}

// randomCorpusModel generates a structurally valid corpus over one
// shared vocabulary, reusing the image-model generator for shapes.
func randomCorpusModel(rng *rand.Rand) *Corpus {
	c := &Corpus{}
	seen := map[uint64]bool{}
	for vocab := 1 + rng.Intn(250); len(c.Interner) < vocab; {
		h := rng.Uint64()
		if !seen[h] {
			seen[h] = true
			c.Interner = append(c.Interner, h)
		}
	}
	nimg := 1 + rng.Intn(4)
	for i := 0; i < nimg; i++ {
		m := randomModel(rng)
		ci := CorpusImage{Vendor: m.Vendor, Device: m.Device, Version: m.Version, Skipped: m.Skipped, Exes: m.Exes}
		// Rebase the image's ID sets and index into the shared vocabulary.
		for ei := range ci.Exes {
			for pi := range ci.Exes[ei].Procs {
				ci.Exes[ei].Procs[pi].IDs = randIDSet(rng, len(c.Interner), 30)
			}
		}
		if rng.Intn(4) > 0 {
			var idx []IndexRow
			for _, id := range randIDSet(rng, len(c.Interner), 40) {
				var posts []Posting
				for k := 1 + rng.Intn(3); k > 0; k-- {
					if len(ci.Exes) == 0 {
						break
					}
					ei := rng.Intn(len(ci.Exes))
					if len(ci.Exes[ei].Procs) == 0 {
						continue
					}
					posts = append(posts, Posting{Exe: int32(ei), Proc: int32(rng.Intn(len(ci.Exes[ei].Procs)))})
				}
				if len(posts) > 0 {
					idx = append(idx, IndexRow{ID: id, Posts: posts})
				}
			}
			if idx == nil {
				idx = []IndexRow{}
			}
			ci.Index = idx
		}
		c.Images = append(c.Images, ci)
	}
	if rng.Intn(2) == 0 {
		withSigs(c, rng)
	}
	return c
}

func TestCorpusShardRoundTrip(t *testing.T) {
	models := []*Corpus{testCorpus()}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		models = append(models, randomCorpusModel(rng))
	}
	for mi, want := range models {
		data := mustEncodeShard(t, want, ShardHeader{ShardCount: 1, TotalImages: len(want.Images)})
		s, err := OpenCorpusShardBytes(data)
		if err != nil {
			t.Fatalf("model %d: open: %v", mi, err)
		}
		if err := touchShard(s); err != nil {
			t.Fatalf("model %d: touch: %v", mi, err)
		}
		got := shardToCorpus(t, s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("model %d: round trip mismatch:\n got %+v\nwant %+v", mi, got, want)
		}
	}
}

func TestCorpusShardHeaderRoundTrip(t *testing.T) {
	hdr := ShardHeader{ShardIndex: 3, ShardCount: 7, ImageBase: 12, TotalImages: 40}
	s, err := OpenCorpusShardBytes(mustEncodeShard(t, testCorpus(), hdr))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Header(); got != hdr {
		t.Errorf("header round trip: got %+v want %+v", got, hdr)
	}
	if v, err := CorpusVersion(s.data); err != nil || v != CorpusFormatVersionV2 {
		t.Errorf("CorpusVersion = %d, %v", v, err)
	}
}

func TestCorpusShardBadHeader(t *testing.T) {
	c := testCorpus()
	for _, hdr := range []ShardHeader{
		{ShardIndex: -1, ShardCount: 1, TotalImages: 2},
		{ShardIndex: 1, ShardCount: 1, TotalImages: 2},
		{ShardCount: 0, TotalImages: 2},
		{ShardCount: 1, ImageBase: 1, TotalImages: 2},
		{ShardCount: 1, TotalImages: 1},
	} {
		if _, err := EncodeCorpusShard(c, hdr); err == nil {
			t.Errorf("EncodeCorpusShard accepted invalid header %+v", hdr)
		}
	}
}

func TestCorpusShardSectionAlignment(t *testing.T) {
	c := randomCorpusModel(rand.New(rand.NewSource(11)))
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	table, version, err := parseCorpusV2Table(data)
	if err != nil {
		t.Fatal(err)
	}
	wantVersion, wantSections := uint32(CorpusFormatVersionV2), v2NumSections-1
	if c.Sigs != nil {
		wantVersion, wantSections = CorpusFormatVersionV3, v2NumSections
	}
	if version != wantVersion {
		t.Fatalf("shard parsed as version %d, want %d", version, wantVersion)
	}
	if len(table) != wantSections {
		t.Fatalf("section count = %d, want %d", len(table), wantSections)
	}
	for _, e := range table {
		if e.length > 0 && e.off%v2Align != 0 {
			t.Errorf("section %s at offset %d is not %d-byte aligned", v2SectionName(e.tag), e.off, v2Align)
		}
	}
}

// TestCorpusShardBoundaryCorruption flips one byte at the first and
// last byte of every section (the section-alignment boundaries of the
// container) and requires the open-plus-walk sequence to surface an
// error wrapping ErrCorrupt — the per-section CRC must catch every
// flip on first touch, and nothing may panic.
func TestCorpusShardBoundaryCorruption(t *testing.T) {
	for _, c := range []*Corpus{testCorpus(), withSigs(testCorpus(), rand.New(rand.NewSource(17)))} {
		orig := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
		table, _, err := parseCorpusV2Table(orig)
		if err != nil {
			t.Fatal(err)
		}
		flip := func(name string, pos uint64) {
			data := append([]byte(nil), orig...)
			data[pos] ^= 0x5a
			s, err := OpenCorpusShardBytes(data)
			if err == nil {
				err = touchShard(s)
			}
			if err == nil {
				t.Errorf("%s: flipped byte at %d went undetected", name, pos)
				return
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s: error does not wrap ErrCorrupt: %v", name, err)
			}
		}
		for _, e := range table {
			if e.length == 0 {
				continue
			}
			name := v2SectionName(e.tag)
			flip(name+"/first", e.off)
			flip(name+"/last", e.off+e.length-1)
		}
		// And the header itself.
		flip("header/version", 8)
	}
}

// TestCorpusShardTruncation opens every prefix of a valid shard: each
// must fail with ErrCorrupt (or, for accessor-time failures, surface
// it on first touch) and never panic — mapped files can be truncated
// underneath the reader.
func TestCorpusShardTruncation(t *testing.T) {
	for _, c := range []*Corpus{testCorpus(), withSigs(testCorpus(), rand.New(rand.NewSource(19)))} {
		data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
		for k := 0; k < len(data); k++ {
			s, err := OpenCorpusShardBytes(data[:k])
			if err == nil {
				err = touchShard(s)
			}
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes went undetected", k, len(data))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation to %d: error does not wrap ErrCorrupt: %v", k, err)
			}
		}
	}
}

// TestCorpusShardV3Signatures pins the v3 container: signature slab
// round trip, per-image slab partitioning, v2 openers reporting no
// signatures, and version/section-set agreement both ways.
func TestCorpusShardV3Signatures(t *testing.T) {
	c := withSigs(testCorpus(), rand.New(rand.NewSource(5)))
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	if v, err := CorpusVersion(data); err != nil || v != CorpusFormatVersionV3 {
		t.Fatalf("CorpusVersion = %d, %v; want %d", v, err, CorpusFormatVersionV3)
	}
	s, err := OpenCorpusShardBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasSignatures() || s.Version() != CorpusFormatVersionV3 {
		t.Fatalf("HasSignatures=%v Version=%d, want true/%d", s.HasSignatures(), s.Version(), CorpusFormatVersionV3)
	}
	slab, err := s.SigSlab()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slab, c.Sigs) {
		t.Error("signature slab does not round-trip")
	}
	// Per-image slices must partition the slab in image order.
	off := 0
	for i := range c.Images {
		nprocs := 0
		for _, e := range c.Images[i].Exes {
			nprocs += len(e.Procs)
		}
		got, err := s.ImageSigs(i)
		if err != nil {
			t.Fatal(err)
		}
		want := c.Sigs[off*CorpusSigWords : (off+nprocs)*CorpusSigWords]
		if nprocs == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("image %d: ImageSigs does not match its slab segment", i)
		}
		off += nprocs
	}
	if _, err := s.ImageSigs(-1); err == nil {
		t.Error("out-of-range ImageSigs accepted")
	}

	// A sig-less shard stays v2 and reports no signatures.
	c2 := testCorpus()
	s2, err := OpenCorpusShardBytes(mustEncodeShard(t, c2, ShardHeader{ShardCount: 1, TotalImages: len(c2.Images)}))
	if err != nil {
		t.Fatal(err)
	}
	if s2.HasSignatures() || s2.Version() != CorpusFormatVersionV2 {
		t.Fatalf("sig-less shard: HasSignatures=%v Version=%d", s2.HasSignatures(), s2.Version())
	}
	if slab, err := s2.SigSlab(); slab != nil || err != nil {
		t.Errorf("v2 SigSlab = %v, %v; want nil, nil", slab, err)
	}
	if sigs, err := s2.ImageSigs(0); sigs != nil || err != nil {
		t.Errorf("v2 ImageSigs = %v, %v; want nil, nil", sigs, err)
	}

	// Downgrading the header version byte must be rejected: a v2
	// section table may not carry a corpus-sigs section.
	bad := append([]byte(nil), data...)
	bad[8] = CorpusFormatVersionV2
	if _, err := OpenCorpusShardBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("v2-tagged shard with a sigs section opened: %v", err)
	}
}

// TestEncodeCorpusShardBadSigs pins the encoder's slab length check.
func TestEncodeCorpusShardBadSigs(t *testing.T) {
	c := testCorpus()
	c.Sigs = make([]uint32, 3)
	if _, err := EncodeCorpusShard(c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)}); err == nil {
		t.Error("mis-sized signature slab accepted")
	}
}

// TestCorpusShardSlabCopyFallback pins the copy path (hosts without
// unsafe zero-copy casts) to the zero-copy result.
func TestCorpusShardSlabCopyFallback(t *testing.T) {
	c := randomCorpusModel(rand.New(rand.NewSource(23)))
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	open := func() *Corpus {
		s, err := OpenCorpusShardBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		return shardToCorpus(t, s)
	}
	fast := open()
	forceSlabCopy = true
	defer func() { forceSlabCopy = false }()
	slow := open()
	if !reflect.DeepEqual(fast, slow) {
		t.Error("slab copy fallback decodes differently from zero-copy")
	}
}

func TestOpenCorpusShardFile(t *testing.T) {
	c := testCorpus()
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	path := filepath.Join(t.TempDir(), "shard-0000.fwcorp")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpusShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := touchShard(s); err != nil {
		t.Fatal(err)
	}
	if got := shardToCorpus(t, s); !reflect.DeepEqual(got, c) {
		t.Error("file-backed shard decodes differently from the model")
	}
	if s.SizeBytes() != int64(len(data)) {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), len(data))
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
