package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustEncodeShard(t *testing.T, c *Corpus, hdr ShardHeader) []byte {
	t.Helper()
	b, err := EncodeCorpusShard(c, hdr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// touchShard walks every accessor of an open shard — the complete
// first-touch surface — returning the first error. Every byte the
// shard can ever serve is CRC-verified by the end of a clean walk.
func touchShard(s *CorpusShard) error {
	if _, err := s.Vocab(); err != nil {
		return err
	}
	if _, _, err := s.SortedVocab(); err != nil {
		return err
	}
	for i := 0; i < s.NumImages(); i++ {
		info := s.Image(i)
		if _, err := s.ProcCounts(i); err != nil {
			return err
		}
		for e := 0; e < info.Executables; e++ {
			if _, err := s.Exe(i, e); err != nil {
				return err
			}
		}
		if _, err := s.Index(i); err != nil {
			return err
		}
	}
	return nil
}

// shardToCorpus reconstructs the encoder-side model from an open
// shard, canonicalizing empty slices to nil to match model form.
func shardToCorpus(t *testing.T, s *CorpusShard) *Corpus {
	t.Helper()
	vocab, err := s.Vocab()
	if err != nil {
		t.Fatal(err)
	}
	c := &Corpus{Interner: append([]uint64(nil), vocab...)}
	if len(c.Interner) == 0 {
		c.Interner = nil
	}
	for i := 0; i < s.NumImages(); i++ {
		info := s.Image(i)
		ci := CorpusImage{Vendor: info.Vendor, Device: info.Device, Version: info.Version, Skipped: info.Skipped}
		for e := 0; e < info.Executables; e++ {
			ed, err := s.Exe(i, e)
			if err != nil {
				t.Fatal(err)
			}
			se := Exe{Path: ed.Path, Arch: ed.Arch, Stripped: ed.Stripped}
			for _, pd := range ed.Procs {
				sp := Proc{
					Name: pd.Name, Addr: pd.Addr, Exported: pd.Exported,
					BlockCount: pd.BlockCount, EdgeCount: pd.EdgeCount, InstCount: pd.InstCount,
				}
				if len(pd.IDs) > 0 {
					sp.IDs = append([]uint32(nil), pd.IDs...)
				}
				if len(pd.Markers) > 0 {
					sp.Markers = append([]uint32(nil), pd.Markers...)
				}
				if len(pd.Calls) > 0 {
					sp.Calls = append([]int32(nil), pd.Calls...)
				}
				se.Procs = append(se.Procs, sp)
			}
			ci.Exes = append(ci.Exes, se)
		}
		slabs, err := s.Index(i)
		if err != nil {
			t.Fatal(err)
		}
		if slabs != nil {
			ci.Index = []IndexRow{}
			for k, id := range slabs.RowIDs {
				lo := uint32(0)
				if k > 0 {
					lo = slabs.RowEnds[k-1]
				}
				ci.Index = append(ci.Index, IndexRow{
					ID:    id,
					Posts: append([]Posting(nil), slabs.Posts[lo:slabs.RowEnds[k]]...),
				})
			}
		}
		c.Images = append(c.Images, ci)
	}
	return c
}

// randomCorpusModel generates a structurally valid corpus over one
// shared vocabulary, reusing the image-model generator for shapes.
func randomCorpusModel(rng *rand.Rand) *Corpus {
	c := &Corpus{}
	seen := map[uint64]bool{}
	for vocab := 1 + rng.Intn(250); len(c.Interner) < vocab; {
		h := rng.Uint64()
		if !seen[h] {
			seen[h] = true
			c.Interner = append(c.Interner, h)
		}
	}
	nimg := 1 + rng.Intn(4)
	for i := 0; i < nimg; i++ {
		m := randomModel(rng)
		ci := CorpusImage{Vendor: m.Vendor, Device: m.Device, Version: m.Version, Skipped: m.Skipped, Exes: m.Exes}
		// Rebase the image's ID sets and index into the shared vocabulary.
		for ei := range ci.Exes {
			for pi := range ci.Exes[ei].Procs {
				ci.Exes[ei].Procs[pi].IDs = randIDSet(rng, len(c.Interner), 30)
			}
		}
		if rng.Intn(4) > 0 {
			var idx []IndexRow
			for _, id := range randIDSet(rng, len(c.Interner), 40) {
				var posts []Posting
				for k := 1 + rng.Intn(3); k > 0; k-- {
					if len(ci.Exes) == 0 {
						break
					}
					ei := rng.Intn(len(ci.Exes))
					if len(ci.Exes[ei].Procs) == 0 {
						continue
					}
					posts = append(posts, Posting{Exe: int32(ei), Proc: int32(rng.Intn(len(ci.Exes[ei].Procs)))})
				}
				if len(posts) > 0 {
					idx = append(idx, IndexRow{ID: id, Posts: posts})
				}
			}
			if idx == nil {
				idx = []IndexRow{}
			}
			ci.Index = idx
		}
		c.Images = append(c.Images, ci)
	}
	return c
}

func TestCorpusShardRoundTrip(t *testing.T) {
	models := []*Corpus{testCorpus()}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		models = append(models, randomCorpusModel(rng))
	}
	for mi, want := range models {
		data := mustEncodeShard(t, want, ShardHeader{ShardCount: 1, TotalImages: len(want.Images)})
		s, err := OpenCorpusShardBytes(data)
		if err != nil {
			t.Fatalf("model %d: open: %v", mi, err)
		}
		if err := touchShard(s); err != nil {
			t.Fatalf("model %d: touch: %v", mi, err)
		}
		got := shardToCorpus(t, s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("model %d: round trip mismatch:\n got %+v\nwant %+v", mi, got, want)
		}
	}
}

func TestCorpusShardHeaderRoundTrip(t *testing.T) {
	hdr := ShardHeader{ShardIndex: 3, ShardCount: 7, ImageBase: 12, TotalImages: 40}
	s, err := OpenCorpusShardBytes(mustEncodeShard(t, testCorpus(), hdr))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Header(); got != hdr {
		t.Errorf("header round trip: got %+v want %+v", got, hdr)
	}
	if v, err := CorpusVersion(s.data); err != nil || v != CorpusFormatVersionV2 {
		t.Errorf("CorpusVersion = %d, %v", v, err)
	}
}

func TestCorpusShardBadHeader(t *testing.T) {
	c := testCorpus()
	for _, hdr := range []ShardHeader{
		{ShardIndex: -1, ShardCount: 1, TotalImages: 2},
		{ShardIndex: 1, ShardCount: 1, TotalImages: 2},
		{ShardCount: 0, TotalImages: 2},
		{ShardCount: 1, ImageBase: 1, TotalImages: 2},
		{ShardCount: 1, TotalImages: 1},
	} {
		if _, err := EncodeCorpusShard(c, hdr); err == nil {
			t.Errorf("EncodeCorpusShard accepted invalid header %+v", hdr)
		}
	}
}

func TestCorpusShardSectionAlignment(t *testing.T) {
	c := randomCorpusModel(rand.New(rand.NewSource(11)))
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	table, err := parseCorpusV2Table(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != v2NumSections {
		t.Fatalf("section count = %d, want %d", len(table), v2NumSections)
	}
	for _, e := range table {
		if e.length > 0 && e.off%v2Align != 0 {
			t.Errorf("section %s at offset %d is not %d-byte aligned", v2SectionName(e.tag), e.off, v2Align)
		}
	}
}

// TestCorpusShardBoundaryCorruption flips one byte at the first and
// last byte of every section (the section-alignment boundaries of the
// container) and requires the open-plus-walk sequence to surface an
// error wrapping ErrCorrupt — the per-section CRC must catch every
// flip on first touch, and nothing may panic.
func TestCorpusShardBoundaryCorruption(t *testing.T) {
	c := testCorpus()
	orig := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	table, err := parseCorpusV2Table(orig)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(name string, pos uint64) {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x5a
		s, err := OpenCorpusShardBytes(data)
		if err == nil {
			err = touchShard(s)
		}
		if err == nil {
			t.Errorf("%s: flipped byte at %d went undetected", name, pos)
			return
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error does not wrap ErrCorrupt: %v", name, err)
		}
	}
	for _, e := range table {
		if e.length == 0 {
			continue
		}
		name := v2SectionName(e.tag)
		flip(name+"/first", e.off)
		flip(name+"/last", e.off+e.length-1)
	}
	// And the header itself.
	flip("header/version", 8)
}

// TestCorpusShardTruncation opens every prefix of a valid shard: each
// must fail with ErrCorrupt (or, for accessor-time failures, surface
// it on first touch) and never panic — mapped files can be truncated
// underneath the reader.
func TestCorpusShardTruncation(t *testing.T) {
	c := testCorpus()
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	for k := 0; k < len(data); k++ {
		s, err := OpenCorpusShardBytes(data[:k])
		if err == nil {
			err = touchShard(s)
		}
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", k, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error does not wrap ErrCorrupt: %v", k, err)
		}
	}
}

// TestCorpusShardSlabCopyFallback pins the copy path (hosts without
// unsafe zero-copy casts) to the zero-copy result.
func TestCorpusShardSlabCopyFallback(t *testing.T) {
	c := randomCorpusModel(rand.New(rand.NewSource(23)))
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	open := func() *Corpus {
		s, err := OpenCorpusShardBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		return shardToCorpus(t, s)
	}
	fast := open()
	forceSlabCopy = true
	defer func() { forceSlabCopy = false }()
	slow := open()
	if !reflect.DeepEqual(fast, slow) {
		t.Error("slab copy fallback decodes differently from zero-copy")
	}
}

func TestOpenCorpusShardFile(t *testing.T) {
	c := testCorpus()
	data := mustEncodeShard(t, c, ShardHeader{ShardCount: 1, TotalImages: len(c.Images)})
	path := filepath.Join(t.TempDir(), "shard-0000.fwcorp")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCorpusShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := touchShard(s); err != nil {
		t.Fatal(err)
	}
	if got := shardToCorpus(t, s); !reflect.DeepEqual(got, c) {
		t.Error("file-backed shard decodes differently from the model")
	}
	if s.SizeBytes() != int64(len(data)) {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), len(data))
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
