package snapshot

import (
	"encoding/binary"
	"unsafe"
)

// The v2 corpus container stores its bulk payloads as fixed-width
// little-endian slabs so that on little-endian hosts a section of the
// mapped file IS the in-memory slice: no decode pass, no allocation,
// just a pointer cast. Big-endian hosts (and misaligned inputs, which
// cannot happen for sections we wrote ourselves but can for hostile
// ones) fall back to an explicit copying decode.

// hostLittleEndian reports whether the running machine stores integers
// little-endian, i.e. whether zero-copy slab casts are byte-correct.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forceSlabCopy is a test hook: when set, every slab cast takes the
// portable copying path even on little-endian hosts, so tests can prove
// the two paths decode identically.
var forceSlabCopy bool

// castU32 views b as a little-endian []uint32, zero-copy when the host
// byte order and alignment allow it.
func castU32(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && !forceSlabCopy && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// castU64 views b as a little-endian []uint64, zero-copy when possible.
func castU64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && !forceSlabCopy && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint64(0)) == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// castPostings views b as a little-endian []Posting (exe u32, proc u32
// pairs), zero-copy when Posting's memory layout matches the wire
// layout on this host.
func castPostings(b []byte) []Posting {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && !forceSlabCopy &&
		unsafe.Sizeof(Posting{}) == 8 &&
		uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(Posting{}) == 0 {
		return unsafe.Slice((*Posting)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Posting, n)
	for i := range out {
		out[i] = Posting{
			Exe:  int32(binary.LittleEndian.Uint32(b[i*8:])),
			Proc: int32(binary.LittleEndian.Uint32(b[i*8+4:])),
		}
	}
	return out
}
