package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// testModel is a small but fully featured image: two executables,
// skipped diagnostics, markers, calls and an inverted index.
func testModel() *Image {
	return &Image{
		Vendor:   "netgear",
		Device:   "R6250",
		Version:  "1.0.4",
		Skipped:  []Skip{{Path: "bin/busybox", Err: "unsupported arch 0xC8"}},
		Interner: []uint64{0xdeadbeef, 0x1122334455667788, 0xcafebabe, 42, 7},
		Exes: []Exe{
			{
				Path: "bin/wget", Arch: 1, Stripped: true,
				Procs: []Proc{
					{
						Name: "sub_400100", Addr: 0x400100, Exported: false,
						IDs: []uint32{0, 2, 4}, Markers: []uint32{0x1f, 0x2e},
						BlockCount: 7, EdgeCount: 9, InstCount: 55, Calls: []int32{1},
					},
					{
						Name: "sub_400200", Addr: 0x400200, Exported: true,
						IDs: []uint32{1, 3}, BlockCount: 2, EdgeCount: 1, InstCount: 12,
					},
				},
			},
			{
				Path: "sbin/httpd", Arch: 2, Stripped: false,
				Procs: []Proc{
					{Name: "main", Addr: 0x10000, IDs: []uint32{2}, BlockCount: 1, InstCount: 3},
				},
			},
		},
		Index: []IndexRow{
			{ID: 0, Posts: []Posting{{Exe: 0, Proc: 0}}},
			{ID: 1, Posts: []Posting{{Exe: 0, Proc: 1}}},
			{ID: 2, Posts: []Posting{{Exe: 0, Proc: 0}, {Exe: 1, Proc: 0}}},
			{ID: 3, Posts: []Posting{{Exe: 0, Proc: 1}}},
			{ID: 4, Posts: []Posting{{Exe: 0, Proc: 0}}},
		},
	}
}

func mustEncode(t *testing.T, m *Image) []byte {
	t.Helper()
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	m := testModel()
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip diverged:\ngot:  %+v\nwant: %+v", got, m)
	}
}

func TestRoundTripNoIndex(t *testing.T) {
	m := testModel()
	m.Index = nil
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != nil {
		t.Errorf("nil index round-tripped to %+v", got.Index)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip diverged:\ngot:  %+v\nwant: %+v", got, m)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	m := &Image{}
	got, err := Decode(mustEncode(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip diverged:\ngot:  %+v\nwant: %+v", got, m)
	}
}

// TestEncodeRejectsInvalid: an invalid model must fail at save time,
// not produce an undecodable snapshot.
func TestEncodeRejectsInvalid(t *testing.T) {
	for name, mutate := range map[string]func(*Image){
		"unsorted-ids":      func(m *Image) { m.Exes[0].Procs[0].IDs = []uint32{2, 0} },
		"id-out-of-vocab":   func(m *Image) { m.Exes[0].Procs[0].IDs = []uint32{99} },
		"call-out-of-range": func(m *Image) { m.Exes[0].Procs[0].Calls = []int32{7} },
		"negative-count":    func(m *Image) { m.Exes[0].Procs[0].BlockCount = -1 },
		"index-unsorted":    func(m *Image) { m.Index[1].ID = 0 },
		"posting-bad-exe":   func(m *Image) { m.Index[0].Posts[0].Exe = 9 },
	} {
		m := testModel()
		mutate(m)
		if _, err := Encode(m); err == nil {
			t.Errorf("%s: Encode accepted an invalid model", name)
		}
	}
}

// rewriteCRCs recomputes every section checksum in place, so tests can
// tamper with payload bytes and exercise the decoder's structural
// checks rather than tripping the CRC first.
func rewriteCRCs(t *testing.T, data []byte) {
	t.Helper()
	entries, err := parseTable(data)
	if err != nil {
		t.Fatalf("rewriteCRCs on unparseable snapshot: %v", err)
	}
	for i, e := range entries {
		crc := crc32.Checksum(data[e.off:e.off+e.length], castagnoli)
		binary.LittleEndian.PutUint32(data[headerSize+i*tableEntrySize+20:], crc)
	}
}

// sectionEntry finds the table entry for a tag.
func sectionEntry(t *testing.T, data []byte, tag uint32) (idx int, e tableEntry) {
	t.Helper()
	entries, err := parseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, en := range entries {
		if en.tag == tag {
			return i, en
		}
	}
	t.Fatalf("no section %s", sectionName(tag))
	return 0, tableEntry{}
}

// TestDecodeFaultInjection drives the decoder through the corruption
// matrix: truncation at every section boundary, bit flips in header,
// table and payloads, wrong magic, future versions, and declared
// lengths that exceed the file. Every case must fail with ErrCorrupt —
// never a panic — and name the offending section where one is known.
func TestDecodeFaultInjection(t *testing.T) {
	base := mustEncode(t, testModel())

	type tc struct {
		name        string
		mutate      func(t *testing.T, d []byte) []byte
		wantSection string // "" = any
	}
	cases := []tc{
		{"empty", func(t *testing.T, d []byte) []byte { return nil }, "header"},
		{"truncated-header", func(t *testing.T, d []byte) []byte { return d[:headerSize-3] }, "header"},
		{"wrong-magic", func(t *testing.T, d []byte) []byte { d[0] = 'X'; return d }, "header"},
		{"magic-bit-flip", func(t *testing.T, d []byte) []byte { d[3] ^= 0x20; return d }, "header"},
		{"future-version", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[len(magic):], FormatVersion+1)
			return d
		}, "header"},
		{"version-bit-flip", func(t *testing.T, d []byte) []byte { d[len(magic)] ^= 0x80; return d }, "header"},
		{"zero-sections", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[len(magic)+4:], 0)
			return d
		}, "header"},
		{"absurd-section-count", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[len(magic)+4:], 1<<30)
			return d
		}, "header"},
		{"truncated-table", func(t *testing.T, d []byte) []byte { return d[:headerSize+tableEntrySize/2] }, "table"},
		{"unknown-section-tag", func(t *testing.T, d []byte) []byte {
			binary.LittleEndian.PutUint32(d[headerSize:], 99)
			return d
		}, "table"},
		{"duplicate-section", func(t *testing.T, d []byte) []byte {
			// Retag the index section as a second meta section.
			i, _ := sectionEntry(t, d, secIndex)
			binary.LittleEndian.PutUint32(d[headerSize+i*tableEntrySize:], secMeta)
			return d
		}, "table"},
		{"missing-required-section", func(t *testing.T, d []byte) []byte {
			// Shrink the table so the exes section disappears.
			binary.LittleEndian.PutUint32(d[len(magic)+4:], 2)
			return d
		}, "table"},
		{"length-exceeds-file", func(t *testing.T, d []byte) []byte {
			i, _ := sectionEntry(t, d, secInterner)
			binary.LittleEndian.PutUint64(d[headerSize+i*tableEntrySize+12:], uint64(len(d))*4)
			return d
		}, "interner"},
		{"offset-exceeds-file", func(t *testing.T, d []byte) []byte {
			i, _ := sectionEntry(t, d, secExes)
			binary.LittleEndian.PutUint64(d[headerSize+i*tableEntrySize+4:], uint64(len(d))+1)
			return d
		}, "exes"},
		{"overflowing-offset", func(t *testing.T, d []byte) []byte {
			// offset+length would wrap uint64: must be rejected, not wrapped.
			i, _ := sectionEntry(t, d, secExes)
			binary.LittleEndian.PutUint64(d[headerSize+i*tableEntrySize+4:], ^uint64(0)-8)
			return d
		}, "exes"},
	}
	// Truncation at (and just inside) every section boundary.
	{
		entries, err := parseTable(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			e := e
			name := sectionName(e.tag)
			cases = append(cases,
				tc{"truncate-before-" + name, func(t *testing.T, d []byte) []byte { return d[:e.off] }, ""},
				tc{"truncate-inside-" + name, func(t *testing.T, d []byte) []byte { return d[:e.off+e.length-1] }, ""},
			)
		}
	}
	// Single-bit flips inside every section payload: the checksum must
	// catch what the structural checks cannot.
	{
		entries, err := parseTable(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			e := e
			name := sectionName(e.tag)
			cases = append(cases, tc{"bit-flip-in-" + name, func(t *testing.T, d []byte) []byte {
				d[e.off+e.length/2] ^= 1
				return d
			}, name})
		}
	}
	// Declared-count lies inside payloads, with checksums repaired so
	// the structural bounds checks themselves are exercised.
	cases = append(cases,
		tc{"interner-count-lie", func(t *testing.T, d []byte) []byte {
			_, e := sectionEntry(t, d, secInterner)
			// Overwrite the leading count uvarint with a huge 10-byte varint.
			lie := binary.AppendUvarint(nil, 1<<40)
			grown := append(append(append([]byte(nil), d[:e.off]...), lie...), d[e.off+uint64(varintLen(t, d[e.off:])):]...)
			fixupLengths(t, grown, secInterner, uint64(len(lie))-uint64(varintLen(t, d[e.off:])))
			rewriteCRCs(t, grown)
			return grown
		}, "interner"},
		tc{"exes-count-lie", func(t *testing.T, d []byte) []byte {
			_, e := sectionEntry(t, d, secExes)
			lie := binary.AppendUvarint(nil, 1<<40)
			grown := append(append(append([]byte(nil), d[:e.off]...), lie...), d[e.off+uint64(varintLen(t, d[e.off:])):]...)
			fixupLengths(t, grown, secExes, uint64(len(lie))-uint64(varintLen(t, d[e.off:])))
			rewriteCRCs(t, grown)
			return grown
		}, "exes"},
		tc{"strand-id-out-of-vocabulary", func(t *testing.T, d []byte) []byte {
			// Shrink the interner to one hash: exes now reference IDs
			// beyond the vocabulary and the link check must catch it.
			_, e := sectionEntry(t, d, secInterner)
			one := binary.AppendUvarint(nil, 1)
			one = binary.LittleEndian.AppendUint64(one, 0xabcdef)
			shrunk := append(append(append([]byte(nil), d[:e.off]...), one...), d[e.off+e.length:]...)
			fixupLengths(t, shrunk, secInterner, uint64(len(one))-e.length)
			rewriteCRCs(t, shrunk)
			return shrunk
		}, "exes"},
		tc{"trailing-payload-bytes", func(t *testing.T, d []byte) []byte {
			// Grow the meta section's declared length into the next
			// payload: decode must reject the leftover bytes.
			i, e := sectionEntry(t, d, secMeta)
			binary.LittleEndian.PutUint64(d[headerSize+i*tableEntrySize+12:], e.length+1)
			rewriteCRCs(t, d)
			return d
		}, "meta"},
	)

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(t, append([]byte(nil), base...))
			img, err := Decode(data)
			if err == nil {
				t.Fatalf("decoder accepted corrupt input (img=%+v)", img)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) || ce.Section == "" {
				t.Fatalf("error %v does not name a section", err)
			}
			if c.wantSection != "" && ce.Section != c.wantSection {
				t.Errorf("offending section = %q, want %q (err: %v)", ce.Section, c.wantSection, err)
			}
		})
	}
}

// varintLen returns the byte length of the leading uvarint.
func varintLen(t *testing.T, b []byte) int {
	t.Helper()
	_, n := binary.Uvarint(b)
	if n <= 0 {
		t.Fatal("no leading uvarint")
	}
	return n
}

// fixupLengths adjusts the section table after a payload grew or shrank
// by delta bytes (two's complement): the tampered section's length and
// every later section's offset. It patches raw table rows — the
// intermediate state is out of bounds by construction, so it must not
// go through parseTable.
func fixupLengths(t *testing.T, data []byte, tag uint32, delta uint64) {
	t.Helper()
	n := int(binary.LittleEndian.Uint32(data[len(magic)+4:]))
	tamperedOff := ^uint64(0)
	for j := 0; j < n; j++ {
		row := data[headerSize+j*tableEntrySize:]
		if binary.LittleEndian.Uint32(row) == tag {
			tamperedOff = binary.LittleEndian.Uint64(row[4:])
			binary.LittleEndian.PutUint64(row[12:], binary.LittleEndian.Uint64(row[12:])+delta)
		}
	}
	if tamperedOff == ^uint64(0) {
		t.Fatalf("no section %s in table", sectionName(tag))
	}
	for j := 0; j < n; j++ {
		row := data[headerSize+j*tableEntrySize:]
		off := binary.LittleEndian.Uint64(row[4:])
		if off > tamperedOff {
			binary.LittleEndian.PutUint64(row[4:], off+delta)
		}
	}
}

// TestSections exposes the table for inspection tools.
func TestSections(t *testing.T) {
	data := mustEncode(t, testModel())
	secs, err := Sections(data)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range secs {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "meta,interner,exes,index" {
		t.Errorf("sections = %s", got)
	}
	if _, err := Sections([]byte("junk")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Sections on junk: %v", err)
	}
}

// TestQuickCodecRoundTrip: for arbitrary generated models, the codec is
// the identity.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := randomModel(rand.New(rand.NewSource(seed)))
		data, err := Encode(m)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		got, err := Decode(data)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(got, m) {
			t.Logf("seed %d: round trip diverged\ngot:  %+v\nwant: %+v", seed, got, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomModel generates a structurally valid model in canonical form
// (nil for empty slices, sorted ID runs) for codec round-trips.
func randomModel(rng *rand.Rand) *Image {
	m := &Image{
		Vendor:  randWord(rng),
		Device:  randWord(rng),
		Version: randWord(rng),
	}
	for i := rng.Intn(3); i > 0; i-- {
		m.Skipped = append(m.Skipped, Skip{Path: randWord(rng), Err: randWord(rng)})
	}
	vocab := rng.Intn(200)
	seenHash := map[uint64]bool{}
	for len(m.Interner) < vocab {
		h := rng.Uint64()
		if !seenHash[h] {
			seenHash[h] = true
			m.Interner = append(m.Interner, h)
		}
	}
	nexes := rng.Intn(5)
	for ei := 0; ei < nexes; ei++ {
		e := Exe{Path: randWord(rng), Arch: uint8(rng.Intn(5)), Stripped: rng.Intn(2) == 0}
		nprocs := rng.Intn(6)
		for pi := 0; pi < nprocs; pi++ {
			p := Proc{
				Name:       randWord(rng),
				Addr:       rng.Uint32(),
				Exported:   rng.Intn(2) == 0,
				IDs:        randIDSet(rng, len(m.Interner), 30),
				BlockCount: rng.Intn(50),
				EdgeCount:  rng.Intn(80),
				InstCount:  rng.Intn(500),
			}
			for k := rng.Intn(4); k > 0; k-- {
				p.Markers = append(p.Markers, rng.Uint32())
			}
			for k := rng.Intn(3); k > 0; k-- {
				p.Calls = append(p.Calls, int32(rng.Intn(nprocs)))
			}
			e.Procs = append(e.Procs, p)
		}
		m.Exes = append(m.Exes, e)
	}
	if rng.Intn(4) > 0 && len(m.Interner) > 0 {
		rows := randIDSet(rng, len(m.Interner), 40)
		m.Index = make([]IndexRow, 0, len(rows))
		for _, id := range rows {
			row := IndexRow{ID: id}
			for k := 1 + rng.Intn(3); k > 0; k-- {
				if len(m.Exes) == 0 {
					break
				}
				ei := rng.Intn(len(m.Exes))
				if len(m.Exes[ei].Procs) == 0 {
					continue
				}
				row.Posts = append(row.Posts, Posting{Exe: int32(ei), Proc: int32(rng.Intn(len(m.Exes[ei].Procs)))})
			}
			if len(row.Posts) > 0 {
				m.Index = append(m.Index, row)
			}
		}
		if len(m.Index) == 0 {
			m.Index = nil
		}
	}
	return m
}

// randIDSet returns up to max strictly increasing IDs below vocab, nil
// when empty.
func randIDSet(rng *rand.Rand, vocab, max int) []uint32 {
	if vocab == 0 {
		return nil
	}
	n := rng.Intn(max + 1)
	seen := map[uint32]bool{}
	for i := 0; i < n; i++ {
		seen[uint32(rng.Intn(vocab))] = true
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func randWord(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz_/."
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
