// Package snapshot implements the persistent on-disk form of an
// analyzed firmware image: everything an analyzer session derives from
// the raw bytes — executable and procedure metadata, per-procedure
// sorted dense strand-ID sets, the session's strand-hash vocabulary
// (dense ID → 64-bit canonical hash) and the corpus-level inverted
// index — so that a corpus can be analyzed once and served from its
// snapshots thereafter.
//
// The format is a versioned, checksummed container:
//
//	magic (8B) | format version (u32) | section count (u32)
//	section table: tag (u32) | offset (u64) | length (u64) | CRC32-C (u32)
//	section payloads (meta, interner, exes, index)
//
// Every section payload is independently CRC-checksummed, integers are
// little-endian or uvarint, and sorted ID sequences are delta-encoded.
// The decoder is designed for untrusted input: any structural
// violation — truncation, checksum mismatch, unknown or duplicate
// sections, a declared length that exceeds the input, an unsorted ID
// run, an out-of-range reference — yields an error wrapping ErrCorrupt
// that names the offending section. It never panics and never sizes an
// allocation from a declared count without bounding it by the bytes
// actually remaining.
//
// Version policy: the format version is bumped on any incompatible
// layout change; a decoder accepts exactly the versions it knows
// (currently 1) and rejects the future, so a stale binary fails loudly
// into re-analysis instead of misreading a newer snapshot.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// FormatVersion is the snapshot layout version this package reads and
// writes.
const FormatVersion = 1

// magic opens every snapshot file.
const magic = "FWSNAP\r\n"

// headerSize is magic + version + section count.
const headerSize = len(magic) + 4 + 4

// tableEntrySize is tag + offset + length + checksum.
const tableEntrySize = 4 + 8 + 8 + 4

// Section tags.
const (
	secMeta     = 1 // image identity and skipped-executable diagnostics
	secInterner = 2 // session vocabulary: dense strand ID -> 64-bit hash
	secExes     = 3 // executables, procedures and their dense-ID sets
	secIndex    = 4 // corpus-level inverted index postings (optional)
)

// maxSections bounds the section table of any valid snapshot.
const maxSections = 16

// castagnoli is the CRC-32C table used for all section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel every decoding failure wraps: a snapshot
// that is truncated, bit-flipped, version-skewed or structurally lying
// is reported as corrupt, never as a panic or a bad image.
var ErrCorrupt = errors.New("snapshot: corrupt")

// CorruptError is the concrete decoding failure: which section broke
// and how. It wraps ErrCorrupt, so errors.Is(err, snapshot.ErrCorrupt)
// holds for every decoder error.
type CorruptError struct {
	// Section names the offending part: "header", "table", "meta",
	// "interner", "exes" or "index".
	Section string
	// Reason describes the violation.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt %s section: %s", e.Section, e.Reason)
}

// Unwrap makes every CorruptError match ErrCorrupt.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corrupt(section, format string, args ...any) error {
	return &CorruptError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// sectionName maps a tag to its diagnostic name.
func sectionName(tag uint32) string {
	switch tag {
	case secMeta:
		return "meta"
	case secInterner:
		return "interner"
	case secExes:
		return "exes"
	case secIndex:
		return "index"
	}
	return fmt.Sprintf("unknown(%d)", tag)
}

// Image is the serialized form of one analyzed firmware image. It is a
// plain data model: the firmup layer converts to and from live session
// state (sim.Exe, corpusindex.Index) on save and load.
type Image struct {
	Vendor  string
	Device  string
	Version string
	// Skipped carries the analysis-time skip diagnostics verbatim.
	Skipped []Skip
	// Interner is the saving session's vocabulary ordered by dense ID:
	// Interner[id] is the 64-bit canonical strand hash id stands for.
	// Every Proc.IDs entry indexes into it.
	Interner []uint64
	Exes     []Exe
	// Index holds the corpus-level inverted index rows (dense strand ID
	// → postings), or nil when the image was analyzed without one.
	Index []IndexRow
}

// Skip is one skipped-executable diagnostic.
type Skip struct {
	Path string
	Err  string
}

// Exe is one serialized executable.
type Exe struct {
	Path     string
	Arch     uint8
	Stripped bool
	Procs    []Proc
}

// Proc is one serialized procedure.
type Proc struct {
	Name     string
	Addr     uint32
	Exported bool
	// IDs is the procedure's strand set as strictly increasing dense IDs
	// into Image.Interner.
	IDs []uint32
	// Markers are the distinctive plain constants used by the
	// confirmation step.
	Markers    []uint32
	BlockCount int
	EdgeCount  int
	InstCount  int
	// Calls lists callee procedure indices within the executable
	// (CalledBy is recomputed on load).
	Calls []int32
}

// IndexRow is one inverted-index row: a dense strand ID and the
// (executable, procedure) postings containing it. Rows are ordered by
// strictly increasing ID.
type IndexRow struct {
	ID    uint32
	Posts []Posting
}

// Posting locates one procedure: Exe indexes Image.Exes, Proc indexes
// its Procs.
type Posting struct {
	Exe  int32
	Proc int32
}

// SectionInfo describes one entry of a snapshot's section table, as
// reported by Sections (snapshot inspection, e.g. fwdump).
type SectionInfo struct {
	Name   string
	Tag    uint32
	Offset uint64
	Length uint64
	CRC    uint32
}

// Sections parses just the header and section table of a snapshot,
// without decoding payloads. It applies the same structural checks as
// Decode (magic, version, bounds) but does not verify checksums.
func Sections(data []byte) ([]SectionInfo, error) {
	entries, err := parseTable(data)
	if err != nil {
		return nil, err
	}
	out := make([]SectionInfo, len(entries))
	for i, e := range entries {
		out[i] = SectionInfo{
			Name:   sectionName(e.tag),
			Tag:    e.tag,
			Offset: e.off,
			Length: e.length,
			CRC:    e.crc,
		}
	}
	return out, nil
}
