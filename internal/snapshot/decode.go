package snapshot

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// tableEntry is one parsed section-table row.
type tableEntry struct {
	tag    uint32
	off    uint64
	length uint64
	crc    uint32
}

// parseTable validates the header and section table against the raw
// input: magic, version, section count, and that every declared
// (offset, length) range lies inside the input. Checksums are not yet
// verified here.
func parseTable(data []byte) ([]tableEntry, error) {
	if len(data) < headerSize {
		return nil, corrupt("header", "truncated: %d bytes, need at least %d", len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, corrupt("header", "bad magic")
	}
	version := binary.LittleEndian.Uint32(data[len(magic):])
	if version != FormatVersion {
		return nil, corrupt("header", "unsupported format version %d (this decoder reads version %d)", version, FormatVersion)
	}
	n := binary.LittleEndian.Uint32(data[len(magic)+4:])
	if n == 0 || n > maxSections {
		return nil, corrupt("header", "unreasonable section count %d", n)
	}
	if uint64(len(data)) < uint64(headerSize)+uint64(n)*tableEntrySize {
		return nil, corrupt("table", "truncated: %d sections declared but table does not fit in %d bytes", n, len(data))
	}
	entries := make([]tableEntry, n)
	seen := map[uint32]bool{}
	for i := range entries {
		row := data[headerSize+i*tableEntrySize:]
		e := tableEntry{
			tag:    binary.LittleEndian.Uint32(row),
			off:    binary.LittleEndian.Uint64(row[4:]),
			length: binary.LittleEndian.Uint64(row[12:]),
			crc:    binary.LittleEndian.Uint32(row[20:]),
		}
		name := sectionName(e.tag)
		switch e.tag {
		case secMeta, secInterner, secExes, secIndex:
		default:
			return nil, corrupt("table", "unknown section tag %d", e.tag)
		}
		if seen[e.tag] {
			return nil, corrupt("table", "duplicate %s section", name)
		}
		seen[e.tag] = true
		// Bounds check in uint64 space: both comparisons individually,
		// so a huge declared length cannot overflow into acceptance.
		if e.off > uint64(len(data)) || e.length > uint64(len(data))-e.off {
			return nil, corrupt(name, "declared range [%d, %d+%d) exceeds the %d-byte input", e.off, e.off, e.length, len(data))
		}
		entries[i] = e
	}
	for _, tag := range []uint32{secMeta, secInterner, secExes} {
		if !seen[tag] {
			return nil, corrupt("table", "missing required %s section", sectionName(tag))
		}
	}
	return entries, nil
}

// Decode parses a snapshot. Input is untrusted: every failure mode —
// truncation, bit flips, version skew, lying lengths, out-of-range
// references — returns an error wrapping ErrCorrupt naming the
// offending section. Decode never panics, and allocations driven by
// declared counts are always bounded by the bytes actually present.
func Decode(data []byte) (*Image, error) {
	entries, err := parseTable(data)
	if err != nil {
		return nil, err
	}
	img := &Image{}
	for _, e := range entries {
		name := sectionName(e.tag)
		payload := data[e.off : e.off+e.length]
		if got := crc32.Checksum(payload, castagnoli); got != e.crc {
			return nil, corrupt(name, "checksum mismatch: stored %08x, computed %08x", e.crc, got)
		}
		r := &reader{b: payload, section: name}
		switch e.tag {
		case secMeta:
			err = decodeMeta(r, img)
		case secInterner:
			err = decodeInterner(r, img)
		case secExes:
			err = decodeExes(r, img)
		case secIndex:
			err = decodeIndex(r, img)
		}
		if err != nil {
			return nil, err
		}
		if len(r.b) != 0 {
			return nil, corrupt(name, "%d trailing bytes after payload", len(r.b))
		}
	}
	// Cross-section validation: exes and index reference the interner's
	// ID space and each other.
	if err := linkCheck(img); err != nil {
		return nil, err
	}
	return img, nil
}

// reader is a bounds-checked consumer over one section payload.
type reader struct {
	b       []byte
	section string
}

func (r *reader) corrupt(format string, args ...any) error {
	return corrupt(r.section, format, args...)
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, r.corrupt("truncated or overlong varint")
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads a uvarint element count and rejects it when even at
// minBytes per element it cannot fit in the remaining payload — the
// guard that keeps attacker-declared lengths from driving allocations.
//
// Scale audit: the cap is relative (remaining payload bytes / minBytes),
// not an absolute constant, so multi-gigabyte corpus sections pass
// through unchanged — a section holding N bytes can never drive more
// than N/minBytes elements of allocation, at 12-image and at
// paper-scale corpora alike. The v2 shard layout (corpusv2.go) goes
// further: its slab views are casts over the mapped file, sized by the
// cross-checked section length, and allocate nothing at all.
func (r *reader) count(what string, minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b))/uint64(minBytes) {
		return 0, r.corrupt("%s count %d cannot fit in %d remaining bytes", what, v, len(r.b))
	}
	return int(v), nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, r.corrupt("truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, r.corrupt("truncated u64")
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) bool() (bool, error) {
	if len(r.b) < 1 {
		return false, r.corrupt("truncated flag byte")
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		return false, r.corrupt("flag byte %d is neither 0 nor 1", v)
	}
	return v == 1, nil
}

func (r *reader) byte() (uint8, error) {
	if len(r.b) < 1 {
		return 0, r.corrupt("truncated byte")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.count("string byte", 1)
	if err != nil {
		return "", err
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// uvarint32 reads a uvarint that must fit uint32.
func (r *reader) uvarint32(what string) (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, r.corrupt("%s %d exceeds 32 bits", what, v)
	}
	return uint32(v), nil
}

// uvarintInt reads a uvarint that must fit a non-negative int32-sized
// int (shape counts, call targets).
func (r *reader) uvarintInt(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, r.corrupt("%s %d exceeds 31 bits", what, v)
	}
	return int(v), nil
}

// deltaIDs reads n strictly increasing uint32 IDs (first raw, then
// positive gaps).
func (r *reader) deltaIDs(what string, n int) ([]uint32, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]uint32, 0, n)
	prev := uint64(0)
	for k := 0; k < n; k++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if k == 0 {
			prev = v
		} else {
			if v == 0 {
				return nil, r.corrupt("%s not strictly increasing at element %d", what, k)
			}
			prev += v
		}
		if prev > math.MaxUint32 {
			return nil, r.corrupt("%s value %d exceeds the dense-ID space", what, prev)
		}
		out = append(out, uint32(prev))
	}
	return out, nil
}

func decodeMeta(r *reader, img *Image) error {
	var err error
	if img.Vendor, err = r.str(); err != nil {
		return err
	}
	if img.Device, err = r.str(); err != nil {
		return err
	}
	if img.Version, err = r.str(); err != nil {
		return err
	}
	n, err := r.count("skip", 2)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var s Skip
		if s.Path, err = r.str(); err != nil {
			return err
		}
		if s.Err, err = r.str(); err != nil {
			return err
		}
		img.Skipped = append(img.Skipped, s)
	}
	return nil
}

func decodeInterner(r *reader, img *Image) error {
	n, err := r.count("hash", 8)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	img.Interner = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		h, err := r.u64()
		if err != nil {
			return err
		}
		img.Interner = append(img.Interner, h)
	}
	return nil
}

func decodeExes(r *reader, img *Image) error {
	exes, err := decodeExesList(r)
	if err != nil {
		return err
	}
	img.Exes = exes
	return nil
}

func decodeExesList(r *reader) ([]Exe, error) {
	var out []Exe
	nexes, err := r.count("executable", 3)
	if err != nil {
		return nil, err
	}
	for ei := 0; ei < nexes; ei++ {
		var e Exe
		if e.Path, err = r.str(); err != nil {
			return nil, err
		}
		if e.Arch, err = r.byte(); err != nil {
			return nil, err
		}
		if e.Stripped, err = r.bool(); err != nil {
			return nil, err
		}
		nprocs, err := r.count("procedure", 8)
		if err != nil {
			return nil, err
		}
		for pi := 0; pi < nprocs; pi++ {
			var p Proc
			if p.Name, err = r.str(); err != nil {
				return nil, err
			}
			if p.Addr, err = r.u32(); err != nil {
				return nil, err
			}
			if p.Exported, err = r.bool(); err != nil {
				return nil, err
			}
			nids, err := r.count("strand ID", 1)
			if err != nil {
				return nil, err
			}
			if p.IDs, err = r.deltaIDs("strand IDs", nids); err != nil {
				return nil, err
			}
			nmark, err := r.count("marker", 1)
			if err != nil {
				return nil, err
			}
			for k := 0; k < nmark; k++ {
				m, err := r.uvarint32("marker")
				if err != nil {
					return nil, err
				}
				p.Markers = append(p.Markers, m)
			}
			if p.BlockCount, err = r.uvarintInt("block count"); err != nil {
				return nil, err
			}
			if p.EdgeCount, err = r.uvarintInt("edge count"); err != nil {
				return nil, err
			}
			if p.InstCount, err = r.uvarintInt("instruction count"); err != nil {
				return nil, err
			}
			ncalls, err := r.count("call", 1)
			if err != nil {
				return nil, err
			}
			for k := 0; k < ncalls; k++ {
				c, err := r.uvarintInt("call target")
				if err != nil {
					return nil, err
				}
				p.Calls = append(p.Calls, int32(c))
			}
			e.Procs = append(e.Procs, p)
		}
		out = append(out, e)
	}
	return out, nil
}

func decodeIndex(r *reader, img *Image) error {
	rows, err := decodeIndexRows(r)
	if err != nil {
		return err
	}
	img.Index = rows
	return nil
}

func decodeIndexRows(r *reader) ([]IndexRow, error) {
	nrows, err := r.count("index row", 2)
	if err != nil {
		return nil, err
	}
	// A present-but-empty index section still means "indexed": keep the
	// distinction from nil (no index at analysis time).
	out := make([]IndexRow, 0, nrows)
	prev := uint64(0)
	for ri := 0; ri < nrows; ri++ {
		var row IndexRow
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ri == 0 {
			prev = v
		} else {
			if v == 0 {
				return nil, r.corrupt("index rows not strictly increasing at row %d", ri)
			}
			prev += v
		}
		if prev > math.MaxUint32 {
			return nil, r.corrupt("index row ID %d exceeds the dense-ID space", prev)
		}
		row.ID = uint32(prev)
		nposts, err := r.count("posting", 2)
		if err != nil {
			return nil, err
		}
		row.Posts = make([]Posting, 0, nposts)
		for k := 0; k < nposts; k++ {
			exe, err := r.uvarintInt("posting executable")
			if err != nil {
				return nil, err
			}
			proc, err := r.uvarintInt("posting procedure")
			if err != nil {
				return nil, err
			}
			row.Posts = append(row.Posts, Posting{Exe: int32(exe), Proc: int32(proc)})
		}
		out = append(out, row)
	}
	return out, nil
}

// linkCheck validates cross-section references after all sections are
// decoded: strand IDs must fall inside the vocabulary, call targets
// inside their executable, postings inside the executable table.
func linkCheck(img *Image) error {
	if err := linkCheckExes(len(img.Interner), img.Exes); err != nil {
		return err
	}
	return linkCheckIndex(len(img.Interner), img.Exes, img.Index)
}

func linkCheckExes(nvocab int, exes []Exe) error {
	vocab := uint32(nvocab)
	for ei, e := range exes {
		for pi, p := range e.Procs {
			if n := len(p.IDs); n > 0 && p.IDs[n-1] >= vocab {
				return corrupt("exes", "exe %d proc %d references strand ID %d outside the %d-entry vocabulary", ei, pi, p.IDs[n-1], vocab)
			}
			for _, c := range p.Calls {
				if int(c) >= len(e.Procs) {
					return corrupt("exes", "exe %d proc %d calls procedure %d of %d", ei, pi, c, len(e.Procs))
				}
			}
		}
	}
	return nil
}

func linkCheckIndex(nvocab int, exes []Exe, rows []IndexRow) error {
	vocab := uint32(nvocab)
	for ri, row := range rows {
		if row.ID >= vocab {
			return corrupt("index", "row %d references strand ID %d outside the %d-entry vocabulary", ri, row.ID, vocab)
		}
		for _, p := range row.Posts {
			if int(p.Exe) >= len(exes) {
				return corrupt("index", "row %d posting references executable %d of %d", ri, p.Exe, len(exes))
			}
			if int(p.Proc) >= len(exes[p.Exe].Procs) {
				return corrupt("index", "row %d posting references procedure %d of %d", ri, p.Proc, len(exes[p.Exe].Procs))
			}
		}
	}
	return nil
}
