package snapshot

import (
	"errors"
	"math/rand"
	"testing"
)

// FuzzSnapshotDecode hammers the decoder with arbitrary bytes, seeded
// with valid snapshots of representative models. The contract under
// fuzzing: Decode either returns a structurally valid image or an error
// wrapping ErrCorrupt — it never panics, and declared counts never
// drive allocations beyond the input's own size (the decoder caps every
// pre-allocation by the bytes remaining).
func FuzzSnapshotDecode(f *testing.F) {
	seeds := []*Image{
		testModel(),
		{},
		randomModel(rand.New(rand.NewSource(1))),
		randomModel(rand.New(rand.NewSource(2))),
		randomModel(rand.New(rand.NewSource(3))),
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	// v2 shard containers share the magic with v1 artifacts, so the
	// same fuzz corpus exercises both decoders; seed it with valid
	// shards so mutations reach deep into the v2 section layout.
	tc := testCorpus()
	for _, hdr := range []ShardHeader{
		{ShardCount: 1, TotalImages: len(tc.Images)},
		{ShardIndex: 1, ShardCount: 3, ImageBase: 4, TotalImages: 9},
	} {
		data, err := EncodeCorpusShard(tc, hdr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A v3 shard with a signature slab seeds mutations into the
	// corpus-sigs section and its length checks.
	v3 := withSigs(testCorpus(), rand.New(rand.NewSource(4)))
	data, err := EncodeCorpusShard(v3, ShardHeader{ShardCount: 1, TotalImages: len(v3.Images)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decoder error does not wrap ErrCorrupt: %v", err)
			}
		} else if _, err := Encode(img); err != nil {
			// Accepted input must be a valid model: re-encoding applies
			// the full validation pass and must succeed.
			t.Fatalf("decoded image fails re-encoding: %v", err)
		}
		// The shard opener must uphold the same contract over the same
		// bytes: open-plus-walk either succeeds or fails wrapping
		// ErrCorrupt, and never panics — every accessor is the decode
		// surface here, since slabs validate lazily on first touch.
		s, err := OpenCorpusShardBytes(data)
		if err == nil {
			err = touchShard(s)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("shard opener error does not wrap ErrCorrupt: %v", err)
		}
	})
}
