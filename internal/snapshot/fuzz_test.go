package snapshot

import (
	"errors"
	"math/rand"
	"testing"
)

// FuzzSnapshotDecode hammers the decoder with arbitrary bytes, seeded
// with valid snapshots of representative models. The contract under
// fuzzing: Decode either returns a structurally valid image or an error
// wrapping ErrCorrupt — it never panics, and declared counts never
// drive allocations beyond the input's own size (the decoder caps every
// pre-allocation by the bytes remaining).
func FuzzSnapshotDecode(f *testing.F) {
	seeds := []*Image{
		testModel(),
		{},
		randomModel(rand.New(rand.NewSource(1))),
		randomModel(rand.New(rand.NewSource(2))),
		randomModel(rand.New(rand.NewSource(3))),
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decoder error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted input must be a valid model: re-encoding applies the
		// full validation pass and must succeed.
		if _, err := Encode(img); err != nil {
			t.Fatalf("decoded image fails re-encoding: %v", err)
		}
	})
}
