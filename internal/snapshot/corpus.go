package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// A sealed corpus is persisted as its own section-table container,
// structurally identical to the image snapshot format but under a
// distinct magic and version: one shared strand vocabulary (the frozen
// interner) followed by every image's executables and inverted index
// expressed in that single ID space. This is what lets firmupd
// cold-start by loading instead of re-analyzing: the artifact is the
// serve-time state, not per-image state to be re-interned together.

// CorpusFormatVersion is the sealed-corpus layout version this package
// reads and writes.
const CorpusFormatVersion = 1

// corpusMagic opens every sealed-corpus file. Same length as the image
// snapshot magic, so the two containers share header arithmetic while
// remaining mutually unreadable.
const corpusMagic = "FWCORP\r\n"

// Sealed-corpus section tags (a tag space separate from the image
// snapshot's).
const (
	secCorpusMeta     = 1 // per-image identity and skip diagnostics
	secCorpusInterner = 2 // frozen vocabulary: dense strand ID -> 64-bit hash
	secCorpusImages   = 3 // per-image executables and inverted indexes
)

func corpusSectionName(tag uint32) string {
	switch tag {
	case secCorpusMeta:
		return "corpus-meta"
	case secCorpusInterner:
		return "corpus-interner"
	case secCorpusImages:
		return "corpus-images"
	}
	return fmt.Sprintf("unknown(%d)", tag)
}

// Corpus is the serialized form of a sealed corpus: the frozen
// vocabulary shared by every image, and the images themselves. Like
// Image it is a plain data model; the firmup layer converts to and from
// sealed session state.
type Corpus struct {
	// Interner is the frozen vocabulary ordered by dense ID. Every
	// Proc.IDs and IndexRow.ID of every image indexes into it.
	Interner []uint64
	Images   []CorpusImage
	// Sigs is the optional flat per-procedure MinHash signature slab
	// (CorpusSigWords words per procedure, in image/executable/procedure
	// order across all Images). Non-nil selects the v3 shard layout in
	// EncodeCorpusShard; the v1 container ignores it.
	Sigs []uint32
}

// CorpusImage is one image of a sealed corpus. Unlike the standalone
// Image model it carries no vocabulary of its own.
type CorpusImage struct {
	Vendor  string
	Device  string
	Version string
	Skipped []Skip
	Exes    []Exe
	// Index holds the image's inverted-index rows over the corpus
	// vocabulary, or nil when the image was sealed without one.
	Index []IndexRow
}

// EncodeCorpus serializes a sealed-corpus model into the FWCORP
// container, validating every image's references against the shared
// vocabulary first so a successful encode always produces an artifact
// DecodeCorpus accepts.
func EncodeCorpus(c *Corpus) ([]byte, error) {
	if len(c.Interner) > math.MaxUint32 {
		return nil, fmt.Errorf("snapshot: encode: corpus vocabulary of %d exceeds the dense-ID space", len(c.Interner))
	}
	for i := range c.Images {
		img := &c.Images[i]
		if err := validateExes(len(c.Interner), img.Exes); err != nil {
			return nil, fmt.Errorf("snapshot: corpus image %d: %w", i, err)
		}
		if err := validateIndex(len(c.Interner), img.Exes, img.Index); err != nil {
			return nil, fmt.Errorf("snapshot: corpus image %d: %w", i, err)
		}
	}
	type section struct {
		tag     uint32
		payload []byte
	}
	sections := []section{
		{secCorpusMeta, encodeCorpusMeta(c)},
		{secCorpusInterner, encodeCorpusInterner(c)},
		{secCorpusImages, encodeCorpusImages(c)},
	}
	out := make([]byte, 0, headerSize+len(sections)*tableEntrySize+payloadLen(sections, func(s section) int { return len(s.payload) }))
	out = append(out, corpusMagic...)
	out = binary.LittleEndian.AppendUint32(out, CorpusFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	off := uint64(headerSize + len(sections)*tableEntrySize)
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, s.tag)
		out = binary.LittleEndian.AppendUint64(out, off)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.payload, castagnoli))
		off += uint64(len(s.payload))
	}
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out, nil
}

func encodeCorpusMeta(c *Corpus) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(c.Images)))
	for _, img := range c.Images {
		b = appendString(b, img.Vendor)
		b = appendString(b, img.Device)
		b = appendString(b, img.Version)
		b = appendUvarint(b, uint64(len(img.Skipped)))
		for _, s := range img.Skipped {
			b = appendString(b, s.Path)
			b = appendString(b, s.Err)
		}
	}
	return b
}

func encodeCorpusInterner(c *Corpus) []byte {
	b := make([]byte, 0, binary.MaxVarintLen64+8*len(c.Interner))
	b = appendUvarint(b, uint64(len(c.Interner)))
	for _, h := range c.Interner {
		b = binary.LittleEndian.AppendUint64(b, h)
	}
	return b
}

func encodeCorpusImages(c *Corpus) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(c.Images)))
	for _, img := range c.Images {
		b = append(b, encodeExesList(img.Exes)...)
		if img.Index != nil {
			b = append(b, 1)
			b = append(b, encodeIndexRows(img.Index)...)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// parseCorpusTable is parseTable for the FWCORP header: same layout,
// corpus magic, corpus version and corpus tag space.
func parseCorpusTable(data []byte) ([]tableEntry, error) {
	if len(data) < headerSize {
		return nil, corrupt("header", "truncated: %d bytes, need at least %d", len(data), headerSize)
	}
	if string(data[:len(corpusMagic)]) != corpusMagic {
		return nil, corrupt("header", "bad corpus magic")
	}
	version := binary.LittleEndian.Uint32(data[len(corpusMagic):])
	if version != CorpusFormatVersion {
		return nil, corrupt("header", "unsupported corpus format version %d (this decoder reads version %d)", version, CorpusFormatVersion)
	}
	n := binary.LittleEndian.Uint32(data[len(corpusMagic)+4:])
	if n == 0 || n > maxSections {
		return nil, corrupt("header", "unreasonable section count %d", n)
	}
	if uint64(len(data)) < uint64(headerSize)+uint64(n)*tableEntrySize {
		return nil, corrupt("table", "truncated: %d sections declared but table does not fit in %d bytes", n, len(data))
	}
	entries := make([]tableEntry, n)
	seen := map[uint32]bool{}
	for i := range entries {
		row := data[headerSize+i*tableEntrySize:]
		e := tableEntry{
			tag:    binary.LittleEndian.Uint32(row),
			off:    binary.LittleEndian.Uint64(row[4:]),
			length: binary.LittleEndian.Uint64(row[12:]),
			crc:    binary.LittleEndian.Uint32(row[20:]),
		}
		name := corpusSectionName(e.tag)
		switch e.tag {
		case secCorpusMeta, secCorpusInterner, secCorpusImages:
		default:
			return nil, corrupt("table", "unknown section tag %d", e.tag)
		}
		if seen[e.tag] {
			return nil, corrupt("table", "duplicate %s section", name)
		}
		seen[e.tag] = true
		if e.off > uint64(len(data)) || e.length > uint64(len(data))-e.off {
			return nil, corrupt(name, "declared range [%d, %d+%d) exceeds the %d-byte input", e.off, e.off, e.length, len(data))
		}
		entries[i] = e
	}
	for _, tag := range []uint32{secCorpusMeta, secCorpusInterner, secCorpusImages} {
		if !seen[tag] {
			return nil, corrupt("table", "missing required %s section", corpusSectionName(tag))
		}
	}
	return entries, nil
}

// DecodeCorpus parses a sealed-corpus artifact under the same
// untrusted-input contract as Decode: every failure mode returns an
// error wrapping ErrCorrupt naming the offending section, never a panic,
// and declared counts never drive unbounded allocation.
func DecodeCorpus(data []byte) (*Corpus, error) {
	entries, err := parseCorpusTable(data)
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	// The meta and images sections each declare an image count; they must
	// agree, whatever order the table lists them in.
	metaImages, contentImages := -1, -1
	for _, e := range entries {
		name := corpusSectionName(e.tag)
		payload := data[e.off : e.off+e.length]
		if got := crc32.Checksum(payload, castagnoli); got != e.crc {
			return nil, corrupt(name, "checksum mismatch: stored %08x, computed %08x", e.crc, got)
		}
		r := &reader{b: payload, section: name}
		switch e.tag {
		case secCorpusMeta:
			metaImages, err = decodeCorpusMeta(r, c)
		case secCorpusInterner:
			err = decodeCorpusInterner(r, c)
		case secCorpusImages:
			contentImages, err = decodeCorpusImages(r, c)
		}
		if err != nil {
			return nil, err
		}
		if len(r.b) != 0 {
			return nil, corrupt(name, "%d trailing bytes after payload", len(r.b))
		}
	}
	if metaImages != contentImages {
		return nil, corrupt("corpus-images", "meta declares %d images but images section holds %d", metaImages, contentImages)
	}
	for i := range c.Images {
		img := &c.Images[i]
		if err := linkCheckExes(len(c.Interner), img.Exes); err != nil {
			return nil, err
		}
		if err := linkCheckIndex(len(c.Interner), img.Exes, img.Index); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// decodeCorpusMeta fills per-image identity and returns the declared
// image count. The sections may decode in any table order, so identity
// and content are merged by index once both sections are in.
func decodeCorpusMeta(r *reader, c *Corpus) (int, error) {
	n, err := r.count("image", 3)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		var img CorpusImage
		if img.Vendor, err = r.str(); err != nil {
			return 0, err
		}
		if img.Device, err = r.str(); err != nil {
			return 0, err
		}
		if img.Version, err = r.str(); err != nil {
			return 0, err
		}
		nskips, err := r.count("skip", 2)
		if err != nil {
			return 0, err
		}
		for k := 0; k < nskips; k++ {
			var s Skip
			if s.Path, err = r.str(); err != nil {
				return 0, err
			}
			if s.Err, err = r.str(); err != nil {
				return 0, err
			}
			img.Skipped = append(img.Skipped, s)
		}
		if i < len(c.Images) {
			c.Images[i].Vendor = img.Vendor
			c.Images[i].Device = img.Device
			c.Images[i].Version = img.Version
			c.Images[i].Skipped = img.Skipped
		} else {
			c.Images = append(c.Images, img)
		}
	}
	return n, nil
}

func decodeCorpusInterner(r *reader, c *Corpus) error {
	n, err := r.count("hash", 8)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	c.Interner = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		h, err := r.u64()
		if err != nil {
			return err
		}
		c.Interner = append(c.Interner, h)
	}
	return nil
}

func decodeCorpusImages(r *reader, c *Corpus) (int, error) {
	n, err := r.count("image", 2)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		exes, err := decodeExesList(r)
		if err != nil {
			return 0, err
		}
		indexed, err := r.bool()
		if err != nil {
			return 0, err
		}
		var rows []IndexRow
		if indexed {
			if rows, err = decodeIndexRows(r); err != nil {
				return 0, err
			}
		}
		if i < len(c.Images) {
			c.Images[i].Exes = exes
			c.Images[i].Index = rows
		} else {
			c.Images = append(c.Images, CorpusImage{Exes: exes, Index: rows})
		}
	}
	return n, nil
}
