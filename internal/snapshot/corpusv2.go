package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// FWCORP version 2 is the mmap-oriented sealed-corpus layout. Version 1
// (corpus.go) optimizes for a compact stream: varints, delta-encoded ID
// runs, one decode pass that materializes everything. Version 2
// optimizes for retrieval: every bulk payload is a fixed-width
// little-endian slab in a 64-byte-aligned section, so a mapped shard is
// queryable without a decode pass — the executable table, the
// procedure table, the strand-ID / marker / call slabs, and the CSR
// inverted-index (row IDs, row ends, postings) are all usable directly
// from the mapped bytes. Integrity moves from open time to first touch:
// only the small meta section is CRC-verified at open; every other
// section is verified once, the first time an accessor needs it, so
// opening a multi-gigabyte shard costs O(pages touched), not O(bytes).
//
// A v2 file is one SHARD of a sealed corpus: a contiguous range of
// images sharing the corpus-wide frozen vocabulary. The shard header
// (inside the meta section) records its position — shard index/count,
// first global image index, total image count — so a directory of
// shards can be validated as one coherent corpus at open.
//
// Layout:
//
//	magic "FWCORP\r\n" | version=2 (u32) | section count (u32)
//	section table: tag (u32) | offset (u64) | length (u64) | CRC32-C (u32)
//	64-byte-aligned section payloads (zero padding between)
//
// Sections (all twelve always present; bulk ones may be empty):
//
//	corpus-meta         varint: shard header, slab totals, per-image identity
//	corpus-vocab        vocabLen x u64        dense ID -> strand hash
//	corpus-vocab-sorted vocabLen x u64 sorted hashes, then vocabLen x u32 IDs
//	corpus-strs         string blob (paths, procedure names; deduplicated)
//	corpus-exe-table    totalExes x 48 B fixed records
//	corpus-proc-table   totalProcs x 40 B fixed records
//	corpus-ids          idsLen x u32          per-proc sorted strand IDs
//	corpus-markers      markersLen x u32
//	corpus-calls        callsLen x u32
//	corpus-index-table  nImages x 32 B        per-image CSR extents
//	corpus-index-rows   rows x u32 row IDs, then rows x u32 row ends
//	corpus-index-posts  posts x (exe u32 | proc u32)
//	corpus-sigs         totalProcs x CorpusSigWords x u32   (v3 only)

// CorpusFormatVersionV2 is the sharded mmap-friendly sealed-corpus
// layout version.
const CorpusFormatVersionV2 = 2

// CorpusFormatVersionV3 is v2 plus the corpus-sigs section: one
// fixed-width MinHash signature per procedure, served zero-copy like
// the CSR postings so the LSH candidate tier needs no materialization.
// The opener reads both versions; a v2 shard simply has no signatures
// and sealed corpora built from it fall back to the exact prefilter.
const CorpusFormatVersionV3 = 3

// CorpusSigWords is the per-procedure signature width of the
// corpus-sigs slab, in uint32 words. It must equal strand.SigWords
// (compile-time asserted at the consumer); changing either is a format
// break requiring a version bump.
const CorpusSigWords = 64

// v2Align is the section payload alignment: one cache line, and enough
// for any slab element type, so zero-copy casts are always aligned.
const v2Align = 64

// maxSectionsV2 bounds the section table of a v2 shard. Larger than the
// v1 bound to leave tag space for additive sections.
const maxSectionsV2 = 32

// v2 section tags (disjoint from the v1 corpus tag space so a tag error
// is never a silent misread).
const (
	secV2Meta        = 16
	secV2Vocab       = 17
	secV2VocabSorted = 18
	secV2Strs        = 19
	secV2ExeTab      = 20
	secV2ProcTab     = 21
	secV2IDs         = 22
	secV2Markers     = 23
	secV2Calls       = 24
	secV2IdxTab      = 25
	secV2IdxRows     = 26
	secV2IdxPosts    = 27
	secV2Sigs        = 28 // v3 only
)

// Fixed record sizes.
const (
	v2ExeRecSize  = 48 // pathOff u32, pathLen u32, procStart u32, procCount u32, idsStart u64, markersStart u64, callsStart u64, arch u8, stripped u8, pad[6]
	v2ProcRecSize = 40 // nameOff u32, nameLen u32, addr u32, flags u32, nIDs u32, nMarkers u32, nCalls u32, blocks u32, edges u32, insts u32
	v2IdxRecSize  = 32 // rowStart u64, rowCount u64, postStart u64, postCount u64
)

// v2MaxSlabElems caps every declared slab element count before it is
// multiplied by an element size, so total-length arithmetic stays in
// uint64 without overflow. Far above any real corpus (the paper-scale
// target is ~40M procedures).
const v2MaxSlabElems = 1 << 56

func v2SectionName(tag uint32) string {
	switch tag {
	case secV2Meta:
		return "corpus-meta"
	case secV2Vocab:
		return "corpus-vocab"
	case secV2VocabSorted:
		return "corpus-vocab-sorted"
	case secV2Strs:
		return "corpus-strs"
	case secV2ExeTab:
		return "corpus-exe-table"
	case secV2ProcTab:
		return "corpus-proc-table"
	case secV2IDs:
		return "corpus-ids"
	case secV2Markers:
		return "corpus-markers"
	case secV2Calls:
		return "corpus-calls"
	case secV2IdxTab:
		return "corpus-index-table"
	case secV2IdxRows:
		return "corpus-index-rows"
	case secV2IdxPosts:
		return "corpus-index-posts"
	case secV2Sigs:
		return "corpus-sigs"
	}
	return fmt.Sprintf("unknown(%d)", tag)
}

// v2NumSections is the section-slot count of an open shard — the full
// v3 tag range; a v2 shard leaves the corpus-sigs slot empty.
const v2NumSections = 13

var v2SectionTags = []uint32{
	secV2Meta, secV2Vocab, secV2VocabSorted, secV2Strs,
	secV2ExeTab, secV2ProcTab, secV2IDs, secV2Markers, secV2Calls,
	secV2IdxTab, secV2IdxRows, secV2IdxPosts,
}

var v3SectionTags = append(append([]uint32(nil), v2SectionTags...), secV2Sigs)

// sectionTagsFor returns the exact required (and allowed) tag set of a
// format version: a v2 shard carrying a corpus-sigs section is as
// corrupt as a v3 shard missing one.
func sectionTagsFor(version uint32) []uint32 {
	if version == CorpusFormatVersionV3 {
		return v3SectionTags
	}
	return v2SectionTags
}

// ShardHeader locates one shard inside a sharded sealed corpus.
type ShardHeader struct {
	// ShardIndex is this shard's position in [0, ShardCount).
	ShardIndex int
	// ShardCount is the number of shards the corpus was split into.
	ShardCount int
	// ImageBase is the global index of this shard's first image.
	ImageBase int
	// TotalImages is the image count across all shards.
	TotalImages int
}

// CorpusVersion sniffs the format version of a sealed-corpus artifact
// without decoding it, so callers can dispatch between the v1 decode
// path and the v2 shard open path.
func CorpusVersion(data []byte) (int, error) {
	if len(data) < len(corpusMagic)+4 {
		return 0, corrupt("header", "truncated: %d bytes, need at least %d", len(data), len(corpusMagic)+4)
	}
	if string(data[:len(corpusMagic)]) != corpusMagic {
		return 0, corrupt("header", "bad corpus magic")
	}
	return int(binary.LittleEndian.Uint32(data[len(corpusMagic):])), nil
}

func alignUp(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// EncodeCorpusShard serializes one shard of a sealed corpus into the v2
// container. The model is validated first (same invariants as
// EncodeCorpus) so a successful encode always produces a shard
// OpenCorpusShardBytes accepts.
func EncodeCorpusShard(c *Corpus, hdr ShardHeader) ([]byte, error) {
	if hdr.ShardCount < 1 || hdr.ShardIndex < 0 || hdr.ShardIndex >= hdr.ShardCount {
		return nil, fmt.Errorf("snapshot: encode: shard index %d out of range for %d shards", hdr.ShardIndex, hdr.ShardCount)
	}
	if hdr.ImageBase < 0 || hdr.TotalImages < hdr.ImageBase+len(c.Images) {
		return nil, fmt.Errorf("snapshot: encode: shard images [%d, %d) exceed declared corpus total %d", hdr.ImageBase, hdr.ImageBase+len(c.Images), hdr.TotalImages)
	}
	if len(c.Interner) > math.MaxUint32 {
		return nil, fmt.Errorf("snapshot: encode: corpus vocabulary of %d exceeds the dense-ID space", len(c.Interner))
	}
	for i := range c.Images {
		img := &c.Images[i]
		if err := validateExes(len(c.Interner), img.Exes); err != nil {
			return nil, fmt.Errorf("snapshot: corpus image %d: %w", i, err)
		}
		if err := validateIndex(len(c.Interner), img.Exes, img.Index); err != nil {
			return nil, fmt.Errorf("snapshot: corpus image %d: %w", i, err)
		}
	}

	le := binary.LittleEndian

	// String blob, deduplicated: paths and procedure names repeat
	// heavily across versions of the same device.
	var strs []byte
	strOffs := map[string]uint32{}
	intern := func(s string) (uint32, uint32, error) {
		if off, ok := strOffs[s]; ok {
			return off, uint32(len(s)), nil
		}
		if uint64(len(strs))+uint64(len(s)) > math.MaxUint32 {
			return 0, 0, fmt.Errorf("snapshot: encode: string blob exceeds the 32-bit offset space")
		}
		off := uint32(len(strs))
		strOffs[s] = off
		strs = append(strs, s...)
		return off, uint32(len(s)), nil
	}

	totalExes := 0
	for i := range c.Images {
		totalExes += len(c.Images[i].Exes)
	}
	if uint64(totalExes) > math.MaxUint32 {
		return nil, fmt.Errorf("snapshot: encode: %d executables exceed the 32-bit table space", totalExes)
	}

	exeTab := make([]byte, 0, totalExes*v2ExeRecSize)
	var procTab, idsB, markB, callB []byte
	var nProcs, nIDs, nMarkers, nCalls uint64
	for ii := range c.Images {
		for _, e := range c.Images[ii].Exes {
			pathOff, pathLen, err := intern(e.Path)
			if err != nil {
				return nil, err
			}
			if nProcs+uint64(len(e.Procs)) > math.MaxUint32 {
				return nil, fmt.Errorf("snapshot: encode: procedure count exceeds the 32-bit table space")
			}
			var rec [v2ExeRecSize]byte
			le.PutUint32(rec[0:], pathOff)
			le.PutUint32(rec[4:], pathLen)
			le.PutUint32(rec[8:], uint32(nProcs))
			le.PutUint32(rec[12:], uint32(len(e.Procs)))
			le.PutUint64(rec[16:], nIDs)
			le.PutUint64(rec[24:], nMarkers)
			le.PutUint64(rec[32:], nCalls)
			rec[40] = e.Arch
			if e.Stripped {
				rec[41] = 1
			}
			exeTab = append(exeTab, rec[:]...)
			for _, p := range e.Procs {
				nameOff, nameLen, err := intern(p.Name)
				if err != nil {
					return nil, err
				}
				if p.BlockCount > math.MaxUint32 || p.EdgeCount > math.MaxUint32 || p.InstCount > math.MaxUint32 {
					return nil, fmt.Errorf("snapshot: encode: procedure shape count exceeds 32 bits")
				}
				var flags uint32
				if p.Exported {
					flags |= 1
				}
				var prec [v2ProcRecSize]byte
				le.PutUint32(prec[0:], nameOff)
				le.PutUint32(prec[4:], nameLen)
				le.PutUint32(prec[8:], p.Addr)
				le.PutUint32(prec[12:], flags)
				le.PutUint32(prec[16:], uint32(len(p.IDs)))
				le.PutUint32(prec[20:], uint32(len(p.Markers)))
				le.PutUint32(prec[24:], uint32(len(p.Calls)))
				le.PutUint32(prec[28:], uint32(p.BlockCount))
				le.PutUint32(prec[32:], uint32(p.EdgeCount))
				le.PutUint32(prec[36:], uint32(p.InstCount))
				procTab = append(procTab, prec[:]...)
				for _, id := range p.IDs {
					idsB = le.AppendUint32(idsB, id)
				}
				for _, m := range p.Markers {
					markB = le.AppendUint32(markB, m)
				}
				for _, cc := range p.Calls {
					callB = le.AppendUint32(callB, uint32(cc))
				}
				nIDs += uint64(len(p.IDs))
				nMarkers += uint64(len(p.Markers))
				nCalls += uint64(len(p.Calls))
				nProcs++
			}
		}
	}

	// Per-image CSR index extents plus the row/posting slabs. Row ends
	// are cumulative within the image, so a shard's per-image index is
	// self-contained: posts[postStart+end[i-1] : postStart+end[i]].
	idxTab := make([]byte, v2IdxRecSize*len(c.Images))
	var rowIDsB, rowEndsB, postsB []byte
	var nRows, nPosts uint64
	for ii := range c.Images {
		img := &c.Images[ii]
		if img.Index == nil {
			continue
		}
		rec := idxTab[ii*v2IdxRecSize:]
		le.PutUint64(rec[0:], nRows)
		le.PutUint64(rec[8:], uint64(len(img.Index)))
		le.PutUint64(rec[16:], nPosts)
		end := uint64(0)
		for _, row := range img.Index {
			rowIDsB = le.AppendUint32(rowIDsB, row.ID)
			end += uint64(len(row.Posts))
			if end > math.MaxUint32 {
				return nil, fmt.Errorf("snapshot: encode: image %d posting count exceeds 32 bits", ii)
			}
			rowEndsB = le.AppendUint32(rowEndsB, uint32(end))
			for _, p := range row.Posts {
				postsB = le.AppendUint32(postsB, uint32(p.Exe))
				postsB = le.AppendUint32(postsB, uint32(p.Proc))
			}
		}
		le.PutUint64(rec[24:], end)
		nRows += uint64(len(img.Index))
		nPosts += end
	}

	// Sorted-vocabulary slab: hashes ascending plus the parallel dense
	// IDs, so a loaded shard binary-searches lookups straight off the
	// mapping instead of building a hash map at open.
	vocabB := make([]byte, 0, 8*len(c.Interner))
	for _, h := range c.Interner {
		vocabB = le.AppendUint64(vocabB, h)
	}
	order := make([]uint32, len(c.Interner))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(a, b int) bool { return c.Interner[order[a]] < c.Interner[order[b]] })
	sortedB := make([]byte, 0, 12*len(c.Interner))
	for i, id := range order {
		if i > 0 && c.Interner[id] == c.Interner[order[i-1]] {
			return nil, fmt.Errorf("snapshot: encode: duplicate strand hash %016x in vocabulary", c.Interner[id])
		}
		sortedB = le.AppendUint64(sortedB, c.Interner[id])
	}
	for _, id := range order {
		sortedB = le.AppendUint32(sortedB, id)
	}

	// Meta: shard header, slab totals (the open-time structural
	// cross-check against section lengths), per-image identity.
	var meta []byte
	meta = appendUvarint(meta, uint64(hdr.ShardIndex))
	meta = appendUvarint(meta, uint64(hdr.ShardCount))
	meta = appendUvarint(meta, uint64(hdr.ImageBase))
	meta = appendUvarint(meta, uint64(hdr.TotalImages))
	meta = appendUvarint(meta, uint64(len(c.Interner)))
	meta = appendUvarint(meta, uint64(len(strs)))
	meta = appendUvarint(meta, uint64(totalExes))
	meta = appendUvarint(meta, nProcs)
	meta = appendUvarint(meta, nIDs)
	meta = appendUvarint(meta, nMarkers)
	meta = appendUvarint(meta, nCalls)
	meta = appendUvarint(meta, nRows)
	meta = appendUvarint(meta, nPosts)
	meta = appendUvarint(meta, uint64(len(c.Images)))
	for i := range c.Images {
		img := &c.Images[i]
		meta = appendString(meta, img.Vendor)
		meta = appendString(meta, img.Device)
		meta = appendString(meta, img.Version)
		meta = appendUvarint(meta, uint64(len(img.Skipped)))
		for _, s := range img.Skipped {
			meta = appendString(meta, s.Path)
			meta = appendString(meta, s.Err)
		}
		meta = appendUvarint(meta, uint64(len(img.Exes)))
		if img.Index != nil {
			meta = append(meta, 1)
		} else {
			meta = append(meta, 0)
		}
	}

	type section struct {
		tag     uint32
		payload []byte
	}
	sections := []section{
		{secV2Meta, meta},
		{secV2Vocab, vocabB},
		{secV2VocabSorted, sortedB},
		{secV2Strs, strs},
		{secV2ExeTab, exeTab},
		{secV2ProcTab, procTab},
		{secV2IDs, idsB},
		{secV2Markers, markB},
		{secV2Calls, callB},
		{secV2IdxTab, idxTab},
		{secV2IdxRows, append(rowIDsB, rowEndsB...)},
		{secV2IdxPosts, postsB},
	}
	// A model carrying signatures writes the v3 layout; without them the
	// shard stays bit-identical to the pre-signature v2 format, so older
	// readers (and the exact-only open path) keep working.
	version := uint32(CorpusFormatVersionV2)
	if c.Sigs != nil {
		if uint64(len(c.Sigs)) != nProcs*CorpusSigWords {
			return nil, fmt.Errorf("snapshot: encode: signature slab holds %d words for %d procedures, want %d", len(c.Sigs), nProcs, nProcs*CorpusSigWords)
		}
		sigsB := make([]byte, 0, 4*len(c.Sigs))
		for _, w := range c.Sigs {
			sigsB = le.AppendUint32(sigsB, w)
		}
		sections = append(sections, section{secV2Sigs, sigsB})
		version = CorpusFormatVersionV3
	}

	offs := make([]uint64, len(sections))
	off := alignUp(uint64(headerSize+len(sections)*tableEntrySize), v2Align)
	for i, s := range sections {
		offs[i] = off
		off = alignUp(off+uint64(len(s.payload)), v2Align)
	}
	last := len(sections) - 1
	total := offs[last] + uint64(len(sections[last].payload))

	out := make([]byte, total)
	copy(out, corpusMagic)
	le.PutUint32(out[len(corpusMagic):], version)
	le.PutUint32(out[len(corpusMagic)+4:], uint32(len(sections)))
	p := headerSize
	for i, s := range sections {
		le.PutUint32(out[p:], s.tag)
		le.PutUint64(out[p+4:], offs[i])
		le.PutUint64(out[p+12:], uint64(len(s.payload)))
		le.PutUint32(out[p+20:], crc32.Checksum(s.payload, castagnoli))
		p += tableEntrySize
	}
	for i, s := range sections {
		copy(out[offs[i]:], s.payload)
	}
	return out, nil
}

// parseCorpusV2Table validates the shard header and section table:
// magic, version (2 or 3), exactly the version's section set present
// exactly once, every declared range inside the input and 64-byte
// aligned. Checksums are NOT verified here — that is per-section, on
// first touch. Returns the entries and the format version.
func parseCorpusV2Table(data []byte) ([]tableEntry, uint32, error) {
	if len(data) < headerSize {
		return nil, 0, corrupt("header", "truncated: %d bytes, need at least %d", len(data), headerSize)
	}
	if string(data[:len(corpusMagic)]) != corpusMagic {
		return nil, 0, corrupt("header", "bad corpus magic")
	}
	version := binary.LittleEndian.Uint32(data[len(corpusMagic):])
	if version != CorpusFormatVersionV2 && version != CorpusFormatVersionV3 {
		return nil, 0, corrupt("header", "unsupported corpus format version %d (this opener reads versions %d and %d)", version, CorpusFormatVersionV2, CorpusFormatVersionV3)
	}
	tags := sectionTagsFor(version)
	n := binary.LittleEndian.Uint32(data[len(corpusMagic)+4:])
	if n == 0 || n > maxSectionsV2 {
		return nil, 0, corrupt("header", "unreasonable section count %d", n)
	}
	if uint64(len(data)) < uint64(headerSize)+uint64(n)*tableEntrySize {
		return nil, 0, corrupt("table", "truncated: %d sections declared but table does not fit in %d bytes", n, len(data))
	}
	entries := make([]tableEntry, n)
	seen := map[uint32]bool{}
	for i := range entries {
		row := data[headerSize+i*tableEntrySize:]
		e := tableEntry{
			tag:    binary.LittleEndian.Uint32(row),
			off:    binary.LittleEndian.Uint64(row[4:]),
			length: binary.LittleEndian.Uint64(row[12:]),
			crc:    binary.LittleEndian.Uint32(row[20:]),
		}
		name := v2SectionName(e.tag)
		known := false
		for _, tag := range tags {
			if e.tag == tag {
				known = true
				break
			}
		}
		if !known {
			return nil, 0, corrupt("table", "unknown section tag %d for format version %d", e.tag, version)
		}
		if seen[e.tag] {
			return nil, 0, corrupt("table", "duplicate %s section", name)
		}
		seen[e.tag] = true
		if e.off > uint64(len(data)) || e.length > uint64(len(data))-e.off {
			return nil, 0, corrupt(name, "declared range [%d, %d+%d) exceeds the %d-byte input", e.off, e.off, e.length, len(data))
		}
		if e.length > 0 && e.off%v2Align != 0 {
			return nil, 0, corrupt(name, "section offset %d is not %d-byte aligned", e.off, v2Align)
		}
		entries[i] = e
	}
	for _, tag := range tags {
		if !seen[tag] {
			return nil, 0, corrupt("table", "missing required %s section", v2SectionName(tag))
		}
	}
	return entries, version, nil
}

// shardSection is one section of an open shard: CRC-verified at most
// once, on first access.
type shardSection struct {
	entry tableEntry
	once  sync.Once
	err   error
	b     []byte
}

// lazySlab memoizes a typed view over a section, built on first use.
type lazySlab[T any] struct {
	once sync.Once
	v    T
	err  error
}

func (l *lazySlab[T]) get(f func() (T, error)) (T, error) {
	l.once.Do(func() { l.v, l.err = f() })
	return l.v, l.err
}

// v2Image is the per-image identity decoded from the meta section.
type v2Image struct {
	vendor, device, version string
	skipped                 []Skip
	nexes                   int
	indexed                 bool
}

// v2Totals are the slab element counts declared by the meta section and
// cross-checked against section byte lengths at open.
type v2Totals struct {
	vocab, strs, exes, procs, ids, markers, calls, rows, posts uint64
}

// ImageInfo describes one image of an open shard without materializing
// any of its content.
type ImageInfo struct {
	Vendor      string
	Device      string
	Version     string
	Skipped     []Skip
	Executables int
	Indexed     bool
}

// ExeData is one executable materialized from a shard. IDs and Markers
// alias the mapped file (valid until Close); Calls and the strings are
// copies.
type ExeData struct {
	Path     string
	Arch     uint8
	Stripped bool
	Procs    []ProcData
}

// ProcData is one procedure of an ExeData.
type ProcData struct {
	Name       string
	Addr       uint32
	Exported   bool
	IDs        []uint32
	Markers    []uint32
	Calls      []int32
	BlockCount int
	EdgeCount  int
	InstCount  int
}

// IndexSlabs is one image's inverted index viewed directly over the
// mapped file: RowIDs[i] is the i-th indexed strand ID, its postings
// are Posts[RowEnds[i-1]:RowEnds[i]] (RowEnds[-1] taken as 0). All
// three slices alias the mapping; semantic validation (monotone rows,
// in-range postings) is the consumer's, structural bounds are checked
// here.
type IndexSlabs struct {
	RowIDs  []uint32
	RowEnds []uint32
	Posts   []Posting
}

// CorpusShard is one open v2 shard. All accessors are safe for
// concurrent use; slices they return alias the underlying mapping and
// are invalid after Close.
type CorpusShard struct {
	data      []byte
	closer    func() error
	mapped    bool
	closeOnce sync.Once

	hdr      ShardHeader
	version  uint32
	totals   v2Totals
	images   []v2Image
	exeStart []uint32 // per-image prefix sums into the exe table, len(images)+1

	secs [v2NumSections]shardSection

	vocabSlab lazySlab[[]uint64]
	sorted    lazySlab[sortedVocab]
	idsSlabL  lazySlab[[]uint32]
	markSlabL lazySlab[[]uint32]
	callSlabL lazySlab[[]uint32]
	rowsL     lazySlab[rowSlabs]
	postsL    lazySlab[[]Posting]
	sigsL     lazySlab[[]uint32]
}

type sortedVocab struct {
	hashes []uint64
	ids    []uint32
}

type rowSlabs struct {
	ids, ends []uint32
}

// OpenCorpusShardBytes opens a v2 shard over caller-provided bytes
// (already-read file, test buffer). The bytes must stay valid and
// unmodified for the shard's lifetime.
func OpenCorpusShardBytes(data []byte) (*CorpusShard, error) {
	return openCorpusShard(data, nil, false)
}

// OpenCorpusShardFile memory-maps (or, off Linux, reads) a v2 shard
// file. The returned shard owns the mapping; Close releases it.
func OpenCorpusShardFile(path string) (*CorpusShard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, closer, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	return openCorpusShard(data, closer, mapped)
}

// readAllFile is the portable mapFile fallback: one read, no mapping.
func readAllFile(f *os.File, size int64) ([]byte, func() error, bool, error) {
	if size < 0 || int64(int(size)) != size {
		return nil, nil, false, fmt.Errorf("snapshot: unreasonable file size %d", size)
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, false, err
	}
	return b, nil, false, nil
}

func openCorpusShard(data []byte, closer func() error, mapped bool) (*CorpusShard, error) {
	fail := func(err error) (*CorpusShard, error) {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	entries, version, err := parseCorpusV2Table(data)
	if err != nil {
		return fail(err)
	}
	s := &CorpusShard{data: data, closer: closer, mapped: mapped, version: version}
	for _, e := range entries {
		s.secs[e.tag-secV2Meta].entry = e
	}
	// Only the meta section is verified and decoded eagerly: it is the
	// structural skeleton every other check hangs off, and it is small.
	metaB, err := s.section(secV2Meta)
	if err != nil {
		return fail(err)
	}
	if err := s.decodeMeta(metaB); err != nil {
		return fail(err)
	}
	if err := s.checkLengths(); err != nil {
		return fail(err)
	}
	return s, nil
}

func (s *CorpusShard) section(tag uint32) ([]byte, error) {
	sec := &s.secs[tag-secV2Meta]
	sec.once.Do(func() {
		e := sec.entry
		b := s.data[e.off : e.off+e.length]
		if got := crc32.Checksum(b, castagnoli); got != e.crc {
			sec.err = corrupt(v2SectionName(tag), "checksum mismatch: stored %08x, computed %08x", e.crc, got)
			return
		}
		sec.b = b
	})
	return sec.b, sec.err
}

func (s *CorpusShard) decodeMeta(b []byte) error {
	r := &reader{b: b, section: "corpus-meta"}
	read := func(what string, max uint64) (uint64, error) {
		v, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		if v > max {
			return 0, r.corrupt("%s %d is unreasonably large", what, v)
		}
		return v, nil
	}
	shardIndex, err := read("shard index", math.MaxInt32)
	if err != nil {
		return err
	}
	shardCount, err := read("shard count", math.MaxInt32)
	if err != nil {
		return err
	}
	imageBase, err := read("image base", math.MaxInt32)
	if err != nil {
		return err
	}
	totalImages, err := read("total image count", math.MaxInt32)
	if err != nil {
		return err
	}
	if shardCount == 0 || shardIndex >= shardCount {
		return r.corrupt("shard index %d out of range for %d shards", shardIndex, shardCount)
	}
	s.hdr = ShardHeader{
		ShardIndex:  int(shardIndex),
		ShardCount:  int(shardCount),
		ImageBase:   int(imageBase),
		TotalImages: int(totalImages),
	}
	t := &s.totals
	for _, f := range []struct {
		dst  *uint64
		what string
		max  uint64
	}{
		{&t.vocab, "vocabulary size", math.MaxUint32},
		{&t.strs, "string blob size", math.MaxUint32},
		{&t.exes, "executable count", math.MaxUint32},
		{&t.procs, "procedure count", math.MaxUint32},
		{&t.ids, "strand ID count", v2MaxSlabElems},
		{&t.markers, "marker count", v2MaxSlabElems},
		{&t.calls, "call count", v2MaxSlabElems},
		{&t.rows, "index row count", v2MaxSlabElems},
		{&t.posts, "posting count", v2MaxSlabElems},
	} {
		if *f.dst, err = read(f.what, f.max); err != nil {
			return err
		}
	}
	nImages, err := r.count("image", 5)
	if err != nil {
		return err
	}
	if s.hdr.ImageBase+nImages > s.hdr.TotalImages {
		return r.corrupt("shard images [%d, %d) exceed declared corpus total %d", s.hdr.ImageBase, s.hdr.ImageBase+nImages, s.hdr.TotalImages)
	}
	s.images = make([]v2Image, nImages)
	s.exeStart = make([]uint32, nImages+1)
	sumExes := uint64(0)
	for i := 0; i < nImages; i++ {
		img := &s.images[i]
		if img.vendor, err = r.str(); err != nil {
			return err
		}
		if img.device, err = r.str(); err != nil {
			return err
		}
		if img.version, err = r.str(); err != nil {
			return err
		}
		nskips, err := r.count("skip", 2)
		if err != nil {
			return err
		}
		for k := 0; k < nskips; k++ {
			var sk Skip
			if sk.Path, err = r.str(); err != nil {
				return err
			}
			if sk.Err, err = r.str(); err != nil {
				return err
			}
			img.skipped = append(img.skipped, sk)
		}
		if img.nexes, err = r.uvarintInt("image executable count"); err != nil {
			return err
		}
		if img.indexed, err = r.bool(); err != nil {
			return err
		}
		sumExes += uint64(img.nexes)
		if sumExes > t.exes {
			return r.corrupt("per-image executable counts exceed declared total %d", t.exes)
		}
		s.exeStart[i+1] = uint32(sumExes)
	}
	if len(r.b) != 0 {
		return r.corrupt("%d trailing bytes after payload", len(r.b))
	}
	if sumExes != t.exes {
		return r.corrupt("per-image executable counts sum to %d, meta declares %d", sumExes, t.exes)
	}
	return nil
}

// checkLengths cross-checks every bulk section's byte length against
// the totals the meta section declared, so slab views never need
// per-access length recomputation and a truncated or padded section is
// rejected at open without reading its payload.
func (s *CorpusShard) checkLengths() error {
	t := &s.totals
	for _, c := range []struct {
		tag  uint32
		want uint64
	}{
		{secV2Vocab, t.vocab * 8},
		{secV2VocabSorted, t.vocab * 12},
		{secV2Strs, t.strs},
		{secV2ExeTab, t.exes * v2ExeRecSize},
		{secV2ProcTab, t.procs * v2ProcRecSize},
		{secV2IDs, t.ids * 4},
		{secV2Markers, t.markers * 4},
		{secV2Calls, t.calls * 4},
		{secV2IdxTab, uint64(len(s.images)) * v2IdxRecSize},
		{secV2IdxRows, t.rows * 8},
		{secV2IdxPosts, t.posts * 8},
	} {
		if got := s.secs[c.tag-secV2Meta].entry.length; got != c.want {
			return corrupt(v2SectionName(c.tag), "section holds %d bytes, meta requires %d", got, c.want)
		}
	}
	if s.version >= CorpusFormatVersionV3 {
		want := t.procs * CorpusSigWords * 4
		if got := s.secs[secV2Sigs-secV2Meta].entry.length; got != want {
			return corrupt("corpus-sigs", "section holds %d bytes, meta requires %d", got, want)
		}
	}
	return nil
}

// Header returns the shard's position within its corpus.
func (s *CorpusShard) Header() ShardHeader { return s.hdr }

// NumImages returns the number of images stored in this shard.
func (s *CorpusShard) NumImages() int { return len(s.images) }

// SizeBytes returns the shard file's size.
func (s *CorpusShard) SizeBytes() int64 { return int64(len(s.data)) }

// Mapped reports whether the shard is memory-mapped (vs read into
// heap memory by the portable fallback).
func (s *CorpusShard) Mapped() bool { return s.mapped }

// VocabChecksum returns the stored CRC32-C and byte length of the
// vocabulary section, the cheap cross-shard identity check: shards of
// one sealed corpus share a frozen vocabulary byte-for-byte.
func (s *CorpusShard) VocabChecksum() (crc uint32, length uint64) {
	e := s.secs[secV2Vocab-secV2Meta].entry
	return e.crc, e.length
}

// Image describes image i without touching any bulk section.
func (s *CorpusShard) Image(i int) ImageInfo {
	img := &s.images[i]
	return ImageInfo{
		Vendor:      img.vendor,
		Device:      img.device,
		Version:     img.version,
		Skipped:     img.skipped,
		Executables: img.nexes,
		Indexed:     img.indexed,
	}
}

// Vocab returns the frozen vocabulary (dense ID -> hash), aliasing the
// mapping where possible.
func (s *CorpusShard) Vocab() ([]uint64, error) {
	return s.vocabSlab.get(func() ([]uint64, error) {
		b, err := s.section(secV2Vocab)
		if err != nil {
			return nil, err
		}
		return castU64(b), nil
	})
}

// SortedVocab returns the vocabulary sorted by hash with the parallel
// dense IDs — the binary-searchable lookup structure.
func (s *CorpusShard) SortedVocab() ([]uint64, []uint32, error) {
	sv, err := s.sorted.get(func() (sortedVocab, error) {
		b, err := s.section(secV2VocabSorted)
		if err != nil {
			return sortedVocab{}, err
		}
		split := int(s.totals.vocab * 8)
		return sortedVocab{hashes: castU64(b[:split]), ids: castU32(b[split:])}, nil
	})
	return sv.hashes, sv.ids, err
}

func (s *CorpusShard) idsSlab() ([]uint32, error) {
	return s.idsSlabL.get(func() ([]uint32, error) {
		b, err := s.section(secV2IDs)
		if err != nil {
			return nil, err
		}
		return castU32(b), nil
	})
}

func (s *CorpusShard) markSlab() ([]uint32, error) {
	return s.markSlabL.get(func() ([]uint32, error) {
		b, err := s.section(secV2Markers)
		if err != nil {
			return nil, err
		}
		return castU32(b), nil
	})
}

func (s *CorpusShard) callSlab() ([]uint32, error) {
	return s.callSlabL.get(func() ([]uint32, error) {
		b, err := s.section(secV2Calls)
		if err != nil {
			return nil, err
		}
		return castU32(b), nil
	})
}

func (s *CorpusShard) rowSlabsGet() (rowSlabs, error) {
	return s.rowsL.get(func() (rowSlabs, error) {
		b, err := s.section(secV2IdxRows)
		if err != nil {
			return rowSlabs{}, err
		}
		split := int(s.totals.rows * 4)
		return rowSlabs{ids: castU32(b[:split]), ends: castU32(b[split:])}, nil
	})
}

func (s *CorpusShard) postsSlab() ([]Posting, error) {
	return s.postsL.get(func() ([]Posting, error) {
		b, err := s.section(secV2IdxPosts)
		if err != nil {
			return nil, err
		}
		return castPostings(b), nil
	})
}

// Version returns the shard's format version (2 or 3).
func (s *CorpusShard) Version() int { return int(s.version) }

// HasSignatures reports whether the shard carries the v3 corpus-sigs
// section. Without it the LSH tier is unavailable for this shard and
// searches use the exact prefilter.
func (s *CorpusShard) HasSignatures() bool { return s.version >= CorpusFormatVersionV3 }

// SigSlab returns the whole per-procedure MinHash signature slab
// (CorpusSigWords words per procedure, dense order across the shard's
// images), aliasing the mapping. Nil with no error on a pre-signature
// v2 shard.
func (s *CorpusShard) SigSlab() ([]uint32, error) {
	if !s.HasSignatures() {
		return nil, nil
	}
	return s.sigsL.get(func() ([]uint32, error) {
		b, err := s.section(secV2Sigs)
		if err != nil {
			return nil, err
		}
		return castU32(b), nil
	})
}

// ImageSigs returns image img's slice of the signature slab: one
// CorpusSigWords-word signature per procedure, in the executable/
// procedure order of the image's dense slots. Nil with no error on a
// v2 shard or for an image with no executables.
func (s *CorpusShard) ImageSigs(img int) ([]uint32, error) {
	if img < 0 || img >= len(s.images) {
		return nil, fmt.Errorf("snapshot: shard image %d out of range", img)
	}
	if !s.HasSignatures() {
		return nil, nil
	}
	lo, hi := int(s.exeStart[img]), int(s.exeStart[img+1])
	if lo == hi {
		return nil, nil
	}
	exeTab, err := s.section(secV2ExeTab)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	start := uint64(le.Uint32(exeTab[lo*v2ExeRecSize+8:]))
	lastRec := exeTab[(hi-1)*v2ExeRecSize:]
	end := uint64(le.Uint32(lastRec[8:])) + uint64(le.Uint32(lastRec[12:]))
	if end < start || end > s.totals.procs {
		return nil, corrupt("corpus-exe-table", "image %d procedures [%d, %d) exceed the %d-entry table", img, start, end, s.totals.procs)
	}
	sigs, err := s.SigSlab()
	if err != nil {
		return nil, err
	}
	return sigs[start*CorpusSigWords : end*CorpusSigWords : end*CorpusSigWords], nil
}

// ProcCounts returns the per-executable procedure counts of image img
// from the executable table alone — what a foreign index needs to
// validate postings without materializing any executable.
func (s *CorpusShard) ProcCounts(img int) ([]int32, error) {
	exeTab, err := s.section(secV2ExeTab)
	if err != nil {
		return nil, err
	}
	base := int(s.exeStart[img])
	out := make([]int32, s.images[img].nexes)
	for i := range out {
		n := binary.LittleEndian.Uint32(exeTab[(base+i)*v2ExeRecSize+12:])
		if n > math.MaxInt32 {
			return nil, corrupt("corpus-exe-table", "executable %d declares %d procedures", base+i, n)
		}
		out[i] = int32(n)
	}
	return out, nil
}

// Exe materializes executable i of image img. The returned IDs and
// Markers slices alias the mapped slabs; everything else is copied.
// Strand IDs are validated (strictly increasing, inside the
// vocabulary) and call targets are validated against the executable,
// so consumers can rely on the same invariants DecodeCorpus enforces.
func (s *CorpusShard) Exe(img, i int) (*ExeData, error) {
	if img < 0 || img >= len(s.images) || i < 0 || i >= s.images[img].nexes {
		return nil, fmt.Errorf("snapshot: shard executable (%d, %d) out of range", img, i)
	}
	exeTab, err := s.section(secV2ExeTab)
	if err != nil {
		return nil, err
	}
	procTab, err := s.section(secV2ProcTab)
	if err != nil {
		return nil, err
	}
	strs, err := s.section(secV2Strs)
	if err != nil {
		return nil, err
	}
	ids, err := s.idsSlab()
	if err != nil {
		return nil, err
	}
	marks, err := s.markSlab()
	if err != nil {
		return nil, err
	}
	calls, err := s.callSlab()
	if err != nil {
		return nil, err
	}

	gi := int(s.exeStart[img]) + i
	rec := exeTab[gi*v2ExeRecSize:][:v2ExeRecSize]
	le := binary.LittleEndian
	str := func(off, n uint32, what string) (string, error) {
		if uint64(off)+uint64(n) > uint64(len(strs)) {
			return "", corrupt("corpus-exe-table", "executable %d %s [%d, %d+%d) exceeds the %d-byte string blob", gi, what, off, off, n, len(strs))
		}
		return string(strs[off : off+n]), nil
	}
	path, err := str(le.Uint32(rec[0:]), le.Uint32(rec[4:]), "path")
	if err != nil {
		return nil, err
	}
	procStart, procCount := le.Uint32(rec[8:]), le.Uint32(rec[12:])
	if uint64(procStart)+uint64(procCount) > s.totals.procs {
		return nil, corrupt("corpus-exe-table", "executable %d procedures [%d, %d+%d) exceed the %d-entry table", gi, procStart, procStart, procCount, s.totals.procs)
	}
	idOff, mOff, cOff := le.Uint64(rec[16:]), le.Uint64(rec[24:]), le.Uint64(rec[32:])
	if rec[41] > 1 {
		return nil, corrupt("corpus-exe-table", "executable %d stripped flag byte %d is neither 0 nor 1", gi, rec[41])
	}
	ed := &ExeData{
		Path:     path,
		Arch:     rec[40],
		Stripped: rec[41] == 1,
		Procs:    make([]ProcData, procCount),
	}
	for pi := range ed.Procs {
		prec := procTab[(int(procStart)+pi)*v2ProcRecSize:][:v2ProcRecSize]
		p := &ed.Procs[pi]
		nameOff, nameLen := le.Uint32(prec[0:]), le.Uint32(prec[4:])
		if uint64(nameOff)+uint64(nameLen) > uint64(len(strs)) {
			return nil, corrupt("corpus-proc-table", "procedure %d name [%d, %d+%d) exceeds the %d-byte string blob", int(procStart)+pi, nameOff, nameOff, nameLen, len(strs))
		}
		p.Name = string(strs[nameOff : nameOff+nameLen])
		p.Addr = le.Uint32(prec[8:])
		flags := le.Uint32(prec[12:])
		if flags&^1 != 0 {
			return nil, corrupt("corpus-proc-table", "procedure %d has unknown flag bits %#x", int(procStart)+pi, flags)
		}
		p.Exported = flags&1 != 0
		nid, nmark, ncall := le.Uint32(prec[16:]), le.Uint32(prec[20:]), le.Uint32(prec[24:])
		if idOff+uint64(nid) > uint64(len(ids)) {
			return nil, corrupt("corpus-ids", "procedure %d strand IDs [%d, %d+%d) exceed the %d-entry slab", int(procStart)+pi, idOff, idOff, nid, len(ids))
		}
		if mOff+uint64(nmark) > uint64(len(marks)) {
			return nil, corrupt("corpus-markers", "procedure %d markers [%d, %d+%d) exceed the %d-entry slab", int(procStart)+pi, mOff, mOff, nmark, len(marks))
		}
		if cOff+uint64(ncall) > uint64(len(calls)) {
			return nil, corrupt("corpus-calls", "procedure %d calls [%d, %d+%d) exceed the %d-entry slab", int(procStart)+pi, cOff, cOff, ncall, len(calls))
		}
		p.IDs = ids[idOff : idOff+uint64(nid) : idOff+uint64(nid)]
		for k, id := range p.IDs {
			if k > 0 && id <= p.IDs[k-1] {
				return nil, corrupt("corpus-ids", "procedure %d strand IDs not strictly increasing at element %d", int(procStart)+pi, k)
			}
			if uint64(id) >= s.totals.vocab {
				return nil, corrupt("corpus-ids", "procedure %d references strand ID %d outside the %d-entry vocabulary", int(procStart)+pi, id, s.totals.vocab)
			}
		}
		p.Markers = marks[mOff : mOff+uint64(nmark) : mOff+uint64(nmark)]
		if ncall > 0 {
			p.Calls = make([]int32, ncall)
			for k := range p.Calls {
				c := calls[cOff+uint64(k)]
				if c >= procCount {
					return nil, corrupt("corpus-calls", "procedure %d calls procedure %d of %d", int(procStart)+pi, c, procCount)
				}
				p.Calls[k] = int32(c)
			}
		}
		p.BlockCount = int(le.Uint32(prec[28:]))
		p.EdgeCount = int(le.Uint32(prec[32:]))
		p.InstCount = int(le.Uint32(prec[36:]))
		idOff += uint64(nid)
		mOff += uint64(nmark)
		cOff += uint64(ncall)
	}
	return ed, nil
}

// Index returns image img's inverted index as slab views over the
// mapping, nil when the image was sealed without an index, and a
// non-nil empty IndexSlabs for a present-but-empty index.
func (s *CorpusShard) Index(img int) (*IndexSlabs, error) {
	if img < 0 || img >= len(s.images) {
		return nil, fmt.Errorf("snapshot: shard image %d out of range", img)
	}
	if !s.images[img].indexed {
		return nil, nil
	}
	idxTab, err := s.section(secV2IdxTab)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	rec := idxTab[img*v2IdxRecSize:][:v2IdxRecSize]
	rowStart, rowCount := le.Uint64(rec[0:]), le.Uint64(rec[8:])
	postStart, postCount := le.Uint64(rec[16:]), le.Uint64(rec[24:])
	if rowStart+rowCount > s.totals.rows {
		return nil, corrupt("corpus-index-table", "image %d rows [%d, %d+%d) exceed the %d-row slab", img, rowStart, rowStart, rowCount, s.totals.rows)
	}
	if postStart+postCount > s.totals.posts {
		return nil, corrupt("corpus-index-table", "image %d postings [%d, %d+%d) exceed the %d-posting slab", img, postStart, postStart, postCount, s.totals.posts)
	}
	if rowCount == 0 {
		if postCount != 0 {
			return nil, corrupt("corpus-index-table", "image %d declares %d postings across 0 rows", img, postCount)
		}
		return &IndexSlabs{}, nil
	}
	rows, err := s.rowSlabsGet()
	if err != nil {
		return nil, err
	}
	posts, err := s.postsSlab()
	if err != nil {
		return nil, err
	}
	out := &IndexSlabs{
		RowIDs:  rows.ids[rowStart : rowStart+rowCount : rowStart+rowCount],
		RowEnds: rows.ends[rowStart : rowStart+rowCount : rowStart+rowCount],
		Posts:   posts[postStart : postStart+postCount : postStart+postCount],
	}
	if uint64(out.RowEnds[rowCount-1]) != postCount {
		return nil, corrupt("corpus-index-table", "image %d row ends terminate at %d, index table declares %d postings", img, out.RowEnds[rowCount-1], postCount)
	}
	return out, nil
}

// Close releases the mapping. Every slice previously returned by an
// accessor becomes invalid. Close is idempotent and safe to call
// concurrently with nothing else.
func (s *CorpusShard) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.closer != nil {
			err = s.closer()
		}
	})
	return err
}
