//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. Opening a shard this way costs page
// faults on touch instead of an up-front read: sections the serving
// process never materializes never leave the page cache. Falls back to
// the portable read-all path when mmap itself fails (size 0, exotic
// filesystems).
func mapFile(f *os.File, size int64) (data []byte, closer func() error, mapped bool, err error) {
	if size <= 0 || int64(int(size)) != size {
		return readAllFile(f, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readAllFile(f, size)
	}
	return b, func() error { return syscall.Munmap(b) }, true, nil
}
