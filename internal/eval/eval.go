// Package eval implements the paper's evaluation: the wild CVE hunt
// (Table 2), the labeled-precision comparisons against the BinDiff-style
// and GitZ-style baselines (Figs. 6 and 8), the game-step distribution
// and no-game ablation (Fig. 9), and the demonstration artifacts
// (Table 1 game course, Fig. 5 call graphs, Fig. 1/3 strand forms).
package eval

import (
	"fmt"
	"sort"
	"time"

	"firmup/internal/baseline/gitz"
	"firmup/internal/cfg"
	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/corpusindex"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// Unit is one unique build (the same executable often ships in several
// images, as the paper observed; analysis runs once per unit).
type Unit struct {
	Key        string
	Pkg        string
	PkgVersion string
	Vendor     string
	Arch       uir.Arch
	File       *obj.File
	Truth      map[string]uint32
	// Occurrences lists (image index, latest?) references.
	Occurrences []Occurrence
	// Exe is the indexed (recovered, stripped) view.
	Exe *sim.Exe
}

// Occurrence ties a unit to one image.
type Occurrence struct {
	ImageIdx int
	Vendor   string
	Device   string
	Latest   bool
}

// TruthName resolves the original name of a procedure address.
func (u *Unit) TruthName(addr uint32) string {
	for n, a := range u.Truth {
		if a == addr {
			return n
		}
	}
	return ""
}

// Env is the prepared evaluation environment: the corpus, its unique
// units indexed for search, and per-(package, arch) query builds. Every
// unit and query is built under one analyzer session (It), so the
// matcher always takes the interned fast paths; Index is the
// corpus-level inverted index over the units.
type Env struct {
	Corpus *corpus.Corpus
	Units  []*Unit
	// It is the session interner shared by every unit and query build.
	It *corpusindex.Interner
	// Index maps dense strand IDs to (unit, procedure) postings across
	// the whole corpus; unit IDs follow Units order.
	Index *corpusindex.Index
	// queries caches QueryExe results by pkg|version|arch.
	queries map[string]*queryBuild
}

// UniqueStrands reports the session's strand vocabulary size.
func (env *Env) UniqueStrands() int { return env.It.Size() }

type queryBuild struct {
	exe *sim.Exe
	f   *obj.File
}

// Prepare builds the corpus and indexes every unique unit.
func Prepare(sc corpus.Scale) (*Env, error) {
	c, err := corpus.Build(sc)
	if err != nil {
		return nil, err
	}
	env := &Env{Corpus: c, It: corpusindex.NewInterner(), queries: map[string]*queryBuild{}}
	byFile := map[*obj.File]*Unit{}
	for ii, bi := range c.Images {
		for ei := range bi.Exes {
			e := &bi.Exes[ei]
			u, ok := byFile[e.File]
			if !ok {
				u = &Unit{
					Key:        fmt.Sprintf("%s|%s@%s|%v", e.Vendor, e.Pkg, e.PkgVersion, e.Arch),
					Pkg:        e.Pkg,
					PkgVersion: e.PkgVersion,
					Vendor:     e.Vendor,
					Arch:       e.Arch,
					File:       e.File,
					Truth:      e.Truth,
				}
				byFile[e.File] = u
				env.Units = append(env.Units, u)
			}
			u.Occurrences = append(u.Occurrences, Occurrence{
				ImageIdx: ii, Vendor: bi.Vendor, Device: bi.Device, Latest: bi.Latest,
			})
		}
	}
	sort.Slice(env.Units, func(i, j int) bool { return env.Units[i].Key < env.Units[j].Key })
	env.Index = corpusindex.NewIndex(env.It)
	for _, u := range env.Units {
		rec, err := cfg.Recover(u.File)
		if err != nil {
			return nil, fmt.Errorf("eval: recover %s: %w", u.Key, err)
		}
		u.Exe = sim.Build(u.Key, rec, env.It)
		env.Index.Add(u.Exe)
	}
	return env, nil
}

// Query returns (building on first use) the query executable for a
// package version on an architecture.
func (env *Env) Query(pkg, version string, arch uir.Arch) (*sim.Exe, error) {
	key := fmt.Sprintf("%s|%s|%v", pkg, version, arch)
	if q, ok := env.queries[key]; ok {
		return q.exe, nil
	}
	exe, f, err := corpus.QueryExeIn(env.It, pkg, version, arch)
	if err != nil {
		return nil, err
	}
	env.queries[key] = &queryBuild{exe: exe, f: f}
	return exe, nil
}

// Verdict classifies one tool answer against ground truth.
type Verdict uint8

// Verdicts.
const (
	VerdictTP      Verdict = iota // matched the true procedure
	VerdictFP                     // matched a different procedure
	VerdictFN                     // reported nothing though the procedure is present
	VerdictTN                     // reported nothing and the procedure is absent
	VerdictPatched                // matched the true procedure in a fixed version
)

// classify scores a claimed match address for a CVE procedure within a
// unit. hasProc states whether the unit truly contains the procedure.
func classify(u *Unit, cve *corpus.CVE, matched bool, addr uint32) Verdict {
	trueAddr, hasProc := u.Truth[cve.Procedure]
	// libcurl 7.10 ships the deprecated predecessor of
	// curl_easy_unescape; a match to it is a true finding (the paper's
	// "deprecated procedures" discovery).
	depAddr, hasDep := uint32(0), false
	if cve.Procedure == "curl_easy_unescape" {
		depAddr, hasDep = u.Truth["curl_unescape"]
	}
	switch {
	case matched && hasProc && addr == trueAddr:
		if cve.VulnerableIn(u.PkgVersion) {
			return VerdictTP
		}
		return VerdictPatched
	case matched && hasDep && addr == depAddr:
		return VerdictTP
	case matched:
		return VerdictFP
	case hasProc && cve.VulnerableIn(u.PkgVersion):
		return VerdictFN
	default:
		return VerdictTN
	}
}

// measure runs f and returns its wall-clock duration.
func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// DefaultSearch is the engine configuration shared by the experiments.
// The ratio threshold plays the role of the paper's semi-manual
// confirmation step: genuinely shared procedures keep ~45%+ of the
// query's canonical strands even across divergent tool chains, while
// coincidental matches between unrelated string-processing procedures
// plateau near 40%.
func DefaultSearch() *core.SearchOptions {
	return &core.SearchOptions{MinScore: 8, MinRatio: 0.42}
}

// WeightedSearch extends DefaultSearch with the statistical strand
// weighting trained over the corpus's own procedures (the paper trains a
// global context from randomly sampled procedures in the wild). Rare
// strands carry more evidence; ubiquitous loop idioms carry less, which
// suppresses spurious cross-package detections.
func (env *Env) WeightedSearch() *core.SearchOptions {
	var sample []*sim.Exe
	for _, u := range env.Units {
		sample = append(sample, u.Exe)
	}
	ctx := gitz.Train(sample)
	opt := DefaultSearch()
	opt.Weigher = ctx.Weight
	return opt
}
