package eval

import (
	"fmt"
	"sort"
	"strings"

	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// GameTrace reproduces the paper's Table 1: the step-by-step game course
// for a CVE query against a vendor firmware target. Like the paper's
// example, it prefers a course where the rival actually forces
// corrections (more than one step); if the corpus offers none, it falls
// back to a one-step agreement.
func GameTrace(env *Env) (string, error) {
	type pick struct {
		cve    *corpus.CVE
		target *Unit
		q      *sim.Exe
		qi     int
		r      core.Result
	}
	var best *pick
	for _, id := range []string{"CVE-2014-4877", "CVE-2013-1944", "CVE-2012-0036", "CVE-2009-4593"} {
		cve := corpus.CVEByID(id)
		for _, u := range env.Units {
			if u.Pkg != cve.Package {
				continue
			}
			if _, ok := u.Truth[cve.Procedure]; !ok {
				continue
			}
			q, err := env.Query(cve.Package, cve.QueryVersion, u.Arch)
			if err != nil {
				continue
			}
			qi := q.ProcByName(cve.Procedure)
			if qi < 0 {
				continue
			}
			r := core.Match(q, qi, u.Exe, &core.Options{RecordTrace: true})
			if r.Target < 0 {
				continue
			}
			correct := u.TruthName(u.Exe.Procs[r.Target].Addr) == cve.Procedure
			if !correct {
				continue
			}
			if best == nil || (r.Steps > best.r.Steps && r.Steps <= 32) {
				best = &pick{cve: cve, target: u, q: q, qi: qi, r: r}
			}
		}
		if best != nil && best.r.Steps > 1 {
			break
		}
	}
	if best == nil {
		return "", fmt.Errorf("eval: no matched game course available")
	}
	cve, target, r := best.cve, best.target, best.r
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: game course for %s searched in %s (%s, %v)\n\n",
		cve.Procedure, target.Device(), target.Vendor, target.Arch)
	fmt.Fprintf(&sb, "%-8s %-64s %s\n", "Actor", "Step", "Matching")
	for _, s := range r.Trace {
		fmt.Fprintf(&sb, "%-8s %-64s %s\n", s.Actor, s.Text, s.Matches)
	}
	switch {
	case r.Target >= 0:
		name := target.TruthName(target.Exe.Procs[r.Target].Addr)
		fmt.Fprintf(&sb, "\nGame over in %d steps: %s matched with %s (truth: %s), Sim=%d\n",
			r.Steps, cve.Procedure, target.Exe.Procs[r.Target].Name, name, r.Score)
	default:
		fmt.Fprintf(&sb, "\nGame over (%v) after %d steps\n", r.Reason, r.Steps)
	}
	return sb.String(), nil
}

// Device returns a representative device name for the unit.
func (u *Unit) Device() string {
	if len(u.Occurrences) > 0 {
		return u.Occurrences[0].Device
	}
	return "?"
}

// CallGraphs reproduces the paper's Fig. 5: the call-graph neighborhood
// of ftp_retrieve_glob in the query versus in a vendor target, showing
// the structural variance that defeats graph-based matching.
func CallGraphs(env *Env) (string, error) {
	cve := corpus.CVEByID("CVE-2014-4877")
	var target *Unit
	for _, u := range env.Units {
		if u.Pkg == "wget" && u.Vendor == "NETGEAR" {
			target = u
			break
		}
	}
	if target == nil {
		return "", fmt.Errorf("eval: no NETGEAR wget unit")
	}
	q, err := env.Query(cve.Package, cve.QueryVersion, target.Arch)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig. 5: call-graph neighborhood of ftp_retrieve_glob\n\n")
	sb.WriteString("Query executable (gcc52-O2, all features):\n")
	sb.WriteString(neighborhood(q, q.ProcByName(cve.Procedure), func(i int) string { return q.Procs[i].Name }))
	sb.WriteString("\nNETGEAR target (vendor tool chain, --disable-opie):\n")
	ti := -1
	if addr, ok := target.Truth[cve.Procedure]; ok {
		for i, p := range target.Exe.Procs {
			if p.Addr == addr {
				ti = i
			}
		}
	}
	if ti < 0 {
		return "", fmt.Errorf("eval: target lacks %s", cve.Procedure)
	}
	sb.WriteString(neighborhood(target.Exe, ti, func(i int) string {
		n := target.TruthName(target.Exe.Procs[i].Addr)
		if n == "" {
			return target.Exe.Procs[i].Name
		}
		return target.Exe.Procs[i].Name + " (" + n + ")"
	}))
	return sb.String(), nil
}

// neighborhood renders callees and (two levels of) callers of a
// procedure.
func neighborhood(e *sim.Exe, pi int, label func(int) string) string {
	if pi < 0 {
		return "  (procedure not present)\n"
	}
	var sb strings.Builder
	p := e.Procs[pi]
	fmt.Fprintf(&sb, "  %s\n", label(pi))
	var callees []string
	for _, c := range p.Calls {
		callees = append(callees, label(c))
	}
	sort.Strings(callees)
	for _, c := range callees {
		fmt.Fprintf(&sb, "    calls %s\n", c)
	}
	for _, c := range p.CalledBy {
		fmt.Fprintf(&sb, "    called by %s\n", label(c))
		for _, cc := range e.Procs[c].CalledBy {
			fmt.Fprintf(&sb, "      called by %s\n", label(cc))
		}
	}
	return sb.String()
}

// StrandDemo reproduces the paper's Fig. 1 / Fig. 3 narrative: the same
// source block compiled by two tool chains yields disjoint instructions
// whose canonical strands coincide.
func StrandDemo(env *Env) (string, error) {
	cve := corpus.CVEByID("CVE-2014-4877")
	q, err := env.Query(cve.Package, cve.QueryVersion, uir.ArchMIPS32)
	if err != nil {
		return "", err
	}
	var target *Unit
	for _, u := range env.Units {
		if u.Pkg == "wget" && u.Arch == uir.ArchMIPS32 && u.Vendor != "" {
			if _, ok := u.Truth[cve.Procedure]; ok {
				target = u
				break
			}
		}
	}
	if target == nil {
		return "", fmt.Errorf("eval: no MIPS wget target with %s", cve.Procedure)
	}
	qi := q.ProcByName(cve.Procedure)
	addr := target.Truth[cve.Procedure]
	ti := -1
	for i, p := range target.Exe.Procs {
		if p.Addr == addr {
			ti = i
		}
	}
	if qi < 0 || ti < 0 {
		return "", fmt.Errorf("eval: demo procedures missing")
	}
	qp, tp := q.Procs[qi], target.Exe.Procs[ti]
	shared := qp.Set.Intersect(tp.Set)
	var sb strings.Builder
	sb.WriteString("Fig. 1/3: the syntactic gap and its canonical bridge\n\n")
	fmt.Fprintf(&sb, "query  %s: %d canonical strands (gcc52-O2 profile)\n", cve.Procedure, qp.Set.Size())
	fmt.Fprintf(&sb, "target %s: %d canonical strands (%s tool chain, stripped as %s)\n",
		cve.Procedure, tp.Set.Size(), target.Vendor, tp.Name)
	fmt.Fprintf(&sb, "shared canonical strands: %d (Sim)\n", shared)
	return sb.String(), nil
}
