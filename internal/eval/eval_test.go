package eval

import (
	"strings"
	"sync"
	"testing"

	"firmup/internal/corpus"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// testEnv builds the default-scale environment once for all tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = Prepare(corpus.DefaultScale())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestPrepare(t *testing.T) {
	env := testEnv(t)
	if len(env.Units) == 0 {
		t.Fatal("no units")
	}
	for _, u := range env.Units {
		if u.Exe == nil || len(u.Exe.Procs) == 0 {
			t.Errorf("unit %s not indexed", u.Key)
		}
		if len(u.Occurrences) == 0 {
			t.Errorf("unit %s has no occurrences", u.Key)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	env := testEnv(t)
	res, err := Table2(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	confirmed, _ := res.TotalConfirmed()
	if confirmed == 0 {
		t.Fatal("no confirmed findings at all")
	}
	totalFP := 0
	for _, row := range res.Rows {
		totalFP += row.FPs
		t.Logf("%-14s %-28s confirmed=%d fps=%d patched=%d missed=%d latest=%d vendors=%v",
			row.CVE, row.Procedure, row.Confirmed, row.FPs, row.Patched, row.Missed, row.Latest, row.Vendors)
	}
	// Shape: confirmed findings dominate false positives overall.
	if totalFP*3 > confirmed {
		t.Errorf("FP rate too high: %d FPs vs %d confirmed", totalFP, confirmed)
	}
	out := res.Format()
	if !strings.Contains(out, "CVE-2014-4877") {
		t.Error("format missing rows")
	}
}

func TestCompareBinDiffShape(t *testing.T) {
	env := testEnv(t)
	res, err := CompareBinDiff(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	fuP, fuFP, fuFN, blP, blFP, blFN := res.Rates()
	t.Logf("FirmUp P/FP/FN = %d/%d/%d, BinDiff = %d/%d/%d", fuP, fuFP, fuFN, blP, blFP, blFN)
	fuT := fuP + fuFP + fuFN
	blT := blP + blFP + blFN
	if fuT == 0 || blT == 0 {
		t.Fatal("no labeled targets")
	}
	// The paper's Fig. 6 shape: FirmUp's success rate far above BinDiff's.
	fuRate := float64(fuP) / float64(fuT)
	blRate := float64(blP) / float64(blT)
	if fuRate < 0.75 {
		t.Errorf("FirmUp labeled success rate %.2f too low", fuRate)
	}
	if fuRate <= blRate {
		t.Errorf("FirmUp (%.2f) must beat BinDiff (%.2f)", fuRate, blRate)
	}
	t.Log("\n" + res.Format())
}

func TestCompareGitZShape(t *testing.T) {
	env := testEnv(t)
	res, err := CompareGitZ(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	fuP, fuFP, fuFN, blP, blFP, blFN := res.Rates()
	t.Logf("FirmUp P/FP/FN = %d/%d/%d, GitZ = %d/%d/%d", fuP, fuFP, fuFN, blP, blFP, blFN)
	fuT := fuP + fuFP + fuFN
	blT := blP + blFP + blFN
	fuFalse := float64(fuFP+fuFN) / float64(fuT)
	blFalse := float64(blFP+blFN) / float64(blT)
	// The paper's Fig. 8 shape: FirmUp's false rate well below GitZ's.
	if fuFalse >= blFalse {
		t.Errorf("FirmUp false rate %.2f must be below GitZ %.2f", fuFalse, blFalse)
	}
	t.Log("\n" + res.Format())
	t.Log("\n" + FormatFig9(res))
	// Fig. 9 shape: most matches need one step; the ablated engine is
	// no better than the full game.
	buckets := Fig9Buckets(res.StepsHistogram)
	if buckets[0].Count == 0 {
		t.Error("no one-step matches at all")
	}
	if res.NoGameP > fuP {
		t.Errorf("ablation (%d) outperformed the game (%d)", res.NoGameP, fuP)
	}
}

func TestGameTraceRenders(t *testing.T) {
	env := testEnv(t)
	out, err := GameTrace(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Game over") {
		t.Errorf("trace output:\n%s", out)
	}
	t.Log("\n" + out)
}

func TestCallGraphsRender(t *testing.T) {
	env := testEnv(t)
	out, err := CallGraphs(env)
	if err != nil {
		t.Skip("no NETGEAR wget in default scale:", err)
	}
	if !strings.Contains(out, "Query executable") {
		t.Error("missing query graph")
	}
	t.Log("\n" + out)
}

func TestStrandDemoRenders(t *testing.T) {
	env := testEnv(t)
	out, err := StrandDemo(env)
	if err != nil {
		t.Skip("demo target unavailable at this scale:", err)
	}
	if !strings.Contains(out, "shared canonical strands") {
		t.Error("demo incomplete")
	}
	t.Log("\n" + out)
}
