package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/uir"
)

// Table2Row is one CVE-hunt experiment (a row of the paper's Table 2).
type Table2Row struct {
	CVE       string
	Package   string
	Procedure string
	// Confirmed counts image occurrences in which the vulnerable
	// procedure was correctly located (the paper counts per image).
	Confirmed int
	// FPs counts occurrences where an unrelated procedure was matched.
	FPs int
	// Patched counts correct matches to fixed-version bodies (excluded
	// from Confirmed, not errors).
	Patched int
	// Missed counts vulnerable occurrences with no finding.
	Missed int
	// Vendors lists affected vendors.
	Vendors []string
	// Latest counts devices whose newest firmware is affected.
	Latest int
	// Time is the wall-clock duration of the hunt.
	Time time.Duration
}

// Table2Result is the full experiment.
type Table2Result struct {
	Rows  []Table2Row
	Stats corpus.Stats
}

// table2CVEs are the seven wild-search rows of the paper's Table 2
// (stripped procedures only; the two exported-procedure CVEs appear only
// in the labeled experiments).
var table2CVEs = []string{
	"CVE-2011-0762", "CVE-2009-4593", "CVE-2012-0036", "CVE-2013-1944",
	"CVE-2013-2168", "CVE-2014-4877", "CVE-2016-8618",
}

// Table2 runs the wild CVE hunt: every query searched against every
// unique unit of the corpus, findings expanded to image occurrences and
// scored against ground truth.
func Table2(env *Env, opt *core.SearchOptions) (*Table2Result, error) {
	if opt == nil {
		opt = DefaultSearch()
	}
	res := &Table2Result{Stats: env.Corpus.Stat()}
	for _, id := range table2CVEs {
		cve := corpus.CVEByID(id)
		if cve == nil {
			return nil, fmt.Errorf("eval: unknown CVE %s", id)
		}
		row := Table2Row{CVE: cve.ID, Package: cve.Package, Procedure: cve.Procedure}
		vendors := map[string]bool{}
		latestDevices := map[string]bool{}
		dur := measure(func() {
			for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
				q, err := env.Query(cve.Package, cve.QueryVersion, arch)
				if err != nil {
					continue
				}
				qi := q.ProcByName(cve.Procedure)
				if qi < 0 {
					continue
				}
				for _, u := range env.Units {
					if u.Arch != arch {
						continue
					}
					f, _ := core.MatchOne(q, qi, u.Exe, opt)
					matched := f != nil
					var addr uint32
					if matched {
						addr = f.ProcAddr
					}
					v := classify(u, cve, matched, addr)
					for _, occ := range u.Occurrences {
						switch v {
						case VerdictTP:
							row.Confirmed++
							vendors[occ.Vendor] = true
							if occ.Latest {
								latestDevices[occ.Device] = true
							}
						case VerdictFP:
							row.FPs++
						case VerdictPatched:
							row.Patched++
						case VerdictFN:
							row.Missed++
						}
					}
				}
			}
		})
		row.Time = dur
		for v := range vendors {
			row.Vendors = append(row.Vendors, v)
		}
		sort.Strings(row.Vendors)
		row.Latest = len(latestDevices)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the result in the paper's Table 2 layout.
func (r *Table2Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Confirmed vulnerable procedures found in stripped firmware images\n")
	fmt.Fprintf(&sb, "(corpus: %d images, %d executables, %d procedures)\n\n",
		r.Stats.Images, r.Stats.Exes, r.Stats.Procedures)
	fmt.Fprintf(&sb, "%-3s %-14s %-9s %-28s %9s %4s %8s %-24s %6s %9s\n",
		"#", "CVE", "Package", "Procedure", "Confirmed", "FPs", "Patched", "Affected Vendors", "Latest", "Time")
	for i, row := range r.Rows {
		fmt.Fprintf(&sb, "%-3d %-14s %-9s %-28s %9d %4d %8d %-24s %6d %9s\n",
			i+1, row.CVE, row.Package, row.Procedure,
			row.Confirmed, row.FPs, row.Patched,
			strings.Join(row.Vendors, ","), row.Latest, row.Time.Round(time.Millisecond))
	}
	return sb.String()
}

// TotalConfirmed sums confirmed findings (the paper's headline "373
// vulnerable procedures" aggregate).
func (r *Table2Result) TotalConfirmed() (confirmed, latest int) {
	for _, row := range r.Rows {
		confirmed += row.Confirmed
		latest += row.Latest
	}
	return
}
