package eval

// Recall accounting for the approximate LSH candidate tier. The exact
// search's findings are the reference set: approximate mode can only
// lose findings (band non-collision skips a candidate before the game
// plays), never invent them, so recall — the fraction of exact
// findings the approximate search reproduces — is the single number
// that bounds its loss. The types here are tool-agnostic (plain finding
// keys, no dependency on the facade's result structs) so both the
// fwbench lsh experiment and the firmup-level recall-floor test can
// feed them.

// FindingKey identifies one finding location for recall accounting:
// the corpus image, the containing executable, and the matched
// procedure's entry address.
type FindingKey struct {
	Image    int
	ExePath  string
	ProcAddr uint32
}

// RecallStats accumulates approximate-search recall against exact
// reference sets, across any number of queries.
type RecallStats struct {
	// Expected counts reference findings observed so far.
	Expected int
	// Found counts reference findings the approximate search reproduced.
	Found int
}

// Observe scores one query's approximate finding set against its exact
// reference set.
func (r *RecallStats) Observe(exact, approx map[FindingKey]bool) {
	for k := range exact {
		r.Expected++
		if approx[k] {
			r.Found++
		}
	}
}

// Recall returns Found/Expected, or 1 when nothing was expected — an
// empty reference set is perfectly reproduced by an empty answer.
func (r *RecallStats) Recall() float64 {
	if r.Expected == 0 {
		return 1
	}
	return float64(r.Found) / float64(r.Expected)
}
