package eval

import (
	"fmt"
	"sort"
	"strings"

	"firmup/internal/baseline/bindiff"
	"firmup/internal/baseline/gitz"
	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// LabeledCounts aggregates one tool's answers for one query over the
// labeled targets.
type LabeledCounts struct {
	Query string
	P     int // true positives
	FP    int
	FN    int
}

// Total returns the number of labeled targets.
func (c LabeledCounts) Total() int { return c.P + c.FP + c.FN }

// CompareResult is a labeled tool-vs-FirmUp experiment (Figs. 6 and 8).
type CompareResult struct {
	Tool string
	Rows []LabeledRow
	// StepsHistogram buckets FirmUp's correct matches by game steps
	// (collected during the comparison for Fig. 9).
	StepsHistogram map[int]int
	// NoGameP counts correct answers for the ablated engine (pairwise
	// top-1, no game) over the same targets.
	NoGameP int
	TotalT  int
}

// LabeledRow pairs the per-query counts of FirmUp and the baseline.
type LabeledRow struct {
	FirmUp   LabeledCounts
	Baseline LabeledCounts
}

// fig6Queries are the five labeled queries of the paper's Fig. 6.
var fig6Queries = []string{
	"CVE-2013-1944", // tailmatch
	"CVE-2013-2168", // printf_string_upper_bound
	"CVE-2016-8618", // alloc_addbyter
	"CVE-2011-0762", // vsf_filename_passes_filter
	"CVE-2014-4877", // ftp_retrieve_glob
}

// fig8Queries are the nine labeled queries of the paper's Fig. 8
// (both labeled groups, including the exported-procedure CVEs).
var fig8Queries = []string{
	"CVE-2013-1944", "CVE-2013-2168", "CVE-2016-8618", "CVE-2011-0762",
	"CVE-2014-4877", "CVE-2015-5621", "CVE-2009-4593", "CVE-2012-2841",
	"CVE-2012-0036",
}

// labeledTargets returns the units of the query's package on arch: the
// labeled subset where ground truth pinpoints the procedure.
func labeledTargets(env *Env, cve *corpus.CVE, arch uir.Arch) []*Unit {
	var out []*Unit
	for _, u := range env.Units {
		if u.Arch != arch || u.Pkg != cve.Package {
			continue
		}
		if _, ok := u.Truth[cve.Procedure]; !ok {
			// Accept the deprecated-predecessor case.
			if cve.Procedure != "curl_easy_unescape" {
				continue
			}
			if _, ok := u.Truth["curl_unescape"]; !ok {
				continue
			}
		}
		out = append(out, u)
	}
	return out
}

// scoreAnswer classifies a claimed (matched, addr) pair for a labeled
// target: correct procedure, wrong procedure, or nothing.
func scoreAnswer(u *Unit, cve *corpus.CVE, matched bool, addr uint32) Verdict {
	trueAddr, ok := u.Truth[cve.Procedure]
	if !ok && cve.Procedure == "curl_easy_unescape" {
		trueAddr, ok = u.Truth["curl_unescape"]
	}
	if !ok {
		if matched {
			return VerdictFP
		}
		return VerdictTN
	}
	switch {
	case matched && addr == trueAddr:
		return VerdictTP
	case matched:
		return VerdictFP
	default:
		return VerdictFN
	}
}

// occurrences weights a unit by how many images ship it.
func occurrences(u *Unit) int { return len(u.Occurrences) }

// CompareBinDiff runs the Fig. 6 experiment: FirmUp vs the graph-based
// whole-binary matcher over labeled targets.
func CompareBinDiff(env *Env, opt *core.SearchOptions) (*CompareResult, error) {
	return compare(env, "BinDiff", fig6Queries, opt, func(q *sim.Exe, qi int, u *Unit) (bool, uint32) {
		d := bindiff.Diff(q, u.Exe)
		ti := d.QtoT[qi]
		if ti < 0 {
			return false, 0
		}
		return true, u.Exe.Procs[ti].Addr
	})
}

// CompareGitZ runs the Fig. 8 experiment: FirmUp vs the
// procedure-centric weighted top-1 ranker. The context is trained per
// architecture over the corpus's own procedures, as the paper does.
func CompareGitZ(env *Env, opt *core.SearchOptions) (*CompareResult, error) {
	ctxByArch := map[uir.Arch]*gitz.Context{}
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		var sample []*sim.Exe
		for _, u := range env.Units {
			if u.Arch == arch {
				sample = append(sample, u.Exe)
			}
		}
		ctxByArch[arch] = gitz.Train(sample)
	}
	return compare(env, "GitZ", fig8Queries, opt, func(q *sim.Exe, qi int, u *Unit) (bool, uint32) {
		e := &gitz.Engine{Ctx: ctxByArch[u.Arch]}
		top := e.TopK(q.Procs[qi].Set, u.Exe, 1)
		if len(top) == 0 {
			return false, 0
		}
		return true, u.Exe.Procs[top[0].Proc].Addr
	})
}

// compare runs FirmUp and a baseline answerer over the labeled targets
// of each query.
func compare(env *Env, tool string, queryIDs []string, opt *core.SearchOptions,
	baseline func(q *sim.Exe, qi int, u *Unit) (bool, uint32)) (*CompareResult, error) {
	if opt == nil {
		opt = DefaultSearch()
	}
	res := &CompareResult{Tool: tool, StepsHistogram: map[int]int{}}
	for _, id := range queryIDs {
		cve := corpus.CVEByID(id)
		if cve == nil {
			return nil, fmt.Errorf("eval: unknown CVE %s", id)
		}
		row := LabeledRow{
			FirmUp:   LabeledCounts{Query: cve.Procedure},
			Baseline: LabeledCounts{Query: cve.Procedure},
		}
		for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
			targets := labeledTargets(env, cve, arch)
			if len(targets) == 0 {
				continue
			}
			q, err := env.Query(cve.Package, cve.QueryVersion, arch)
			if err != nil {
				return nil, err
			}
			qi := q.ProcByName(cve.Procedure)
			if qi < 0 {
				continue
			}
			for _, u := range targets {
				w := occurrences(u)
				res.TotalT += w

				// FirmUp. The labeled experiment measures matching
				// accuracy, not containment, so the game's answer is
				// taken directly without the acceptance threshold
				// (mirroring how GitZ's unconditional top-1 is scored).
				r := core.Match(q, qi, u.Exe, &opt.Game)
				matched, addr := r.Target >= 0, uint32(0)
				if matched {
					addr = u.Exe.Procs[r.Target].Addr
				}
				switch scoreAnswer(u, cve, matched, addr) {
				case VerdictTP:
					row.FirmUp.P += w
					res.StepsHistogram[r.Steps] += w
				case VerdictFP:
					row.FirmUp.FP += w
				case VerdictFN:
					row.FirmUp.FN += w
				}

				// Ablation: pairwise top-1, no game.
				best, _ := u.Exe.BestMatch(q.Procs[qi].Set, nil)
				if best >= 0 {
					if scoreAnswer(u, cve, true, u.Exe.Procs[best].Addr) == VerdictTP {
						res.NoGameP += w
					}
				}

				// Baseline.
				bm, baddr := baseline(q, qi, u)
				switch scoreAnswer(u, cve, bm, baddr) {
				case VerdictTP:
					row.Baseline.P += w
				case VerdictFP:
					row.Baseline.FP += w
				case VerdictFN:
					// Per the paper's Fig. 6 accounting, a baseline that
					// fails to produce a match for a procedure known to be
					// present is counted as a false result.
					row.Baseline.FN += w
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Rates aggregates P/FP/FN across rows.
func (r *CompareResult) Rates() (fuP, fuFP, fuFN, blP, blFP, blFN int) {
	for _, row := range r.Rows {
		fuP += row.FirmUp.P
		fuFP += row.FirmUp.FP
		fuFN += row.FirmUp.FN
		blP += row.Baseline.P
		blFP += row.Baseline.FP
		blFN += row.Baseline.FN
	}
	return
}

// Format renders the comparison in the layout of the paper's figures.
func (r *CompareResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Labeled experiment: FirmUp vs %s (per-query P / FP / FN)\n\n", r.Tool)
	fmt.Fprintf(&sb, "%-30s | %21s | %21s\n", "query", "FirmUp  P   FP   FN", r.Tool+"  P   FP   FN")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-30s | %9d %4d %4d | %9d %4d %4d\n",
			row.FirmUp.Query,
			row.FirmUp.P, row.FirmUp.FP, row.FirmUp.FN,
			row.Baseline.P, row.Baseline.FP, row.Baseline.FN)
	}
	fuP, fuFP, fuFN, blP, blFP, blFN := r.Rates()
	fuT, blT := fuP+fuFP+fuFN, blP+blFP+blFN
	if fuT > 0 && blT > 0 {
		fmt.Fprintf(&sb, "\nFirmUp: %.1f%% positive, %.1f%% false   %s: %.1f%% positive, %.1f%% false\n",
			100*float64(fuP)/float64(fuT), 100*float64(fuFP+fuFN)/float64(fuT),
			r.Tool, 100*float64(blP)/float64(blT), 100*float64(blFP+blFN)/float64(blT))
	}
	return sb.String()
}

// Fig9Buckets renders the game-step histogram in the paper's buckets.
func Fig9Buckets(hist map[int]int) []struct {
	Label string
	Count int
} {
	buckets := []struct {
		Label  string
		lo, hi int
	}{
		{"1", 1, 1}, {"2", 2, 2}, {"3-4", 3, 4}, {"5-8", 5, 8}, {"9-16", 9, 16}, {"17-32", 17, 32},
	}
	out := make([]struct {
		Label string
		Count int
	}, len(buckets))
	for i, b := range buckets {
		out[i].Label = b.Label
		for s, n := range hist {
			if s >= b.lo && s <= b.hi {
				out[i].Count += n
			}
		}
	}
	return out
}

// FormatFig9 renders the histogram plus the ablation comparison.
func FormatFig9(r *CompareResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 9: correct matches by number of game steps\n\n")
	for _, b := range Fig9Buckets(r.StepsHistogram) {
		fmt.Fprintf(&sb, "%6s steps: %4d %s\n", b.Label, b.Count, strings.Repeat("#", bars(b.Count)))
	}
	fuP, fuFP, fuFN, _, _, _ := r.Rates()
	total := fuP + fuFP + fuFN
	if total > 0 {
		fmt.Fprintf(&sb, "\nOverall precision with the game: %.2f%%\n", 100*float64(fuP)/float64(total))
		fmt.Fprintf(&sb, "Without the iterative game (pairwise top-1): %.2f%%\n", 100*float64(r.NoGameP)/float64(total))
	}
	return sb.String()
}

func bars(n int) int {
	if n > 60 {
		return 60
	}
	return n
}

// sortedArchs is a helper for deterministic reports.
func sortedArchs(m map[uir.Arch]bool) []uir.Arch {
	var out []uir.Arch
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
