package corpus

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// fillerProcs deterministically generates the package's supporting
// procedures. The bodies are seeded by (package, index) so the same
// procedure is recognizably the same source across versions, with a
// version-seeded perturbation applied to a fraction of them (patch
// simulation). Generated procedures call earlier generated procedures
// and the runtime, giving every executable a realistic call graph.
func fillerProcs(pkg, version string, n int) string {
	var sb strings.Builder
	verSeed := seedOf(pkg + "@" + version)
	vrng := newGenRNG(verSeed)
	names := make([]string, n)
	arities := map[string]int{}
	for i := range names {
		names[i] = fillerName(pkg, i)
		// The first draw of the base RNG fixes the arity; recorded here
		// so later procedures can call earlier ones correctly.
		arities[names[i]] = 1 + newGenRNG(seedOf(fmt.Sprintf("%s#%d", pkg, i))).intn(3)
	}
	for i := 0; i < n; i++ {
		baseRng := newGenRNG(seedOf(fmt.Sprintf("%s#%d", pkg, i)))
		patched := vrng.intn(100) < 25
		patchRng := newGenRNG(verSeed ^ uint64(i)*0x9E3779B9)
		// Callee choice keeps total execution cost linear: early "leaf
		// layer" procedures (constant cost) plus the immediate
		// predecessor (chain of bounded length). Unbounded fan-out would
		// compose loops multiplicatively across the call graph.
		var callees []string
		leafLayer := 6
		if i >= leafLayer {
			// Leaf-layer procedures call nothing; later ones call leaves
			// plus their immediate predecessor.
			callees = append(append([]string(nil), names[:leafLayer]...), names[i-1])
		}
		g := &procGen{
			rng:      baseRng,
			patchRng: patchRng,
			patched:  patched,
			name:     names[i],
			callees:  callees,
			arities:  arities,
		}
		sb.WriteString(g.generate())
	}
	return sb.String()
}

var fillerVerbs = []string{"parse", "handle", "init", "send", "recv", "check", "format", "emit", "scan", "update", "flush", "decode"}
var fillerNouns = []string{"opt", "header", "buf", "conn", "msg", "state", "block", "entry", "frame", "token", "addr", "chunk"}

func fillerName(pkg string, i int) string {
	v := fillerVerbs[i%len(fillerVerbs)]
	n := fillerNouns[(i/len(fillerVerbs)+i)%len(fillerNouns)]
	return fmt.Sprintf("%s_%s_%s%d", pkg[:3], v, n, i)
}

func seedOf(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// genRNG is the corpus's deterministic PRNG (splitmix64).
type genRNG struct{ s uint64 }

func newGenRNG(seed uint64) *genRNG { return &genRNG{s: seed + 0x9E3779B97F4A7C15} }

func (r *genRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// procGen emits one filler procedure.
type procGen struct {
	rng      *genRNG
	patchRng *genRNG
	patched  bool
	name     string
	callees  []string
	arities  map[string]int
	params   []string
	locals   []string
	ivars    []string // loop induction variables: readable, never assigned
	sb       strings.Builder
	stmts    int
	calls    int
}

var runtimeCallable = []struct {
	name  string
	arity int
}{
	{"to_lower", 1}, {"hex_digit", 1}, {"str_len", 1}, {"checksum16", 2},
}

func (g *procGen) generate() string {
	nparams := 1 + g.rng.intn(3)
	for i := 0; i < nparams; i++ {
		g.params = append(g.params, fmt.Sprintf("p%d", i))
	}
	fmt.Fprintf(&g.sb, "\nfunc %s(%s) {\n", g.name, strings.Join(g.params, ", "))
	// Size distribution: mostly small, occasionally large — large
	// procedures are what drags procedure-centric matching astray.
	budget := 4 + g.rng.intn(8)
	if g.rng.intn(6) == 0 {
		budget = 18 + g.rng.intn(20)
	}
	nLocals := 1 + g.rng.intn(3)
	for i := 0; i < nLocals; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(&g.sb, "    var %s = %s;\n", name, g.expr(1))
		g.locals = append(g.locals, name)
	}
	for g.stmts < budget {
		g.stmt(1)
	}
	if g.patched {
		// Version patch: an extra guarded statement with new constants.
		fmt.Fprintf(&g.sb, "    if %s > %d {\n        %s = %s + %d;\n    }\n",
			g.anyVar(), g.patchRng.intn(64), g.locals[0], g.locals[0], 1+g.patchRng.intn(16))
	}
	fmt.Fprintf(&g.sb, "    return %s;\n}\n", g.expr(2))
	return g.sb.String()
}

func (g *procGen) anyVar() string {
	all := append(append([]string(nil), g.params...), g.locals...)
	all = append(all, g.ivars...)
	return all[g.rng.intn(len(all))]
}

var binOps = []string{"+", "-", "*", "&", "|", "^", "+", "-", "<<", ">>"}

// expr emits a side-effect-free expression of bounded depth.
func (g *procGen) expr(depth int) string {
	if depth <= 0 || g.rng.intn(3) == 0 {
		switch g.rng.intn(3) {
		case 0:
			return g.anyVar()
		case 1:
			return fmt.Sprintf("%d", g.rng.intn(256))
		default:
			return fmt.Sprintf("0x%x", g.rng.intn(0x10000))
		}
	}
	op := binOps[g.rng.intn(len(binOps))]
	lhs := g.expr(depth - 1)
	rhs := g.expr(depth - 1)
	if op == "<<" || op == ">>" {
		rhs = fmt.Sprintf("%d", 1+g.rng.intn(7))
	}
	return fmt.Sprintf("(%s %s %s)", lhs, op, rhs)
}

var cmpOps = []string{"<", "<=", ">", ">=", "==", "!="}

func (g *procGen) cond() string {
	return fmt.Sprintf("%s %s %s", g.anyVar(), cmpOps[g.rng.intn(len(cmpOps))], g.expr(1))
}

func (g *procGen) indent(depth int) {
	for i := 0; i <= depth; i++ {
		g.sb.WriteString("    ")
	}
}

// stmt emits one statement (possibly compound).
func (g *procGen) stmt(depth int) {
	g.stmts++
	kind := g.rng.intn(10)
	switch {
	case kind < 4: // assignment
		g.indent(depth)
		fmt.Fprintf(&g.sb, "%s = %s;\n", g.locals[g.rng.intn(len(g.locals))], g.expr(2))
	case kind < 6 && depth < 3: // if / if-else
		g.indent(depth)
		fmt.Fprintf(&g.sb, "if %s {\n", g.cond())
		g.stmt(depth + 1)
		if g.rng.intn(2) == 0 {
			g.indent(depth)
			g.sb.WriteString("} else {\n")
			g.stmt(depth + 1)
		}
		g.indent(depth)
		g.sb.WriteString("}\n")
	case kind < 7 && depth < 2: // bounded loop
		g.indent(depth)
		iv := fmt.Sprintf("i%d", g.stmts)
		fmt.Fprintf(&g.sb, "for var %s = 0; %s < %d; %s = %s + 1 {\n", iv, iv, 2+g.rng.intn(14), iv, iv)
		g.ivars = append(g.ivars, iv)
		g.stmt(depth + 1)
		g.ivars = g.ivars[:len(g.ivars)-1]
		g.indent(depth)
		g.sb.WriteString("}\n")
	case kind < 9: // call into the runtime or an earlier filler proc
		g.indent(depth)
		dst := g.locals[g.rng.intn(len(g.locals))]
		if len(g.callees) > 0 && g.rng.intn(2) == 0 && g.calls < 3 && depth == 1 {
			g.calls++
			callee := g.callees[g.rng.intn(len(g.callees))]
			arity := g.arities[callee]
			args := make([]string, arity)
			for i := range args {
				args[i] = g.expr(1)
			}
			fmt.Fprintf(&g.sb, "%s = %s + %s(%s);\n", dst, dst, callee, strings.Join(args, ", "))
		} else {
			rc := runtimeCallable[g.rng.intn(2)] // to_lower / hex_digit (scalar-safe)
			fmt.Fprintf(&g.sb, "%s = %s ^ %s(%s);\n", dst, dst, rc.name, g.expr(1))
		}
	default: // early return
		g.indent(depth)
		fmt.Fprintf(&g.sb, "if %s {\n", g.cond())
		g.indent(depth + 1)
		fmt.Fprintf(&g.sb, "return %s;\n", g.expr(1))
		g.indent(depth)
		g.sb.WriteString("}\n")
	}
}
