package corpus

import (
	"testing"

	"firmup/internal/image"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/uir"
)

func TestBuildDefaultScale(t *testing.T) {
	c, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Images) == 0 {
		t.Fatal("no images built")
	}
	st := c.Stat()
	if st.Exes < len(c.Images)*2 {
		t.Errorf("stats = %+v: too few executables", st)
	}
	if st.Procedures < 500 {
		t.Errorf("stats = %+v: too few procedures", st)
	}
	// All shipped executables are stripped, with exports retained for
	// library packages.
	for _, bi := range c.Images {
		for _, e := range bi.Exes {
			if !e.File.Stripped {
				t.Fatalf("%s/%s not stripped", bi.Device, e.Path)
			}
			if e.Pkg == "libcurl" {
				found := false
				for _, s := range e.File.Syms {
					if s.Exported {
						found = true
					}
				}
				if !found {
					t.Errorf("libcurl build lost its exports")
				}
			}
			if len(e.Truth) < 10 {
				t.Errorf("%s: truth table too small (%d)", e.Path, len(e.Truth))
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Images) != len(b.Images) {
		t.Fatal("image counts differ")
	}
	for i := range a.Images {
		pa := a.Images[i].Image.Pack(false)
		pb := b.Images[i].Image.Pack(false)
		if len(pa) != len(pb) {
			t.Fatalf("image %d differs across builds", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("image %d byte %d differs", i, j)
			}
		}
	}
}

// The full crawl path: pack each image, unpack it, and recover the same
// executables.
func TestPackUnpackRoundTripCorpus(t *testing.T) {
	c, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	bi := c.Images[0]
	packed := bi.Image.Pack(true)
	im, err := image.Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	exes := im.Executables()
	if len(exes) != len(bi.Exes) {
		t.Fatalf("unpacked %d executables, want %d", len(exes), len(bi.Exes))
	}
}

// The NETGEAR tool chain disables OPIE: its wget builds must lack
// skey_resp while the query build contains it — the paper's structural
// variance anecdote.
func TestNetgearDisablesOpie(t *testing.T) {
	c, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	for _, bi := range c.Images {
		for _, e := range bi.Exes {
			if e.Pkg != "wget" {
				continue
			}
			_, has := e.Truth["skey_resp"]
			if e.Vendor == "NETGEAR" {
				checked = true
				if has {
					t.Error("NETGEAR wget must omit skey_resp (--disable-opie)")
				}
			} else if e.Vendor == "TP-Link" || e.Vendor == "ASUS" || e.Vendor == "D-Link" {
				if !has {
					t.Errorf("%s wget unexpectedly omits skey_resp", e.Vendor)
				}
			}
		}
	}
	if !checked {
		t.Skip("no NETGEAR wget in the default-scale corpus")
	}
	q, _, err := QueryExe("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	if q.ProcByName("skey_resp") < 0 {
		t.Error("query build must include skey_resp")
	}
}

func TestQueryExeHasCVEProcedures(t *testing.T) {
	for _, cve := range CVEs {
		q, f, err := QueryExe(cve.Package, cve.QueryVersion, uir.ArchMIPS32)
		if err != nil {
			t.Fatalf("%s: %v", cve.ID, err)
		}
		if q.ProcByName(cve.Procedure) < 0 {
			t.Errorf("%s: query lacks %s", cve.ID, cve.Procedure)
		}
		if f.Stripped {
			t.Errorf("%s: query must keep symbols", cve.ID)
		}
	}
}

func TestIndexExeRecoversStripped(t *testing.T) {
	c, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	e := &c.Images[0].Exes[0]
	exe, err := IndexExe(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(exe.Procs) < len(e.Truth)*8/10 {
		t.Errorf("recovered %d procs, truth has %d", len(exe.Procs), len(e.Truth))
	}
}

func TestVendorsShape(t *testing.T) {
	vs := Vendors(DefaultScale())
	if len(vs) != 4 {
		t.Fatalf("vendors = %d", len(vs))
	}
	for _, v := range vs {
		if len(v.Devices) != DefaultScale().DevicesPerVendor {
			t.Errorf("%s: %d devices", v.Name, len(v.Devices))
		}
		for _, d := range v.Devices {
			if len(d.Releases) == 0 {
				t.Errorf("%s/%s has no releases", v.Name, d.Model)
			}
			for _, r := range d.Releases {
				if len(r.Packages) < 1 {
					t.Errorf("%s/%s %s ships no packages", v.Name, d.Model, r.Version)
				}
			}
		}
	}
	// NETGEAR must have OPIE disabled.
	if vs[0].Name != "NETGEAR" || vs[0].Features["OPIE"] {
		t.Error("NETGEAR feature set wrong")
	}
}

// Some units carry the wrong-header-class quirk and must still analyze.
func TestBadClassUnitsAnalyzable(t *testing.T) {
	c, err := Build(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, bi := range c.Images {
		for i := range bi.Exes {
			e := &bi.Exes[i]
			if !e.File.BadClass {
				continue
			}
			bad++
			exe, err := IndexExe(e)
			if err != nil {
				t.Errorf("%s: bad-class executable failed analysis: %v", e.Path, err)
				continue
			}
			if len(exe.Procs) == 0 {
				t.Errorf("%s: bad-class executable recovered no procedures", e.Path)
			}
		}
	}
	if bad == 0 {
		t.Error("corpus injected no bad-class executables")
	}
}
