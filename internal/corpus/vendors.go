package corpus

import (
	"fmt"

	"firmup/internal/compiler"
	"firmup/internal/uir"
)

// Vendor models one device maker: a house tool chain (the source of the
// paper's "unique build tool chains" syntactic variance) and a device
// line-up.
type Vendor struct {
	Name string
	// Tool-chain knobs applied to every build of this vendor.
	OptLevel int
	// InlineThreshold sets the vendor compiler's inlining budget — the
	// dominant source of procedure-size divergence across builds (and of
	// the paper's "very large procedures mistakenly matched due to their
	// size" effect).
	InlineThreshold int
	RegSeed         uint64
	SchedSeed       uint64
	MulByShift      bool
	Shuffle         bool
	// FillDelay selects delay-slot filling on MIPS (the paper's lifting
	// caveat only manifests with tool chains that schedule delay slots).
	FillDelay  bool
	LayoutBase uint32
	// Features is the vendor's configure-time feature set. NETGEAR
	// builds wget with --disable-opie, per the paper's anecdote.
	Features map[string]bool
	Devices  []Device
}

// Device is one product: an architecture and a firmware release history.
type Device struct {
	Model    string
	Arch     uir.Arch
	Releases []Release
}

// Release is one firmware version: the package versions it ships.
type Release struct {
	Version  string
	Packages map[string]string
}

// Profile assembles the vendor's compiler profile.
func (v *Vendor) Profile() compiler.Profile {
	return compiler.Profile{
		Name:            "vendor-" + v.Name,
		OptLevel:        v.OptLevel,
		InlineThreshold: v.InlineThreshold,
		Features:        v.Features,
		RegSeed:         v.RegSeed,
		SchedSeed:       v.SchedSeed,
		MulByShift:      v.MulByShift,
		LayoutBase:      v.LayoutBase,
	}
}

// Scale sizes a generated corpus.
type Scale struct {
	// DevicesPerVendor is the device-line length per vendor.
	DevicesPerVendor int
	// MaxReleases bounds firmware versions per device.
	MaxReleases int
	// Seed drives all random corpus decisions.
	Seed uint64
}

// DefaultScale is used by tests: small but structurally complete.
func DefaultScale() Scale { return Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: 1} }

// EvalScale approximates the paper's setting at laptop size.
func EvalScale() Scale { return Scale{DevicesPerVendor: 6, MaxReleases: 3, Seed: 1} }

// archCycle matches the paper's architecture prevalence: MIPS dominates
// firmware, then ARM, then PPC, then x86.
var archCycle = []uir.Arch{
	uir.ArchMIPS32, uir.ArchMIPS32, uir.ArchARM32, uir.ArchMIPS32,
	uir.ArchARM32, uir.ArchPPC32, uir.ArchMIPS32, uir.ArchX86,
}

// Vendors generates the deterministic vendor population for a scale.
func Vendors(sc Scale) []Vendor {
	type vseed struct {
		name        string
		opt         int
		inline      int
		mulShift    bool
		shuffle     bool
		layout      uint32
		disableOpie bool
		fillDelay   bool
	}
	seeds := []vseed{
		{name: "NETGEAR", opt: 2, inline: 30, mulShift: true, shuffle: false, layout: 0x440000, disableOpie: true, fillDelay: true},
		{name: "D-Link", opt: 1, inline: 0, mulShift: false, shuffle: true, layout: 0x10000},
		{name: "ASUS", opt: 2, inline: 6, mulShift: false, shuffle: true, layout: 0x80100000},
		{name: "TP-Link", opt: 3, inline: 14, mulShift: true, shuffle: false, layout: 0x400000, fillDelay: true},
	}
	rng := newGenRNG(sc.Seed ^ 0xC0FFEE)
	var out []Vendor
	for vi, vs := range seeds {
		v := Vendor{
			Name:            vs.name,
			OptLevel:        vs.opt,
			InlineThreshold: vs.inline,
			RegSeed:         uint64(vi*37 + 11),
			SchedSeed:       uint64(vi*53 + 7),
			MulByShift:      vs.mulShift,
			Shuffle:         vs.shuffle,
			LayoutBase:      vs.layout,
			Features:        map[string]bool{"OPIE": !vs.disableOpie, "SSL": vi%2 == 0, "COOKIES": true, "IPV6": vi%3 != 0},
		}
		for d := 0; d < sc.DevicesPerVendor; d++ {
			dev := Device{
				Model: fmt.Sprintf("%s-%c%d00", vs.name, 'R'+byte(vi), d+1),
				Arch:  archCycle[(vi*sc.DevicesPerVendor+d)%len(archCycle)],
			}
			nrel := 1 + rng.intn(sc.MaxReleases)
			// Pick the device's package set once; versions may advance
			// across releases, but often do not — the paper found
			// firmware updates frequently ship stale executables.
			pkgSet := devicePackages(rng)
			// Deterministic package order: map iteration would make the
			// corpus differ from run to run.
			var pkgList []string
			for _, n := range PackageNames() {
				if pkgSet[n] {
					pkgList = append(pkgList, n)
				}
			}
			verIdx := map[string]int{}
			for _, p := range pkgList {
				verIdx[p] = rng.intn(len(PackageVersions(p)))
			}
			for r := 0; r < nrel; r++ {
				rel := Release{
					Version:  fmt.Sprintf("1.%d.%d", r, rng.intn(10)),
					Packages: map[string]string{},
				}
				for _, p := range pkgList {
					vers := PackageVersions(p)
					// 40% chance a release bumps the package version.
					if r > 0 && rng.intn(100) < 40 && verIdx[p] < len(vers)-1 {
						verIdx[p]++
					}
					rel.Packages[p] = vers[verIdx[p]]
				}
				dev.Releases = append(dev.Releases, rel)
			}
			v.Devices = append(v.Devices, dev)
		}
		out = append(out, v)
	}
	return out
}

// devicePackages selects which packages a device firmware ships.
func devicePackages(rng *genRNG) map[string]bool {
	names := PackageNames()
	out := map[string]bool{}
	// Every device gets 3-6 of the 7 packages; wget and libcurl are very
	// common, matching the paper's hit counts.
	out["libcurl"] = true
	if rng.intn(100) < 80 {
		out["wget"] = true
	}
	for _, n := range names {
		if out[n] {
			continue
		}
		if rng.intn(100) < 45 {
			out[n] = true
		}
		if len(out) >= 6 {
			break
		}
	}
	return out
}
