package corpus

import (
	"errors"
	"fmt"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/image"
	"firmup/internal/isa"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

// BuiltExe is one executable inside a built image, with ground truth.
type BuiltExe struct {
	Path       string
	Pkg        string
	PkgVersion string
	Arch       uir.Arch
	Vendor     string
	// File is the (stripped) executable as shipped in the image.
	File *obj.File
	// Truth maps original procedure names to their addresses —
	// information the analyst does not have, used for exact scoring.
	Truth map[string]uint32
}

// TruthName returns the original name of the procedure at addr, or "".
func (e *BuiltExe) TruthName(addr uint32) string {
	for n, a := range e.Truth {
		if a == addr {
			return n
		}
	}
	return ""
}

// BuiltImage is one firmware image plus its ground truth.
type BuiltImage struct {
	Image     *image.Image
	Vendor    string
	Device    string
	FwVersion string
	// Latest marks the newest release of the device.
	Latest bool
	Exes   []BuiltExe
}

// Corpus is the generated evaluation corpus.
type Corpus struct {
	Vendors []Vendor
	Images  []*BuiltImage
	// builds caches compiled executables by build key, mirroring how the
	// exact same binary ships in many images.
	builds map[string]*builtUnit
}

type builtUnit struct {
	file  *obj.File
	truth map[string]uint32
}

// Build generates the corpus for a scale: every vendor, device and
// firmware release, with every package compiled under the vendor tool
// chain, stripped, and packed into images.
func Build(sc Scale) (*Corpus, error) {
	c := &Corpus{Vendors: Vendors(sc), builds: map[string]*builtUnit{}}
	if err := c.stream(sc, func(bi *BuiltImage) error {
		c.Images = append(c.Images, bi)
		return nil
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// ErrStop, returned by a Stream callback, ends the stream early
// without error.
var ErrStop = errors.New("corpus: stop streaming")

// Stream generates the corpus image-by-image, handing each built image
// to fn and retaining none of them — compiled units are still cached
// and shared across images (the same binary shipping in many images),
// but peak memory stays bounded by the callback's own retention
// instead of the corpus size. Build order, and therefore every random
// corpus decision, is identical to Build at the same scale. fn may
// return ErrStop to end the stream early.
func Stream(sc Scale, fn func(*BuiltImage) error) error {
	c := &Corpus{Vendors: Vendors(sc), builds: map[string]*builtUnit{}}
	err := c.stream(sc, fn)
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ScaleForImages returns a scale generating at least n images (each
// device ships at least one release, so 4 vendors x devices-per-vendor
// is a floor); pair with Stream and ErrStop to take exactly n.
func ScaleForImages(n int) Scale {
	if n < 1 {
		n = 1
	}
	return Scale{DevicesPerVendor: (n + 3) / 4, MaxReleases: 2, Seed: 1}
}

// stream is the single generation loop behind Build and Stream. The
// rng consumption order here is the corpus definition: any reordering
// changes every generated corpus.
func (c *Corpus) stream(sc Scale, fn func(*BuiltImage) error) error {
	rng := newGenRNG(sc.Seed ^ 0xBADC0DE)
	for vi := range c.Vendors {
		v := &c.Vendors[vi]
		for _, dev := range v.Devices {
			for ri, rel := range dev.Releases {
				im := &image.Image{Vendor: v.Name, Device: dev.Model, Version: rel.Version}
				bi := &BuiltImage{
					Image:     im,
					Vendor:    v.Name,
					Device:    dev.Model,
					FwVersion: rel.Version,
					Latest:    ri == len(dev.Releases)-1,
				}
				for _, pkg := range sortedPkgs(rel.Packages) {
					ver := rel.Packages[pkg]
					unit, err := c.buildUnit(v, dev.Arch, pkg, ver)
					if err != nil {
						return err
					}
					path := "bin/" + pkg
					if len(PackageExports(pkg)) > 0 {
						path = "lib/" + pkg + ".so"
					}
					im.AddExecutable(path, unit.file)
					bi.Exes = append(bi.Exes, BuiltExe{
						Path: path, Pkg: pkg, PkgVersion: ver,
						Arch: dev.Arch, Vendor: v.Name,
						File: unit.file, Truth: unit.truth,
					})
					// A few files of unrelated content, as real images have.
					if rng.intn(100) < 30 {
						im.Files = append(im.Files, image.FileEntry{
							Path: fmt.Sprintf("etc/%s.conf", pkg),
							Data: []byte("# configuration for " + pkg + "\n"),
						})
					}
				}
				if err := fn(bi); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sortedPkgs(m map[string]string) []string {
	var names []string
	for _, n := range PackageNames() {
		if _, ok := m[n]; ok {
			names = append(names, n)
		}
	}
	return names
}

// buildUnit compiles (or fetches from cache) one package build.
func (c *Corpus) buildUnit(v *Vendor, arch uir.Arch, pkg, ver string) (*builtUnit, error) {
	key := fmt.Sprintf("%s|%v|%s|%s", v.Name, arch, pkg, ver)
	if u, ok := c.builds[key]; ok {
		return u, nil
	}
	src, err := PackageSource(pkg, ver)
	if err != nil {
		return nil, err
	}
	prof := v.Profile()
	mpkg, err := compiler.CompileToMIR(src, prof)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s@%s for %s: %w", pkg, ver, v.Name, err)
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		return nil, err
	}
	art, err := be.Generate(mpkg, isa.Options{
		TextBase:       prof.LayoutBase,
		RegSeed:        prof.RegSeed,
		SchedSeed:      prof.SchedSeed,
		MulByShift:     prof.MulByShift,
		ShuffleProcs:   v.Shuffle,
		FillDelaySlots: v.FillDelay,
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: generate %s@%s/%v: %w", pkg, ver, arch, err)
	}
	f := obj.FromArtifact(art)
	truth := map[string]uint32{}
	for _, s := range art.Procs {
		truth[s.Name] = s.Addr
	}
	f.MarkExported(PackageExports(pkg)...)
	f.Strip()
	// A slice of real firmware ships executables with a wrong header
	// class byte (the paper's MIPS64-with-ELFCLASS32 observation); the
	// pipeline must tolerate them. Inject deterministically.
	if seedOf(key)%7 == 0 {
		f.BadClass = true
	}
	c.builds[key] = &builtUnit{file: f, truth: truth}
	return c.builds[key], nil
}

// QueryExe compiles the analyst's query executable: the package at the
// CVE's query version, built with the default gcc-5.2-O2-style profile
// for the given architecture, symbols intact. The build is session-less;
// see QueryExeIn for building under an analyzer session.
func QueryExe(pkg, version string, arch uir.Arch) (*sim.Exe, *obj.File, error) {
	return QueryExeIn(nil, pkg, version, arch)
}

// QueryExeIn is QueryExe under an analyzer session: the query's strand
// sets are interned by it, making them ID-comparable with every target
// built under the same session.
func QueryExeIn(it strand.Interner, pkg, version string, arch uir.Arch) (*sim.Exe, *obj.File, error) {
	src, err := PackageSource(pkg, version)
	if err != nil {
		return nil, nil, err
	}
	prof := compiler.DefaultQueryProfile(arch)
	mpkg, err := compiler.CompileToMIR(src, prof)
	if err != nil {
		return nil, nil, err
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		return nil, nil, err
	}
	art, err := be.Generate(mpkg, isa.Options{
		TextBase:   prof.LayoutBase,
		RegSeed:    prof.RegSeed,
		SchedSeed:  prof.SchedSeed,
		MulByShift: prof.MulByShift,
	})
	if err != nil {
		return nil, nil, err
	}
	f := obj.FromArtifact(art)
	rec, err := cfg.Recover(f)
	if err != nil {
		return nil, nil, err
	}
	return sim.Build(pkg+"@"+version, rec, it), f, nil
}

// IndexExe recovers and indexes a shipped executable (the analysis-side
// view: stripped), session-less.
func IndexExe(e *BuiltExe) (*sim.Exe, error) {
	return IndexExeIn(nil, e)
}

// IndexExeIn is IndexExe under an analyzer session.
func IndexExeIn(it strand.Interner, e *BuiltExe) (*sim.Exe, error) {
	rec, err := cfg.Recover(e.File)
	if err != nil {
		return nil, err
	}
	return sim.Build(e.Path, rec, it), nil
}

// Stats summarizes a corpus.
type Stats struct {
	Images     int
	Exes       int
	Procedures int
}

// Stat counts the corpus's contents (after recovery).
func (c *Corpus) Stat() Stats {
	s := Stats{Images: len(c.Images)}
	seen := map[*obj.File]int{}
	for _, bi := range c.Images {
		for i := range bi.Exes {
			s.Exes++
			f := bi.Exes[i].File
			if n, ok := seen[f]; ok {
				s.Procedures += n
				continue
			}
			n := len(bi.Exes[i].Truth)
			seen[f] = n
			s.Procedures += n
		}
	}
	return s
}
