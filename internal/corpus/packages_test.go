package corpus

import (
	"strings"
	"testing"

	"firmup/internal/compiler"
	"firmup/internal/mir"
	"firmup/internal/source"
)

// Every package at every version must parse, check and compile at every
// optimization level.
func TestAllPackagesCompile(t *testing.T) {
	for _, name := range PackageNames() {
		for _, ver := range PackageVersions(name) {
			src, err := PackageSource(name, ver)
			if err != nil {
				t.Fatalf("%s@%s: %v", name, ver, err)
			}
			for _, level := range []int{0, 2} {
				prof := compiler.Profile{OptLevel: level, Features: map[string]bool{"OPIE": true, "SSL": true}}
				pkg, err := compiler.CompileToMIR(src, prof)
				if err != nil {
					t.Fatalf("%s@%s O%d: %v", name, ver, level, err)
				}
				if len(pkg.Procs) < 10 {
					t.Errorf("%s@%s: only %d procedures", name, ver, len(pkg.Procs))
				}
			}
		}
	}
}

// CVE procedures must exist in every version of their package, and the
// vulnerable/fixed bodies must differ.
func TestCVEProceduresPresent(t *testing.T) {
	for _, cve := range CVEs {
		versions := PackageVersions(cve.Package)
		if len(versions) == 0 {
			t.Fatalf("%s: package %s unknown", cve.ID, cve.Package)
		}
		for _, ver := range versions {
			if cve.Package == "libcurl" && ver == "7.10" && cve.Procedure != "curl_easy_unescape" {
				continue // ancient curl predates these procedures
			}
			src, err := PackageSource(cve.Package, ver)
			if err != nil {
				t.Fatal(err)
			}
			// curl 7.10 has the deprecated predecessor instead.
			want := cve.Procedure
			if cve.Package == "libcurl" && ver == "7.10" && cve.Procedure == "curl_easy_unescape" {
				want = "curl_unescape"
			}
			if !strings.Contains(src, "func "+want+"(") {
				t.Errorf("%s: %s@%s lacks %s", cve.ID, cve.Package, ver, want)
			}
		}
	}
}

// Generated procedures must terminate: run every procedure of every
// package in the MIR interpreter under fuel.
func TestAllProceduresTerminate(t *testing.T) {
	for _, name := range PackageNames() {
		ver := PackageVersions(name)[0]
		src, err := PackageSource(name, ver)
		if err != nil {
			t.Fatal(err)
		}
		prof := compiler.Profile{OptLevel: 1, Features: map[string]bool{"OPIE": true}}
		pkg, err := compiler.CompileToMIR(src, prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkg.Procs {
			in := mir.NewInterp(pkg)
			in.Fuel = 1 << 20
			args := make([]uint32, p.NParams)
			for i := range args {
				args[i] = uint32(7 + i*13) // scalar junk; byte pointers read zeros
			}
			if _, err := in.Call(p.Name, args...); err != nil {
				t.Errorf("%s@%s %s: %v", name, ver, p.Name, err)
			}
		}
	}
}

// Filler generation is deterministic, and consecutive versions share most
// procedure bodies while differing in some (the patch simulation).
func TestFillerVersionStability(t *testing.T) {
	a := fillerProcs("wget", "1.15", 22)
	b := fillerProcs("wget", "1.15", 22)
	if a != b {
		t.Fatal("filler generation not deterministic")
	}
	c := fillerProcs("wget", "1.16", 22)
	if a == c {
		t.Error("different versions must differ somewhere")
	}
	// Per-procedure comparison: most must be identical.
	split := func(s string) map[string]string {
		out := map[string]string{}
		for _, chunk := range strings.Split(s, "\nfunc ") {
			if i := strings.IndexByte(chunk, '('); i > 0 {
				out[chunk[:i]] = chunk
			}
		}
		return out
	}
	pa, pc := split(a), split(c)
	same := 0
	for name, body := range pa {
		if pc[name] == body {
			same++
		}
	}
	if same < len(pa)/2 {
		t.Errorf("only %d/%d filler procedures stable across versions", same, len(pa))
	}
	if same == len(pa) {
		t.Error("no procedure was patched across versions")
	}
}

func TestVersionedCVEBodiesDiffer(t *testing.T) {
	v1, _ := PackageSource("vsftpd", "2.3.2")
	v2, _ := PackageSource("vsftpd", "2.3.5")
	get := func(src string) string {
		i := strings.Index(src, "func vsf_filename_passes_filter")
		j := strings.Index(src[i:], "\nfunc ")
		return src[i : i+j]
	}
	if get(v1) == get(v2) {
		t.Error("vulnerable and fixed bodies identical")
	}
}

func TestPackageSourceErrors(t *testing.T) {
	if _, err := PackageSource("nosuch", "1.0"); err == nil {
		t.Error("unknown package must fail")
	}
	if _, err := PackageSource("wget", "9.9"); err == nil {
		t.Error("unknown version must fail")
	}
}

func TestSourcesParseStandalone(t *testing.T) {
	src, err := PackageSource("libcurl", "7.50.0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := source.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
}
