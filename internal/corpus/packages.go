package corpus

import (
	"fmt"
	"strings"
)

// runtimeSrc is the libc-flavored support code statically linked into
// every package (as firmware binaries do). Identical source across
// packages produces genuinely shared strands between unrelated
// executables — the common-computation noise the paper's evaluation has
// to contend with.
const runtimeSrc = `
func str_len(s) {
    var n = 0;
    while s[n] != 0 {
        n = n + 1;
    }
    return n;
}

func mem_copy(dst, src, n) {
    var i = 0;
    while i < n {
        dst[i] = src[i];
        i = i + 1;
    }
    return dst;
}

func mem_set(dst, c, n) {
    var i = 0;
    while i < n {
        dst[i] = c;
        i = i + 1;
    }
    return dst;
}

func to_lower(c) {
    if c >= 65 && c <= 90 {
        return c + 32;
    }
    return c;
}

func str_cmp(a, b) {
    var i = 0;
    while a[i] != 0 && b[i] != 0 {
        if a[i] != b[i] {
            return a[i] - b[i];
        }
        i = i + 1;
    }
    return a[i] - b[i];
}

func str_chr(s, c) {
    var i = 0;
    while s[i] != 0 {
        if s[i] == c {
            return i;
        }
        i = i + 1;
    }
    return 0 - 1;
}

func checksum16(buf, n) {
    var sum = 0;
    var i = 0;
    while i < n {
        sum = sum + buf[i];
        if sum > 0xFFFF {
            sum = (sum & 0xFFFF) + 1;
        }
        i = i + 1;
    }
    return sum;
}

func hex_digit(v) {
    var d = v & 15;
    if d < 10 {
        return d + 48;
    }
    return d + 87;
}
`

// pkgDef describes one package: its hand-written body per version, the
// names it exports (surviving stripping, like a dynamic symbol table),
// and how many generated filler procedures pad it out.
type pkgDef struct {
	name     string
	versions []string
	source   func(version string) string
	exports  []string
	filler   int
}

var packages = []pkgDef{
	{name: "wget", versions: []string{"1.12", "1.15", "1.16"}, source: wgetSrc, filler: 22},
	{name: "vsftpd", versions: []string{"2.3.2", "2.3.5"}, source: vsftpdSrc, filler: 20},
	{name: "bftpd", versions: []string{"2.3", "3.1"}, source: bftpdSrc, filler: 16},
	{name: "libcurl", versions: libcurlVersions, source: libcurlSrc,
		exports: []string{"curl_easy_unescape", "curl_unescape", "curl_easy_escape"}, filler: 24},
	{name: "dbus", versions: []string{"1.6.8", "1.8.0"}, source: dbusSrc, filler: 18},
	{name: "libexif", versions: []string{"0.6.20", "0.6.21"}, source: libexifSrc,
		exports: []string{"exif_entry_get_value", "exif_entry_fix"}, filler: 14},
	{name: "netsnmp", versions: []string{"5.7.2", "5.7.3"}, source: netsnmpSrc,
		exports: []string{"snmp_pdu_parse", "snmp_parse_var_op"}, filler: 18},
}

// PackageNames lists the available packages.
func PackageNames() []string {
	out := make([]string, len(packages))
	for i, p := range packages {
		out[i] = p.name
	}
	return out
}

func pkgByName(name string) *pkgDef {
	for i := range packages {
		if packages[i].name == name {
			return &packages[i]
		}
	}
	return nil
}

// PackageVersions returns the known versions of a package (oldest first).
func PackageVersions(name string) []string {
	if p := pkgByName(name); p != nil {
		return append([]string(nil), p.versions...)
	}
	return nil
}

// PackageExports returns the exported procedure names of a package.
func PackageExports(name string) []string {
	if p := pkgByName(name); p != nil {
		return append([]string(nil), p.exports...)
	}
	return nil
}

// PackageSource returns the complete firmlang source of a package at a
// version: header, hand-written procedures, the shared runtime, and the
// deterministic filler body.
func PackageSource(name, version string) (string, error) {
	p := pkgByName(name)
	if p == nil {
		return nil2str(fmt.Errorf("corpus: unknown package %q", name))
	}
	ok := false
	for _, v := range p.versions {
		if v == version {
			ok = true
		}
	}
	if !ok {
		return nil2str(fmt.Errorf("corpus: package %s has no version %q", name, version))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "package %s version %q\n", name, version)
	sb.WriteString(p.source(version))
	sb.WriteString(runtimeSrc)
	sb.WriteString(fillerProcs(name, version, p.filler))
	return sb.String(), nil
}

func nil2str(err error) (string, error) { return "", err }

// --- wget ---

func wgetSrc(version string) string {
	old := version == "1.12"
	fixed := version == "1.16"
	var sb strings.Builder
	sb.WriteString(`
const GLOB_GLOBALL = 0x1F;
const GLOB_GETALL = 0x20;
const GLOB_GETONE = 0x21;
var opt_recursive = 1;
var opt_retries = 3;
var dl_count = 0;
var glob_buf[64];
var matchres[16];
var warn_msg = "Rejecting invalid filename";
var list_name = ".listing";

func url_parse(url, parts) {
    var i = 0;
    var scheme = 0;
    while url[i] != 0 && url[i] != 58 {
        scheme = (scheme << 4) + to_lower(url[i]);
        i = i + 1;
    }
    parts[0] = scheme;
    if url[i] == 0 {
        return 0 - 1;
    }
    i = i + 1;
    while url[i] == 47 {
        i = i + 1;
    }
    parts[1] = i;
    var hosth = 0;
    while url[i] != 0 && url[i] != 47 && url[i] != 58 {
        hosth = hosth * 31 + url[i];
        i = i + 1;
    }
    parts[2] = hosth;
    if url[i] == 58 {
        var port = 0;
        i = i + 1;
        while url[i] >= 48 && url[i] <= 57 {
            port = port * 10 + (url[i] - 48);
            i = i + 1;
        }
        parts[3] = port;
    } else {
        parts[3] = 21;
    }
    parts[4] = i;
    return 0;
}

func get_ftp(u) {
    var code = ftp_login(u);
    if code != 230 {
        return 0 - code;
    }
    code = ftp_retr(u, 0);
    if code == 226 {
        dl_count = dl_count + 1;
        return 0;
    }
    if code == 550 && opt_retries > 0 {
        var t = 0;
        while t < opt_retries {
            code = ftp_retr(u, t + 1);
            if code == 226 {
                return 0;
            }
            t = t + 1;
        }
    }
    return 0 - code;
}

func ftp_login(u) {
    var h = checksum16(u, str_len(u));
    if h == 0 {
        return 530;
    }
    var resp = (h & 0xFF) ^ 0x33;
    if resp & 1 {
        return 230;
    }
    return 331;
}

func ftp_retr(u, attempt) {
    var n = str_len(u);
    if n == 0 {
        return 550;
    }
    var code = 150 + ((n + attempt) & 3) * 25 + 1;
    return code;
}

feature(OPIE) func skey_resp(challenge, out) {
    var seq = 0;
    var i = 0;
    while challenge[i] >= 48 && challenge[i] <= 57 {
        seq = seq * 10 + (challenge[i] - 48);
        i = i + 1;
    }
    var h = seq ^ 0x5A5A;
    var k = 0;
    while k < 8 {
        out[k] = hex_digit(h >> (k * 4));
        k = k + 1;
    }
    out[8] = 0;
    return seq;
}
`)
	// ftp_retrieve_glob: CVE-2014-4877. The vulnerable body accepts any
	// listed filename; the 1.16 fix rejects names that escape the
	// download directory. 1.12 is an older, structurally different body
	// (the source of the paper's version-discrepancy false positives).
	switch {
	case old:
		sb.WriteString(`
func ftp_retrieve_glob(u, action) {
    var parts[8];
    if url_parse(u, parts) < 0 {
        return 0 - 1;
    }
    var res = 0;
    var i = 0;
    while i < 16 {
        matchres[i] = 0;
        i = i + 1;
    }
    var code = ftp_login(u);
    if code != 230 {
        return 0 - code;
    }
    var n = ftp_list(u, glob_buf);
    i = 0;
    while i < n {
        var f = glob_buf[i];
        if action == GLOB_GLOBALL {
            matchres[i & 15] = f;
            res = res + get_ftp(u);
        } else {
            if action == GLOB_GETONE {
                res = get_ftp(u);
                break;
            }
        }
        i = i + 1;
    }
    return res;
}

func ftp_list(u, out) {
    var n = str_len(u) & 15;
    var i = 0;
    while i < n {
        out[i] = (u[i] * 7) & 0xFF;
        i = i + 1;
    }
    return n;
}
`)
	default:
		guard := ""
		if fixed {
			guard = `
        if has_insecure_name(f) {
            log_warn(warn_msg);
            i = i + 1;
            continue;
        }`
		}
		sb.WriteString(`
func ftp_retrieve_glob(u, action) {
    var parts[8];
    var err = url_parse(u, parts);
    if err < 0 {
        return err;
    }
    var n = ftp_list(u, glob_buf);
    if action == GLOB_GLOBALL {
        if n == 0 {
            return 0 - 1;
        }
    }
    var res = 0;
    var i = 0;
    while i < n {
        var f = glob_buf[i];` + guard + `
        if matches_pattern(f, action) {
            res = res + get_ftp(u);
            dl_count = dl_count + 1;
        }
        if action == GLOB_GETONE && res > 0 {
            return res;
        }
        i = i + 1;
    }
    if res == 0 && action != GLOB_GETALL {
        return 0 - 1;
    }
    return res;
}

func matches_pattern(f, action) {
    if action == GLOB_GLOBALL {
        return 1;
    }
    if (f & 0xFF) == 46 {
        return 0;
    }
    return (f & 3) != 3;
}

func ftp_list(u, out) {
    var n = str_len(u) & 15;
    var i = 0;
    while i < n {
        out[i] = (u[i] * 7 + i) & 0xFF;
        i = i + 1;
    }
    return n;
}

func log_warn(msg) {
    var n = str_len(msg);
    dl_count = dl_count + 0;
    return n;
}
`)
		if fixed {
			sb.WriteString(`
func has_insecure_name(f) {
    if (f & 0xFF) == 47 {
        return 1;
    }
    if (f & 0xFFFF) == 0x2E2E {
        return 1;
    }
    return 0;
}
`)
		}
	}
	return sb.String()
}

// --- vsftpd ---

func vsftpdSrc(version string) string {
	fixed := version != "2.3.2"
	var sb strings.Builder
	sb.WriteString(`
const VSFTP_MAX_FILTER = 32;
var filter_hits = 0;
var deny_msg = "550 Permission denied.";
var session_flags = 0;

func str_locate_char(s, c, n) {
    var i = 0;
    while i < n {
        if s[i] == c {
            return i;
        }
        i = i + 1;
    }
    return 0 - 1;
}

func vsf_sysutil_tolower_buf(buf, n) {
    var i = 0;
    while i < n {
        buf[i] = to_lower(buf[i]);
        i = i + 1;
    }
    return n;
}
`)
	// CVE-2011-0762: the glob filter can be driven into quadratic
	// backtracking by crafted patterns (DoS). The fixed body bounds the
	// iteration count.
	bound := ""
	boundCheck := ""
	if fixed {
		bound = `
    var iters = 0;`
		boundCheck = `
            iters = iters + 1;
            if iters > VSFTP_MAX_FILTER * 8 {
                return 0;
            }`
	}
	sb.WriteString(`
func vsf_filename_passes_filter(name, filter) {
    var ni = 0;
    var fi = 0;
    var star_f = 0 - 1;
    var star_n = 0;` + bound + `
    var nlen = str_len(name);
    var flen = str_len(filter);
    while ni < nlen {
        if fi < flen && (filter[fi] == 63 || filter[fi] == name[ni]) {
            ni = ni + 1;
            fi = fi + 1;
        } else {
            if fi < flen && filter[fi] == 42 {
                star_f = fi;
                star_n = ni;
                fi = fi + 1;
            } else {
                if star_f >= 0 {` + boundCheck + `
                    star_n = star_n + 1;
                    ni = star_n;
                    fi = star_f + 1;
                } else {
                    return 0;
                }
            }
        }
    }
    while fi < flen && filter[fi] == 42 {
        fi = fi + 1;
    }
    if fi == flen {
        filter_hits = filter_hits + 1;
        return 1;
    }
    return 0;
}

func vsf_cmdio_write(code, text) {
    var n = str_len(text);
    var acc = code * 1000;
    var i = 0;
    while i < n {
        acc = acc + text[i];
        i = i + 1;
    }
    return acc;
}

func handle_list(arg) {
    if vsf_filename_passes_filter(arg, deny_msg) {
        return vsf_cmdio_write(150, arg);
    }
    return vsf_cmdio_write(550, deny_msg);
}

func handle_retr(arg) {
    var n = str_len(arg);
    if n == 0 {
        return vsf_cmdio_write(501, deny_msg);
    }
    session_flags = session_flags | 4;
    return vsf_cmdio_write(150, arg);
}
`)
	return sb.String()
}

// --- bftpd ---

func bftpdSrc(version string) string {
	fixed := version != "2.3"
	var sb strings.Builder
	sb.WriteString(`
const WTMP_REC = 24;
var utmp_count = 0;
var wtmp_buf[96];
var host_name = "bftpd-host";
`)
	// CVE-2009-4593: bftpdutmp_log writes a record without bounding the
	// slot index (BOF). The fix masks the slot into range.
	slot := "var slot = utmp_count * 2;"
	if fixed {
		slot = "var slot = (utmp_count & 31) * 2;"
	}
	sb.WriteString(`
func bftpdutmp_log(user, logging_in) {
    ` + slot + `
    var h = 0;
    var i = 0;
    while user[i] != 0 {
        h = h * 33 + user[i];
        i = i + 1;
    }
    wtmp_buf[slot] = h;
    if logging_in {
        wtmp_buf[slot + 1] = 1;
        utmp_count = utmp_count + 1;
    } else {
        wtmp_buf[slot + 1] = 0;
        if utmp_count > 0 {
            utmp_count = utmp_count - 1;
        }
    }
    return h;
}

func bftpdutmp_usercount(user) {
    var h = 0;
    var i = 0;
    while user[i] != 0 {
        h = h * 33 + user[i];
        i = i + 1;
    }
    var n = 0;
    var k = 0;
    while k < 32 {
        if wtmp_buf[k * 2] == h && wtmp_buf[k * 2 + 1] == 1 {
            n = n + 1;
        }
        k = k + 1;
    }
    return n;
}

func login_user(user, pass) {
    var uh = checksum16(user, str_len(user));
    var ph = checksum16(pass, str_len(pass));
    if (uh ^ ph) == 0 {
        return 0 - 1;
    }
    bftpdutmp_log(user, 1);
    return uh & 0xFFFF;
}

func logout_user(user) {
    bftpdutmp_log(user, 0);
    return utmp_count;
}
`)
	return sb.String()
}

// --- libcurl ---

var libcurlVersions = []string{"7.10", "7.23.0", "7.29.0", "7.50.0", "7.52.0"}

func libcurlSrc(version string) string {
	vi := -1
	for i, v := range libcurlVersions {
		if v == version {
			vi = i
		}
	}
	var sb strings.Builder
	sb.WriteString(`
const CURLE_OK = 0;
var unescape_count = 0;
var alloc_high_water = 0;
var fmt_buf[64];
var proto_https = "https";
`)
	if vi == 0 {
		// 7.10: only the long-deprecated curl_unescape exists — the
		// predecessor of curl_easy_unescape the paper's "deprecated
		// procedures" finding hinges on.
		sb.WriteString(`
func curl_unescape(str, length) {
    var n = length;
    if n == 0 {
        n = str_len(str);
    }
    var out = 0;
    var i = 0;
    while i < n {
        var c = str[i];
        if c == 37 && i + 2 < n {
            var hi = hexval(str[i + 1]);
            var lo = hexval(str[i + 2]);
            if hi >= 0 && lo >= 0 {
                c = hi * 16 + lo;
                i = i + 2;
            }
        }
        out = out * 31 + c;
        i = i + 1;
    }
    unescape_count = unescape_count + 1;
    return out;
}
`)
	} else {
		// curl_easy_unescape: CVE-2012-0036 (vulnerable only at 7.23.0 in
		// our registry; later bodies validate the %-sequence length
		// before consuming).
		check := "if hi >= 0 && lo >= 0 {"
		if vi >= 2 {
			check = "if hi >= 0 && lo >= 0 && i + 2 < n {"
		}
		sb.WriteString(`
func curl_easy_unescape(handle, str, length, olen) {
    var n = length;
    if n == 0 {
        n = str_len(str);
    }
    var out = 0;
    var written = 0;
    var i = 0;
    while i < n {
        var c = str[i];
        if c == 37 {
            var hi = hexval(str[i + 1]);
            var lo = hexval(str[i + 2]);
            ` + check + `
                c = hi * 16 + lo;
                i = i + 2;
            }
        }
        out = out * 31 + c;
        written = written + 1;
        i = i + 1;
    }
    olen[0] = written;
    unescape_count = unescape_count + 1;
    return out;
}

func curl_easy_escape(handle, str, length) {
    var n = length;
    if n == 0 {
        n = str_len(str);
    }
    var acc = 0;
    var i = 0;
    while i < n {
        var c = str[i];
        if (c >= 48 && c <= 57) || (c >= 97 && c <= 122) || (c >= 65 && c <= 90) {
            acc = acc * 31 + c;
        } else {
            acc = acc * 31 + 37;
            acc = acc * 31 + hex_digit(c >> 4);
            acc = acc * 31 + hex_digit(c);
        }
        i = i + 1;
    }
    return acc;
}
`)
	}
	sb.WriteString(`
func hexval(c) {
    if c >= 48 && c <= 57 {
        return c - 48;
    }
    if c >= 97 && c <= 102 {
        return c - 87;
    }
    if c >= 65 && c <= 70 {
        return c - 55;
    }
    return 0 - 1;
}
`)
	// tailmatch: CVE-2013-1944 — vulnerable versions match cookie
	// domains from the tail without checking a domain-boundary dot.
	if vi >= 1 {
		boundary := ""
		if vi >= 3 { // fixed at 7.50.0+
			boundary = `
    if hl > nl {
        var sep = hostname[hl - nl - 1];
        if sep != 46 {
            return 0;
        }
    }`
		}
		sb.WriteString(`
func tailmatch(needle, hostname) {
    var nl = str_len(needle);
    var hl = str_len(hostname);
    if nl > hl {
        return 0;
    }` + boundary + `
    var i = 0;
    while i < nl {
        if to_lower(needle[nl - i - 1]) != to_lower(hostname[hl - i - 1]) {
            return 0;
        }
        i = i + 1;
    }
    return 1;
}

func cookie_matches(domain, host) {
    if tailmatch(domain, host) {
        return 1;
    }
    return 0;
}
`)
	}
	// alloc_addbyter: CVE-2016-8618 — the vulnerable body grows the
	// buffer with a doubling that overflows for 1GB inputs; the fixed one
	// caps the size.
	if vi >= 1 {
		grow := `
        var newsize = size * 2;
        if newsize == 0 {
            newsize = 16;
        }`
		if vi >= 4 { // fixed at 7.52.0
			grow = `
        var newsize = size * 2;
        if newsize == 0 {
            newsize = 16;
        }
        if newsize > 0x40000000 {
            return 0 - 1;
        }`
		}
		sb.WriteString(`
func alloc_addbyter(outchar, state) {
    var used = state[0];
    var size = state[1];
    if used + 1 >= size {` + grow + `
        state[1] = newsize;
        alloc_high_water = alloc_high_water + 1;
    }
    state[2 + (used & 31)] = outchar & 0xFF;
    state[0] = used + 1;
    return outchar & 0xFF;
}

func dprintf_formatf(format, state) {
    var i = 0;
    var n = str_len(format);
    var written = 0;
    while i < n {
        var c = format[i];
        if c == 37 && i + 1 < n {
            i = i + 1;
            var spec = format[i];
            if spec == 100 {
                written = written + alloc_addbyter(48 + (i & 7), state);
            } else {
                written = written + alloc_addbyter(spec, state);
            }
        } else {
            written = written + alloc_addbyter(c, state);
        }
        i = i + 1;
    }
    return written;
}
`)
	}
	return sb.String()
}

// --- dbus ---

func dbusSrc(version string) string {
	fixed := version != "1.6.8"
	var sb strings.Builder
	sb.WriteString(`
const DBUS_MAX_MSG = 0x4000;
var bus_msg_count = 0;
var type_sig = "isu";
`)
	// printf_string_upper_bound: CVE-2013-2168 — the vulnerable body
	// miscomputes the needed length for %-specifiers, allowing a crafted
	// message to force a tiny bound (DoS via assertion). The fix accounts
	// for the width field.
	width := ""
	if fixed {
		width = `
            while format[i] >= 48 && format[i] <= 57 {
                bound = bound + (format[i] - 48);
                i = i + 1;
            }`
	}
	sb.WriteString(`
func printf_string_upper_bound(format, nargs) {
    var bound = 1;
    var i = 0;
    var n = str_len(format);
    while i < n {
        if format[i] == 37 {
            i = i + 1;` + width + `
            var spec = format[i];
            if spec == 115 {
                bound = bound + 64 * (nargs & 7);
            } else {
                if spec == 100 || spec == 117 {
                    bound = bound + 12;
                } else {
                    bound = bound + 2;
                }
            }
        } else {
            bound = bound + 1;
        }
        i = i + 1;
    }
    if bound > DBUS_MAX_MSG {
        return DBUS_MAX_MSG;
    }
    return bound;
}

func marshal_uint32(buf, pos, v) {
    buf[pos] = v & 0xFF;
    buf[pos + 1] = (v >> 8) & 0xFF;
    buf[pos + 2] = (v >> 16) & 0xFF;
    buf[pos + 3] = (v >> 24) & 0xFF;
    return pos + 4;
}

func demarshal_uint32(buf, pos) {
    return buf[pos] | (buf[pos + 1] << 8) | (buf[pos + 2] << 16) | (buf[pos + 3] << 24);
}

func message_header_len(serial, flags) {
    var base = 16;
    if flags & 1 {
        base = base + 8;
    }
    if flags & 2 {
        base = base + printf_string_upper_bound(type_sig, serial & 3);
    }
    bus_msg_count = bus_msg_count + 1;
    return (base + 7) & ~7;
}
`)
	return sb.String()
}

// --- libexif ---

func libexifSrc(version string) string {
	fixed := version != "0.6.20"
	var sb strings.Builder
	sb.WriteString(`
const EXIF_ASCII = 2;
const EXIF_SHORT = 3;
const EXIF_LONG = 4;
var entry_count = 0;
var value_buf[64];
`)
	// exif_entry_get_value: CVE-2012-2841 — an off-by-one when copying
	// the ASCII value into the caller's buffer.
	limit := "n"
	if fixed {
		limit = "n - 1"
	}
	sb.WriteString(`
func exif_entry_get_value(entry, val, maxlen) {
    var fmt = entry[0];
    var comps = entry[1];
    var n = maxlen;
    entry_count = entry_count + 1;
    if fmt == EXIF_ASCII {
        var i = 0;
        while i < comps && i < ` + limit + ` {
            val[i] = entry[2 + i] & 0xFF;
            i = i + 1;
        }
        val[i] = 0;
        return i;
    }
    if fmt == EXIF_SHORT {
        var v = entry[2] & 0xFFFF;
        var k = 0;
        while v > 0 && k < n {
            val[k] = 48 + v % 10;
            v = v / 10;
            k = k + 1;
        }
        val[k] = 0;
        return k;
    }
    if fmt == EXIF_LONG {
        var w = entry[2];
        var j = 0;
        while j < 8 && j < n {
            val[j] = hex_digit(w >> ((7 - j) * 4));
            j = j + 1;
        }
        val[j] = 0;
        return j;
    }
    return 0;
}

func exif_entry_fix(entry) {
    var fmt = entry[0];
    if fmt != EXIF_ASCII && fmt != EXIF_SHORT && fmt != EXIF_LONG {
        entry[0] = EXIF_LONG;
        return 1;
    }
    if entry[1] == 0 {
        entry[1] = 1;
        return 1;
    }
    return 0;
}

func exif_tag_table_lookup(tag) {
    var h = (tag * 2654435761) >> 24;
    if h & 1 {
        return tag & 0xFF;
    }
    return (tag >> 8) & 0xFF;
}
`)
	return sb.String()
}

// --- net-snmp ---

func netsnmpSrc(version string) string {
	fixed := version != "5.7.2"
	var sb strings.Builder
	sb.WriteString(`
const ASN_INTEGER = 2;
const ASN_OCTET_STR = 4;
const ASN_SEQUENCE = 48;
var pdu_count = 0;
var parse_errs = 0;
`)
	// snmp_pdu_parse: CVE-2015-5621 analog — incomplete parsing leaves
	// the varbind list partly initialized (DoS). The fix validates the
	// type byte before consuming the value.
	typeGuard := ""
	if fixed {
		typeGuard = `
        if t != ASN_INTEGER && t != ASN_OCTET_STR && t != ASN_SEQUENCE {
            parse_errs = parse_errs + 1;
            return 0 - 2;
        }`
	}
	sb.WriteString(`
func snmp_pdu_parse(pdu, data, length) {
    var pos = 0;
    var nvars = 0;
    pdu_count = pdu_count + 1;
    if length < 2 {
        return 0 - 1;
    }
    if data[pos] != ASN_SEQUENCE {
        return 0 - 1;
    }
    pos = pos + 2;
    while pos + 2 <= length {
        var t = data[pos];
        var l = data[pos + 1];` + typeGuard + `
        pos = pos + 2;
        if pos + l > length {
            parse_errs = parse_errs + 1;
            return 0 - 3;
        }
        var acc = 0;
        var i = 0;
        while i < l {
            acc = (acc << 8) | data[pos + i];
            i = i + 1;
        }
        pdu[nvars & 15] = acc;
        nvars = nvars + 1;
        pos = pos + l;
    }
    pdu[16] = nvars;
    return nvars;
}

func snmp_parse_var_op(data, pos, length) {
    if pos + 2 > length {
        return 0 - 1;
    }
    var t = data[pos];
    var l = data[pos + 1];
    if t != ASN_INTEGER && t != ASN_OCTET_STR {
        return 0 - 1;
    }
    if pos + 2 + l > length {
        return 0 - 1;
    }
    return pos + 2 + l;
}

func snmp_build_int(buf, pos, v) {
    buf[pos] = ASN_INTEGER;
    buf[pos + 1] = 4;
    var i = 0;
    while i < 4 {
        buf[pos + 2 + i] = (v >> ((3 - i) * 8)) & 0xFF;
        i = i + 1;
    }
    return pos + 6;
}
`)
	return sb.String()
}
