// Package corpus generates the evaluation corpus: firmlang analogs of
// the open-source packages the paper's CVE queries come from, vendor
// device lines with per-vendor tool chains, firmware image construction,
// and exact ground-truth labels.
//
// The paper crawls ~2000 usable firmware images from public vendor
// support sites; this package is the synthetic-equivalent substitute (see
// DESIGN.md): every image is generated from known sources through the
// full compiler pipeline, so precision can be measured exactly instead of
// semi-manually.
package corpus

// VulnClass categorizes a CVE (the paper's experiments span these).
type VulnClass string

// Vulnerability classes from the paper's query selection.
const (
	VulnDoS      VulnClass = "DoS due to crafted message"
	VulnBOF      VulnClass = "buffer overflow"
	VulnInputVal VulnClass = "input validation"
	VulnInfoLeak VulnClass = "information disclosure"
	VulnPathTrav VulnClass = "path traversal"
)

// CVE describes one vulnerability: the procedure to search for and the
// package versions that contain the vulnerable body.
type CVE struct {
	ID        string
	Package   string
	Procedure string
	Class     VulnClass
	// VulnVersions lists the package versions whose build contains the
	// vulnerable procedure body.
	VulnVersions []string
	// QueryVersion is the version the query is compiled from ("the
	// latest vulnerable version of the software package").
	QueryVersion string
}

// CVEs is the registry used by the experiments, mirroring the paper's
// Table 2 (rows 1-7) plus the two exported-procedure queries added for
// the labeled comparison (libexif and net-snmp).
var CVEs = []CVE{
	{ID: "CVE-2011-0762", Package: "vsftpd", Procedure: "vsf_filename_passes_filter", Class: VulnDoS,
		VulnVersions: []string{"2.3.2"}, QueryVersion: "2.3.2"},
	{ID: "CVE-2009-4593", Package: "bftpd", Procedure: "bftpdutmp_log", Class: VulnBOF,
		VulnVersions: []string{"2.3"}, QueryVersion: "2.3"},
	{ID: "CVE-2012-0036", Package: "libcurl", Procedure: "curl_easy_unescape", Class: VulnInputVal,
		VulnVersions: []string{"7.23.0"}, QueryVersion: "7.23.0"},
	{ID: "CVE-2013-1944", Package: "libcurl", Procedure: "tailmatch", Class: VulnInfoLeak,
		VulnVersions: []string{"7.23.0", "7.29.0"}, QueryVersion: "7.29.0"},
	{ID: "CVE-2013-2168", Package: "dbus", Procedure: "printf_string_upper_bound", Class: VulnDoS,
		VulnVersions: []string{"1.6.8"}, QueryVersion: "1.6.8"},
	{ID: "CVE-2014-4877", Package: "wget", Procedure: "ftp_retrieve_glob", Class: VulnPathTrav,
		VulnVersions: []string{"1.12", "1.15"}, QueryVersion: "1.15"},
	{ID: "CVE-2016-8618", Package: "libcurl", Procedure: "alloc_addbyter", Class: VulnBOF,
		VulnVersions: []string{"7.23.0", "7.29.0", "7.50.0"}, QueryVersion: "7.50.0"},
	// Exported-procedure queries (labeled experiment, Fig. 8).
	{ID: "CVE-2012-2841", Package: "libexif", Procedure: "exif_entry_get_value", Class: VulnBOF,
		VulnVersions: []string{"0.6.20"}, QueryVersion: "0.6.20"},
	{ID: "CVE-2015-5621", Package: "netsnmp", Procedure: "snmp_pdu_parse", Class: VulnDoS,
		VulnVersions: []string{"5.7.2"}, QueryVersion: "5.7.2"},
}

// CVEByID returns the registry entry, or nil.
func CVEByID(id string) *CVE {
	for i := range CVEs {
		if CVEs[i].ID == id {
			return &CVEs[i]
		}
	}
	return nil
}

// VulnerableIn reports whether the CVE's procedure is vulnerable at the
// given package version.
func (c *CVE) VulnerableIn(version string) bool {
	for _, v := range c.VulnVersions {
		if v == version {
			return true
		}
	}
	return false
}
