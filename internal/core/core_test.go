package core

import (
	"math/rand"
	"testing"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

// mkProc builds a synthetic procedure from raw strand ids.
func mkProc(name string, hashes ...uint64) *sim.Proc {
	s := append([]uint64(nil), hashes...)
	// strand.Set requires sorted unique hashes.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return &sim.Proc{Name: name, Set: strand.Set{Hashes: s}}
}

// TestFig4Scenario reproduces the paper's Fig. 4: the procedure-centric
// pick for q1 is t1 (Sim=3), but t1's best partner is q2 (Sim=4), so the
// game must hand q1 its globally-correct match t2 (Sim=2).
func TestFig4Scenario(t *testing.T) {
	q := sim.FromProcs("Q", []*sim.Proc{
		mkProc("q1", 1, 2, 3),
		mkProc("q2", 1, 3, 4, 5),
	})
	tt := sim.FromProcs("T", []*sim.Proc{
		mkProc("t1", 1, 2, 3, 4, 5),
		mkProc("t2", 2, 3),
	})
	// Procedure-centric: q1's local best is t1.
	best, score := tt.BestMatch(q.Procs[0].Set, nil)
	if best != 0 || score != 3 {
		t.Fatalf("procedure-centric pick = t%d (Sim=%d), want t1 (3)", best+1, score)
	}
	// Executable-centric: the game corrects to t2.
	r := Match(q, 0, tt, &Options{RecordTrace: true})
	if r.Reason != EndMatched {
		t.Fatalf("game ended %v: %+v", r.Reason, r)
	}
	if r.Target != 1 {
		t.Errorf("game matched q1 with t%d, want t2; trace: %+v", r.Target+1, r.Trace)
	}
	if r.Steps < 2 {
		t.Errorf("correction requires >= 2 steps, got %d", r.Steps)
	}
	if len(r.Trace) == 0 {
		t.Error("trace not recorded")
	}
	// The partial matching must contain both pairs but never a full
	// matching requirement.
	if len(r.MatchedPairs) != 2 {
		t.Errorf("matched pairs = %v", r.MatchedPairs)
	}
}

func TestOneStepAgreement(t *testing.T) {
	q := sim.FromProcs("Q", []*sim.Proc{mkProc("q1", 1, 2, 3)})
	tt := sim.FromProcs("T", []*sim.Proc{
		mkProc("t1", 1, 2, 3),
		mkProc("t2", 9, 10),
	})
	r := Match(q, 0, tt, nil)
	if r.Target != 0 || r.Steps != 1 {
		t.Errorf("expected 1-step match to t1, got target=%d steps=%d", r.Target, r.Steps)
	}
	if r.Score != 3 {
		t.Errorf("score = %d", r.Score)
	}
}

func TestNoCandidate(t *testing.T) {
	q := sim.FromProcs("Q", []*sim.Proc{mkProc("q1", 1, 2)})
	tt := sim.FromProcs("T", []*sim.Proc{mkProc("t1", 8, 9)})
	r := Match(q, 0, tt, nil)
	if r.Target != -1 || r.Reason != EndNoCandidate {
		t.Errorf("result = %+v, want no-candidate", r)
	}
}

// The game must always terminate, whatever the strand structure.
func TestGameTerminationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nq := 2 + rng.Intn(12)
		nt := 2 + rng.Intn(12)
		universe := 1 + rng.Intn(20)
		mk := func(name string, n int) []*sim.Proc {
			var out []*sim.Proc
			for i := 0; i < n; i++ {
				seen := map[uint64]bool{}
				var hs []uint64
				for k := 0; k < 1+rng.Intn(8); k++ {
					h := uint64(1 + rng.Intn(universe))
					if !seen[h] {
						seen[h] = true
						hs = append(hs, h)
					}
				}
				out = append(out, mkProc(name+string(rune('a'+i)), hs...))
			}
			return out
		}
		q := sim.FromProcs("Q", mk("q", nq))
		tt := sim.FromProcs("T", mk("t", nt))
		qi := rng.Intn(nq)
		r := Match(q, qi, tt, nil)
		if r.Steps > 64 {
			t.Fatalf("trial %d: %d steps exceeds cap", trial, r.Steps)
		}
		// The matching must be injective in both directions.
		qs := map[int]bool{}
		ts := map[int]bool{}
		for _, pr := range r.MatchedPairs {
			if qs[pr[0]] || ts[pr[1]] {
				t.Fatalf("trial %d: matching not injective: %v", trial, r.MatchedPairs)
			}
			qs[pr[0]] = true
			ts[pr[1]] = true
		}
	}
}

// Every committed pair must be mutually best among the procedures not
// matched earlier — the local consistency Eq. 1 demands.
func TestMatchingConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		mk := func(name string, n int) []*sim.Proc {
			var out []*sim.Proc
			for i := 0; i < n; i++ {
				var hs []uint64
				for k := 0; k < 3+rng.Intn(6); k++ {
					hs = append(hs, uint64(1+rng.Intn(15)))
				}
				set := map[uint64]bool{}
				var uniq []uint64
				for _, h := range hs {
					if !set[h] {
						set[h] = true
						uniq = append(uniq, h)
					}
				}
				out = append(out, mkProc(name+string(rune('a'+i)), uniq...))
			}
			return out
		}
		q := sim.FromProcs("Q", mk("q", 6))
		tt := sim.FromProcs("T", mk("t", 6))
		r := Match(q, 0, tt, nil)
		// Replay: at each commit, both directions agreed given the
		// then-current exclusions.
		mq := map[int]bool{}
		mt := map[int]bool{}
		for _, pr := range r.MatchedPairs {
			qi, ti := pr[0], pr[1]
			fw, _ := tt.BestMatch(q.Procs[qi].Set, func(i int) bool { return mt[i] })
			bk, _ := q.BestMatch(tt.Procs[ti].Set, func(i int) bool { return mq[i] })
			if fw != ti || bk != qi {
				t.Fatalf("trial %d: pair (%d,%d) not mutually best (fw=%d bk=%d)", trial, qi, ti, fw, bk)
			}
			mq[qi] = true
			mt[ti] = true
		}
	}
}

// --- integration over real compiled binaries ---

func buildExe(t *testing.T, arch uir.Arch, prof compiler.Profile, opt isa.Options, strip bool) *sim.Exe {
	t.Helper()
	pkg, err := compiler.CompileToMIR(isatest.Source, prof)
	if err != nil {
		t.Fatal(err)
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		t.Fatal(err)
	}
	f := obj.FromArtifact(art)
	if strip {
		f.Strip()
	}
	rec, err := cfg.Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Build("test-exe", rec, nil)
}

// The game over real cross-tool-chain binaries: match accuracy must be at
// least as good as procedure-centric matching.
func TestGameBeatsOrMatchesPairwiseOnRealBinaries(t *testing.T) {
	q := buildExe(t, uir.ArchMIPS32, compiler.Profile{OptLevel: 2},
		isa.Options{TextBase: 0x400000, MulByShift: true}, false)
	tgt := buildExe(t, uir.ArchMIPS32, compiler.Profile{OptLevel: 1},
		isa.Options{TextBase: 0x80000000, RegSeed: 77, SchedSeed: 13, ShuffleProcs: true}, false)
	gameCorrect, pairCorrect, total := 0, 0, 0
	for qi, qp := range q.Procs {
		if qp.Set.Size() < 3 {
			continue
		}
		total++
		r := Match(q, qi, tgt, nil)
		if r.Target >= 0 && tgt.Procs[r.Target].Name == qp.Name {
			gameCorrect++
		}
		best, _ := tgt.BestMatch(qp.Set, nil)
		if best >= 0 && tgt.Procs[best].Name == qp.Name {
			pairCorrect++
		}
	}
	if total == 0 {
		t.Fatal("no procedures")
	}
	if gameCorrect < pairCorrect {
		t.Errorf("game accuracy %d/%d below pairwise %d/%d", gameCorrect, total, pairCorrect, total)
	}
	if float64(gameCorrect)/float64(total) < 0.8 {
		t.Errorf("game accuracy %d/%d too low", gameCorrect, total)
	}
}

func TestSearchParallelAndThreshold(t *testing.T) {
	q := buildExe(t, uir.ArchARM32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x8000}, false)
	qi := q.ProcByName("deep")
	if qi < 0 {
		t.Fatal("query proc missing")
	}
	// Targets: two containing the procedure (different tool chains), one
	// unrelated (different source entirely — approximate by an exe with
	// only tiny procedures: reuse same source but we check scores).
	t1 := buildExe(t, uir.ArchARM32, compiler.Profile{OptLevel: 2},
		isa.Options{TextBase: 0x10000, RegSeed: 5, SchedSeed: 3}, true)
	t2 := buildExe(t, uir.ArchARM32, compiler.Profile{OptLevel: 3},
		isa.Options{TextBase: 0x20000, RegSeed: 9, ShuffleProcs: true}, true)
	res := Search(q, qi, []*sim.Exe{t1, t2}, &SearchOptions{Workers: 4})
	if res.Examined != 2 {
		t.Errorf("examined = %d", res.Examined)
	}
	if len(res.Findings) != 2 {
		t.Fatalf("findings = %+v, want 2", res.Findings)
	}
	for _, f := range res.Findings {
		if f.Ratio < 0.25 {
			t.Errorf("finding ratio %.2f below threshold", f.Ratio)
		}
	}
	if len(res.StepsHistogram) == 0 {
		t.Error("steps histogram empty")
	}
}

func TestEndReasonStrings(t *testing.T) {
	for r := EndMatched; r <= EndMatchLimit; r++ {
		if r.String() == "" {
			t.Errorf("EndReason %d has empty string", r)
		}
	}
}

// prefilterScenario builds a query and three targets: one containing the
// query procedure, one sharing nothing, one sharing a little.
func prefilterScenario() (*sim.Exe, int, []*sim.Exe) {
	q := sim.FromProcs("Q", []*sim.Proc{
		mkProc("vuln", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
		mkProc("other", 50, 51),
	})
	hit := sim.FromProcs("hit", []*sim.Proc{
		mkProc("sub_1", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
		mkProc("sub_2", 90, 91),
	})
	miss := sim.FromProcs("miss", []*sim.Proc{
		mkProc("sub_1", 100, 101, 102),
	})
	weak := sim.FromProcs("weak", []*sim.Proc{
		mkProc("sub_1", 1, 2, 200, 201, 202, 203),
	})
	return q, 0, []*sim.Exe{miss, hit, weak}
}

func TestSearchPrefilterPreservesFindings(t *testing.T) {
	q, qi, targets := prefilterScenario()
	base := &SearchOptions{MinScore: 3, MinRatio: 0.25, Workers: 2}
	exhaustive := Search(q, qi, targets, base)
	if len(exhaustive.Findings) != 1 || exhaustive.Findings[0].ExePath != "hit" {
		t.Fatalf("exhaustive findings = %+v, want one in hit", exhaustive.Findings)
	}
	if exhaustive.Examined != len(targets) {
		t.Fatalf("exhaustive Examined = %d, want %d", exhaustive.Examined, len(targets))
	}

	// A sound prefilter (drops only the zero-overlap target).
	pre := *base
	pre.Prefilter = func(q *sim.Exe, qi int, ts []*sim.Exe) ([]int, bool) {
		return []int{1, 2}, true
	}
	filtered := Search(q, qi, targets, &pre)
	if filtered.Examined != 2 {
		t.Errorf("filtered Examined = %d, want 2", filtered.Examined)
	}
	if len(filtered.Findings) != 1 || filtered.Findings[0] != exhaustive.Findings[0] {
		t.Errorf("filtered findings %+v differ from exhaustive %+v",
			filtered.Findings, exhaustive.Findings)
	}
	if len(filtered.StepsHistogram) != len(exhaustive.StepsHistogram) {
		t.Errorf("histograms differ: %v vs %v", filtered.StepsHistogram, exhaustive.StepsHistogram)
	}
	for k, v := range exhaustive.StepsHistogram {
		if filtered.StepsHistogram[k] != v {
			t.Errorf("histogram[%d] = %d, want %d", k, filtered.StepsHistogram[k], v)
		}
	}
}

func TestSearchPrefilterNoInformation(t *testing.T) {
	q, qi, targets := prefilterScenario()
	opt := &SearchOptions{MinScore: 3, MinRatio: 0.25}
	opt.Prefilter = func(*sim.Exe, int, []*sim.Exe) ([]int, bool) { return nil, false }
	res := Search(q, qi, targets, opt)
	if res.Examined != len(targets) {
		t.Errorf("ok=false must examine everything: Examined = %d, want %d",
			res.Examined, len(targets))
	}
	if len(res.Findings) != 1 {
		t.Errorf("findings = %+v", res.Findings)
	}
}

func TestSearchPrefilterBogusIndices(t *testing.T) {
	q, qi, targets := prefilterScenario()
	opt := &SearchOptions{MinScore: 3, MinRatio: 0.25}
	opt.Prefilter = func(*sim.Exe, int, []*sim.Exe) ([]int, bool) {
		return []int{-5, 1, 1, 99, 1}, true
	}
	res := Search(q, qi, targets, opt)
	if res.Examined != 1 {
		t.Errorf("bogus indices must be dropped: Examined = %d, want 1", res.Examined)
	}
	if len(res.Findings) != 1 || res.Findings[0].ExePath != "hit" {
		t.Errorf("findings = %+v", res.Findings)
	}
}
