package core
