package core

import (
	"math/rand"
	"reflect"
	"testing"

	"firmup/internal/corpusindex"
	"firmup/internal/sim"
)

// TestMatchBatchEquivalenceRandomized: every Result of a batched pass —
// target, score, steps, matched pairs, end reason and trace — must be
// deep-equal to an independent Match call for the same (qi, target)
// pair, for any batch composition including repeated procedures.
func TestMatchBatchEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	opt := &Options{RecordTrace: true}
	for trial := 0; trial < 200; trial++ {
		it := corpusindex.NewInterner()
		nq := 2 + rng.Intn(14)
		nt := 2 + rng.Intn(14)
		universe := 1 + rng.Intn(24)
		q := sim.FromProcsSession("Q", randProcs(rng, "q", nq, universe, 8), it)
		tt := sim.FromProcsSession("T", randProcs(rng, "t", nt, universe, 8), it)
		qis := make([]int, 1+rng.Intn(2*nq)) // duplicates allowed
		for i := range qis {
			qis[i] = rng.Intn(nq)
		}
		batch := MatchBatch(q, qis, tt, opt)
		for i, qi := range qis {
			solo := Match(q, qi, tt, opt)
			if !reflect.DeepEqual(batch[i], solo) {
				t.Fatalf("trial %d: batched game %d (qi=%d) diverges from Match:\nbatch: %+v\nsolo:  %+v",
					trial, i, qi, batch[i], solo)
			}
		}
	}
}

// TestMatchBatchEquivalenceTightLimits stresses the shared matcher near
// the top-k truncation boundary: tiny MaxMatches/MaxSteps with dense
// overlap force exclusion-heavy revisits of candidate lists warmed by
// earlier games of the batch.
func TestMatchBatchEquivalenceTightLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 200; trial++ {
		opt := &Options{
			MaxSteps:    1 + rng.Intn(8),
			MaxMatches:  1 + rng.Intn(4),
			RecordTrace: true,
		}
		n := 4 + rng.Intn(10)
		universe := 1 + rng.Intn(6)
		q := sim.FromProcs("Q", randProcs(rng, "q", n, universe, 5))
		tt := sim.FromProcs("T", randProcs(rng, "t", n, universe, 5))
		qis := make([]int, 1+rng.Intn(n))
		for i := range qis {
			qis[i] = rng.Intn(n)
		}
		batch := MatchBatch(q, qis, tt, opt)
		for i, qi := range qis {
			solo := Match(q, qi, tt, opt)
			if !reflect.DeepEqual(batch[i], solo) {
				t.Fatalf("trial %d: batched game %d (qi=%d) diverges under tight limits:\nbatch: %+v\nsolo:  %+v",
					trial, i, qi, batch[i], solo)
			}
		}
	}
}

// randBatchScenario is one randomized multi-executable search setup:
// several query executables with procedure picks, and a shared target
// set, all interned under one session so the CSR fast paths engage.
type randBatchScenario struct {
	queries []BatchQuery
	targets []*sim.Exe
}

func newRandBatchScenario(rng *rand.Rand) randBatchScenario {
	it := corpusindex.NewInterner()
	universe := 4 + rng.Intn(24)
	var sc randBatchScenario
	nexes := 1 + rng.Intn(3)
	for e := 0; e < nexes; e++ {
		nq := 2 + rng.Intn(8)
		q := sim.FromProcsSession("Q", randProcs(rng, "q", nq, universe, 8), it)
		for k := 0; k < 1+rng.Intn(4); k++ {
			sc.queries = append(sc.queries, BatchQuery{Q: q, QI: rng.Intn(nq)})
		}
	}
	nt := 3 + rng.Intn(8)
	for ti := 0; ti < nt; ti++ {
		np := 2 + rng.Intn(10)
		sc.targets = append(sc.targets, sim.FromProcsSession("T", randProcs(rng, "t", np, universe, 8), it))
	}
	return sc
}

// TestSearchBatchEquivalenceRandomized sweeps randomized batches of
// queries spanning several query executables: every SearchResult of the
// batched pass must deep-equal the sequential Search for that query —
// findings, examined counts and step histograms — and the batch must be
// order-insensitive: shuffling the queries permutes the results and
// nothing else.
func TestSearchBatchEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 120; trial++ {
		sc := newRandBatchScenario(rng)
		opt := &SearchOptions{
			MinScore:         1 + rng.Intn(3),
			MinRatio:         0.05 + 0.3*rng.Float64(),
			MarkerMinOverlap: -1, // random procs carry no markers
		}
		// Sweep batch sizes 1..len: each prefix is its own batch.
		for n := 1; n <= len(sc.queries); n++ {
			batch := SearchBatch(sc.queries[:n], sc.targets, opt)
			for i, bq := range sc.queries[:n] {
				solo := Search(bq.Q, bq.QI, sc.targets, opt)
				if !reflect.DeepEqual(batch[i], solo) {
					t.Fatalf("trial %d: batch size %d query %d diverges from sequential Search:\nbatch: %+v\nsolo:  %+v",
						trial, n, i, batch[i], solo)
				}
			}
		}
		// Order-insensitivity: a shuffled batch returns the same result
		// for each query, aligned to the shuffled positions.
		full := SearchBatch(sc.queries, sc.targets, opt)
		perm := rng.Perm(len(sc.queries))
		shuffled := make([]BatchQuery, len(sc.queries))
		for i, p := range perm {
			shuffled[i] = sc.queries[p]
		}
		reres := SearchBatch(shuffled, sc.targets, opt)
		for i, p := range perm {
			if !reflect.DeepEqual(reres[i], full[p]) {
				t.Fatalf("trial %d: shuffled batch position %d (original %d) diverges:\nshuffled: %+v\noriginal: %+v",
					trial, i, p, reres[i], full[p])
			}
		}
	}
}

// TestSearchBatchEquivalenceWithPrefilter pins the batched pass under a
// caller-installed prefilter: the batch applies the same per-query
// narrowing the sequential path does, so findings and Examined agree
// even when the prefilter keeps different targets for different
// queries.
func TestSearchBatchEquivalenceWithPrefilter(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 80; trial++ {
		sc := newRandBatchScenario(rng)
		opt := &SearchOptions{MinScore: 1, MinRatio: 0.05, MarkerMinOverlap: -1}
		// A deterministic per-query narrowing (equivalence does not need
		// soundness: both paths apply the identical prefilter).
		opt.Prefilter = func(q *sim.Exe, qi int, targets []*sim.Exe) ([]int, bool) {
			if qi%3 == 0 {
				return nil, false // no information: examine everything
			}
			var keep []int
			for ti := range targets {
				if (ti+qi)%2 == 0 {
					keep = append(keep, ti)
				}
			}
			return keep, true
		}
		batch := SearchBatch(sc.queries, sc.targets, opt)
		for i, bq := range sc.queries {
			solo := Search(bq.Q, bq.QI, sc.targets, opt)
			if !reflect.DeepEqual(batch[i], solo) {
				t.Fatalf("trial %d: prefiltered batch query %d diverges:\nbatch: %+v\nsolo:  %+v",
					trial, i, batch[i], solo)
			}
		}
	}
}

// fakeView adapts a target slice plus a canned narrowing to the View
// interface for SearchViewBatch testing.
type fakeView struct {
	targets []*sim.Exe
	cand    func(q *sim.Exe, qi int) ([]int, bool)
}

func (v fakeView) Targets() []*sim.Exe { return v.targets }
func (v fakeView) Candidates(q *sim.Exe, qi int) ([]int, bool) {
	return v.cand(q, qi)
}

// TestSearchViewBatchMatchesSearchView: the batched view entry point
// must agree with per-query SearchView over the same view.
func TestSearchViewBatchMatchesSearchView(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		sc := newRandBatchScenario(rng)
		v := fakeView{targets: sc.targets, cand: func(q *sim.Exe, qi int) ([]int, bool) {
			if qi%2 == 1 {
				return nil, false
			}
			var keep []int
			for ti := range sc.targets {
				if ti%2 == qi%4/2 {
					keep = append(keep, ti)
				}
			}
			return keep, true
		}}
		opt := &SearchOptions{MinScore: 1, MinRatio: 0.05, MarkerMinOverlap: -1}
		batch := SearchViewBatch(sc.queries, v, opt)
		for i, bq := range sc.queries {
			solo := SearchView(bq.Q, bq.QI, v, opt)
			if !reflect.DeepEqual(batch[i], solo) {
				t.Fatalf("trial %d: SearchViewBatch query %d diverges from SearchView:\nbatch: %+v\nsolo:  %+v",
					trial, i, batch[i], solo)
			}
		}
		if opt.Prefilter != nil {
			t.Fatal("SearchViewBatch mutated the caller's options")
		}
	}
}
