package core

import (
	"math/rand"
	"reflect"
	"testing"

	"firmup/internal/corpusindex"
	"firmup/internal/sim"
)

// randProcs generates n procedures with random strand sets drawn from a
// universe of the given size (the generator the termination tests use).
func randProcs(rng *rand.Rand, name string, n, universe, maxStrands int) []*sim.Proc {
	var out []*sim.Proc
	for i := 0; i < n; i++ {
		seen := map[uint64]bool{}
		var hs []uint64
		for k := 0; k < 1+rng.Intn(maxStrands); k++ {
			h := uint64(1 + rng.Intn(universe))
			if !seen[h] {
				seen[h] = true
				hs = append(hs, h)
			}
		}
		out = append(out, mkProc(name+string(rune('a'+i%26)), hs...))
	}
	return out
}

// assertGameEquiv runs both engines on the same game and requires the
// full Result — target, score, steps, reason, matched pairs and trace —
// to be deep-equal.
func assertGameEquiv(t *testing.T, trial int, q *sim.Exe, qi int, tt *sim.Exe, opt *Options) {
	t.Helper()
	memo := Match(q, qi, tt, opt)
	ref := MatchReference(q, qi, tt, opt)
	if !reflect.DeepEqual(memo, ref) {
		t.Fatalf("trial %d: memoized game diverges from reference:\nmemo: %+v\nref:  %+v",
			trial, memo, ref)
	}
}

// TestMemoizationEquivalenceRandomized: the memoized engine must be
// byte-identical to the reference on randomized corpora, with the
// session-less hash-map index.
func TestMemoizationEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	opt := &Options{RecordTrace: true}
	for trial := 0; trial < 300; trial++ {
		nq := 2 + rng.Intn(14)
		nt := 2 + rng.Intn(14)
		universe := 1 + rng.Intn(24)
		q := sim.FromProcs("Q", randProcs(rng, "q", nq, universe, 8))
		tt := sim.FromProcs("T", randProcs(rng, "t", nt, universe, 8))
		assertGameEquiv(t, trial, q, qi(rng, nq), tt, opt)
	}
}

// TestMemoizationEquivalenceSession is the same property under an
// analyzer session: both executables interned, so SimAll takes the
// CSR posting-list path instead of the hash map.
func TestMemoizationEquivalenceSession(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	opt := &Options{RecordTrace: true}
	for trial := 0; trial < 300; trial++ {
		it := corpusindex.NewInterner()
		nq := 2 + rng.Intn(14)
		nt := 2 + rng.Intn(14)
		universe := 1 + rng.Intn(24)
		q := sim.FromProcsSession("Q", randProcs(rng, "q", nq, universe, 8), it)
		tt := sim.FromProcsSession("T", randProcs(rng, "t", nt, universe, 8), it)
		assertGameEquiv(t, trial, q, qi(rng, nq), tt, opt)
	}
}

// TestMemoizationEquivalenceTightLimits stresses the top-k truncation:
// tiny MaxMatches/MaxSteps bounds with dense overlap force revisits and
// exclusion-heavy scans near the k boundary.
func TestMemoizationEquivalenceTightLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		opt := &Options{
			MaxSteps:    1 + rng.Intn(8),
			MaxMatches:  1 + rng.Intn(4),
			RecordTrace: true,
		}
		n := 4 + rng.Intn(10)
		universe := 1 + rng.Intn(6) // dense overlap: nearly everything collides
		q := sim.FromProcs("Q", randProcs(rng, "q", n, universe, 5))
		tt := sim.FromProcs("T", randProcs(rng, "t", n, universe, 5))
		assertGameEquiv(t, trial, q, qi(rng, n), tt, opt)
	}
}

func qi(rng *rand.Rand, n int) int { return rng.Intn(n) }

// TestMatcherFallbackReaccumulates exercises the truncated-list escape
// hatch directly: with k smaller than the exclusion set the sorted list
// can be exhausted, and the matcher must re-accumulate and still agree
// with a full BestMatch scan.
func TestMatcherFallbackReaccumulates(t *testing.T) {
	q := sim.FromProcs("Q", []*sim.Proc{mkProc("q1", 1, 2, 3, 4)})
	tt := sim.FromProcs("T", []*sim.Proc{
		mkProc("t1", 1, 2, 3, 4), // Sim 4
		mkProc("t2", 1, 2, 3),    // Sim 3
		mkProc("t3", 1, 2),       // Sim 2
		mkProc("t4", 1),          // Sim 1
	})
	m := newMatcher(q, tt, 2, nil) // memoize only the top 2 of 4 candidates
	defer m.release()
	excluded := map[int]int{0: 0, 1: 0} // kill the whole memoized list
	gotP, gotS := m.bestInT(0, excluded)
	wantP, wantS := tt.BestMatch(q.Procs[0].Set, func(i int) bool { _, ok := excluded[i]; return ok })
	if gotP != wantP || gotS != wantS {
		t.Fatalf("fallback pick = (%d, %d), want BestMatch's (%d, %d)", gotP, gotS, wantP, wantS)
	}
	if sp := m.qt[0]; sp.n != 2 || sp.full {
		t.Fatalf("memoized list should be truncated at k=2: %+v", sp)
	}
	// And with no exclusions the memoized list answers without fallback.
	if p, s := m.bestInT(0, nil); p != 0 || s != 4 {
		t.Fatalf("memoized pick = (%d, %d), want (0, 4)", p, s)
	}
}

// TestMatcherReuseAcrossGames: a pooled matcher recycled between games
// with different executables must not leak memoized state.
func TestMatcherReuseAcrossGames(t *testing.T) {
	qa := sim.FromProcs("QA", []*sim.Proc{mkProc("q1", 1, 2, 3)})
	ta := sim.FromProcs("TA", []*sim.Proc{mkProc("t1", 1, 2, 3), mkProc("t2", 9, 10)})
	qb := sim.FromProcs("QB", []*sim.Proc{mkProc("q1", 9, 10)})
	tb := sim.FromProcs("TB", []*sim.Proc{mkProc("t1", 1, 2, 3), mkProc("t2", 9, 10)})
	for i := 0; i < 50; i++ {
		ra := Match(qa, 0, ta, nil)
		if ra.Target != 0 || ra.Score != 3 {
			t.Fatalf("iter %d: game A target=%d score=%d", i, ra.Target, ra.Score)
		}
		rb := Match(qb, 0, tb, nil)
		if rb.Target != 1 || rb.Score != 2 {
			t.Fatalf("iter %d: game B target=%d score=%d", i, rb.Target, rb.Score)
		}
	}
}

// The interned fast path must agree with the reference under a shared
// session even when only one side's sets are re-attached from elsewhere
// (hash fallback inside a session).
func TestMemoizationEquivalenceMixedInterning(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	opt := &Options{RecordTrace: true}
	for trial := 0; trial < 150; trial++ {
		it := corpusindex.NewInterner()
		n := 3 + rng.Intn(8)
		universe := 2 + rng.Intn(12)
		// Target interned under the session, query not: SimAll must take
		// the hash-map fallback inside the memoizer too.
		q := sim.FromProcs("Q", randProcs(rng, "q", n, universe, 6))
		tt := sim.FromProcsSession("T", randProcs(rng, "t", n, universe, 6), it)
		assertGameEquiv(t, trial, q, qi(rng, n), tt, opt)
	}
}
