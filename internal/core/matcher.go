package core

import (
	"sync"

	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// picker answers the game's two directed best-match queries. The
// memoized matcher and the reference engine implement it; runGame is
// written once against it, so the equivalence tests compare exactly the
// memoization, not two divergent game skeletons. The exclusion set is
// the game's live matched map for the scanned side — passing the map
// itself (rather than a closure over it) keeps the game loop free of
// per-game closure allocations.
type picker interface {
	// bestInT finds the best procedure of T for Q's procedure qi among
	// those not in excluded, under BestMatch's tie-break.
	bestInT(qi int, excluded map[int]int) (int, int)
	// bestInQ is the reverse direction.
	bestInQ(ti int, excluded map[int]int) (int, int)
}

// refPicker is the unmemoized reference: every query re-runs a full
// SimAll accumulation with a fresh buffer, as the engine did before the
// matcher existed. It backs MatchReference.
type refPicker struct{ q, t *sim.Exe }

func (p refPicker) bestInT(qi int, excluded map[int]int) (int, int) {
	return p.t.BestMatch(p.q.Procs[qi].Set, func(i int) bool { _, ok := excluded[i]; return ok })
}

func (p refPicker) bestInQ(ti int, excluded map[int]int) (int, int) {
	return p.q.BestMatch(p.t.Procs[ti].Set, func(i int) bool { _, ok := excluded[i]; return ok })
}

// cand is one memoized candidate: a procedure index and its Sim score.
type cand struct {
	proc  int32
	score int32
}

// span locates one procedure's candidate list inside the matcher's slab.
// n < 0 marks a vector not yet computed; full marks a list that holds
// every positive-Sim candidate (no truncation at k).
type span struct {
	off, n int32
	full   bool
}

// matcher is the memoization layer between the back-and-forth game and
// sim.Exe. Each game step runs up to two best-match queries, and the same
// procedure is frequently re-queried after the exclusion set grew — yet
// its full similarity vector never changes: BestMatch applies the
// exclusion filter at scan time, so the accumulation is
// exclusion-independent. The matcher therefore computes each procedure's
// vector once, keeps only its k best candidates as a sorted list (score
// descending, index ascending — exactly BestMatch's order), and answers
// every revisit by scanning that list for the first non-excluded entry:
// O(matched) instead of O(procs).
//
// k is the game's MaxMatches bound. The game refuses to run a step once
// MaxMatches pairs are committed, so at most MaxMatches-1 procedures per
// side are ever excluded when a query runs; a k-entry prefix of the full
// ranking therefore always contains the best non-excluded candidate.
// Lists shorter than k are complete (every positive-Sim candidate is
// present) and marked full. The truncated-and-exhausted case cannot arise
// under that invariant, but a re-accumulation fallback keeps the matcher
// correct for any caller regardless.
//
// Matchers, their count buffers and their candidate slabs are drawn from
// a package-level sync.Pool, so the games of one core.Search (and of
// every concurrent search in the process) recycle the same arenas and the
// hot path allocates nothing after warm-up.
type matcher struct {
	q, t *sim.Exe
	k    int

	qt   []span // q procedure index → candidate list in t
	tq   []span // t procedure index → candidate list in q
	slab []cand // backing store for all candidate lists of this game

	buf  sim.Buffers // accumulation scratch, grown to max(|q.Procs|, |t.Procs|)
	heap []cand      // bounded-selection scratch, cap ≥ k

	// telemetry handles, reset per game (matchers are pooled); nil-safe.
	telHits   *telemetry.Counter
	telMisses *telemetry.Counter
}

var matcherPool = sync.Pool{New: func() any { return new(matcher) }}

// newMatcher draws a matcher from the arena pool and readies it for one
// game with a MaxMatches bound of k, recording reuse metrics into tel
// (which may be nil).
func newMatcher(q, t *sim.Exe, k int, tel *Telemetry) *matcher {
	m := matcherPool.Get().(*matcher)
	m.q, m.t, m.k = q, t, k
	m.qt = resetSpans(m.qt, len(q.Procs))
	m.tq = resetSpans(m.tq, len(t.Procs))
	m.slab = m.slab[:0]
	m.buf.Grow(max(len(q.Procs), len(t.Procs)))
	m.telHits, m.telMisses = nil, nil
	if tel != nil {
		m.telHits, m.telMisses = tel.MatcherHits, tel.MatcherMisses
	}
	return m
}

// release returns the matcher (and its arenas) to the pool.
func (m *matcher) release() {
	m.q, m.t = nil, nil
	matcherPool.Put(m)
}

// resetSpans grows sp to n entries and marks every entry uncomputed.
func resetSpans(sp []span, n int) []span {
	if cap(sp) < n {
		sp = make([]span, n)
	} else {
		sp = sp[:n]
	}
	for i := range sp {
		sp[i] = span{n: -1}
	}
	return sp
}

func (m *matcher) bestInT(qi int, excluded map[int]int) (int, int) {
	return m.best(m.t, m.q.Procs[qi].Set, &m.qt[qi], excluded)
}

func (m *matcher) bestInQ(ti int, excluded map[int]int) (int, int) {
	return m.best(m.q, m.t.Procs[ti].Set, &m.tq[ti], excluded)
}

// best answers one directed query from the memoized candidate list,
// computing it on first touch. The list is sorted by (score descending,
// index ascending), so the first non-excluded entry is exactly what a
// full BestMatch scan would return.
func (m *matcher) best(e *sim.Exe, set strand.Set, sp *span, excluded map[int]int) (int, int) {
	if sp.n < 0 {
		m.telMisses.Inc()
		m.memoize(e, set, sp)
	} else {
		m.telHits.Inc()
	}
	for _, c := range m.slab[sp.off : sp.off+int32(sp.n)] {
		if _, ok := excluded[int(c.proc)]; ok {
			continue
		}
		return int(c.proc), int(c.score)
	}
	if sp.full {
		// The complete candidate set is excluded (or empty): a full scan
		// would find nothing either.
		return -1, 0
	}
	// Truncated list exhausted by exclusions. Unreachable while
	// k ≥ MaxMatches (see the matcher doc), but re-accumulating keeps the
	// matcher correct under any configuration.
	counts := e.SimAllBuf(set, &m.buf)
	return e.BestMatchFrom(counts, func(i int) bool { _, ok := excluded[i]; return ok })
}

// memoize accumulates the full similarity vector for set over e and
// stores its k best candidates in the slab.
func (m *matcher) memoize(e *sim.Exe, set strand.Set, sp *span) {
	counts := e.SimAllBuf(set, &m.buf)
	h := m.heap[:0]
	positive := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		positive++
		nc := cand{proc: int32(i), score: int32(c)}
		if len(h) < m.k {
			h = append(h, nc)
			candSiftUp(h)
		} else if candWorse(h[0], nc) {
			h[0] = nc
			candSiftDown(h, 0, len(h))
		}
	}
	// Heapsort into (score descending, index ascending) order: each step
	// moves the worst remaining candidate to the shrinking tail.
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		candSiftDown(h, 0, n)
	}
	sp.off = int32(len(m.slab))
	sp.n = int32(len(h))
	sp.full = positive == len(h)
	m.slab = append(m.slab, h...)
	m.heap = h[:0]
}

// candWorse reports whether a ranks strictly below b in candidate order
// (score descending, index ascending on ties). The selection heap is a
// min-heap under this order: its root is the worst kept candidate.
func candWorse(a, b cand) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.proc > b.proc
}

func candSiftUp(h []cand) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candWorse(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func candSiftDown(h []cand, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && candWorse(h[r], h[l]) {
			j = r
		}
		if !candWorse(h[j], h[i]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// gameState is the per-game bookkeeping (partial matching, work stack),
// pooled so the search hot path does not rebuild four containers per
// game.
type gameState struct {
	matchedQ, matchedT map[int]int
	inStack            map[item]bool
	stack              []item
}

var statePool = sync.Pool{New: func() any {
	return &gameState{
		matchedQ: map[int]int{},
		matchedT: map[int]int{},
		inStack:  map[item]bool{},
	}
}}

func newGameState() *gameState {
	s := statePool.Get().(*gameState)
	clear(s.matchedQ)
	clear(s.matchedT)
	clear(s.inStack)
	s.stack = s.stack[:0]
	return s
}

func (s *gameState) release() { statePool.Put(s) }

// push adds a work item unless it is already pending.
func (s *gameState) push(it item) bool {
	if s.inStack[it] {
		return false
	}
	s.inStack[it] = true
	s.stack = append(s.stack, it)
	return true
}

// pop removes the top work item.
func (s *gameState) pop() {
	top := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	delete(s.inStack, top)
}
