package core

import (
	"sort"
	"sync"

	"firmup/internal/sim"
)

// BatchQuery identifies one query procedure of a batched search pass:
// procedure QI of the query executable Q.
type BatchQuery struct {
	Q  *sim.Exe
	QI int
}

// MatchBatch plays the game for several procedures of one query
// executable against a single target through one shared matcher. The
// matcher's memoized similarity vectors are exclusion-independent (see
// the matcher doc), so candidate lists computed for one game answer
// every later game of the batch; per-game state (partial matching, work
// stack, trace) is fresh for each entry. Every Result — target, score,
// steps, matched pairs, end reason and trace — is byte-identical to an
// independent Match call for the same (qi, target) pair, in any batch
// composition or order; the equivalence tests enforce it.
func MatchBatch(q *sim.Exe, qis []int, t *sim.Exe, opt *Options) []Result {
	out := make([]Result, len(qis))
	m := newMatcher(q, t, opt.maxMatches(), opt.tel())
	for i, qi := range qis {
		out[i] = runShared(q, qi, t, opt, m)
	}
	m.release()
	return out
}

// runShared plays one game through a caller-managed matcher with fresh
// pooled game state, recording the same per-game telemetry Match does.
func runShared(q *sim.Exe, qi int, t *sim.Exe, opt *Options, m *matcher) Result {
	st := newGameState()
	res := runGame(q, qi, t, opt, m, st)
	st.release()
	if tel := opt.tel(); tel != nil {
		tel.Games.Inc()
		tel.Steps.Observe(int64(res.Steps))
	}
	return res
}

// SearchBatch runs Search for every query against the same target set
// in one batched game-engine pass. Each target executable is visited
// once: all batch queries whose prefilter kept it play their games
// back-to-back, and queries from the same query executable share one
// matcher, so similarity vectors accumulated for one query answer the
// rest (near-linear throughput in queries-per-target on serve and
// sweep workloads).
//
// The results are positionally aligned with queries and byte-identical
// to running Search once per query: same findings, same examined
// counts, same step histograms, regardless of batch composition or
// query order. Per-query state — game state, findings, histograms — is
// never shared; only the exclusion-independent matcher caches and
// pooled arenas are.
func SearchBatch(queries []BatchQuery, targets []*sim.Exe, opt *SearchOptions) []SearchResult {
	tel := opt.game().tel()
	sp := opt.traceStart("core.search_batch")
	if tel != nil {
		tel.BatchSearches.Inc()
	}
	out := make([]SearchResult, len(queries))

	// Group query indices by query executable (first-appearance order)
	// so each per-target pass sees same-executable queries contiguously
	// and shares one matcher across them.
	groups := map[*sim.Exe][]int{}
	var exes []*sim.Exe
	for qx, bq := range queries {
		if _, ok := groups[bq.Q]; !ok {
			exes = append(exes, bq.Q)
		}
		groups[bq.Q] = append(groups[bq.Q], qx)
	}

	// Per-query candidate narrowing, exactly as the sequential path
	// computes it, inverted into per-target query lists.
	perTarget := make([][]int, len(targets))
	for _, e := range exes {
		for _, qx := range groups[e] {
			bq := queries[qx]
			cand := candidateIndices(bq.Q, bq.QI, targets, opt)
			if tel != nil {
				tel.Searches.Inc()
				tel.PrefilterKept.Add(int64(len(cand)))
				tel.PrefilterSkipped.Add(int64(len(targets) - len(cand)))
			}
			out[qx] = SearchResult{StepsHistogram: map[int]int{}, Examined: len(cand)}
			for _, ti := range cand {
				perTarget[ti] = append(perTarget[ti], qx)
			}
		}
	}

	// findings[qx][ti] / steps[qx][ti] mirror the sequential Search's
	// per-target result slots, so assembly below is order-identical.
	findings := make([][]*Finding, len(queries))
	steps := make([][]int, len(queries))
	for qx := range queries {
		findings[qx] = make([]*Finding, len(targets))
		steps[qx] = make([]int, len(targets))
	}
	var work []int
	for ti, qxs := range perTarget {
		if len(qxs) > 0 {
			work = append(work, ti)
		}
	}
	workers := opt.workers()
	if workers > len(work) {
		workers = len(work)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				runTargetPass(queries, targets[ti], ti, perTarget[ti], opt, findings, steps)
			}
		}()
	}
	for _, ti := range work {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()

	for qx := range queries {
		res := &out[qx]
		for ti, f := range findings[qx] {
			if f == nil {
				continue
			}
			res.Findings = append(res.Findings, *f)
			res.StepsHistogram[steps[qx][ti]]++
			if tel != nil {
				tel.AcceptedSteps.Observe(int64(steps[qx][ti]))
			}
		}
		sort.Slice(res.Findings, func(i, j int) bool { return res.Findings[i].ExePath < res.Findings[j].ExePath })
	}
	if sp.Active() {
		var examined, nFindings, gameSteps int64
		for qx := range out {
			examined += int64(out[qx].Examined)
			nFindings += int64(len(out[qx].Findings))
			for _, s := range steps[qx] {
				gameSteps += int64(s)
			}
		}
		sp.SetAttr("queries", int64(len(queries)))
		sp.SetAttr("targets", int64(len(targets)))
		sp.SetAttr("examined", examined)
		sp.SetAttr("findings", nFindings)
		sp.SetAttr("game_steps", gameSteps)
		sp.End()
	}
	return out
}

// runTargetPass plays every batch query aimed at one target. Queries
// from the same query executable (contiguous in qxs by construction)
// run through one matcher, so the similarity vectors and candidate
// lists the first game memoizes answer the rest; game state, steps and
// findings stay per-query.
func runTargetPass(queries []BatchQuery, t *sim.Exe, ti int, qxs []int, opt *SearchOptions, findings [][]*Finding, steps [][]int) {
	tel := opt.game().tel()
	if tel != nil {
		tel.BatchQueriesPerTarget.Observe(int64(len(qxs)))
	}
	for i := 0; i < len(qxs); {
		q := queries[qxs[i]].Q
		m := newMatcher(q, t, opt.game().maxMatches(), tel)
		j := i
		for ; j < len(qxs) && queries[qxs[j]].Q == q; j++ {
			qx := qxs[j]
			r := runShared(q, queries[qx].QI, t, opt.game(), m)
			steps[qx][ti] = r.Steps
			findings[qx][ti] = accept(q, queries[qx].QI, t, r, opt)
			if tel != nil && j > i {
				tel.BatchSharedGames.Inc()
			}
		}
		m.release()
		i = j
	}
}

// SearchViewBatch runs SearchBatch against a read-only corpus view,
// installing the view's candidate narrowing as the prefilter — the
// batched analogue of SearchView. The caller's options are not mutated.
func SearchViewBatch(queries []BatchQuery, v View, opt *SearchOptions) []SearchResult {
	var o SearchOptions
	if opt != nil {
		o = *opt
	}
	o.Prefilter = func(q *sim.Exe, qi int, _ []*sim.Exe) ([]int, bool) {
		return v.Candidates(q, qi)
	}
	return SearchBatch(queries, v.Targets(), &o)
}
