// Package core implements the paper's primary contribution: establishing
// a partial correspondence between the procedures of a query executable
// and a target executable through a back-and-forth game (Algorithm 2),
// and the search engine that applies it across firmware images.
//
// Pairwise similarity alone picks the target procedure with the highest
// Sim score — a local maximum that large unrelated procedures often win.
// The game corrects such mismatches: a locally-best match is kept only if
// the reverse search agrees; otherwise the contested procedures are
// pushed onto the work stack and matched first, building exactly the
// partial matching (containing the query procedure) that Eq. 1 of the
// paper specifies. No full bipartite matching is ever computed.
package core

import (
	"fmt"

	"firmup/internal/sim"
	"firmup/internal/telemetry"
)

// Telemetry is the optional handle set the game engine records against;
// a nil pointer (and any nil field) disables the corresponding metric.
// Game outcomes are identical with and without it.
type Telemetry struct {
	// Games counts games played (Match and MatchReference calls).
	Games *telemetry.Counter
	// Steps observes the step count of every game, accepted or not.
	Steps *telemetry.Histogram
	// AcceptedSteps observes the step count of games whose finding
	// cleared the acceptance thresholds — the paper's Fig. 9 population.
	AcceptedSteps *telemetry.Histogram
	// MatcherHits and MatcherMisses count memoized candidate-list reuse
	// versus first-touch similarity accumulations inside the matcher.
	MatcherHits   *telemetry.Counter
	MatcherMisses *telemetry.Counter
	// Searches counts Search calls.
	Searches *telemetry.Counter
	// PrefilterKept and PrefilterSkipped count target executables the
	// search prefilter retained versus soundly pruned.
	PrefilterKept    *telemetry.Counter
	PrefilterSkipped *telemetry.Counter
	// BatchSearches counts SearchBatch passes; BatchSharedGames counts
	// games answered through a matcher already warmed by an earlier
	// query of the same target pass — the cross-query similarity-vector
	// reuse the batch engine exists for.
	BatchSearches    *telemetry.Counter
	BatchSharedGames *telemetry.Counter
	// BatchQueriesPerTarget observes, for every target a batched pass
	// examines, how many of the batch's queries shared that pass.
	BatchQueriesPerTarget *telemetry.Histogram
}

// side distinguishes the two executables in the game.
type side uint8

const (
	sideQ side = iota
	sideT
)

// item is one stack entry: a procedure awaiting a consistent match.
type item struct {
	side side
	idx  int
}

// EndReason explains why the game stopped.
type EndReason uint8

// Game end reasons.
const (
	EndMatched     EndReason = iota // the query procedure was matched
	EndNoCandidate                  // no target shares a single strand with some frontier procedure
	EndStuck                        // the stack reached a fixed state
	EndStepLimit                    // heuristic step cap
	EndMatchLimit                   // heuristic matched-pair cap
)

func (r EndReason) String() string {
	switch r {
	case EndMatched:
		return "matched"
	case EndNoCandidate:
		return "no-candidate"
	case EndStuck:
		return "stuck"
	case EndStepLimit:
		return "step-limit"
	default:
		return "match-limit"
	}
}

// MarshalText encodes the reason as its String form, so JSON traces
// carry "matched" rather than an opaque ordinal.
func (r EndReason) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText decodes the String form.
func (r *EndReason) UnmarshalText(text []byte) error {
	for c := EndMatched; c <= EndMatchLimit; c++ {
		if c.String() == string(text) {
			*r = c
			return nil
		}
	}
	return fmt.Errorf("core: unknown end reason %q", text)
}

// TraceStep records one player/rival exchange for game-course reporting
// (Table 1 of the paper).
type TraceStep struct {
	Actor   string `json:"actor"` // "player" or "rival"
	Text    string `json:"text"`
	Matches string `json:"matches"`
}

// Result is the outcome of one game.
type Result struct {
	// Target is the index of the procedure matched to the query in the
	// target executable, or -1.
	Target int `json:"target"`
	// Score is Sim(query, Target).
	Score int `json:"score"`
	// Steps counts game iterations (1 = the first pick already agreed).
	Steps int `json:"steps"`
	// MatchedPairs is the partial matching built along the way,
	// including the query pair when matched.
	MatchedPairs [][2]int    `json:"matched_pairs,omitempty"`
	Reason       EndReason   `json:"reason"`
	Trace        []TraceStep `json:"trace,omitempty"`
}

// addTrace appends one game-course entry.
func (r *Result) addTrace(actor, text string, pairs int) {
	r.Trace = append(r.Trace, TraceStep{
		Actor:   actor,
		Text:    text,
		Matches: fmt.Sprintf("%d pairs", pairs),
	})
}

// Options bound the game per the paper's heuristics.
type Options struct {
	// MaxSteps caps game iterations (the paper observes up to 32 steps;
	// default 64).
	MaxSteps int
	// MaxMatches caps the size of the partial matching (default 64).
	MaxMatches int
	// RecordTrace captures a human-readable game course.
	RecordTrace bool
	// Tel, when non-nil, records engine metrics. It never changes game
	// outcomes.
	Tel *Telemetry
}

func (o *Options) maxSteps() int {
	if o == nil || o.MaxSteps <= 0 {
		return 64
	}
	return o.MaxSteps
}

func (o *Options) maxMatches() int {
	if o == nil || o.MaxMatches <= 0 {
		return 64
	}
	return o.MaxMatches
}

func (o *Options) trace() bool { return o != nil && o.RecordTrace }

func (o *Options) tel() *Telemetry {
	if o == nil {
		return nil
	}
	return o.Tel
}

// Match runs the similarity game to find a consistent match for procedure
// qi of Q inside T.
//
// The engine memoizes: every similarity vector the game queries is
// accumulated once and kept as a sorted top-k candidate list, and all
// scratch state is drawn from pooled arenas shared across games (see
// matcher). The results — findings, scores, steps, matched pairs and
// traces — are identical to MatchReference's, byte for byte; the
// equivalence tests enforce it.
func Match(q *sim.Exe, qi int, t *sim.Exe, opt *Options) Result {
	m := newMatcher(q, t, opt.maxMatches(), opt.tel())
	st := newGameState()
	res := runGame(q, qi, t, opt, m, st)
	st.release()
	m.release()
	if tel := opt.tel(); tel != nil {
		tel.Games.Inc()
		tel.Steps.Observe(int64(res.Steps))
	}
	return res
}

// MatchReference is the unmemoized reference engine: the same game
// skeleton, but every best-match query re-runs a full similarity
// accumulation with fresh buffers. It exists for the memoization
// equivalence tests and the fwbench speedup baseline; search paths
// should use Match.
func MatchReference(q *sim.Exe, qi int, t *sim.Exe, opt *Options) Result {
	res := runGame(q, qi, t, opt, refPicker{q: q, t: t}, &gameState{
		matchedQ: map[int]int{},
		matchedT: map[int]int{},
		inStack:  map[item]bool{},
	})
	if tel := opt.tel(); tel != nil {
		tel.Games.Inc()
		tel.Steps.Observe(int64(res.Steps))
	}
	return res
}

// runGame is the game skeleton, written once against the picker so the
// memoized and reference engines differ in nothing but the similarity
// queries. The body avoids per-game closures and defers trace formatting
// behind opt.trace() so an untraced game allocates only what escapes
// into its Result.
func runGame(q *sim.Exe, qi int, t *sim.Exe, opt *Options, pk picker, st *gameState) Result {
	res := Result{Target: -1}
	matchedQ := st.matchedQ // Q index -> T index
	matchedT := st.matchedT
	trace := opt.trace()

	name := func(s side, i int) string {
		if s == sideQ {
			return q.Procs[i].Name
		}
		return t.Procs[i].Name
	}

	st.push(item{sideQ, qi})
	for {
		if res.Steps >= opt.maxSteps() {
			res.Reason = EndStepLimit
			return res
		}
		if len(matchedQ) >= opt.maxMatches() {
			res.Reason = EndMatchLimit
			return res
		}
		// Drop already-matched entries off the top of the stack.
		for len(st.stack) > 0 {
			top := st.stack[len(st.stack)-1]
			matched := false
			if top.side == sideQ {
				_, matched = matchedQ[top.idx]
			} else {
				_, matched = matchedT[top.idx]
			}
			if !matched {
				break
			}
			st.pop()
		}
		if len(st.stack) == 0 {
			// The query pair must have been committed (it is only popped
			// when matched); report it.
			if ti, ok := matchedQ[qi]; ok {
				res.Target = ti
				res.Score = t.Sim(q.Procs[qi].Set, ti)
				res.Reason = EndMatched
				return res
			}
			res.Reason = EndStuck
			return res
		}
		res.Steps++
		m := st.stack[len(st.stack)-1]

		// Forward: the player's locally-best pick on the other side.
		var forward, fwdScore int
		if m.side == sideQ {
			forward, fwdScore = pk.bestInT(m.idx, matchedT)
		} else {
			forward, fwdScore = pk.bestInQ(m.idx, matchedQ)
		}
		if forward < 0 {
			// Nothing shares a strand with m. If m is the query, the
			// search fails; otherwise drop m and continue.
			st.pop()
			if m.side == sideQ && m.idx == qi {
				res.Reason = EndNoCandidate
				return res
			}
			continue
		}
		if trace {
			res.addTrace("player", fmt.Sprintf("matches %s with %s (Sim=%d)",
				name(m.side, m.idx), name(1-m.side, forward), fwdScore), len(matchedQ))
		}

		// Back: the rival's counter — the best match for forward on m's
		// side.
		var back, backScore int
		if m.side == sideQ {
			back, backScore = pk.bestInQ(forward, matchedQ)
		} else {
			back, backScore = pk.bestInT(forward, matchedT)
		}

		if back == m.idx {
			// Consistent in both directions: commit the pair.
			var qidx, tidx int
			if m.side == sideQ {
				qidx, tidx = m.idx, forward
			} else {
				qidx, tidx = forward, m.idx
			}
			matchedQ[qidx] = tidx
			matchedT[tidx] = qidx
			res.MatchedPairs = append(res.MatchedPairs, [2]int{qidx, tidx})
			st.pop()
			if trace {
				res.addTrace("player", fmt.Sprintf("pair (%s, %s) committed",
					q.Procs[qidx].Name, t.Procs[tidx].Name), len(matchedQ))
			}
			if qidx == qi {
				res.Target = tidx
				res.Score = t.Sim(q.Procs[qi].Set, tidx)
				res.Reason = EndMatched
				return res
			}
			continue
		}
		if trace {
			res.addTrace("rival", fmt.Sprintf("counters: %s prefers %s (Sim=%d > %d)",
				name(1-m.side, forward), name(m.side, back), backScore, fwdScore), len(matchedQ))
		}

		// Inconsistent: the contested procedures must be matched first.
		pushedF := st.push(item{1 - m.side, forward})
		pushedB := back >= 0 && st.push(item{m.side, back})
		if !pushedF && !pushedB {
			// Fixed state: no new work can be created, the game cannot
			// make progress (the paper's non-termination condition).
			res.Reason = EndStuck
			return res
		}
	}
}
