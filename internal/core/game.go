// Package core implements the paper's primary contribution: establishing
// a partial correspondence between the procedures of a query executable
// and a target executable through a back-and-forth game (Algorithm 2),
// and the search engine that applies it across firmware images.
//
// Pairwise similarity alone picks the target procedure with the highest
// Sim score — a local maximum that large unrelated procedures often win.
// The game corrects such mismatches: a locally-best match is kept only if
// the reverse search agrees; otherwise the contested procedures are
// pushed onto the work stack and matched first, building exactly the
// partial matching (containing the query procedure) that Eq. 1 of the
// paper specifies. No full bipartite matching is ever computed.
package core

import (
	"fmt"

	"firmup/internal/sim"
)

// side distinguishes the two executables in the game.
type side uint8

const (
	sideQ side = iota
	sideT
)

// item is one stack entry: a procedure awaiting a consistent match.
type item struct {
	side side
	idx  int
}

// EndReason explains why the game stopped.
type EndReason uint8

// Game end reasons.
const (
	EndMatched     EndReason = iota // the query procedure was matched
	EndNoCandidate                  // no target shares a single strand with some frontier procedure
	EndStuck                        // the stack reached a fixed state
	EndStepLimit                    // heuristic step cap
	EndMatchLimit                   // heuristic matched-pair cap
)

func (r EndReason) String() string {
	switch r {
	case EndMatched:
		return "matched"
	case EndNoCandidate:
		return "no-candidate"
	case EndStuck:
		return "stuck"
	case EndStepLimit:
		return "step-limit"
	default:
		return "match-limit"
	}
}

// TraceStep records one player/rival exchange for game-course reporting
// (Table 1 of the paper).
type TraceStep struct {
	Actor   string // "player" or "rival"
	Text    string
	Matches string
}

// Result is the outcome of one game.
type Result struct {
	// Target is the index of the procedure matched to the query in the
	// target executable, or -1.
	Target int
	// Score is Sim(query, Target).
	Score int
	// Steps counts game iterations (1 = the first pick already agreed).
	Steps int
	// MatchedPairs is the partial matching built along the way,
	// including the query pair when matched.
	MatchedPairs [][2]int
	Reason       EndReason
	Trace        []TraceStep
}

// Options bound the game per the paper's heuristics.
type Options struct {
	// MaxSteps caps game iterations (the paper observes up to 32 steps;
	// default 64).
	MaxSteps int
	// MaxMatches caps the size of the partial matching (default 64).
	MaxMatches int
	// RecordTrace captures a human-readable game course.
	RecordTrace bool
}

func (o *Options) maxSteps() int {
	if o == nil || o.MaxSteps <= 0 {
		return 64
	}
	return o.MaxSteps
}

func (o *Options) maxMatches() int {
	if o == nil || o.MaxMatches <= 0 {
		return 64
	}
	return o.MaxMatches
}

func (o *Options) trace() bool { return o != nil && o.RecordTrace }

// Match runs the similarity game to find a consistent match for procedure
// qi of Q inside T.
func Match(q *sim.Exe, qi int, t *sim.Exe, opt *Options) Result {
	res := Result{Target: -1}
	matchedQ := map[int]int{} // Q index -> T index
	matchedT := map[int]int{}
	inStack := map[item]bool{}
	var stack []item

	push := func(it item) bool {
		if inStack[it] {
			return false
		}
		inStack[it] = true
		stack = append(stack, it)
		return true
	}
	push(item{sideQ, qi})

	name := func(s side, i int) string {
		if s == sideQ {
			return q.Procs[i].Name
		}
		return t.Procs[i].Name
	}
	tracef := func(actor, format string, args ...any) {
		if !opt.trace() {
			return
		}
		res.Trace = append(res.Trace, TraceStep{
			Actor:   actor,
			Text:    fmt.Sprintf(format, args...),
			Matches: fmt.Sprintf("%d pairs", len(matchedQ)),
		})
	}

	for {
		if res.Steps >= opt.maxSteps() {
			res.Reason = EndStepLimit
			return res
		}
		if len(matchedQ) >= opt.maxMatches() {
			res.Reason = EndMatchLimit
			return res
		}
		// Drop already-matched entries off the top of the stack.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			matched := false
			if top.side == sideQ {
				_, matched = matchedQ[top.idx]
			} else {
				_, matched = matchedT[top.idx]
			}
			if !matched {
				break
			}
			stack = stack[:len(stack)-1]
			delete(inStack, top)
		}
		if len(stack) == 0 {
			// The query pair must have been committed (it is only popped
			// when matched); report it.
			if ti, ok := matchedQ[qi]; ok {
				res.Target = ti
				res.Score = t.Sim(q.Procs[qi].Set, ti)
				res.Reason = EndMatched
				return res
			}
			res.Reason = EndStuck
			return res
		}
		res.Steps++
		m := stack[len(stack)-1]

		// Forward: the player's locally-best pick on the other side.
		var forward, fwdScore int
		if m.side == sideQ {
			forward, fwdScore = t.BestMatch(q.Procs[m.idx].Set, func(i int) bool { _, ok := matchedT[i]; return ok })
		} else {
			forward, fwdScore = q.BestMatch(t.Procs[m.idx].Set, func(i int) bool { _, ok := matchedQ[i]; return ok })
		}
		if forward < 0 {
			// Nothing shares a strand with m. If m is the query, the
			// search fails; otherwise drop m and continue.
			stack = stack[:len(stack)-1]
			delete(inStack, m)
			if m.side == sideQ && m.idx == qi {
				res.Reason = EndNoCandidate
				return res
			}
			continue
		}
		tracef("player", "matches %s with %s (Sim=%d)", name(m.side, m.idx), name(1-m.side, forward), fwdScore)

		// Back: the rival's counter — the best match for forward on m's
		// side.
		var back, backScore int
		if m.side == sideQ {
			back, backScore = q.BestMatch(t.Procs[forward].Set, func(i int) bool { _, ok := matchedQ[i]; return ok })
		} else {
			back, backScore = t.BestMatch(q.Procs[forward].Set, func(i int) bool { _, ok := matchedT[i]; return ok })
		}

		if back == m.idx {
			// Consistent in both directions: commit the pair.
			var qidx, tidx int
			if m.side == sideQ {
				qidx, tidx = m.idx, forward
			} else {
				qidx, tidx = forward, m.idx
			}
			matchedQ[qidx] = tidx
			matchedT[tidx] = qidx
			res.MatchedPairs = append(res.MatchedPairs, [2]int{qidx, tidx})
			stack = stack[:len(stack)-1]
			delete(inStack, m)
			tracef("player", "pair (%s, %s) committed", q.Procs[qidx].Name, t.Procs[tidx].Name)
			if qidx == qi {
				res.Target = tidx
				res.Score = t.Sim(q.Procs[qi].Set, tidx)
				res.Reason = EndMatched
				return res
			}
			continue
		}
		tracef("rival", "counters: %s prefers %s (Sim=%d > %d)",
			name(1-m.side, forward), name(m.side, back), backScore, fwdScore)

		// Inconsistent: the contested procedures must be matched first.
		pushedF := push(item{1 - m.side, forward})
		pushedB := back >= 0 && push(item{m.side, back})
		if !pushedF && !pushedB {
			// Fixed state: no new work can be created, the game cannot
			// make progress (the paper's non-termination condition).
			res.Reason = EndStuck
			return res
		}
	}
}
