package core

import (
	"runtime"
	"sort"
	"sync"

	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// Finding is one positive detection: the query procedure appears to be
// present in a target executable.
type Finding struct {
	ExePath string
	// ProcIndex / ProcName identify the matched target procedure.
	ProcIndex int
	ProcName  string
	ProcAddr  uint32
	Score     int
	// Ratio is Score over the query's strand count — the containment
	// confidence the acceptance threshold is applied to.
	Ratio float64
	Steps int
}

// SearchOptions configure an executable-set search.
type SearchOptions struct {
	Game Options
	// MinScore is the minimum absolute number of shared strands for a
	// match to count as a detection (default 3).
	MinScore int
	// MinRatio is the minimum Score/|Strands(q)| (default 0.25).
	MinRatio float64
	// MarkerMinOverlap is the confirmation threshold: the fraction of
	// the query procedure's constant markers that the matched procedure
	// must exhibit (the automated analog of the paper's semi-manual
	// confirmation through string constants and global-memory markers).
	// 0 selects the default 0.3; set negative to disable.
	MarkerMinOverlap float64
	// Weigher, when set, assigns a statistical significance to each
	// strand hash (e.g. inverse document frequency over a sample of
	// procedures in the wild). The acceptance ratio then becomes the
	// weighted fraction of the query's strands that are shared, so that
	// common computations shared among non-similar code do not produce
	// spurious detections — the statistical framework the paper adopts.
	Weigher func(hash uint64) float64
	// Workers bounds the parallel target workers (default GOMAXPROCS).
	Workers int
	// Trace, when set, records a request-scoped span for this search
	// ("core.search" / "core.search_batch") with aggregate attributes —
	// targets, examined, findings, summed game steps — parented under
	// TraceParent. Purely observational: results are identical with and
	// without it, and a nil Trace costs nothing.
	Trace *telemetry.Trace
	// TraceParent is the span ID the search span attaches under (0 =
	// trace root).
	TraceParent telemetry.SpanID
	// Prefilter, when set, narrows the target set before any game is
	// played: it returns the indices of the targets worth examining, or
	// ok=false when it has no information (every target is then
	// examined, preserving the exhaustive semantics). The contract is
	// soundness: a prefilter may only omit targets that provably cannot
	// produce an accepted finding (e.g. their best per-procedure Sim is
	// already below MinScore), so findings and the steps histogram are
	// identical with and without it — only Examined shrinks.
	Prefilter func(q *sim.Exe, qi int, targets []*sim.Exe) (candidates []int, ok bool)
}

func (o *SearchOptions) minScore() int {
	if o == nil || o.MinScore <= 0 {
		return 3
	}
	return o.MinScore
}

func (o *SearchOptions) markerMinOverlap() float64 {
	if o == nil || o.MarkerMinOverlap == 0 {
		return 0.3
	}
	if o.MarkerMinOverlap < 0 {
		return 0
	}
	return o.MarkerMinOverlap
}

func (o *SearchOptions) minRatio() float64 {
	if o == nil || o.MinRatio <= 0 {
		return 0.25
	}
	return o.MinRatio
}

func (o *SearchOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *SearchOptions) game() *Options {
	if o == nil {
		return nil
	}
	return &o.Game
}

// traceStart opens a span on the search's trace under TraceParent;
// inert (and allocation-free) when no trace is attached.
func (o *SearchOptions) traceStart(name string) telemetry.SpanRef {
	if o == nil || o.Trace == nil {
		return telemetry.SpanRef{}
	}
	return o.Trace.Start(name, o.TraceParent)
}

// SearchResult pairs per-target outcomes with aggregate accounting.
type SearchResult struct {
	Findings []Finding
	// StepsHistogram counts accepted matches by game steps needed
	// (Fig. 9 of the paper).
	StepsHistogram map[int]int
	// Examined is the number of target executables searched.
	Examined int
}

// Search runs the game for the query procedure against every candidate
// target executable in parallel, applying the acceptance threshold.
// Without a prefilter (or when it reports no information) every target
// is a candidate.
//
// Every game runs through the memoizing matcher: the similarity vectors
// a game queries are accumulated once each, and all count buffers,
// candidate slabs and game state are recycled through pooled arenas
// shared by the search's workers (and any concurrent searches), so a
// steady-state search allocates per game only what escapes into its
// Result.
func Search(q *sim.Exe, qi int, targets []*sim.Exe, opt *SearchOptions) SearchResult {
	tel := opt.game().tel()
	sp := opt.traceStart("core.search")
	candidates := candidateIndices(q, qi, targets, opt)
	if tel != nil {
		tel.Searches.Inc()
		tel.PrefilterKept.Add(int64(len(candidates)))
		tel.PrefilterSkipped.Add(int64(len(targets) - len(candidates)))
	}
	type job struct {
		idx int
		t   *sim.Exe
	}
	jobs := make(chan job)
	results := make([]*Finding, len(targets))
	steps := make([]int, len(targets))
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := Match(q, qi, j.t, opt.game())
				steps[j.idx] = r.Steps
				if f := accept(q, qi, j.t, r, opt); f != nil {
					results[j.idx] = f
				}
			}
		}()
	}
	for _, i := range candidates {
		jobs <- job{i, targets[i]}
	}
	close(jobs)
	wg.Wait()

	out := SearchResult{StepsHistogram: map[int]int{}, Examined: len(candidates)}
	for i, f := range results {
		if f == nil {
			continue
		}
		out.Findings = append(out.Findings, *f)
		out.StepsHistogram[steps[i]]++
		if tel != nil {
			tel.AcceptedSteps.Observe(int64(steps[i]))
		}
	}
	sort.Slice(out.Findings, func(i, j int) bool { return out.Findings[i].ExePath < out.Findings[j].ExePath })
	if sp.Active() {
		var gameSteps int64
		for _, i := range candidates {
			gameSteps += int64(steps[i])
		}
		sp.SetAttr("targets", int64(len(targets)))
		sp.SetAttr("examined", int64(len(candidates)))
		sp.SetAttr("findings", int64(len(out.Findings)))
		sp.SetAttr("game_steps", gameSteps)
		sp.End()
	}
	return out
}

// View is a read-only corpus the search layer can run against without
// knowing whether it is a live analysis session or a sealed artifact.
// Implementations must be safe for concurrent readers: Search calls
// Candidates and examines Targets from parallel workers.
type View interface {
	// Targets returns the corpus executables in their stable
	// insertion-order identity. Callers must not mutate the slice or the
	// executables.
	Targets() []*sim.Exe
	// Candidates narrows the target set for one query procedure under
	// the prefilter soundness contract of SearchOptions.Prefilter: only
	// targets provably unable to produce an accepted finding may be
	// omitted. ok=false means "no information — examine everything".
	Candidates(q *sim.Exe, qi int) ([]int, bool)
}

// SearchView runs Search against a read-only corpus view, installing
// the view's candidate narrowing as the prefilter. The caller's options
// are not mutated.
func SearchView(q *sim.Exe, qi int, v View, opt *SearchOptions) SearchResult {
	var o SearchOptions
	if opt != nil {
		o = *opt
	}
	o.Prefilter = func(q *sim.Exe, qi int, _ []*sim.Exe) ([]int, bool) {
		return v.Candidates(q, qi)
	}
	return Search(q, qi, v.Targets(), &o)
}

// candidateIndices resolves the prefilter to a valid candidate index
// list, defaulting to every target. Out-of-range and duplicate indices
// from a misbehaving prefilter are dropped rather than trusted.
func candidateIndices(q *sim.Exe, qi int, targets []*sim.Exe, opt *SearchOptions) []int {
	if opt == nil || opt.Prefilter == nil {
		return allIndices(len(targets))
	}
	cand, ok := opt.Prefilter(q, qi, targets)
	if !ok {
		return allIndices(len(targets))
	}
	seen := make([]bool, len(targets))
	out := make([]int, 0, len(cand))
	for _, i := range cand {
		if i < 0 || i >= len(targets) || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// MatchOne runs the game against a single target and applies the
// threshold, returning nil when the target does not contain the query.
func MatchOne(q *sim.Exe, qi int, t *sim.Exe, opt *SearchOptions) (*Finding, Result) {
	r := Match(q, qi, t, opt.game())
	f := accept(q, qi, t, r, opt)
	if f != nil {
		if tel := opt.game().tel(); tel != nil {
			tel.AcceptedSteps.Observe(int64(r.Steps))
		}
	}
	return f, r
}

func accept(q *sim.Exe, qi int, t *sim.Exe, r Result, opt *SearchOptions) *Finding {
	if r.Target < 0 {
		return nil
	}
	qset := q.Procs[qi].Set
	qsize := qset.Size()
	if qsize == 0 {
		return nil
	}
	var ratio float64
	if opt != nil && opt.Weigher != nil {
		var total, shared float64
		tset := t.Procs[r.Target].Set
		i, j := 0, 0
		for _, h := range qset.Hashes {
			total += opt.Weigher(h)
		}
		for i < len(qset.Hashes) && j < len(tset.Hashes) {
			switch {
			case qset.Hashes[i] == tset.Hashes[j]:
				shared += opt.Weigher(qset.Hashes[i])
				i++
				j++
			case qset.Hashes[i] < tset.Hashes[j]:
				i++
			default:
				j++
			}
		}
		if total == 0 {
			return nil
		}
		ratio = shared / total
	} else {
		ratio = float64(r.Score) / float64(qsize)
	}
	if r.Score < opt.minScore() || ratio < opt.minRatio() {
		return nil
	}
	// Confirmation markers: a true occurrence of the query procedure
	// carries its distinctive constants; require a minimum fraction when
	// the query has enough markers to be meaningful.
	if bar := opt.markerMinOverlap(); bar > 0 {
		qm := q.Procs[qi].Markers
		if len(qm) >= 1 && strand.MarkerOverlap(qm, t.Procs[r.Target].Markers) < bar {
			return nil
		}
	}
	tp := t.Procs[r.Target]
	return &Finding{
		ExePath:   t.Path,
		ProcIndex: r.Target,
		ProcName:  tp.Name,
		ProcAddr:  tp.Addr,
		Score:     r.Score,
		Ratio:     ratio,
		Steps:     r.Steps,
	}
}
