package corpusindex

import (
	"fmt"
	"slices"

	"firmup/internal/strand"
)

// The MinHash/LSH candidate tier: per-procedure MinHash signatures
// (strand.SigWords words, see internal/strand/minhash.go) banded into
// lshBands buckets of lshRows words each. Two procedures land in the
// same bucket of band b exactly when their signatures agree on all
// lshRows words of that band, which for Jaccard similarity j happens
// with probability j^lshRows per band — the classic banding S-curve
// 1-(1-j^lshRows)^lshBands. The 32x2 split is tuned for the
// cross-toolchain setting, where a true match's strand sets overlap
// far less than a byte-identical clone's: a 0.3-similar pair still
// collides in ≥1 band with probability 1-(1-0.3²)³² ≈ 0.95, while an
// unrelated 0.05-similar pair stays below 0.08 (and pairs sharing no
// strand at all collide only by 64-bit hash accident).
//
// The tier serves two modes. In exact mode the band-collision counts
// only *rank* the exact candidate set (most-colliding executables are
// probed first); the set itself still comes from the exact posting
// scan, so findings are byte-identical to the plain prefilter. In
// approximate mode the buckets *gate* that set: a candidate that
// passed the exact floors is examined only if it also shares at least
// one band with the query, so the expensive downstream work — game
// playing, and for store-backed corpora the executable
// materialization — runs on a strict subset of the exact candidates.
// Findings are therefore one-sided (always a subset of exact mode's),
// a bounded-recall trade measured by internal/eval. Gating, rather
// than replacing the exact set with the raw bucket contents, is what
// keeps the approximate candidate count *below* the exact one: on
// corpora where distinct procedures still share library/runtime
// strands, nearly every executable collides with the query in some
// band, so the ungated bucket set is far larger than the floor-gated
// one.
const (
	lshBands = 32
	lshRows  = strand.SigWords / lshBands
)

// lshIndex is the banded bucket structure over one index's procedures,
// immutable once built. Buckets store executable IDs (deduplicated per
// band), so a probe counts each executable at most once per band and
// collision counts are bounded by lshBands.
type lshIndex struct {
	buckets [lshBands]map[uint64][]int32
}

// buildLSH banding-hashes every procedure signature in the flat slab
// (stride strand.SigWords, dense slots procOff[e]..procOff[e+1] per
// executable e). Sentinel (empty-set) signatures are skipped so empty
// procedures never collide with each other.
func buildLSH(sigs []uint32, procOff []int32, nexes int) *lshIndex {
	l := &lshIndex{}
	for b := range l.buckets {
		l.buckets[b] = map[uint64][]int32{}
	}
	for ei := 0; ei < nexes; ei++ {
		for di := procOff[ei]; di < procOff[ei+1]; di++ {
			sig := sigs[int(di)*strand.SigWords : (int(di)+1)*strand.SigWords]
			if strand.SigEmpty(sig) {
				continue
			}
			for b := 0; b < lshBands; b++ {
				key := bandKey(sig, b)
				lst := l.buckets[b][key]
				// Procedures iterate grouped by executable, so per-bucket
				// dedup only needs to compare against the last entry.
				if n := len(lst); n > 0 && lst[n-1] == int32(ei) {
					continue
				}
				l.buckets[b][key] = append(lst, int32(ei))
			}
		}
	}
	return l
}

// bandKey hashes band b of a signature (FNV-1a over the band's rows,
// seeded with the band index so identical row values in different
// bands key different buckets).
func bandKey(sig []uint32, b int) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(b) * 0x100000001b3)
	for _, w := range sig[b*lshRows : (b+1)*lshRows] {
		h ^= uint64(w)
		h *= 0x100000001b3
	}
	return h
}

// probe accumulates the query signature's band collisions into the
// scratch counters: bandCnt[e] is the number of bands executable e
// shares with the query, bandExes the executables with ≥1 collision.
func (l *lshIndex) probe(qsig []uint32, s *queryScratch) {
	if strand.SigEmpty(qsig) {
		return
	}
	for b := 0; b < lshBands; b++ {
		for _, ei := range l.buckets[b][bandKey(qsig, b)] {
			c := s.bandCnt[ei] + 1
			s.bandCnt[ei] = c
			if c == 1 {
				s.bandExes = append(s.bandExes, ei)
			}
		}
	}
}

// lshRank reorders an exact candidate ranking by LSH affinity: band
// collisions descending, then the exact MaxSim ordering as tiebreak.
// Only the order changes — the candidate set, and therefore every
// downstream finding and examined count, is untouched.
func lshRank(s *queryScratch) {
	slices.SortFunc(s.cands, func(a, b Candidate) int {
		if ca, cb := s.bandCnt[a.Exe], s.bandCnt[b.Exe]; ca != cb {
			return int(cb - ca)
		}
		if a.MaxSim != b.MaxSim {
			return b.MaxSim - a.MaxSim
		}
		return a.Exe - b.Exe
	})
}

// lshApproxCands prunes the exact candidate ranking (already
// accumulated into s.cands) down to the executables the buckets
// corroborate: a candidate survives only if it collided with the query
// in at least one band, or the index holds no signature for it (an
// extra — un-interned, so the buckets cannot rule it out). The
// survivors keep the exact-mode LSH ordering: collisions descending,
// MaxSim descending, executable ID ascending.
func lshApproxCands(s *queryScratch, extra []int) {
	kept := s.cands[:0]
	for _, c := range s.cands {
		if s.bandCnt[c.Exe] > 0 || slices.Contains(extra, c.Exe) {
			kept = append(kept, c)
		}
	}
	s.cands = kept
	lshRank(s)
}

// appendEmptySigs appends n sentinel (empty-set) signatures.
func appendEmptySigs(sigs []uint32, n int) []uint32 {
	for i := 0; i < n*strand.SigWords; i++ {
		sigs = append(sigs, strand.SigEmptyWord)
	}
	return sigs
}

// --- live Index integration -------------------------------------------------

// ensureSigsLocked brings the incremental signature slab in sync with
// the executable list. Add keeps it in sync on the normal path; an
// index reconstructed by RestoreIndex starts with an empty slab and is
// rebuilt here on first use. Callers hold lshMu (and at least a read
// lock on the index).
func (x *Index) ensureSigsLocked() {
	want := int(x.procOff[len(x.exes)]) * strand.SigWords
	if len(x.sigs) == want {
		return
	}
	sigs := make([]uint32, 0, want)
	for _, e := range x.exes {
		if interned(x.it, e) {
			sigs = append(sigs, e.Signatures()...)
		} else {
			sigs = appendEmptySigs(sigs, len(e.Procs))
		}
	}
	x.sigs = sigs
}

// ensureLSH returns the bucket structure over the current executables,
// rebuilding it when executables were added since the last build.
// Callers hold at least a read lock on the index; lshMu serializes the
// build itself.
func (x *Index) ensureLSH() *lshIndex {
	x.lshMu.Lock()
	defer x.lshMu.Unlock()
	if x.lsh == nil || x.lshExes != len(x.exes) {
		x.ensureSigsLocked()
		x.lsh = buildLSH(x.sigs, x.procOff, len(x.exes))
		x.lshExes = len(x.exes)
	}
	return x.lsh
}

// Signatures returns the flat per-procedure MinHash signature slab the
// index built incrementally (strand.SigWords words per procedure, in
// dense-slot order; sentinel signatures for executables interned under
// a foreign session). The slab is what Analyzer.Seal hands to the
// frozen index and WriteShards persists. Read-only for callers.
func (x *Index) Signatures() []uint32 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.lshMu.Lock()
	defer x.lshMu.Unlock()
	x.ensureSigsLocked()
	return x.sigs
}

// CandidateIndicesLSH is CandidateIndices with the MinHash/LSH
// signature tier engaged. In exact mode (approx false) the returned
// candidate *set* is identical to CandidateIndices — floors and
// postings remain the exact gate — but the probe order puts the
// executables most band-similar to the query first. With approx true
// the LSH buckets additionally gate the set: only the exact candidates
// sharing at least one signature band with the query (plus un-interned
// executables, which the index cannot rule out) are returned — a
// strict subset of the exact candidates. The second return is false
// when the query set was not interned under this session (caller falls
// back to exhaustive examination, as with CandidateIndices).
func (x *Index) CandidateIndicesLSH(q strand.Set, minScore int, ratioFloor float64, approx bool, buf []int) ([]int, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if !strand.Compatible(q.It, x.it) {
		x.telFallbacks.Inc()
		return nil, false
	}
	l := x.ensureLSH()
	s := x.getScratch()
	strand.MinHashInto(s.qsig, q.IDs)
	l.probe(s.qsig, s)
	x.telLSHProbes.Inc()
	x.accumulateInto(s, q, minScore, ratioFloor)
	if approx {
		lshApproxCands(s, x.liveExtra())
		x.telLSHCandidates.Observe(int64(len(s.cands)))
	} else {
		lshRank(s)
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	for _, c := range s.cands {
		buf = append(buf, c.Exe)
	}
	x.putScratch(s)
	return buf, true
}

// liveExtra lists the executables registered without postings (not
// interned under this session) — always candidates, exactly as in
// accumulate.
func (x *Index) liveExtra() []int {
	var extra []int
	for ei, e := range x.exes {
		if !interned(x.it, e) {
			extra = append(extra, ei)
		}
	}
	return extra
}

// --- FrozenIndex integration ------------------------------------------------

// SetSignatures attaches the per-procedure MinHash signature slab to a
// sealed index: strand.SigWords words per procedure in dense-slot
// order, either the live index's incrementally built slab (Seal) or a
// mapped corpus-sigs shard section (store-backed open). The slice is
// aliased, not copied, and must stay valid for the index's lifetime.
// Call before the first query; it is not synchronized against
// concurrent Candidates calls. Without a slab (and without in-RAM
// executables to derive one from) the LSH tier is unavailable and
// approximate queries fall back to the exact prefilter.
func (x *FrozenIndex) SetSignatures(sigs []uint32) error {
	if want := int(x.procOff[x.nexes]) * strand.SigWords; len(sigs) != want {
		return fmt.Errorf("corpusindex: signature slab holds %d words for %d procedures, want %d", len(sigs), x.procOff[x.nexes], want)
	}
	x.sigs = sigs
	return nil
}

// ensureLSH lazily builds the bucket structure on first use. A dense
// index without an attached slab derives signatures from its in-RAM
// executables (pure function of their interned IDs, so the result is
// identical to the persisted slab); a foreign index without a slab —
// a pre-signature v2 shard — has no tier and returns nil.
func (x *FrozenIndex) ensureLSH() *lshIndex {
	x.lshOnce.Do(func() {
		sigs := x.sigs
		if sigs == nil {
			if x.exes == nil {
				return
			}
			sigs = make([]uint32, 0, int(x.procOff[x.nexes])*strand.SigWords)
			for i, e := range x.exes {
				if slices.Contains(x.extra, i) {
					sigs = appendEmptySigs(sigs, len(e.Procs))
				} else {
					sigs = append(sigs, e.Signatures()...)
				}
			}
			x.sigs = sigs
		}
		x.lsh = buildLSH(sigs, x.procOff, x.nexes)
	})
	return x.lsh
}

// HasSignatures reports whether the LSH tier is available: a signature
// slab is attached or derivable. Approximate queries on an index
// without signatures serve the exact prefilter instead.
func (x *FrozenIndex) HasSignatures() bool { return x.ensureLSH() != nil }

// Signatures returns the index's signature slab (building it from the
// in-RAM executables if it was never attached), or nil when the index
// has no signature data. Read-only for callers.
func (x *FrozenIndex) Signatures() []uint32 {
	x.ensureLSH()
	return x.sigs
}

// CandidateIndicesLSH is Index.CandidateIndicesLSH over the sealed
// postings: identical semantics, no locks. On an index without
// signature data both modes serve the plain exact ranking (approximate
// requests additionally count an lsh fallback).
func (x *FrozenIndex) CandidateIndicesLSH(q strand.Set, minScore int, ratioFloor float64, approx bool, buf []int) ([]int, bool) {
	if !strand.Compatible(q.It, x.it) {
		x.telFallbacks.Inc()
		return nil, false
	}
	l := x.ensureLSH()
	s := x.getScratch()
	if l == nil {
		if approx {
			x.telLSHFallbacks.Inc()
		}
		x.accumulateInto(s, q, minScore, ratioFloor)
	} else {
		strand.MinHashInto(s.qsig, q.IDs)
		l.probe(s.qsig, s)
		x.telLSHProbes.Inc()
		x.accumulateInto(s, q, minScore, ratioFloor)
		if approx {
			lshApproxCands(s, x.extra)
			x.telLSHCandidates.Observe(int64(len(s.cands)))
		} else {
			lshRank(s)
		}
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	for _, c := range s.cands {
		buf = append(buf, c.Exe)
	}
	x.putScratch(s)
	return buf, true
}
