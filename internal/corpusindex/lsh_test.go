package corpusindex

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"firmup/internal/sim"
	"firmup/internal/strand"
)

// randCorpus builds a randomized session corpus: nexes executables with
// 1–4 procedures each, drawing strand hashes from a small universe so
// queries overlap targets at varied similarities.
func randCorpus(rng *rand.Rand, nexes int) (*Interner, *Index, []*sim.Exe) {
	it := NewInterner()
	x := NewIndex(it)
	var exes []*sim.Exe
	for e := 0; e < nexes; e++ {
		var procs []*sim.Proc
		for p := 0; p < 1+rng.Intn(4); p++ {
			n := rng.Intn(12)
			hs := map[uint64]bool{}
			for len(hs) < n {
				hs[uint64(1 + rng.Intn(60))] = true
			}
			var hashes []uint64
			for h := range hs {
				hashes = append(hashes, h)
			}
			procs = append(procs, &sim.Proc{Name: fmt.Sprintf("p%d_%d", e, p), Set: set(hashes...)})
		}
		exe := sim.FromProcsSession(fmt.Sprintf("exe%d", e), procs, it)
		exes = append(exes, exe)
		x.Add(exe)
	}
	return it, x, exes
}

// TestLSHExactSetEquivalence is the exact-mode soundness test at the
// index layer: across randomized corpora, queries and floors, the
// LSH-ranked candidate list must contain exactly the same executables
// as the plain exact prefilter — only the probe order may differ.
func TestLSHExactSetEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		it, x, _ := randCorpus(rng, 2+rng.Intn(10))
		f := it.Freeze()
		rebound := make([]*sim.Exe, len(x.exes))
		for i, e := range x.exes {
			rebound[i] = e.Rebound(f)
		}
		fx, err := NewFrozenIndex(f, rebound, x.Rows())
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.SetSignatures(x.Signatures()); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 10; qi++ {
			n := rng.Intn(10)
			var hashes []uint64
			for len(hashes) < n {
				h := uint64(1 + rng.Intn(60))
				if !slices.Contains(hashes, h) {
					hashes = append(hashes, h)
				}
			}
			q := set(hashes...).Interned(it)
			minScore := 1 + rng.Intn(3)
			ratio := float64(rng.Intn(3)) * 0.2
			plain, ok1 := x.CandidateIndices(q, minScore, ratio, nil)
			ranked, ok2 := x.CandidateIndicesLSH(q, minScore, ratio, false, nil)
			if ok1 != ok2 {
				t.Fatalf("seed %d query %d: ok diverges (%v vs %v)", seed, qi, ok1, ok2)
			}
			sp := slices.Clone(plain)
			sr := slices.Clone(ranked)
			slices.Sort(sp)
			slices.Sort(sr)
			if !slices.Equal(sp, sr) {
				t.Fatalf("seed %d query %d: live LSH candidate set %v != plain %v", seed, qi, sr, sp)
			}
			// The frozen index must agree with the live one under the
			// overlay interner too.
			qf := strand.Set{Hashes: q.Hashes}.Interned(NewQueryInterner(f))
			fplain, _ := fx.CandidateIndices(qf, minScore, ratio, nil)
			franked, _ := fx.CandidateIndicesLSH(qf, minScore, ratio, false, nil)
			sfp := slices.Clone(fplain)
			sfr := slices.Clone(franked)
			slices.Sort(sfp)
			slices.Sort(sfr)
			if !slices.Equal(sfp, sfr) {
				t.Fatalf("seed %d query %d: frozen LSH candidate set %v != plain %v", seed, qi, sfr, sfp)
			}
			if !slices.Equal(sfp, sp) {
				t.Fatalf("seed %d query %d: frozen set %v != live set %v", seed, qi, sfp, sp)
			}
			// Repeat calls must be byte-identical (pooled scratch reuse).
			again, _ := x.CandidateIndicesLSH(q, minScore, ratio, false, nil)
			if !slices.Equal(again, ranked) {
				t.Fatalf("seed %d query %d: ranked order not deterministic", seed, qi)
			}
		}
	}
}

// TestLSHApproxProperties pins the approximate mode's guarantees: an
// executable containing the query set verbatim always survives the
// bounding (identical sets collide in every band), un-interned
// executables are always candidates, and repeat probes are
// deterministic.
func TestLSHApproxProperties(t *testing.T) {
	it := NewInterner()
	x := NewIndex(it)
	target := sim.FromProcsSession("target", []*sim.Proc{
		{Name: "hit", Set: set(1, 2, 3, 4, 5, 6, 7, 8)},
	}, it)
	x.Add(target)
	x.Add(sim.FromProcsSession("other", []*sim.Proc{
		{Name: "miss", Set: set(40, 41, 42)},
	}, it))
	foreign := sim.FromProcs("foreign", []*sim.Proc{{Name: "f0", Set: set(1, 2, 3)}})
	fi := x.Add(foreign)

	q := set(1, 2, 3, 4, 5, 6, 7, 8).Interned(it)
	cands, ok := x.CandidateIndicesLSH(q, 1, 0, true, nil)
	if !ok {
		t.Fatal("same-session query must be filterable")
	}
	if !slices.Contains(cands, 0) {
		t.Errorf("approx candidates %v miss the verbatim-identical executable", cands)
	}
	if !slices.Contains(cands, fi) {
		t.Errorf("approx candidates %v miss the un-interned executable", cands)
	}
	again, _ := x.CandidateIndicesLSH(q, 1, 0, true, nil)
	if !slices.Equal(again, cands) {
		t.Errorf("approx candidates not deterministic: %v vs %v", again, cands)
	}

	// An empty query signature probes nothing: only the un-interned
	// executable remains.
	empty := strand.Set{It: it}
	ecands, ok := x.CandidateIndicesLSH(empty, 1, 0, true, nil)
	if !ok {
		t.Fatal("empty same-session query must be filterable")
	}
	if !slices.Equal(ecands, []int{fi}) {
		t.Errorf("empty-query approx candidates = %v, want just the un-interned %d", ecands, fi)
	}
}

// TestLSHFrozenFallback pins that a frozen index without signature data
// (foreign CSR slabs, no corpus-sigs section) serves both modes through
// the exact prefilter.
func TestLSHFrozenFallback(t *testing.T) {
	it, x, _ := randCorpus(rand.New(rand.NewSource(7)), 5)
	f := it.Freeze()
	rows := x.Rows()
	var rowIDs, rowEnds []uint32
	var posts []Posting
	for _, r := range rows {
		rowIDs = append(rowIDs, r.ID)
		posts = append(posts, r.Posts...)
		rowEnds = append(rowEnds, uint32(len(posts)))
	}
	procCounts := make([]int32, len(x.exes))
	for i, e := range x.exes {
		procCounts[i] = int32(len(e.Procs))
	}
	fx, err := NewFrozenIndexForeign(f, procCounts, rowIDs, rowEnds, posts)
	if err != nil {
		t.Fatal(err)
	}
	if fx.HasSignatures() {
		t.Fatal("foreign index without a slab claims signatures")
	}
	q := set(1, 2, 3).Interned(NewQueryInterner(f))
	plain, _ := fx.CandidateIndices(q, 1, 0, nil)
	for _, approx := range []bool{false, true} {
		got, ok := fx.CandidateIndicesLSH(q, 1, 0, approx, nil)
		if !ok {
			t.Fatalf("approx=%v: compatible query rejected", approx)
		}
		if !slices.Equal(got, plain) {
			t.Errorf("approx=%v: fallback ranking %v != exact %v", approx, got, plain)
		}
	}
}

// TestSetSignaturesValidation pins the slab length check.
func TestSetSignaturesValidation(t *testing.T) {
	it, x, _ := randCorpus(rand.New(rand.NewSource(3)), 3)
	f := it.Freeze()
	rebound := make([]*sim.Exe, len(x.exes))
	for i, e := range x.exes {
		rebound[i] = e.Rebound(f)
	}
	fx, err := NewFrozenIndex(f, rebound, x.Rows())
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.SetSignatures(make([]uint32, 7)); err == nil {
		t.Error("truncated signature slab accepted")
	}
	if err := fx.SetSignatures(x.Signatures()); err != nil {
		t.Errorf("well-formed slab rejected: %v", err)
	}
}

// TestIndexSignaturesIncremental pins that the live slab built by Add
// matches a from-scratch rebuild and carries sentinel blocks for
// un-interned executables.
func TestIndexSignaturesIncremental(t *testing.T) {
	it := NewInterner()
	x := NewIndex(it)
	e1 := sim.FromProcsSession("a", []*sim.Proc{{Name: "a0", Set: set(1, 2, 3)}}, it)
	x.Add(e1)
	foreign := sim.FromProcs("f", []*sim.Proc{{Name: "f0", Set: set(1, 2)}})
	x.Add(foreign)
	sigs := x.Signatures()
	if want := 2 * strand.SigWords; len(sigs) != want {
		t.Fatalf("slab holds %d words, want %d", len(sigs), want)
	}
	if !slices.Equal(sigs[:strand.SigWords], e1.Signatures()) {
		t.Error("first block diverges from the executable's own signature")
	}
	if !strand.SigEmpty(sigs[strand.SigWords:]) {
		t.Error("un-interned executable's block is not the sentinel")
	}
	// RestoreIndex starts without a slab; Signatures must rebuild it.
	r := RestoreIndex(it, x.exes, x.Rows())
	if !slices.Equal(r.Signatures(), sigs) {
		t.Error("restored index rebuilds a different slab")
	}
}
