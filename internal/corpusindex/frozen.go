package corpusindex

import (
	"fmt"
	"slices"
	"sync"

	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// Frozen is the sealed, immutable form of an analyzer session's
// interner: a closed strand vocabulary with lock-free lookups. Nothing
// mutates a Frozen after construction, so any number of concurrent
// readers share one instance without synchronization.
//
// A Frozen still implements strand.Interner so sealed executables can
// carry it as their session binding, but its vocabulary is closed:
// Intern of a hash outside the vocabulary panics, because assigning a
// fresh ID would require mutation. Query analysis against a sealed
// corpus must therefore run under a per-request QueryInterner overlay,
// never under the Frozen itself.
// A Frozen has two internal lookup representations: a hash map built at
// seal/load time (map mode), or a binary-searched sorted slab pair
// handed over from a mapped v2 shard (slab mode, FrozenFromSlabs) that
// requires no construction work at open. Both are immutable after
// construction and behave identically.
type Frozen struct {
	vocab []uint64          // dense ID -> hash
	ids   map[uint64]uint32 // hash -> dense ID (map mode); nil in slab mode
	// Slab mode: hashes ascending with the parallel dense IDs, typically
	// aliasing a mapped shard section.
	sortedHashes []uint64
	sortedIDs    []uint32
}

// Freeze seals the interner's current vocabulary into an immutable
// Frozen. The live interner keeps working afterwards; IDs it assigns
// from then on are outside the frozen vocabulary.
func (it *Interner) Freeze() *Frozen {
	it.mu.RLock()
	defer it.mu.RUnlock()
	f := &Frozen{
		vocab: make([]uint64, len(it.ids)),
		ids:   make(map[uint64]uint32, len(it.ids)),
	}
	for h, id := range it.ids {
		f.vocab[id] = h
		f.ids[h] = id
	}
	return f
}

// FrozenFromVocab reconstructs a Frozen from a serialized vocabulary
// (dense ID → hash, as persisted by a sealed-corpus artifact). A
// vocabulary with duplicate hashes is rejected: it cannot have been
// produced by an interner and would make lookups ambiguous.
func FrozenFromVocab(vocab []uint64) (*Frozen, error) {
	f := &Frozen{
		vocab: slices.Clone(vocab),
		ids:   make(map[uint64]uint32, len(vocab)),
	}
	for id, h := range f.vocab {
		if _, dup := f.ids[h]; dup {
			return nil, fmt.Errorf("corpusindex: frozen vocabulary has duplicate hash %#x", h)
		}
		f.ids[h] = uint32(id)
	}
	return f, nil
}

// FrozenFromSlabs constructs a Frozen directly over foreign memory: the
// vocabulary (dense ID → hash) plus a sorted-hash slab with its
// parallel dense IDs, as persisted by a v2 shard. Unlike
// FrozenFromVocab nothing is cloned and no map is built — lookups
// binary-search the sorted slab — so opening a paper-scale vocabulary
// costs validation only. The slices must stay valid and unmodified for
// the Frozen's lifetime. Validation: equal lengths, strictly increasing
// hashes, and every (hash, id) pair agreeing with the vocabulary —
// which together prove the slab is exactly the vocabulary re-sorted.
func FrozenFromSlabs(vocab []uint64, sortedHashes []uint64, sortedIDs []uint32) (*Frozen, error) {
	if len(sortedHashes) != len(vocab) || len(sortedIDs) != len(vocab) {
		return nil, fmt.Errorf("corpusindex: sorted vocabulary slabs hold %d+%d entries, vocabulary holds %d", len(sortedHashes), len(sortedIDs), len(vocab))
	}
	for i, h := range sortedHashes {
		if i > 0 && h <= sortedHashes[i-1] {
			return nil, fmt.Errorf("corpusindex: sorted vocabulary not strictly increasing at entry %d", i)
		}
		id := sortedIDs[i]
		if int(id) >= len(vocab) || vocab[id] != h {
			return nil, fmt.Errorf("corpusindex: sorted vocabulary entry %d (hash %#x, id %d) disagrees with the vocabulary", i, h, id)
		}
	}
	return &Frozen{vocab: vocab, sortedHashes: sortedHashes, sortedIDs: sortedIDs}, nil
}

// Size reports the vocabulary size.
func (f *Frozen) Size() int { return len(f.vocab) }

// Vocab returns the vocabulary ordered by dense ID. The slice is the
// Frozen's own storage: callers must treat it as read-only.
func (f *Frozen) Vocab() []uint64 { return f.vocab }

// Lookup returns the dense ID of h and whether h is in the vocabulary.
// It performs no locking and no allocation.
func (f *Frozen) Lookup(h uint64) (uint32, bool) {
	if f.ids != nil {
		id, ok := f.ids[h]
		return id, ok
	}
	i, ok := slices.BinarySearch(f.sortedHashes, h)
	if !ok {
		return 0, false
	}
	return f.sortedIDs[i], true
}

// Intern returns the dense ID of a vocabulary hash. It panics on a hash
// outside the closed vocabulary — a sealed corpus cannot grow; route
// query analysis through NewQueryInterner instead.
func (f *Frozen) Intern(h uint64) uint32 {
	id, ok := f.Lookup(h)
	if !ok {
		panic(fmt.Sprintf("corpusindex: Intern(%#x) on a frozen interner: the sealed vocabulary is closed; analyze queries under a QueryInterner overlay", h))
	}
	return id
}

// InternAll is the bulk form of Intern, with the same closed-vocabulary
// contract.
func (f *Frozen) InternAll(hashes []uint64, out []uint32) []uint32 {
	for _, h := range hashes {
		out = append(out, f.Intern(h))
	}
	return out
}

// QueryInterner is the per-request overlay a sealed corpus analyzes
// query executables under: hashes in the frozen vocabulary resolve to
// their frozen IDs (lock-free), and hashes the corpus has never seen
// get private IDs starting at the frozen vocabulary size, stored in
// request-local state. Private IDs therefore never collide with any ID
// a sealed posting list or CSR row can contain, which is what makes a
// query set interned here directly comparable with sealed sets (see
// strand.Compatible).
//
// A QueryInterner is safe for the concurrent procedure-level workers of
// one query build; it is not meant to be shared across requests.
type QueryInterner struct {
	base *Frozen

	mu    sync.Mutex
	extra map[uint64]uint32 // hashes outside the frozen vocabulary
}

// NewQueryInterner returns an overlay over the frozen vocabulary.
func NewQueryInterner(base *Frozen) *QueryInterner {
	return &QueryInterner{base: base, extra: map[uint64]uint32{}}
}

// BaseInterner implements strand.Rebased.
func (q *QueryInterner) BaseInterner() strand.Interner { return q.base }

// Novel reports how many strand hashes outside the frozen vocabulary
// the overlay has assigned private IDs so far.
func (q *QueryInterner) Novel() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.extra)
}

// Intern returns the frozen ID for vocabulary hashes and a request-local
// private ID (≥ the frozen vocabulary size) otherwise.
func (q *QueryInterner) Intern(h uint64) uint32 {
	if id, ok := q.base.Lookup(h); ok {
		return id
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	id, ok := q.extra[h]
	if !ok {
		id = uint32(len(q.base.vocab) + len(q.extra))
		q.extra[h] = id
	}
	return id
}

// InternAll appends the IDs of hashes to out in input order, touching
// the overlay lock only for hashes outside the frozen vocabulary.
func (q *QueryInterner) InternAll(hashes []uint64, out []uint32) []uint32 {
	for _, h := range hashes {
		if id, ok := q.base.Lookup(h); ok {
			out = append(out, id)
			continue
		}
		out = append(out, q.Intern(h))
	}
	return out
}

// FrozenIndex is the sealed, read-only form of a corpus-level inverted
// index: the posting lists of an Index flattened into one CSR slab over
// a Frozen vocabulary. It answers the same candidate-ranking queries as
// Index — with the identical ranking and the identical soundness
// contract — but holds no lock and supports no mutation, so unlimited
// concurrent readers share it freely. The only shared structure the
// query path touches is a sync.Pool of scratch accumulators, which is
// race-safe by construction and carries no corpus state between
// queries.
// A FrozenIndex holds its postings in one of two CSR representations:
// dense (rowStart spans the whole vocabulary, built by NewFrozenIndex
// from in-RAM rows) or sparse (only the non-empty rows, as rowIDs /
// rowEnds slabs typically aliasing a mapped v2 shard, built by
// NewFrozenIndexForeign with no per-row allocation). Queries walk
// either form to the identical ranking.
type FrozenIndex struct {
	it    *Frozen
	nexes int
	// exes are the sealed executables (dense mode); nil in foreign mode,
	// where the index exists before any executable is materialized.
	exes []*sim.Exe
	// Dense CSR: posts[rowStart[id]:rowStart[id+1]] lists the
	// (executable, procedure) postings of dense strand ID id. Nil in
	// sparse mode.
	rowStart []int32
	// Sparse CSR: rowIDs are the non-empty rows' strand IDs ascending;
	// row i's postings are posts[rowEnds[i-1]:rowEnds[i]] (rowEnds[-1]
	// taken as 0). Nil in dense mode.
	rowIDs  []uint32
	rowEnds []uint32
	posts   []Posting
	// procOff are prefix sums of per-executable procedure counts, as in
	// Index.
	procOff []int32
	// extra lists executables with no postings under the frozen
	// vocabulary (not sealed under it); they are always candidates, as in
	// Index.Candidates. Always nil in foreign mode: a persisted shard
	// only ever holds executables sealed under its own vocabulary.
	extra []int

	scratch sync.Pool

	// Per-procedure MinHash signature slab (dense-slot order) and the
	// banded bucket structure built over it on first LSH query. sigs is
	// attached by SetSignatures (Seal, or a mapped corpus-sigs shard
	// section) or derived lazily from in-RAM executables; a foreign
	// index without a slab has no LSH tier (lsh stays nil) and serves
	// exact rankings only.
	sigs    []uint32
	lshOnce sync.Once
	lsh     *lshIndex

	telQueries       *telemetry.Counter
	telFallbacks     *telemetry.Counter
	telFanout        *telemetry.Histogram
	telLSHProbes     *telemetry.Counter
	telLSHFallbacks  *telemetry.Counter
	telLSHCandidates *telemetry.Histogram
}

// NewFrozenIndex builds a sealed index over the frozen vocabulary from
// serialized rows (Index.Rows or a decoded artifact) and the sealed
// executables in their original insertion order. Posting data is copied
// into the index's own flat slab, so the result shares no mutable state
// with its source. Rows must be ordered by strictly increasing ID
// within the vocabulary; violations are rejected.
func NewFrozenIndex(it *Frozen, exes []*sim.Exe, rows []Row) (*FrozenIndex, error) {
	x := &FrozenIndex{it: it, exes: exes, nexes: len(exes)}
	x.procOff = make([]int32, len(exes)+1)
	for i, e := range exes {
		x.procOff[i+1] = x.procOff[i] + int32(len(e.Procs))
		if len(e.Procs) > 0 && !strand.Compatible(e.Procs[0].Set.It, it) {
			x.extra = append(x.extra, i)
		}
	}
	total := 0
	for _, r := range rows {
		total += len(r.Posts)
	}
	x.rowStart = make([]int32, len(it.vocab)+1)
	x.posts = make([]Posting, 0, total)
	next := uint32(0)
	for ri, r := range rows {
		if ri > 0 && r.ID <= rows[ri-1].ID {
			return nil, fmt.Errorf("corpusindex: frozen index rows not strictly increasing at row %d", ri)
		}
		if int(r.ID) >= len(it.vocab) {
			return nil, fmt.Errorf("corpusindex: frozen index row ID %d outside the %d-entry vocabulary", r.ID, len(it.vocab))
		}
		for ; next <= r.ID; next++ {
			x.rowStart[next] = int32(len(x.posts))
		}
		for _, p := range r.Posts {
			if int(p.Exe) >= len(exes) || p.Exe < 0 {
				return nil, fmt.Errorf("corpusindex: frozen index posting references executable %d of %d", p.Exe, len(exes))
			}
			if int(p.Proc) >= len(exes[p.Exe].Procs) || p.Proc < 0 {
				return nil, fmt.Errorf("corpusindex: frozen index posting references procedure %d of %d", p.Proc, len(exes[p.Exe].Procs))
			}
		}
		x.posts = append(x.posts, r.Posts...)
	}
	for ; int(next) <= len(it.vocab); next++ {
		x.rowStart[next] = int32(len(x.posts))
	}
	return x, nil
}

// NewFrozenIndexForeign builds a sealed index directly over foreign CSR
// slabs — the row-ID, row-end and posting sections of a mapped v2 shard
// — without copying them or densifying rows across the vocabulary. The
// executables themselves need not exist yet: procCounts stands in for
// them, so a shard's index is queryable before (and without) any
// executable materialization. The slabs must stay valid and unmodified
// for the index's lifetime.
//
// Validation matches NewFrozenIndex: strictly increasing in-vocabulary
// row IDs, nondecreasing row ends terminating at len(posts), and every
// posting inside [0, len(procCounts)) x [0, procCounts[exe]).
func NewFrozenIndexForeign(it *Frozen, procCounts []int32, rowIDs, rowEnds []uint32, posts []Posting) (*FrozenIndex, error) {
	x := &FrozenIndex{it: it, nexes: len(procCounts), rowIDs: rowIDs, rowEnds: rowEnds, posts: posts}
	x.procOff = make([]int32, len(procCounts)+1)
	for i, n := range procCounts {
		if n < 0 {
			return nil, fmt.Errorf("corpusindex: foreign index executable %d declares %d procedures", i, n)
		}
		x.procOff[i+1] = x.procOff[i] + n
	}
	if len(rowIDs) != len(rowEnds) {
		return nil, fmt.Errorf("corpusindex: foreign index holds %d row IDs but %d row ends", len(rowIDs), len(rowEnds))
	}
	prevEnd := uint32(0)
	for i, id := range rowIDs {
		if i > 0 && id <= rowIDs[i-1] {
			return nil, fmt.Errorf("corpusindex: foreign index rows not strictly increasing at row %d", i)
		}
		if int(id) >= len(it.vocab) {
			return nil, fmt.Errorf("corpusindex: foreign index row ID %d outside the %d-entry vocabulary", id, len(it.vocab))
		}
		end := rowEnds[i]
		if end < prevEnd || uint64(end) > uint64(len(posts)) {
			return nil, fmt.Errorf("corpusindex: foreign index row %d ends at posting %d (previous %d, slab %d)", i, end, prevEnd, len(posts))
		}
		prevEnd = end
	}
	if int(prevEnd) != len(posts) {
		return nil, fmt.Errorf("corpusindex: foreign index rows cover %d of %d postings", prevEnd, len(posts))
	}
	for pi, p := range posts {
		if p.Exe < 0 || int(p.Exe) >= len(procCounts) {
			return nil, fmt.Errorf("corpusindex: foreign index posting %d references executable %d of %d", pi, p.Exe, len(procCounts))
		}
		if p.Proc < 0 || p.Proc >= procCounts[p.Exe] {
			return nil, fmt.Errorf("corpusindex: foreign index posting %d references procedure %d of %d", pi, p.Proc, procCounts[p.Exe])
		}
	}
	return x, nil
}

// SetTelemetry attaches metric handles. Call it before serving queries;
// it is not synchronized against concurrent Candidates calls.
func (x *FrozenIndex) SetTelemetry(tel *Telemetry) {
	if tel == nil {
		x.telQueries, x.telFallbacks, x.telFanout = nil, nil, nil
		x.telLSHProbes, x.telLSHFallbacks, x.telLSHCandidates = nil, nil, nil
		return
	}
	x.telQueries = tel.Queries
	x.telFallbacks = tel.Fallbacks
	x.telFanout = tel.Fanout
	x.telLSHProbes = tel.LSHProbes
	x.telLSHFallbacks = tel.LSHFallbacks
	x.telLSHCandidates = tel.LSHCandidates
}

// Interner returns the frozen vocabulary the index is keyed by.
func (x *FrozenIndex) Interner() *Frozen { return x.it }

// Len reports the number of indexed executables.
func (x *FrozenIndex) Len() int { return x.nexes }

// Postings reports the total number of (strand, executable, procedure)
// postings held.
func (x *FrozenIndex) Postings() int { return len(x.posts) }

// Rows returns the index's non-empty posting rows ordered by strictly
// increasing dense strand ID — the serialized form a sealed-corpus
// artifact persists. Posting slices alias the index's slab; callers
// must treat them as read-only.
func (x *FrozenIndex) Rows() []Row {
	var out []Row
	if x.rowStart == nil {
		lo := uint32(0)
		for i, id := range x.rowIDs {
			hi := x.rowEnds[i]
			out = append(out, Row{ID: id, Posts: x.posts[lo:hi]})
			lo = hi
		}
		return out
	}
	for id := 0; id < len(x.rowStart)-1; id++ {
		if x.rowStart[id] < x.rowStart[id+1] {
			out = append(out, Row{ID: uint32(id), Posts: x.posts[x.rowStart[id]:x.rowStart[id+1]]})
		}
	}
	return out
}

// Candidates is Index.Candidates over the sealed postings: identical
// ranking, identical soundness, no locks.
func (x *FrozenIndex) Candidates(q strand.Set, minScore int, ratioFloor float64) ([]Candidate, bool) {
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	out := append([]Candidate(nil), s.cands...)
	x.putScratch(s)
	return out, true
}

// CandidateIndices is Index.CandidateIndices over the sealed postings.
func (x *FrozenIndex) CandidateIndices(q strand.Set, minScore int, ratioFloor float64, buf []int) ([]int, bool) {
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	for _, c := range s.cands {
		buf = append(buf, c.Exe)
	}
	x.putScratch(s)
	return buf, true
}

func (x *FrozenIndex) getScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	if total := int(x.procOff[x.nexes]); len(s.counts) < total {
		s.counts = make([]int32, total)
	}
	if len(s.maxSim) < x.nexes {
		s.maxSim = make([]int32, x.nexes)
	}
	if len(s.bandCnt) < x.nexes {
		s.bandCnt = make([]int32, x.nexes)
	}
	if len(s.qsig) < strand.SigWords {
		s.qsig = make([]uint32, strand.SigWords)
	}
	return s
}

func (x *FrozenIndex) putScratch(s *queryScratch) {
	for _, di := range s.touched {
		s.counts[di] = 0
	}
	for _, ei := range s.exes {
		s.maxSim[ei] = 0
	}
	for _, ei := range s.bandExes {
		s.bandCnt[ei] = 0
	}
	s.touched = s.touched[:0]
	s.exes = s.exes[:0]
	s.bandExes = s.bandExes[:0]
	s.cands = s.cands[:0]
	x.scratch.Put(s)
}

// scanPosts accumulates one posting row into the scratch counters —
// the shared inner loop of both CSR representations.
func (x *FrozenIndex) scanPosts(s *queryScratch, posts []Posting) {
	for _, p := range posts {
		di := x.procOff[p.Exe] + p.Proc
		c := s.counts[di] + 1
		s.counts[di] = c
		if c == 1 {
			s.touched = append(s.touched, di)
		}
		if c > s.maxSim[p.Exe] {
			if s.maxSim[p.Exe] == 0 {
				s.exes = append(s.exes, p.Exe)
			}
			s.maxSim[p.Exe] = c
		}
	}
}

// accumulate mirrors Index.accumulate over the CSR slab. Query sets
// must be interned under the frozen vocabulary or an overlay of it
// (strand.Compatible); overlay-private IDs lie above the vocabulary and
// fall out of the bounds check, exactly like a live session's
// posting-free fresh IDs.
func (x *FrozenIndex) accumulate(q strand.Set, minScore int, ratioFloor float64) (*queryScratch, bool) {
	if !strand.Compatible(q.It, x.it) {
		return nil, false
	}
	s := x.getScratch()
	x.accumulateInto(s, q, minScore, ratioFloor)
	return s, true
}

// accumulateInto is accumulate's body over caller-held scratch (see
// Index.accumulateInto). Compatibility is the caller's check.
func (x *FrozenIndex) accumulateInto(s *queryScratch, q strand.Set, minScore int, ratioFloor float64) {
	if x.rowStart == nil {
		// Sparse CSR: both q.IDs and rowIDs are strictly increasing, so
		// one forward binary-search cursor visits each matching row once.
		ri := 0
		for _, id := range q.IDs {
			j, ok := slices.BinarySearch(x.rowIDs[ri:], id)
			ri += j
			if !ok {
				continue
			}
			lo := uint32(0)
			if ri > 0 {
				lo = x.rowEnds[ri-1]
			}
			x.scanPosts(s, x.posts[lo:x.rowEnds[ri]])
			ri++
		}
	} else {
		for _, id := range q.IDs {
			if int(id) >= len(x.rowStart)-1 {
				continue
			}
			x.scanPosts(s, x.posts[x.rowStart[id]:x.rowStart[id+1]])
		}
	}
	qsize := len(q.IDs)
	if minScore < 1 {
		minScore = 1
	}
	for _, ei := range s.exes {
		c := int(s.maxSim[ei])
		if c < minScore {
			continue
		}
		if ratioFloor > 0 && qsize > 0 && float64(c)/float64(qsize) < ratioFloor {
			continue
		}
		s.cands = append(s.cands, Candidate{Exe: int(ei), MaxSim: c})
	}
	for _, ei := range x.extra {
		s.cands = append(s.cands, Candidate{Exe: ei, MaxSim: 0})
	}
	slices.SortFunc(s.cands, func(a, b Candidate) int {
		if a.MaxSim != b.MaxSim {
			return b.MaxSim - a.MaxSim
		}
		return a.Exe - b.Exe
	})
}
