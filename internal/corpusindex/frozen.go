package corpusindex

import (
	"fmt"
	"slices"
	"sync"

	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// Frozen is the sealed, immutable form of an analyzer session's
// interner: a closed strand vocabulary with lock-free lookups. Nothing
// mutates a Frozen after construction, so any number of concurrent
// readers share one instance without synchronization.
//
// A Frozen still implements strand.Interner so sealed executables can
// carry it as their session binding, but its vocabulary is closed:
// Intern of a hash outside the vocabulary panics, because assigning a
// fresh ID would require mutation. Query analysis against a sealed
// corpus must therefore run under a per-request QueryInterner overlay,
// never under the Frozen itself.
type Frozen struct {
	vocab []uint64          // dense ID -> hash
	ids   map[uint64]uint32 // hash -> dense ID, never written after construction
}

// Freeze seals the interner's current vocabulary into an immutable
// Frozen. The live interner keeps working afterwards; IDs it assigns
// from then on are outside the frozen vocabulary.
func (it *Interner) Freeze() *Frozen {
	it.mu.RLock()
	defer it.mu.RUnlock()
	f := &Frozen{
		vocab: make([]uint64, len(it.ids)),
		ids:   make(map[uint64]uint32, len(it.ids)),
	}
	for h, id := range it.ids {
		f.vocab[id] = h
		f.ids[h] = id
	}
	return f
}

// FrozenFromVocab reconstructs a Frozen from a serialized vocabulary
// (dense ID → hash, as persisted by a sealed-corpus artifact). A
// vocabulary with duplicate hashes is rejected: it cannot have been
// produced by an interner and would make lookups ambiguous.
func FrozenFromVocab(vocab []uint64) (*Frozen, error) {
	f := &Frozen{
		vocab: slices.Clone(vocab),
		ids:   make(map[uint64]uint32, len(vocab)),
	}
	for id, h := range f.vocab {
		if _, dup := f.ids[h]; dup {
			return nil, fmt.Errorf("corpusindex: frozen vocabulary has duplicate hash %#x", h)
		}
		f.ids[h] = uint32(id)
	}
	return f, nil
}

// Size reports the vocabulary size.
func (f *Frozen) Size() int { return len(f.vocab) }

// Vocab returns the vocabulary ordered by dense ID. The slice is the
// Frozen's own storage: callers must treat it as read-only.
func (f *Frozen) Vocab() []uint64 { return f.vocab }

// Lookup returns the dense ID of h and whether h is in the vocabulary.
// It performs no locking and no allocation.
func (f *Frozen) Lookup(h uint64) (uint32, bool) {
	id, ok := f.ids[h]
	return id, ok
}

// Intern returns the dense ID of a vocabulary hash. It panics on a hash
// outside the closed vocabulary — a sealed corpus cannot grow; route
// query analysis through NewQueryInterner instead.
func (f *Frozen) Intern(h uint64) uint32 {
	id, ok := f.ids[h]
	if !ok {
		panic(fmt.Sprintf("corpusindex: Intern(%#x) on a frozen interner: the sealed vocabulary is closed; analyze queries under a QueryInterner overlay", h))
	}
	return id
}

// InternAll is the bulk form of Intern, with the same closed-vocabulary
// contract.
func (f *Frozen) InternAll(hashes []uint64, out []uint32) []uint32 {
	for _, h := range hashes {
		out = append(out, f.Intern(h))
	}
	return out
}

// QueryInterner is the per-request overlay a sealed corpus analyzes
// query executables under: hashes in the frozen vocabulary resolve to
// their frozen IDs (lock-free), and hashes the corpus has never seen
// get private IDs starting at the frozen vocabulary size, stored in
// request-local state. Private IDs therefore never collide with any ID
// a sealed posting list or CSR row can contain, which is what makes a
// query set interned here directly comparable with sealed sets (see
// strand.Compatible).
//
// A QueryInterner is safe for the concurrent procedure-level workers of
// one query build; it is not meant to be shared across requests.
type QueryInterner struct {
	base *Frozen

	mu    sync.Mutex
	extra map[uint64]uint32 // hashes outside the frozen vocabulary
}

// NewQueryInterner returns an overlay over the frozen vocabulary.
func NewQueryInterner(base *Frozen) *QueryInterner {
	return &QueryInterner{base: base, extra: map[uint64]uint32{}}
}

// BaseInterner implements strand.Rebased.
func (q *QueryInterner) BaseInterner() strand.Interner { return q.base }

// Novel reports how many strand hashes outside the frozen vocabulary
// the overlay has assigned private IDs so far.
func (q *QueryInterner) Novel() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.extra)
}

// Intern returns the frozen ID for vocabulary hashes and a request-local
// private ID (≥ the frozen vocabulary size) otherwise.
func (q *QueryInterner) Intern(h uint64) uint32 {
	if id, ok := q.base.ids[h]; ok {
		return id
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	id, ok := q.extra[h]
	if !ok {
		id = uint32(len(q.base.vocab) + len(q.extra))
		q.extra[h] = id
	}
	return id
}

// InternAll appends the IDs of hashes to out in input order, touching
// the overlay lock only for hashes outside the frozen vocabulary.
func (q *QueryInterner) InternAll(hashes []uint64, out []uint32) []uint32 {
	for _, h := range hashes {
		if id, ok := q.base.ids[h]; ok {
			out = append(out, id)
			continue
		}
		out = append(out, q.Intern(h))
	}
	return out
}

// FrozenIndex is the sealed, read-only form of a corpus-level inverted
// index: the posting lists of an Index flattened into one CSR slab over
// a Frozen vocabulary. It answers the same candidate-ranking queries as
// Index — with the identical ranking and the identical soundness
// contract — but holds no lock and supports no mutation, so unlimited
// concurrent readers share it freely. The only shared structure the
// query path touches is a sync.Pool of scratch accumulators, which is
// race-safe by construction and carries no corpus state between
// queries.
type FrozenIndex struct {
	it   *Frozen
	exes []*sim.Exe
	// CSR postings: posts[rowStart[id]:rowStart[id+1]] lists the
	// (executable, procedure) postings of dense strand ID id.
	rowStart []int32
	posts    []Posting
	// procOff are prefix sums of per-executable procedure counts, as in
	// Index.
	procOff []int32
	// extra lists executables with no postings under the frozen
	// vocabulary (not sealed under it); they are always candidates, as in
	// Index.Candidates.
	extra []int

	scratch sync.Pool

	telQueries   *telemetry.Counter
	telFallbacks *telemetry.Counter
	telFanout    *telemetry.Histogram
}

// NewFrozenIndex builds a sealed index over the frozen vocabulary from
// serialized rows (Index.Rows or a decoded artifact) and the sealed
// executables in their original insertion order. Posting data is copied
// into the index's own flat slab, so the result shares no mutable state
// with its source. Rows must be ordered by strictly increasing ID
// within the vocabulary; violations are rejected.
func NewFrozenIndex(it *Frozen, exes []*sim.Exe, rows []Row) (*FrozenIndex, error) {
	x := &FrozenIndex{it: it, exes: exes}
	x.procOff = make([]int32, len(exes)+1)
	for i, e := range exes {
		x.procOff[i+1] = x.procOff[i] + int32(len(e.Procs))
		if len(e.Procs) > 0 && !strand.Compatible(e.Procs[0].Set.It, it) {
			x.extra = append(x.extra, i)
		}
	}
	total := 0
	for _, r := range rows {
		total += len(r.Posts)
	}
	x.rowStart = make([]int32, len(it.vocab)+1)
	x.posts = make([]Posting, 0, total)
	next := uint32(0)
	for ri, r := range rows {
		if ri > 0 && r.ID <= rows[ri-1].ID {
			return nil, fmt.Errorf("corpusindex: frozen index rows not strictly increasing at row %d", ri)
		}
		if int(r.ID) >= len(it.vocab) {
			return nil, fmt.Errorf("corpusindex: frozen index row ID %d outside the %d-entry vocabulary", r.ID, len(it.vocab))
		}
		for ; next <= r.ID; next++ {
			x.rowStart[next] = int32(len(x.posts))
		}
		for _, p := range r.Posts {
			if int(p.Exe) >= len(exes) || p.Exe < 0 {
				return nil, fmt.Errorf("corpusindex: frozen index posting references executable %d of %d", p.Exe, len(exes))
			}
			if int(p.Proc) >= len(exes[p.Exe].Procs) || p.Proc < 0 {
				return nil, fmt.Errorf("corpusindex: frozen index posting references procedure %d of %d", p.Proc, len(exes[p.Exe].Procs))
			}
		}
		x.posts = append(x.posts, r.Posts...)
	}
	for ; int(next) <= len(it.vocab); next++ {
		x.rowStart[next] = int32(len(x.posts))
	}
	return x, nil
}

// SetTelemetry attaches metric handles. Call it before serving queries;
// it is not synchronized against concurrent Candidates calls.
func (x *FrozenIndex) SetTelemetry(tel *Telemetry) {
	if tel == nil {
		x.telQueries, x.telFallbacks, x.telFanout = nil, nil, nil
		return
	}
	x.telQueries = tel.Queries
	x.telFallbacks = tel.Fallbacks
	x.telFanout = tel.Fanout
}

// Interner returns the frozen vocabulary the index is keyed by.
func (x *FrozenIndex) Interner() *Frozen { return x.it }

// Len reports the number of indexed executables.
func (x *FrozenIndex) Len() int { return len(x.exes) }

// Postings reports the total number of (strand, executable, procedure)
// postings held.
func (x *FrozenIndex) Postings() int { return len(x.posts) }

// Rows returns the index's non-empty posting rows ordered by strictly
// increasing dense strand ID — the serialized form a sealed-corpus
// artifact persists. Posting slices alias the index's slab; callers
// must treat them as read-only.
func (x *FrozenIndex) Rows() []Row {
	var out []Row
	for id := 0; id < len(x.rowStart)-1; id++ {
		if x.rowStart[id] < x.rowStart[id+1] {
			out = append(out, Row{ID: uint32(id), Posts: x.posts[x.rowStart[id]:x.rowStart[id+1]]})
		}
	}
	return out
}

// Candidates is Index.Candidates over the sealed postings: identical
// ranking, identical soundness, no locks.
func (x *FrozenIndex) Candidates(q strand.Set, minScore int, ratioFloor float64) ([]Candidate, bool) {
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	out := append([]Candidate(nil), s.cands...)
	x.putScratch(s)
	return out, true
}

// CandidateIndices is Index.CandidateIndices over the sealed postings.
func (x *FrozenIndex) CandidateIndices(q strand.Set, minScore int, ratioFloor float64, buf []int) ([]int, bool) {
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	for _, c := range s.cands {
		buf = append(buf, c.Exe)
	}
	x.putScratch(s)
	return buf, true
}

func (x *FrozenIndex) getScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	if total := int(x.procOff[len(x.exes)]); len(s.counts) < total {
		s.counts = make([]int32, total)
	}
	if len(s.maxSim) < len(x.exes) {
		s.maxSim = make([]int32, len(x.exes))
	}
	return s
}

func (x *FrozenIndex) putScratch(s *queryScratch) {
	for _, di := range s.touched {
		s.counts[di] = 0
	}
	for _, ei := range s.exes {
		s.maxSim[ei] = 0
	}
	s.touched = s.touched[:0]
	s.exes = s.exes[:0]
	s.cands = s.cands[:0]
	x.scratch.Put(s)
}

// accumulate mirrors Index.accumulate over the CSR slab. Query sets
// must be interned under the frozen vocabulary or an overlay of it
// (strand.Compatible); overlay-private IDs lie above the vocabulary and
// fall out of the bounds check, exactly like a live session's
// posting-free fresh IDs.
func (x *FrozenIndex) accumulate(q strand.Set, minScore int, ratioFloor float64) (*queryScratch, bool) {
	if !strand.Compatible(q.It, x.it) {
		return nil, false
	}
	s := x.getScratch()
	for _, id := range q.IDs {
		if int(id) >= len(x.rowStart)-1 {
			continue
		}
		for _, p := range x.posts[x.rowStart[id]:x.rowStart[id+1]] {
			di := x.procOff[p.Exe] + p.Proc
			c := s.counts[di] + 1
			s.counts[di] = c
			if c == 1 {
				s.touched = append(s.touched, di)
			}
			if c > s.maxSim[p.Exe] {
				if s.maxSim[p.Exe] == 0 {
					s.exes = append(s.exes, p.Exe)
				}
				s.maxSim[p.Exe] = c
			}
		}
	}
	qsize := len(q.IDs)
	if minScore < 1 {
		minScore = 1
	}
	for _, ei := range s.exes {
		c := int(s.maxSim[ei])
		if c < minScore {
			continue
		}
		if ratioFloor > 0 && qsize > 0 && float64(c)/float64(qsize) < ratioFloor {
			continue
		}
		s.cands = append(s.cands, Candidate{Exe: int(ei), MaxSim: c})
	}
	for _, ei := range x.extra {
		s.cands = append(s.cands, Candidate{Exe: ei, MaxSim: 0})
	}
	slices.SortFunc(s.cands, func(a, b Candidate) int {
		if a.MaxSim != b.MaxSim {
			return b.MaxSim - a.MaxSim
		}
		return a.Exe - b.Exe
	})
	return s, true
}
