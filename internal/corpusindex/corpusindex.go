// Package corpusindex implements the shared signature store an analyzer
// session is built around: a strand-hash interner that deduplicates the
// 64-bit canonical strand hashes of every executable analyzed under one
// session into dense IDs, and a corpus-level inverted index mapping each
// dense strand ID to its (executable, procedure) postings.
//
// The interner is what lets sim.Exe keep sorted dense-ID sets and
// slice-backed posting lists instead of per-executable hash maps; the
// index is what lets a whole-image (or whole-corpus) search rank
// candidate executables by shared-strand count and skip targets that
// provably cannot clear the acceptance threshold, instead of playing
// the back-and-forth game against every executable.
package corpusindex

import (
	"slices"
	"sync"

	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

// Telemetry is the optional handle set candidate queries record
// against; a nil pointer (and any nil field) disables the
// corresponding metric. Rankings are identical with and without it.
type Telemetry struct {
	// Queries counts candidate-ranking queries answered from postings.
	Queries *telemetry.Counter
	// Fallbacks counts queries whose set was not interned under this
	// session, forcing the caller into exhaustive examination.
	Fallbacks *telemetry.Counter
	// Fanout observes the number of candidate executables each answered
	// query kept after the score floors.
	Fanout *telemetry.Histogram
	// LSHProbes counts queries that consulted the MinHash/LSH signature
	// tier (exact probe-order ranking and approximate bounding alike).
	LSHProbes *telemetry.Counter
	// LSHFallbacks counts approximate queries served by the exact
	// prefilter because the index holds no signature data (e.g. a
	// pre-signature v2 shard).
	LSHFallbacks *telemetry.Counter
	// LSHCandidates observes the LSH-bounded candidate count of each
	// approximate query — the executables actually examined instead of
	// the full posting-scan fanout.
	LSHCandidates *telemetry.Histogram
}

// Interner assigns dense uint32 IDs to 64-bit strand hashes, first come
// first served. It is safe for concurrent use: parallel analysis of the
// executables of an image interns through one shared instance.
type Interner struct {
	mu  sync.RWMutex
	ids map[uint64]uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: map[uint64]uint32{}}
}

// Intern returns the dense ID for hash, assigning the next free ID on
// first sight.
func (it *Interner) Intern(h uint64) uint32 {
	it.mu.RLock()
	id, ok := it.ids[h]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.ids[h]; ok {
		return id
	}
	id = uint32(len(it.ids))
	it.ids[h] = id
	return id
}

// InternAll appends the dense IDs of hashes to out in input order and
// returns it, taking the lock once per batch instead of once per hash.
// It implements strand.BulkInterner, the fast path Set.Interned and the
// block-cache extractor use: on a cache miss a whole block's strand
// hashes intern under one read-lock round (plus one write round when
// the block introduces new vocabulary).
func (it *Interner) InternAll(hashes []uint64, out []uint32) []uint32 {
	base := len(out)
	missed := false
	it.mu.RLock()
	for _, h := range hashes {
		id, ok := it.ids[h]
		if !ok {
			missed = true
			break
		}
		out = append(out, id)
	}
	it.mu.RUnlock()
	if !missed {
		return out
	}
	out = out[:base]
	it.mu.Lock()
	defer it.mu.Unlock()
	for _, h := range hashes {
		id, ok := it.ids[h]
		if !ok {
			id = uint32(len(it.ids))
			it.ids[h] = id
		}
		out = append(out, id)
	}
	return out
}

// Size reports the number of distinct strand hashes interned so far —
// the session's strand vocabulary.
func (it *Interner) Size() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.ids)
}

// Hashes returns the interned vocabulary ordered by dense ID:
// Hashes()[id] is the 64-bit strand hash id stands for. It is the
// serialized form of the interner a snapshot persists.
func (it *Interner) Hashes() []uint64 {
	it.mu.RLock()
	defer it.mu.RUnlock()
	out := make([]uint64, len(it.ids))
	for h, id := range it.ids {
		out[id] = h
	}
	return out
}

// Posting locates one procedure that contains a strand: Exe is the
// executable's insertion-order ID in its index, Proc the procedure's
// position within the executable.
type Posting struct {
	Exe  int32
	Proc int32
}

// Row is one inverted-index row: a dense strand ID and the postings of
// every procedure containing that strand.
type Row struct {
	ID    uint32
	Posts []Posting
}

// Index is the corpus-level inverted index: dense strand ID →
// (executable, procedure) postings over every executable added to it.
// Executables are identified by their insertion order.
type Index struct {
	mu   sync.RWMutex
	it   *Interner
	exes []*sim.Exe
	post [][]Posting // indexed by dense strand ID
	// procOff are prefix sums of per-executable procedure counts:
	// procedure p of executable e occupies dense slot procOff[e]+p in a
	// query scratch. procOff[len(exes)] is the corpus procedure total.
	procOff []int32
	// scratch pools query accumulators (see queryScratch): Candidates is
	// on the search hot path and must not allocate per query.
	scratch sync.Pool

	// Per-procedure MinHash signatures in dense-slot order, appended
	// incrementally by Add (sentinel blocks for un-interned executables)
	// and consumed by the LSH tier (see lsh.go). The bucket structure is
	// rebuilt lazily when executables were added since the last build;
	// lshMu serializes slab repair and bucket builds under the read lock.
	sigs    []uint32
	lshMu   sync.Mutex
	lsh     *lshIndex
	lshExes int

	// telemetry handles; the struct fields are individually nil-safe, so
	// recording is unconditional once copied here.
	telQueries       *telemetry.Counter
	telFallbacks     *telemetry.Counter
	telFanout        *telemetry.Histogram
	telLSHProbes     *telemetry.Counter
	telLSHFallbacks  *telemetry.Counter
	telLSHCandidates *telemetry.Histogram
}

// SetTelemetry attaches metric handles to the index. Call it before
// issuing queries; it is not synchronized against concurrent Candidates
// calls.
func (x *Index) SetTelemetry(tel *Telemetry) {
	if tel == nil {
		x.telQueries, x.telFallbacks, x.telFanout = nil, nil, nil
		x.telLSHProbes, x.telLSHFallbacks, x.telLSHCandidates = nil, nil, nil
		return
	}
	x.telQueries = tel.Queries
	x.telFallbacks = tel.Fallbacks
	x.telFanout = tel.Fanout
	x.telLSHProbes = tel.LSHProbes
	x.telLSHFallbacks = tel.LSHFallbacks
	x.telLSHCandidates = tel.LSHCandidates
}

// NewIndex returns an empty index over the session's interner.
func NewIndex(it *Interner) *Index {
	return &Index{it: it, procOff: []int32{0}}
}

// Interner returns the session interner the index is keyed by.
func (x *Index) Interner() *Interner { return x.it }

// Add indexes every procedure of e and returns e's executable ID (its
// position in insertion order). The executable must have been built
// under the index's session so its sets carry comparable dense IDs;
// un-interned executables are registered but contribute no postings
// (searches fall back to exhaustive examination for them).
func (x *Index) Add(e *sim.Exe) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	ei := len(x.exes)
	x.exes = append(x.exes, e)
	x.procOff = append(x.procOff, x.procOff[ei]+int32(len(e.Procs)))
	// Signatures build incrementally with the corpus; the slab stays in
	// lockstep with procOff so Seal/WriteShards can persist it verbatim.
	// Un-interned executables contribute sentinel blocks: their foreign
	// IDs would hash into meaningless buckets, and they are always
	// candidates anyway.
	if len(x.sigs) == int(x.procOff[ei])*strand.SigWords {
		if interned(x.it, e) {
			x.sigs = append(x.sigs, e.Signatures()...)
		} else {
			x.sigs = appendEmptySigs(x.sigs, len(e.Procs))
		}
	}
	for pi, p := range e.Procs {
		if p.Set.It != strand.Interner(x.it) {
			continue
		}
		for _, id := range p.Set.IDs {
			if int(id) >= len(x.post) {
				// Grow through append so capacity doubles amortizedly;
				// growing to exactly id+1 each time is quadratic over a
				// session's vocabulary.
				x.post = append(x.post, make([][]Posting, int(id)+1-len(x.post))...)
			}
			x.post[id] = append(x.post[id], Posting{Exe: int32(ei), Proc: int32(pi)})
		}
	}
	return ei
}

// Len reports the number of indexed executables.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.exes)
}

// Postings reports the total number of (strand, executable, procedure)
// postings held — the index's size measure.
func (x *Index) Postings() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for _, ps := range x.post {
		n += len(ps)
	}
	return n
}

// Candidate is one executable that could contain the query procedure.
type Candidate struct {
	// Exe is the executable's insertion-order ID.
	Exe int
	// MaxSim is the maximum Sim(q, p) over the executable's procedures —
	// an exact upper bound on the score of any finding the game can
	// produce in this executable.
	MaxSim int
}

// Candidates ranks the indexed executables by MaxSim against the query
// set and drops those provably unable to clear the acceptance floors:
// a finding's score is Sim(q, matched procedure) ≤ MaxSim, so an
// executable with MaxSim < minScore — or, when ratioFloor > 0, with
// MaxSim/|q| < ratioFloor — cannot yield an accepted finding. Pass
// ratioFloor 0 when the acceptance ratio is not plain Score/|q| (e.g.
// under a strand weigher). The ranking is deterministic: MaxSim
// descending, executable ID ascending.
//
// The second return is false when the query set was not interned under
// this index's session, in which case the caller must fall back to
// exhaustive examination.
func (x *Index) Candidates(q strand.Set, minScore int, ratioFloor float64) ([]Candidate, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	out := append([]Candidate(nil), s.cands...)
	x.putScratch(s)
	return out, true
}

// CandidateIndices is Candidates reduced to the executable IDs, appended
// to buf (which may be nil) — the allocation-free form the search
// prefilter consumes. The order is Candidates' ranking.
func (x *Index) CandidateIndices(q strand.Set, minScore int, ratioFloor float64, buf []int) ([]int, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	s, ok := x.accumulate(q, minScore, ratioFloor)
	if !ok {
		x.telFallbacks.Inc()
		return nil, false
	}
	x.telQueries.Inc()
	x.telFanout.Observe(int64(len(s.cands)))
	for _, c := range s.cands {
		buf = append(buf, c.Exe)
	}
	x.putScratch(s)
	return buf, true
}

// queryScratch is one query's pooled accumulator state. The dense counts
// slab replaces the (exe,proc)-keyed hash map the prefilter used to
// rebuild per query; only the entries a query actually touched are
// zeroed on release, so reuse is O(postings touched), not O(corpus).
type queryScratch struct {
	counts  []int32     // per (exe, proc) dense slot, all-zero between queries
	maxSim  []int32     // per exe, all-zero between queries
	touched []int32     // dense slots bumped by this query
	exes    []int32     // exe IDs with maxSim > 0 this query
	cands   []Candidate // the ranked result, reused across queries
	// LSH probe state (see lsh.go): per-exe band-collision counts with
	// the same zero-between-queries invariant, the exes touched by the
	// probe, and the query signature buffer.
	bandCnt  []int32
	bandExes []int32
	qsig     []uint32
}

// getScratch draws a scratch sized for the current corpus layout. The
// zero-between-queries invariant holds because putScratch clears every
// touched entry and fresh allocations are zeroed by the runtime.
func (x *Index) getScratch() *queryScratch {
	s, _ := x.scratch.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	if total := int(x.procOff[len(x.exes)]); len(s.counts) < total {
		s.counts = make([]int32, total)
	}
	if len(s.maxSim) < len(x.exes) {
		s.maxSim = make([]int32, len(x.exes))
	}
	if len(s.bandCnt) < len(x.exes) {
		s.bandCnt = make([]int32, len(x.exes))
	}
	if len(s.qsig) < strand.SigWords {
		s.qsig = make([]uint32, strand.SigWords)
	}
	return s
}

func (x *Index) putScratch(s *queryScratch) {
	for _, di := range s.touched {
		s.counts[di] = 0
	}
	for _, ei := range s.exes {
		s.maxSim[ei] = 0
	}
	for _, ei := range s.bandExes {
		s.bandCnt[ei] = 0
	}
	s.touched = s.touched[:0]
	s.exes = s.exes[:0]
	s.bandExes = s.bandExes[:0]
	s.cands = s.cands[:0]
	x.scratch.Put(s)
}

// accumulate runs one ranking query into pooled scratch; the caller owns
// the returned scratch until putScratch. Callers hold at least a read
// lock.
func (x *Index) accumulate(q strand.Set, minScore int, ratioFloor float64) (*queryScratch, bool) {
	if !strand.Compatible(q.It, x.it) {
		return nil, false
	}
	s := x.getScratch()
	x.accumulateInto(s, q, minScore, ratioFloor)
	return s, true
}

// accumulateInto is accumulate's body over caller-held scratch, so the
// LSH path can run the posting scan after its bucket probe without a
// second scratch round-trip. Compatibility is the caller's check.
func (x *Index) accumulateInto(s *queryScratch, q strand.Set, minScore int, ratioFloor float64) {
	// Count shared strands per (exe, proc) dense slot; the per-exe
	// maximum over procedures is the bound the floors apply to.
	for _, id := range q.IDs {
		if int(id) >= len(x.post) {
			continue
		}
		for _, p := range x.post[id] {
			di := x.procOff[p.Exe] + p.Proc
			c := s.counts[di] + 1
			s.counts[di] = c
			if c == 1 {
				s.touched = append(s.touched, di)
			}
			if c > s.maxSim[p.Exe] {
				if s.maxSim[p.Exe] == 0 {
					s.exes = append(s.exes, p.Exe)
				}
				s.maxSim[p.Exe] = c
			}
		}
	}
	qsize := len(q.IDs)
	if minScore < 1 {
		minScore = 1
	}
	for _, ei := range s.exes {
		c := int(s.maxSim[ei])
		if c < minScore {
			continue
		}
		if ratioFloor > 0 && qsize > 0 && float64(c)/float64(qsize) < ratioFloor {
			continue
		}
		s.cands = append(s.cands, Candidate{Exe: int(ei), MaxSim: c})
	}
	// Every executable that never interned (no postings) must still be
	// examined: the index has no information about it.
	for ei, e := range x.exes {
		if !interned(x.it, e) {
			s.cands = append(s.cands, Candidate{Exe: ei, MaxSim: 0})
		}
	}
	slices.SortFunc(s.cands, func(a, b Candidate) int {
		if a.MaxSim != b.MaxSim {
			return b.MaxSim - a.MaxSim
		}
		return a.Exe - b.Exe
	})
}

// Rows returns the index's non-empty posting rows ordered by strictly
// increasing dense strand ID — the serialized form a snapshot persists.
// The posting slices are shared with the index, not copied.
func (x *Index) Rows() []Row {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]Row, 0, len(x.post))
	for id, ps := range x.post {
		if len(ps) > 0 {
			out = append(out, Row{ID: uint32(id), Posts: ps})
		}
	}
	return out
}

// RestoreIndex reconstructs an index from rows previously produced by
// Rows, over exes in their original insertion order. The caller
// guarantees the rows' dense-ID space is it's ID space (a snapshot
// loader uses this only when the saved vocabulary re-interned to
// identical IDs; otherwise it rebuilds with Add).
func RestoreIndex(it *Interner, exes []*sim.Exe, rows []Row) *Index {
	x := &Index{it: it, exes: append([]*sim.Exe(nil), exes...)}
	x.procOff = make([]int32, len(x.exes)+1)
	for i, e := range x.exes {
		x.procOff[i+1] = x.procOff[i] + int32(len(e.Procs))
	}
	if n := len(rows); n > 0 {
		x.post = make([][]Posting, rows[n-1].ID+1)
	}
	for _, r := range rows {
		x.post[r.ID] = r.Posts
	}
	return x
}

// interned reports whether e carries dense IDs from it (checked on the
// first procedure: Build interns all sets or none).
func interned(it *Interner, e *sim.Exe) bool {
	if len(e.Procs) == 0 {
		return true // nothing to examine either way
	}
	return e.Procs[0].Set.It == strand.Interner(it)
}
