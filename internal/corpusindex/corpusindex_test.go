package corpusindex

import (
	"sync"
	"testing"

	"firmup/internal/sim"
	"firmup/internal/strand"
)

func set(hashes ...uint64) strand.Set {
	s := append([]uint64(nil), hashes...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return strand.Set{Hashes: s}
}

func TestInternerDedup(t *testing.T) {
	it := NewInterner()
	a := it.Intern(42)
	b := it.Intern(77)
	if a == b {
		t.Fatalf("distinct hashes share ID %d", a)
	}
	if got := it.Intern(42); got != a {
		t.Errorf("re-intern(42) = %d, want %d", got, a)
	}
	if it.Size() != 2 {
		t.Errorf("Size = %d, want 2", it.Size())
	}
}

func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	const goroutines, hashes = 8, 500
	var wg sync.WaitGroup
	ids := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, hashes)
			for h := 0; h < hashes; h++ {
				ids[g][h] = it.Intern(uint64(h))
			}
		}(g)
	}
	wg.Wait()
	if it.Size() != hashes {
		t.Fatalf("Size = %d, want %d", it.Size(), hashes)
	}
	for g := 1; g < goroutines; g++ {
		for h := 0; h < hashes; h++ {
			if ids[g][h] != ids[0][h] {
				t.Fatalf("goroutine %d saw ID %d for hash %d, goroutine 0 saw %d",
					g, ids[g][h], h, ids[0][h])
			}
		}
	}
}

// exes returns a small corpus built under one session plus its index.
func buildCorpus(t *testing.T) (*Interner, *Index, []*sim.Exe) {
	t.Helper()
	it := NewInterner()
	exes := []*sim.Exe{
		sim.FromProcsSession("a", []*sim.Proc{
			{Name: "a0", Set: set(1, 2, 3, 4, 5)},
			{Name: "a1", Set: set(4, 5, 6)},
		}, it),
		sim.FromProcsSession("b", []*sim.Proc{
			{Name: "b0", Set: set(1, 2)},
		}, it),
		sim.FromProcsSession("c", []*sim.Proc{
			{Name: "c0", Set: set(100, 101)},
		}, it),
	}
	x := NewIndex(it)
	for _, e := range exes {
		x.Add(e)
	}
	return it, x, exes
}

func TestCandidatesMatchBruteForce(t *testing.T) {
	it, x, exes := buildCorpus(t)
	q := set(1, 2, 3, 9).Interned(it)

	cands, ok := x.Candidates(q, 1, 0)
	if !ok {
		t.Fatal("same-session query must be filterable")
	}
	want := map[int]int{} // exe -> brute-force max Sim
	for ei, e := range exes {
		max := 0
		for i := range e.Procs {
			if s := e.Sim(q, i); s > max {
				max = s
			}
		}
		if max > 0 {
			want[ei] = max
		}
	}
	if len(cands) != len(want) {
		t.Fatalf("candidates = %+v, want exes %v", cands, want)
	}
	for _, c := range cands {
		if want[c.Exe] != c.MaxSim {
			t.Errorf("exe %d MaxSim = %d, want %d", c.Exe, c.MaxSim, want[c.Exe])
		}
	}
	// Ranking: MaxSim descending.
	for i := 1; i < len(cands); i++ {
		if cands[i].MaxSim > cands[i-1].MaxSim {
			t.Errorf("candidates out of order: %+v", cands)
		}
	}
}

func TestCandidatesFloors(t *testing.T) {
	it, x, _ := buildCorpus(t)
	q := set(1, 2, 3, 9).Interned(it)

	// minScore 3: only exe a (max Sim 3 via a0) survives.
	cands, ok := x.Candidates(q, 3, 0)
	if !ok || len(cands) != 1 || cands[0].Exe != 0 || cands[0].MaxSim != 3 {
		t.Errorf("minScore=3 candidates = %+v, ok=%v; want just exe 0 at MaxSim 3", cands, ok)
	}
	// ratio floor 0.9 with |q|=4: even 3/4 shared fails.
	cands, ok = x.Candidates(q, 1, 0.9)
	if !ok || len(cands) != 0 {
		t.Errorf("ratioFloor=0.9 candidates = %+v, want none", cands)
	}
}

func TestCandidatesCrossSession(t *testing.T) {
	_, x, _ := buildCorpus(t)
	other := NewInterner()
	q := set(1, 2, 3).Interned(other)
	if _, ok := x.Candidates(q, 1, 0); ok {
		t.Error("query from another session must report ok=false")
	}
	if _, ok := x.Candidates(set(1, 2, 3), 1, 0); ok {
		t.Error("un-interned query must report ok=false")
	}
}

func TestUninternedExeAlwaysCandidate(t *testing.T) {
	it, x, _ := buildCorpus(t)
	// An executable from outside the session carries no postings; the
	// index must keep it examinable rather than silently pruning it.
	foreign := sim.FromProcs("f", []*sim.Proc{{Name: "f0", Set: set(1, 2, 3)}})
	fi := x.Add(foreign)
	q := set(1, 2, 3).Interned(it)
	cands, ok := x.Candidates(q, 3, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	found := false
	for _, c := range cands {
		if c.Exe == fi {
			found = true
		}
	}
	if !found {
		t.Errorf("foreign exe %d missing from candidates %+v", fi, cands)
	}
}
