package corpusindex

import (
	"reflect"
	"sync"
	"testing"

	"firmup/internal/sim"
	"firmup/internal/strand"
)

func set(hashes ...uint64) strand.Set {
	s := append([]uint64(nil), hashes...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return strand.Set{Hashes: s}
}

func TestInternerDedup(t *testing.T) {
	it := NewInterner()
	a := it.Intern(42)
	b := it.Intern(77)
	if a == b {
		t.Fatalf("distinct hashes share ID %d", a)
	}
	if got := it.Intern(42); got != a {
		t.Errorf("re-intern(42) = %d, want %d", got, a)
	}
	if it.Size() != 2 {
		t.Errorf("Size = %d, want 2", it.Size())
	}
}

func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	const goroutines, hashes = 8, 500
	var wg sync.WaitGroup
	ids := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, hashes)
			for h := 0; h < hashes; h++ {
				ids[g][h] = it.Intern(uint64(h))
			}
		}(g)
	}
	wg.Wait()
	if it.Size() != hashes {
		t.Fatalf("Size = %d, want %d", it.Size(), hashes)
	}
	for g := 1; g < goroutines; g++ {
		for h := 0; h < hashes; h++ {
			if ids[g][h] != ids[0][h] {
				t.Fatalf("goroutine %d saw ID %d for hash %d, goroutine 0 saw %d",
					g, ids[g][h], h, ids[0][h])
			}
		}
	}
}

// exes returns a small corpus built under one session plus its index.
func buildCorpus(t *testing.T) (*Interner, *Index, []*sim.Exe) {
	t.Helper()
	it := NewInterner()
	exes := []*sim.Exe{
		sim.FromProcsSession("a", []*sim.Proc{
			{Name: "a0", Set: set(1, 2, 3, 4, 5)},
			{Name: "a1", Set: set(4, 5, 6)},
		}, it),
		sim.FromProcsSession("b", []*sim.Proc{
			{Name: "b0", Set: set(1, 2)},
		}, it),
		sim.FromProcsSession("c", []*sim.Proc{
			{Name: "c0", Set: set(100, 101)},
		}, it),
	}
	x := NewIndex(it)
	for _, e := range exes {
		x.Add(e)
	}
	return it, x, exes
}

func TestCandidatesMatchBruteForce(t *testing.T) {
	it, x, exes := buildCorpus(t)
	q := set(1, 2, 3, 9).Interned(it)

	cands, ok := x.Candidates(q, 1, 0)
	if !ok {
		t.Fatal("same-session query must be filterable")
	}
	want := map[int]int{} // exe -> brute-force max Sim
	for ei, e := range exes {
		max := 0
		for i := range e.Procs {
			if s := e.Sim(q, i); s > max {
				max = s
			}
		}
		if max > 0 {
			want[ei] = max
		}
	}
	if len(cands) != len(want) {
		t.Fatalf("candidates = %+v, want exes %v", cands, want)
	}
	for _, c := range cands {
		if want[c.Exe] != c.MaxSim {
			t.Errorf("exe %d MaxSim = %d, want %d", c.Exe, c.MaxSim, want[c.Exe])
		}
	}
	// Ranking: MaxSim descending.
	for i := 1; i < len(cands); i++ {
		if cands[i].MaxSim > cands[i-1].MaxSim {
			t.Errorf("candidates out of order: %+v", cands)
		}
	}
}

func TestCandidatesFloors(t *testing.T) {
	it, x, _ := buildCorpus(t)
	q := set(1, 2, 3, 9).Interned(it)

	// minScore 3: only exe a (max Sim 3 via a0) survives.
	cands, ok := x.Candidates(q, 3, 0)
	if !ok || len(cands) != 1 || cands[0].Exe != 0 || cands[0].MaxSim != 3 {
		t.Errorf("minScore=3 candidates = %+v, ok=%v; want just exe 0 at MaxSim 3", cands, ok)
	}
	// ratio floor 0.9 with |q|=4: even 3/4 shared fails.
	cands, ok = x.Candidates(q, 1, 0.9)
	if !ok || len(cands) != 0 {
		t.Errorf("ratioFloor=0.9 candidates = %+v, want none", cands)
	}
}

func TestCandidatesCrossSession(t *testing.T) {
	_, x, _ := buildCorpus(t)
	other := NewInterner()
	q := set(1, 2, 3).Interned(other)
	if _, ok := x.Candidates(q, 1, 0); ok {
		t.Error("query from another session must report ok=false")
	}
	if _, ok := x.Candidates(set(1, 2, 3), 1, 0); ok {
		t.Error("un-interned query must report ok=false")
	}
}

func TestUninternedExeAlwaysCandidate(t *testing.T) {
	it, x, _ := buildCorpus(t)
	// An executable from outside the session carries no postings; the
	// index must keep it examinable rather than silently pruning it.
	foreign := sim.FromProcs("f", []*sim.Proc{{Name: "f0", Set: set(1, 2, 3)}})
	fi := x.Add(foreign)
	q := set(1, 2, 3).Interned(it)
	cands, ok := x.Candidates(q, 3, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	found := false
	for _, c := range cands {
		if c.Exe == fi {
			found = true
		}
	}
	if !found {
		t.Errorf("foreign exe %d missing from candidates %+v", fi, cands)
	}
}

// CandidateIndices must be exactly Candidates reduced to exe IDs, in
// ranking order, appended to the caller's buffer.
func TestCandidateIndicesMatchesCandidates(t *testing.T) {
	it, x, _ := buildCorpus(t)
	q := set(1, 2, 3, 9).Interned(it)
	cands, ok := x.Candidates(q, 1, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	ids, ok := x.CandidateIndices(q, 1, 0, []int{-7})
	if !ok {
		t.Fatal("expected filterable")
	}
	if len(ids) != len(cands)+1 || ids[0] != -7 {
		t.Fatalf("buffer append semantics broken: %v", ids)
	}
	for i, c := range cands {
		if ids[i+1] != c.Exe {
			t.Errorf("ids[%d] = %d, want %d", i+1, ids[i+1], c.Exe)
		}
	}
	other := NewInterner()
	if _, ok := x.CandidateIndices(set(1, 2).Interned(other), 1, 0, nil); ok {
		t.Error("cross-session query must report ok=false")
	}
}

// Repeated queries through the pooled scratch must be self-consistent:
// identical inputs give identical rankings, interleaved with different
// queries and index growth.
func TestCandidatesScratchReuse(t *testing.T) {
	it, x, _ := buildCorpus(t)
	qa := set(1, 2, 3, 9).Interned(it)
	qb := set(4, 5, 6).Interned(it)
	first, ok := x.Candidates(qa, 1, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	for i := 0; i < 20; i++ {
		if _, ok := x.Candidates(qb, 1, 0); !ok {
			t.Fatal("expected filterable")
		}
		again, ok := x.Candidates(qa, 1, 0)
		if !ok {
			t.Fatal("expected filterable")
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("iter %d: ranking drifted across scratch reuse:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
	// Growing the index must invalidate nothing: the new exe appears,
	// previous ones keep their scores.
	ni := x.Add(sim.FromProcsSession("d", []*sim.Proc{
		{Name: "d0", Set: set(1, 2, 3, 9).Interned(it)},
	}, it))
	grown, ok := x.Candidates(qa, 1, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	if len(grown) != len(first)+1 {
		t.Fatalf("grown ranking = %+v", grown)
	}
	if grown[0].Exe != ni || grown[0].MaxSim != 4 {
		t.Fatalf("new exe should rank first with MaxSim 4: %+v", grown)
	}
}

// The scratch pool must hold up under concurrent queries (the search
// workers of parallel sessions share one index).
func TestCandidatesConcurrent(t *testing.T) {
	it, x, _ := buildCorpus(t)
	qa := set(1, 2, 3, 9).Interned(it)
	want, ok := x.Candidates(qa, 1, 0)
	if !ok {
		t.Fatal("expected filterable")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, ok := x.Candidates(qa, 1, 0)
				if !ok || !reflect.DeepEqual(got, want) {
					errs <- "concurrent ranking diverged"
					return
				}
				if _, ok := x.CandidateIndices(qa, 1, 0, nil); !ok {
					errs <- "CandidateIndices failed"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Add must stay correct while the posting table grows far beyond its
// previous bound one strand ID at a time (the capacity-doubling path).
func TestAddPostingGrowth(t *testing.T) {
	it := NewInterner()
	x := NewIndex(it)
	const exes = 40
	for e := 0; e < exes; e++ {
		// Each exe introduces fresh hashes, pushing the max dense ID up.
		hs := make([]uint64, 0, 8)
		for k := 0; k < 8; k++ {
			hs = append(hs, uint64(1000*e+k))
		}
		x.Add(sim.FromProcsSession("e", []*sim.Proc{{Name: "p", Set: set(hs...)}}, it))
	}
	if got := x.Postings(); got != exes*8 {
		t.Fatalf("Postings = %d, want %d", got, exes*8)
	}
	// Every exe must be retrievable by its own signature with a full max.
	for e := 0; e < exes; e++ {
		q := set(uint64(1000*e), uint64(1000*e+1), uint64(1000*e+2)).Interned(it)
		cands, ok := x.Candidates(q, 3, 0)
		if !ok || len(cands) != 1 || cands[0].Exe != e || cands[0].MaxSim != 3 {
			t.Fatalf("exe %d: candidates = %+v ok=%v", e, cands, ok)
		}
	}
}
