// Package mir defines the compiler's target-independent mid-level IR.
//
// firmlang source is lowered to MIR (three-address code over unlimited
// virtual registers, explicit basic blocks), optimized, and then handed to
// one of the per-ISA backends in internal/isa. MIR reuses the operation
// vocabulary of internal/uir so that arithmetic semantics are defined in
// exactly one place.
package mir

import (
	"fmt"
	"strings"

	"firmup/internal/uir"
)

// VReg is a virtual register. Parameters occupy v0..v(NParams-1) on entry.
// NoReg marks an absent operand.
type VReg int32

// NoReg is the absent-register sentinel.
const NoReg VReg = -1

// InstrKind discriminates MIR instructions.
type InstrKind uint8

// Instruction kinds.
const (
	KBin        InstrKind = iota // Dst = Op(A, B)
	KUn                          // Dst = Op(A)
	KMovConst                    // Dst = Const
	KMovReg                      // Dst = A
	KAddrGlobal                  // Dst = &Sym
	KAddrStack                   // Dst = &slot[Const]
	KLoad                        // Dst = *(A) (Size bytes)
	KStore                       // *(A) = B (Size bytes)
	KCall                        // Dst = Sym(Args...); Dst may be NoReg
)

// Instr is a single three-address instruction.
type Instr struct {
	Kind  InstrKind
	Op    uir.Op // for KBin/KUn
	Dst   VReg
	A, B  VReg
	Const uint32
	Sym   string
	Size  uint8  // for KLoad/KStore: 1 or 4
	Args  []VReg // for KCall
}

// TermKind discriminates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	TRet    TermKind = iota // return RetVal (or nothing when NoReg)
	TJump                   // goto True
	TBranch                 // if Cond != 0 goto True else goto False
)

// Term ends a basic block.
type Term struct {
	Kind   TermKind
	Cond   VReg
	True   int // block index
	False  int
	RetVal VReg
}

// Block is a MIR basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term
}

// Slot describes one stack-allocated local array.
type Slot struct {
	Name string
	Size int // bytes
}

// Proc is a MIR procedure.
type Proc struct {
	Name    string
	NParams int
	NVRegs  int
	Blocks  []*Block
	Slots   []Slot
	Feature string
}

// NewVReg allocates a fresh virtual register.
func (p *Proc) NewVReg() VReg {
	v := VReg(p.NVRegs)
	p.NVRegs++
	return v
}

// Global is a package-level variable laid out in a data section.
type Global struct {
	Name string
	Data []byte
	RO   bool // read-only (string literals)
}

// Package is a compiled-to-MIR firmlang package.
type Package struct {
	Name    string
	Version string
	Globals []Global
	Procs   []*Proc
}

// Proc returns the procedure with the given name, or nil.
func (pkg *Package) Proc(name string) *Proc {
	for _, p := range pkg.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// String renders an instruction for debugging.
func (in Instr) String() string {
	switch in.Kind {
	case KBin:
		return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.A, in.B)
	case KUn:
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	case KMovConst:
		return fmt.Sprintf("v%d = 0x%x", in.Dst, in.Const)
	case KMovReg:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case KAddrGlobal:
		return fmt.Sprintf("v%d = &%s", in.Dst, in.Sym)
	case KAddrStack:
		return fmt.Sprintf("v%d = &slot%d", in.Dst, in.Const)
	case KLoad:
		return fmt.Sprintf("v%d = load%d [v%d]", in.Dst, in.Size, in.A)
	case KStore:
		return fmt.Sprintf("store%d [v%d] = v%d", in.Size, in.A, in.B)
	case KCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("v%d", a)
		}
		if in.Dst == NoReg {
			return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
		}
		return fmt.Sprintf("v%d = call %s(%s)", in.Dst, in.Sym, strings.Join(args, ", "))
	}
	return "?"
}

// String renders a terminator for debugging.
func (t Term) String() string {
	switch t.Kind {
	case TRet:
		if t.RetVal == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", t.RetVal)
	case TJump:
		return fmt.Sprintf("jump b%d", t.True)
	default:
		return fmt.Sprintf("branch v%d ? b%d : b%d", t.Cond, t.True, t.False)
	}
}

// String renders the whole procedure.
func (p *Proc) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s (%d params, %d vregs)\n", p.Name, p.NParams, p.NVRegs)
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		fmt.Fprintf(&sb, "  %s\n", b.Term)
	}
	return sb.String()
}

// Uses returns the virtual registers read by the instruction.
func (in *Instr) Uses() []VReg {
	switch in.Kind {
	case KBin:
		return []VReg{in.A, in.B}
	case KUn, KMovReg, KLoad:
		return []VReg{in.A}
	case KStore:
		return []VReg{in.A, in.B}
	case KCall:
		return in.Args
	}
	return nil
}

// Def returns the register defined by the instruction, or NoReg.
func (in *Instr) Def() VReg {
	if in.Kind == KStore {
		return NoReg
	}
	return in.Dst
}

// Succs returns successor block IDs of the terminator.
func (t Term) Succs() []int {
	switch t.Kind {
	case TJump:
		return []int{t.True}
	case TBranch:
		return []int{t.True, t.False}
	}
	return nil
}

// Validate checks structural invariants: block IDs match indices,
// terminator targets are in range, all registers are allocated, and every
// use is dominated by a def on some path (approximated as "defined
// somewhere", since lowering guarantees proper dominance).
func (p *Proc) Validate() error {
	defined := make([]bool, p.NVRegs)
	for i := 0; i < p.NParams; i++ {
		if i >= p.NVRegs {
			return fmt.Errorf("proc %s: param v%d beyond NVRegs %d", p.Name, i, p.NVRegs)
		}
		defined[i] = true
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("proc %s: block at index %d has ID %d", p.Name, i, b.ID)
		}
		for _, t := range b.Term.Succs() {
			if t < 0 || t >= len(p.Blocks) {
				return fmt.Errorf("proc %s: block %d jumps to invalid block %d", p.Name, i, t)
			}
		}
		if b.Term.Kind == TBranch && !valid(b.Term.Cond, p.NVRegs) {
			return fmt.Errorf("proc %s: block %d branch on invalid v%d", p.Name, i, b.Term.Cond)
		}
		if b.Term.Kind == TRet && b.Term.RetVal != NoReg && !valid(b.Term.RetVal, p.NVRegs) {
			return fmt.Errorf("proc %s: block %d returns invalid v%d", p.Name, i, b.Term.RetVal)
		}
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				if !valid(u, p.NVRegs) {
					return fmt.Errorf("proc %s: block %d: %s uses invalid register", p.Name, i, in.String())
				}
			}
			if d := in.Def(); d != NoReg {
				if !valid(d, p.NVRegs) {
					return fmt.Errorf("proc %s: block %d: %s defines invalid register", p.Name, i, in.String())
				}
				defined[d] = true
			}
			if in.Kind == KAddrStack && int(in.Const) >= len(p.Slots) {
				return fmt.Errorf("proc %s: block %d references missing slot %d", p.Name, i, in.Const)
			}
			if (in.Kind == KLoad || in.Kind == KStore) && in.Size != 1 && in.Size != 4 {
				return fmt.Errorf("proc %s: block %d: bad access size %d", p.Name, i, in.Size)
			}
		}
	}
	for i, b := range p.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				if !defined[u] {
					return fmt.Errorf("proc %s: block %d uses v%d which is never defined", p.Name, i, u)
				}
			}
		}
	}
	return nil
}

func valid(v VReg, n int) bool { return v >= 0 && int(v) < n }
