package mir

import (
	"strings"
	"testing"

	"firmup/internal/uir"
)

// tiny hand-built procedure: f(a) { if a < 10 { return a+1 } return 0 }
func sampleProc() *Proc {
	p := &Proc{Name: "f", NParams: 1, NVRegs: 1}
	c10 := p.NewVReg()
	cond := p.NewVReg()
	one := p.NewVReg()
	sum := p.NewVReg()
	zero := p.NewVReg()
	p.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{
			{Kind: KMovConst, Dst: c10, Const: 10},
			{Kind: KBin, Op: uir.OpCmpLTS, Dst: cond, A: 0, B: c10},
		}, Term: Term{Kind: TBranch, Cond: cond, True: 1, False: 2}},
		{ID: 1, Instrs: []Instr{
			{Kind: KMovConst, Dst: one, Const: 1},
			{Kind: KBin, Op: uir.OpAdd, Dst: sum, A: 0, B: one},
		}, Term: Term{Kind: TRet, RetVal: sum}},
		{ID: 2, Instrs: []Instr{
			{Kind: KMovConst, Dst: zero, Const: 0},
		}, Term: Term{Kind: TRet, RetVal: zero}},
	}
	return p
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleProc().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadStructures(t *testing.T) {
	p := sampleProc()
	p.Blocks[0].Term.True = 99
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}

	p = sampleProc()
	p.Blocks[1].ID = 7
	if err := p.Validate(); err == nil {
		t.Error("mismatched block ID accepted")
	}

	p = sampleProc()
	p.Blocks[0].Instrs[0].Dst = 99
	if err := p.Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}

	p = sampleProc()
	p.Blocks[0].Instrs = append(p.Blocks[0].Instrs, Instr{Kind: KLoad, Dst: 1, A: 0, Size: 2})
	if err := p.Validate(); err == nil {
		t.Error("bad access size accepted")
	}

	p = sampleProc()
	p.Blocks[0].Instrs = append(p.Blocks[0].Instrs, Instr{Kind: KAddrStack, Dst: 1, Const: 3})
	if err := p.Validate(); err == nil {
		t.Error("missing slot accepted")
	}
}

func TestInterpRunsSample(t *testing.T) {
	pkg := &Package{Name: "p", Procs: []*Proc{sampleProc()}}
	in := NewInterp(pkg)
	if v, err := in.Call("f", 5); err != nil || v != 6 {
		t.Errorf("f(5) = %d, %v", v, err)
	}
	if v, _ := in.Call("f", 50); v != 0 {
		t.Errorf("f(50) = %d", v)
	}
	if _, err := in.Call("nosuch"); err == nil {
		t.Error("unknown procedure accepted")
	}
}

func TestInterpGlobalsAndMemory(t *testing.T) {
	g := Global{Name: "tbl", Data: []byte{1, 0, 0, 0, 2, 0, 0, 0}}
	// f() { return tbl[1]; } — load word at &tbl + 4.
	p := &Proc{Name: "f", NVRegs: 0}
	addr := p.NewVReg()
	four := p.NewVReg()
	sum := p.NewVReg()
	val := p.NewVReg()
	p.Blocks = []*Block{{ID: 0, Instrs: []Instr{
		{Kind: KAddrGlobal, Dst: addr, Sym: "tbl"},
		{Kind: KMovConst, Dst: four, Const: 4},
		{Kind: KBin, Op: uir.OpAdd, Dst: sum, A: addr, B: four},
		{Kind: KLoad, Dst: val, A: sum, Size: 4},
	}, Term: Term{Kind: TRet, RetVal: val}}}
	pkg := &Package{Procs: []*Proc{p}, Globals: []Global{g}}
	in := NewInterp(pkg)
	if v, err := in.Call("f"); err != nil || v != 2 {
		t.Errorf("f() = %d, %v", v, err)
	}
	if _, ok := in.GlobalAddr("tbl"); !ok {
		t.Error("GlobalAddr lookup failed")
	}
}

func TestInstrStringAndAccessors(t *testing.T) {
	ins := Instr{Kind: KCall, Dst: 3, Sym: "callee", Args: []VReg{1, 2}}
	if s := ins.String(); !strings.Contains(s, "callee") {
		t.Errorf("String = %q", s)
	}
	if got := ins.Uses(); len(got) != 2 {
		t.Errorf("Uses = %v", got)
	}
	store := Instr{Kind: KStore, A: 1, B: 2, Size: 4}
	if store.Def() != NoReg {
		t.Error("store must define nothing")
	}
	if len(store.Uses()) != 2 {
		t.Error("store uses addr and value")
	}
	term := Term{Kind: TBranch, Cond: 1, True: 2, False: 3}
	if s := term.Succs(); len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Errorf("Succs = %v", s)
	}
	if s := (Term{Kind: TRet}).Succs(); len(s) != 0 {
		t.Errorf("ret Succs = %v", s)
	}
	if !strings.Contains(sampleProc().String(), "proc f") {
		t.Error("proc String")
	}
}

func TestInterpTracksCalls(t *testing.T) {
	callee := &Proc{Name: "g", NParams: 1, NVRegs: 1}
	callee.Blocks = []*Block{{ID: 0, Term: Term{Kind: TRet, RetVal: 0}}}
	caller := &Proc{Name: "f", NVRegs: 0}
	arg := caller.NewVReg()
	ret := caller.NewVReg()
	caller.Blocks = []*Block{{ID: 0, Instrs: []Instr{
		{Kind: KMovConst, Dst: arg, Const: 7},
		{Kind: KCall, Dst: ret, Sym: "g", Args: []VReg{arg}},
	}, Term: Term{Kind: TRet, RetVal: ret}}}
	pkg := &Package{Procs: []*Proc{caller, callee}}
	in := NewInterp(pkg)
	v, err := in.Call("f")
	if err != nil || v != 7 {
		t.Fatalf("f() = %d, %v", v, err)
	}
	if len(in.Trace) != 2 || in.Trace[1] != "g/1" {
		t.Errorf("trace = %v", in.Trace)
	}
}
