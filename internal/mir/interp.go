package mir

import (
	"fmt"

	"firmup/internal/uir"
)

// Interp is a reference interpreter for MIR packages. It exists for
// testing: the compiler's optimization passes must preserve the observable
// behavior (return value, global memory, call trace) of every procedure,
// and generated corpus procedures are checked for termination under fuel.
type Interp struct {
	Pkg  *Package
	Mem  map[uint32]byte
	base map[string]uint32 // global name -> address
	next uint32
	// Trace records "name(arg0,...)" strings of every call executed.
	Trace []string
	// Fuel bounds total executed instructions; ErrOutOfFuel on exhaustion.
	Fuel int64
}

// ErrOutOfFuel is returned when execution exceeds the interpreter's fuel.
var ErrOutOfFuel = fmt.Errorf("mir: out of fuel")

const (
	globalBase = 0x10000000
	stackBase  = 0x7FFF0000
)

// NewInterp prepares an interpreter with globals laid out in memory.
func NewInterp(pkg *Package) *Interp {
	in := &Interp{
		Pkg:  pkg,
		Mem:  map[uint32]byte{},
		base: map[string]uint32{},
		next: globalBase,
		Fuel: 1 << 22,
	}
	for _, g := range pkg.Globals {
		in.base[g.Name] = in.next
		for i, b := range g.Data {
			in.Mem[in.next+uint32(i)] = b
		}
		in.next += uint32(len(g.Data))
		// Pad and align.
		in.next = (in.next + 7) &^ 3
	}
	return in
}

// GlobalAddr returns the simulated address of a global.
func (in *Interp) GlobalAddr(name string) (uint32, bool) {
	a, ok := in.base[name]
	return a, ok
}

// ReadWord loads a 32-bit little-endian word.
func (in *Interp) ReadWord(addr uint32) uint32 {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(in.Mem[addr+i]) << (8 * i)
	}
	return v
}

// Call runs the named procedure with the given arguments and returns its
// result.
func (in *Interp) Call(name string, args ...uint32) (uint32, error) {
	return in.call(name, args, stackBase)
}

func (in *Interp) call(name string, args []uint32, sp uint32) (uint32, error) {
	p := in.Pkg.Proc(name)
	if p == nil {
		return 0, fmt.Errorf("mir: call to unknown procedure %s", name)
	}
	in.Trace = append(in.Trace, fmt.Sprintf("%s/%d", name, len(args)))
	regs := make([]uint32, p.NVRegs)
	copy(regs, args)
	// Lay out stack slots below sp.
	slotAddr := make([]uint32, len(p.Slots))
	for i, s := range p.Slots {
		sz := uint32(s.Size+3) &^ 3
		sp -= sz
		slotAddr[i] = sp
	}
	bi := 0
	for {
		b := p.Blocks[bi]
		for i := range b.Instrs {
			if in.Fuel--; in.Fuel < 0 {
				return 0, ErrOutOfFuel
			}
			ins := &b.Instrs[i]
			switch ins.Kind {
			case KBin:
				regs[ins.Dst] = uir.EvalBin(ins.Op, regs[ins.A], regs[ins.B])
			case KUn:
				regs[ins.Dst] = uir.EvalUn(ins.Op, regs[ins.A])
			case KMovConst:
				regs[ins.Dst] = ins.Const
			case KMovReg:
				regs[ins.Dst] = regs[ins.A]
			case KAddrGlobal:
				a, ok := in.base[ins.Sym]
				if !ok {
					return 0, fmt.Errorf("mir: %s references unknown global %s", name, ins.Sym)
				}
				regs[ins.Dst] = a
			case KAddrStack:
				regs[ins.Dst] = slotAddr[ins.Const]
			case KLoad:
				var v uint32
				for k := uint8(0); k < ins.Size; k++ {
					v |= uint32(in.Mem[regs[ins.A]+uint32(k)]) << (8 * k)
				}
				regs[ins.Dst] = v
			case KStore:
				v := regs[ins.B]
				for k := uint8(0); k < ins.Size; k++ {
					in.Mem[regs[ins.A]+uint32(k)] = byte(v >> (8 * k))
				}
			case KCall:
				callArgs := make([]uint32, len(ins.Args))
				for k, a := range ins.Args {
					callArgs[k] = regs[a]
				}
				ret, err := in.call(ins.Sym, callArgs, sp)
				if err != nil {
					return 0, err
				}
				if ins.Dst != NoReg {
					regs[ins.Dst] = ret
				}
			}
		}
		switch b.Term.Kind {
		case TRet:
			if b.Term.RetVal == NoReg {
				return 0, nil
			}
			return regs[b.Term.RetVal], nil
		case TJump:
			bi = b.Term.True
		case TBranch:
			if regs[b.Term.Cond] != 0 {
				bi = b.Term.True
			} else {
				bi = b.Term.False
			}
		}
		if in.Fuel--; in.Fuel < 0 {
			return 0, ErrOutOfFuel
		}
	}
}
