package sim

import "firmup/internal/strand"

// Buffers is reusable similarity-accumulation scratch. One Buffers
// value can serve any number of SimAllBuf calls against any executables
// in sequence: the count buffer grows monotonically to the largest
// procedure count seen and is zeroed (never reallocated) on every
// accumulation whose result fits. The batched game engine threads one
// Buffers through every query of a target pass, so cross-query
// similarity accumulations reuse a single allocation instead of one per
// game.
//
// A Buffers value must not be shared by concurrent accumulations; give
// each worker its own.
type Buffers struct {
	counts []int
}

// Grow ensures the count buffer can hold n entries without a later
// reallocation.
func (b *Buffers) Grow(n int) {
	if cap(b.counts) < n {
		b.counts = make([]int, n)
	}
}

// SimAllBuf is SimAllInto accumulating into the shared buffer: the
// returned slice has len(e.Procs) entries and aliases b's storage, so
// it is valid only until the next accumulation through b.
func (e *Exe) SimAllBuf(q strand.Set, b *Buffers) []int {
	b.counts = e.SimAllInto(q, b.counts)
	return b.counts
}
