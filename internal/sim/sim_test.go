package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	"firmup/internal/obj"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

func mk(name string, hashes ...uint64) *Proc {
	s := append([]uint64(nil), hashes...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return &Proc{Name: name, Set: strand.Set{Hashes: s}}
}

func TestSimAllMatchesDirectIntersect(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1, 2, 3),
		mk("b", 3, 4),
		mk("c", 9),
	})
	q := strand.Set{Hashes: []uint64{2, 3, 4}}
	counts := e.SimAll(q)
	want := []int{2, 2, 0}
	for i := range counts {
		if counts[i] != want[i] {
			t.Errorf("SimAll[%d] = %d, want %d", i, counts[i], want[i])
		}
		if got := e.Sim(q, i); got != want[i] {
			t.Errorf("Sim(%d) = %d, want %d", i, got, want[i])
		}
	}
}

// Property: the index-accelerated SimAll always equals the direct sorted
// intersection for random sets.
func TestSimAllProperty(t *testing.T) {
	f := func(qraw, araw, braw []uint8) bool {
		toSet := func(raw []uint8) strand.Set {
			seen := map[uint64]bool{}
			var out []uint64
			for _, x := range raw {
				h := uint64(x % 32)
				if !seen[h] {
					seen[h] = true
					out = append(out, h)
				}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return strand.Set{Hashes: out}
		}
		q := toSet(qraw)
		pa := &Proc{Name: "a", Set: toSet(araw)}
		pb := &Proc{Name: "b", Set: toSet(braw)}
		e := FromProcs("T", []*Proc{pa, pb})
		counts := e.SimAll(q)
		return counts[0] == q.Intersect(pa.Set) && counts[1] == q.Intersect(pb.Set)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestMatchExclusionAndTies(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1, 2),
		mk("b", 1, 2),
		mk("c", 1),
	})
	q := strand.Set{Hashes: []uint64{1, 2}}
	best, score := e.BestMatch(q, nil)
	if best != 0 || score != 2 {
		t.Errorf("tie must break to the lower index: got %d (%d)", best, score)
	}
	best, _ = e.BestMatch(q, func(i int) bool { return i == 0 })
	if best != 1 {
		t.Errorf("exclusion ignored: got %d", best)
	}
	best, _ = e.BestMatch(strand.Set{Hashes: []uint64{77}}, nil)
	if best != -1 {
		t.Errorf("no shared strands must yield -1, got %d", best)
	}
}

func TestTopKOrdering(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1),
		mk("b", 1, 2),
		mk("c", 1, 2, 3),
		mk("d", 9),
	})
	q := strand.Set{Hashes: []uint64{1, 2, 3}}
	top := e.TopK(q, 10)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Proc != 2 || top[1].Proc != 1 || top[2].Proc != 0 {
		t.Errorf("order = %v", top)
	}
	if got := e.TopK(q, 2); len(got) != 2 {
		t.Errorf("cutoff failed: %v", got)
	}
}

func TestBuildPopulatesCallGraph(t *testing.T) {
	pkg, err := compiler.CompileToMIR(isatest.Source, compiler.Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	be, _ := isa.ByArch(uir.ArchMIPS32)
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfg.Recover(obj.FromArtifact(art))
	if err != nil {
		t.Fatal(err)
	}
	e := Build("t", rec, nil)
	di := e.ProcByName("deep")
	if di < 0 {
		t.Fatal("deep missing")
	}
	d := e.Procs[di]
	if len(d.Calls) < 3 {
		t.Errorf("deep has %d callees, want >= 3", len(d.Calls))
	}
	for _, c := range d.Calls {
		found := false
		for _, cb := range e.Procs[c].CalledBy {
			if cb == di {
				found = true
			}
		}
		if !found {
			t.Errorf("callee %s lacks back edge", e.Procs[c].Name)
		}
	}
	if d.BlockCount == 0 || d.EdgeCount == 0 || d.InstCount == 0 {
		t.Errorf("shape metadata empty: %+v", d)
	}
}

func TestProcByName(t *testing.T) {
	e := FromProcs("T", []*Proc{mk("x", 1)})
	if e.ProcByName("x") != 0 || e.ProcByName("y") != -1 {
		t.Error("ProcByName lookup broken")
	}
}

// testInterner is a minimal session interner for the interned-path
// tests (the real one lives in corpusindex, which sim cannot import).
type testInterner struct {
	mu  sync.Mutex
	ids map[uint64]uint32
}

func newTestInterner() *testInterner { return &testInterner{ids: map[uint64]uint32{}} }

func (it *testInterner) Intern(h uint64) uint32 {
	it.mu.Lock()
	defer it.mu.Unlock()
	id, ok := it.ids[h]
	if !ok {
		id = uint32(len(it.ids))
		it.ids[h] = id
	}
	return id
}

// Property: the interned posting-list SimAll equals the hash-map SimAll
// for random sets, both for same-session queries (fast path) and for
// cross-session queries (hash fallback).
func TestInternedSimAllMatchesLegacy(t *testing.T) {
	f := func(qraw, araw, braw []uint8) bool {
		toHashes := func(raw []uint8) []uint64 {
			seen := map[uint64]bool{}
			var out []uint64
			for _, x := range raw {
				h := uint64(x % 64)
				if !seen[h] {
					seen[h] = true
					out = append(out, h)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		qh, ah, bh := toHashes(qraw), toHashes(araw), toHashes(braw)
		legacy := FromProcs("L", []*Proc{
			{Name: "a", Set: strand.Set{Hashes: ah}},
			{Name: "b", Set: strand.Set{Hashes: bh}},
		})
		it := newTestInterner()
		session := FromProcsSession("S", []*Proc{
			{Name: "a", Set: strand.Set{Hashes: ah}},
			{Name: "b", Set: strand.Set{Hashes: bh}},
		}, it)

		qLegacy := strand.Set{Hashes: qh}
		qSame := strand.Set{Hashes: qh}.Interned(it)
		qOther := strand.Set{Hashes: qh}.Interned(newTestInterner())

		want := legacy.SimAll(qLegacy)
		for _, got := range [][]int{session.SimAll(qSame), session.SimAll(qOther), session.SimAll(qLegacy)} {
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The binary-search path of simIDs triggers when the query is much
// smaller than the executable's vocabulary; pin its correctness.
func TestInternedSimAllSmallQueryLargeExe(t *testing.T) {
	it := newTestInterner()
	var big []uint64
	for h := uint64(0); h < 4096; h++ {
		big = append(big, h)
	}
	e := FromProcsSession("S", []*Proc{
		{Name: "big", Set: strand.Set{Hashes: big}},
		{Name: "small", Set: strand.Set{Hashes: []uint64{5, 4095}}},
	}, it)
	q := strand.Set{Hashes: []uint64{5, 1000, 4095, 9999999}}.Interned(it)
	counts := e.SimAll(q)
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v, want [3 2]", counts)
	}
}

func TestProcByNameFirstMatch(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("dup", 1),
		mk("solo", 2),
		mk("dup", 3),
	})
	if i := e.ProcByName("dup"); i != 0 {
		t.Errorf("ProcByName(dup) = %d, want the first occurrence 0", i)
	}
	if i := e.ProcByName("solo"); i != 1 {
		t.Errorf("ProcByName(solo) = %d, want 1", i)
	}
	if i := e.ProcByName("absent"); i != -1 {
		t.Errorf("ProcByName(absent) = %d, want -1", i)
	}
}

// SimAllInto must equal SimAll whatever buffer it is handed: nil, dirty
// and oversized, or too small.
func TestSimAllIntoBufferReuse(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1, 2, 3),
		mk("b", 3, 4),
		mk("c", 9),
	})
	q := strand.Set{Hashes: []uint64{2, 3, 4, 9}}
	want := e.SimAll(q)

	dirty := []int{7, 7, 7, 7, 7, 7}
	got := e.SimAllInto(q, dirty)
	if len(got) != len(e.Procs) {
		t.Fatalf("len = %d, want %d", len(got), len(e.Procs))
	}
	if &got[0] != &dirty[0] {
		t.Error("oversized buffer was not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dirty-buffer counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	small := make([]int, 1)
	got = e.SimAllInto(q, small)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("grown-buffer counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got = e.SimAllInto(q, nil); len(got) != len(want) {
		t.Errorf("nil-buffer len = %d", len(got))
	}
}

// BestMatchFrom over a SimAllInto vector must equal BestMatch for any
// exclusion set.
func TestBestMatchFromEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		procs := make([]*Proc, n)
		for i := range procs {
			var hs []uint64
			seen := map[uint64]bool{}
			for k := 0; k < 1+rng.Intn(6); k++ {
				h := uint64(1 + rng.Intn(12))
				if !seen[h] {
					seen[h] = true
					hs = append(hs, h)
				}
			}
			procs[i] = mk("p", hs...)
		}
		e := FromProcs("T", procs)
		var qh []uint64
		for h := uint64(1); h <= 12; h++ {
			if rng.Intn(2) == 0 {
				qh = append(qh, h)
			}
		}
		q := strand.Set{Hashes: qh}
		ex := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				ex[i] = true
			}
		}
		excluded := func(i int) bool { return ex[i] }
		wb, ws := e.BestMatch(q, excluded)
		counts := e.SimAllInto(q, make([]int, 0, n))
		gb, gs := e.BestMatchFrom(counts, excluded)
		if gb != wb || gs != ws {
			t.Fatalf("trial %d: BestMatchFrom = (%d, %d), BestMatch = (%d, %d)", trial, gb, gs, wb, ws)
		}
	}
}

// The bounded-heap TopK must return exactly the full-sort reference:
// same set, same order, for every k.
func TestTopKMatchesFullSortReference(t *testing.T) {
	reference := func(e *Exe, q strand.Set, k int) []Scored {
		counts := e.SimAll(q)
		var out []Scored
		for i, c := range counts {
			if c > 0 {
				out = append(out, Scored{Proc: i, Score: float64(c)})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].Proc < out[j].Proc
		})
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		procs := make([]*Proc, n)
		for i := range procs {
			var hs []uint64
			seen := map[uint64]bool{}
			for k := 0; k < 1+rng.Intn(8); k++ {
				h := uint64(1 + rng.Intn(10))
				if !seen[h] {
					seen[h] = true
					hs = append(hs, h)
				}
			}
			procs[i] = mk("p", hs...)
		}
		e := FromProcs("T", procs)
		q := strand.Set{Hashes: []uint64{1, 2, 3, 4, 5}}
		for _, k := range []int{0, 1, 2, 3, n / 2, n, n + 5} {
			got := e.TopK(q, k)
			want := reference(e, q, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d vs %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: TopK[%d] = %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}
