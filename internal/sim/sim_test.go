package sim

import (
	"testing"
	"testing/quick"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	"firmup/internal/obj"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

func mk(name string, hashes ...uint64) *Proc {
	s := append([]uint64(nil), hashes...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return &Proc{Name: name, Set: strand.Set{Hashes: s}}
}

func TestSimAllMatchesDirectIntersect(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1, 2, 3),
		mk("b", 3, 4),
		mk("c", 9),
	})
	q := strand.Set{Hashes: []uint64{2, 3, 4}}
	counts := e.SimAll(q)
	want := []int{2, 2, 0}
	for i := range counts {
		if counts[i] != want[i] {
			t.Errorf("SimAll[%d] = %d, want %d", i, counts[i], want[i])
		}
		if got := e.Sim(q, i); got != want[i] {
			t.Errorf("Sim(%d) = %d, want %d", i, got, want[i])
		}
	}
}

// Property: the index-accelerated SimAll always equals the direct sorted
// intersection for random sets.
func TestSimAllProperty(t *testing.T) {
	f := func(qraw, araw, braw []uint8) bool {
		toSet := func(raw []uint8) strand.Set {
			seen := map[uint64]bool{}
			var out []uint64
			for _, x := range raw {
				h := uint64(x % 32)
				if !seen[h] {
					seen[h] = true
					out = append(out, h)
				}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return strand.Set{Hashes: out}
		}
		q := toSet(qraw)
		pa := &Proc{Name: "a", Set: toSet(araw)}
		pb := &Proc{Name: "b", Set: toSet(braw)}
		e := FromProcs("T", []*Proc{pa, pb})
		counts := e.SimAll(q)
		return counts[0] == q.Intersect(pa.Set) && counts[1] == q.Intersect(pb.Set)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestMatchExclusionAndTies(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1, 2),
		mk("b", 1, 2),
		mk("c", 1),
	})
	q := strand.Set{Hashes: []uint64{1, 2}}
	best, score := e.BestMatch(q, nil)
	if best != 0 || score != 2 {
		t.Errorf("tie must break to the lower index: got %d (%d)", best, score)
	}
	best, _ = e.BestMatch(q, func(i int) bool { return i == 0 })
	if best != 1 {
		t.Errorf("exclusion ignored: got %d", best)
	}
	best, _ = e.BestMatch(strand.Set{Hashes: []uint64{77}}, nil)
	if best != -1 {
		t.Errorf("no shared strands must yield -1, got %d", best)
	}
}

func TestTopKOrdering(t *testing.T) {
	e := FromProcs("T", []*Proc{
		mk("a", 1),
		mk("b", 1, 2),
		mk("c", 1, 2, 3),
		mk("d", 9),
	})
	q := strand.Set{Hashes: []uint64{1, 2, 3}}
	top := e.TopK(q, 10)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Proc != 2 || top[1].Proc != 1 || top[2].Proc != 0 {
		t.Errorf("order = %v", top)
	}
	if got := e.TopK(q, 2); len(got) != 2 {
		t.Errorf("cutoff failed: %v", got)
	}
}

func TestBuildPopulatesCallGraph(t *testing.T) {
	pkg, err := compiler.CompileToMIR(isatest.Source, compiler.Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	be, _ := isa.ByArch(uir.ArchMIPS32)
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := cfg.Recover(obj.FromArtifact(art))
	if err != nil {
		t.Fatal(err)
	}
	e := Build("t", rec)
	di := e.ProcByName("deep")
	if di < 0 {
		t.Fatal("deep missing")
	}
	d := e.Procs[di]
	if len(d.Calls) < 3 {
		t.Errorf("deep has %d callees, want >= 3", len(d.Calls))
	}
	for _, c := range d.Calls {
		found := false
		for _, cb := range e.Procs[c].CalledBy {
			if cb == di {
				found = true
			}
		}
		if !found {
			t.Errorf("callee %s lacks back edge", e.Procs[c].Name)
		}
	}
	if d.BlockCount == 0 || d.EdgeCount == 0 || d.InstCount == 0 {
		t.Errorf("shape metadata empty: %+v", d)
	}
}

func TestProcByName(t *testing.T) {
	e := FromProcs("T", []*Proc{mk("x", 1)})
	if e.ProcByName("x") != 0 || e.ProcByName("y") != -1 {
		t.Error("ProcByName lookup broken")
	}
}
