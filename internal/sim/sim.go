// Package sim builds the indexed procedure representation the search
// layers operate on: every procedure of an executable as a set of hashed
// canonical strands, plus call-graph and CFG shape metadata used by the
// graph-based baseline, with an inverted strand index for fast
// best-match queries (the paper's Sim(q,t) = |Strands(q) ∩ Strands(t)|).
package sim

import (
	"sort"

	"firmup/internal/cfg"
	"firmup/internal/isa"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

// Proc is one indexed procedure.
type Proc struct {
	Name     string
	Addr     uint32
	Exported bool
	Set      strand.Set
	// Markers are the procedure's distinctive plain constants, used by
	// the automated confirmation step (see strand.ConstMarkers).
	Markers []uint32
	// CFG/call-graph shape, consumed by the BinDiff-style baseline.
	BlockCount int
	EdgeCount  int
	InstCount  int
	Calls      []int // indices of called procedures within the executable
	CalledBy   []int
}

// Exe is one indexed executable.
type Exe struct {
	Path  string
	Arch  uir.Arch
	Procs []*Proc
	// Stripped mirrors the container flag.
	Stripped bool
	index    map[uint64][]int32
}

// Build indexes a recovered executable.
func Build(path string, rec *cfg.Recovered) *Exe {
	be, err := isa.ByArch(rec.Arch)
	var abi *uir.ABI
	if err == nil {
		abi = be.ABI()
	}
	opt := &strand.Options{ABI: abi, Sections: rec.File.Map()}
	e := &Exe{Path: path, Arch: rec.Arch, Stripped: rec.File.Stripped}
	entryIdx := map[uint32]int{}
	for i, p := range rec.Procs {
		entryIdx[p.Entry] = i
	}
	for _, p := range rec.Procs {
		sp := &Proc{
			Name:       p.Name,
			Addr:       p.Entry,
			Exported:   p.Exported,
			Set:        strand.FromBlocks(p.Blocks, opt),
			Markers:    strand.ConstMarkers(p.Blocks, opt),
			BlockCount: len(p.Blocks),
			InstCount:  len(p.Insts),
		}
		for _, b := range p.Blocks {
			sp.EdgeCount += len(b.Succs())
		}
		seenCall := map[int]bool{}
		for _, in := range p.Insts {
			if in.Kind == isa.KindCall {
				if ti, ok := entryIdx[in.Target]; ok && !seenCall[ti] {
					seenCall[ti] = true
					sp.Calls = append(sp.Calls, ti)
				}
			}
		}
		e.Procs = append(e.Procs, sp)
	}
	for i, p := range e.Procs {
		for _, c := range p.Calls {
			e.Procs[c].CalledBy = append(e.Procs[c].CalledBy, i)
		}
	}
	e.buildIndex()
	return e
}

// FromProcs assembles an executable directly from procedures (used by
// tests and synthetic scenarios).
func FromProcs(path string, procs []*Proc) *Exe {
	e := &Exe{Path: path, Procs: procs}
	e.buildIndex()
	return e
}

func (e *Exe) buildIndex() {
	e.index = map[uint64][]int32{}
	for i, p := range e.Procs {
		for _, h := range p.Set.Hashes {
			e.index[h] = append(e.index[h], int32(i))
		}
	}
}

// ProcByName returns the index of the named procedure, or -1.
func (e *Exe) ProcByName(name string) int {
	for i, p := range e.Procs {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Sim computes the paper's similarity score between an external strand
// set and procedure i.
func (e *Exe) Sim(q strand.Set, i int) int {
	return q.Intersect(e.Procs[i].Set)
}

// SimAll computes Sim(q, t) for every procedure via the inverted index:
// one counter bump per (query strand, containing procedure) pair.
func (e *Exe) SimAll(q strand.Set) []int {
	counts := make([]int, len(e.Procs))
	for _, h := range q.Hashes {
		for _, pi := range e.index[h] {
			counts[pi]++
		}
	}
	return counts
}

// BestMatch returns the procedure with maximal Sim to q, skipping indices
// for which excluded returns true. Ties break toward the lower index
// (deterministic). Returns (-1, 0) when no candidate shares any strand.
func (e *Exe) BestMatch(q strand.Set, excluded func(int) bool) (int, int) {
	counts := e.SimAll(q)
	best, bestScore := -1, 0
	for i, c := range counts {
		if c == 0 || (excluded != nil && excluded(i)) {
			continue
		}
		if c > bestScore {
			best, bestScore = i, c
		}
	}
	return best, bestScore
}

// TopK returns the k most similar procedures in descending score order
// (procedures sharing no strands are omitted).
func (e *Exe) TopK(q strand.Set, k int) []Scored {
	counts := e.SimAll(q)
	var out []Scored
	for i, c := range counts {
		if c > 0 {
			out = append(out, Scored{Proc: i, Score: float64(c)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Proc < out[j].Proc
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Scored pairs a procedure index with a score.
type Scored struct {
	Proc  int
	Score float64
}
