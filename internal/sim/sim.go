// Package sim builds the indexed procedure representation the search
// layers operate on: every procedure of an executable as a set of hashed
// canonical strands, plus call-graph and CFG shape metadata used by the
// graph-based baseline, with an inverted strand index for fast
// best-match queries (the paper's Sim(q,t) = |Strands(q) ∩ Strands(t)|).
//
// An executable built under an analyzer session (a strand.Interner)
// stores sorted dense strand IDs alongside its hashes and keeps its
// inverted index as slice-backed posting lists in CSR form; without a
// session it falls back to the per-executable hash-map index.
package sim

import (
	"sort"
	"sync"
	"sync/atomic"

	"firmup/internal/cfg"
	"firmup/internal/isa"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// Telemetry is the optional handle set indexing records against; a nil
// pointer (and any nil field) disables the corresponding metric. The
// indexed output is identical with and without it.
type Telemetry struct {
	// Build times each BuildWith call end to end.
	Build *telemetry.Stage
	// Index times inverted-index construction (CSR or hash-map).
	Index *telemetry.Stage
	// Procs counts procedures indexed.
	Procs *telemetry.Counter
	// Extract is forwarded to the per-worker strand extractors.
	Extract *strand.Telemetry
}

// Proc is one indexed procedure.
type Proc struct {
	Name     string
	Addr     uint32
	Exported bool
	Set      strand.Set
	// Markers are the procedure's distinctive plain constants, used by
	// the automated confirmation step (see strand.ConstMarkers).
	Markers []uint32
	// CFG/call-graph shape, consumed by the BinDiff-style baseline.
	BlockCount int
	EdgeCount  int
	InstCount  int
	Calls      []int // indices of called procedures within the executable
	CalledBy   []int
}

// Exe is one indexed executable.
type Exe struct {
	Path  string
	Arch  uir.Arch
	Procs []*Proc
	// Stripped mirrors the container flag.
	Stripped bool

	it strand.Interner
	// CSR inverted index over dense strand IDs (session mode): ids is
	// the sorted set of distinct strand IDs present in the executable,
	// and procs[start[k]:start[k+1]] lists the procedures containing
	// ids[k].
	ids   []uint32
	start []int32
	procs []int32

	// Hash-map index: the only index in session-less mode, and the
	// fallback for query sets interned under a different session. Built
	// lazily so session-mode executables pay for it only if needed.
	hashOnce sync.Once
	index    map[uint64][]int32

	nameOnce sync.Once
	names    map[string]int

	// Per-procedure MinHash signatures over the interned strand IDs,
	// computed lazily once per executable (flat, strand.SigWords per
	// procedure). Meaningful only in session mode: they feed the
	// corpusindex LSH tier, which never consults them for executables
	// interned under a foreign session.
	sigOnce sync.Once
	sigs    []uint32
}

// Signatures returns the flat per-procedure MinHash signature slab of
// the executable: len(Procs)*strand.SigWords words, procedure i's
// signature at [i*strand.SigWords : (i+1)*strand.SigWords]. Signatures
// are a pure function of each procedure's interned IDs, so rebased
// copies (Rebound) and snapshot round-trips that preserve IDs produce
// identical slabs.
func (e *Exe) Signatures() []uint32 {
	e.sigOnce.Do(func() {
		sigs := make([]uint32, len(e.Procs)*strand.SigWords)
		for i, p := range e.Procs {
			strand.MinHashInto(sigs[i*strand.SigWords:(i+1)*strand.SigWords], p.Set.IDs)
		}
		e.sigs = sigs
	})
	return e.sigs
}

// BuildConfig tunes BuildWith for analyzer sessions. The zero value
// (and a nil pointer) selects serial, uncached analysis.
type BuildConfig struct {
	// Cache is the session's block canonicalization cache; nil disables
	// caching. The cache must be bound to the same interner the build
	// runs under, otherwise it is ignored.
	Cache *strand.BlockCache
	// Workers bounds procedure-level parallelism within this executable
	// (values ≤ 1 build serially). The analyzed output is byte-identical
	// to the serial build: procedures are assembled by index, and every
	// per-procedure result is a pure function of the recovered input.
	Workers int
	// Tel, when non-nil, records indexing metrics.
	Tel *Telemetry
}

// Build indexes a recovered executable. A non-nil interner attaches the
// executable to that analyzer session: every procedure's strand set is
// interned to dense IDs and the inverted index is built as posting
// lists over them.
func Build(path string, rec *cfg.Recovered, it strand.Interner) *Exe {
	return BuildWith(path, rec, it, nil)
}

// BuildWith is Build with session tuning: a shared block
// canonicalization cache and a bounded procedure-level worker pool.
func BuildWith(path string, rec *cfg.Recovered, it strand.Interner, bc *BuildConfig) *Exe {
	be, err := isa.ByArch(rec.Arch)
	var abi *uir.ABI
	if err == nil {
		abi = be.ABI()
	}
	opt := &strand.Options{ABI: abi, Sections: rec.File.Map()}
	e := &Exe{Path: path, Arch: rec.Arch, Stripped: rec.File.Stripped}
	entryIdx := map[uint32]int{}
	for i, p := range rec.Procs {
		entryIdx[p.Entry] = i
	}
	var cache *strand.BlockCache
	var tel *Telemetry
	var extractTel *strand.Telemetry
	workers := 1
	if bc != nil {
		cache = bc.Cache
		if bc.Workers > workers {
			workers = bc.Workers
		}
		tel = bc.Tel
	}
	var buildSpan telemetry.Span
	if tel != nil {
		buildSpan = tel.Build.Start()
		extractTel = tel.Extract
	}
	if workers > len(rec.Procs) {
		workers = len(rec.Procs)
	}
	buildOne := func(ex *strand.Extractor, i int) *Proc {
		p := rec.Procs[i]
		set, markers := ex.Proc(p.Blocks)
		sp := &Proc{
			Name:       p.Name,
			Addr:       p.Entry,
			Exported:   p.Exported,
			Set:        set,
			Markers:    markers,
			BlockCount: len(p.Blocks),
			InstCount:  len(p.Insts),
		}
		for _, b := range p.Blocks {
			sp.EdgeCount += len(b.Succs())
		}
		seenCall := map[int]bool{}
		for _, in := range p.Insts {
			if in.Kind == isa.KindCall {
				if ti, ok := entryIdx[in.Target]; ok && !seenCall[ti] {
					seenCall[ti] = true
					sp.Calls = append(sp.Calls, ti)
				}
			}
		}
		return sp
	}
	procs := make([]*Proc, len(rec.Procs))
	if workers <= 1 {
		ex := strand.NewExtractorWith(opt, it, cache, extractTel)
		for i := range rec.Procs {
			procs[i] = buildOne(ex, i)
		}
	} else {
		// Each worker owns an extractor (arena + scratch); procedures
		// are claimed via an atomic cursor and written to their slot, so
		// assembly order is index order regardless of schedule.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ex := strand.NewExtractorWith(opt, it, cache, extractTel)
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(rec.Procs) {
						return
					}
					procs[i] = buildOne(ex, i)
				}
			}()
		}
		wg.Wait()
	}
	e.Procs = procs
	for i, p := range e.Procs {
		for _, c := range p.Calls {
			e.Procs[c].CalledBy = append(e.Procs[c].CalledBy, i)
		}
	}
	if tel != nil {
		tel.Procs.Add(int64(len(e.Procs)))
		sp := tel.Index.Start()
		e.buildIndex(it)
		sp.End()
		buildSpan.End()
	} else {
		e.buildIndex(it)
	}
	return e
}

// FromProcs assembles an executable directly from procedures (used by
// tests and synthetic scenarios), without an analyzer session.
func FromProcs(path string, procs []*Proc) *Exe {
	return FromProcsSession(path, procs, nil)
}

// FromProcsSession assembles an executable from procedures under an
// analyzer session, interning every strand set when it is non-nil.
// Sets already interned under that same session (e.g. re-attached from
// a snapshot) are kept as-is instead of being re-interned.
func FromProcsSession(path string, procs []*Proc, it strand.Interner) *Exe {
	e := &Exe{Path: path, Procs: procs}
	if it != nil {
		for _, p := range e.Procs {
			if p.Set.It != it {
				p.Set = p.Set.Interned(it)
			}
		}
	}
	e.buildIndex(it)
	return e
}

// Session returns the analyzer session the executable was built under,
// or nil.
func (e *Exe) Session() strand.Interner { return e.it }

// Rebound returns a copy of the executable bound to a different session
// interner without re-interning: the CSR posting lists and every
// procedure's slice data (hashes, IDs, markers, call graph) are shared
// with the receiver, but the Proc structs are fresh so the copy's sets
// carry it as their session. The caller guarantees it assigns the same
// dense ID to every hash the receiver's session did — the contract a
// frozen snapshot of the live interner satisfies by construction.
// Lazily-built caches (hash index, name map) are not carried over; the
// copy rebuilds its own on first use.
func (e *Exe) Rebound(it strand.Interner) *Exe {
	out := &Exe{
		Path:     e.Path,
		Arch:     e.Arch,
		Stripped: e.Stripped,
		it:       it,
		ids:      e.ids,
		start:    e.start,
		procs:    e.procs,
	}
	out.Procs = make([]*Proc, len(e.Procs))
	for i, p := range e.Procs {
		cp := *p
		cp.Set.It = it
		out.Procs[i] = &cp
	}
	return out
}

func (e *Exe) buildIndex(it strand.Interner) {
	e.it = it
	if it == nil {
		e.ensureHashIndex()
		return
	}
	// CSR posting lists: gather (strand ID, proc) pairs, sort by ID then
	// proc, compact runs of equal IDs into one row.
	n := 0
	for _, p := range e.Procs {
		n += len(p.Set.IDs)
	}
	type pair struct {
		id   uint32
		proc int32
	}
	pairs := make([]pair, 0, n)
	for pi, p := range e.Procs {
		for _, id := range p.Set.IDs {
			pairs = append(pairs, pair{id, int32(pi)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].id != pairs[j].id {
			return pairs[i].id < pairs[j].id
		}
		return pairs[i].proc < pairs[j].proc
	})
	e.procs = make([]int32, len(pairs))
	for i, pr := range pairs {
		e.procs[i] = pr.proc
		if i == 0 || pr.id != pairs[i-1].id {
			e.ids = append(e.ids, pr.id)
			e.start = append(e.start, int32(i))
		}
	}
	e.start = append(e.start, int32(len(pairs)))
}

// ensureHashIndex builds the hash-map index on first need. Safe for
// concurrent callers (search workers hit shared targets in parallel).
func (e *Exe) ensureHashIndex() {
	e.hashOnce.Do(func() {
		e.index = map[uint64][]int32{}
		for i, p := range e.Procs {
			for _, h := range p.Set.Hashes {
				e.index[h] = append(e.index[h], int32(i))
			}
		}
	})
}

// ProcByName returns the index of the first procedure with the given
// name, or -1. The name map is built lazily on first use.
func (e *Exe) ProcByName(name string) int {
	e.nameOnce.Do(func() {
		e.names = make(map[string]int, len(e.Procs))
		for i, p := range e.Procs {
			if _, ok := e.names[p.Name]; !ok {
				e.names[p.Name] = i
			}
		}
	})
	if i, ok := e.names[name]; ok {
		return i
	}
	return -1
}

// Sim computes the paper's similarity score between an external strand
// set and procedure i.
func (e *Exe) Sim(q strand.Set, i int) int {
	return q.Intersect(e.Procs[i].Set)
}

// SimAll computes Sim(q, t) for every procedure via the inverted index:
// one counter bump per (query strand, containing procedure) pair. Query
// sets interned under the executable's own session take the posting-list
// path; everything else falls back to the hash-map index.
func (e *Exe) SimAll(q strand.Set) []int {
	return e.SimAllInto(q, nil)
}

// SimAllInto is SimAll accumulating into a caller-provided buffer: counts
// is resliced to len(e.Procs) and zeroed when its capacity suffices, and
// reallocated otherwise; the used buffer is returned. It is what lets the
// game engine's matcher run similarity queries without a per-call
// allocation.
func (e *Exe) SimAllInto(q strand.Set, counts []int) []int {
	if cap(counts) < len(e.Procs) {
		counts = make([]int, len(e.Procs))
	} else {
		counts = counts[:len(e.Procs)]
		clear(counts)
	}
	if e.it != nil && (q.It == e.it || strand.Compatible(q.It, e.it)) {
		e.simIDs(q.IDs, counts)
		return counts
	}
	e.ensureHashIndex()
	for _, h := range q.Hashes {
		for _, pi := range e.index[h] {
			counts[pi]++
		}
	}
	return counts
}

// simIDs accumulates posting counts for sorted query IDs. When the query
// is much smaller than the executable's vocabulary a per-ID binary
// search wins; otherwise a linear merge over the two sorted sequences.
func (e *Exe) simIDs(qids []uint32, counts []int) {
	if len(qids) == 0 || len(e.ids) == 0 {
		return
	}
	bump := func(row int) {
		for k := e.start[row]; k < e.start[row+1]; k++ {
			counts[e.procs[k]]++
		}
	}
	if len(qids)*8 < len(e.ids) {
		lo := 0
		for _, id := range qids {
			j := lo + sort.Search(len(e.ids)-lo, func(k int) bool { return e.ids[lo+k] >= id })
			if j < len(e.ids) && e.ids[j] == id {
				bump(j)
			}
			lo = j
		}
		return
	}
	i, j := 0, 0
	for i < len(qids) && j < len(e.ids) {
		switch {
		case qids[i] == e.ids[j]:
			bump(j)
			i++
			j++
		case qids[i] < e.ids[j]:
			i++
		default:
			j++
		}
	}
}

// BestMatch returns the procedure with maximal Sim to q, skipping indices
// for which excluded returns true. Ties break toward the lower index
// (deterministic). Returns (-1, 0) when no candidate shares any strand.
func (e *Exe) BestMatch(q strand.Set, excluded func(int) bool) (int, int) {
	return e.BestMatchFrom(e.SimAll(q), excluded)
}

// BestMatchFrom is the scan half of BestMatch over a similarity vector
// already accumulated by SimAllInto — the exclusion filter is applied at
// scan time, so one accumulation serves any number of exclusion sets.
// The tie-break is BestMatch's: strictly-greater scores win, so equal
// scores keep the lower index.
func (e *Exe) BestMatchFrom(counts []int, excluded func(int) bool) (int, int) {
	best, bestScore := -1, 0
	for i, c := range counts {
		if c == 0 || (excluded != nil && excluded(i)) {
			continue
		}
		if c > bestScore {
			best, bestScore = i, c
		}
	}
	return best, bestScore
}

// TopK returns the k most similar procedures in descending score order,
// ties toward the lower index (procedures sharing no strands are
// omitted). Selection is a bounded min-heap over the positive scores, so
// large executables never sort their full procedure list for a small k.
func (e *Exe) TopK(q strand.Set, k int) []Scored {
	if k <= 0 {
		return nil
	}
	counts := e.SimAll(q)
	var h []Scored
	for i, c := range counts {
		if c == 0 {
			continue
		}
		s := Scored{Proc: i, Score: float64(c)}
		if len(h) < k {
			h = append(h, s)
			scoredSiftUp(h)
		} else if scoredWorse(h[0], s) {
			h[0] = s
			scoredSiftDown(h, 0, len(h))
		}
	}
	// Heapsort: each step moves the worst remaining entry to the shrinking
	// tail, leaving h in descending-score (ascending-index on ties) order.
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		scoredSiftDown(h, 0, n)
	}
	return h
}

// scoredWorse reports whether a ranks strictly below b in TopK order
// (score descending, procedure index ascending on ties). The heap is a
// min-heap under this order: its root is the worst kept candidate.
func scoredWorse(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Proc > b.Proc
}

func scoredSiftUp(h []Scored) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !scoredWorse(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func scoredSiftDown(h []Scored, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && scoredWorse(h[r], h[l]) {
			j = r
		}
		if !scoredWorse(h[j], h[i]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Scored pairs a procedure index with a score.
type Scored struct {
	Proc  int
	Score float64
}
