package ppc

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/uir"
)

// Decode implements isa.Backend. It classifies without rendering
// assembly text; Disasm materializes the text on demand.
func (b *Backend) Decode(text []byte, off int, addr uint32) (isa.Inst, error) {
	if off+4 > len(text) {
		return isa.Inst{}, fmt.Errorf("ppc: truncated instruction at %#x", addr)
	}
	w := uint32(text[off])<<24 | uint32(text[off+1])<<16 | uint32(text[off+2])<<8 | uint32(text[off+3])
	inst := isa.Inst{Addr: addr, Size: 4, Raw: uint64(w)}
	op := w >> 26
	switch op {
	case opAddi, opAddis, opOri, opXori, opAndi, opLwz, opLbz, opStw, opStb:
	case opB:
		li := int32(w<<6) >> 6 &^ 3 // sign-extend bits 2-25, clear low bits
		inst.Target = uint32(int32(addr) + li)
		if w&1 == 1 {
			inst.Kind = isa.KindCall
		} else {
			inst.Kind = isa.KindJump
		}
	case opBc:
		bd := int32(int16(w &^ 3))
		inst.Target = uint32(int32(addr) + bd)
		inst.Kind = isa.KindCondBranch
	case opOp19:
		if w>>1&0x3FF == xoBlr {
			inst.Kind = isa.KindRet
			return inst, nil
		}
		return inst, fmt.Errorf("ppc: unknown op19 form at %#x", addr)
	case opOp31:
		switch xo := w >> 1 & 0x3FF; xo {
		case xoCmpw, xoCmplw, xoMflr, xoMtlr, xoSetb, xoNeg, xoExtsb, xoExtsh,
			xoSlwi, xoSrwi, xoSrawi,
			xoAdd, xoSubf, xoMullw, xoDivw, xoDivwu, xoSrem, xoUrem,
			xoAnd, xoOr, xoXor, xoSlw, xoSrw, xoSraw, xoNor:
		default:
			return inst, fmt.Errorf("ppc: unknown op31 xo %d at %#x", xo, addr)
		}
	default:
		return inst, fmt.Errorf("ppc: unknown opcode %d at %#x", op, addr)
	}
	return inst, nil
}

// Disasm implements isa.Disassembler, reconstructing the assembly text
// from the raw bits off the decode hot path.
func (b *Backend) Disasm(in isa.Inst) string {
	w := uint32(in.Raw)
	op := w >> 26
	rt := uir.Reg(w >> 21 & 31)
	ra := uir.Reg(w >> 16 & 31)
	rb := uir.Reg(w >> 11 & 31)
	imm := uint16(w)
	names := regNames()
	n := func(r uir.Reg) string { return names[r] }
	switch op {
	case opAddi:
		if ra == 0 {
			return fmt.Sprintf("li %s, %d", n(rt), int16(imm))
		}
		return fmt.Sprintf("addi %s, %s, %d", n(rt), n(ra), int16(imm))
	case opAddis:
		return fmt.Sprintf("lis %s, 0x%x", n(rt), imm)
	case opOri, opXori, opAndi:
		mn := map[uint32]string{opOri: "ori", opXori: "xori", opAndi: "andi."}[op]
		return fmt.Sprintf("%s %s, %s, 0x%x", mn, n(ra), n(rt), imm)
	case opLwz, opLbz, opStw, opStb:
		mn := map[uint32]string{opLwz: "lwz", opLbz: "lbz", opStw: "stw", opStb: "stb"}[op]
		return fmt.Sprintf("%s %s, %d(%s)", mn, n(rt), int16(imm), n(ra))
	case opB:
		if w&1 == 1 {
			return fmt.Sprintf("bl 0x%x", in.Target)
		}
		return fmt.Sprintf("b 0x%x", in.Target)
	case opBc:
		bo := w >> 21 & 31
		bi := w >> 16 & 31
		sense := "t"
		if bo == boFalse {
			sense = "f"
		}
		return fmt.Sprintf("bc%s cr0[%d], 0x%x", sense, bi, in.Target)
	case opOp19:
		if w>>1&0x3FF == xoBlr {
			return "blr"
		}
	case opOp31:
		switch xo := w >> 1 & 0x3FF; xo {
		case xoCmpw:
			return fmt.Sprintf("cmpw %s, %s", n(ra), n(rb))
		case xoCmplw:
			return fmt.Sprintf("cmplw %s, %s", n(ra), n(rb))
		case xoMflr:
			return "mflr " + n(rt)
		case xoMtlr:
			return "mtlr " + n(rt)
		case xoSetb:
			return fmt.Sprintf("setb %s, cr0[%d]", n(rt), ra)
		case xoNeg:
			return fmt.Sprintf("neg %s, %s", n(rt), n(ra))
		case xoExtsb, xoExtsh:
			mn := map[uint32]string{xoExtsb: "extsb", xoExtsh: "extsh"}[xo]
			return fmt.Sprintf("%s %s, %s", mn, n(ra), n(rt))
		case xoSlwi, xoSrwi, xoSrawi:
			mn := map[uint32]string{xoSlwi: "slwi", xoSrwi: "srwi", xoSrawi: "srawi"}[xo]
			return fmt.Sprintf("%s %s, %s, %d", mn, n(ra), n(rt), rb)
		case xoAdd, xoSubf, xoMullw, xoDivw, xoDivwu, xoSrem, xoUrem:
			mn := map[uint32]string{xoAdd: "add", xoSubf: "subf", xoMullw: "mullw",
				xoDivw: "divw", xoDivwu: "divwu", xoSrem: "srem", xoUrem: "urem"}[xo]
			return fmt.Sprintf("%s %s, %s, %s", mn, n(rt), n(ra), n(rb))
		case xoAnd, xoOr, xoXor, xoSlw, xoSrw, xoSraw, xoNor:
			mn := map[uint32]string{xoAnd: "and", xoOr: "or", xoXor: "xor",
				xoSlw: "slw", xoSrw: "srw", xoSraw: "sraw", xoNor: "nor"}[xo]
			return fmt.Sprintf("%s %s, %s, %s", mn, n(ra), n(rt), n(rb))
		}
	}
	return fmt.Sprintf(".word %#x", w)
}

// Lift implements isa.Backend.
func (b *Backend) Lift(inst isa.Inst, lb *isa.LiftBuilder) error {
	w := uint32(inst.Raw)
	op := w >> 26
	rt := uir.Reg(w >> 21 & 31)
	ra := uir.Reg(w >> 16 & 31)
	rb := uir.Reg(w >> 11 & 31)
	imm := uint16(w)
	sx := uint32(int32(int16(imm)))
	zx := uint32(imm)

	get := func(r uir.Reg) uir.Operand { return uir.T(lb.GetReg(r)) }

	switch op {
	case opAddi:
		if ra == 0 {
			lb.PutReg(rt, uir.C(sx))
		} else {
			lb.PutReg(rt, uir.T(lb.Bin(uir.OpAdd, get(ra), uir.C(sx))))
		}
	case opAddis:
		if ra == 0 {
			lb.PutReg(rt, uir.C(zx<<16))
		} else {
			lb.PutReg(rt, uir.T(lb.Bin(uir.OpAdd, get(ra), uir.C(zx<<16))))
		}
	case opOri:
		lb.PutReg(ra, uir.T(lb.Bin(uir.OpOr, get(rt), uir.C(zx))))
	case opXori:
		lb.PutReg(ra, uir.T(lb.Bin(uir.OpXor, get(rt), uir.C(zx))))
	case opAndi:
		lb.PutReg(ra, uir.T(lb.Bin(uir.OpAnd, get(rt), uir.C(zx))))
	case opLwz, opLbz:
		size := uint8(4)
		if op == opLbz {
			size = 1
		}
		addr := lb.Bin(uir.OpAdd, get(ra), uir.C(sx))
		t := lb.NewTemp()
		lb.Emit(uir.Load{Dst: t, Addr: uir.T(addr), Size: size})
		lb.PutReg(rt, uir.T(t))
	case opStw, opStb:
		size := uint8(4)
		if op == opStb {
			size = 1
		}
		addr := lb.Bin(uir.OpAdd, get(ra), uir.C(sx))
		lb.Emit(uir.Store{Addr: uir.T(addr), Src: get(rt), Size: size})
	case opB:
		if w&1 == 1 {
			lb.Emit(uir.Call{Target: uir.CK(inst.Target, uir.ConstCode)})
		} else {
			lb.Emit(uir.Exit{Kind: uir.ExitJump, Target: uir.CK(inst.Target, uir.ConstCode)})
		}
	case opBc:
		bo := w >> 21 & 31
		bi := w >> 16 & 31
		reg, ok := biReg[bi]
		if !ok {
			return fmt.Errorf("ppc: cannot lift cr0 bit %d", bi)
		}
		cond := get(reg)
		if bo == boFalse {
			cond = uir.T(lb.Bin(uir.OpXor, cond, uir.C(1)))
		}
		lb.Emit(uir.Exit{Kind: uir.ExitCond, Cond: cond, Target: uir.CK(inst.Target, uir.ConstCode)})
	case opOp19:
		lb.Emit(uir.Exit{Kind: uir.ExitRet})
	case opOp31:
		xo := w >> 1 & 0x3FF
		switch xo {
		case xoCmpw:
			a, bb := get(ra), get(rb)
			lb.PutReg(crLT, uir.T(lb.Bin(uir.OpCmpLTS, a, bb)))
			lb.PutReg(crGT, uir.T(lb.Bin(uir.OpCmpLTS, bb, a)))
			lb.PutReg(crEQ, uir.T(lb.Bin(uir.OpCmpEQ, a, bb)))
		case xoCmplw:
			a, bb := get(ra), get(rb)
			lb.PutReg(crLTU, uir.T(lb.Bin(uir.OpCmpLTU, a, bb)))
			lb.PutReg(crGTU, uir.T(lb.Bin(uir.OpCmpLTU, bb, a)))
			lb.PutReg(crEQ, uir.T(lb.Bin(uir.OpCmpEQ, a, bb)))
		case xoSetb:
			reg, ok := biReg[uint32(ra)]
			if !ok {
				return fmt.Errorf("ppc: setb of unknown cr0 bit %d", ra)
			}
			lb.PutReg(rt, get(reg))
		case xoMflr:
			lb.PutReg(rt, get(regLR))
		case xoMtlr:
			lb.PutReg(regLR, get(rt))
		case xoNeg:
			lb.PutReg(rt, uir.T(lb.Un(uir.OpNeg, get(ra))))
		case xoExtsb:
			lb.PutReg(ra, uir.T(lb.Un(uir.OpSext8, get(rt))))
		case xoExtsh:
			lb.PutReg(ra, uir.T(lb.Un(uir.OpSext16, get(rt))))
		case xoSlwi:
			lb.PutReg(ra, uir.T(lb.Bin(uir.OpShl, get(rt), uir.C(uint32(rb)))))
		case xoSrwi:
			lb.PutReg(ra, uir.T(lb.Bin(uir.OpShrU, get(rt), uir.C(uint32(rb)))))
		case xoSrawi:
			lb.PutReg(ra, uir.T(lb.Bin(uir.OpShrS, get(rt), uir.C(uint32(rb)))))
		case xoAdd, xoSubf, xoMullw, xoDivw, xoDivwu, xoSrem, xoUrem:
			ops := map[uint32]uir.Op{xoAdd: uir.OpAdd, xoMullw: uir.OpMul,
				xoDivw: uir.OpDivS, xoDivwu: uir.OpDivU, xoSrem: uir.OpRemS, xoUrem: uir.OpRemU}
			if xo == xoSubf {
				lb.PutReg(rt, uir.T(lb.Bin(uir.OpSub, get(rb), get(ra))))
			} else {
				lb.PutReg(rt, uir.T(lb.Bin(ops[xo], get(ra), get(rb))))
			}
		case xoNor:
			t := lb.Bin(uir.OpOr, get(rt), get(rb))
			lb.PutReg(ra, uir.T(lb.Un(uir.OpNot, uir.T(t))))
		case xoAnd, xoOr, xoXor, xoSlw, xoSrw, xoSraw:
			ops := map[uint32]uir.Op{xoAnd: uir.OpAnd, xoOr: uir.OpOr, xoXor: uir.OpXor,
				xoSlw: uir.OpShl, xoSrw: uir.OpShrU, xoSraw: uir.OpShrS}
			lb.PutReg(ra, uir.T(lb.Bin(ops[xo], get(rt), get(rb))))
		default:
			return fmt.Errorf("ppc: cannot lift op31 xo %d", xo)
		}
	default:
		return fmt.Errorf("ppc: cannot lift opcode %d", op)
	}
	return nil
}
