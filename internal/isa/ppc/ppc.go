// Package ppc implements the PPC32-flavored backend: big-endian 32-bit
// fixed-width encodings, lis/ori constant materialization, cr0-based
// compares (cmpw/cmplw) consumed by bc branches, and a link register
// accessed through mflr/mtlr.
//
// cr0 is modeled as five predicate bits — LT, GT, EQ (signed compare) and
// LTU, GTU (unsigned compare) — exposed to the lifter as pseudo
// registers. A synthetic setb instruction materializes a cr0 bit into a
// GPR (standing in for the mfcr/rlwinm idiom).
package ppc

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Registers: r0-r31 are GPRs (r1 is the stack pointer), 40 is LR and
// 45-49 are the cr0 predicate bits.
const (
	regR0 uir.Reg = 0
	regSP uir.Reg = 1
	regLR uir.Reg = 40
	crLT  uir.Reg = 45
	crGT  uir.Reg = 46
	crEQ  uir.Reg = 47
	crLTU uir.Reg = 48
	crGTU uir.Reg = 49
)

func regNames() map[uir.Reg]string {
	m := map[uir.Reg]string{regLR: "lr", crLT: "cr0.lt", crGT: "cr0.gt", crEQ: "cr0.eq", crLTU: "cr0.ltu", crGTU: "cr0.gtu"}
	for i := 0; i < 32; i++ {
		m[uir.Reg(i)] = fmt.Sprintf("r%d", i)
	}
	m[1] = "sp"
	return m
}

func abi() *uir.ABI {
	return &uir.ABI{
		Arch:       uir.ArchPPC32,
		ArgRegs:    []uir.Reg{3, 4, 5, 6},
		RetReg:     3,
		SP:         regSP,
		LinkReg:    regLR,
		Scratch:    []uir.Reg{0, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, crLT, crGT, crEQ, crLTU, crGTU},
		StatusRegs: []uir.Reg{crLT, crGT, crEQ, crLTU, crGTU},
		RegNames:   regNames(),
	}
}

func desc() *isa.Desc {
	return &isa.Desc{
		Arch:      uir.ArchPPC32,
		ABI:       abi(),
		Alloc:     []uir.Reg{14, 15, 16, 17, 18, 19, 20, 21},
		Scratch:   [2]uir.Reg{11, 12},
		BigEndian: true,
	}
}

// Primary opcodes.
const (
	opBc    = 16
	opB     = 18
	opOp19  = 19
	opAddi  = 14
	opAddis = 15
	opOri   = 24
	opXori  = 26
	opAndi  = 28
	opOp31  = 31
	opLwz   = 32
	opLbz   = 34
	opStw   = 36
	opStb   = 38
)

// op31 extended opcodes (bits 1-10).
const (
	xoCmpw  = 0
	xoCmplw = 32
	xoSubf  = 40
	xoAnd   = 28
	xoSlw   = 24
	xoNeg   = 104
	xoNor   = 124
	xoMullw = 235
	xoAdd   = 266
	xoXor   = 316
	xoMflr  = 339
	xoOr    = 444
	xoDivwu = 459
	xoMtlr  = 467
	xoSrw   = 536
	xoSrem  = 600
	xoUrem  = 601
	xoSrawi = 824
	xoSraw  = 792
	xoSetb  = 900
	xoExtsh = 922
	xoExtsb = 954
	xoSlwi  = 970
	xoSrwi  = 971
	xoDivw  = 491
)

// op19 extended opcodes.
const xoBlr = 16

// cr0 bit indices used in BI fields.
const (
	biLT  = 0
	biGT  = 1
	biEQ  = 2
	biLTU = 3
	biGTU = 4
)

var biReg = map[uint32]uir.Reg{biLT: crLT, biGT: crGT, biEQ: crEQ, biLTU: crLTU, biGTU: crGTU}

// BO values: branch if bit true / false.
const (
	boTrue  = 12
	boFalse = 4
)

// Fixup formats.
const (
	fmtRel14 uint8 = iota // bc displacement
	fmtRel24              // b/bl displacement
	fmtHiLo               // lis/ori address pair
)

// Backend implements isa.Backend for PPC32.
type Backend struct{ d *isa.Desc }

// New returns the PPC backend.
func New() *Backend { return &Backend{d: desc()} }

func init() { isa.Register(New()) }

// Arch implements isa.Backend.
func (b *Backend) Arch() uir.Arch { return uir.ArchPPC32 }

// ABI implements isa.Backend.
func (b *Backend) ABI() *uir.ABI { return b.d.ABI }

// MinInstSize implements isa.Backend.
func (b *Backend) MinInstSize() uint32 { return 4 }

// Generate implements isa.Backend.
func (b *Backend) Generate(pkg *mir.Package, opt isa.Options) (*isa.Artifact, error) {
	return isa.GenerateWith(pkg, b.d, func(p *isa.Prog) isa.Emitter {
		return &emitter{prog: p}
	}, b, opt)
}

func dform(op uint32, rt, ra uir.Reg, imm uint16) uint32 {
	return op<<26 | uint32(rt)<<21 | uint32(ra)<<16 | uint32(imm)
}

func xform(xo uint32, rt, ra, rb uir.Reg) uint32 {
	return uint32(opOp31)<<26 | uint32(rt)<<21 | uint32(ra)<<16 | uint32(rb)<<11 | xo<<1
}

type emitter struct{ prog *isa.Prog }

func (e *emitter) word(w uint32) {
	e.prog.Buf = append(e.prog.Buf, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
}

func (e *emitter) MarkBlock(id int) { e.prog.BlockOff[id] = len(e.prog.Buf) }

func (e *emitter) fixup(block int, sym string, format uint8) {
	e.prog.Fixups = append(e.prog.Fixups, isa.Fixup{Off: len(e.prog.Buf), Block: block, Sym: sym, Format: format})
}

func (e *emitter) Prologue(f isa.Frame) {
	if f.Size > 0 {
		e.word(dform(opAddi, regSP, regSP, uint16(uint32(-f.Size))))
	}
	for _, s := range f.Saves {
		e.word(dform(opStw, s.Reg, regSP, uint16(uint32(s.Off))))
	}
	if f.SaveLink {
		e.word(xform(xoMflr, regR0, 0, 0))
		e.word(dform(opStw, regR0, regSP, uint16(uint32(f.LinkOff))))
	}
}

func (e *emitter) Epilogue(f isa.Frame) {
	for _, s := range f.Saves {
		e.word(dform(opLwz, s.Reg, regSP, uint16(uint32(s.Off))))
	}
	if f.SaveLink {
		e.word(dform(opLwz, regR0, regSP, uint16(uint32(f.LinkOff))))
		e.word(xform(xoMtlr, regR0, 0, 0))
	}
	if f.Size > 0 {
		e.word(dform(opAddi, regSP, regSP, uint16(uint32(f.Size))))
	}
	e.word(uint32(opOp19)<<26 | xoBlr<<1)
}

func (e *emitter) MovConst(dst uir.Reg, v uint32) {
	switch {
	case int32(v) >= -0x8000 && int32(v) <= 0x7FFF:
		e.word(dform(opAddi, dst, 0, uint16(v))) // li
	default:
		e.word(dform(opAddis, dst, 0, uint16(v>>16))) // lis
		if v&0xFFFF != 0 {
			e.word(dform(opOri, dst, dst, uint16(v)))
		}
	}
}

func (e *emitter) MovReg(dst, src uir.Reg) {
	e.word(xform(xoOr, src, dst, src)) // mr dst, src == or dst, src, src
}

// Note the PPC field convention for logical/shift X-form ops: the source
// sits in the rt slot and the destination in the ra slot.
func (e *emitter) logical(xo uint32, dst, a, b uir.Reg) {
	e.word(xform(xo, a, dst, b))
}

func (e *emitter) arith(xo uint32, dst, a, b uir.Reg) {
	e.word(xform(xo, dst, a, b))
}

func (e *emitter) cmpw(a, b uir.Reg)  { e.word(xform(xoCmpw, 0, a, b)) }
func (e *emitter) cmplw(a, b uir.Reg) { e.word(xform(xoCmplw, 0, a, b)) }

func (e *emitter) setb(dst uir.Reg, bi uint32) {
	e.word(xform(xoSetb, dst, uir.Reg(bi), 0))
}

func (e *emitter) Bin(op uir.Op, dst, a, b uir.Reg) {
	switch op {
	case uir.OpAdd:
		e.arith(xoAdd, dst, a, b)
	case uir.OpSub:
		e.arith(xoSubf, dst, b, a) // subf rd, ra, rb = rb - ra
	case uir.OpMul:
		e.arith(xoMullw, dst, a, b)
	case uir.OpDivS:
		e.arith(xoDivw, dst, a, b)
	case uir.OpDivU:
		e.arith(xoDivwu, dst, a, b)
	case uir.OpRemS:
		e.arith(xoSrem, dst, a, b)
	case uir.OpRemU:
		e.arith(xoUrem, dst, a, b)
	case uir.OpAnd:
		e.logical(xoAnd, dst, a, b)
	case uir.OpOr:
		e.logical(xoOr, dst, a, b)
	case uir.OpXor:
		e.logical(xoXor, dst, a, b)
	case uir.OpShl:
		e.logical(xoSlw, dst, a, b)
	case uir.OpShrU:
		e.logical(xoSrw, dst, a, b)
	case uir.OpShrS:
		e.logical(xoSraw, dst, a, b)
	case uir.OpCmpEQ:
		e.cmpw(a, b)
		e.setb(dst, biEQ)
	case uir.OpCmpNE:
		e.cmpw(a, b)
		e.setb(dst, biEQ)
		e.word(dform(opXori, dst, dst, 1))
	case uir.OpCmpLTS:
		e.cmpw(a, b)
		e.setb(dst, biLT)
	case uir.OpCmpLTU:
		e.cmplw(a, b)
		e.setb(dst, biLTU)
	case uir.OpCmpLES:
		e.cmpw(a, b)
		e.setb(dst, biGT)
		e.word(dform(opXori, dst, dst, 1))
	case uir.OpCmpLEU:
		e.cmplw(a, b)
		e.setb(dst, biGTU)
		e.word(dform(opXori, dst, dst, 1))
	default:
		panic(fmt.Sprintf("ppc: unsupported binary op %v", op))
	}
}

func (e *emitter) Un(op uir.Op, dst, a uir.Reg) {
	switch op {
	case uir.OpNot:
		e.word(xform(xoNor, a, dst, a)) // nor dst, a, a
	case uir.OpNeg:
		e.word(xform(xoNeg, dst, a, 0))
	case uir.OpBool:
		e.word(dform(opAddi, regR0, 0, 0)) // li r0, 0
		e.cmplw(regR0, a)                  // LTU = 0 <u a
		e.setb(dst, biLTU)
	case uir.OpSext8:
		e.word(xform(xoExtsb, a, dst, 0))
	case uir.OpSext16:
		e.word(xform(xoExtsh, a, dst, 0))
	case uir.OpZext8:
		e.word(dform(opAndi, a, dst, 0xFF))
	case uir.OpZext16:
		e.word(dform(opAndi, a, dst, 0xFFFF))
	default:
		panic(fmt.Sprintf("ppc: unsupported unary op %v", op))
	}
}

func (e *emitter) ShiftImm(op uir.Op, dst, a uir.Reg, k uint8) {
	switch op {
	case uir.OpShl:
		e.word(xform(xoSlwi, a, dst, uir.Reg(k)))
	case uir.OpShrU:
		e.word(xform(xoSrwi, a, dst, uir.Reg(k)))
	case uir.OpShrS:
		e.word(xform(xoSrawi, a, dst, uir.Reg(k)))
	default:
		panic("ppc: bad immediate shift")
	}
}

func (e *emitter) Load(dst, base uir.Reg, off int32, size uint8) {
	op := uint32(opLwz)
	if size == 1 {
		op = opLbz
	}
	e.word(dform(op, dst, base, uint16(uint32(off))))
}

func (e *emitter) Store(base uir.Reg, off int32, src uir.Reg, size uint8) {
	op := uint32(opStw)
	if size == 1 {
		op = opStb
	}
	e.word(dform(op, src, base, uint16(uint32(off))))
}

func (e *emitter) AddrAdd(dst, base uir.Reg, off int32) {
	e.word(dform(opAddi, dst, base, uint16(uint32(off))))
}

func (e *emitter) AddrGlobal(dst uir.Reg, sym string) {
	e.fixup(0, sym, fmtHiLo)
	e.word(dform(opAddis, dst, 0, 0))
	e.word(dform(opOri, dst, dst, 0))
}

func (e *emitter) CallSym(sym string) {
	e.fixup(0, sym, fmtRel24)
	e.word(uint32(opB)<<26 | 1) // bl (LK=1)
}

func (e *emitter) JumpBlock(blk int) {
	e.fixup(blk, "", fmtRel24)
	e.word(uint32(opB) << 26)
}

func (e *emitter) bc(bo, bi uint32, blk int) {
	e.fixup(blk, "", fmtRel14)
	e.word(uint32(opBc)<<26 | bo<<21 | bi<<16)
}

func (e *emitter) CmpBranch(op uir.Op, a, b uir.Reg, trueB int) {
	switch op {
	case uir.OpCmpEQ:
		e.cmpw(a, b)
		e.bc(boTrue, biEQ, trueB)
	case uir.OpCmpNE:
		e.cmpw(a, b)
		e.bc(boFalse, biEQ, trueB)
	case uir.OpCmpLTS:
		e.cmpw(a, b)
		e.bc(boTrue, biLT, trueB)
	case uir.OpCmpLES:
		e.cmpw(a, b)
		e.bc(boFalse, biGT, trueB)
	case uir.OpCmpLTU:
		e.cmplw(a, b)
		e.bc(boTrue, biLTU, trueB)
	case uir.OpCmpLEU:
		e.cmplw(a, b)
		e.bc(boFalse, biGTU, trueB)
	default:
		panic("ppc: bad compare-branch op")
	}
}

func (e *emitter) CondBranch(cond uir.Reg, trueB int) {
	e.word(dform(opAddi, regR0, 0, 0)) // li r0, 0
	e.cmplw(regR0, cond)               // LTU = 0 <u cond
	e.bc(boTrue, biLTU, trueB)
}

func (e *emitter) StoreArgStack(int, uir.Reg)       { panic("ppc: register-argument ABI") }
func (e *emitter) LoadArgStack(uir.Reg, int, int32) { panic("ppc: register-argument ABI") }

// Patch implements isa.Patcher.
func (b *Backend) Patch(buf []byte, off int, format uint8, instAddr, target uint32) error {
	rd := func(o int) uint32 {
		return uint32(buf[o])<<24 | uint32(buf[o+1])<<16 | uint32(buf[o+2])<<8 | uint32(buf[o+3])
	}
	wr := func(o int, w uint32) {
		buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	}
	delta := int32(target) - int32(instAddr)
	switch format {
	case fmtRel14:
		if delta%4 != 0 || delta < -0x8000 || delta > 0x7FFF {
			return fmt.Errorf("ppc: bc displacement out of range (%d)", delta)
		}
		wr(off, rd(off)|uint32(delta)&0xFFFC)
	case fmtRel24:
		if delta%4 != 0 || delta < -(1<<25) || delta >= 1<<25 {
			return fmt.Errorf("ppc: b displacement out of range (%d)", delta)
		}
		wr(off, rd(off)|uint32(delta)&0x03FFFFFC)
	case fmtHiLo:
		wr(off, rd(off)|target>>16)
		wr(off+4, rd(off+4)|target&0xFFFF)
	default:
		return fmt.Errorf("ppc: unknown fixup format %d", format)
	}
	return nil
}
