package ppc

import (
	"testing"

	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	"firmup/internal/uir"
)

func TestConformance(t *testing.T) { isatest.Conformance(t, New()) }
func TestDisassembly(t *testing.T) { isatest.Disassembly(t, New()) }

func TestBranchEncoding(t *testing.T) {
	be := New()
	// b .+16 at 0x3000.
	w := uint32(opB)<<26 | 16
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindJump || inst.Target != 0x3010 {
		t.Errorf("kind=%v target=%#x", inst.Kind, inst.Target)
	}
	// bl backwards.
	w = uint32(opB)<<26 | (0x03FFFFFC & uint32(0x03FFFFF8)) | 1
	buf = []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err = be.Decode(buf, 0, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindCall || inst.Target != 0x2FF8 {
		t.Errorf("bl kind=%v target=%#x", inst.Kind, inst.Target)
	}
}

func TestCmpwLiftsCr0(t *testing.T) {
	be := New()
	w := xform(xoCmpw, 0, 4, 5)
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	set := map[uir.Reg]bool{}
	for _, s := range lb.Stmts {
		if p, ok := s.(uir.Put); ok {
			set[p.Reg] = true
		}
	}
	for _, f := range []uir.Reg{crLT, crGT, crEQ} {
		if !set[f] {
			t.Errorf("cmpw did not set %v", regNames()[f])
		}
	}
	if set[crLTU] || set[crGTU] {
		t.Error("cmpw must not set the unsigned bits")
	}
}

func TestBlrDecodesAsRet(t *testing.T) {
	be := New()
	w := uint32(opOp19)<<26 | xoBlr<<1
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindRet {
		t.Errorf("blr kind = %v", inst.Kind)
	}
}

func TestLiMaterializesConstant(t *testing.T) {
	be := New()
	w := dform(opAddi, 7, 0, 42)
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	if len(lb.Stmts) != 1 {
		t.Fatalf("li lifted to %d stmts", len(lb.Stmts))
	}
	p, ok := lb.Stmts[0].(uir.Put)
	if !ok || !p.Src.IsConst || p.Src.Val != 42 {
		t.Errorf("li lift = %v", lb.Stmts[0])
	}
}

func TestDecodeRobustness(t *testing.T) { isatest.DecodeRobustness(t, New(), 3) }
