package isa

import (
	"sort"

	"firmup/internal/mir"
	"firmup/internal/uir"
)

// allocateRegs performs linear-scan register allocation over live
// intervals computed at basic-block granularity. Virtual registers that
// do not fit are spilled to frame slots (offsets assigned by genProc).
func allocateRegs(p *mir.Proc, regs []uir.Reg) (*assignment, int) {
	asn := &assignment{
		reg:   map[mir.VReg]uir.Reg{},
		spill: map[mir.VReg]int32{},
	}
	start, end := liveIntervals(p)

	type interval struct {
		v          mir.VReg
		start, end int
	}
	var ivs []interval
	for v, s := range start {
		ivs = append(ivs, interval{v, s, end[v]})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	type active struct {
		v   mir.VReg
		end int
		reg uir.Reg
	}
	var act []active
	free := append([]uir.Reg(nil), regs...)
	for _, iv := range ivs {
		// Expire intervals that ended before this one starts.
		kept := act[:0]
		for _, a := range act {
			if a.end < iv.start {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		act = kept
		if len(free) == 0 {
			// Spill the interval ending last (current or an active one).
			worst := -1
			for i, a := range act {
				if a.end > iv.end && (worst == -1 || a.end > act[worst].end) {
					worst = i
				}
			}
			if worst >= 0 {
				spilled := act[worst]
				asn.spillIdx = append(asn.spillIdx, spilled.v)
				delete(asn.reg, spilled.v)
				act[worst] = active{iv.v, iv.end, spilled.reg}
				asn.reg[iv.v] = spilled.reg
			} else {
				asn.spillIdx = append(asn.spillIdx, iv.v)
			}
			continue
		}
		r := free[len(free)-1]
		free = free[:len(free)-1]
		asn.reg[iv.v] = r
		act = append(act, active{iv.v, iv.end, r})
	}
	return asn, len(asn.spillIdx)
}

// liveIntervals computes, per virtual register, the first and last block
// index where the register is live (defined, used, or live-through). The
// block-granularity intervals are conservative but always safe, including
// around loop back edges, because dataflow liveness extends the interval
// across every block of the loop.
func liveIntervals(p *mir.Proc) (map[mir.VReg]int, map[mir.VReg]int) {
	n := len(p.Blocks)
	liveIn := make([]map[mir.VReg]bool, n)
	for i := range liveIn {
		liveIn[i] = map[mir.VReg]bool{}
	}
	for {
		changed := false
		for bi := n - 1; bi >= 0; bi-- {
			b := p.Blocks[bi]
			live := map[mir.VReg]bool{}
			for _, s := range b.Term.Succs() {
				for r := range liveIn[s] {
					live[r] = true
				}
			}
			if b.Term.Kind == mir.TRet && b.Term.RetVal != mir.NoReg {
				live[b.Term.RetVal] = true
			}
			if b.Term.Kind == mir.TBranch {
				live[b.Term.Cond] = true
			}
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if d := in.Def(); d != mir.NoReg {
					delete(live, d)
				}
				for _, u := range in.Uses() {
					live[u] = true
				}
			}
			if !sameVRegSet(liveIn[bi], live) {
				liveIn[bi] = live
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	start := map[mir.VReg]int{}
	end := map[mir.VReg]int{}
	touch := func(v mir.VReg, bi int) {
		if s, ok := start[v]; !ok || bi < s {
			start[v] = bi
		}
		if e, ok := end[v]; !ok || bi > e {
			end[v] = bi
		}
	}
	// Parameters are defined at entry.
	for i := 0; i < p.NParams; i++ {
		touch(mir.VReg(i), 0)
	}
	for bi, b := range p.Blocks {
		for v := range liveIn[bi] {
			touch(v, bi)
		}
		// Live-out: registers live into any successor are live at the end
		// of this block too.
		for _, s := range b.Term.Succs() {
			for v := range liveIn[s] {
				touch(v, bi)
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != mir.NoReg {
				touch(d, bi)
			}
			for _, u := range in.Uses() {
				touch(u, bi)
			}
		}
		if b.Term.Kind == mir.TBranch {
			touch(b.Term.Cond, bi)
		}
		if b.Term.Kind == mir.TRet && b.Term.RetVal != mir.NoReg {
			touch(b.Term.RetVal, bi)
		}
	}
	return start, end
}

func sameVRegSet(a, b map[mir.VReg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// usedAllocRegs returns the allocatable registers actually assigned, in
// the canonical (descriptor) order for deterministic save areas.
func usedAllocRegs(p *mir.Proc, asn *assignment, alloc []uir.Reg) []uir.Reg {
	used := map[uir.Reg]bool{}
	for _, r := range asn.reg {
		used[r] = true
	}
	var out []uir.Reg
	for _, r := range alloc {
		if used[r] {
			out = append(out, r)
		}
	}
	return out
}

func procHasCall(p *mir.Proc) bool {
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == mir.KCall {
				return true
			}
		}
	}
	return false
}

// countUses counts every use of each vreg, including branch conditions
// and return values — the driver uses it to decide when a trailing
// compare can be fused into a branch (exactly one use: that branch).
func countUses(p *mir.Proc) map[mir.VReg]int {
	out := map[mir.VReg]int{}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses() {
				out[u]++
			}
		}
		if b.Term.Kind == mir.TRet && b.Term.RetVal != mir.NoReg {
			out[b.Term.RetVal]++
		}
		if b.Term.Kind == mir.TBranch {
			out[b.Term.Cond]++
		}
	}
	return out
}

// schedule reorders a block's instructions within dependence constraints
// using a seeded list scheduler; seed 0 keeps source order. The MIR here
// is not SSA, so true, anti and output register dependencies all apply;
// loads may not cross stores or calls, and stores/calls are totally
// ordered among themselves.
func schedule(b *mir.Block, seed uint64) []mir.Instr {
	n := len(b.Instrs)
	if n <= 1 || seed == 0 {
		return b.Instrs
	}
	type node struct {
		deps map[int]bool
	}
	nodes := make([]node, n)
	for i := range nodes {
		nodes[i].deps = map[int]bool{}
	}
	lastDef := map[mir.VReg]int{}
	lastUse := map[mir.VReg][]int{}
	lastMem := -1 // last store/call
	for i := 0; i < n; i++ {
		in := &b.Instrs[i]
		for _, u := range in.Uses() {
			if d, ok := lastDef[u]; ok {
				nodes[i].deps[d] = true // true dependence
			}
		}
		if d := in.Def(); d != mir.NoReg {
			if prev, ok := lastDef[d]; ok {
				nodes[i].deps[prev] = true // output dependence
			}
			for _, u := range lastUse[d] {
				nodes[i].deps[u] = true // anti dependence
			}
		}
		switch in.Kind {
		case mir.KLoad:
			if lastMem >= 0 {
				nodes[i].deps[lastMem] = true
			}
		case mir.KStore, mir.KCall:
			if lastMem >= 0 {
				nodes[i].deps[lastMem] = true
			}
			// Stores/calls also wait for every earlier load.
			for j := 0; j < i; j++ {
				if b.Instrs[j].Kind == mir.KLoad {
					nodes[i].deps[j] = true
				}
			}
			lastMem = i
		}
		for _, u := range in.Uses() {
			lastUse[u] = append(lastUse[u], i)
		}
		if d := in.Def(); d != mir.NoReg {
			lastDef[d] = i
			lastUse[d] = nil
		}
	}
	r := newRNG(seed)
	scheduled := make([]bool, n)
	out := make([]mir.Instr, 0, n)
	for len(out) < n {
		var ready []int
		for i := 0; i < n; i++ {
			if scheduled[i] {
				continue
			}
			ok := true
			for d := range nodes[i].deps {
				if !scheduled[d] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		pick := ready[r.intn(len(ready))]
		scheduled[pick] = true
		out = append(out, b.Instrs[pick])
	}
	return out
}
