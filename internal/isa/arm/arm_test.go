package arm

import (
	"testing"

	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	"firmup/internal/uir"
)

func TestConformance(t *testing.T) { isatest.Conformance(t, New()) }
func TestDisassembly(t *testing.T) { isatest.Disassembly(t, New()) }

func TestBranchTargetArithmetic(t *testing.T) {
	be := New()
	// b 0x1020 encoded at 0x1000: offset words = (0x1020 - 0x1008)/4 = 6.
	w := enc(condAL, clBranch, uint32(6)&0xFFFFFF)
	buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	inst, err := be.Decode(buf, 0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindJump || inst.Target != 0x1020 {
		t.Errorf("kind=%v target=%#x", inst.Kind, inst.Target)
	}
}

func TestConditionalBranchDecodes(t *testing.T) {
	be := New()
	w := enc(condLT, clBranch, uint32(0xFFFFFE))
	buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	inst, err := be.Decode(buf, 0, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindCondBranch {
		t.Errorf("kind = %v", inst.Kind)
	}
	if inst.Target != 0x2000+8-8 {
		t.Errorf("target = %#x", inst.Target)
	}
}

func TestPredicatedMovLiftsToSel(t *testing.T) {
	be := New()
	w := dpImm(condNE, dpMov, 4, 0, 1) // movne r4, #1
	buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range lb.Stmts {
		if _, ok := s.(uir.Sel); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("movne did not lift to Sel: %v", lb.Stmts)
	}
}

func TestCmpLiftsAllFlags(t *testing.T) {
	be := New()
	w := dpReg(condAL, dpCmp, 0, 4, 5)
	buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	flags := map[uir.Reg]bool{}
	for _, s := range lb.Stmts {
		if p, ok := s.(uir.Put); ok {
			flags[p.Reg] = true
		}
	}
	for _, f := range []uir.Reg{flagZ, flagLT, flagLO} {
		if !flags[f] {
			t.Errorf("cmp did not set flag %s", regNames[f])
		}
	}
}

func TestDecodeRobustness(t *testing.T) { isatest.DecodeRobustness(t, New(), 2) }
