// Package arm implements the ARM32-flavored backend: little-endian 32-bit
// fixed-width encodings, condition flags set by cmp and consumed by
// predicated moves and conditional branches, movw/movt constant
// materialization, and a link register written by bl.
//
// The flag model is synthetic but faithful in spirit: instead of NZCV the
// machine keeps three predicate flags — Z (equal), LTS (signed less-than)
// and LTU (unsigned less-than) — which the lifter exposes directly. Real
// ARM condition codes are modeled as boolean expressions over these.
package arm

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Architectural registers. r13=sp, r14=lr, r15=pc; flags occupy the
// lifter-visible pseudo registers 20-22.
const (
	regR0  uir.Reg = 0
	regSP  uir.Reg = 13
	regLR  uir.Reg = 14
	regPC  uir.Reg = 15
	flagZ  uir.Reg = 20
	flagLT uir.Reg = 21 // signed less-than
	flagLO uir.Reg = 22 // unsigned less-than
)

var regNames = map[uir.Reg]string{
	0: "r0", 1: "r1", 2: "r2", 3: "r3", 4: "r4", 5: "r5", 6: "r6", 7: "r7",
	8: "r8", 9: "r9", 10: "r10", 11: "r11", 12: "r12", 13: "sp", 14: "lr", 15: "pc",
	20: "z", 21: "lts", 22: "ltu",
}

func abi() *uir.ABI {
	return &uir.ABI{
		Arch:       uir.ArchARM32,
		ArgRegs:    []uir.Reg{0, 1, 2, 3},
		RetReg:     regR0,
		SP:         regSP,
		LinkReg:    regLR,
		Scratch:    []uir.Reg{0, 1, 2, 3, 11, 12, 14, 20, 21, 22},
		StatusRegs: []uir.Reg{flagZ, flagLT, flagLO},
		RegNames:   regNames,
	}
}

func desc() *isa.Desc {
	return &isa.Desc{
		Arch:    uir.ArchARM32,
		ABI:     abi(),
		Alloc:   []uir.Reg{4, 5, 6, 7, 8, 9, 10},
		Scratch: [2]uir.Reg{11, 12},
	}
}

// Instruction classes (bits 24-27).
const (
	clDPReg  = 0
	clDPImm  = 1
	clMovw   = 2
	clMovt   = 3
	clMemW   = 4
	clBranch = 5
	clBL     = 6
	clBX     = 7
	clMemB   = 8
	clMulDiv = 9
)

// Data-processing opcodes (bits 20-23).
const (
	dpAnd = 0
	dpEor = 1
	dpSub = 2
	dpRsb = 3
	dpAdd = 4
	dpOrr = 5
	dpMov = 6
	dpMvn = 7
	dpCmp = 8
	dpLsl = 9
	dpLsr = 10
	dpAsr = 11
)

// MulDiv opcodes.
const (
	mdMul  = 0
	mdSdiv = 1
	mdUdiv = 2
	mdSrem = 3
	mdUrem = 4
)

// Condition codes (ARM numbering).
const (
	condEQ = 0
	condNE = 1
	condHS = 2
	condLO = 3
	condHI = 8
	condLS = 9
	condGE = 10
	condLT = 11
	condGT = 12
	condLE = 13
	condAL = 14
)

var condNames = map[uint32]string{
	condEQ: "eq", condNE: "ne", condHS: "hs", condLO: "lo", condHI: "hi",
	condLS: "ls", condGE: "ge", condLT: "lt", condGT: "gt", condLE: "le", condAL: "",
}

// Fixup formats.
const (
	fmtB24      uint8 = iota // signed word offset relative to pc+8
	fmtMovwMovt              // movw/movt pair
)

// Backend implements isa.Backend for ARM32.
type Backend struct{ d *isa.Desc }

// New returns the ARM backend.
func New() *Backend { return &Backend{d: desc()} }

func init() { isa.Register(New()) }

// Arch implements isa.Backend.
func (b *Backend) Arch() uir.Arch { return uir.ArchARM32 }

// ABI implements isa.Backend.
func (b *Backend) ABI() *uir.ABI { return b.d.ABI }

// MinInstSize implements isa.Backend.
func (b *Backend) MinInstSize() uint32 { return 4 }

// Generate implements isa.Backend.
func (b *Backend) Generate(pkg *mir.Package, opt isa.Options) (*isa.Artifact, error) {
	return isa.GenerateWith(pkg, b.d, func(p *isa.Prog) isa.Emitter {
		return &emitter{prog: p}
	}, b, opt)
}

func enc(cond, class uint32, rest uint32) uint32 {
	return cond<<28 | class<<24 | rest
}

func dpReg(cond, op uint32, rd, rn, rm uir.Reg) uint32 {
	return enc(cond, clDPReg, op<<20|uint32(rd)<<16|uint32(rn)<<12|uint32(rm)<<8)
}

func dpImm(cond, op uint32, rd, rn uir.Reg, imm12 uint32) uint32 {
	return enc(cond, clDPImm, op<<20|uint32(rd)<<16|uint32(rn)<<12|imm12&0xFFF)
}

func mem(class uint32, load bool, rd, rn uir.Reg, imm12 uint32) uint32 {
	l := uint32(0)
	if load {
		l = 1
	}
	return enc(condAL, class, l<<23|uint32(rd)<<16|uint32(rn)<<12|imm12&0xFFF)
}

type emitter struct{ prog *isa.Prog }

func (e *emitter) word(w uint32) {
	e.prog.Buf = append(e.prog.Buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func (e *emitter) MarkBlock(id int) { e.prog.BlockOff[id] = len(e.prog.Buf) }

func (e *emitter) fixup(block int, sym string, format uint8) {
	e.prog.Fixups = append(e.prog.Fixups, isa.Fixup{Off: len(e.prog.Buf), Block: block, Sym: sym, Format: format})
}

func (e *emitter) Prologue(f isa.Frame) {
	if f.Size > 0 {
		e.word(dpImm(condAL, dpSub, regSP, regSP, uint32(f.Size)))
	}
	for _, s := range f.Saves {
		e.word(mem(clMemW, false, s.Reg, regSP, uint32(s.Off)))
	}
	if f.SaveLink {
		e.word(mem(clMemW, false, regLR, regSP, uint32(f.LinkOff)))
	}
}

func (e *emitter) Epilogue(f isa.Frame) {
	for _, s := range f.Saves {
		e.word(mem(clMemW, true, s.Reg, regSP, uint32(s.Off)))
	}
	if f.SaveLink {
		e.word(mem(clMemW, true, regLR, regSP, uint32(f.LinkOff)))
	}
	if f.Size > 0 {
		e.word(dpImm(condAL, dpAdd, regSP, regSP, uint32(f.Size)))
	}
	e.word(enc(condAL, clBX, uint32(regLR)))
}

func (e *emitter) MovConst(dst uir.Reg, v uint32) {
	e.word(enc(condAL, clMovw, uint32(dst)<<16|v&0xFFFF))
	if v>>16 != 0 {
		e.word(enc(condAL, clMovt, uint32(dst)<<16|v>>16))
	}
}

func (e *emitter) MovReg(dst, src uir.Reg) {
	e.word(dpReg(condAL, dpMov, dst, 0, src))
}

func (e *emitter) cmp(a, b uir.Reg) { e.word(dpReg(condAL, dpCmp, 0, a, b)) }

func (e *emitter) setCC(cond uint32, dst uir.Reg) {
	e.word(dpImm(condAL, dpMov, dst, 0, 0))
	e.word(dpImm(cond, dpMov, dst, 0, 1))
}

func condFor(op uir.Op) uint32 {
	switch op {
	case uir.OpCmpEQ:
		return condEQ
	case uir.OpCmpNE:
		return condNE
	case uir.OpCmpLTS:
		return condLT
	case uir.OpCmpLTU:
		return condLO
	case uir.OpCmpLES:
		return condLE
	case uir.OpCmpLEU:
		return condLS
	}
	panic("arm: not a compare")
}

func (e *emitter) Bin(op uir.Op, dst, a, b uir.Reg) {
	switch op {
	case uir.OpAdd:
		e.word(dpReg(condAL, dpAdd, dst, a, b))
	case uir.OpSub:
		e.word(dpReg(condAL, dpSub, dst, a, b))
	case uir.OpAnd:
		e.word(dpReg(condAL, dpAnd, dst, a, b))
	case uir.OpOr:
		e.word(dpReg(condAL, dpOrr, dst, a, b))
	case uir.OpXor:
		e.word(dpReg(condAL, dpEor, dst, a, b))
	case uir.OpShl:
		e.word(dpReg(condAL, dpLsl, dst, a, b))
	case uir.OpShrU:
		e.word(dpReg(condAL, dpLsr, dst, a, b))
	case uir.OpShrS:
		e.word(dpReg(condAL, dpAsr, dst, a, b))
	case uir.OpMul:
		e.word(enc(condAL, clMulDiv, mdMul<<20|uint32(dst)<<16|uint32(a)<<12|uint32(b)<<8))
	case uir.OpDivS:
		e.word(enc(condAL, clMulDiv, mdSdiv<<20|uint32(dst)<<16|uint32(a)<<12|uint32(b)<<8))
	case uir.OpDivU:
		e.word(enc(condAL, clMulDiv, mdUdiv<<20|uint32(dst)<<16|uint32(a)<<12|uint32(b)<<8))
	case uir.OpRemS:
		e.word(enc(condAL, clMulDiv, mdSrem<<20|uint32(dst)<<16|uint32(a)<<12|uint32(b)<<8))
	case uir.OpRemU:
		e.word(enc(condAL, clMulDiv, mdUrem<<20|uint32(dst)<<16|uint32(a)<<12|uint32(b)<<8))
	case uir.OpCmpEQ, uir.OpCmpNE, uir.OpCmpLTS, uir.OpCmpLTU, uir.OpCmpLES, uir.OpCmpLEU:
		e.cmp(a, b)
		e.setCC(condFor(op), dst)
	default:
		panic(fmt.Sprintf("arm: unsupported binary op %v", op))
	}
}

func (e *emitter) Un(op uir.Op, dst, a uir.Reg) {
	switch op {
	case uir.OpNot:
		e.word(dpReg(condAL, dpMvn, dst, 0, a))
	case uir.OpNeg:
		e.word(dpImm(condAL, dpRsb, dst, a, 0)) // dst = 0 - a
	case uir.OpBool:
		e.word(dpImm(condAL, dpCmp, 0, a, 0))
		e.setCC(condNE, dst)
	case uir.OpSext8:
		e.ShiftImm(uir.OpShl, dst, a, 24)
		e.ShiftImm(uir.OpShrS, dst, dst, 24)
	case uir.OpSext16:
		e.ShiftImm(uir.OpShl, dst, a, 16)
		e.ShiftImm(uir.OpShrS, dst, dst, 16)
	case uir.OpZext8:
		e.ShiftImm(uir.OpShl, dst, a, 24)
		e.ShiftImm(uir.OpShrU, dst, dst, 24)
	case uir.OpZext16:
		e.ShiftImm(uir.OpShl, dst, a, 16)
		e.ShiftImm(uir.OpShrU, dst, dst, 16)
	default:
		panic(fmt.Sprintf("arm: unsupported unary op %v", op))
	}
}

func (e *emitter) ShiftImm(op uir.Op, dst, a uir.Reg, k uint8) {
	var dp uint32
	switch op {
	case uir.OpShl:
		dp = dpLsl
	case uir.OpShrU:
		dp = dpLsr
	case uir.OpShrS:
		dp = dpAsr
	default:
		panic("arm: bad immediate shift")
	}
	e.word(dpImm(condAL, dp, dst, a, uint32(k)))
}

func (e *emitter) Load(dst, base uir.Reg, off int32, size uint8) {
	cl := uint32(clMemW)
	if size == 1 {
		cl = clMemB
	}
	e.word(mem(cl, true, dst, base, uint32(off)))
}

func (e *emitter) Store(base uir.Reg, off int32, src uir.Reg, size uint8) {
	cl := uint32(clMemW)
	if size == 1 {
		cl = clMemB
	}
	e.word(mem(cl, false, src, base, uint32(off)))
}

func (e *emitter) AddrAdd(dst, base uir.Reg, off int32) {
	e.word(dpImm(condAL, dpAdd, dst, base, uint32(off)))
}

func (e *emitter) AddrGlobal(dst uir.Reg, sym string) {
	e.fixup(0, sym, fmtMovwMovt)
	e.word(enc(condAL, clMovw, uint32(dst)<<16))
	e.word(enc(condAL, clMovt, uint32(dst)<<16))
}

func (e *emitter) CallSym(sym string) {
	e.fixup(0, sym, fmtB24)
	e.word(enc(condAL, clBL, 0))
}

func (e *emitter) JumpBlock(blk int) {
	e.fixup(blk, "", fmtB24)
	e.word(enc(condAL, clBranch, 0))
}

func (e *emitter) CmpBranch(op uir.Op, a, b uir.Reg, trueB int) {
	e.cmp(a, b)
	e.fixup(trueB, "", fmtB24)
	e.word(enc(condFor(op), clBranch, 0))
}

func (e *emitter) CondBranch(cond uir.Reg, trueB int) {
	e.word(dpImm(condAL, dpCmp, 0, cond, 0))
	e.fixup(trueB, "", fmtB24)
	e.word(enc(condNE, clBranch, 0))
}

func (e *emitter) StoreArgStack(int, uir.Reg)       { panic("arm: register-argument ABI") }
func (e *emitter) LoadArgStack(uir.Reg, int, int32) { panic("arm: register-argument ABI") }

// Patch implements isa.Patcher.
func (b *Backend) Patch(buf []byte, off int, format uint8, instAddr, target uint32) error {
	rd := func(o int) uint32 {
		return uint32(buf[o]) | uint32(buf[o+1])<<8 | uint32(buf[o+2])<<16 | uint32(buf[o+3])<<24
	}
	wr := func(o int, w uint32) {
		buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	switch format {
	case fmtB24:
		delta := int32(target) - int32(instAddr+8)
		if delta%4 != 0 {
			return fmt.Errorf("arm: misaligned branch target %#x", target)
		}
		words := delta / 4
		if words < -(1<<23) || words >= 1<<23 {
			return fmt.Errorf("arm: branch out of range")
		}
		wr(off, rd(off)|uint32(words)&0x00FFFFFF)
	case fmtMovwMovt:
		wr(off, rd(off)|target&0xFFFF)
		wr(off+4, rd(off+4)|target>>16)
	default:
		return fmt.Errorf("arm: unknown fixup format %d", format)
	}
	return nil
}
