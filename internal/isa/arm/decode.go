package arm

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/uir"
)

var dpNames = map[uint32]string{
	dpAnd: "and", dpEor: "eor", dpSub: "sub", dpRsb: "rsb", dpAdd: "add",
	dpOrr: "orr", dpMov: "mov", dpMvn: "mvn", dpCmp: "cmp",
	dpLsl: "lsl", dpLsr: "lsr", dpAsr: "asr",
}

var mdNames = map[uint32]string{
	mdMul: "mul", mdSdiv: "sdiv", mdUdiv: "udiv", mdSrem: "srem", mdUrem: "urem",
}

// Decode implements isa.Backend. It classifies without rendering
// assembly text; Disasm materializes the text on demand.
func (b *Backend) Decode(text []byte, off int, addr uint32) (isa.Inst, error) {
	if off+4 > len(text) {
		return isa.Inst{}, fmt.Errorf("arm: truncated instruction at %#x", addr)
	}
	w := uint32(text[off]) | uint32(text[off+1])<<8 | uint32(text[off+2])<<16 | uint32(text[off+3])<<24
	inst := isa.Inst{Addr: addr, Size: 4, Raw: uint64(w)}
	cond := w >> 28
	class := w >> 24 & 0xF
	switch class {
	case clDPReg, clDPImm:
		op := w >> 20 & 0xF
		if _, ok := dpNames[op]; !ok {
			return inst, fmt.Errorf("arm: unknown dp opcode %d at %#x", op, addr)
		}
	case clMovw, clMovt, clMemW, clMemB:
	case clBranch, clBL:
		words := int32(w<<8) >> 8 // sign-extend imm24
		inst.Target = uint32(int32(addr+8) + words*4)
		if class == clBL {
			inst.Kind = isa.KindCall
		} else if cond == condAL {
			inst.Kind = isa.KindJump
		} else {
			inst.Kind = isa.KindCondBranch
		}
	case clBX:
		if uir.Reg(w&0xF) == regLR {
			inst.Kind = isa.KindRet
		} else {
			inst.Kind = isa.KindIndirect
		}
	case clMulDiv:
		op := w >> 20 & 0xF
		if _, ok := mdNames[op]; !ok {
			return inst, fmt.Errorf("arm: unknown muldiv opcode %d at %#x", op, addr)
		}
	default:
		return inst, fmt.Errorf("arm: unknown instruction class %d at %#x", class, addr)
	}
	return inst, nil
}

// Disasm implements isa.Disassembler, reconstructing the assembly text
// from the raw bits off the decode hot path.
func (b *Backend) Disasm(in isa.Inst) string {
	w := uint32(in.Raw)
	cond := w >> 28
	class := w >> 24 & 0xF
	rn := func(r uir.Reg) string { return regNames[r] }
	switch class {
	case clDPReg, clDPImm:
		op := w >> 20 & 0xF
		rd := uir.Reg(w >> 16 & 0xF)
		rnn := uir.Reg(w >> 12 & 0xF)
		name, ok := dpNames[op]
		if !ok {
			break
		}
		if class == clDPReg {
			rm := uir.Reg(w >> 8 & 0xF)
			return fmt.Sprintf("%s%s %s, %s, %s", name, condNames[cond], rn(rd), rn(rnn), rn(rm))
		}
		return fmt.Sprintf("%s%s %s, %s, #%d", name, condNames[cond], rn(rd), rn(rnn), w&0xFFF)
	case clMovw:
		return fmt.Sprintf("movw %s, #0x%x", rn(uir.Reg(w>>16&0xF)), w&0xFFFF)
	case clMovt:
		return fmt.Sprintf("movt %s, #0x%x", rn(uir.Reg(w>>16&0xF)), w&0xFFFF)
	case clMemW, clMemB:
		mn := "str"
		if w>>23&1 == 1 {
			mn = "ldr"
		}
		if class == clMemB {
			mn += "b"
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", mn, rn(uir.Reg(w>>16&0xF)), rn(uir.Reg(w>>12&0xF)), w&0xFFF)
	case clBranch, clBL:
		if class == clBL {
			return fmt.Sprintf("bl 0x%x", in.Target)
		}
		if cond == condAL {
			return fmt.Sprintf("b 0x%x", in.Target)
		}
		return fmt.Sprintf("b%s 0x%x", condNames[cond], in.Target)
	case clBX:
		rm := uir.Reg(w & 0xF)
		if rm == regLR {
			return "bx lr"
		}
		return "bx " + rn(rm)
	case clMulDiv:
		if name, ok := mdNames[w>>20&0xF]; ok {
			return fmt.Sprintf("%s %s, %s, %s", name, rn(uir.Reg(w>>16&0xF)), rn(uir.Reg(w>>12&0xF)), rn(uir.Reg(w>>8&0xF)))
		}
	}
	return fmt.Sprintf(".word %#x", w)
}

// condExpr builds the boolean UIR expression for an ARM condition code
// over the synthetic Z/LTS/LTU flags.
func condExpr(lb *isa.LiftBuilder, cond uint32) (uir.Operand, error) {
	z := func() uir.Operand { return uir.T(lb.GetReg(flagZ)) }
	lt := func() uir.Operand { return uir.T(lb.GetReg(flagLT)) }
	lo := func() uir.Operand { return uir.T(lb.GetReg(flagLO)) }
	not := func(x uir.Operand) uir.Operand { return uir.T(lb.Bin(uir.OpXor, x, uir.C(1))) }
	or := func(x, y uir.Operand) uir.Operand { return uir.T(lb.Bin(uir.OpOr, x, y)) }
	switch cond {
	case condEQ:
		return z(), nil
	case condNE:
		return not(z()), nil
	case condLO:
		return lo(), nil
	case condHS:
		return not(lo()), nil
	case condLS:
		return or(lo(), z()), nil
	case condHI:
		return not(or(lo(), z())), nil
	case condLT:
		return lt(), nil
	case condGE:
		return not(lt()), nil
	case condLE:
		return or(lt(), z()), nil
	case condGT:
		return not(or(lt(), z())), nil
	}
	return uir.Operand{}, fmt.Errorf("arm: cannot lift condition %d", cond)
}

// Lift implements isa.Backend. A cmp writes the three predicate flags; a
// predicated mov lifts to a Sel over the condition expression.
func (b *Backend) Lift(inst isa.Inst, lb *isa.LiftBuilder) error {
	w := uint32(inst.Raw)
	cond := w >> 28
	class := w >> 24 & 0xF

	setFlags := func(a, bb uir.Operand) {
		lb.PutReg(flagZ, uir.T(lb.Bin(uir.OpCmpEQ, a, bb)))
		lb.PutReg(flagLT, uir.T(lb.Bin(uir.OpCmpLTS, a, bb)))
		lb.PutReg(flagLO, uir.T(lb.Bin(uir.OpCmpLTU, a, bb)))
	}

	switch class {
	case clDPReg, clDPImm:
		op := w >> 20 & 0xF
		rd := uir.Reg(w >> 16 & 0xF)
		rnn := uir.Reg(w >> 12 & 0xF)
		var b2 uir.Operand
		if class == clDPReg {
			b2 = uir.T(lb.GetReg(uir.Reg(w >> 8 & 0xF)))
		} else {
			b2 = uir.C(w & 0xFFF)
		}
		// Conditionally-executed writes lift to Sel.
		write := func(val uir.Operand) {
			if cond == condAL {
				lb.PutReg(rd, val)
				return
			}
			c, err := condExpr(lb, cond)
			if err != nil {
				return
			}
			old := uir.T(lb.GetReg(rd))
			t := lb.NewTemp()
			lb.Emit(uir.Sel{Dst: t, Cond: c, A: val, B: old})
			lb.PutReg(rd, uir.T(t))
		}
		switch op {
		case dpCmp:
			setFlags(uir.T(lb.GetReg(rnn)), b2)
		case dpMov:
			write(b2)
		case dpMvn:
			write(uir.T(lb.Un(uir.OpNot, b2)))
		case dpRsb:
			write(uir.T(lb.Bin(uir.OpSub, b2, uir.T(lb.GetReg(rnn)))))
		default:
			var o uir.Op
			switch op {
			case dpAnd:
				o = uir.OpAnd
			case dpEor:
				o = uir.OpXor
			case dpSub:
				o = uir.OpSub
			case dpAdd:
				o = uir.OpAdd
			case dpOrr:
				o = uir.OpOr
			case dpLsl:
				o = uir.OpShl
			case dpLsr:
				o = uir.OpShrU
			case dpAsr:
				o = uir.OpShrS
			default:
				return fmt.Errorf("arm: cannot lift dp op %d", op)
			}
			write(uir.T(lb.Bin(o, uir.T(lb.GetReg(rnn)), b2)))
		}
	case clMovw:
		lb.PutReg(uir.Reg(w>>16&0xF), uir.C(w&0xFFFF))
	case clMovt:
		rd := uir.Reg(w >> 16 & 0xF)
		low := lb.Bin(uir.OpAnd, uir.T(lb.GetReg(rd)), uir.C(0xFFFF))
		hi := uir.C((w & 0xFFFF) << 16)
		lb.PutReg(rd, uir.T(lb.Bin(uir.OpOr, uir.T(low), hi)))
	case clMemW, clMemB:
		load := w>>23&1 == 1
		rd := uir.Reg(w >> 16 & 0xF)
		base := uir.Reg(w >> 12 & 0xF)
		size := uint8(4)
		if class == clMemB {
			size = 1
		}
		addr := lb.Bin(uir.OpAdd, uir.T(lb.GetReg(base)), uir.C(w&0xFFF))
		if load {
			t := lb.NewTemp()
			lb.Emit(uir.Load{Dst: t, Addr: uir.T(addr), Size: size})
			lb.PutReg(rd, uir.T(t))
		} else {
			lb.Emit(uir.Store{Addr: uir.T(addr), Src: uir.T(lb.GetReg(rd)), Size: size})
		}
	case clBranch:
		if cond == condAL {
			lb.Emit(uir.Exit{Kind: uir.ExitJump, Target: uir.CK(inst.Target, uir.ConstCode)})
		} else {
			c, err := condExpr(lb, cond)
			if err != nil {
				return err
			}
			lb.Emit(uir.Exit{Kind: uir.ExitCond, Cond: c, Target: uir.CK(inst.Target, uir.ConstCode)})
		}
	case clBL:
		lb.Emit(uir.Call{Target: uir.CK(inst.Target, uir.ConstCode)})
	case clBX:
		rm := uir.Reg(w & 0xF)
		if rm == regLR {
			lb.Emit(uir.Exit{Kind: uir.ExitRet})
		} else {
			lb.Emit(uir.Exit{Kind: uir.ExitIndir, Target: uir.T(lb.GetReg(rm))})
		}
	case clMulDiv:
		ops := map[uint32]uir.Op{mdMul: uir.OpMul, mdSdiv: uir.OpDivS, mdUdiv: uir.OpDivU, mdSrem: uir.OpRemS, mdUrem: uir.OpRemU}
		o, ok := ops[w>>20&0xF]
		if !ok {
			return fmt.Errorf("arm: cannot lift muldiv op %d", w>>20&0xF)
		}
		rd := uir.Reg(w >> 16 & 0xF)
		a := uir.T(lb.GetReg(uir.Reg(w >> 12 & 0xF)))
		bb := uir.T(lb.GetReg(uir.Reg(w >> 8 & 0xF)))
		lb.PutReg(rd, uir.T(lb.Bin(o, a, bb)))
	default:
		return fmt.Errorf("arm: cannot lift class %d", class)
	}
	return nil
}
