// Package isa hosts the machine layer: per-architecture backends that
// turn MIR into encoded machine code (codegen + assembler) and back into
// UIR (disassembler + lifter), plus the shared register allocator,
// scheduler and layout driver they all use.
//
// The four backends — mips, arm, ppc and x86 — model the four prevalent
// embedded architectures the paper evaluates. They are synthetic ISAs,
// faithful in spirit: fixed 32-bit big-endian words with branch delay
// slots for MIPS, condition flags and a link register for ARM, cr0-based
// compares for PPC, and variable-length two-operand encodings with EFLAGS
// and stack-passed arguments for x86.
package isa

import (
	"fmt"
	"sort"

	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Options are the codegen-side tool chain knobs (see compiler.Profile).
type Options struct {
	// TextBase is the load address of the text section.
	TextBase uint32
	// RegSeed permutes register-allocation preference order.
	RegSeed uint64
	// SchedSeed perturbs within-block instruction scheduling.
	SchedSeed uint64
	// MulByShift lowers multiplication by a power of two to a shift.
	MulByShift bool
	// ShuffleProcs permutes procedure layout order.
	ShuffleProcs bool
	// FillDelaySlots makes delay-slot architectures (MIPS) hoist the
	// preceding instruction into branch/call delay slots when safe,
	// instead of padding with a nop — the tool-chain behavior behind the
	// paper's delay-slot lifting caveat (the first instruction of the
	// following block ends up attached to the branch).
	FillDelaySlots bool
}

// Sym is a named address range inside an artifact section.
type Sym struct {
	Name string
	Addr uint32
	Size uint32
}

// Artifact is the output of code generation for one package: encoded text
// and data with symbol tables, prior to container packaging.
type Artifact struct {
	Arch     uir.Arch
	TextBase uint32
	Text     []byte
	DataBase uint32
	Data     []byte
	Procs    []Sym
	Globals  []Sym
}

// ProcSym returns the symbol for a procedure, if present.
func (a *Artifact) ProcSym(name string) (Sym, bool) {
	for _, s := range a.Procs {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}

// GlobalSym returns the symbol for a global, if present.
func (a *Artifact) GlobalSym(name string) (Sym, bool) {
	for _, s := range a.Globals {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}

// InstKind classifies decoded instructions for CFG recovery.
type InstKind uint8

// Decoded-instruction kinds.
const (
	KindNormal     InstKind = iota
	KindJump                // unconditional direct jump
	KindCondBranch          // conditional direct branch (falls through otherwise)
	KindCall                // direct call
	KindRet                 // procedure return
	KindIndirect            // indirect jump
)

// Inst is one decoded machine instruction, the unit shared by the CFG
// recoverer, the lifter and disassembly dumps. Decode classifies without
// rendering assembly text — decoding sits on the analysis hot path and
// the front end never reads the text; call Disasm to materialize it.
type Inst struct {
	Addr   uint32
	Size   uint32
	Raw    uint64 // raw bits (up to 8 bytes for x86)
	Kind   InstKind
	Target uint32 // branch/call destination for direct transfers
	// HasDelay is set on MIPS branches: the following instruction
	// executes before the transfer and belongs to this block.
	HasDelay bool
}

// Backend is one target architecture: code generation, decoding and
// lifting.
type Backend interface {
	// Arch identifies the architecture.
	Arch() uir.Arch
	// ABI describes the calling convention the backend implements.
	ABI() *uir.ABI
	// Generate compiles a MIR package to an artifact.
	Generate(pkg *mir.Package, opt Options) (*Artifact, error)
	// Decode decodes the instruction at text[off:]; addr is its address.
	Decode(text []byte, off int, addr uint32) (Inst, error)
	// Lift appends the UIR statements for inst to lb.
	Lift(inst Inst, lb *LiftBuilder) error
	// MinInstSize is the smallest legal instruction length, used by
	// recovery sweeps.
	MinInstSize() uint32
}

// Disassembler is implemented by backends that can render a decoded
// instruction's assembly text from its raw bits.
type Disassembler interface {
	// Disasm renders the assembly text of an instruction previously
	// returned by this backend's Decode.
	Disasm(in Inst) string
}

// Disasm renders in's assembly text. Instruction text is not produced
// during decoding (it would be pure overhead for analysis); dumps and
// traces call this to materialize it on demand.
func Disasm(be Backend, in Inst) string {
	if d, ok := be.(Disassembler); ok {
		return d.Disasm(in)
	}
	return fmt.Sprintf(".word %#x", in.Raw)
}

// Backends returns all registered backends keyed by architecture. The
// per-arch constructors live in the subpackages; registration happens in
// their init functions via Register.
func Backends() map[uir.Arch]Backend {
	out := make(map[uir.Arch]Backend, len(registry))
	for k, v := range registry {
		out[k] = v
	}
	return out
}

var registry = map[uir.Arch]Backend{}

// Register installs a backend; called from subpackage init functions.
func Register(b Backend) { registry[b.Arch()] = b }

// ByArch returns the backend for arch.
func ByArch(a uir.Arch) (Backend, error) {
	b, ok := registry[a]
	if !ok {
		return nil, fmt.Errorf("isa: no backend registered for %v", a)
	}
	return b, nil
}

// LiftBuilder accumulates UIR statements for a basic block, allocating
// SSA temporaries.
type LiftBuilder struct {
	Stmts []uir.Stmt
	next  uir.Temp
}

// NewTemp allocates a fresh temporary.
func (lb *LiftBuilder) NewTemp() uir.Temp {
	t := lb.next
	lb.next++
	return t
}

// Emit appends a statement.
func (lb *LiftBuilder) Emit(s uir.Stmt) { lb.Stmts = append(lb.Stmts, s) }

// GetReg emits a register read and returns the temp.
func (lb *LiftBuilder) GetReg(r uir.Reg) uir.Temp {
	t := lb.NewTemp()
	lb.Emit(uir.Get{Dst: t, Reg: r})
	return t
}

// PutReg emits a register write.
func (lb *LiftBuilder) PutReg(r uir.Reg, src uir.Operand) {
	lb.Emit(uir.Put{Reg: r, Src: src})
}

// Bin emits a binary op and returns the result temp.
func (lb *LiftBuilder) Bin(op uir.Op, a, b uir.Operand) uir.Temp {
	t := lb.NewTemp()
	lb.Emit(uir.Bin{Dst: t, Op: op, A: a, B: b})
	return t
}

// Un emits a unary op and returns the result temp.
func (lb *LiftBuilder) Un(op uir.Op, a uir.Operand) uir.Temp {
	t := lb.NewTemp()
	lb.Emit(uir.Un{Dst: t, Op: op, A: a})
	return t
}

// rng is a small deterministic PRNG (splitmix64) used for the seeded
// tool-chain perturbations; math/rand would also do, but a local
// implementation keeps streams stable across Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed + 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// permuteRegs returns a seeded permutation of regs (seed 0 = identity).
func permuteRegs(regs []uir.Reg, seed uint64) []uir.Reg {
	out := append([]uir.Reg(nil), regs...)
	if seed == 0 {
		return out
	}
	r := newRNG(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// shuffleOrder returns a seeded permutation of 0..n-1.
func shuffleOrder(n int, seed uint64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	if seed == 0 {
		return out
	}
	r := newRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// sortSyms orders symbols by address; recovery code expects this.
func sortSyms(syms []Sym) {
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
}
