package x86

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/uir"
)

// operand layout extracted from a modrm byte.
type modrm struct {
	mod  byte
	reg  uir.Reg
	rm   uir.Reg
	disp int32 // valid when mod == 10
}

func readU32(b []byte, o int) uint32 {
	return uint32(b[o]) | uint32(b[o+1])<<8 | uint32(b[o+2])<<16 | uint32(b[o+3])<<24
}

// parseModrm decodes the modrm byte (and disp32 for memory forms),
// returning the structure and total bytes consumed.
func parseModrm(text []byte, off int) (modrm, int, error) {
	if off >= len(text) {
		return modrm{}, 0, fmt.Errorf("x86: truncated modrm")
	}
	m := modrm{
		mod: text[off] >> 6,
		reg: uir.Reg(text[off] >> 3 & 7),
		rm:  uir.Reg(text[off] & 7),
	}
	switch m.mod {
	case 3:
		return m, 1, nil
	case 2:
		if off+5 > len(text) {
			return modrm{}, 0, fmt.Errorf("x86: truncated disp32")
		}
		m.disp = int32(readU32(text, off+1))
		return m, 5, nil
	default:
		return modrm{}, 0, fmt.Errorf("x86: unsupported mod %d", m.mod)
	}
}

var aluNames = map[byte]string{0x01: "add", 0x29: "sub", 0x21: "and", 0x09: "or", 0x31: "xor", 0x39: "cmp"}

// Decode implements isa.Backend. It classifies without rendering
// assembly text; Disasm materializes the text on demand.
func (b *Backend) Decode(text []byte, off int, addr uint32) (isa.Inst, error) {
	if off >= len(text) {
		return isa.Inst{}, fmt.Errorf("x86: truncated instruction at %#x", addr)
	}
	op := text[off]
	inst := isa.Inst{Addr: addr}
	fin := func(size int, raw uint64) (isa.Inst, error) {
		inst.Size = uint32(size)
		inst.Raw = raw
		return inst, nil
	}
	// Raw packing: opcode byte(s) in the low bits, then modrm, then
	// immediate — enough for Lift and Disasm to re-decode without the
	// text slice.
	switch {
	case op == 0xC3:
		inst.Kind = isa.KindRet
		return fin(1, uint64(op))
	case op == 0x99:
		return fin(1, uint64(op))
	case op == 0xE8 || op == 0xE9:
		if off+5 > len(text) {
			return inst, fmt.Errorf("x86: truncated rel32 at %#x", addr)
		}
		rel := int32(readU32(text, off+1))
		inst.Target = uint32(int32(addr+5) + rel)
		if op == 0xE8 {
			inst.Kind = isa.KindCall
		} else {
			inst.Kind = isa.KindJump
		}
		return fin(5, uint64(op))
	case op >= 0xB8 && op <= 0xBF:
		if off+5 > len(text) {
			return inst, fmt.Errorf("x86: truncated mov imm32 at %#x", addr)
		}
		v := readU32(text, off+1)
		return fin(5, uint64(op)|uint64(v)<<8)
	case op == 0x89 || op == 0x8B || op == 0x88 || op == 0x8D || op == 0x01 || op == 0x29 || op == 0x21 || op == 0x09 || op == 0x31 || op == 0x39:
		m, used, err := parseModrm(text, off+1)
		if err != nil {
			return inst, err
		}
		if op != 0x89 && op != 0x8B && op != 0x88 && op != 0x8D && m.mod != 3 {
			return inst, fmt.Errorf("x86: alu with memory operand at %#x", addr)
		}
		return fin(1+used, uint64(op)|uint64(text[off+1])<<8|uint64(uint32(m.disp))<<16)
	case op == 0x81:
		m, _, err := parseModrm(text, off+1)
		if err != nil || m.mod != 3 {
			return inst, fmt.Errorf("x86: bad 0x81 form at %#x", addr)
		}
		if off+6 > len(text) {
			return inst, fmt.Errorf("x86: truncated imm32 at %#x", addr)
		}
		if m.reg != 0 && m.reg != 5 && m.reg != 7 {
			return inst, fmt.Errorf("x86: unknown 0x81 /%d at %#x", m.reg, addr)
		}
		v := readU32(text, off+2)
		return fin(6, uint64(op)|uint64(text[off+1])<<8|uint64(v)<<16)
	case op == 0xF7:
		m, _, err := parseModrm(text, off+1)
		if err != nil || m.mod != 3 {
			return inst, fmt.Errorf("x86: bad 0xF7 form at %#x", addr)
		}
		if m.reg != 2 && m.reg != 3 && m.reg != 6 && m.reg != 7 {
			return inst, fmt.Errorf("x86: unknown 0xF7 /%d at %#x", m.reg, addr)
		}
		return fin(2, uint64(op)|uint64(text[off+1])<<8)
	case op == 0xD3:
		m, _, err := parseModrm(text, off+1)
		if err != nil || m.mod != 3 {
			return inst, fmt.Errorf("x86: bad 0xD3 form at %#x", addr)
		}
		if m.reg != 4 && m.reg != 5 && m.reg != 7 {
			return inst, fmt.Errorf("x86: unknown 0xD3 /%d at %#x", m.reg, addr)
		}
		return fin(2, uint64(op)|uint64(text[off+1])<<8)
	case op == 0xC1:
		m, _, err := parseModrm(text, off+1)
		if err != nil || m.mod != 3 || off+3 > len(text) {
			return inst, fmt.Errorf("x86: bad 0xC1 form at %#x", addr)
		}
		if m.reg != 4 && m.reg != 5 && m.reg != 7 {
			return inst, fmt.Errorf("x86: unknown 0xC1 /%d at %#x", m.reg, addr)
		}
		return fin(3, uint64(op)|uint64(text[off+1])<<8|uint64(text[off+2])<<16)
	case op == 0x0F:
		if off+2 > len(text) {
			return inst, fmt.Errorf("x86: truncated 0x0F escape at %#x", addr)
		}
		op2 := text[off+1]
		switch {
		case op2 >= 0x80 && op2 <= 0x8F:
			if off+6 > len(text) {
				return inst, fmt.Errorf("x86: truncated jcc at %#x", addr)
			}
			rel := int32(readU32(text, off+2))
			inst.Target = uint32(int32(addr+6) + rel)
			inst.Kind = isa.KindCondBranch
			return fin(6, uint64(op)|uint64(op2)<<8)
		case op2 >= 0x90 && op2 <= 0x9F:
			m, _, err := parseModrm(text, off+2)
			if err != nil || m.mod != 3 {
				return inst, fmt.Errorf("x86: bad setcc at %#x", addr)
			}
			return fin(3, uint64(op)|uint64(op2)<<8|uint64(text[off+2])<<16)
		case op2 == 0xAF:
			m, _, err := parseModrm(text, off+2)
			if err != nil || m.mod != 3 {
				return inst, fmt.Errorf("x86: bad imul at %#x", addr)
			}
			return fin(3, uint64(op)|uint64(op2)<<8|uint64(text[off+2])<<16)
		case op2 == 0xB6 || op2 == 0xB7 || op2 == 0xBE || op2 == 0xBF:
			m, used, err := parseModrm(text, off+2)
			if err != nil {
				return inst, err
			}
			return fin(2+used, uint64(op)|uint64(op2)<<8|uint64(text[off+2])<<16|uint64(uint32(m.disp))<<24)
		}
		return inst, fmt.Errorf("x86: unknown 0x0F %02x at %#x", op2, addr)
	}
	return inst, fmt.Errorf("x86: unknown opcode %#02x at %#x", op, addr)
}

// Disasm implements isa.Disassembler, reconstructing the assembly text
// from the packed raw bits off the decode hot path.
func (b *Backend) Disasm(in isa.Inst) string {
	raw := in.Raw
	op := byte(raw)
	n := func(r uir.Reg) string { return regNames[r] }
	mr := func(shift uint) modrm {
		mb := byte(raw >> shift)
		return modrm{mod: mb >> 6, reg: uir.Reg(mb >> 3 & 7), rm: uir.Reg(mb & 7)}
	}
	switch {
	case op == 0xC3:
		return "ret"
	case op == 0x99:
		return "cdq"
	case op == 0xE8:
		return fmt.Sprintf("call 0x%x", in.Target)
	case op == 0xE9:
		return fmt.Sprintf("jmp 0x%x", in.Target)
	case op >= 0xB8 && op <= 0xBF:
		return fmt.Sprintf("mov %s, 0x%x", n(uir.Reg(op-0xB8)), uint32(raw>>8))
	case op == 0x89 || op == 0x8B || op == 0x88 || op == 0x8D || op == 0x01 || op == 0x29 || op == 0x21 || op == 0x09 || op == 0x31 || op == 0x39:
		m := mr(8)
		disp := int32(uint32(raw >> 16))
		switch {
		case op == 0x89 && m.mod == 3:
			return fmt.Sprintf("mov %s, %s", n(m.rm), n(m.reg))
		case op == 0x89:
			return fmt.Sprintf("mov [%s%+d], %s", n(m.rm), disp, n(m.reg))
		case op == 0x8B:
			return fmt.Sprintf("mov %s, [%s%+d]", n(m.reg), n(m.rm), disp)
		case op == 0x88:
			return fmt.Sprintf("mov byte [%s%+d], %s", n(m.rm), disp, n(m.reg))
		case op == 0x8D:
			return fmt.Sprintf("lea %s, [%s%+d]", n(m.reg), n(m.rm), disp)
		default:
			return fmt.Sprintf("%s %s, %s", aluNames[op], n(m.rm), n(m.reg))
		}
	case op == 0x81:
		m := mr(8)
		if mn := map[uir.Reg]string{0: "add", 5: "sub", 7: "cmp"}[m.reg]; mn != "" {
			return fmt.Sprintf("%s %s, 0x%x", mn, n(m.rm), uint32(raw>>16))
		}
	case op == 0xF7:
		m := mr(8)
		if mn := map[uir.Reg]string{2: "not", 3: "neg", 6: "div", 7: "idiv"}[m.reg]; mn != "" {
			return fmt.Sprintf("%s %s", mn, n(m.rm))
		}
	case op == 0xD3:
		m := mr(8)
		if mn := map[uir.Reg]string{4: "shl", 5: "shr", 7: "sar"}[m.reg]; mn != "" {
			return fmt.Sprintf("%s %s, cl", mn, n(m.rm))
		}
	case op == 0xC1:
		m := mr(8)
		if mn := map[uir.Reg]string{4: "shl", 5: "shr", 7: "sar"}[m.reg]; mn != "" {
			return fmt.Sprintf("%s %s, %d", mn, n(m.rm), byte(raw>>16))
		}
	case op == 0x0F:
		op2 := byte(raw >> 8)
		switch {
		case op2 >= 0x80 && op2 <= 0x8F:
			return fmt.Sprintf("j%s 0x%x", ccNames[op2-0x80], in.Target)
		case op2 >= 0x90 && op2 <= 0x9F:
			return fmt.Sprintf("set%s %s", ccNames[op2-0x90], n(mr(16).rm))
		case op2 == 0xAF:
			m := mr(16)
			return fmt.Sprintf("imul %s, %s", n(m.reg), n(m.rm))
		case op2 == 0xB6 || op2 == 0xB7 || op2 == 0xBE || op2 == 0xBF:
			m := mr(16)
			mn := map[byte]string{0xB6: "movzx.b", 0xB7: "movzx.w", 0xBE: "movsx.b", 0xBF: "movsx.w"}[op2]
			if m.mod == 3 {
				return fmt.Sprintf("%s %s, %s", mn, n(m.reg), n(m.rm))
			}
			return fmt.Sprintf("%s %s, [%s%+d]", mn, n(m.reg), n(m.rm), int32(uint32(raw>>24)))
		}
	}
	return fmt.Sprintf(".word %#x", raw)
}

// ccExpr builds the boolean expression for an Intel condition code over
// the synthetic Z/LTS/LTU flags.
func ccExpr(lb *isa.LiftBuilder, cc byte) (uir.Operand, error) {
	z := func() uir.Operand { return uir.T(lb.GetReg(flagZ)) }
	lt := func() uir.Operand { return uir.T(lb.GetReg(flagLT)) }
	lo := func() uir.Operand { return uir.T(lb.GetReg(flagLO)) }
	not := func(x uir.Operand) uir.Operand { return uir.T(lb.Bin(uir.OpXor, x, uir.C(1))) }
	or := func(x, y uir.Operand) uir.Operand { return uir.T(lb.Bin(uir.OpOr, x, y)) }
	switch cc {
	case ccE:
		return z(), nil
	case ccNE:
		return not(z()), nil
	case ccB:
		return lo(), nil
	case ccAE:
		return not(lo()), nil
	case ccBE:
		return or(lo(), z()), nil
	case ccA:
		return not(or(lo(), z())), nil
	case ccL:
		return lt(), nil
	case ccGE:
		return not(lt()), nil
	case ccLE:
		return or(lt(), z()), nil
	case ccG:
		return not(or(lt(), z())), nil
	}
	return uir.Operand{}, fmt.Errorf("x86: cannot lift condition %#x", cc)
}

// Lift implements isa.Backend.
func (b *Backend) Lift(inst isa.Inst, lb *isa.LiftBuilder) error {
	raw := inst.Raw
	op := byte(raw)
	get := func(r uir.Reg) uir.Operand { return uir.T(lb.GetReg(r)) }
	setFlags := func(a, bb uir.Operand) {
		lb.PutReg(flagZ, uir.T(lb.Bin(uir.OpCmpEQ, a, bb)))
		lb.PutReg(flagLT, uir.T(lb.Bin(uir.OpCmpLTS, a, bb)))
		lb.PutReg(flagLO, uir.T(lb.Bin(uir.OpCmpLTU, a, bb)))
	}
	mr := func(shift uint) modrm {
		mb := byte(raw >> shift)
		return modrm{mod: mb >> 6, reg: uir.Reg(mb >> 3 & 7), rm: uir.Reg(mb & 7)}
	}
	switch {
	case op == 0xC3:
		lb.Emit(uir.Exit{Kind: uir.ExitRet})
	case op == 0x99: // cdq
		lb.PutReg(regEDX, uir.T(lb.Bin(uir.OpShrS, get(regEAX), uir.C(31))))
	case op == 0xE8:
		lb.Emit(uir.Call{Target: uir.CK(inst.Target, uir.ConstCode)})
	case op == 0xE9:
		lb.Emit(uir.Exit{Kind: uir.ExitJump, Target: uir.CK(inst.Target, uir.ConstCode)})
	case op >= 0xB8 && op <= 0xBF:
		lb.PutReg(uir.Reg(op-0xB8), uir.C(uint32(raw>>8)))
	case op == 0x89 || op == 0x8B || op == 0x88 || op == 0x8D:
		m := mr(8)
		disp := uir.C(uint32(raw >> 16))
		switch {
		case op == 0x89 && m.mod == 3:
			lb.PutReg(m.rm, get(m.reg))
		case op == 0x89:
			addr := lb.Bin(uir.OpAdd, get(m.rm), disp)
			lb.Emit(uir.Store{Addr: uir.T(addr), Src: get(m.reg), Size: 4})
		case op == 0x8B:
			addr := lb.Bin(uir.OpAdd, get(m.rm), disp)
			t := lb.NewTemp()
			lb.Emit(uir.Load{Dst: t, Addr: uir.T(addr), Size: 4})
			lb.PutReg(m.reg, uir.T(t))
		case op == 0x88:
			addr := lb.Bin(uir.OpAdd, get(m.rm), disp)
			lb.Emit(uir.Store{Addr: uir.T(addr), Src: get(m.reg), Size: 1})
		case op == 0x8D:
			lb.PutReg(m.reg, uir.T(lb.Bin(uir.OpAdd, get(m.rm), disp)))
		}
	case op == 0x01 || op == 0x29 || op == 0x21 || op == 0x09 || op == 0x31:
		m := mr(8)
		o := map[byte]uir.Op{0x01: uir.OpAdd, 0x29: uir.OpSub, 0x21: uir.OpAnd, 0x09: uir.OpOr, 0x31: uir.OpXor}[op]
		lb.PutReg(m.rm, uir.T(lb.Bin(o, get(m.rm), get(m.reg))))
	case op == 0x39:
		m := mr(8)
		setFlags(get(m.rm), get(m.reg))
	case op == 0x81:
		m := mr(8)
		v := uir.C(uint32(raw >> 16))
		switch m.reg {
		case 0:
			lb.PutReg(m.rm, uir.T(lb.Bin(uir.OpAdd, get(m.rm), v)))
		case 5:
			lb.PutReg(m.rm, uir.T(lb.Bin(uir.OpSub, get(m.rm), v)))
		case 7:
			setFlags(get(m.rm), v)
		}
	case op == 0xF7:
		m := mr(8)
		switch m.reg {
		case 2:
			lb.PutReg(m.rm, uir.T(lb.Un(uir.OpNot, get(m.rm))))
		case 3:
			lb.PutReg(m.rm, uir.T(lb.Un(uir.OpNeg, get(m.rm))))
		case 6:
			a, d := get(regEAX), get(m.rm)
			lb.PutReg(regEAX, uir.T(lb.Bin(uir.OpDivU, a, d)))
			lb.PutReg(regEDX, uir.T(lb.Bin(uir.OpRemU, a, d)))
		case 7:
			a, d := get(regEAX), get(m.rm)
			lb.PutReg(regEAX, uir.T(lb.Bin(uir.OpDivS, a, d)))
			lb.PutReg(regEDX, uir.T(lb.Bin(uir.OpRemS, a, d)))
		}
	case op == 0xD3:
		m := mr(8)
		o := map[uir.Reg]uir.Op{4: uir.OpShl, 5: uir.OpShrU, 7: uir.OpShrS}[m.reg]
		cnt := lb.Bin(uir.OpAnd, get(regECX), uir.C(31))
		lb.PutReg(m.rm, uir.T(lb.Bin(o, get(m.rm), uir.T(cnt))))
	case op == 0xC1:
		m := mr(8)
		o := map[uir.Reg]uir.Op{4: uir.OpShl, 5: uir.OpShrU, 7: uir.OpShrS}[m.reg]
		lb.PutReg(m.rm, uir.T(lb.Bin(o, get(m.rm), uir.C(uint32(byte(raw>>16))))))
	case op == 0x0F:
		op2 := byte(raw >> 8)
		switch {
		case op2 >= 0x80 && op2 <= 0x8F:
			c, err := ccExpr(lb, op2-0x80)
			if err != nil {
				return err
			}
			lb.Emit(uir.Exit{Kind: uir.ExitCond, Cond: c, Target: uir.CK(inst.Target, uir.ConstCode)})
		case op2 >= 0x90 && op2 <= 0x9F:
			m := mr(16)
			c, err := ccExpr(lb, op2-0x90)
			if err != nil {
				return err
			}
			lb.PutReg(m.rm, c)
		case op2 == 0xAF:
			m := mr(16)
			lb.PutReg(m.reg, uir.T(lb.Bin(uir.OpMul, get(m.reg), get(m.rm))))
		case op2 == 0xB6 || op2 == 0xB7 || op2 == 0xBE || op2 == 0xBF:
			m := mr(16)
			if m.mod == 3 {
				o := map[byte]uir.Op{0xB6: uir.OpZext8, 0xB7: uir.OpZext16, 0xBE: uir.OpSext8, 0xBF: uir.OpSext16}[op2]
				lb.PutReg(m.reg, uir.T(lb.Un(o, get(m.rm))))
				return nil
			}
			disp := uir.C(uint32(raw >> 24))
			addr := lb.Bin(uir.OpAdd, get(m.rm), disp)
			size := uint8(1)
			if op2 == 0xB7 || op2 == 0xBF {
				size = 2
			}
			t := lb.NewTemp()
			lb.Emit(uir.Load{Dst: t, Addr: uir.T(addr), Size: size})
			val := uir.T(t)
			if op2 == 0xBE {
				val = uir.T(lb.Un(uir.OpSext8, val))
			} else if op2 == 0xBF {
				val = uir.T(lb.Un(uir.OpSext16, val))
			}
			lb.PutReg(m.reg, val)
		default:
			return fmt.Errorf("x86: cannot lift 0x0F %02x", op2)
		}
	default:
		return fmt.Errorf("x86: cannot lift opcode %#02x", op)
	}
	return nil
}
