// Package x86 implements the Intel-x86-flavored backend: little-endian
// variable-length encodings, two-operand accumulator-style arithmetic,
// cmp/setcc/jcc through EFLAGS, implicit eax/edx division, and
// stack-passed arguments (cdecl-flavored).
//
// Two synthetic liberties keep the model tractable: call/ret do not
// adjust esp (the return address lives in shadow state rather than on the
// simulated stack), and memory operands never need SIB bytes — any
// register, including esp, may be a base. EFLAGS is modeled as the three
// predicate bits Z/LTS/LTU, mirroring the other backends.
package x86

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Registers 0-7 are the GPRs; 8-10 the flag bits.
const (
	regEAX uir.Reg = 0
	regECX uir.Reg = 1
	regEDX uir.Reg = 2
	regEBX uir.Reg = 3
	regESP uir.Reg = 4
	regEBP uir.Reg = 5
	regESI uir.Reg = 6
	regEDI uir.Reg = 7
	flagZ  uir.Reg = 8
	flagLT uir.Reg = 9
	flagLO uir.Reg = 10
)

var regNames = map[uir.Reg]string{
	0: "eax", 1: "ecx", 2: "edx", 3: "ebx", 4: "esp", 5: "ebp", 6: "esi", 7: "edi",
	8: "zf", 9: "ltf", 10: "bf",
}

func abi() *uir.ABI {
	return &uir.ABI{
		Arch:       uir.ArchX86,
		ArgRegs:    nil, // stack-passed arguments
		RetReg:     regEAX,
		SP:         regESP,
		LinkReg:    uir.NoLinkReg,
		Scratch:    []uir.Reg{0, 1, 2, flagZ, flagLT, flagLO},
		StatusRegs: []uir.Reg{flagZ, flagLT, flagLO},
		RegNames:   regNames,
	}
}

func desc() *isa.Desc {
	return &isa.Desc{
		Arch:    uir.ArchX86,
		ABI:     abi(),
		Alloc:   []uir.Reg{regEBX, regESI, regEDI, regEBP},
		Scratch: [2]uir.Reg{regECX, regEDX},
	}
}

// Condition-code nibbles (Intel numbering) used in setcc (0F 90+cc) and
// jcc (0F 80+cc).
const (
	ccB  = 0x2 // unsigned <
	ccAE = 0x3
	ccE  = 0x4
	ccNE = 0x5
	ccBE = 0x6
	ccA  = 0x7
	ccL  = 0xC // signed <
	ccGE = 0xD
	ccLE = 0xE
	ccG  = 0xF
)

var ccNames = map[byte]string{
	ccB: "b", ccAE: "ae", ccE: "e", ccNE: "ne", ccBE: "be", ccA: "a",
	ccL: "l", ccGE: "ge", ccLE: "le", ccG: "g",
}

// Fixup formats.
const (
	fmtRel32Op1 uint8 = iota // rel32 at offset+1, 5-byte instruction (jmp/call)
	fmtRel32Op2              // rel32 at offset+2, 6-byte instruction (jcc)
	fmtAbs32Op1              // abs32 at offset+1 (mov r, imm32)
)

// Backend implements isa.Backend for x86.
type Backend struct{ d *isa.Desc }

// New returns the x86 backend.
func New() *Backend { return &Backend{d: desc()} }

func init() { isa.Register(New()) }

// Arch implements isa.Backend.
func (b *Backend) Arch() uir.Arch { return uir.ArchX86 }

// ABI implements isa.Backend.
func (b *Backend) ABI() *uir.ABI { return b.d.ABI }

// MinInstSize implements isa.Backend.
func (b *Backend) MinInstSize() uint32 { return 1 }

// Generate implements isa.Backend.
func (b *Backend) Generate(pkg *mir.Package, opt isa.Options) (*isa.Artifact, error) {
	return isa.GenerateWith(pkg, b.d, func(p *isa.Prog) isa.Emitter {
		return &emitter{prog: p}
	}, b, opt)
}

type emitter struct{ prog *isa.Prog }

func (e *emitter) by(bs ...byte) { e.prog.Buf = append(e.prog.Buf, bs...) }

func (e *emitter) imm32(v uint32) {
	e.by(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func modrmReg(reg, rm uir.Reg) byte   { return 0xC0 | byte(reg)<<3 | byte(rm) }
func modrmMem(reg, base uir.Reg) byte { return 0x80 | byte(reg)<<3 | byte(base) }

func (e *emitter) MarkBlock(id int) { e.prog.BlockOff[id] = len(e.prog.Buf) }

func (e *emitter) fixup(block int, sym string, format uint8) {
	e.prog.Fixups = append(e.prog.Fixups, isa.Fixup{Off: len(e.prog.Buf), Block: block, Sym: sym, Format: format})
}

// mov dst, src (register).
func (e *emitter) movRR(dst, src uir.Reg) { e.by(0x89, modrmReg(src, dst)) }

// mov dst, [base+disp32] / mov [base+disp32], src.
func (e *emitter) movLoad(dst, base uir.Reg, disp int32) {
	e.by(0x8B, modrmMem(dst, base))
	e.imm32(uint32(disp))
}

func (e *emitter) movStore(base uir.Reg, disp int32, src uir.Reg) {
	e.by(0x89, modrmMem(src, base))
	e.imm32(uint32(disp))
}

func (e *emitter) Prologue(f isa.Frame) {
	if f.Size > 0 {
		e.by(0x81, modrmReg(5, regESP)) // sub esp, imm32
		e.imm32(uint32(f.Size))
	}
	for _, s := range f.Saves {
		e.movStore(regESP, s.Off, s.Reg)
	}
}

func (e *emitter) Epilogue(f isa.Frame) {
	for _, s := range f.Saves {
		e.movLoad(s.Reg, regESP, s.Off)
	}
	if f.Size > 0 {
		e.by(0x81, modrmReg(0, regESP)) // add esp, imm32
		e.imm32(uint32(f.Size))
	}
	e.by(0xC3) // ret
}

func (e *emitter) MovConst(dst uir.Reg, v uint32) {
	e.by(0xB8 + byte(dst))
	e.imm32(v)
}

func (e *emitter) MovReg(dst, src uir.Reg) { e.movRR(dst, src) }

// aluRR emits `op rm, reg` two-operand forms (opcode is the /r form with
// the destination in rm).
func (e *emitter) aluRR(opcode byte, dst, src uir.Reg) {
	e.by(opcode, modrmReg(src, dst))
}

var ccFor = map[uir.Op]byte{
	uir.OpCmpEQ: ccE, uir.OpCmpNE: ccNE,
	uir.OpCmpLTS: ccL, uir.OpCmpLES: ccLE,
	uir.OpCmpLTU: ccB, uir.OpCmpLEU: ccBE,
}

func (e *emitter) Bin(op uir.Op, dst, a, b uir.Reg) {
	switch op {
	case uir.OpAdd, uir.OpSub, uir.OpAnd, uir.OpOr, uir.OpXor:
		opcode := map[uir.Op]byte{uir.OpAdd: 0x01, uir.OpSub: 0x29, uir.OpAnd: 0x21, uir.OpOr: 0x09, uir.OpXor: 0x31}[op]
		e.movRR(regEAX, a)
		e.aluRR(opcode, regEAX, b)
		e.movRR(dst, regEAX)
	case uir.OpMul:
		e.movRR(regEAX, a)
		e.by(0x0F, 0xAF, modrmReg(regEAX, b)) // imul eax, b
		e.movRR(dst, regEAX)
	case uir.OpDivS, uir.OpDivU, uir.OpRemS, uir.OpRemU:
		e.movRR(regEAX, a)
		divisor := b
		if b == regEDX {
			e.movRR(regECX, b)
			divisor = regECX
		}
		if op == uir.OpDivS || op == uir.OpRemS {
			e.by(0x99)                       // cdq
			e.by(0xF7, modrmReg(7, divisor)) // idiv
		} else {
			e.aluRR(0x31, regEDX, regEDX)    // xor edx, edx
			e.by(0xF7, modrmReg(6, divisor)) // div
		}
		if op == uir.OpDivS || op == uir.OpDivU {
			e.movRR(dst, regEAX)
		} else {
			e.movRR(dst, regEDX)
		}
	case uir.OpShl, uir.OpShrU, uir.OpShrS:
		sub := map[uir.Op]byte{uir.OpShl: 4, uir.OpShrU: 5, uir.OpShrS: 7}[op]
		e.movRR(regEAX, a)
		if b != regECX {
			e.movRR(regECX, b)
		}
		e.by(0xD3, modrmReg(uir.Reg(sub), regEAX)) // shift eax, cl
		e.movRR(dst, regEAX)
	case uir.OpCmpEQ, uir.OpCmpNE, uir.OpCmpLTS, uir.OpCmpLTU, uir.OpCmpLES, uir.OpCmpLEU:
		e.aluRR(0x39, a, b) // cmp a, b
		e.by(0x0F, 0x90+ccFor[op], modrmReg(0, dst))
	default:
		panic(fmt.Sprintf("x86: unsupported binary op %v", op))
	}
}

func (e *emitter) cmpImm(a uir.Reg, v uint32) {
	e.by(0x81, modrmReg(7, a)) // cmp a, imm32
	e.imm32(v)
}

func (e *emitter) Un(op uir.Op, dst, a uir.Reg) {
	switch op {
	case uir.OpNot:
		if dst != a {
			e.movRR(dst, a)
		}
		e.by(0xF7, modrmReg(2, dst))
	case uir.OpNeg:
		if dst != a {
			e.movRR(dst, a)
		}
		e.by(0xF7, modrmReg(3, dst))
	case uir.OpBool:
		e.cmpImm(a, 0)
		e.by(0x0F, 0x90+ccNE, modrmReg(0, dst))
	case uir.OpSext8:
		e.by(0x0F, 0xBE, modrmReg(dst, a))
	case uir.OpSext16:
		e.by(0x0F, 0xBF, modrmReg(dst, a))
	case uir.OpZext8:
		e.by(0x0F, 0xB6, modrmReg(dst, a))
	case uir.OpZext16:
		e.by(0x0F, 0xB7, modrmReg(dst, a))
	default:
		panic(fmt.Sprintf("x86: unsupported unary op %v", op))
	}
}

func (e *emitter) ShiftImm(op uir.Op, dst, a uir.Reg, k uint8) {
	sub := map[uir.Op]byte{uir.OpShl: 4, uir.OpShrU: 5, uir.OpShrS: 7}[op]
	if dst != a {
		e.movRR(dst, a)
	}
	e.by(0xC1, modrmReg(uir.Reg(sub), dst), k)
}

func (e *emitter) Load(dst, base uir.Reg, off int32, size uint8) {
	if size == 1 {
		e.by(0x0F, 0xB6, modrmMem(dst, base)) // movzx dst, byte [base+disp]
		e.imm32(uint32(off))
		return
	}
	e.movLoad(dst, base, off)
}

func (e *emitter) Store(base uir.Reg, off int32, src uir.Reg, size uint8) {
	if size == 1 {
		e.by(0x88, modrmMem(src, base)) // mov byte [base+disp], src
		e.imm32(uint32(off))
		return
	}
	e.movStore(base, off, src)
}

func (e *emitter) AddrAdd(dst, base uir.Reg, off int32) {
	e.by(0x8D, modrmMem(dst, base)) // lea dst, [base+disp32]
	e.imm32(uint32(off))
}

func (e *emitter) AddrGlobal(dst uir.Reg, sym string) {
	e.fixup(0, sym, fmtAbs32Op1)
	e.MovConst(dst, 0)
}

func (e *emitter) CallSym(sym string) {
	e.fixup(0, sym, fmtRel32Op1)
	e.by(0xE8)
	e.imm32(0)
}

func (e *emitter) JumpBlock(blk int) {
	e.fixup(blk, "", fmtRel32Op1)
	e.by(0xE9)
	e.imm32(0)
}

func (e *emitter) CmpBranch(op uir.Op, a, b uir.Reg, trueB int) {
	e.aluRR(0x39, a, b)
	e.fixup(trueB, "", fmtRel32Op2)
	e.by(0x0F, 0x80+ccFor[op])
	e.imm32(0)
}

func (e *emitter) CondBranch(cond uir.Reg, trueB int) {
	e.cmpImm(cond, 0)
	e.fixup(trueB, "", fmtRel32Op2)
	e.by(0x0F, 0x80+ccNE)
	e.imm32(0)
}

func (e *emitter) StoreArgStack(i int, src uir.Reg) {
	e.movStore(regESP, -4*int32(i+1), src)
}

func (e *emitter) LoadArgStack(dst uir.Reg, i int, frameSize int32) {
	e.movLoad(dst, regESP, frameSize-4*int32(i+1))
}

// Patch implements isa.Patcher.
func (b *Backend) Patch(buf []byte, off int, format uint8, instAddr, target uint32) error {
	put := func(o int, v uint32) {
		buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	switch format {
	case fmtRel32Op1:
		put(off+1, target-(instAddr+5))
	case fmtRel32Op2:
		put(off+2, target-(instAddr+6))
	case fmtAbs32Op1:
		put(off+1, target)
	default:
		return fmt.Errorf("x86: unknown fixup format %d", format)
	}
	return nil
}
