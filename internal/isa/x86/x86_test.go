package x86

import (
	"testing"

	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	"firmup/internal/uir"
)

func TestConformance(t *testing.T) { isatest.Conformance(t, New()) }
func TestDisassembly(t *testing.T) { isatest.Disassembly(t, New()) }

func TestVariableLengthDecoding(t *testing.T) {
	be := New()
	// ret; cdq; mov eax, 0x11223344; jmp +0
	buf := []byte{0xC3, 0x99, 0xB8, 0x44, 0x33, 0x22, 0x11, 0xE9, 0, 0, 0, 0}
	sizes := []uint32{1, 1, 5, 5}
	off := 0
	for i, want := range sizes {
		inst, err := be.Decode(buf, off, uint32(off))
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if inst.Size != want {
			t.Errorf("inst %d size = %d, want %d", i, inst.Size, want)
		}
		off += int(inst.Size)
	}
}

func TestCallRelTarget(t *testing.T) {
	be := New()
	// call rel32 = +0x20 at addr 0x400000 -> target 0x400025.
	buf := []byte{0xE8, 0x20, 0, 0, 0}
	inst, err := be.Decode(buf, 0, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindCall || inst.Target != 0x400025 {
		t.Errorf("kind=%v target=%#x", inst.Kind, inst.Target)
	}
}

func TestIdivLiftsQuotientAndRemainder(t *testing.T) {
	be := New()
	buf := []byte{0xF7, modrmReg(7, regEBX)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	puts := map[uir.Reg]bool{}
	for _, s := range lb.Stmts {
		if p, ok := s.(uir.Put); ok {
			puts[p.Reg] = true
		}
	}
	if !puts[regEAX] || !puts[regEDX] {
		t.Errorf("idiv must write eax (quotient) and edx (remainder): %v", lb.Stmts)
	}
}

func TestSetccReadsFlags(t *testing.T) {
	be := New()
	buf := []byte{0x0F, 0x90 + ccLE, modrmReg(0, regEBX)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := be.Disasm(inst); got != "setle ebx" {
		t.Errorf("mnemonic = %q", got)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	gets := map[uir.Reg]bool{}
	for _, s := range lb.Stmts {
		if g, ok := s.(uir.Get); ok {
			gets[g.Reg] = true
		}
	}
	if !gets[flagZ] || !gets[flagLT] {
		t.Errorf("setle must read Z and LTS flags")
	}
}

func TestStackArgsRoundTrip(t *testing.T) {
	// Covered by conformance (x86 is the stack-args ABI), but check the
	// emitter's frame math directly: arg 0 lands where LoadArgStack reads.
	e := &emitter{prog: &isa.Prog{BlockOff: map[int]int{}}}
	e.StoreArgStack(0, regEBX)
	e.LoadArgStack(regESI, 0, 0x40)
	// mov [esp-4], ebx = 89 mod10 reg=ebx rm=esp disp -4
	want := []byte{0x89, modrmMem(regEBX, regESP), 0xFC, 0xFF, 0xFF, 0xFF}
	for i, b := range want {
		if e.prog.Buf[i] != b {
			t.Fatalf("StoreArgStack byte %d = %#x, want %#x", i, e.prog.Buf[i], b)
		}
	}
	// mov esi, [esp+0x3C]
	want2 := []byte{0x8B, modrmMem(regESI, regESP), 0x3C, 0, 0, 0}
	for i, b := range want2 {
		if e.prog.Buf[6+i] != b {
			t.Fatalf("LoadArgStack byte %d = %#x, want %#x", i, e.prog.Buf[6+i], b)
		}
	}
}

func TestDecodeRobustness(t *testing.T) { isatest.DecodeRobustness(t, New(), 4) }
