// Package isatest provides the shared backend conformance suite: every
// ISA backend must compile the same firmlang program, under several
// tool-chain variants, and execute it (via its own decoder and lifter)
// with results identical to the MIR reference interpreter.
package isatest

import (
	"strings"
	"testing"

	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Source is the conformance program; it exercises arithmetic, signedness,
// memory, globals, strings, control flow, calls and register pressure.
const Source = `
package demo version "1.0"

var counter = 0;
var table[4] = {3, 1, 4, 1};
var msg = "hello";

func leaf_add(a, b) { return a + b; }
func mixops(a, b) {
    return ((a ^ b) & 0xFF) | (a << 3) - (b >> 1);
}
func muldiv(a, b) {
    if b == 0 { return 0; }
    return (a * b) + (a / b) + (a % b);
}
func cmp_matrix(a, b) {
    var r = 0;
    if a < b { r = r | 1; }
    if a <= b { r = r | 2; }
    if a > b { r = r | 4; }
    if a >= b { r = r | 8; }
    if a == b { r = r | 16; }
    if a != b { r = r | 32; }
    return r;
}
func sum_to(n) {
    var s = 0;
    for var i = 0; i < n; i = i + 1 { s = s + i; }
    return s;
}
func table_sum() {
    var s = 0;
    for var i = 0; i < 4; i = i + 1 { s = s + table[i]; }
    return s;
}
func touch_global(v) {
    counter = counter + v;
    return counter;
}
func strload(i) { return msg[i]; }
func buf_fill(n) {
    var buf[8];
    var i = 0;
    while i < n {
        buf[i] = i * i;
        i = i + 1;
    }
    return buf[n - 1];
}
func negnot(x) { return -x + ~x + !x; }
func bytes_copy(n) {
    var src[4];
    var dst[4];
    src[0] = 0x11223344;
    src[1] = 0x55667788;
    var i = 0;
    while i < n {
        dst[i] = src[i];
        i = i + 1;
    }
    return dst[0] + dst[1];
}
func logical(a, b) {
    if a > 2 && b < 5 { return 1; }
    if a == 0 || b == 0 { return 2; }
    return 3;
}
func deep(a, b) {
    var x = leaf_add(a, b);
    var y = mixops(x, a);
    return muldiv(y, b + 1) + sum_to(a & 7);
}
func spill_pressure(a, b, c, d) {
    var e = a + b; var f = b + c; var g = c + d; var h = d + a;
    var i = a * 2; var j = b * 3; var k = c * 5; var l = d * 7;
    var m = e + f + g + h;
    var n = i + j + k + l;
    return m * n + e * i + f * j + g * k + h * l;
}
func mul8(x) { return x * 8; }
`

// Call is one conformance invocation.
type Call struct {
	Fn   string
	Args []uint32
}

// Calls is the conformance battery.
var Calls = []Call{
	{"leaf_add", []uint32{3, 4}},
	{"mixops", []uint32{0x1234, 0x00FF}},
	{"muldiv", []uint32{100, 7}},
	{"muldiv", []uint32{100, 0}},
	{"muldiv", []uint32{0xFFFFFF9C, 7}}, // -100
	{"cmp_matrix", []uint32{3, 7}},
	{"cmp_matrix", []uint32{7, 3}},
	{"cmp_matrix", []uint32{5, 5}},
	{"cmp_matrix", []uint32{0xFFFFFFFF, 1}}, // signed -1 < 1
	{"sum_to", []uint32{10}},
	{"table_sum", nil},
	{"touch_global", []uint32{5}},
	{"touch_global", []uint32{7}},
	{"strload", []uint32{1}},
	{"buf_fill", []uint32{6}},
	{"negnot", []uint32{9}},
	{"bytes_copy", []uint32{2}},
	{"logical", []uint32{3, 4}},
	{"logical", []uint32{0, 9}},
	{"logical", []uint32{1, 7}},
	{"deep", []uint32{5, 3}},
	{"spill_pressure", []uint32{2, 3, 4, 5}},
	{"mul8", []uint32{7}},
}

// RunPair compiles Source under prof, generates code with be, and checks
// machine execution against the MIR interpreter for every call.
func RunPair(t *testing.T, be isa.Backend, prof compiler.Profile, opt isa.Options) {
	t.Helper()
	pkg, err := compiler.CompileToMIR(Source, prof)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ref := mir.NewInterp(pkg)
	ex := isa.NewExecutor(be, art)
	for _, c := range Calls {
		want, err := ref.Call(c.Fn, c.Args...)
		if err != nil {
			t.Fatalf("mir %s%v: %v", c.Fn, c.Args, err)
		}
		got, err := ex.CallProc(c.Fn, c.Args...)
		if err != nil {
			t.Fatalf("exec %s%v: %v", c.Fn, c.Args, err)
		}
		if got != want {
			t.Errorf("%s%v = %#x on machine, want %#x (MIR)", c.Fn, c.Args, got, want)
		}
	}
}

// Conformance runs the full matrix: optimization levels crossed with
// tool-chain perturbations.
func Conformance(t *testing.T, be isa.Backend) {
	t.Helper()
	for level := 0; level <= 3; level++ {
		prof := compiler.Profile{OptLevel: level}
		RunPair(t, be, prof, isa.Options{TextBase: 0x400000})
	}
	variants := []isa.Options{
		{TextBase: 0x400000, RegSeed: 7, SchedSeed: 13, MulByShift: true},
		{TextBase: 0x80001000, RegSeed: 99, SchedSeed: 5, ShuffleProcs: true},
		{TextBase: 0x10000, RegSeed: 3, MulByShift: true, ShuffleProcs: true},
		{TextBase: 0x400000, RegSeed: 11, SchedSeed: 3, FillDelaySlots: true},
		{TextBase: 0x80400000, RegSeed: 23, MulByShift: true, ShuffleProcs: true, FillDelaySlots: true},
	}
	for _, opt := range variants {
		RunPair(t, be, compiler.Profile{OptLevel: 2}, opt)
	}
}

// Disassembly checks that every instruction the backend emitted can be
// decoded back, walking the text section linearly.
func Disassembly(t *testing.T, be isa.Backend) {
	t.Helper()
	pkg, err := compiler.CompileToMIR(Source, compiler.Profile{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(art.Text); {
		addr := art.TextBase + uint32(off)
		inst, err := be.Decode(art.Text, off, addr)
		if err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
		if inst.Size == 0 {
			t.Fatalf("zero-size instruction at %#x", addr)
		}
		if text := isa.Disasm(be, inst); text == "" || strings.HasPrefix(text, ".word") {
			t.Errorf("no mnemonic at %#x (got %q)", addr, text)
		}
		off += int(inst.Size)
	}
}

// DecodeRobustness feeds random bytes to the decoder: it must never
// panic, and any successful decode must report a sane size and lift
// without panicking (errors are fine — firmware text sections contain
// junk the paper's pipeline also had to survive).
func DecodeRobustness(t *testing.T, be isa.Backend, seed int64) {
	t.Helper()
	rng := newTestRNG(seed)
	buf := make([]byte, 64)
	for trial := 0; trial < 5000; trial++ {
		for i := range buf {
			buf[i] = byte(rng.next())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked on %x: %v", trial, buf, r)
				}
			}()
			inst, err := be.Decode(buf, 0, 0x1000)
			if err != nil {
				return
			}
			if inst.Size == 0 || inst.Size > 16 {
				t.Fatalf("trial %d: implausible size %d for %x", trial, inst.Size, buf[:8])
			}
			lb := &isa.LiftBuilder{}
			_ = be.Lift(inst, lb) // must not panic
			blk := &uir.Block{Addr: 0x1000, Size: inst.Size, Stmts: lb.Stmts}
			if err := blk.Validate(); err != nil {
				t.Fatalf("trial %d: lift of %q produced invalid block: %v", trial, isa.Disasm(be, inst), err)
			}
		}()
	}
}

type testRNG struct{ s uint64 }

func newTestRNG(seed int64) *testRNG { return &testRNG{s: uint64(seed) + 0x9E3779B97F4A7C15} }

func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
