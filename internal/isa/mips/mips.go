// Package mips implements the MIPS32-flavored backend: big-endian 32-bit
// fixed-width encodings, $zero semantics, lui/ori constant
// materialization, slt-based comparisons, and branch delay slots — the
// lifting caveat the paper calls out explicitly.
package mips

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Register numbers (architectural).
const (
	regZero uir.Reg = 0
	regAT   uir.Reg = 1
	regV0   uir.Reg = 2
	regV1   uir.Reg = 3
	regA0   uir.Reg = 4
	regT0   uir.Reg = 8
	regT1   uir.Reg = 9
	regS0   uir.Reg = 16
	regGP   uir.Reg = 28
	regSP   uir.Reg = 29
	regFP   uir.Reg = 30
	regRA   uir.Reg = 31
)

var regNames = map[uir.Reg]string{
	0: "zero", 1: "at", 2: "v0", 3: "v1", 4: "a0", 5: "a1", 6: "a2", 7: "a3",
	8: "t0", 9: "t1", 10: "t2", 11: "t3", 12: "t4", 13: "t5", 14: "t6", 15: "t7",
	16: "s0", 17: "s1", 18: "s2", 19: "s3", 20: "s4", 21: "s5", 22: "s6", 23: "s7",
	24: "t8", 25: "t9", 28: "gp", 29: "sp", 30: "fp", 31: "ra",
}

func abi() *uir.ABI {
	return &uir.ABI{
		Arch:     uir.ArchMIPS32,
		ArgRegs:  []uir.Reg{4, 5, 6, 7},
		RetReg:   regV0,
		SP:       regSP,
		LinkReg:  regRA,
		Scratch:  []uir.Reg{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 24, 25},
		RegNames: regNames,
	}
}

func desc() *isa.Desc {
	return &isa.Desc{
		Arch:      uir.ArchMIPS32,
		ABI:       abi(),
		Alloc:     []uir.Reg{16, 17, 18, 19, 20, 21, 22, 23},
		Scratch:   [2]uir.Reg{regT0, regT1},
		BigEndian: true,
	}
}

// Opcode and funct values (MIPS32-flavored; SPECIAL2 division forms are
// synthetic three-operand variants replacing the hi/lo pipeline).
const (
	opSpecial  = 0x00
	opJ        = 0x02
	opJal      = 0x03
	opBeq      = 0x04
	opBne      = 0x05
	opAddiu    = 0x09
	opSlti     = 0x0A
	opSltiu    = 0x0B
	opAndi     = 0x0C
	opOri      = 0x0D
	opXori     = 0x0E
	opLui      = 0x0F
	opSpecial2 = 0x1C
	opLb       = 0x20
	opLw       = 0x23
	opLbu      = 0x24
	opSb       = 0x28
	opSw       = 0x2B

	fnSll  = 0x00
	fnSrl  = 0x02
	fnSra  = 0x03
	fnSllv = 0x04
	fnSrlv = 0x06
	fnSrav = 0x07
	fnJr   = 0x08
	fnAddu = 0x21
	fnSubu = 0x23
	fnAnd  = 0x24
	fnOr   = 0x25
	fnXor  = 0x26
	fnNor  = 0x27
	fnSlt  = 0x2A
	fnSltu = 0x2B

	fn2Mul  = 0x02
	fn2Sdiv = 0x1A
	fn2Udiv = 0x1B
	fn2Srem = 0x1E
	fn2Urem = 0x1F
)

// Fixup formats.
const (
	fmtBranch16 uint8 = iota // 16-bit word-offset relative to delay slot
	fmtJump26                // 26-bit absolute word target
	fmtHiLo                  // lui/ori pair materializing an address
)

// Backend implements isa.Backend for MIPS32.
type Backend struct{ d *isa.Desc }

// New returns the MIPS backend.
func New() *Backend { return &Backend{d: desc()} }

func init() { isa.Register(New()) }

// Arch implements isa.Backend.
func (b *Backend) Arch() uir.Arch { return uir.ArchMIPS32 }

// ABI implements isa.Backend.
func (b *Backend) ABI() *uir.ABI { return b.d.ABI }

// MinInstSize implements isa.Backend.
func (b *Backend) MinInstSize() uint32 { return 4 }

// Generate implements isa.Backend.
func (b *Backend) Generate(pkg *mir.Package, opt isa.Options) (*isa.Artifact, error) {
	return isa.GenerateWith(pkg, b.d, func(p *isa.Prog) isa.Emitter {
		return &emitter{prog: p, fillDelay: opt.FillDelaySlots}
	}, b, opt)
}

// --- encoding helpers ---

func rtype(funct uint32, rd, rs, rt uir.Reg) uint32 {
	return uint32(opSpecial)<<26 | uint32(rs)<<21 | uint32(rt)<<16 | uint32(rd)<<11 | funct
}

func r2type(funct uint32, rd, rs, rt uir.Reg) uint32 {
	return uint32(opSpecial2)<<26 | uint32(rs)<<21 | uint32(rt)<<16 | uint32(rd)<<11 | funct
}

func shift(funct uint32, rd, rt uir.Reg, sh uint8) uint32 {
	return uint32(opSpecial)<<26 | uint32(rt)<<16 | uint32(rd)<<11 | uint32(sh&31)<<6 | funct
}

func itype(op uint32, rt, rs uir.Reg, imm uint16) uint32 {
	return op<<26 | uint32(rs)<<21 | uint32(rt)<<16 | uint32(imm)
}

func jtype(op uint32, target uint32) uint32 {
	return op<<26 | (target>>2)&0x03FFFFFF
}

type emitter struct {
	prog      *isa.Prog
	fillDelay bool
	lastMark  int
}

func (e *emitter) word(w uint32) {
	e.prog.Buf = append(e.prog.Buf, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
}

func (e *emitter) MarkBlock(id int) {
	e.prog.BlockOff[id] = len(e.prog.Buf)
	e.lastMark = len(e.prog.Buf)
}

func (e *emitter) fixup(block int, sym string, format uint8) {
	e.prog.Fixups = append(e.prog.Fixups, isa.Fixup{Off: len(e.prog.Buf), Block: block, Sym: sym, Format: format})
}

func (e *emitter) Prologue(f isa.Frame) {
	if f.Size > 0 {
		e.word(itype(opAddiu, regSP, regSP, uint16(uint32(-f.Size))))
	}
	for _, s := range f.Saves {
		e.word(itype(opSw, s.Reg, regSP, uint16(uint32(s.Off))))
	}
	if f.SaveLink {
		e.word(itype(opSw, regRA, regSP, uint16(uint32(f.LinkOff))))
	}
}

func (e *emitter) Epilogue(f isa.Frame) {
	for _, s := range f.Saves {
		e.word(itype(opLw, s.Reg, regSP, uint16(uint32(s.Off))))
	}
	if f.SaveLink {
		e.word(itype(opLw, regRA, regSP, uint16(uint32(f.LinkOff))))
	}
	if f.Size > 0 {
		e.word(itype(opAddiu, regSP, regSP, uint16(uint32(f.Size))))
	}
	e.word(rtype(fnJr, 0, regRA, 0))
	e.word(0) // delay slot
}

func (e *emitter) MovConst(dst uir.Reg, v uint32) {
	switch {
	case v <= 0xFFFF:
		e.word(itype(opOri, dst, regZero, uint16(v)))
	case int32(v) < 0 && int32(v) >= -0x8000:
		e.word(itype(opAddiu, dst, regZero, uint16(v)))
	default:
		e.word(itype(opLui, dst, 0, uint16(v>>16)))
		if v&0xFFFF != 0 {
			e.word(itype(opOri, dst, dst, uint16(v)))
		}
	}
}

func (e *emitter) MovReg(dst, src uir.Reg) {
	e.word(rtype(fnAddu, dst, src, regZero))
}

func (e *emitter) Bin(op uir.Op, dst, a, b uir.Reg) {
	switch op {
	case uir.OpAdd:
		e.word(rtype(fnAddu, dst, a, b))
	case uir.OpSub:
		e.word(rtype(fnSubu, dst, a, b))
	case uir.OpMul:
		e.word(r2type(fn2Mul, dst, a, b))
	case uir.OpDivS:
		e.word(r2type(fn2Sdiv, dst, a, b))
	case uir.OpDivU:
		e.word(r2type(fn2Udiv, dst, a, b))
	case uir.OpRemS:
		e.word(r2type(fn2Srem, dst, a, b))
	case uir.OpRemU:
		e.word(r2type(fn2Urem, dst, a, b))
	case uir.OpAnd:
		e.word(rtype(fnAnd, dst, a, b))
	case uir.OpOr:
		e.word(rtype(fnOr, dst, a, b))
	case uir.OpXor:
		e.word(rtype(fnXor, dst, a, b))
	case uir.OpShl:
		e.word(rtype(fnSllv, dst, b, a)) // sllv rd, rt(value)=a, rs(count)=b
	case uir.OpShrU:
		e.word(rtype(fnSrlv, dst, b, a))
	case uir.OpShrS:
		e.word(rtype(fnSrav, dst, b, a))
	case uir.OpCmpEQ:
		e.word(rtype(fnXor, regAT, a, b))
		e.word(itype(opSltiu, dst, regAT, 1))
	case uir.OpCmpNE:
		e.word(rtype(fnXor, regAT, a, b))
		e.word(rtype(fnSltu, dst, regZero, regAT))
	case uir.OpCmpLTS:
		e.word(rtype(fnSlt, dst, a, b))
	case uir.OpCmpLTU:
		e.word(rtype(fnSltu, dst, a, b))
	case uir.OpCmpLES:
		e.word(rtype(fnSlt, regAT, b, a))
		e.word(itype(opXori, dst, regAT, 1))
	case uir.OpCmpLEU:
		e.word(rtype(fnSltu, regAT, b, a))
		e.word(itype(opXori, dst, regAT, 1))
	default:
		panic(fmt.Sprintf("mips: unsupported binary op %v", op))
	}
}

func (e *emitter) Un(op uir.Op, dst, a uir.Reg) {
	switch op {
	case uir.OpNot:
		e.word(rtype(fnNor, dst, a, regZero))
	case uir.OpNeg:
		e.word(rtype(fnSubu, dst, regZero, a))
	case uir.OpBool:
		e.word(rtype(fnSltu, dst, regZero, a))
	case uir.OpSext8:
		e.word(shift(fnSll, regAT, a, 24))
		e.word(shift(fnSra, dst, regAT, 24))
	case uir.OpSext16:
		e.word(shift(fnSll, regAT, a, 16))
		e.word(shift(fnSra, dst, regAT, 16))
	case uir.OpZext8:
		e.word(itype(opAndi, dst, a, 0xFF))
	case uir.OpZext16:
		e.word(itype(opAndi, dst, a, 0xFFFF))
	default:
		panic(fmt.Sprintf("mips: unsupported unary op %v", op))
	}
}

func (e *emitter) ShiftImm(op uir.Op, dst, a uir.Reg, k uint8) {
	switch op {
	case uir.OpShl:
		e.word(shift(fnSll, dst, a, k))
	case uir.OpShrU:
		e.word(shift(fnSrl, dst, a, k))
	case uir.OpShrS:
		e.word(shift(fnSra, dst, a, k))
	default:
		panic("mips: bad immediate shift")
	}
}

func (e *emitter) Load(dst, base uir.Reg, off int32, size uint8) {
	op := uint32(opLw)
	if size == 1 {
		op = opLbu
	}
	e.word(itype(op, dst, base, uint16(uint32(off))))
}

func (e *emitter) Store(base uir.Reg, off int32, src uir.Reg, size uint8) {
	op := uint32(opSw)
	if size == 1 {
		op = opSb
	}
	e.word(itype(op, src, base, uint16(uint32(off))))
}

func (e *emitter) AddrAdd(dst, base uir.Reg, off int32) {
	e.word(itype(opAddiu, dst, base, uint16(uint32(off))))
}

func (e *emitter) AddrGlobal(dst uir.Reg, sym string) {
	e.fixup(0, sym, fmtHiLo)
	e.word(itype(opLui, dst, 0, 0))
	e.word(itype(opOri, dst, dst, 0))
}

func (e *emitter) CallSym(sym string) {
	e.transfer(jtype(opJal, 0), nil, 0, sym, fmtJump26)
}

func (e *emitter) JumpBlock(blk int) {
	e.transfer(jtype(opJ, 0), nil, blk, "", fmtJump26)
}

func (e *emitter) branch(op uint32, rs, rt uir.Reg, blk int) {
	e.transfer(itype(op, rt, rs, 0), []uir.Reg{rs, rt}, blk, "", fmtBranch16)
}

// transfer emits a control transfer plus its delay slot. When delay-slot
// filling is on and it is safe, the instruction preceding the transfer is
// hoisted into the delay slot (MIPS executes it before the destination
// either way); otherwise the slot is a nop. Safety: the candidate must be
// inside the current block, carry no fixup, be a simple ALU/memory
// instruction, and must not write a register the branch reads — the
// condition is evaluated before the delay slot runs.
func (e *emitter) transfer(w uint32, reads []uir.Reg, blk int, sym string, format uint8) {
	if e.fillDelay {
		if cand, ok := e.hoistCandidate(reads); ok {
			e.prog.Buf = e.prog.Buf[:len(e.prog.Buf)-4]
			e.fixup(blk, sym, format)
			e.word(w)
			e.word(cand)
			return
		}
	}
	e.fixup(blk, sym, format)
	e.word(w)
	e.word(0) // delay slot: nop
}

// hoistCandidate inspects the previously emitted instruction.
func (e *emitter) hoistCandidate(branchReads []uir.Reg) (uint32, bool) {
	off := len(e.prog.Buf) - 4
	if off <= e.lastMark { // strictly inside the block
		return 0, false
	}
	for _, f := range e.prog.Fixups {
		if f.Off == off || (f.Format == fmtHiLo && f.Off+4 == off) {
			return 0, false
		}
	}
	w := uint32(e.prog.Buf[off])<<24 | uint32(e.prog.Buf[off+1])<<16 |
		uint32(e.prog.Buf[off+2])<<8 | uint32(e.prog.Buf[off+3])
	wr, ok := simpleWrite(w)
	if !ok {
		return 0, false
	}
	for _, r := range branchReads {
		if wr == r && wr != regZero {
			return 0, false
		}
	}
	return w, true
}

// simpleWrite classifies a word as a hoistable simple instruction and
// returns the register it writes ($zero for stores).
func simpleWrite(w uint32) (uir.Reg, bool) {
	if w == 0 {
		return 0, false // existing nop: nothing to gain
	}
	op := w >> 26
	rt := uir.Reg(w >> 16 & 31)
	rd := uir.Reg(w >> 11 & 31)
	switch op {
	case opAddiu, opSlti, opSltiu, opAndi, opOri, opXori, opLui, opLw, opLb, opLbu:
		return rt, true
	case opSw, opSb:
		return regZero, true // memory write only
	case opSpecial:
		if w&0x3F == fnJr {
			return 0, false
		}
		return rd, true
	case opSpecial2:
		return rd, true
	}
	return 0, false
}

func (e *emitter) CmpBranch(op uir.Op, a, b uir.Reg, trueB int) {
	switch op {
	case uir.OpCmpEQ:
		e.branch(opBeq, a, b, trueB)
	case uir.OpCmpNE:
		e.branch(opBne, a, b, trueB)
	case uir.OpCmpLTS:
		e.word(rtype(fnSlt, regAT, a, b))
		e.branch(opBne, regAT, regZero, trueB)
	case uir.OpCmpLTU:
		e.word(rtype(fnSltu, regAT, a, b))
		e.branch(opBne, regAT, regZero, trueB)
	case uir.OpCmpLES:
		e.word(rtype(fnSlt, regAT, b, a))
		e.branch(opBeq, regAT, regZero, trueB)
	case uir.OpCmpLEU:
		e.word(rtype(fnSltu, regAT, b, a))
		e.branch(opBeq, regAT, regZero, trueB)
	default:
		panic("mips: bad compare-branch op")
	}
}

func (e *emitter) CondBranch(cond uir.Reg, trueB int) {
	e.branch(opBne, cond, regZero, trueB)
}

func (e *emitter) StoreArgStack(int, uir.Reg)       { panic("mips: register-argument ABI") }
func (e *emitter) LoadArgStack(uir.Reg, int, int32) { panic("mips: register-argument ABI") }

// Patch implements isa.Patcher.
func (b *Backend) Patch(buf []byte, off int, format uint8, instAddr, target uint32) error {
	rd := func(o int) uint32 {
		return uint32(buf[o])<<24 | uint32(buf[o+1])<<16 | uint32(buf[o+2])<<8 | uint32(buf[o+3])
	}
	wr := func(o int, w uint32) {
		buf[o], buf[o+1], buf[o+2], buf[o+3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	}
	switch format {
	case fmtBranch16:
		delta := int32(target) - int32(instAddr+4)
		if delta%4 != 0 {
			return fmt.Errorf("mips: misaligned branch target %#x", target)
		}
		wordOff := delta / 4
		if wordOff < -0x8000 || wordOff > 0x7FFF {
			return fmt.Errorf("mips: branch target out of range (%d words)", wordOff)
		}
		wr(off, rd(off)|uint32(uint16(wordOff)))
	case fmtJump26:
		wr(off, rd(off)&0xFC000000|(target>>2)&0x03FFFFFF)
	case fmtHiLo:
		wr(off, rd(off)|target>>16)
		wr(off+4, rd(off+4)|target&0xFFFF)
	default:
		return fmt.Errorf("mips: unknown fixup format %d", format)
	}
	return nil
}
