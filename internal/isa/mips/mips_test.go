package mips

import (
	"testing"

	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	"firmup/internal/mir"
	"firmup/internal/uir"
)

const testSrc = `
package demo version "1.0"

var counter = 0;
var table[4] = {3, 1, 4, 1};
var msg = "hello";

func leaf_add(a, b) { return a + b; }
func mixops(a, b) {
    return ((a ^ b) & 0xFF) | (a << 3) - (b >> 1);
}
func muldiv(a, b) {
    if b == 0 { return 0; }
    return (a * b) + (a / b) + (a % b);
}
func unsigned_cmp(a, b) {
    var r = 0;
    if a < b { r = r | 1; }
    if a <= b { r = r | 2; }
    if a > b { r = r | 4; }
    if a >= b { r = r | 8; }
    if a == b { r = r | 16; }
    if a != b { r = r | 32; }
    return r;
}
func sum_to(n) {
    var s = 0;
    for var i = 0; i < n; i = i + 1 { s = s + i; }
    return s;
}
func table_sum() {
    var s = 0;
    for var i = 0; i < 4; i = i + 1 { s = s + table[i]; }
    return s;
}
func touch_global(v) {
    counter = counter + v;
    return counter;
}
func strload(i) { return msg[i]; }
func buf_fill(n) {
    var buf[8];
    var i = 0;
    while i < n {
        buf[i] = i * i;
        i = i + 1;
    }
    return buf[n - 1];
}
func negnot(x) { return -x + ~x + !x; }
func deep(a, b) {
    var x = leaf_add(a, b);
    var y = mixops(x, a);
    return muldiv(y, b + 1) + sum_to(a & 7);
}
func spill_pressure(a, b, c, d) {
    var e = a + b; var f = b + c; var g = c + d; var h = d + a;
    var i = a * 2; var j = b * 3; var k = c * 5; var l = d * 7;
    var m = e + f + g + h;
    var n = i + j + k + l;
    return m * n + e * i + f * j + g * k + h * l;
}
`

type call struct {
	fn   string
	args []uint32
}

var calls = []call{
	{"leaf_add", []uint32{3, 4}},
	{"mixops", []uint32{0x1234, 0x00FF}},
	{"muldiv", []uint32{100, 7}},
	{"muldiv", []uint32{100, 0}},
	{"muldiv", []uint32{0xFFFFFF9C, 7}}, // -100
	{"unsigned_cmp", []uint32{3, 7}},
	{"unsigned_cmp", []uint32{7, 3}},
	{"unsigned_cmp", []uint32{5, 5}},
	{"unsigned_cmp", []uint32{0xFFFFFFFF, 1}}, // signed -1 < 1
	{"sum_to", []uint32{10}},
	{"table_sum", nil},
	{"touch_global", []uint32{5}},
	{"touch_global", []uint32{7}},
	{"strload", []uint32{1}},
	{"buf_fill", []uint32{6}},
	{"negnot", []uint32{9}},
	{"deep", []uint32{5, 3}},
	{"spill_pressure", []uint32{2, 3, 4, 5}},
}

// runPair compiles testSrc under the profile, then runs every call both
// in the MIR interpreter and on generated machine code via the lifter,
// requiring identical results.
func runPair(t *testing.T, be isa.Backend, prof compiler.Profile, opt isa.Options) {
	t.Helper()
	pkg, err := compiler.CompileToMIR(testSrc, prof)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	ref := mir.NewInterp(pkg)
	ex := isa.NewExecutor(be, art)
	for _, c := range calls {
		want, err := ref.Call(c.fn, c.args...)
		if err != nil {
			t.Fatalf("mir %s%v: %v", c.fn, c.args, err)
		}
		got, err := ex.CallProc(c.fn, c.args...)
		if err != nil {
			t.Fatalf("exec %s%v: %v", c.fn, c.args, err)
		}
		if got != want {
			t.Errorf("%s%v = %#x on machine, want %#x (MIR)", c.fn, c.args, got, want)
		}
	}
}

func TestExecutionMatchesMIR(t *testing.T) {
	be := New()
	for level := 0; level <= 3; level++ {
		prof := compiler.Profile{OptLevel: level}
		opt := isa.Options{TextBase: 0x400000}
		runPair(t, be, prof, opt)
	}
}

func TestExecutionUnderToolchainVariance(t *testing.T) {
	be := New()
	variants := []isa.Options{
		{TextBase: 0x400000, RegSeed: 7, SchedSeed: 13, MulByShift: true},
		{TextBase: 0x80001000, RegSeed: 99, SchedSeed: 5, ShuffleProcs: true},
		{TextBase: 0x10000, RegSeed: 3, MulByShift: true, ShuffleProcs: true},
	}
	for i, opt := range variants {
		prof := compiler.Profile{OptLevel: 2}
		t.Logf("variant %d", i)
		runPair(t, be, prof, opt)
	}
}

// Every emitted instruction must decode back successfully.
func TestFullDisassembly(t *testing.T) {
	be := New()
	pkg, err := compiler.CompileToMIR(testSrc, compiler.Profile{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(art.Text); off += 4 {
		addr := art.TextBase + uint32(off)
		if _, err := be.Decode(art.Text, off, addr); err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
	}
}

func TestDecodeBranchTargets(t *testing.T) {
	be := New()
	// beq $t0, $t1, +8 words encoded manually.
	w := itype(opBeq, regT1, regT0, 8)
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != isa.KindCondBranch || !inst.HasDelay {
		t.Errorf("kind = %v delay=%v", inst.Kind, inst.HasDelay)
	}
	if inst.Target != 0x1000+4+8*4 {
		t.Errorf("target = %#x", inst.Target)
	}
}

func TestZeroRegisterLiftsToConstant(t *testing.T) {
	be := New()
	// addu $s0, $zero, $zero
	w := rtype(fnAddu, regS0, regZero, regZero)
	buf := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	inst, err := be.Decode(buf, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := &isa.LiftBuilder{}
	if err := be.Lift(inst, lb); err != nil {
		t.Fatal(err)
	}
	for _, s := range lb.Stmts {
		if g, ok := s.(uir.Get); ok {
			t.Errorf("lift of $zero read produced Get r%d; want constant", g.Reg)
		}
	}
}

func TestProcShuffleChangesLayoutNotBehavior(t *testing.T) {
	be := New()
	pkg, err := compiler.CompileToMIR(testSrc, compiler.Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := be.Generate(pkg, isa.Options{TextBase: 0x400000, RegSeed: 42, ShuffleProcs: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := a1.ProcSym("deep")
	s2, _ := a2.ProcSym("deep")
	if s1.Addr == s2.Addr {
		t.Log("shuffle left deep at the same address (possible but unlikely)")
	}
	ex := isa.NewExecutor(be, a2)
	got, err := ex.CallProc("deep", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := mir.NewInterp(pkg)
	want, _ := ref.Call("deep", 5, 3)
	if got != want {
		t.Errorf("shuffled deep(5,3) = %d, want %d", got, want)
	}
}

func TestDecodeRobustness(t *testing.T) { isatest.DecodeRobustness(t, New(), 1) }

// Delay-slot filling must actually fire (non-nop delay slots present) and
// preserve behavior (checked against the MIR reference).
func TestDelaySlotFilling(t *testing.T) {
	be := New()
	prof := compiler.Profile{OptLevel: 2}
	runPair(t, be, prof, isa.Options{TextBase: 0x400000, FillDelaySlots: true})

	pkg, err := compiler.CompileToMIR(testSrc, prof)
	if err != nil {
		t.Fatal(err)
	}
	countNopSlots := func(fill bool) (filled, total int) {
		art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000, FillDelaySlots: fill})
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off+4 < len(art.Text); off += 4 {
			inst, err := be.Decode(art.Text, off, art.TextBase+uint32(off))
			if err != nil || !inst.HasDelay {
				continue
			}
			total++
			dw := art.Text[off+4 : off+8]
			if dw[0]|dw[1]|dw[2]|dw[3] != 0 {
				filled++
			}
			off += 4
		}
		return
	}
	f0, t0 := countNopSlots(false)
	f1, t1 := countNopSlots(true)
	if f0 != 0 {
		t.Errorf("without filling, %d/%d delay slots non-nop", f0, t0)
	}
	if f1 == 0 {
		t.Errorf("with filling, no delay slot was filled (%d transfers)", t1)
	}
	t.Logf("filled %d of %d delay slots", f1, t1)
}
