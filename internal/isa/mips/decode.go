package mips

import (
	"fmt"

	"firmup/internal/isa"
	"firmup/internal/uir"
)

// Decode implements isa.Backend. It classifies without rendering
// assembly text; Disasm materializes the text on demand.
func (b *Backend) Decode(text []byte, off int, addr uint32) (isa.Inst, error) {
	if off+4 > len(text) {
		return isa.Inst{}, fmt.Errorf("mips: truncated instruction at %#x", addr)
	}
	w := uint32(text[off])<<24 | uint32(text[off+1])<<16 | uint32(text[off+2])<<8 | uint32(text[off+3])
	inst := isa.Inst{Addr: addr, Size: 4, Raw: uint64(w)}
	op := w >> 26
	rs := uir.Reg(w >> 21 & 31)
	imm := uint16(w)
	funct := w & 0x3F

	switch op {
	case opSpecial:
		if w == 0 {
			return inst, nil // nop
		}
		switch funct {
		case fnJr:
			inst.HasDelay = true
			if rs == regRA {
				inst.Kind = isa.KindRet
			} else {
				inst.Kind = isa.KindIndirect
			}
		case fnSll, fnSrl, fnSra,
			fnSllv, fnSrlv, fnSrav, fnAddu, fnSubu, fnAnd, fnOr, fnXor, fnNor, fnSlt, fnSltu:
		default:
			return inst, fmt.Errorf("mips: unknown SPECIAL funct %#x at %#x", funct, addr)
		}
	case opSpecial2:
		switch funct {
		case fn2Mul, fn2Sdiv, fn2Udiv, fn2Srem, fn2Urem:
		default:
			return inst, fmt.Errorf("mips: unknown SPECIAL2 funct %#x at %#x", funct, addr)
		}
	case opJ, opJal:
		inst.HasDelay = true
		inst.Target = (addr+4)&0xF0000000 | (w&0x03FFFFFF)<<2
		if op == opJal {
			inst.Kind = isa.KindCall
		} else {
			inst.Kind = isa.KindJump
		}
	case opBeq, opBne:
		inst.Kind = isa.KindCondBranch
		inst.HasDelay = true
		inst.Target = addr + 4 + uint32(int32(int16(imm))<<2)
	case opAddiu, opSlti, opSltiu, opAndi, opOri, opXori, opLui, opLw, opLb, opLbu, opSw, opSb:
	default:
		return inst, fmt.Errorf("mips: unknown opcode %#x at %#x", op, addr)
	}
	return inst, nil
}

// Disasm implements isa.Disassembler, reconstructing the assembly text
// from the raw bits off the decode hot path.
func (b *Backend) Disasm(in isa.Inst) string {
	w := uint32(in.Raw)
	op := w >> 26
	rs := uir.Reg(w >> 21 & 31)
	rt := uir.Reg(w >> 16 & 31)
	rd := uir.Reg(w >> 11 & 31)
	imm := uint16(w)
	funct := w & 0x3F

	name := func(r uir.Reg) string { return "$" + regNames[r] }
	switch op {
	case opSpecial:
		if w == 0 {
			return "nop"
		}
		switch funct {
		case fnJr:
			if rs == regRA {
				return "jr $ra"
			}
			return "jr " + name(rs)
		case fnSll, fnSrl, fnSra:
			mn := map[uint32]string{fnSll: "sll", fnSrl: "srl", fnSra: "sra"}[funct]
			return fmt.Sprintf("%s %s, %s, %d", mn, name(rd), name(rt), w>>6&31)
		case fnSllv, fnSrlv, fnSrav, fnAddu, fnSubu, fnAnd, fnOr, fnXor, fnNor, fnSlt, fnSltu:
			mn := map[uint32]string{
				fnSllv: "sllv", fnSrlv: "srlv", fnSrav: "srav", fnAddu: "addu",
				fnSubu: "subu", fnAnd: "and", fnOr: "or", fnXor: "xor",
				fnNor: "nor", fnSlt: "slt", fnSltu: "sltu",
			}[funct]
			return fmt.Sprintf("%s %s, %s, %s", mn, name(rd), name(rs), name(rt))
		}
	case opSpecial2:
		if mn, ok := map[uint32]string{fn2Mul: "mul", fn2Sdiv: "sdiv", fn2Udiv: "udiv", fn2Srem: "srem", fn2Urem: "urem"}[funct]; ok {
			return fmt.Sprintf("%s %s, %s, %s", mn, name(rd), name(rs), name(rt))
		}
	case opJ, opJal:
		if op == opJal {
			return fmt.Sprintf("jal 0x%x", in.Target)
		}
		return fmt.Sprintf("j 0x%x", in.Target)
	case opBeq, opBne:
		mn := "beq"
		if op == opBne {
			mn = "bne"
		}
		return fmt.Sprintf("%s %s, %s, 0x%x", mn, name(rs), name(rt), in.Target)
	case opAddiu, opSlti, opSltiu, opAndi, opOri, opXori:
		mn := map[uint32]string{opAddiu: "addiu", opSlti: "slti", opSltiu: "sltiu", opAndi: "andi", opOri: "ori", opXori: "xori"}[op]
		return fmt.Sprintf("%s %s, %s, 0x%x", mn, name(rt), name(rs), imm)
	case opLui:
		return fmt.Sprintf("lui %s, 0x%x", name(rt), imm)
	case opLw, opLb, opLbu, opSw, opSb:
		mn := map[uint32]string{opLw: "lw", opLb: "lb", opLbu: "lbu", opSw: "sw", opSb: "sb"}[op]
		return fmt.Sprintf("%s %s, %d(%s)", mn, name(rt), int16(imm), name(rs))
	}
	return fmt.Sprintf(".word %#x", w)
}

// Lift implements isa.Backend. $zero reads lift to the constant 0 and
// $zero writes are dropped, so slicing never treats the hard-wired zero
// as a procedure input.
func (b *Backend) Lift(inst isa.Inst, lb *isa.LiftBuilder) error {
	w := uint32(inst.Raw)
	op := w >> 26
	rs := uir.Reg(w >> 21 & 31)
	rt := uir.Reg(w >> 16 & 31)
	rd := uir.Reg(w >> 11 & 31)
	sh := uint8(w >> 6 & 31)
	imm := uint16(w)
	funct := w & 0x3F
	sx := uint32(int32(int16(imm)))
	zx := uint32(imm)

	get := func(r uir.Reg) uir.Operand {
		if r == regZero {
			return uir.C(0)
		}
		return uir.T(lb.GetReg(r))
	}
	put := func(r uir.Reg, v uir.Operand) {
		if r != regZero {
			lb.PutReg(r, v)
		}
	}
	bin := func(op2 uir.Op, dst uir.Reg, a, bb uir.Operand) {
		put(dst, uir.T(lb.Bin(op2, a, bb)))
	}

	switch op {
	case opSpecial:
		if w == 0 {
			return nil // nop
		}
		switch funct {
		case fnJr:
			if rs == regRA {
				lb.Emit(uir.Exit{Kind: uir.ExitRet})
			} else {
				lb.Emit(uir.Exit{Kind: uir.ExitIndir, Target: get(rs)})
			}
		case fnSll:
			bin(uir.OpShl, rd, get(rt), uir.C(uint32(sh)))
		case fnSrl:
			bin(uir.OpShrU, rd, get(rt), uir.C(uint32(sh)))
		case fnSra:
			bin(uir.OpShrS, rd, get(rt), uir.C(uint32(sh)))
		case fnSllv:
			bin(uir.OpShl, rd, get(rt), get(rs))
		case fnSrlv:
			bin(uir.OpShrU, rd, get(rt), get(rs))
		case fnSrav:
			bin(uir.OpShrS, rd, get(rt), get(rs))
		case fnAddu:
			bin(uir.OpAdd, rd, get(rs), get(rt))
		case fnSubu:
			bin(uir.OpSub, rd, get(rs), get(rt))
		case fnAnd:
			bin(uir.OpAnd, rd, get(rs), get(rt))
		case fnOr:
			bin(uir.OpOr, rd, get(rs), get(rt))
		case fnXor:
			bin(uir.OpXor, rd, get(rs), get(rt))
		case fnNor:
			t := lb.Bin(uir.OpOr, get(rs), get(rt))
			put(rd, uir.T(lb.Un(uir.OpNot, uir.T(t))))
		case fnSlt:
			bin(uir.OpCmpLTS, rd, get(rs), get(rt))
		case fnSltu:
			bin(uir.OpCmpLTU, rd, get(rs), get(rt))
		default:
			return fmt.Errorf("mips: cannot lift SPECIAL funct %#x", funct)
		}
	case opSpecial2:
		ops := map[uint32]uir.Op{fn2Mul: uir.OpMul, fn2Sdiv: uir.OpDivS, fn2Udiv: uir.OpDivU, fn2Srem: uir.OpRemS, fn2Urem: uir.OpRemU}
		o, ok := ops[funct]
		if !ok {
			return fmt.Errorf("mips: cannot lift SPECIAL2 funct %#x", funct)
		}
		bin(o, rd, get(rs), get(rt))
	case opJ:
		lb.Emit(uir.Exit{Kind: uir.ExitJump, Target: uir.CK(inst.Target, uir.ConstCode)})
	case opJal:
		lb.Emit(uir.Call{Target: uir.CK(inst.Target, uir.ConstCode)})
	case opBeq, opBne:
		cmpOp := uir.OpCmpEQ
		if op == opBne {
			cmpOp = uir.OpCmpNE
		}
		t := lb.Bin(cmpOp, get(rs), get(rt))
		lb.Emit(uir.Exit{Kind: uir.ExitCond, Cond: uir.T(t), Target: uir.CK(inst.Target, uir.ConstCode)})
	case opAddiu:
		bin(uir.OpAdd, rt, get(rs), uir.C(sx))
	case opSlti:
		bin(uir.OpCmpLTS, rt, get(rs), uir.C(sx))
	case opSltiu:
		bin(uir.OpCmpLTU, rt, get(rs), uir.C(sx))
	case opAndi:
		bin(uir.OpAnd, rt, get(rs), uir.C(zx))
	case opOri:
		bin(uir.OpOr, rt, get(rs), uir.C(zx))
	case opXori:
		bin(uir.OpXor, rt, get(rs), uir.C(zx))
	case opLui:
		put(rt, uir.C(uint32(imm)<<16))
	case opLw, opLbu, opLb:
		addr := lb.Bin(uir.OpAdd, get(rs), uir.C(sx))
		size := uint8(4)
		if op != opLw {
			size = 1
		}
		t := lb.NewTemp()
		lb.Emit(uir.Load{Dst: t, Addr: uir.T(addr), Size: size})
		if op == opLb {
			put(rt, uir.T(lb.Un(uir.OpSext8, uir.T(t))))
		} else {
			put(rt, uir.T(t))
		}
	case opSw, opSb:
		addr := lb.Bin(uir.OpAdd, get(rs), uir.C(sx))
		size := uint8(4)
		if op == opSb {
			size = 1
		}
		lb.Emit(uir.Store{Addr: uir.T(addr), Src: get(rt), Size: size})
	default:
		return fmt.Errorf("mips: cannot lift opcode %#x", op)
	}
	return nil
}
