package isa

import (
	"fmt"

	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Desc describes the register model a backend exposes to the shared
// code-generation driver.
type Desc struct {
	Arch uir.Arch
	ABI  *uir.ABI
	// Alloc lists registers available for virtual-register assignment.
	// By driver convention they are callee-saved: the prologue saves the
	// used subset.
	Alloc []uir.Reg
	// Scratch are two registers reserved for spill reloads and address
	// arithmetic; never allocated.
	Scratch [2]uir.Reg
	// BigEndian selects instruction-word byte order (memory data is
	// little-endian on every target; see package doc).
	BigEndian bool
}

// RegSave pairs a callee-saved register with its frame offset.
type RegSave struct {
	Reg uir.Reg
	Off int32
}

// Frame describes the stack frame the emitter's prologue/epilogue must
// realize. The stack grows down; offsets are from the post-adjustment SP.
type Frame struct {
	Size     int32
	Saves    []RegSave
	SaveLink bool
	LinkOff  int32
}

// Emitter is the per-backend instruction selector. The driver calls it
// with physical registers only; all spill traffic is made explicit by the
// driver through Load/Store against SP.
type Emitter interface {
	MarkBlock(id int)
	Prologue(f Frame)
	// Epilogue restores saved state, unwinds the frame and returns.
	Epilogue(f Frame)
	MovConst(dst uir.Reg, v uint32)
	MovReg(dst, src uir.Reg)
	Bin(op uir.Op, dst, a, b uir.Reg)
	Un(op uir.Op, dst, a uir.Reg)
	ShiftImm(op uir.Op, dst, a uir.Reg, k uint8)
	Load(dst, base uir.Reg, off int32, size uint8)
	Store(base uir.Reg, off int32, src uir.Reg, size uint8)
	// AddrAdd computes dst = base + off (frame addresses).
	AddrAdd(dst, base uir.Reg, off int32)
	// AddrGlobal materializes the (fixed-up later) address of sym.
	AddrGlobal(dst uir.Reg, sym string)
	CallSym(sym string)
	JumpBlock(b int)
	// CmpBranch branches to trueB when `a op b` holds.
	CmpBranch(op uir.Op, a, b uir.Reg, trueB int)
	// CondBranch branches to trueB when cond != 0.
	CondBranch(cond uir.Reg, trueB int)
	// StoreArgStack places outgoing argument i below SP (stack-args
	// ABIs); register-args ABIs never receive this call.
	StoreArgStack(i int, src uir.Reg)
	// LoadArgStack loads incoming argument i (stack-args ABIs).
	LoadArgStack(dst uir.Reg, i int, frameSize int32)
}

// Prog accumulates encoded bytes plus the fixups to resolve.
type Prog struct {
	Buf      []byte
	BlockOff map[int]int
	Fixups   []Fixup
}

// Fixup kinds: block-relative (resolved per procedure) or symbol
// (resolved at link).
type Fixup struct {
	Off    int    // offset of the instruction needing the patch
	Block  int    // target block when Sym is empty
	Sym    string // call or global symbol otherwise
	Format uint8  // backend-specific patch format
}

// Patcher rewrites a placeholder encoding once the target address is
// known. instAddr is the address of the instruction at Off.
type Patcher interface {
	Patch(buf []byte, off int, format uint8, instAddr, target uint32) error
}

// epilogueBlock is the pseudo block id used for return jumps.
const epilogueBlock = -1

// maxRegParams bounds procedure arity for register-argument ABIs.
const maxRegParams = 4

// GenerateWith is the shared code-generation driver: backends implement
// Backend.Generate by supplying their Desc and an emitter constructor.
func GenerateWith(pkg *mir.Package, d *Desc, newEmitter func(*Prog) Emitter, patch Patcher, opt Options) (*Artifact, error) {
	art := &Artifact{Arch: d.Arch, TextBase: opt.TextBase}
	text := &Prog{BlockOff: map[int]int{}}
	em := newEmitter(text)

	order := make([]int, len(pkg.Procs))
	for i := range order {
		order[i] = i
	}
	if opt.ShuffleProcs {
		order = shuffleOrder(len(pkg.Procs), opt.RegSeed^0xA5A5)
	}

	var symFixups []Fixup
	for _, pi := range order {
		p := pkg.Procs[pi]
		start := len(text.Buf)
		text.BlockOff = map[int]int{}
		text.Fixups = text.Fixups[:0]
		if err := genProc(p, d, em, text, opt); err != nil {
			return nil, fmt.Errorf("isa: %s: %w", p.Name, err)
		}
		// Resolve block fixups now; keep symbol fixups for the link pass.
		for _, f := range text.Fixups {
			if f.Sym != "" {
				symFixups = append(symFixups, f)
				continue
			}
			toff, ok := text.BlockOff[f.Block]
			if !ok {
				return nil, fmt.Errorf("isa: %s: fixup to unemitted block %d", p.Name, f.Block)
			}
			instAddr := opt.TextBase + uint32(f.Off)
			target := opt.TextBase + uint32(toff)
			if err := patch.Patch(text.Buf, f.Off, f.Format, instAddr, target); err != nil {
				return nil, fmt.Errorf("isa: %s: %w", p.Name, err)
			}
		}
		art.Procs = append(art.Procs, Sym{Name: p.Name, Addr: opt.TextBase + uint32(start), Size: uint32(len(text.Buf) - start)})
	}

	// Lay out data after text on a page boundary.
	art.Text = text.Buf
	art.DataBase = (opt.TextBase + uint32(len(art.Text)) + 0xFFF) &^ 0xFFF
	addr := art.DataBase
	for _, g := range pkg.Globals {
		art.Globals = append(art.Globals, Sym{Name: g.Name, Addr: addr, Size: uint32(len(g.Data))})
		art.Data = append(art.Data, g.Data...)
		addr += uint32(len(g.Data))
		if pad := (4 - addr%4) % 4; pad != 0 {
			art.Data = append(art.Data, make([]byte, pad)...)
			addr += pad
		}
	}

	// Link: resolve calls and global references.
	for _, f := range symFixups {
		var target uint32
		if s, ok := art.ProcSym(f.Sym); ok {
			target = s.Addr
		} else if s, ok := art.GlobalSym(f.Sym); ok {
			target = s.Addr
		} else {
			return nil, fmt.Errorf("isa: unresolved symbol %q", f.Sym)
		}
		instAddr := opt.TextBase + uint32(f.Off)
		if err := patch.Patch(art.Text, f.Off, f.Format, instAddr, target); err != nil {
			return nil, err
		}
	}
	sortSyms(art.Procs)
	sortSyms(art.Globals)
	return art, nil
}

// assignment maps each vreg to a physical register or a spill slot.
type assignment struct {
	reg      map[mir.VReg]uir.Reg
	spill    map[mir.VReg]int32 // frame offset
	spillIdx []mir.VReg         // spilled vregs in allocation order
	slotOff  []int32            // MIR stack-array slot offsets
}

func (a *assignment) loc(v mir.VReg) (uir.Reg, bool) {
	r, ok := a.reg[v]
	return r, ok
}

// genProc emits one procedure.
func genProc(p *mir.Proc, d *Desc, em Emitter, prog *Prog, opt Options) error {
	abi := d.ABI
	regArgs := len(abi.ArgRegs) > 0
	if regArgs && p.NParams > maxRegParams {
		return fmt.Errorf("%d parameters exceed the %d register-argument limit", p.NParams, maxRegParams)
	}
	asn, spillCount := allocateRegs(p, permuteRegs(d.Alloc, opt.RegSeed))

	// Frame layout (offsets from post-adjust SP, stack grows down):
	//   [0, 4*spillCount)           spill slots
	//   [slotBase, slotBase+slots)  MIR stack arrays
	//   [saveBase, ...)             callee-saved registers + link
	spillBase := int32(0)
	slotBase := spillBase + 4*int32(spillCount)
	slotOff := make([]int32, len(p.Slots))
	off := slotBase
	for i, s := range p.Slots {
		slotOff[i] = off
		off += int32((s.Size + 3) &^ 3)
	}
	usedRegs := usedAllocRegs(p, asn, d.Alloc)
	var saves []RegSave
	for _, r := range usedRegs {
		saves = append(saves, RegSave{Reg: r, Off: off})
		off += 4
	}
	hasCall := procHasCall(p)
	saveLink := hasCall && abi.LinkReg != uir.NoLinkReg
	linkOff := off
	if saveLink {
		off += 4
	}
	// Stack-argument ABIs pass arguments in the red zone below the
	// caller's SP — memory that becomes the top of this frame once the
	// prologue adjusts SP. Reserve it so saves and spills don't collide
	// with the incoming arguments.
	if !regArgs && off > 0 {
		off += 4 * maxRegParams
	}
	frame := Frame{Size: (off + 7) &^ 7, Saves: saves, SaveLink: saveLink, LinkOff: linkOff}
	for i := range asn.spillIdx {
		asn.spill[asn.spillIdx[i]] = spillBase + 4*int32(i)
	}
	asn.slotOff = slotOff

	em.Prologue(frame)

	s0, s1 := d.Scratch[0], d.Scratch[1]
	// Home incoming parameters.
	for i := 0; i < p.NParams; i++ {
		v := mir.VReg(i)
		var src uir.Reg
		if regArgs {
			src = abi.ArgRegs[i]
		} else {
			em.LoadArgStack(s0, i, frame.Size)
			src = s0
		}
		if r, ok := asn.loc(v); ok {
			em.MovReg(r, src)
		} else if offv, ok := asn.spill[v]; ok {
			em.Store(abi.SP, offv, src, 4)
		}
		// A parameter that is neither assigned nor spilled is dead.
	}

	// use returns the physical register holding v, loading spills into
	// the given scratch.
	use := func(v mir.VReg, scratch uir.Reg) uir.Reg {
		if r, ok := asn.loc(v); ok {
			return r
		}
		em.Load(scratch, abi.SP, asn.spill[v], 4)
		return scratch
	}
	// def returns the register to compute v into plus a flush func.
	def := func(v mir.VReg) (uir.Reg, func()) {
		if r, ok := asn.loc(v); ok {
			return r, func() {}
		}
		offv := asn.spill[v]
		return s0, func() { em.Store(abi.SP, offv, s0, 4) }
	}

	useCount := countUses(p)

	for _, b := range p.Blocks {
		em.MarkBlock(b.ID)
		instrs := schedule(b, opt.SchedSeed+uint64(b.ID))
		// Identify a fusable trailing compare for the terminator.
		fuseIdx := -1
		if b.Term.Kind == mir.TBranch && len(instrs) > 0 {
			last := instrs[len(instrs)-1]
			if last.Kind == mir.KBin && last.Op.IsCompare() && last.Dst == b.Term.Cond && useCount[last.Dst] == 1 {
				fuseIdx = len(instrs) - 1
			}
		}
		consts := map[mir.VReg]uint32{}
		for i, in := range instrs {
			if i == fuseIdx {
				break
			}
			if err := genInstr(in, d, em, asn, use, def, consts, opt); err != nil {
				return err
			}
		}
		// Terminator.
		nextID := b.ID + 1
		switch b.Term.Kind {
		case mir.TRet:
			if b.Term.RetVal != mir.NoReg {
				r := use(b.Term.RetVal, s0)
				if r != abi.RetReg {
					em.MovReg(abi.RetReg, r)
				}
			}
			em.JumpBlock(epilogueBlock)
		case mir.TJump:
			if b.Term.True != nextID {
				em.JumpBlock(b.Term.True)
			}
		case mir.TBranch:
			if fuseIdx >= 0 {
				cmp := instrs[fuseIdx]
				ra := use(cmp.A, s0)
				rb := use(cmp.B, s1)
				em.CmpBranch(cmp.Op, ra, rb, b.Term.True)
			} else {
				rc := use(b.Term.Cond, s0)
				em.CondBranch(rc, b.Term.True)
			}
			if b.Term.False != nextID {
				em.JumpBlock(b.Term.False)
			}
		}
	}
	em.MarkBlock(epilogueBlock)
	em.Epilogue(frame)
	return nil
}

// genInstr emits one non-terminator MIR instruction.
func genInstr(in mir.Instr, d *Desc, em Emitter, asn *assignment,
	use func(mir.VReg, uir.Reg) uir.Reg, def func(mir.VReg) (uir.Reg, func()),
	consts map[mir.VReg]uint32, opt Options) error {
	abi := d.ABI
	s0, s1 := d.Scratch[0], d.Scratch[1]
	killConst := func(v mir.VReg) { delete(consts, v) }
	switch in.Kind {
	case mir.KMovConst:
		r, flush := def(in.Dst)
		em.MovConst(r, in.Const)
		flush()
		consts[in.Dst] = in.Const
		return nil
	case mir.KMovReg:
		a := use(in.A, s1)
		r, flush := def(in.Dst)
		if r != a {
			em.MovReg(r, a)
		}
		flush()
		if c, ok := consts[in.A]; ok {
			consts[in.Dst] = c
		} else {
			killConst(in.Dst)
		}
		return nil
	case mir.KBin:
		// Strength-reduction idiom: mul by 2^k as a shift.
		if opt.MulByShift && in.Op == uir.OpMul {
			if c, ok := consts[in.B]; ok && c != 0 && c&(c-1) == 0 {
				k := uint8(0)
				for v := c; v > 1; v >>= 1 {
					k++
				}
				a := use(in.A, s0)
				r, flush := def(in.Dst)
				em.ShiftImm(uir.OpShl, r, a, k)
				flush()
				killConst(in.Dst)
				return nil
			}
		}
		a := use(in.A, s0)
		bb := use(in.B, s1)
		r, flush := def(in.Dst)
		em.Bin(in.Op, r, a, bb)
		flush()
		killConst(in.Dst)
		return nil
	case mir.KUn:
		a := use(in.A, s0)
		r, flush := def(in.Dst)
		em.Un(in.Op, r, a)
		flush()
		killConst(in.Dst)
		return nil
	case mir.KAddrGlobal:
		r, flush := def(in.Dst)
		em.AddrGlobal(r, in.Sym)
		flush()
		killConst(in.Dst)
		return nil
	case mir.KAddrStack:
		r, flush := def(in.Dst)
		em.AddrAdd(r, abi.SP, slotOffsetFor(in.Const, asn))
		flush()
		killConst(in.Dst)
		return nil
	case mir.KLoad:
		a := use(in.A, s0)
		r, flush := def(in.Dst)
		em.Load(r, a, 0, in.Size)
		flush()
		killConst(in.Dst)
		return nil
	case mir.KStore:
		a := use(in.A, s0)
		v := use(in.B, s1)
		em.Store(a, 0, v, in.Size)
		return nil
	case mir.KCall:
		if len(abi.ArgRegs) > 0 {
			for i, av := range in.Args {
				r := use(av, s0)
				if r != abi.ArgRegs[i] {
					em.MovReg(abi.ArgRegs[i], r)
				}
			}
		} else {
			for i, av := range in.Args {
				r := use(av, s0)
				em.StoreArgStack(i, r)
			}
		}
		em.CallSym(in.Sym)
		if in.Dst != mir.NoReg {
			if r, ok := asn.loc(in.Dst); ok {
				em.MovReg(r, abi.RetReg)
			} else if off, ok := asn.spill[in.Dst]; ok {
				em.Store(abi.SP, off, abi.RetReg, 4)
			}
			killConst(in.Dst)
		}
		return nil
	}
	return fmt.Errorf("unknown MIR instruction kind %d", in.Kind)
}

// slotOffsets is recomputed here exactly as genProc laid them out; the
// duplication is avoided by storing offsets on the assignment.
func slotOffsetFor(slot uint32, asn *assignment) int32 { return asn.slotOff[slot] }
