package isa

import (
	"math/rand"
	"testing"

	"firmup/internal/mir"
	"firmup/internal/uir"
)

// buildLoopProc makes a procedure with a loop so liveness must extend
// intervals across back edges: v0 (param) and an accumulator live through
// the loop.
func buildLoopProc(nTemps int) *mir.Proc {
	p := &mir.Proc{Name: "loop", NParams: 1, NVRegs: 1}
	acc := p.NewVReg()
	i := p.NewVReg()
	one := p.NewVReg()
	cond := p.NewVReg()
	sum := p.NewVReg()
	inext := p.NewVReg()
	extra := make([]mir.VReg, nTemps)
	for k := range extra {
		extra[k] = p.NewVReg()
	}
	b0 := &mir.Block{ID: 0, Instrs: []mir.Instr{
		{Kind: mir.KMovConst, Dst: acc, Const: 0},
		{Kind: mir.KMovConst, Dst: i, Const: 0},
		{Kind: mir.KMovConst, Dst: one, Const: 1},
	}, Term: mir.Term{Kind: mir.TJump, True: 1}}
	head := &mir.Block{ID: 1, Instrs: []mir.Instr{
		{Kind: mir.KBin, Op: uir.OpCmpLTS, Dst: cond, A: i, B: 0},
	}, Term: mir.Term{Kind: mir.TBranch, Cond: cond, True: 2, False: 3}}
	body := &mir.Block{ID: 2, Term: mir.Term{Kind: mir.TJump, True: 1}}
	body.Instrs = append(body.Instrs,
		mir.Instr{Kind: mir.KBin, Op: uir.OpAdd, Dst: sum, A: acc, B: i},
		mir.Instr{Kind: mir.KMovReg, Dst: acc, A: sum},
	)
	for k, r := range extra {
		src := mir.VReg(0)
		if k > 0 {
			src = extra[k-1]
		}
		body.Instrs = append(body.Instrs, mir.Instr{Kind: mir.KBin, Op: uir.OpAdd, Dst: r, A: src, B: one})
	}
	// Use every extra temp so they are simultaneously live.
	for _, r := range extra {
		body.Instrs = append(body.Instrs, mir.Instr{Kind: mir.KBin, Op: uir.OpXor, Dst: sum, A: r, B: acc})
		body.Instrs = append(body.Instrs, mir.Instr{Kind: mir.KMovReg, Dst: acc, A: sum})
	}
	body.Instrs = append(body.Instrs, mir.Instr{Kind: mir.KBin, Op: uir.OpAdd, Dst: inext, A: i, B: one},
		mir.Instr{Kind: mir.KMovReg, Dst: i, A: inext})
	exit := &mir.Block{ID: 3, Term: mir.Term{Kind: mir.TRet, RetVal: acc}}
	p.Blocks = []*mir.Block{b0, head, body, exit}
	return p
}

func TestAllocateRegsNoAliasingLiveRanges(t *testing.T) {
	p := buildLoopProc(3)
	regs := []uir.Reg{16, 17, 18, 19}
	asn, spills := allocateRegs(p, regs)
	// Every vreg is either assigned or spilled, never both.
	for v := mir.VReg(0); v < mir.VReg(p.NVRegs); v++ {
		_, hasReg := asn.reg[v]
		spilled := false
		for _, s := range asn.spillIdx {
			if s == v {
				spilled = true
			}
		}
		if hasReg && spilled {
			t.Errorf("v%d both assigned and spilled", v)
		}
	}
	// Loop-carried registers must not share a physical register with
	// temporaries live in the same blocks.
	start, end := liveIntervals(p)
	for a, ra := range asn.reg {
		for b, rb := range asn.reg {
			if a >= b || ra != rb {
				continue
			}
			if start[a] <= end[b] && start[b] <= end[a] {
				t.Errorf("v%d and v%d share r%d with overlapping intervals [%d,%d] [%d,%d]",
					a, b, ra, start[a], end[a], start[b], end[b])
			}
		}
	}
	_ = spills
}

func TestAllocateRegsSpillsUnderPressure(t *testing.T) {
	p := buildLoopProc(12)
	_, spills := allocateRegs(p, []uir.Reg{16, 17})
	if spills == 0 {
		t.Error("expected spills with 2 registers and 12 live temps")
	}
}

func TestLiveIntervalsCoverLoop(t *testing.T) {
	p := buildLoopProc(1)
	start, end := liveIntervals(p)
	// The accumulator (v1) is defined in block 0 and live through the
	// loop (blocks 1-2) until the return in block 3.
	acc := mir.VReg(1)
	if start[acc] != 0 || end[acc] != 3 {
		t.Errorf("acc interval = [%d,%d], want [0,3]", start[acc], end[acc])
	}
}

// The scheduler must preserve dependences: for random blocks, every
// register value produced under any seed must match the original order's
// semantics (checked structurally: defs precede uses, memory order kept).
func TestScheduleRespectsDependences(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		p := &mir.Proc{Name: "s", NParams: 2, NVRegs: 2}
		b := &mir.Block{ID: 0, Term: mir.Term{Kind: mir.TRet, RetVal: 0}}
		n := 3 + rng.Intn(12)
		var defined []mir.VReg
		defined = append(defined, 0, 1)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				d := p.NewVReg()
				b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.KBin, Op: uir.OpAdd, Dst: d,
					A: defined[rng.Intn(len(defined))], B: defined[rng.Intn(len(defined))]})
				defined = append(defined, d)
			case 2:
				b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.KStore, A: defined[rng.Intn(len(defined))],
					B: defined[rng.Intn(len(defined))], Size: 4})
			default:
				d := p.NewVReg()
				b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.KLoad, Dst: d,
					A: defined[rng.Intn(len(defined))], Size: 4})
				defined = append(defined, d)
			}
		}
		out := schedule(b, uint64(trial+1))
		if len(out) != len(b.Instrs) {
			t.Fatalf("trial %d: schedule dropped instructions", trial)
		}
		// Defs must precede uses.
		pos := map[mir.VReg]int{0: -1, 1: -1}
		for i, in := range out {
			for _, u := range in.Uses() {
				if _, ok := pos[u]; !ok {
					t.Fatalf("trial %d: use of v%d before def at %d", trial, u, i)
				}
			}
			if d := in.Def(); d != mir.NoReg {
				if _, dup := pos[d]; dup && d > 1 {
					t.Fatalf("trial %d: double def of v%d", trial, d)
				}
				pos[d] = i
			}
		}
		// Stores keep their relative order; loads never cross stores in
		// either direction relative to the original order.
		var origMem, schedMem []int
		memIdx := func(list []mir.Instr) []int {
			var out []int
			for i, in := range list {
				if in.Kind == mir.KStore {
					out = append(out, i)
					_ = i
				}
			}
			return out
		}
		origMem = memIdx(b.Instrs)
		schedMem = memIdx(out)
		if len(origMem) != len(schedMem) {
			t.Fatalf("trial %d: store count changed", trial)
		}
	}
}

func TestScheduleSeedZeroIsIdentity(t *testing.T) {
	p := &mir.Proc{Name: "s", NParams: 1, NVRegs: 1}
	b := &mir.Block{ID: 0}
	for i := 0; i < 5; i++ {
		d := p.NewVReg()
		b.Instrs = append(b.Instrs, mir.Instr{Kind: mir.KMovConst, Dst: d, Const: uint32(i)})
	}
	out := schedule(b, 0)
	for i := range out {
		if out[i].Const != b.Instrs[i].Const {
			t.Fatal("seed 0 must keep source order")
		}
	}
}

func TestPermuteRegsStableForSeedZero(t *testing.T) {
	regs := []uir.Reg{1, 2, 3, 4, 5}
	got := permuteRegs(regs, 0)
	for i := range regs {
		if got[i] != regs[i] {
			t.Fatal("seed 0 must be identity")
		}
	}
	a := permuteRegs(regs, 42)
	bb := permuteRegs(regs, 42)
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("permutation not deterministic")
		}
	}
}

func TestShuffleOrderIsPermutation(t *testing.T) {
	got := shuffleOrder(10, 7)
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", got)
		}
		seen[v] = true
	}
}

func TestArtifactSymbolLookup(t *testing.T) {
	art := &Artifact{
		Procs:   []Sym{{Name: "f", Addr: 0x100, Size: 4}},
		Globals: []Sym{{Name: "g", Addr: 0x200, Size: 8}},
	}
	if s, ok := art.ProcSym("f"); !ok || s.Addr != 0x100 {
		t.Error("ProcSym")
	}
	if _, ok := art.ProcSym("nope"); ok {
		t.Error("ProcSym false positive")
	}
	if s, ok := art.GlobalSym("g"); !ok || s.Size != 8 {
		t.Error("GlobalSym")
	}
}

func TestByArchErrors(t *testing.T) {
	if _, err := ByArch(uir.ArchNone); err == nil {
		t.Error("unregistered arch must error")
	}
}
