// Package image implements the firmware image container and its
// unpacker. An image bundles the executables of one device firmware with
// vendor metadata, optionally zlib-compressed; the Carve function plays
// the role of binwalk, recovering embedded executables from raw bytes
// even when the image header is damaged or the container format is
// unknown.
package image

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"

	"firmup/internal/obj"
)

// Magic values for the two on-disk layouts.
var (
	MagicRaw  = [4]byte{'F', 'W', 'I', 'M'}
	MagicZlib = [4]byte{'F', 'W', 'Z', '1'}
)

// FileEntry is one file inside an image.
type FileEntry struct {
	Path string
	Data []byte
}

// Image is one device firmware image.
type Image struct {
	Vendor  string
	Device  string
	Version string
	Files   []FileEntry
}

// AddExecutable serializes an FWELF file into the image under path.
func (im *Image) AddExecutable(path string, f *obj.File) {
	im.Files = append(im.Files, FileEntry{Path: path, Data: f.Bytes()})
}

// Executables parses every file entry that is a loadable FWELF, returning
// path/file pairs; non-executable content (configs etc.) is skipped, as
// are entries that fail to parse.
func (im *Image) Executables() []ParsedExe {
	return im.ExecutablesWith(nil)
}

// ExecutablesWith is Executables recording parse metrics into tel. The
// parsed output is identical.
func (im *Image) ExecutablesWith(tel *obj.Telemetry) []ParsedExe {
	var out []ParsedExe
	for _, fe := range im.Files {
		f, err := obj.ReadWith(fe.Data, tel)
		if err != nil {
			continue
		}
		out = append(out, ParsedExe{Path: fe.Path, File: f})
	}
	return out
}

// ParsedExe pairs an in-image path with its parsed executable.
type ParsedExe struct {
	Path string
	File *obj.File
}

// Pack serializes the image; when compress is set, the payload is
// deflated and wrapped in the FWZ1 layout.
func (im *Image) Pack(compress bool) []byte {
	var payload bytes.Buffer
	le := binary.LittleEndian
	var tmp [4]byte
	w32 := func(w io.Writer, v uint32) { le.PutUint32(tmp[:], v); w.Write(tmp[:]) }
	wstr := func(w io.Writer, s string) { w32(w, uint32(len(s))); io.WriteString(w, s) }
	wstr(&payload, im.Vendor)
	wstr(&payload, im.Device)
	wstr(&payload, im.Version)
	w32(&payload, uint32(len(im.Files)))
	for _, f := range im.Files {
		wstr(&payload, f.Path)
		w32(&payload, uint32(len(f.Data)))
		payload.Write(f.Data)
	}
	var out bytes.Buffer
	if compress {
		out.Write(MagicZlib[:])
		zw := zlib.NewWriter(&out)
		zw.Write(payload.Bytes())
		zw.Close()
		return out.Bytes()
	}
	out.Write(MagicRaw[:])
	out.Write(payload.Bytes())
	return out.Bytes()
}

// Unpack parses a packed image of either layout.
func Unpack(data []byte) (*Image, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("image: too short")
	}
	var magic [4]byte
	copy(magic[:], data)
	payload := data[4:]
	switch magic {
	case MagicZlib:
		zr, err := zlib.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("image: bad zlib payload: %w", err)
		}
		defer zr.Close()
		raw, err := io.ReadAll(io.LimitReader(zr, 1<<30))
		if err != nil {
			return nil, fmt.Errorf("image: decompress: %w", err)
		}
		payload = raw
	case MagicRaw:
	default:
		return nil, fmt.Errorf("image: unknown magic %q", magic[:])
	}
	r := bytes.NewReader(payload)
	le := binary.LittleEndian
	var tmp [4]byte
	r32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, err
		}
		return le.Uint32(tmp[:]), nil
	}
	rstr := func() (string, error) {
		n, err := r32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("image: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	im := &Image{}
	var err error
	if im.Vendor, err = rstr(); err != nil {
		return nil, fmt.Errorf("image: truncated header: %w", err)
	}
	if im.Device, err = rstr(); err != nil {
		return nil, err
	}
	if im.Version, err = rstr(); err != nil {
		return nil, err
	}
	nfiles, err := r32()
	if err != nil {
		return nil, err
	}
	if nfiles > 1<<16 {
		return nil, fmt.Errorf("image: implausible file count %d", nfiles)
	}
	for i := uint32(0); i < nfiles; i++ {
		path, err := rstr()
		if err != nil {
			return nil, fmt.Errorf("image: truncated file table: %w", err)
		}
		n, err := r32()
		if err != nil {
			return nil, err
		}
		if int64(n) > int64(r.Len()) {
			return nil, fmt.Errorf("image: file %q size %d overruns image", path, n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		im.Files = append(im.Files, FileEntry{Path: path, Data: data})
	}
	return im, nil
}

// Carve scans raw bytes for embedded FWELF executables, binwalk-style:
// it finds every occurrence of the FWELF magic and attempts a parse
// there, keeping the ones that decode. It is the fallback path when an
// image fails to unpack structurally (the paper reports that a large
// fraction of crawled images had damaged or opaque containers).
func Carve(data []byte) []*obj.File {
	return CarveWith(data, nil)
}

// CarveWith is Carve recording parse metrics into tel. The carved
// output is identical.
func CarveWith(data []byte, tel *obj.Telemetry) []*obj.File {
	var out []*obj.File
	for off := 0; off+4 <= len(data); {
		idx := bytes.Index(data[off:], obj.Magic[:])
		if idx < 0 {
			break
		}
		pos := off + idx
		f, err := obj.ReadWith(data[pos:], tel)
		if err == nil {
			out = append(out, f)
		}
		off = pos + 1
	}
	return out
}
