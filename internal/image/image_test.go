package image

import (
	"bytes"
	"testing"

	"firmup/internal/obj"
	"firmup/internal/uir"
)

func exeFixture(name string) *obj.File {
	return &obj.File{
		Arch:  uir.ArchARM32,
		Entry: 0x8000,
		Sections: []obj.Section{
			{Name: ".text", Addr: 0x8000, Kind: obj.SecText, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
			{Name: ".data", Addr: 0x9000, Kind: obj.SecData, Data: []byte{1}},
		},
		Syms: []obj.Symbol{{Name: name, Addr: 0x8000, Size: 4, Kind: obj.SymFunc}},
	}
}

func sampleImage() *Image {
	im := &Image{Vendor: "NETGEAR", Device: "R7000", Version: "1.0.3"}
	im.AddExecutable("bin/wget", exeFixture("main"))
	im.AddExecutable("usr/sbin/vsftpd", exeFixture("vsf_main"))
	im.Files = append(im.Files, FileEntry{Path: "etc/config", Data: []byte("not an executable")})
	return im
}

func TestPackUnpackRaw(t *testing.T) {
	im := sampleImage()
	data := im.Pack(false)
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vendor != "NETGEAR" || got.Device != "R7000" || got.Version != "1.0.3" {
		t.Errorf("metadata = %+v", got)
	}
	if len(got.Files) != 3 || got.Files[0].Path != "bin/wget" {
		t.Errorf("files = %d", len(got.Files))
	}
	if !bytes.Equal(got.Files[2].Data, []byte("not an executable")) {
		t.Error("config file corrupted")
	}
}

func TestPackUnpackCompressed(t *testing.T) {
	im := sampleImage()
	raw := im.Pack(false)
	comp := im.Pack(true)
	got, err := Unpack(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 3 {
		t.Errorf("files = %d", len(got.Files))
	}
	// The two layouts must agree after unpacking.
	got2, _ := Unpack(raw)
	if got.Device != got2.Device || len(got.Files) != len(got2.Files) {
		t.Error("layouts disagree")
	}
}

func TestExecutablesSkipsNonELF(t *testing.T) {
	im := sampleImage()
	exes := im.Executables()
	if len(exes) != 2 {
		t.Fatalf("Executables = %d, want 2", len(exes))
	}
	if exes[0].Path != "bin/wget" || exes[0].File.Syms[0].Name != "main" {
		t.Errorf("first = %+v", exes[0])
	}
}

func TestUnpackErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XX"),
		[]byte("ABCD rest"),
		[]byte("FWZ1 not zlib"),
		append([]byte("FWIM"), 0xFF, 0xFF, 0xFF, 0xFF), // absurd string length
	}
	for _, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("Unpack(%q) unexpectedly succeeded", c)
		}
	}
}

func TestCarveFindsEmbeddedExecutables(t *testing.T) {
	// Simulate a damaged container: junk + two FWELFs + junk.
	var blob bytes.Buffer
	blob.Write(bytes.Repeat([]byte{0x5A}, 137))
	blob.Write(exeFixture("aaa").Bytes())
	blob.Write([]byte("FELFgarbage that is not a real header"))
	blob.Write(bytes.Repeat([]byte{0x00}, 33))
	blob.Write(exeFixture("bbb").Bytes())
	found := Carve(blob.Bytes())
	if len(found) != 2 {
		t.Fatalf("Carve found %d executables, want 2", len(found))
	}
	if found[0].Syms[0].Name != "aaa" || found[1].Syms[0].Name != "bbb" {
		t.Errorf("carved syms: %v %v", found[0].Syms, found[1].Syms)
	}
}

func TestCarveOnPackedImage(t *testing.T) {
	im := sampleImage()
	raw := im.Pack(false)
	found := Carve(raw)
	if len(found) != 2 {
		t.Errorf("Carve on raw image found %d, want 2", len(found))
	}
	// Compressed images hide the magics (binwalk would decompress first).
	comp := im.Pack(true)
	if n := len(Carve(comp)); n != 0 {
		t.Logf("carve on compressed image found %d (zlib may coincidentally contain magic)", n)
	}
}
