package compiler

import (
	"fmt"
	"testing"

	"firmup/internal/mir"
	"firmup/internal/source"
)

const testSrc = `
package demo version "1.0"

const LIMIT = 10;
var counter = 0;
var table[4] = {3, 1, 4, 1};
var msg = "hi";

func leaf_add(a, b) {
    return a + b;
}

func square(x) {
    return x * x;
}

func sum_to(n) {
    var s = 0;
    for var i = 0; i < n; i = i + 1 {
        s = s + i;
    }
    return s;
}

func classify(x) {
    if x < 0 {
        return 0 - 1;
    } else if x == 0 {
        return 0;
    }
    return 1;
}

func logic(a, b) {
    if a > 2 && b < 5 {
        return 1;
    }
    if a == 0 || b == 0 {
        return 2;
    }
    return 3;
}

func table_sum() {
    var s = 0;
    for var i = 0; i < 4; i = i + 1 {
        s = s + table[i];
    }
    return s;
}

func touch_global(v) {
    counter = counter + v;
    return counter;
}

func strload(i) {
    return msg[i];
}

func buf_fill(n) {
    var buf[8];
    var i = 0;
    while i < n {
        buf[i] = square(i);
        i = i + 1;
    }
    return buf[n - 1];
}

func combined(x) {
    var a = leaf_add(x, 3);
    var b = square(a);
    return sum_to(b % 7) + classify(x);
}
`

func compileAt(t *testing.T, level int) *mir.Package {
	t.Helper()
	p := Profile{OptLevel: level, Features: map[string]bool{}}
	pkg, err := CompileToMIR(testSrc, p)
	if err != nil {
		t.Fatalf("CompileToMIR(O%d): %v", level, err)
	}
	return pkg
}

func TestLowerProducesValidMIR(t *testing.T) {
	pkg := compileAt(t, 0)
	if len(pkg.Procs) != 10 {
		t.Fatalf("got %d procs", len(pkg.Procs))
	}
	for _, p := range pkg.Procs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// The optimizer must preserve observable semantics. Run the same calls at
// every optimization level and compare results and memory effects.
func TestOptimizationPreservesSemantics(t *testing.T) {
	type call struct {
		fn   string
		args []uint32
	}
	calls := []call{
		{"leaf_add", []uint32{3, 4}},
		{"square", []uint32{9}},
		{"sum_to", []uint32{10}},
		{"classify", []uint32{0xFFFFFFFB}}, // -5
		{"classify", []uint32{0}},
		{"classify", []uint32{17}},
		{"logic", []uint32{3, 4}},
		{"logic", []uint32{0, 9}},
		{"logic", []uint32{1, 7}},
		{"table_sum", nil},
		{"touch_global", []uint32{5}},
		{"touch_global", []uint32{7}},
		{"strload", []uint32{1}},
		{"buf_fill", []uint32{5}},
		{"combined", []uint32{6}},
	}
	var reference []uint32
	for level := 0; level <= 3; level++ {
		pkg := compileAt(t, level)
		in := mir.NewInterp(pkg)
		var got []uint32
		for _, c := range calls {
			v, err := in.Call(c.fn, c.args...)
			if err != nil {
				t.Fatalf("O%d %s%v: %v", level, c.fn, c.args, err)
			}
			got = append(got, v)
		}
		if level == 0 {
			reference = got
			// Sanity-check a few absolute values at O0.
			if got[0] != 7 || got[1] != 81 || got[2] != 45 {
				t.Fatalf("O0 results wrong: %v", got[:3])
			}
			if got[3] != 0xFFFFFFFF || got[4] != 0 || got[5] != 1 {
				t.Fatalf("classify wrong: %v", got[3:6])
			}
			if got[6] != 1 || got[7] != 2 || got[8] != 3 {
				t.Fatalf("logic wrong: %v", got[6:9])
			}
			if got[9] != 9 {
				t.Fatalf("table_sum = %d, want 9", got[9])
			}
			if got[10] != 5 || got[11] != 12 {
				t.Fatalf("touch_global sequence: %v", got[10:12])
			}
			if got[12] != 'i' {
				t.Fatalf("strload = %d, want 'i'", got[12])
			}
			if got[13] != 16 {
				t.Fatalf("buf_fill(5) = %d, want 16", got[13])
			}
			continue
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Errorf("O%d: %s%v = %d, want %d (O0)", level, calls[i].fn, calls[i].args, got[i], reference[i])
			}
		}
	}
}

func TestInliningShrinksCallGraph(t *testing.T) {
	countCalls := func(pkg *mir.Package, proc string) int {
		p := pkg.Proc(proc)
		n := 0
		for _, b := range p.Blocks {
			for _, in := range b.Instrs {
				if in.Kind == mir.KCall {
					n++
				}
			}
		}
		return n
	}
	o1 := compileAt(t, 1)
	o2 := compileAt(t, 2)
	if c := countCalls(o1, "combined"); c != 4 {
		t.Errorf("O1 combined has %d calls, want 4", c)
	}
	// leaf_add and square are tiny leaves: O2 must inline them.
	if c := countCalls(o2, "combined"); c >= 4 {
		t.Errorf("O2 combined still has %d calls, want < 4", c)
	}
}

func TestFeatureFlagOmitsProcedure(t *testing.T) {
	src := `package p
feature(OPIE) func skey_resp(x) { return x + 1; }
func main_proc(x) { return skey_resp(x); }
`
	f, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := source.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Lower(info, map[string]bool{"OPIE": true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Lower(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if with.Proc("skey_resp") == nil {
		t.Error("enabled feature must compile the procedure")
	}
	if without.Proc("skey_resp") != nil {
		t.Error("disabled feature must omit the procedure")
	}
	// The disabled call site compiles to constant 0.
	in := mir.NewInterp(without)
	v, err := in.Call("main_proc", 41)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("disabled call = %d, want stub 0", v)
	}
	in2 := mir.NewInterp(with)
	v2, err := in2.Call("main_proc", 41)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 42 {
		t.Errorf("enabled call = %d, want 42", v2)
	}
}

func TestConstantFolding(t *testing.T) {
	src := `package p
func f() { return 2 + 3 * 4; }
`
	prof := Profile{OptLevel: 1}
	pkg, err := CompileToMIR(src, prof)
	if err != nil {
		t.Fatal(err)
	}
	p := pkg.Proc("f")
	total := 0
	for _, b := range p.Blocks {
		total += len(b.Instrs)
	}
	if total != 1 {
		t.Errorf("folded f has %d instrs, want 1 (single constant):\n%s", total, p)
	}
	in := mir.NewInterp(pkg)
	if v, _ := in.Call("f"); v != 14 {
		t.Errorf("f() = %d", v)
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	src := `package p
func f(x) {
    var unused = x * 99;
    return x + 1;
}`
	o0, err := CompileToMIR(src, Profile{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	o1, err := CompileToMIR(src, Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := func(pkg *mir.Package) int {
		n := 0
		for _, b := range pkg.Proc("f").Blocks {
			n += len(b.Instrs)
		}
		return n
	}
	if count(o1) >= count(o0) {
		t.Errorf("O1 (%d instrs) not smaller than O0 (%d)", count(o1), count(o0))
	}
}

func TestJumpThreadingReducesBlocks(t *testing.T) {
	src := `package p
func f(x) {
    if x > 0 {
        x = x + 1;
    }
    if x > 1 {
        x = x + 2;
    }
    if x > 2 {
        x = x + 3;
    }
    return x;
}`
	o1, err := CompileToMIR(src, Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := CompileToMIR(src, Profile{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(o2.Proc("f").Blocks) > len(o1.Proc("f").Blocks) {
		t.Errorf("O2 has %d blocks, O1 has %d — threading failed",
			len(o2.Proc("f").Blocks), len(o1.Proc("f").Blocks))
	}
	for _, lvl := range []*mir.Package{o1, o2} {
		in := mir.NewInterp(lvl)
		if v, _ := in.Call("f", 5); v != 11 {
			t.Errorf("f(5) = %d, want 11", v)
		}
	}
}

func TestRecursionNotInlined(t *testing.T) {
	src := `package p
func fact(n) {
    if n <= 1 {
        return 1;
    }
    return n * fact(n - 1);
}`
	pkg, err := CompileToMIR(src, Profile{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := mir.NewInterp(pkg)
	if v, _ := in.Call("fact", 6); v != 720 {
		t.Errorf("fact(6) = %d, want 720", v)
	}
}

func TestGlobalLayout(t *testing.T) {
	pkg := compileAt(t, 0)
	var names []string
	for _, g := range pkg.Globals {
		names = append(names, g.Name)
	}
	want := []string{"counter", "table", "msg"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("globals = %v, want %v", names, want)
	}
	for _, g := range pkg.Globals {
		if g.Name == "table" {
			if len(g.Data) != 16 || g.Data[0] != 3 || g.Data[8] != 4 {
				t.Errorf("table data = %v", g.Data)
			}
		}
		if g.Name == "msg" {
			if string(g.Data) != "hi\x00" || !g.RO {
				t.Errorf("msg = %q RO=%v", g.Data, g.RO)
			}
		}
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := CompileToMIR("package p\nfunc f() { return y; }", Profile{}); err == nil {
		t.Error("undefined name must fail compilation")
	}
	if _, err := CompileToMIR("not a program", Profile{}); err == nil {
		t.Error("parse error must fail compilation")
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `package p
var hits = 0;
func bump() { hits = hits + 1; return 1; }
func f(a) {
    if a != 0 && bump() != 0 {
        return 1;
    }
    return 0;
}
func hits_count() { return hits; }
`
	for level := 0; level <= 2; level++ {
		pkg, err := CompileToMIR(src, Profile{OptLevel: level})
		if err != nil {
			t.Fatal(err)
		}
		in := mir.NewInterp(pkg)
		if v, _ := in.Call("f", 0); v != 0 {
			t.Errorf("O%d: f(0) = %d", level, v)
		}
		if h, _ := in.Call("hits_count"); h != 0 {
			t.Errorf("O%d: && must not evaluate RHS when LHS is false (hits=%d)", level, h)
		}
		if v, _ := in.Call("f", 1); v != 1 {
			t.Errorf("O%d: f(1) = %d", level, v)
		}
		if h, _ := in.Call("hits_count"); h != 1 {
			t.Errorf("O%d: && must evaluate RHS when LHS is true", level)
		}
	}
}

func TestMIRInterpFuel(t *testing.T) {
	src := `package p
func spin() { while 1 { } return 0; }`
	pkg, err := CompileToMIR(src, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	in := mir.NewInterp(pkg)
	in.Fuel = 1000
	if _, err := in.Call("spin"); err != mir.ErrOutOfFuel {
		t.Errorf("err = %v, want ErrOutOfFuel", err)
	}
}

func TestCompoundAssignment(t *testing.T) {
	src := `package p
func f(x) {
    var a = x;
    a += 3; a *= 2; a -= 1; a <<= 1; a >>= 1; a |= 8; a &= 0xFF; a ^= 1;
    return a;
}`
	for level := 0; level <= 2; level++ {
		pkg, err := CompileToMIR(src, Profile{OptLevel: level})
		if err != nil {
			t.Fatal(err)
		}
		in := mir.NewInterp(pkg)
		got, _ := in.Call("f", 5)
		a := uint32(5)
		a += 3
		a *= 2
		a -= 1
		a <<= 1
		a = uint32(int32(a) >> 1)
		a |= 8
		a &= 0xFF
		a ^= 1
		if got != a {
			t.Errorf("O%d: f(5) = %d, want %d", level, got, a)
		}
	}
}

func TestSignedOperations(t *testing.T) {
	src := `package p
func sdiv(a, b) { return a / b; }
func srem(a, b) { return a % b; }
func sshift(a) { return a >> 2; }
func slt(a, b) { if a < b { return 1; } return 0; }
`
	pkg, err := CompileToMIR(src, Profile{OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := mir.NewInterp(pkg)
	neg := func(x int32) uint32 { return uint32(x) }
	if v, _ := in.Call("sdiv", neg(-7), 2); int32(v) != -3 {
		t.Errorf("-7/2 = %d, want -3 (truncated division)", int32(v))
	}
	if v, _ := in.Call("srem", neg(-7), 2); int32(v) != -1 {
		t.Errorf("-7%%2 = %d", int32(v))
	}
	if v, _ := in.Call("sshift", neg(-8)); int32(v) != -2 {
		t.Errorf("-8>>2 = %d", int32(v))
	}
	if v, _ := in.Call("slt", neg(-1), 0); v != 1 {
		t.Errorf("-1 < 0 must be true (signed compare)")
	}
}
