package compiler

import (
	"firmup/internal/mir"
	"firmup/internal/uir"
)

// Optimize runs the MIR pass pipeline selected by the optimization level:
//
//	O0: nothing — naive lowered code.
//	O1: constant folding/propagation + dead-code elimination.
//	O2: inlining + folding + DCE + jump threading.
//	O3: O2 with a larger inlining budget.
//
// Different levels produce structurally different code for the same
// source, which is exactly the variance the paper's similarity search has
// to see through.
func Optimize(pkg *mir.Package, level, inlineThreshold int) {
	if level <= 0 {
		return
	}
	if level >= 2 {
		budget := inlineThreshold
		if budget == 0 {
			budget = 12
		}
		if level >= 3 {
			budget *= 3
		}
		inlinePackage(pkg, budget)
	}
	for _, p := range pkg.Procs {
		for i := 0; i < 4; i++ {
			changed := foldAndPropagate(p)
			changed = eliminateDeadCode(p) || changed
			if !changed {
				break
			}
		}
		if level >= 2 {
			threadJumps(p)
		}
	}
}

// foldAndPropagate performs per-block constant/copy propagation and
// folding. MIR is not SSA (user variables are mutable registers), so
// facts are killed on redefinition and at block boundaries.
func foldAndPropagate(p *mir.Proc) bool {
	changed := false
	for _, b := range p.Blocks {
		consts := map[mir.VReg]uint32{}
		copies := map[mir.VReg]mir.VReg{}
		kill := func(r mir.VReg) {
			delete(consts, r)
			delete(copies, r)
			for k, v := range copies {
				if v == r {
					delete(copies, k)
				}
			}
		}
		resolve := func(r mir.VReg) mir.VReg {
			if c, ok := copies[r]; ok {
				return c
			}
			return r
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Rewrite uses through known copies.
			switch in.Kind {
			case mir.KBin:
				na, nb := resolve(in.A), resolve(in.B)
				if na != in.A || nb != in.B {
					in.A, in.B = na, nb
					changed = true
				}
			case mir.KUn, mir.KMovReg, mir.KLoad:
				if na := resolve(in.A); na != in.A {
					in.A = na
					changed = true
				}
			case mir.KStore:
				na, nb := resolve(in.A), resolve(in.B)
				if na != in.A || nb != in.B {
					in.A, in.B = na, nb
					changed = true
				}
			case mir.KCall:
				for k, a := range in.Args {
					if na := resolve(a); na != a {
						in.Args[k] = na
						changed = true
					}
				}
			}
			// Fold.
			switch in.Kind {
			case mir.KBin:
				ca, aok := consts[in.A]
				cb, bok := consts[in.B]
				switch {
				case aok && bok:
					*in = mir.Instr{Kind: mir.KMovConst, Dst: in.Dst, Const: uir.EvalBin(in.Op, ca, cb)}
					changed = true
				case bok && identityB(in.Op, cb):
					*in = mir.Instr{Kind: mir.KMovReg, Dst: in.Dst, A: in.A}
					changed = true
				case aok && identityA(in.Op, ca):
					*in = mir.Instr{Kind: mir.KMovReg, Dst: in.Dst, A: in.B}
					changed = true
				case bok && annihilatesB(in.Op, cb):
					*in = mir.Instr{Kind: mir.KMovConst, Dst: in.Dst, Const: 0}
					changed = true
				}
			case mir.KUn:
				if ca, ok := consts[in.A]; ok {
					*in = mir.Instr{Kind: mir.KMovConst, Dst: in.Dst, Const: uir.EvalUn(in.Op, ca)}
					changed = true
				}
			}
			// Record new facts.
			if d := in.Def(); d != mir.NoReg {
				kill(d)
				switch in.Kind {
				case mir.KMovConst:
					consts[d] = in.Const
				case mir.KMovReg:
					if in.A != d {
						copies[d] = in.A
						if c, ok := consts[in.A]; ok {
							consts[d] = c
						}
					}
				}
			}
		}
		// Branch folding on known conditions.
		if b.Term.Kind == mir.TBranch {
			if c, ok := consts[b.Term.Cond]; ok {
				t := b.Term.True
				if c == 0 {
					t = b.Term.False
				}
				b.Term = mir.Term{Kind: mir.TJump, True: t}
				changed = true
			}
		}
	}
	if changed {
		pruneUnreachable(p)
	}
	return changed
}

// identityB reports whether op with constant right operand c is the
// identity (x op c == x).
func identityB(op uir.Op, c uint32) bool {
	switch op {
	case uir.OpAdd, uir.OpSub, uir.OpOr, uir.OpXor, uir.OpShl, uir.OpShrU, uir.OpShrS:
		return c == 0
	case uir.OpMul, uir.OpDivS, uir.OpDivU:
		return c == 1
	case uir.OpAnd:
		return c == 0xFFFFFFFF
	}
	return false
}

// identityA reports whether op with constant left operand c is the
// identity (c op y == y).
func identityA(op uir.Op, c uint32) bool {
	switch op {
	case uir.OpAdd, uir.OpOr, uir.OpXor:
		return c == 0
	case uir.OpMul:
		return c == 1
	case uir.OpAnd:
		return c == 0xFFFFFFFF
	}
	return false
}

// annihilatesB reports whether x op c is the constant 0 regardless of x.
func annihilatesB(op uir.Op, c uint32) bool {
	switch op {
	case uir.OpMul, uir.OpAnd:
		return c == 0
	}
	return false
}

// eliminateDeadCode removes pure instructions whose destination is dead.
// Liveness is computed by backward iteration to a fixed point.
func eliminateDeadCode(p *mir.Proc) bool {
	// live[b] = registers live at entry of block b.
	liveIn := make([]map[mir.VReg]bool, len(p.Blocks))
	for i := range liveIn {
		liveIn[i] = map[mir.VReg]bool{}
	}
	for {
		changed := false
		for bi := len(p.Blocks) - 1; bi >= 0; bi-- {
			b := p.Blocks[bi]
			live := map[mir.VReg]bool{}
			for _, s := range b.Term.Succs() {
				for r := range liveIn[s] {
					live[r] = true
				}
			}
			if b.Term.Kind == mir.TRet && b.Term.RetVal != mir.NoReg {
				live[b.Term.RetVal] = true
			}
			if b.Term.Kind == mir.TBranch {
				live[b.Term.Cond] = true
			}
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				if d := in.Def(); d != mir.NoReg {
					delete(live, d)
				}
				for _, u := range in.Uses() {
					live[u] = true
				}
			}
			if !sameSet(liveIn[bi], live) {
				liveIn[bi] = live
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	removed := false
	for bi, b := range p.Blocks {
		live := map[mir.VReg]bool{}
		for _, s := range b.Term.Succs() {
			for r := range liveIn[s] {
				live[r] = true
			}
		}
		if b.Term.Kind == mir.TRet && b.Term.RetVal != mir.NoReg {
			live[b.Term.RetVal] = true
		}
		if b.Term.Kind == mir.TBranch {
			live[b.Term.Cond] = true
		}
		var kept []mir.Instr
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			d := in.Def()
			dead := d != mir.NoReg && !live[d] && isPure(in.Kind)
			if dead {
				removed = true
				continue
			}
			if d != mir.NoReg {
				delete(live, d)
			}
			for _, u := range in.Uses() {
				live[u] = true
			}
			kept = append(kept, in)
		}
		// kept is reversed.
		for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
			kept[l], kept[r] = kept[r], kept[l]
		}
		_ = bi
		b.Instrs = kept
	}
	return removed
}

func isPure(k mir.InstrKind) bool {
	switch k {
	case mir.KStore, mir.KCall:
		return false
	}
	return true
}

func sameSet(a, b map[mir.VReg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// threadJumps redirects edges that target an empty block whose terminator
// is an unconditional jump, then prunes what became unreachable. This is
// the pass that gives higher optimization levels their tighter CFGs.
func threadJumps(p *mir.Proc) {
	target := func(id int) int {
		seen := map[int]bool{}
		for {
			b := p.Blocks[id]
			if len(b.Instrs) != 0 || b.Term.Kind != mir.TJump || seen[id] {
				return id
			}
			seen[id] = true
			id = b.Term.True
		}
	}
	for _, b := range p.Blocks {
		switch b.Term.Kind {
		case mir.TJump:
			b.Term.True = target(b.Term.True)
		case mir.TBranch:
			b.Term.True = target(b.Term.True)
			b.Term.False = target(b.Term.False)
		}
	}
	pruneUnreachable(p)
	mergeStraightLine(p)
}

// mergeStraightLine merges a block into its unique predecessor when that
// predecessor jumps unconditionally to it.
func mergeStraightLine(p *mir.Proc) {
	for {
		preds := make([][]int, len(p.Blocks))
		for i, b := range p.Blocks {
			for _, s := range b.Term.Succs() {
				preds[s] = append(preds[s], i)
			}
		}
		merged := false
		for i, b := range p.Blocks {
			if b.Term.Kind != mir.TJump {
				continue
			}
			s := b.Term.True
			if s == i || s == 0 || len(preds[s]) != 1 {
				continue
			}
			sb := p.Blocks[s]
			b.Instrs = append(b.Instrs, sb.Instrs...)
			b.Term = sb.Term
			sb.Instrs = nil
			sb.Term = mir.Term{Kind: mir.TJump, True: s} // self-loop, unreachable
			merged = true
			break
		}
		if !merged {
			break
		}
		pruneUnreachable(p)
	}
}

// inlinePackage inlines small callees into their callers. Direct and
// mutual recursion is avoided by only inlining callees that contain no
// call instructions themselves (leaf procedures), which also keeps the
// expansion bounded.
func inlinePackage(pkg *mir.Package, budget int) {
	size := map[string]int{}
	leaf := map[string]bool{}
	for _, p := range pkg.Procs {
		n := 0
		isLeaf := true
		for _, b := range p.Blocks {
			n += len(b.Instrs)
			for _, in := range b.Instrs {
				if in.Kind == mir.KCall {
					isLeaf = false
				}
			}
		}
		size[p.Name] = n
		leaf[p.Name] = isLeaf
	}
	const maxInlinesPerProc = 64
	for _, p := range pkg.Procs {
		for round := 0; round < maxInlinesPerProc; round++ {
			if !inlineOneCall(pkg, p, leaf, size, budget) {
				break
			}
		}
	}
}

// inlineOneCall finds and expands the first inlinable call site in p,
// reporting whether one was found. One-at-a-time keeps block indices
// simple; the caller loops.
func inlineOneCall(pkg *mir.Package, p *mir.Proc, leaf map[string]bool, size map[string]int, budget int) bool {
	for bi := 0; bi < len(p.Blocks); bi++ {
		b := p.Blocks[bi]
		for ii := 0; ii < len(b.Instrs); ii++ {
			in := b.Instrs[ii]
			if in.Kind != mir.KCall || in.Sym == p.Name {
				continue
			}
			callee := pkg.Proc(in.Sym)
			if callee == nil || !leaf[in.Sym] || size[in.Sym] > budget {
				continue
			}
			inlineCall(p, bi, ii, callee)
			return true
		}
	}
	return false
}

// inlineCall splices callee into p, replacing the call instruction at
// p.Blocks[bi].Instrs[ii].
func inlineCall(p *mir.Proc, bi, ii int, callee *mir.Proc) {
	call := p.Blocks[bi].Instrs[ii]
	// Remap callee registers and slots into the caller's namespace.
	regOff := mir.VReg(p.NVRegs)
	p.NVRegs += callee.NVRegs
	slotOff := len(p.Slots)
	p.Slots = append(p.Slots, callee.Slots...)
	blockOff := len(p.Blocks) + 1 // +1 for the continuation block

	// Split the caller block: instructions after the call move to a new
	// continuation block.
	caller := p.Blocks[bi]
	cont := &mir.Block{ID: len(p.Blocks), Instrs: append([]mir.Instr{}, caller.Instrs[ii+1:]...), Term: caller.Term}
	p.Blocks = append(p.Blocks, cont)
	caller.Instrs = caller.Instrs[:ii]

	// Marshal arguments into the callee's parameter registers.
	for k, a := range call.Args {
		caller.Instrs = append(caller.Instrs, mir.Instr{Kind: mir.KMovReg, Dst: regOff + mir.VReg(k), A: a})
	}
	caller.Term = mir.Term{Kind: mir.TJump, True: blockOff}

	// Clone callee blocks.
	for _, cb := range callee.Blocks {
		nb := &mir.Block{ID: len(p.Blocks)}
		for _, cin := range cb.Instrs {
			nin := cin
			if nin.Dst != mir.NoReg && nin.Kind != mir.KStore {
				nin.Dst += regOff
			}
			switch nin.Kind {
			case mir.KBin, mir.KStore:
				nin.A += regOff
				nin.B += regOff
			case mir.KUn, mir.KMovReg, mir.KLoad:
				nin.A += regOff
			case mir.KAddrStack:
				nin.Const += uint32(slotOff)
			case mir.KCall:
				args := make([]mir.VReg, len(nin.Args))
				for k, a := range nin.Args {
					args[k] = a + regOff
				}
				nin.Args = args
			}
			nb.Instrs = append(nb.Instrs, nin)
		}
		switch cb.Term.Kind {
		case mir.TRet:
			if call.Dst != mir.NoReg && cb.Term.RetVal != mir.NoReg {
				nb.Instrs = append(nb.Instrs, mir.Instr{Kind: mir.KMovReg, Dst: call.Dst, A: cb.Term.RetVal + regOff})
			}
			nb.Term = mir.Term{Kind: mir.TJump, True: cont.ID}
		case mir.TJump:
			nb.Term = mir.Term{Kind: mir.TJump, True: cb.Term.True + blockOff}
		case mir.TBranch:
			nb.Term = mir.Term{
				Kind: mir.TBranch,
				Cond: cb.Term.Cond + regOff,
				True: cb.Term.True + blockOff, False: cb.Term.False + blockOff,
			}
		}
		p.Blocks = append(p.Blocks, nb)
	}
}
