package compiler

import (
	"firmup/internal/mir"
	"firmup/internal/source"
	"firmup/internal/uir"
)

// Profile captures a vendor tool chain: the knobs that make two
// compilations of the same source syntactically divergent. The corpus
// assigns a distinct profile to each vendor and to the analyst's own
// query build (the paper compiles queries with gcc 5.2 -O2).
type Profile struct {
	// Name identifies the tool chain (e.g. "gcc52-O2", "vendor-netgear").
	Name string
	// Arch selects the target backend.
	Arch uir.Arch
	// OptLevel is 0..3 (see Optimize).
	OptLevel int
	// InlineThreshold is the instruction budget for inlining leaf callees
	// (0 selects the backend default).
	InlineThreshold int
	// Features is the configure-time feature set; procedures guarded by a
	// flag absent from this set are omitted from the build.
	Features map[string]bool
	// RegSeed permutes the register-allocation preference order,
	// modelling different allocators.
	RegSeed uint64
	// SchedSeed perturbs instruction scheduling within dependence limits.
	SchedSeed uint64
	// MulByShift selects the strength-reduction idiom: multiplication by
	// a power of two emitted as a shift.
	MulByShift bool
	// LayoutBase is the base address of the text section, giving each
	// tool chain a different code/data layout (offsets differ).
	LayoutBase uint32
}

// DefaultQueryProfile mirrors the paper's query compilation setting:
// "gcc 5.2 at the default optimization level (usually -O2)".
func DefaultQueryProfile(arch uir.Arch) Profile {
	return Profile{
		Name:       "gcc52-O2",
		Arch:       arch,
		OptLevel:   2,
		Features:   map[string]bool{"OPIE": true, "SSL": true, "COOKIES": true, "IPV6": true},
		RegSeed:    1,
		SchedSeed:  1,
		MulByShift: true,
		LayoutBase: 0x400000,
	}
}

// CompileToMIR parses, checks, lowers and optimizes a firmlang source
// text under the profile, returning the optimized MIR package.
func CompileToMIR(src string, p Profile) (*mir.Package, error) {
	f, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := source.Check(f)
	if err != nil {
		return nil, err
	}
	pkg, err := Lower(info, p.Features)
	if err != nil {
		return nil, err
	}
	Optimize(pkg, p.OptLevel, p.InlineThreshold)
	for _, proc := range pkg.Procs {
		if err := proc.Validate(); err != nil {
			return nil, err
		}
	}
	return pkg, nil
}
