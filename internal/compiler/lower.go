// Package compiler translates firmlang packages to MIR and then, through
// the per-ISA backends in internal/isa, to machine code inside FWELF
// executables.
//
// A central concern of the FirmUp paper is that the same source compiled
// by different vendors looks syntactically unrelated. This package
// reproduces that honestly: compilation is parameterized by a Profile
// (optimization level, inlining threshold, instruction-selection idioms,
// scheduling jitter, feature flags), and the corpus compiles every package
// under per-vendor profiles.
package compiler

import (
	"fmt"

	"firmup/internal/mir"
	"firmup/internal/source"
	"firmup/internal/uir"
)

// Lower translates a checked firmlang package to MIR, honoring the
// enabled feature set: procedures guarded by a disabled feature are
// omitted and calls to them compile to the constant 0, the mechanism
// behind the paper's --disable-opie structural variance.
func Lower(info *source.PackageInfo, features map[string]bool) (*mir.Package, error) {
	pkg := &mir.Package{Name: info.File.Package, Version: info.File.Version}
	// Globals in declaration order.
	strPool := map[string]string{} // literal -> symbol
	for _, d := range info.File.Decls {
		v, ok := d.(*source.VarDecl)
		if !ok {
			continue
		}
		pkg.Globals = append(pkg.Globals, globalData(v))
	}
	enabled := func(fn *source.FuncDecl) bool {
		return fn.Feature == "" || features[fn.Feature]
	}
	for _, name := range info.FuncNames {
		fn := info.Funcs[name]
		if !enabled(fn) {
			continue
		}
		lw := &lowerer{
			info:     info,
			pkg:      pkg,
			features: features,
			strPool:  strPool,
			proc: &mir.Proc{
				Name:    fn.Name,
				NParams: len(fn.Params),
				NVRegs:  len(fn.Params),
				Feature: fn.Feature,
			},
			vars: map[string]varBinding{},
		}
		for i, p := range fn.Params {
			lw.vars[p] = varBinding{kind: bindVReg, vreg: mir.VReg(i)}
		}
		if err := lw.run(fn); err != nil {
			return nil, err
		}
		pkg.Procs = append(pkg.Procs, lw.proc)
	}
	return pkg, nil
}

// globalData lays out one global's bytes.
func globalData(v *source.VarDecl) mir.Global {
	g := mir.Global{Name: v.Name}
	switch {
	case v.IsStr:
		g.Data = append([]byte(v.Str), 0)
		g.RO = true
	case v.Size > 0:
		g.Data = make([]byte, 4*v.Size)
		for i, x := range v.Init {
			putWord(g.Data, 4*i, uint32(x))
		}
	default:
		g.Data = make([]byte, 4)
		if len(v.Init) == 1 {
			putWord(g.Data, 0, uint32(v.Init[0]))
		}
	}
	return g
}

func putWord(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

type bindKind uint8

const (
	bindVReg bindKind = iota // scalar local/param held in a virtual register
	bindSlot                 // local array in a stack slot
)

type varBinding struct {
	kind bindKind
	vreg mir.VReg
	slot int
}

type loopCtx struct {
	breakTo    int
	continueTo int
}

type lowerer struct {
	info     *source.PackageInfo
	pkg      *mir.Package
	features map[string]bool
	strPool  map[string]string
	proc     *mir.Proc
	vars     map[string]varBinding // flat map; firmlang shadowing handled by save/restore
	cur      *mir.Block
	loops    []loopCtx
	sealed   bool // current block already terminated
}

func (lw *lowerer) newBlock() *mir.Block {
	b := &mir.Block{ID: len(lw.proc.Blocks)}
	lw.proc.Blocks = append(lw.proc.Blocks, b)
	return b
}

// setCur switches emission to block b.
func (lw *lowerer) setCur(b *mir.Block) {
	lw.cur = b
	lw.sealed = false
}

func (lw *lowerer) emit(in mir.Instr) {
	if lw.sealed {
		return // unreachable code after return/break
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

func (lw *lowerer) terminate(t mir.Term) {
	if lw.sealed {
		return
	}
	lw.cur.Term = t
	lw.sealed = true
}

func (lw *lowerer) run(fn *source.FuncDecl) error {
	entry := lw.newBlock()
	lw.setCur(entry)
	if err := lw.block(fn.Body); err != nil {
		return err
	}
	if !lw.sealed {
		zero := lw.constReg(0)
		lw.terminate(mir.Term{Kind: mir.TRet, RetVal: zero})
	}
	pruneUnreachable(lw.proc)
	return lw.proc.Validate()
}

func (lw *lowerer) constReg(v uint32) mir.VReg {
	d := lw.proc.NewVReg()
	lw.emit(mir.Instr{Kind: mir.KMovConst, Dst: d, Const: v})
	return d
}

// block lowers a block with lexical scoping of variable bindings.
func (lw *lowerer) block(b *source.BlockStmt) error {
	saved := make(map[string]varBinding, len(lw.vars))
	for k, v := range lw.vars {
		saved[k] = v
	}
	defer func() { lw.vars = saved }()
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s source.Stmt) error {
	switch v := s.(type) {
	case *source.BlockStmt:
		return lw.block(v)
	case *source.DeclStmt:
		if v.Size > 0 {
			slot := len(lw.proc.Slots)
			lw.proc.Slots = append(lw.proc.Slots, mir.Slot{Name: v.Name, Size: 4 * v.Size})
			lw.vars[v.Name] = varBinding{kind: bindSlot, slot: slot}
			return nil
		}
		var init mir.VReg
		if v.Init != nil {
			r, err := lw.expr(v.Init)
			if err != nil {
				return err
			}
			init = r
		} else {
			init = lw.constReg(0)
		}
		d := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KMovReg, Dst: d, A: init})
		lw.vars[v.Name] = varBinding{kind: bindVReg, vreg: d}
		return nil
	case *source.AssignStmt:
		return lw.assign(v)
	case *source.IfStmt:
		return lw.ifStmt(v)
	case *source.WhileStmt:
		return lw.loop(nil, v.Cond, nil, v.Body)
	case *source.ForStmt:
		// The for clauses introduce a scope.
		saved := make(map[string]varBinding, len(lw.vars))
		for k, b := range lw.vars {
			saved[k] = b
		}
		defer func() { lw.vars = saved }()
		if v.Init != nil {
			if err := lw.stmt(v.Init); err != nil {
				return err
			}
		}
		return lw.loop(nil, v.Cond, v.Post, v.Body)
	case *source.ReturnStmt:
		var r mir.VReg
		if v.Value != nil {
			reg, err := lw.expr(v.Value)
			if err != nil {
				return err
			}
			r = reg
		} else {
			r = lw.constReg(0)
		}
		lw.terminate(mir.Term{Kind: mir.TRet, RetVal: r})
		return nil
	case *source.ExprStmt:
		_, err := lw.expr(v.X)
		return err
	case *source.BreakStmt:
		if len(lw.loops) == 0 {
			return &source.Error{Pos: v.Pos, Msg: "break outside loop"}
		}
		lw.terminate(mir.Term{Kind: mir.TJump, True: lw.loops[len(lw.loops)-1].breakTo})
		return nil
	case *source.ContinueStmt:
		if len(lw.loops) == 0 {
			return &source.Error{Pos: v.Pos, Msg: "continue outside loop"}
		}
		lw.terminate(mir.Term{Kind: mir.TJump, True: lw.loops[len(lw.loops)-1].continueTo})
		return nil
	default:
		return fmt.Errorf("compiler: unknown statement %T", s)
	}
}

func (lw *lowerer) ifStmt(v *source.IfStmt) error {
	thenB := lw.newBlock()
	elseB := lw.newBlock()
	joinB := lw.newBlock()
	cond, err := lw.expr(v.Cond)
	if err != nil {
		return err
	}
	lw.terminate(mir.Term{Kind: mir.TBranch, Cond: cond, True: thenB.ID, False: elseB.ID})
	lw.setCur(thenB)
	if err := lw.block(v.Then); err != nil {
		return err
	}
	lw.terminate(mir.Term{Kind: mir.TJump, True: joinB.ID})
	lw.setCur(elseB)
	if v.Else != nil {
		if err := lw.stmt(v.Else); err != nil {
			return err
		}
	}
	lw.terminate(mir.Term{Kind: mir.TJump, True: joinB.ID})
	lw.setCur(joinB)
	return nil
}

// loop lowers while/for bodies. post may be nil.
func (lw *lowerer) loop(_ source.Stmt, cond source.Expr, post source.Stmt, body *source.BlockStmt) error {
	headB := lw.newBlock()
	bodyB := lw.newBlock()
	postB := lw.newBlock()
	exitB := lw.newBlock()
	lw.terminate(mir.Term{Kind: mir.TJump, True: headB.ID})
	lw.setCur(headB)
	if cond != nil {
		c, err := lw.expr(cond)
		if err != nil {
			return err
		}
		lw.terminate(mir.Term{Kind: mir.TBranch, Cond: c, True: bodyB.ID, False: exitB.ID})
	} else {
		lw.terminate(mir.Term{Kind: mir.TJump, True: bodyB.ID})
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: exitB.ID, continueTo: postB.ID})
	lw.setCur(bodyB)
	if err := lw.block(body); err != nil {
		return err
	}
	lw.terminate(mir.Term{Kind: mir.TJump, True: postB.ID})
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.setCur(postB)
	if post != nil {
		if err := lw.stmt(post); err != nil {
			return err
		}
	}
	lw.terminate(mir.Term{Kind: mir.TJump, True: headB.ID})
	lw.setCur(exitB)
	return nil
}

var compoundOps = map[string]uir.Op{
	"+=": uir.OpAdd, "-=": uir.OpSub, "*=": uir.OpMul, "/=": uir.OpDivS,
	"%=": uir.OpRemS, "&=": uir.OpAnd, "|=": uir.OpOr, "^=": uir.OpXor,
	"<<=": uir.OpShl, ">>=": uir.OpShrS,
}

func (lw *lowerer) assign(v *source.AssignStmt) error {
	switch lhs := v.LHS.(type) {
	case *source.Ident:
		rhs := v.RHS
		if v.Op != "=" {
			rhs = &source.Binary{Op: v.Op[:len(v.Op)-1], X: lhs, Y: v.RHS}
		}
		r, err := lw.expr(rhs)
		if err != nil {
			return err
		}
		if b, ok := lw.vars[lhs.Name]; ok {
			if b.kind == bindSlot {
				return &source.Error{Pos: v.Pos, Msg: fmt.Sprintf("cannot assign to array %s", lhs.Name)}
			}
			lw.emit(mir.Instr{Kind: mir.KMovReg, Dst: b.vreg, A: r})
			return nil
		}
		if g, ok := lw.info.Globals[lhs.Name]; ok {
			if g.Size > 0 || g.IsStr {
				return &source.Error{Pos: v.Pos, Msg: fmt.Sprintf("cannot assign to array %s", lhs.Name)}
			}
			addr := lw.proc.NewVReg()
			lw.emit(mir.Instr{Kind: mir.KAddrGlobal, Dst: addr, Sym: lhs.Name})
			lw.emit(mir.Instr{Kind: mir.KStore, A: addr, B: r, Size: 4})
			return nil
		}
		return &source.Error{Pos: v.Pos, Msg: fmt.Sprintf("undefined: %s", lhs.Name)}
	case *source.Index:
		addr, size, err := lw.indexAddr(lhs)
		if err != nil {
			return err
		}
		rhs := v.RHS
		if v.Op != "=" {
			rhs = &source.Binary{Op: v.Op[:len(v.Op)-1], X: lhs, Y: v.RHS}
		}
		r, err := lw.expr(rhs)
		if err != nil {
			return err
		}
		lw.emit(mir.Instr{Kind: mir.KStore, A: addr, B: r, Size: size})
		return nil
	default:
		return &source.Error{Pos: v.Pos, Msg: "bad assignment target"}
	}
}

// elemSize decides the access width of an index expression, following the
// firmlang memory model: int arrays (global or local) are word-indexed;
// string globals and any pointer arriving through a scalar are
// byte-indexed.
func (lw *lowerer) elemSize(x source.Expr) uint8 {
	id, ok := x.(*source.Ident)
	if !ok {
		return 1
	}
	if b, ok := lw.vars[id.Name]; ok {
		if b.kind == bindSlot {
			return 4
		}
		return 1 // scalar holding a byte pointer
	}
	if g, ok := lw.info.Globals[id.Name]; ok {
		if g.IsStr {
			return 1
		}
		if g.Size > 0 {
			return 4
		}
		return 1
	}
	return 1
}

// indexAddr computes the address and access size for x[i].
func (lw *lowerer) indexAddr(v *source.Index) (mir.VReg, uint8, error) {
	size := lw.elemSize(v.X)
	base, err := lw.expr(v.X)
	if err != nil {
		return 0, 0, err
	}
	idx, err := lw.expr(v.I)
	if err != nil {
		return 0, 0, err
	}
	off := idx
	if size == 4 {
		four := lw.constReg(4)
		scaled := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KBin, Op: uir.OpMul, Dst: scaled, A: idx, B: four})
		off = scaled
	}
	addr := lw.proc.NewVReg()
	lw.emit(mir.Instr{Kind: mir.KBin, Op: uir.OpAdd, Dst: addr, A: base, B: off})
	return addr, size, nil
}

var binOps = map[string]uir.Op{
	"+": uir.OpAdd, "-": uir.OpSub, "*": uir.OpMul, "/": uir.OpDivS, "%": uir.OpRemS,
	"&": uir.OpAnd, "|": uir.OpOr, "^": uir.OpXor, "<<": uir.OpShl, ">>": uir.OpShrS,
	"==": uir.OpCmpEQ, "!=": uir.OpCmpNE, "<": uir.OpCmpLTS, "<=": uir.OpCmpLES,
}

func (lw *lowerer) expr(e source.Expr) (mir.VReg, error) {
	switch v := e.(type) {
	case *source.IntLit:
		return lw.constReg(uint32(v.Val)), nil
	case *source.StrLit:
		sym, ok := lw.strPool[v.Val]
		if !ok {
			sym = fmt.Sprintf(".str%d", len(lw.strPool))
			lw.strPool[v.Val] = sym
			lw.pkg.Globals = append(lw.pkg.Globals, mir.Global{
				Name: sym,
				Data: append([]byte(v.Val), 0),
				RO:   true,
			})
		}
		d := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KAddrGlobal, Dst: d, Sym: sym})
		return d, nil
	case *source.Ident:
		if c, ok := lw.info.Consts[v.Name]; ok {
			return lw.constReg(uint32(c)), nil
		}
		if b, ok := lw.vars[v.Name]; ok {
			if b.kind == bindSlot {
				d := lw.proc.NewVReg()
				lw.emit(mir.Instr{Kind: mir.KAddrStack, Dst: d, Const: uint32(b.slot)})
				return d, nil
			}
			return b.vreg, nil
		}
		if g, ok := lw.info.Globals[v.Name]; ok {
			addr := lw.proc.NewVReg()
			lw.emit(mir.Instr{Kind: mir.KAddrGlobal, Dst: addr, Sym: v.Name})
			if g.Size > 0 || g.IsStr {
				return addr, nil // arrays evaluate to their address
			}
			d := lw.proc.NewVReg()
			lw.emit(mir.Instr{Kind: mir.KLoad, Dst: d, A: addr, Size: 4})
			return d, nil
		}
		return 0, &source.Error{Pos: v.Pos, Msg: fmt.Sprintf("undefined: %s", v.Name)}
	case *source.Unary:
		x, err := lw.expr(v.X)
		if err != nil {
			return 0, err
		}
		d := lw.proc.NewVReg()
		switch v.Op {
		case "-":
			lw.emit(mir.Instr{Kind: mir.KUn, Op: uir.OpNeg, Dst: d, A: x})
		case "~":
			lw.emit(mir.Instr{Kind: mir.KUn, Op: uir.OpNot, Dst: d, A: x})
		case "!":
			z := lw.constReg(0)
			lw.emit(mir.Instr{Kind: mir.KBin, Op: uir.OpCmpEQ, Dst: d, A: x, B: z})
		default:
			return 0, &source.Error{Pos: v.Pos, Msg: "unknown unary operator " + v.Op}
		}
		return d, nil
	case *source.Binary:
		return lw.binary(v)
	case *source.Call:
		fn, ok := lw.info.Funcs[v.Name]
		if !ok {
			return 0, &source.Error{Pos: v.Pos, Msg: "call to undefined procedure " + v.Name}
		}
		if fn.Feature != "" && !lw.features[fn.Feature] {
			// Feature disabled at configure time: the call site compiles
			// to the disabled-stub constant (cf. --disable-opie).
			return lw.constReg(0), nil
		}
		args := make([]mir.VReg, len(v.Args))
		for i, a := range v.Args {
			r, err := lw.expr(a)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		d := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KCall, Dst: d, Sym: v.Name, Args: args})
		return d, nil
	case *source.Index:
		addr, size, err := lw.indexAddr(v)
		if err != nil {
			return 0, err
		}
		d := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KLoad, Dst: d, A: addr, Size: size})
		return d, nil
	default:
		return 0, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

func (lw *lowerer) binary(v *source.Binary) (mir.VReg, error) {
	switch v.Op {
	case "&&", "||":
		return lw.shortCircuit(v)
	case ">", ">=":
		// a > b lowers as b < a.
		op := uir.OpCmpLTS
		if v.Op == ">=" {
			op = uir.OpCmpLES
		}
		x, err := lw.expr(v.X)
		if err != nil {
			return 0, err
		}
		y, err := lw.expr(v.Y)
		if err != nil {
			return 0, err
		}
		d := lw.proc.NewVReg()
		lw.emit(mir.Instr{Kind: mir.KBin, Op: op, Dst: d, A: y, B: x})
		return d, nil
	}
	op, ok := binOps[v.Op]
	if !ok {
		return 0, &source.Error{Pos: v.Pos, Msg: "unknown operator " + v.Op}
	}
	x, err := lw.expr(v.X)
	if err != nil {
		return 0, err
	}
	y, err := lw.expr(v.Y)
	if err != nil {
		return 0, err
	}
	d := lw.proc.NewVReg()
	lw.emit(mir.Instr{Kind: mir.KBin, Op: op, Dst: d, A: x, B: y})
	return d, nil
}

// shortCircuit lowers && and || with control flow, like C.
func (lw *lowerer) shortCircuit(v *source.Binary) (mir.VReg, error) {
	res := lw.proc.NewVReg()
	rhsB := lw.newBlock()
	shortB := lw.newBlock()
	joinB := lw.newBlock()
	x, err := lw.expr(v.X)
	if err != nil {
		return 0, err
	}
	xb := lw.proc.NewVReg()
	lw.emit(mir.Instr{Kind: mir.KUn, Op: uir.OpBool, Dst: xb, A: x})
	if v.Op == "&&" {
		lw.terminate(mir.Term{Kind: mir.TBranch, Cond: xb, True: rhsB.ID, False: shortB.ID})
	} else {
		lw.terminate(mir.Term{Kind: mir.TBranch, Cond: xb, True: shortB.ID, False: rhsB.ID})
	}
	// Short-circuit arm: result is 0 for &&, 1 for ||.
	lw.setCur(shortB)
	var shortVal uint32
	if v.Op == "||" {
		shortVal = 1
	}
	c := lw.constReg(shortVal)
	lw.emit(mir.Instr{Kind: mir.KMovReg, Dst: res, A: c})
	lw.terminate(mir.Term{Kind: mir.TJump, True: joinB.ID})
	// Evaluate RHS.
	lw.setCur(rhsB)
	y, err := lw.expr(v.Y)
	if err != nil {
		return 0, err
	}
	yb := lw.proc.NewVReg()
	lw.emit(mir.Instr{Kind: mir.KUn, Op: uir.OpBool, Dst: yb, A: y})
	lw.emit(mir.Instr{Kind: mir.KMovReg, Dst: res, A: yb})
	lw.terminate(mir.Term{Kind: mir.TJump, True: joinB.ID})
	lw.setCur(joinB)
	return res, nil
}

// pruneUnreachable removes blocks with no path from the entry and
// renumbers the remainder.
func pruneUnreachable(p *mir.Proc) {
	reach := make([]bool, len(p.Blocks))
	var stack []int
	reach[0] = true
	stack = append(stack, 0)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Blocks[b].Term.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(p.Blocks))
	var kept []*mir.Block
	for i, b := range p.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			b.ID = len(kept)
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		switch b.Term.Kind {
		case mir.TJump:
			b.Term.True = remap[b.Term.True]
		case mir.TBranch:
			b.Term.True = remap[b.Term.True]
			b.Term.False = remap[b.Term.False]
		}
	}
	p.Blocks = kept
}
