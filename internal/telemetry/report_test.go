package telemetry

import (
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestReportRoundTripAndValidation(t *testing.T) {
	r := New()
	r.Counter("exe.analyzed").Add(3)
	r.Histogram("game.steps").Observe(1)
	rep := NewReport("firmup", ReportConfig{Workers: 4, BlockCache: true, Index: true})
	rep.Finish(r)

	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "firmup" || back.Config.Workers != 4 || !back.Config.BlockCache {
		t.Errorf("report lost fields: %+v", back)
	}
	if back.Metrics.Counters["exe.analyzed"] != 3 {
		t.Errorf("metrics lost: %+v", back.Metrics)
	}

	for _, bad := range []string{
		"", "{}", `{"schema": 999, "tool": "x"}`,
		`{"schema": 1, "tool": ""}`,
		`{"schema": 1, "tool": "x", "metrics": {"schema": 0}}`,
	} {
		if _, err := ParseReport([]byte(bad)); err == nil {
			t.Errorf("ParseReport(%q) accepted invalid input", bad)
		}
	}
}

// TestReportFileSchema validates an externally produced run report —
// the CI smoke step points FIRMUP_REPORT_FILE at the output of
// `firmup -report` over the generated corpus and requires the
// pipeline's stage sections and the Fig. 9 steps histogram.
func TestReportFileSchema(t *testing.T) {
	path := os.Getenv("FIRMUP_REPORT_FILE")
	if path == "" {
		t.Skip("FIRMUP_REPORT_FILE not set; run via the CI report smoke step")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallNs <= 0 {
		t.Errorf("wall_ns = %d, want positive", rep.WallNs)
	}
	if len(rep.Metrics.Stages) == 0 {
		t.Fatal("report has no stage sections")
	}
	for _, stage := range []string{"obj.parse", "cfg.recover", "sim.build", "search.image"} {
		s, ok := rep.Metrics.Stages[stage]
		if !ok || s.Calls == 0 {
			t.Errorf("stage %q missing or never ran: %+v", stage, rep.Metrics.Stages)
		}
	}
	steps, ok := rep.Metrics.Histograms["game.steps"]
	if !ok || steps.Count == 0 || len(steps.Buckets) == 0 {
		t.Errorf("steps-per-game histogram missing or empty: %+v", rep.Metrics.Histograms)
	}
	if rep.Metrics.Counters["game.played"] == 0 {
		t.Errorf("no games recorded: %+v", rep.Metrics.Counters)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := New()
	r.Counter("smoke").Add(9)
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) string {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	if body := get("/debug/firmup"); !strings.Contains(body, `"smoke": 9`) {
		t.Errorf("/debug/firmup lacks the counter: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"firmup"`) {
		t.Errorf("/debug/vars lacks the published registry: %.200s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
