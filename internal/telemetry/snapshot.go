package telemetry

// SchemaVersion identifies the snapshot/report JSON layout. It is
// bumped on any field rename or semantic change, so downstream
// consumers can reject snapshots they do not understand instead of
// misreading them.
const SchemaVersion = 1

// Snapshot is a point-in-time copy of a registry's metrics in a
// schema-stable, JSON-encodable form. Maps marshal with sorted keys,
// so two snapshots of identical state encode identically.
type Snapshot struct {
	Schema     int                          `json:"schema"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Stages     map[string]StageSnapshot     `json:"stages,omitempty"`
}

// StageSnapshot is one stage timer's accumulated state.
type StageSnapshot struct {
	Calls int64 `json:"calls"`
	Ns    int64 `json:"ns"`
}

// HistogramSnapshot is one histogram's state: exact count and sum, the
// estimated p50/p90/p99 quantiles (see Histogram.Quantile for the
// interpolation and its bucket-bounded error), plus the non-empty
// buckets with their inclusive value bounds. The quantile fields are a
// schema-compatible addition: consumers of earlier snapshots ignore
// them, and the bucket layout is unchanged.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	P50     int64            `json:"p50"`
	P90     int64            `json:"p90"`
	P99     int64            `json:"p99"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket.
type BucketSnapshot struct {
	// Lo and Hi are the bucket's inclusive value bounds.
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Snapshot captures the registry's current state. On a nil registry it
// returns an empty snapshot carrying only the schema version, so
// disabled sessions still produce decodable (if vacuous) reports.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Schema: SchemaVersion}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for _, name := range sortedKeys(r.counters) {
			snap.Counters[name] = r.counters[name].Value()
		}
	}
	if len(r.gauges)+len(r.funcs) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges)+len(r.funcs))
		for _, name := range sortedKeys(r.gauges) {
			snap.Gauges[name] = r.gauges[name].Value()
		}
		for _, name := range sortedKeys(r.funcs) {
			snap.Gauges[name] = r.funcs[name]()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, name := range sortedKeys(r.hists) {
			snap.Histograms[name] = r.hists[name].snapshot()
		}
	}
	if len(r.stages) > 0 {
		snap.Stages = make(map[string]StageSnapshot, len(r.stages))
		for _, name := range sortedKeys(r.stages) {
			s := r.stages[name]
			snap.Stages[name] = StageSnapshot{Calls: s.Calls(), Ns: s.Ns()}
		}
	}
	return snap
}

func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < HistBuckets; i++ {
		if n := h.Bucket(i); n > 0 {
			lo, hi := BucketBounds(i)
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Lo: lo, Hi: hi, Count: n})
		}
	}
	return hs
}
