package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef)
	s := id.String()
	if s != "00000000deadbeef" {
		t.Fatalf("String() = %q", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	for _, bad := range []string{"", "deadbeef", "00000000deadbee", "00000000deadbeef0", "zzzzzzzzzzzzzzzz", "0000000000000000"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	if NewTraceID() == 0 {
		t.Error("NewTraceID returned 0")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x", 0)
	if sp.Active() || sp.ID() != 0 {
		t.Fatal("nil trace produced an active span")
	}
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	sp.End()
	if tr.ID() != 0 || tr.Finish() != 0 {
		t.Fatal("nil trace accessors not zero")
	}
	tr.Free()
	if snap := tr.Snapshot(); len(snap.Spans) != 0 {
		t.Fatal("nil trace snapshot has spans")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(TraceID(7))
	root := tr.Start("request", 0)
	child := tr.Start("search", root.ID())
	child.SetAttr("examined", 42)
	child.SetAttrStr("proc", "ftp_retrieve_glob")
	child.End()
	root.End()
	tr.Finish()
	snap := tr.Snapshot()
	if snap.TraceID != TraceID(7).String() {
		t.Fatalf("trace id %q", snap.TraceID)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("%d spans", len(snap.Spans))
	}
	if snap.Spans[0].Name != "request" || snap.Spans[0].Parent != 0 {
		t.Fatalf("root span %+v", snap.Spans[0])
	}
	if snap.Spans[1].Parent != snap.Spans[0].ID {
		t.Fatalf("child parent %d want %d", snap.Spans[1].Parent, snap.Spans[0].ID)
	}
	if snap.Spans[1].Attrs["examined"] != int64(42) || snap.Spans[1].Attrs["proc"] != "ftp_retrieve_glob" {
		t.Fatalf("attrs %+v", snap.Spans[1].Attrs)
	}
	if snap.Spans[1].DurUS < 0 || snap.Spans[1].StartUS < snap.Spans[0].StartUS {
		t.Fatalf("timing: %+v", snap.Spans)
	}
	// The snapshot must be JSON-encodable as-is.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
	tr.Free()
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(NewTraceID())
	for i := 0; i < MaxTraceSpans+10; i++ {
		tr.Start("s", 0).End()
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != MaxTraceSpans {
		t.Fatalf("%d spans, want cap %d", len(snap.Spans), MaxTraceSpans)
	}
	if snap.DroppedSpans != 10 {
		t.Fatalf("dropped %d, want 10", snap.DroppedSpans)
	}
	tr.Free()
}

func TestTracePoolReuseResets(t *testing.T) {
	tr := NewTrace(TraceID(1))
	sp := tr.Start("a", 0)
	sp.SetAttr("k", 9)
	sp.End()
	tr.Finish()
	tr.Free()
	// The pool may hand the same trace back; either way a fresh trace
	// must start empty.
	tr2 := NewTrace(TraceID(2))
	snap := tr2.Snapshot()
	if len(snap.Spans) != 0 || snap.DroppedSpans != 0 {
		t.Fatalf("reused trace not reset: %+v", snap)
	}
	sp2 := tr2.Start("b", 0)
	sp2.End()
	if got := tr2.Snapshot().Spans[0]; got.Name != "b" || len(got.Attrs) != 0 {
		t.Fatalf("reused span slot leaked state: %+v", got)
	}
	tr2.Free()
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace(NewTraceID())
	root := tr.Start("root", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.Start("shard", root.ID())
				sp.SetAttr("shard", int64(i))
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 1+8*50 {
		t.Fatalf("%d spans", len(snap.Spans))
	}
	tr.Free()
}

func TestTraceBufferRetainsSlowest(t *testing.T) {
	b := NewTraceBuffer(2, 0, 0)
	durations := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, 1 * time.Millisecond, 20 * time.Millisecond}
	for i, d := range durations {
		tr := NewTrace(TraceID(uint64(i + 1)))
		tr.Start("request", 0).End()
		b.Offer(tr, d)
	}
	snap := b.Snapshot()
	if snap.Offered != 4 {
		t.Fatalf("offered %d", snap.Offered)
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("%d slowest retained", len(snap.Slowest))
	}
	// Slowest first: 50ms (trace 2) then 20ms (trace 4).
	if snap.Slowest[0].TraceID != TraceID(2).String() || snap.Slowest[1].TraceID != TraceID(4).String() {
		t.Fatalf("slowest order: %s, %s", snap.Slowest[0].TraceID, snap.Slowest[1].TraceID)
	}
	if snap.Slowest[0].DurUS < snap.Slowest[1].DurUS {
		t.Fatal("slowest not sorted descending")
	}
}

func TestTraceBufferThresholdRing(t *testing.T) {
	b := NewTraceBuffer(1, 10*time.Millisecond, 2)
	for i := 1; i <= 4; i++ {
		tr := NewTrace(TraceID(uint64(i)))
		b.Offer(tr, time.Duration(i)*8*time.Millisecond) // 8, 16, 24, 32ms
	}
	snap := b.Snapshot()
	if snap.ThresholdUS != 10_000 {
		t.Fatalf("threshold %d", snap.ThresholdUS)
	}
	// 16/24/32ms exceeded; ring keeps the 2 newest, newest first.
	if len(snap.Recent) != 2 {
		t.Fatalf("%d recent", len(snap.Recent))
	}
	if snap.Recent[0].TraceID != TraceID(4).String() || snap.Recent[1].TraceID != TraceID(3).String() {
		t.Fatalf("recent order: %s, %s", snap.Recent[0].TraceID, snap.Recent[1].TraceID)
	}
}

func TestTraceBufferNil(t *testing.T) {
	var b *TraceBuffer
	if b.Offer(NewTrace(NewTraceID()), time.Second) {
		t.Fatal("nil buffer retained")
	}
	snap := b.Snapshot()
	if snap.Schema != SchemaVersion || len(snap.Slowest) != 0 {
		t.Fatalf("nil snapshot: %+v", snap)
	}
}
