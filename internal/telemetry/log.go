package telemetry

// Structured JSON event logging for the serving daemon: one JSON
// object per line, fields in call order, trace-ID-correlated when the
// request was traced. Hand-rolled encoding keeps a log line to one
// buffered write with no reflection and no intermediate maps, and the
// output is deterministic given deterministic field values — the serve
// tests decode lines back and assert on them.
//
// Like every type in this package, a nil *Logger is the disabled
// state: every method is a no-op, so callers log unconditionally.

import (
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level as it appears in the "level" field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// Field is one typed key/value of a log line. Construct with String,
// Int or F64.
type Field struct {
	Key  string
	kind uint8 // 0 string, 1 int, 2 float
	str  string
	num  int64
	f    float64
}

// String makes a string-valued field.
func String(k, v string) Field { return Field{Key: k, kind: 0, str: v} }

// Int makes an integer-valued field.
func Int(k string, v int64) Field { return Field{Key: k, kind: 1, num: v} }

// F64 makes a float-valued field.
func F64(k string, v float64) Field { return Field{Key: k, kind: 2, f: v} }

// Logger writes leveled JSON lines to one writer. Safe for concurrent
// use; a nil Logger discards everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	buf []byte
	// now is the clock; replaceable in tests for deterministic output.
	now func() time.Time
}

// NewLogger builds a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// Enabled reports whether lines at the given level are written; false
// on a nil logger.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Log writes one line: {"ts":...,"level":...,"msg":...,<fields...>}.
// No-op on a nil logger or a level below the minimum.
func (l *Logger) Log(lv Level, msg string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = l.now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, lv.String()...)
	b = append(b, `","msg":`...)
	b = appendJSONString(b, msg)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case 0:
			b = appendJSONString(b, f.str)
		case 1:
			b = strconv.AppendInt(b, f.num, 10)
		default:
			b = strconv.AppendFloat(b, f.f, 'f', -1, 64)
		}
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, _ = l.w.Write(b)
}

// Debug, Info, Warn and Error are Log at the respective level.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }
func (l *Logger) Info(msg string, fields ...Field)  { l.Log(LevelInfo, msg, fields...) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.Log(LevelWarn, msg, fields...) }
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping
// quotes, backslashes, control characters and invalid UTF-8.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				b = append(b, '\\', c)
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			case c < 0x20:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}
