package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Histogram buckets are powers of two by bit length: bucket 0 holds
// non-positive values, bucket b holds [2^(b-1), 2^b - 1], and the last
// bucket absorbs everything else.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 29, 30}, {1<<30 - 1, 30},
		{1 << 30, HistBuckets - 1}, // first overflow value
		{1 << 40, HistBuckets - 1},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every in-range value must fall inside its own bucket's bounds.
	for _, c := range cases {
		lo, hi := BucketBounds(BucketOf(c.v))
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
	// Buckets tile the positive range with no gaps or overlaps.
	for i := 1; i < HistBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if lo != hi+1 {
			t.Errorf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramObserveAndOverflow(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 1, 3, 8, 1 << 35, math.MaxInt64}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
	if got := h.Bucket(0); got != 1 {
		t.Errorf("bucket 0 = %d, want 1 (the zero observation)", got)
	}
	if got := h.Bucket(1); got != 2 {
		t.Errorf("bucket 1 = %d, want 2 (the ones)", got)
	}
	if got := h.Bucket(HistBuckets - 1); got != 2 {
		t.Errorf("overflow bucket = %d, want 2", got)
	}
	var total int64
	for i := 0; i < HistBuckets; i++ {
		total += h.Bucket(i)
	}
	if total != h.Count() {
		t.Errorf("bucket totals %d != count %d", total, h.Count())
	}
	if h.Bucket(-1) != 0 || h.Bucket(HistBuckets) != 0 {
		t.Error("out-of-range Bucket index must report 0")
	}
}

// Counters, gauges and histograms must be safe for concurrent use;
// run under -race in CI.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	st := r.Stage("s")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 100))
				sp := st.Start()
				sp.End()
				// Same-name accessors from many goroutines must agree.
				if r.Counter("c") != c {
					t.Error("Counter(name) not stable across goroutines")
					return
				}
			}
		}()
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %d, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if st.Calls() != want {
		t.Errorf("stage calls = %d, want %d", st.Calls(), want)
	}
}

// The disabled state is a nil registry handing out nil metrics; every
// operation must be a silent no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	s := r.Stage("x")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(42)
	sp := s.Start()
	sp.End()
	r.GaugeFunc("x", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Calls() != 0 {
		t.Error("nil metrics must read as zero")
	}
	snap := r.Snapshot()
	if snap.Schema != SchemaVersion || snap.Counters != nil || snap.Stages != nil {
		t.Errorf("nil registry snapshot = %+v, want empty with schema", snap)
	}
}

func TestStageAccumulates(t *testing.T) {
	var s Stage
	sp := s.Start()
	time.Sleep(time.Millisecond)
	sp.End()
	if s.Calls() != 1 {
		t.Errorf("calls = %d, want 1", s.Calls())
	}
	if s.Ns() < int64(time.Millisecond/2) {
		t.Errorf("ns = %d, implausibly small for a 1ms span", s.Ns())
	}
}

// Snapshots must survive a JSON round trip intact, with schema-stable
// field names.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("obj.parse").Add(7)
	r.Gauge("corpus.unique_strands").Set(123)
	r.GaugeFunc("index.postings", func() int64 { return 456 })
	for _, v := range []int64{1, 1, 2, 5, 1 << 40} {
		r.Histogram("game.steps").Observe(v)
	}
	sp := r.Stage("cfg.recover").Start()
	sp.End()

	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	// The wire names are the schema; renaming any of them is a
	// breaking change that must bump SchemaVersion.
	for _, field := range []string{
		`"schema"`, `"counters"`, `"gauges"`, `"histograms"`, `"stages"`,
		`"count"`, `"sum"`, `"buckets"`, `"lo"`, `"hi"`, `"calls"`, `"ns"`,
	} {
		if !strings.Contains(string(blob), field) {
			t.Errorf("snapshot JSON lacks schema field %s: %s", field, blob)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip diverged:\nbefore: %+v\nafter:  %+v", snap, back)
	}
	if back.Gauges["index.postings"] != 456 {
		t.Errorf("gauge func not evaluated into snapshot: %+v", back.Gauges)
	}
	gs := back.Histograms["game.steps"]
	if gs.Count != 5 || len(gs.Buckets) != 4 {
		t.Errorf("histogram snapshot = %+v, want 5 observations in 4 buckets", gs)
	}
	// Identical state must encode identically (map keys sort).
	blob2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Errorf("snapshot encoding unstable:\n%s\n%s", blob, blob2)
	}
}
