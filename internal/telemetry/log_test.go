package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedLogger(w *bytes.Buffer, min Level) *Logger {
	l := NewLogger(w, min)
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLoggerLineFormat(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo)
	l.Info("search done", String("proc", "ftp_retrieve_glob"), Int("findings", 3), F64("elapsed_ms", 1.5))
	got := buf.String()
	want := `{"ts":"2026-08-07T12:00:00Z","level":"info","msg":"search done","proc":"ftp_retrieve_glob","findings":3,"elapsed_ms":1.5}` + "\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
	// Every line must be valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"level":"warn"`) || !strings.Contains(lines[1], `"level":"error"`) {
		t.Fatalf("unexpected lines: %q", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerEscaping(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelDebug)
	l.Info("quote\" slash\\ nl\n tab\t ctl\x01", String("bad", "\xff\xfe"), String("uni", "héllo"))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v\n%q", err, buf.String())
	}
	if m["msg"] != "quote\" slash\\ nl\n tab\t ctl\x01" {
		t.Errorf("msg round-trip = %q", m["msg"])
	}
	if m["bad"] != "��" {
		t.Errorf("invalid UTF-8 = %q, want replacement runes", m["bad"])
	}
	if m["uni"] != "héllo" {
		t.Errorf("multibyte UTF-8 mangled: %q", m["uni"])
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	// Must not panic.
	l.Debug("x")
	l.Info("x", Int("k", 1))
	l.Warn("x")
	l.Error("x")
	l.Log(LevelError, "x")
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("m", Int("g", int64(g)), Int("i", int64(i)))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", line, err)
		}
	}
}
