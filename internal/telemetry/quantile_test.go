package telemetry

import (
	"encoding/json"
	"testing"
)

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %d, want 0", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
}

func TestQuantileSingleBucketExact(t *testing.T) {
	// Bucket 1 is [1, 1]: any quantile of all-ones must be exactly 1.
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %d, want 1", q, got)
		}
	}
}

func TestQuantileWithinBucketBounds(t *testing.T) {
	// The estimate's error is bounded by the bucket holding the target
	// rank: for a single observed value v, every quantile must land in
	// v's bucket.
	for _, v := range []int64{3, 100, 1000, 1 << 20} {
		h := &Histogram{}
		h.Observe(v)
		lo, hi := BucketBounds(BucketOf(v))
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Errorf("value %d: Quantile(%v) = %d outside bucket [%d, %d]", v, q, got, lo, hi)
			}
		}
	}
}

func TestQuantileRankSelection(t *testing.T) {
	// 90 small values and 10 large ones: p50 must report the small
	// bucket, p99 the large one.
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(2) // bucket [2, 3]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512, 1023]
	}
	if got := h.Quantile(0.5); got < 2 || got > 3 {
		t.Errorf("p50 = %d, want within [2, 3]", got)
	}
	if got := h.Quantile(0.99); got < 512 || got > 1023 {
		t.Errorf("p99 = %d, want within [512, 1023]", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 4096; v *= 2 {
		for i := int64(0); i < v%7+1; i++ {
			h.Observe(v)
		}
	}
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %d < previous %d; quantiles must be monotonic", q, got, prev)
		}
		prev = got
	}
}

func TestQuantileEdges(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5) // bucket 0 estimates 0
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("non-positive-only quantile = %d, want 0", got)
	}
	h2 := &Histogram{}
	h2.Observe(1 << 40) // overflow bucket estimates its lower bound
	lo, _ := BucketBounds(HistBuckets - 1)
	if got := h2.Quantile(0.5); got != lo {
		t.Errorf("overflow quantile = %d, want %d", got, lo)
	}
	// Out-of-range q clamps instead of misbehaving.
	if got := h2.Quantile(-1); got != lo {
		t.Errorf("Quantile(-1) = %d, want %d", got, lo)
	}
	if got := h2.Quantile(2); got != lo {
		t.Errorf("Quantile(2) = %d, want %d", got, lo)
	}
}

func TestQuantileAllInOverflowBucket(t *testing.T) {
	// Every observation in the overflow bucket: all quantiles estimate
	// the bucket's lower bound (it has no finite interior), count and
	// sum stay exact.
	h := &Histogram{}
	const n = 1000
	v := int64(1) << 45
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
	lo, _ := BucketBounds(HistBuckets - 1)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != lo {
			t.Errorf("Quantile(%v) = %d, want overflow lower bound %d", q, got, lo)
		}
	}
	if h.Count() != n || h.Sum() != n*v {
		t.Errorf("count/sum = %d/%d, want %d/%d", h.Count(), h.Sum(), n, n*v)
	}
}

func TestQuantileMixedZeroAndOverflow(t *testing.T) {
	// Half non-positive, half overflow: the two interpolation-free
	// buckets must still yield monotonic, in-bucket estimates.
	h := &Histogram{}
	for i := 0; i < 50; i++ {
		h.Observe(0)
		h.Observe(1 << 50)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("p25 = %d, want 0", got)
	}
	lo, _ := BucketBounds(HistBuckets - 1)
	if got := h.Quantile(0.99); got != lo {
		t.Errorf("p99 = %d, want %d", got, lo)
	}
}

func TestSnapshotCarriesQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("test.latency")
	for i := 0; i < 90; i++ {
		h.Observe(2)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Histograms map[string]struct {
			P50 int64 `json:"p50"`
			P90 int64 `json:"p90"`
			P99 int64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	hs, ok := snap.Histograms["test.latency"]
	if !ok {
		t.Fatal("snapshot lacks test.latency histogram")
	}
	if hs.P50 < 2 || hs.P50 > 3 {
		t.Errorf("snapshot p50 = %d, want within [2, 3]", hs.P50)
	}
	if hs.P90 > hs.P99 {
		t.Errorf("snapshot p90 %d > p99 %d", hs.P90, hs.P99)
	}
	if hs.P99 < 512 || hs.P99 > 1023 {
		t.Errorf("snapshot p99 = %d, want within [512, 1023]", hs.P99)
	}
}
