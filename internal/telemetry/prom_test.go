package telemetry

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestPromExpositionRendersAllKinds(t *testing.T) {
	r := New()
	r.Counter("serve.requests").Add(42)
	r.Gauge("serve.inflight").Set(3)
	r.GaugeFunc("serve.uptime_s", func() int64 { return 7 })
	h := r.Histogram("serve.latency_us")
	h.Observe(0)
	h.Observe(5)
	h.Observe(900)
	sp := r.Stage("search.image").Start()
	sp.End()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE firmup_serve_requests_total counter\nfirmup_serve_requests_total 42\n",
		"# TYPE firmup_serve_inflight gauge\nfirmup_serve_inflight 3\n",
		"# TYPE firmup_serve_uptime_s gauge\nfirmup_serve_uptime_s 7\n",
		"# TYPE firmup_serve_latency_us histogram\n",
		`firmup_serve_latency_us_bucket{le="0"} 1`,
		`firmup_serve_latency_us_bucket{le="+Inf"} 3`,
		"firmup_serve_latency_us_sum 905\n",
		"firmup_serve_latency_us_count 3\n",
		"# TYPE firmup_search_image_calls_total counter\n",
		"firmup_search_image_seconds_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("self-validation: %v\n%s", err, out)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("x.h")
	for _, v := range []int64{1, 2, 2, 5, 100, 1 << 40} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	// The overflow observation has no finite bucket: only +Inf covers it.
	out := buf.String()
	if !strings.Contains(out, `firmup_x_h_bucket{le="+Inf"} 6`) {
		t.Errorf("+Inf bucket must count the overflow observation:\n%s", out)
	}
	if !strings.Contains(out, "firmup_x_h_count 6\n") {
		t.Errorf("count mismatch:\n%s", out)
	}
}

func TestPromNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q", buf.String())
	}
}

func TestPromDeterministicOrder(t *testing.T) {
	build := func() string {
		r := New()
		r.Counter("b.two").Inc()
		r.Counter("a.one").Inc()
		r.Gauge("z.g").Set(1)
		r.Histogram("m.h").Observe(3)
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared sample": "some_metric 1\n",
		"bad value":         "# TYPE m counter\nm notanumber\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf/count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted malformed exposition", name)
		}
	}
}

// TestPromExpositionFile validates a scrape captured from a live
// firmupd (the CI smoke step curls /metrics?format=prom into a file and
// points FIRMUPD_PROM_FILE at it). Skipped when the variable is unset.
func TestPromExpositionFile(t *testing.T) {
	path := os.Getenv("FIRMUPD_PROM_FILE")
	if path == "" {
		t.Skip("FIRMUPD_PROM_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(data); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	out := string(data)
	for _, want := range []string{
		"firmup_serve_requests_total",
		"# TYPE firmup_serve_latency_us histogram",
		"firmup_serve_uptime_s",
		"firmup_serve_corpus_age_s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live scrape lacks %q", want)
		}
	}
}
