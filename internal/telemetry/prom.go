package telemetry

// Prometheus text exposition (format version 0.0.4) over a Registry.
// The mapping from the package's flat dotted names:
//
//   - every name is prefixed "firmup_" and non-[a-zA-Z0-9_] runes
//     become "_" ("serve.latency_us" → "firmup_serve_latency_us"),
//   - counters gain the conventional "_total" suffix,
//   - gauges (including GaugeFuncs) are exported verbatim,
//   - power-of-two histograms become native Prometheus histograms:
//     cumulative `le` buckets at each bucket's inclusive upper bound
//     (0, 1, 3, 7, ... 2^i-1), the overflow bucket folded into +Inf,
//     plus the exact _sum and _count,
//   - stage timers become two counters, <stage>_calls_total and
//     <stage>_seconds_total.
//
// Output is deterministic (sorted names) so it can be golden-tested,
// and self-consistent per scrape: a histogram's +Inf bucket equals its
// _count even under concurrent Observe traffic.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// promName maps a registry metric name to its Prometheus form.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("firmup_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry's current metrics in the
// Prometheus text exposition format. A nil registry renders nothing.
// The first write error aborts the scrape and is returned.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", pn, pn, r.counters[name].Value()); err != nil {
			return err
		}
	}
	gauges := make(map[string]int64, len(r.gauges)+len(r.funcs))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, fn := range r.funcs {
		gauges[name] = fn()
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		if err := writePromHistogram(w, promName(name), r.hists[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.stages) {
		pn := promName(name)
		s := r.stages[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s_calls_total counter\n%s_calls_total %d\n", pn, pn, s.Calls()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_seconds_total counter\n%s_seconds_total %s\n", pn, pn,
			strconv.FormatFloat(float64(s.Ns())/1e9, 'f', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one power-of-two histogram as cumulative
// le buckets. Buckets are emitted from 0 through the highest non-empty
// finite bucket; the overflow bucket has no finite upper bound and is
// carried by +Inf. The +Inf count is the bucket sum (not the atomic
// count) so the exposition is self-consistent under concurrent
// observation.
func writePromHistogram(w io.Writer, pn string, h *Histogram) error {
	var counts [HistBuckets]int64
	for i := range counts {
		counts[i] = h.Bucket(i)
	}
	top := 0
	for i := 0; i < HistBuckets-1; i++ {
		if counts[i] > 0 {
			top = i
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		_, hi := BucketBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, hi, cum); err != nil {
			return err
		}
	}
	total := cum + counts[HistBuckets-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum(), pn, total); err != nil {
		return err
	}
	return nil
}

// ValidateExposition checks a Prometheus text scrape for structural
// validity: every sample line parses, every sample's metric family was
// TYPE-declared, histogram buckets are cumulative non-decreasing and
// end in a +Inf bucket that equals the family's _count. It is the
// parser check the CI smoke step and the serve tests run against
// /metrics?format=prom output.
func ValidateExposition(data []byte) error {
	type histState struct {
		lastLE   float64
		lastCum  int64
		infCount int64
		hasInf   bool
		count    int64
		hasCount bool
	}
	types := map[string]string{}
	hists := map[string]*histState{}
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) >= 2 && parts[1] == "TYPE" {
				if len(parts) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				name, typ := parts[2], parts[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return fmt.Errorf("line %d: %s re-declared as %s (was %s)", lineNo, name, typ, prev)
				}
				types[name] = typ
				if typ == "histogram" {
					hists[name] = &histState{lastLE: -1}
				}
			}
			continue
		}
		// Sample line: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				return fmt.Errorf("line %d: unterminated label set: %q", lineNo, line)
			}
			labels = rest[i+1 : j]
			rest = name + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name = fields[0]
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", lineNo, fields[1], err)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if _, ok := hists[base]; ok {
					family = base
				}
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		hs := hists[family]
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := parseLE(labels)
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
			}
			if le <= hs.lastLE {
				return fmt.Errorf("line %d: %s buckets not in increasing le order", lineNo, family)
			}
			if int64(val) < hs.lastCum {
				return fmt.Errorf("line %d: %s buckets not cumulative", lineNo, family)
			}
			hs.lastLE, hs.lastCum = le, int64(val)
			if math.IsInf(le, 1) {
				hs.hasInf, hs.infCount = true, int64(val)
			}
		case strings.HasSuffix(name, "_count"):
			hs.count, hs.hasCount = int64(val), true
		}
	}
	for name, hs := range hists {
		if !hs.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if !hs.hasCount {
			return fmt.Errorf("histogram %s has no _count", name)
		}
		if hs.infCount != hs.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != count %d", name, hs.infCount, hs.count)
		}
	}
	return nil
}

// parseLE extracts the le label value from a bucket's label set.
func parseLE(labels string) (float64, bool) {
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || strings.TrimSpace(k) != "le" {
			continue
		}
		v = strings.Trim(strings.TrimSpace(v), `"`)
		if v == "+Inf" {
			return math.Inf(1), true
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}
