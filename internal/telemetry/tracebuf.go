package telemetry

// Tail-based trace retention. Uniform head sampling keeps a
// representative slice of traffic but almost never the request you are
// debugging: the slow ones live in the tail. A TraceBuffer therefore
// looks at every completed trace after the fact and retains two
// overlapping views:
//
//   - the slowest-N requests seen since startup (replacement by
//     duration, so a new tail entrant evicts the fastest retained one),
//   - a ring of the most recent requests that exceeded a fixed latency
//     threshold, so a burst of slowness is visible even after faster
//     but still-tail requests have rotated the slowest-N view.
//
// Retention deep-copies the trace into its JSON snapshot form and the
// trace itself always goes back to the pool, so the buffer never pins
// pooled memory and the copy cost is paid only for retained (tail)
// traces.

import (
	"sync"
	"time"
)

// TraceBuffer retains the tail of completed request traces. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type TraceBuffer struct {
	mu        sync.Mutex
	keep      int
	threshold time.Duration
	recentCap int
	slowest   []TraceSnapshot // sorted by DurUS descending, len <= keep
	recent    []TraceSnapshot // ring of threshold exceeders
	recentPos int             // next ring write slot once full
	offered   int64
	retained  int64
}

// NewTraceBuffer sizes a buffer: keep slowest-N (<=0 selects 16),
// threshold for the recent ring (<=0 disables threshold capture), and
// the ring's capacity (<=0 selects 32).
func NewTraceBuffer(keep int, threshold time.Duration, recentCap int) *TraceBuffer {
	if keep <= 0 {
		keep = 16
	}
	if recentCap <= 0 {
		recentCap = 32
	}
	return &TraceBuffer{keep: keep, threshold: threshold, recentCap: recentCap}
}

// Offer consumes one completed trace: its total duration is stamped to
// dur, it is retained (as a deep copy) if it lands in either tail view,
// and the trace itself is returned to the pool either way — the caller
// must not use t afterwards. Reports whether the trace was retained.
// On a nil buffer the trace is still freed.
func (b *TraceBuffer) Offer(t *Trace, dur time.Duration) bool {
	if t == nil {
		return false
	}
	if b == nil {
		t.Free()
		return false
	}
	t.finish(dur)
	durUS := float64(dur) / 1e3
	b.mu.Lock()
	b.offered++
	keepSlow := len(b.slowest) < b.keep ||
		durUS > b.slowest[len(b.slowest)-1].DurUS
	keepRecent := b.threshold > 0 && dur >= b.threshold
	kept := false
	if keepSlow || keepRecent {
		snap := t.Snapshot()
		if keepSlow {
			b.insertSlowest(snap)
		}
		if keepRecent {
			b.pushRecent(snap)
		}
		b.retained++
		kept = true
	}
	b.mu.Unlock()
	t.Free()
	return kept
}

// insertSlowest places snap into the duration-sorted slowest view,
// evicting the fastest entry when full. Called with mu held.
func (b *TraceBuffer) insertSlowest(snap TraceSnapshot) {
	i := len(b.slowest)
	for i > 0 && b.slowest[i-1].DurUS < snap.DurUS {
		i--
	}
	if len(b.slowest) < b.keep {
		b.slowest = append(b.slowest, TraceSnapshot{})
	} else if i == len(b.slowest) {
		return // raced below the floor; nothing to evict for it
	}
	copy(b.slowest[i+1:], b.slowest[i:])
	b.slowest[i] = snap
}

// pushRecent appends snap to the threshold ring, overwriting the oldest
// entry once the ring is full. Called with mu held.
func (b *TraceBuffer) pushRecent(snap TraceSnapshot) {
	if len(b.recent) < b.recentCap {
		b.recent = append(b.recent, snap)
		return
	}
	b.recent[b.recentPos] = snap
	b.recentPos = (b.recentPos + 1) % b.recentCap
}

// RequestsSnapshot is the GET /debug/requests response schema: the
// retained tail traces plus the buffer's accounting.
type RequestsSnapshot struct {
	Schema   int   `json:"schema"`
	Offered  int64 `json:"offered"`
	Retained int64 `json:"retained"`
	// ThresholdUS is the recent-ring capture threshold; 0 when disabled.
	ThresholdUS int64 `json:"threshold_us"`
	// Slowest holds the slowest-N retained traces, slowest first.
	Slowest []TraceSnapshot `json:"slowest"`
	// Recent holds the most recent threshold-exceeding traces, newest
	// first.
	Recent []TraceSnapshot `json:"recent_over_threshold"`
}

// Snapshot copies the buffer's current state. On a nil buffer it
// returns an empty snapshot carrying only the schema version.
func (b *TraceBuffer) Snapshot() RequestsSnapshot {
	snap := RequestsSnapshot{
		Schema:  SchemaVersion,
		Slowest: []TraceSnapshot{},
		Recent:  []TraceSnapshot{},
	}
	if b == nil {
		return snap
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	snap.Offered = b.offered
	snap.Retained = b.retained
	snap.ThresholdUS = b.threshold.Microseconds()
	snap.Slowest = append(snap.Slowest, b.slowest...)
	// Unroll the ring newest-first: entries before recentPos are newer
	// than the ones at and after it.
	for i := len(b.recent) - 1; i >= 0; i-- {
		pos := i
		if len(b.recent) == b.recentCap {
			pos = (b.recentPos + i) % b.recentCap
		}
		snap.Recent = append(snap.Recent, b.recent[pos])
	}
	return snap
}
