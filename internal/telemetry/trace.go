package telemetry

// Request-scoped tracing: a Trace is one request's span tree — flat,
// pooled, and cheap enough to record on every sampled request of a
// serving daemon. The design follows the package's two contracts:
//
//   - Nil safety. (*Trace)(nil).Start returns an inert SpanRef whose
//     every method is a no-op, so instrumented layers thread a *Trace
//     through unconditionally and an unsampled request costs one nil
//     check per span site — no clock read, no allocation.
//   - Bounded memory. Spans live in one slice whose capacity survives
//     pool round-trips; a trace stops recording (and counts the drops)
//     at MaxTraceSpans instead of growing without bound.
//
// Spans form a tree through parent IDs: SpanID 0 is "no parent" (a
// root span), and every Start returns the new span's ID for its
// children to reference. IDs are 1-based indexes into the trace's span
// slice, so resolving a parent is an index, not a search. Concurrent
// Start/End/SetAttr calls are safe (the sealed corpus's shard fan-out
// records spans from parallel goroutines); ordering between siblings
// is whatever the scheduler produced.

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// TraceID is a 64-bit request trace identifier, rendered as 16 lowercase
// hex digits in headers, response JSON and logs. 0 is "no trace".
type TraceID uint64

// String renders the ID as 16 hex digits ("00000000deadbeef").
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the 16-hex-digit header form. A malformed or
// zero ID reports ok=false.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// NewTraceID returns a fresh random non-zero trace ID.
func NewTraceID() TraceID {
	for {
		if v := rand.Uint64(); v != 0 {
			return TraceID(v)
		}
	}
}

// MaxTraceSpans bounds one trace's span count; Starts past the cap are
// dropped (and counted) rather than grown.
const MaxTraceSpans = 1024

// SpanID identifies one span within its trace; 0 means "no span" and is
// the parent of root spans. A SpanID is only meaningful inside the
// trace that issued it.
type SpanID int32

// spanAttr is one typed span attribute.
type spanAttr struct {
	key   string
	num   int64
	str   string
	isStr bool
}

// spanRec is one recorded span. Records and their attr slices are
// reused across pool round-trips.
type spanRec struct {
	name    string
	parent  SpanID
	startNS int64 // offset from the trace's t0
	durNS   int64 // -1 while the span is open
	attrs   []spanAttr
}

// Trace is one request's span tree. Create with NewTrace, record spans
// with Start, then hand the finished trace to a TraceBuffer (which
// returns it to the pool) or call Free directly. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Trace struct {
	mu      sync.Mutex
	id      TraceID
	t0      time.Time
	durNS   int64
	spans   []spanRec
	dropped int
}

// tracePool recycles traces: a steady-state server allocates span
// storage only until its deepest request shape has been seen.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns a reset pooled trace with the given ID, its clock
// started now.
func NewTrace(id TraceID) *Trace {
	t := tracePool.Get().(*Trace)
	t.id = id
	t.t0 = time.Now()
	t.durNS = 0
	t.dropped = 0
	t.spans = t.spans[:0]
	return t
}

// Free returns the trace to the pool. The caller must not touch the
// trace afterwards. No-op on nil.
func (t *Trace) Free() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// ID reports the trace's identifier; 0 on a nil trace.
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// Start opens a span under the given parent (0 for a root span) and
// returns its handle. On a nil trace, or past MaxTraceSpans, the
// returned SpanRef is inert and the clock is never read.
func (t *Trace) Start(name string, parent SpanID) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	now := time.Now()
	t.mu.Lock()
	if len(t.spans) >= MaxTraceSpans {
		t.dropped++
		t.mu.Unlock()
		return SpanRef{}
	}
	var rec *spanRec
	if len(t.spans) < cap(t.spans) {
		t.spans = t.spans[:len(t.spans)+1]
		rec = &t.spans[len(t.spans)-1]
		rec.attrs = rec.attrs[:0]
	} else {
		t.spans = append(t.spans, spanRec{})
		rec = &t.spans[len(t.spans)-1]
	}
	rec.name = name
	rec.parent = parent
	rec.startNS = int64(now.Sub(t.t0))
	rec.durNS = -1
	id := SpanID(len(t.spans))
	t.mu.Unlock()
	return SpanRef{t: t, id: id}
}

// SpanRef is a handle on one open span. The zero SpanRef is inert:
// every method is a no-op, so callers hold and use refs
// unconditionally whether or not the request is traced.
type SpanRef struct {
	t  *Trace
	id SpanID
}

// Active reports whether the ref points at a recorded span.
func (s SpanRef) Active() bool { return s.t != nil }

// ID returns the span's ID for use as a child's parent; 0 when inert.
func (s SpanRef) ID() SpanID { return s.id }

// End closes the span. Ending twice keeps the first duration; no-op
// when inert.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	rec := &s.t.spans[s.id-1]
	if rec.durNS < 0 {
		rec.durNS = int64(now.Sub(s.t.t0)) - rec.startNS
	}
	s.t.mu.Unlock()
}

// SetAttr attaches an integer attribute (shard index, batch size,
// candidates examined, game steps...). No-op when inert.
func (s SpanRef) SetAttr(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.id-1]
	rec.attrs = append(rec.attrs, spanAttr{key: key, num: v})
	s.t.mu.Unlock()
}

// SetAttrStr attaches a string attribute. No-op when inert.
func (s SpanRef) SetAttrStr(key, v string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.id-1]
	rec.attrs = append(rec.attrs, spanAttr{key: key, str: v, isStr: true})
	s.t.mu.Unlock()
}

// Finish stamps the trace's total duration as time since NewTrace and
// closes any still-open spans at that instant, so a snapshot is always
// well-formed. Returns the duration; 0 on nil.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.t0)
	t.finish(d)
	return d
}

// finish is Finish with a caller-measured duration (the serve layer
// measures from admission, slightly before NewTrace).
func (t *Trace) finish(d time.Duration) {
	t.mu.Lock()
	t.durNS = int64(d)
	for i := range t.spans {
		if t.spans[i].durNS < 0 {
			t.spans[i].durNS = int64(d) - t.spans[i].startNS
			if t.spans[i].durNS < 0 {
				t.spans[i].durNS = 0
			}
		}
	}
	t.mu.Unlock()
}

// TraceSpan is one span of a trace snapshot, in JSON form. Parent 0
// marks a root span.
type TraceSpan struct {
	ID      int32          `json:"id"`
	Parent  int32          `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS float64        `json:"start_us"`
	DurUS   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is a deep, JSON-encodable copy of a completed trace.
type TraceSnapshot struct {
	TraceID string  `json:"trace_id"`
	Start   string  `json:"start"`
	DurUS   float64 `json:"dur_us"`
	// DroppedSpans counts Starts lost to the MaxTraceSpans cap.
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []TraceSpan `json:"spans"`
}

// Snapshot deep-copies the trace into its JSON form. Safe to call on a
// live trace; returns the zero snapshot on nil.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		TraceID:      t.id.String(),
		Start:        t.t0.UTC().Format(time.RFC3339Nano),
		DurUS:        float64(t.durNS) / 1e3,
		DroppedSpans: t.dropped,
		Spans:        make([]TraceSpan, len(t.spans)),
	}
	for i := range t.spans {
		rec := &t.spans[i]
		ts := TraceSpan{
			ID:      int32(i + 1),
			Parent:  int32(rec.parent),
			Name:    rec.name,
			StartUS: float64(rec.startNS) / 1e3,
			DurUS:   float64(rec.durNS) / 1e3,
		}
		if rec.durNS < 0 {
			ts.DurUS = 0 // snapshot of a still-open span
		}
		if len(rec.attrs) > 0 {
			ts.Attrs = make(map[string]any, len(rec.attrs))
			for _, a := range rec.attrs {
				if a.isStr {
					ts.Attrs[a.key] = a.str
				} else {
					ts.Attrs[a.key] = a.num
				}
			}
		}
		snap.Spans[i] = ts
	}
	return snap
}
