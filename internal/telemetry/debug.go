package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name: expvar.Publish
// panics on duplicates, and multiple debug servers (or restarts in
// tests) may come and go within one process.
var publishOnce sync.Once

// registryHolder lets the single published expvar track whichever
// registry the most recent ServeDebug call exposed.
var registryHolder struct {
	mu sync.Mutex
	r  *Registry
}

// ServeDebug starts an HTTP server on addr exposing the standard Go
// debugging surface for live inspection of long runs:
//
//	/debug/vars          expvar (includes the registry as "firmup")
//	/debug/pprof/...     net/http/pprof profiles
//	/debug/firmup        the registry's JSON snapshot, pretty-printed
//
// It returns the bound address (useful with ":0") and never blocks;
// the server runs until the process exits. The registry may be nil —
// the endpoints then serve empty snapshots, which still makes pprof
// available.
func ServeDebug(addr string, r *Registry) (string, error) {
	registryHolder.mu.Lock()
	registryHolder.r = r
	registryHolder.mu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("firmup", expvar.Func(func() any {
			registryHolder.mu.Lock()
			reg := registryHolder.r
			registryHolder.mu.Unlock()
			return reg.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/firmup", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		blob, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(blob, '\n'))
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
