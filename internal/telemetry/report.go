package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Report is a structured per-run report: what tool ran, with what
// configuration, for how long, and the full metrics snapshot it
// accumulated. The cmd tools write one with -report out.json.
type Report struct {
	Schema int `json:"schema"`
	// Tool is the producing command ("firmup", "fwcrawl", "fwdump").
	Tool string `json:"tool"`
	// Started is the run's start time, RFC 3339 UTC.
	Started string `json:"started"`
	// WallNs is the run's total wall time in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// Config records the knobs that shape the run's performance
	// profile (worker budget, cache and index enablement).
	Config ReportConfig `json:"config"`
	// Metrics is the session registry's final snapshot.
	Metrics Snapshot `json:"metrics"`
}

// ReportConfig is the run configuration block of a Report.
type ReportConfig struct {
	Workers    int  `json:"workers"`
	BlockCache bool `json:"block_cache"`
	Index      bool `json:"index"`
}

// NewReport starts a report for the named tool, stamping the start
// time. Finish it with Finish and write it with WriteFile.
func NewReport(tool string, cfg ReportConfig) *Report {
	return &Report{
		Schema:  SchemaVersion,
		Tool:    tool,
		Started: time.Now().UTC().Format(time.RFC3339),
		Config:  cfg,
	}
}

// Finish stamps the wall time (relative to the report's Started time)
// and captures the registry's final snapshot. A nil registry yields an
// empty metrics block.
func (rep *Report) Finish(r *Registry) {
	if t0, err := time.Parse(time.RFC3339, rep.Started); err == nil {
		rep.WallNs = int64(time.Since(t0))
	}
	rep.Metrics = r.Snapshot()
}

// WriteFile marshals the report as indented JSON to path.
func (rep *Report) WriteFile(path string) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ErrBadReport reports a run report that failed validation.
var ErrBadReport = errors.New("telemetry: invalid report")

// ParseReport decodes and validates a report: the schema version must
// match, the tool must be named, and the metrics block must be
// present. Structural validation only — which metrics a given tool
// must emit is the caller's contract.
func ParseReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrBadReport, rep.Schema, SchemaVersion)
	}
	if rep.Tool == "" {
		return nil, fmt.Errorf("%w: missing tool", ErrBadReport)
	}
	if rep.Metrics.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: metrics schema %d, want %d", ErrBadReport, rep.Metrics.Schema, SchemaVersion)
	}
	return &rep, nil
}
