// Package telemetry is the pipeline's dependency-free metrics core:
// atomic counters, gauges, bounded power-of-two histograms and span
// timers, grouped under a Registry with a versioned JSON snapshot
// encoding.
//
// The package is built around two contracts the instrumented hot paths
// rely on:
//
//   - Nil safety. Every method on every type — including the Registry
//     itself — is a no-op (or returns the zero value) on a nil
//     receiver. Instrumented code therefore holds plain metric
//     pointers obtained once at session setup and calls them
//     unconditionally; a disabled session simply holds nils.
//   - No allocation when disabled. A nil Registry hands out nil
//     metrics, and operations on nil metrics neither allocate nor read
//     the clock, so disabled instrumentation costs one predictable
//     branch per call site.
//
// Metrics are identified by flat dotted names ("game.steps",
// "strand.cache.hits"); the set of names a component records is its
// telemetry schema, snapshotted by Registry.Snapshot.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reports the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds non-positive observations; bucket b (1 ≤ b < HistBuckets-1)
// holds values in [2^(b-1), 2^b - 1]; the last bucket is the overflow
// bucket for everything at or above 2^(HistBuckets-2).
const HistBuckets = 32

// Histogram is a bounded power-of-two histogram: observations land in
// the bucket of their bit length, so the value range [1, 2^30) is
// covered by 30 buckets with relative resolution 2x, and anything
// larger overflows into the final bucket instead of growing the
// histogram. Count and sum are tracked exactly.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// BucketOf returns the bucket index an observation of v lands in.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > HistBuckets-1 {
		return HistBuckets - 1
	}
	return b
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
// The overflow bucket's hi is math.MaxInt64.
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return math.MinInt64, 0
	case i >= HistBuckets-1:
		return 1 << (HistBuckets - 2), math.MaxInt64
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketOf(v)].Add(1)
}

// Count reports the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the exact sum of all observations; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket reports the observation count of bucket i; 0 on a nil
// histogram or an out-of-range index.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values
// from the bucket counts: the bucket holding the target rank is located
// and the value is linearly interpolated across the bucket's value
// range, so the estimate's error is bounded by the bucket's 2x
// resolution. Bucket 0 (non-positive observations) estimates 0 and the
// overflow bucket estimates its lower bound, since neither has a finite
// interior to interpolate over. Returns 0 on a nil or empty histogram.
//
// The count and bucket loads are not one atomic cut: under concurrent
// Observe traffic the estimate reflects some near-current state, which
// is the precision a bucketed quantile has anyway.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == 0 {
				return 0
			}
			lo, hi := BucketBounds(i)
			if i == HistBuckets-1 {
				return lo
			}
			frac := float64(rank-cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	// Bucket sums can trail the count under concurrent observation; fall
	// back to the highest non-empty bucket's estimate.
	for i := HistBuckets - 1; i > 0; i-- {
		if h.buckets[i].Load() > 0 {
			lo, hi := BucketBounds(i)
			if i == HistBuckets-1 {
				return lo
			}
			return hi
		}
	}
	return 0
}

// Stage accumulates wall time and invocation count for one pipeline
// stage. Usage:
//
//	sp := stage.Start()
//	... work ...
//	sp.End()
//
// Start on a nil stage returns an inert span without reading the
// clock, so a disabled stage costs two nil checks and nothing else.
type Stage struct {
	calls atomic.Int64
	ns    atomic.Int64
}

// Span is one in-flight Stage measurement. The zero Span is inert.
type Span struct {
	stage *Stage
	t0    time.Time
}

// Start opens a span. On a nil stage the returned span is inert.
func (s *Stage) Start() Span {
	if s == nil {
		return Span{}
	}
	return Span{stage: s, t0: time.Now()}
}

// End closes the span, accumulating its wall time into the stage.
// No-op on an inert span; a span must be ended at most once.
func (sp Span) End() {
	if sp.stage == nil {
		return
	}
	sp.stage.calls.Add(1)
	sp.stage.ns.Add(int64(time.Since(sp.t0)))
}

// Calls reports the number of completed spans; 0 on a nil stage.
func (s *Stage) Calls() int64 {
	if s == nil {
		return 0
	}
	return s.calls.Load()
}

// Ns reports the accumulated wall time in nanoseconds; 0 on a nil
// stage.
func (s *Stage) Ns() int64 {
	if s == nil {
		return 0
	}
	return s.ns.Load()
}

// Registry is a named collection of metrics: one per analysis session,
// typically. A nil Registry is the disabled state — every accessor
// returns nil, which the metric types accept — so "telemetry off" is
// expressed by never allocating a Registry at all. A Registry is safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	stages   map[string]*Stage
	funcs    map[string]func() int64
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		stages:   map[string]*Stage{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Stage returns the named stage timer, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[name]
	if !ok {
		s = &Stage{}
		r.stages[name] = s
	}
	return s
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// (e.g. an interner's current size). Re-registering a name replaces the
// previous function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// names returns the sorted metric names of one kind, for deterministic
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
