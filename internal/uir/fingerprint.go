package uir

import "math/bits"

// SectionRanges are the executable's code and data address ranges, the
// same ranges strand canonicalization uses for offset elimination. A
// zero range (Lo == Hi) matches nothing.
type SectionRanges struct {
	TextLo, TextHi uint32
	DataLo, DataHi uint32
}

// Fingerprint is a 128-bit structural hash of a lifted basic block,
// computed before strand extraction. It is the key of the analyzer's
// block canonicalization cache: two blocks with equal fingerprints
// (under the same extraction context, which the caller folds into the
// seed) have identical statement streams up to hash collision, and
// therefore — extraction being a pure function of the statement stream
// and its options — identical canonical strands.
//
// The hash is normalized for addresses:
//
//   - The block's own Addr and Size are not hashed, so identical code
//     placed at different offsets collides.
//   - Constants inside the text or data ranges contribute their offset
//     from the section base rather than their absolute value, so
//     identical code whose section-relative layout matches collides
//     across load bases.
//   - A constant operand's ConstKind annotation is not hashed:
//     extraction classifies constants by the section ranges, never by
//     the lifter's annotation.
//
// The hash is non-cryptographic (two independently mixed 64-bit lanes);
// at 128 bits, accidental collisions are negligible for any realistic
// corpus, and adversarial inputs are out of scope for an in-process
// cache.
type Fingerprint [2]uint64

// fpHash accumulates the two lanes. Lane a is FNV-1a over the 64-bit
// word stream; lane b is a splitmix-style multiply-rotate mix. The
// lanes use unrelated mixing so a collision in one is independent of
// the other.
type fpHash struct {
	a, b uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	mixGamma    = 0x9E3779B97F4A7C15
	mixMult     = 0xBF58476D1CE4E5B9
)

func (h *fpHash) word(w uint64) {
	h.a = (h.a ^ w) * fnvPrime64
	h.b = bits.RotateLeft64(h.b^(w*mixGamma), 27) * mixMult
}

// pair packs a small tag and a 32-bit payload into one word so distinct
// field kinds never alias.
func (h *fpHash) pair(tag uint64, v uint32) {
	h.word(tag<<32 | uint64(v))
}

// Operand tags. Constants are tagged by their classification against
// the section ranges, with the section-relative offset as payload.
const (
	fpTemp uint64 = iota + 1
	fpConstPlain
	fpConstText
	fpConstData
)

func (h *fpHash) operand(o Operand, r SectionRanges) {
	if !o.IsConst {
		h.pair(fpTemp, uint32(o.Temp))
		return
	}
	switch {
	case r.TextHi > r.TextLo && o.Val >= r.TextLo && o.Val < r.TextHi:
		h.pair(fpConstText, o.Val-r.TextLo)
	case r.DataHi > r.DataLo && o.Val >= r.DataLo && o.Val < r.DataHi:
		h.pair(fpConstData, o.Val-r.DataLo)
	default:
		h.pair(fpConstPlain, o.Val)
	}
}

// Statement tags, disjoint from operand tags.
const (
	fpGet uint64 = iota + 16
	fpPut
	fpLoad
	fpStore
	fpBin
	fpUn
	fpMov
	fpSel
	fpCall
	fpExit
)

// BlockFingerprint hashes the block's statement stream under the given
// section ranges. The seed folds the extraction context (ABI, options,
// absolute section map) into the key; blocks fingerprinted under
// different seeds never collide. See Fingerprint for the normalization
// and soundness contract.
func BlockFingerprint(b *Block, r SectionRanges, seed uint64) Fingerprint {
	h := fpHash{a: fnvOffset64 ^ seed, b: seed*mixMult + mixGamma}
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case Get:
			h.pair(fpGet, uint32(v.Reg))
			h.pair(fpTemp, uint32(v.Dst))
		case Put:
			h.pair(fpPut, uint32(v.Reg))
			h.operand(v.Src, r)
		case Load:
			h.pair(fpLoad, uint32(v.Size))
			h.pair(fpTemp, uint32(v.Dst))
			h.operand(v.Addr, r)
		case Store:
			h.pair(fpStore, uint32(v.Size))
			h.operand(v.Addr, r)
			h.operand(v.Src, r)
		case Bin:
			h.pair(fpBin, uint32(v.Op))
			h.pair(fpTemp, uint32(v.Dst))
			h.operand(v.A, r)
			h.operand(v.B, r)
		case Un:
			h.pair(fpUn, uint32(v.Op))
			h.pair(fpTemp, uint32(v.Dst))
			h.operand(v.A, r)
		case Mov:
			h.pair(fpMov, 0)
			h.pair(fpTemp, uint32(v.Dst))
			h.operand(v.Src, r)
		case Sel:
			h.pair(fpSel, 0)
			h.pair(fpTemp, uint32(v.Dst))
			h.operand(v.Cond, r)
			h.operand(v.A, r)
			h.operand(v.B, r)
		case Call:
			h.pair(fpCall, 0)
			h.operand(v.Target, r)
		case Exit:
			h.pair(fpExit, uint32(v.Kind))
			if v.Kind == ExitCond {
				h.operand(v.Cond, r)
			}
			if v.Kind != ExitRet {
				h.operand(v.Target, r)
			}
		}
	}
	return Fingerprint{h.a, h.b}
}
