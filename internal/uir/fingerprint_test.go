package uir

import "testing"

// fpTestRanges is a representative layout: 4K of text at 0x400000, 4K
// of data at 0x800000.
var fpTestRanges = SectionRanges{
	TextLo: 0x400000, TextHi: 0x401000,
	DataLo: 0x800000, DataHi: 0x801000,
}

// addBlock builds a small block: t0 = get r1; t1 = add t0, c; store4
// [t1] = t0; if t1 jump target.
func addBlock(addr uint32, c Operand, target Operand) *Block {
	return &Block{
		Addr: addr,
		Size: 16,
		Stmts: []Stmt{
			Get{Dst: 0, Reg: 1},
			Bin{Dst: 1, Op: OpAdd, A: T(0), B: c},
			Store{Addr: T(1), Src: T(0), Size: 4},
			Exit{Kind: ExitCond, Cond: T(1), Target: target},
		},
	}
}

func TestBlockFingerprintSoundness(t *testing.T) {
	r := fpTestRanges
	base := addBlock(0x400100, C(8), CK(0x400200, ConstCode))
	cases := []struct {
		name    string
		a, b    *Block
		ra, rb  SectionRanges
		collide bool
	}{
		{
			// The block's own placement is not part of the key.
			name:    "identical UIR at different addresses",
			a:       base,
			b:       addBlock(0x400500, C(8), CK(0x400200, ConstCode)),
			ra:      r,
			rb:      r,
			collide: true,
		},
		{
			// In-section constants hash by section-relative offset, so
			// the same relative layout collides across load bases.
			name:    "same section-relative layout at different load bases",
			a:       addBlock(0x400100, C(8), CK(0x400200, ConstCode)),
			b:       addBlock(0x400100, C(8), CK(0x10200, ConstCode)),
			ra:      r,
			rb:      SectionRanges{TextLo: 0x10000, TextHi: 0x11000, DataLo: 0x20000, DataHi: 0x21000},
			collide: true,
		},
		{
			// The lifter's ConstKind annotation is not hashed;
			// classification is by range.
			name:    "const kind annotation ignored",
			a:       addBlock(0x400100, C(8), CK(0x400200, ConstCode)),
			b:       addBlock(0x400100, C(8), Operand{IsConst: true, Val: 0x400200}),
			ra:      r,
			rb:      r,
			collide: true,
		},
		{
			name:    "one plain operand differs",
			a:       base,
			b:       addBlock(0x400100, C(12), CK(0x400200, ConstCode)),
			ra:      r,
			rb:      r,
			collide: false,
		},
		{
			name:    "one in-section target differs",
			a:       base,
			b:       addBlock(0x400100, C(8), CK(0x400204, ConstCode)),
			ra:      r,
			rb:      r,
			collide: false,
		},
		{
			// A constant that is in-section in one layout but plain in
			// the other canonicalizes differently, so it must not
			// collide even though the raw value matches.
			name:    "same raw value, different classification",
			a:       addBlock(0x400100, C(0x400200), C(0x200)),
			b:       addBlock(0x400100, C(0x400200), C(0x200)),
			ra:      r,
			rb:      SectionRanges{TextLo: 0x500000, TextHi: 0x501000},
			collide: false,
		},
		{
			name: "temp numbering differs",
			a:    base,
			b: &Block{Addr: 0x400100, Stmts: []Stmt{
				Get{Dst: 0, Reg: 1},
				Bin{Dst: 2, Op: OpAdd, A: T(0), B: C(8)},
				Store{Addr: T(2), Src: T(0), Size: 4},
				Exit{Kind: ExitCond, Cond: T(2), Target: CK(0x400200, ConstCode)},
			}},
			ra:      r,
			rb:      r,
			collide: false,
		},
		{
			name: "operation differs",
			a:    base,
			b: &Block{Addr: 0x400100, Stmts: []Stmt{
				Get{Dst: 0, Reg: 1},
				Bin{Dst: 1, Op: OpSub, A: T(0), B: C(8)},
				Store{Addr: T(1), Src: T(0), Size: 4},
				Exit{Kind: ExitCond, Cond: T(1), Target: CK(0x400200, ConstCode)},
			}},
			ra:      r,
			rb:      r,
			collide: false,
		},
		{
			name: "store size differs",
			a:    base,
			b: &Block{Addr: 0x400100, Stmts: []Stmt{
				Get{Dst: 0, Reg: 1},
				Bin{Dst: 1, Op: OpAdd, A: T(0), B: C(8)},
				Store{Addr: T(1), Src: T(0), Size: 2},
				Exit{Kind: ExitCond, Cond: T(1), Target: CK(0x400200, ConstCode)},
			}},
			ra:      r,
			rb:      r,
			collide: false,
		},
		{
			name: "trailing statement missing",
			a:    base,
			b: &Block{Addr: 0x400100, Stmts: []Stmt{
				Get{Dst: 0, Reg: 1},
				Bin{Dst: 1, Op: OpAdd, A: T(0), B: C(8)},
				Store{Addr: T(1), Src: T(0), Size: 4},
			}},
			ra:      r,
			rb:      r,
			collide: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fa := BlockFingerprint(tc.a, tc.ra, 0)
			fb := BlockFingerprint(tc.b, tc.rb, 0)
			if (fa == fb) != tc.collide {
				t.Errorf("collide=%v, want %v\n a=%x\n b=%x", fa == fb, tc.collide, fa, fb)
			}
		})
	}
}

// Distinct seeds (extraction contexts) must key distinct cache spaces.
func TestBlockFingerprintSeed(t *testing.T) {
	b := addBlock(0x400100, C(8), CK(0x400200, ConstCode))
	if BlockFingerprint(b, fpTestRanges, 1) == BlockFingerprint(b, fpTestRanges, 2) {
		t.Fatal("different seeds collide")
	}
	if BlockFingerprint(b, fpTestRanges, 7) != BlockFingerprint(b, fpTestRanges, 7) {
		t.Fatal("fingerprint not deterministic")
	}
}

// An empty block hashes to the seeded initial state; two empty blocks
// collide, an empty and non-empty block do not.
func TestBlockFingerprintEmpty(t *testing.T) {
	e1 := &Block{Addr: 1}
	e2 := &Block{Addr: 2}
	if BlockFingerprint(e1, fpTestRanges, 3) != BlockFingerprint(e2, fpTestRanges, 3) {
		t.Fatal("empty blocks at different addresses should collide")
	}
	if BlockFingerprint(e1, fpTestRanges, 3) == BlockFingerprint(addBlock(0x400100, C(8), C(0)), fpTestRanges, 3) {
		t.Fatal("empty and non-empty block collide")
	}
}
