// Package uir defines the micro intermediate representation (UIR) that
// machine code is lifted into before strand extraction.
//
// UIR plays the role VEX-IR plays in the FirmUp paper: a small, explicit,
// side-effect-complete representation of 32-bit machine state. Every
// architectural effect of an instruction — including condition flags and
// the program counter — appears as an explicit statement, and every
// intermediate value is held in a single-assignment temporary, so basic
// blocks are in SSA form by construction (a property Algorithm 1 of the
// paper relies on).
package uir

import (
	"fmt"
	"strings"
)

// Arch identifies the source architecture of lifted code.
type Arch uint8

// Architectures supported by the lifters, matching the four prevalent
// embedded architectures evaluated in the paper.
const (
	ArchNone Arch = iota
	ArchMIPS32
	ArchARM32
	ArchPPC32
	ArchX86
)

// String returns the conventional lowercase name of the architecture.
func (a Arch) String() string {
	switch a {
	case ArchMIPS32:
		return "mips32"
	case ArchARM32:
		return "arm32"
	case ArchPPC32:
		return "ppc32"
	case ArchX86:
		return "x86"
	default:
		return "none"
	}
}

// Temp is an SSA temporary. Each Temp is assigned exactly once within a
// basic block; lifters allocate them densely from zero.
type Temp int32

// Reg names an architectural register in the lifter's arch-specific
// namespace. Condition flags and other implicit state are registers too.
type Reg uint16

// ConstKind classifies constants so the canonicalizer can perform offset
// elimination: constants that point into the binary's code or data
// sections are abstracted away, while plain integers (including stack and
// struct offsets, which the paper deliberately retains) are kept.
type ConstKind uint8

const (
	// ConstPlain is an ordinary integer constant.
	ConstPlain ConstKind = iota
	// ConstCode is an address inside the text section (jump/call target).
	ConstCode
	// ConstData is an address inside a static data section.
	ConstData
)

// Operand is either an SSA temporary or an immediate constant.
type Operand struct {
	IsConst bool
	Temp    Temp
	Val     uint32
	Kind    ConstKind
}

// T returns a temporary operand.
func T(t Temp) Operand { return Operand{Temp: t} }

// C returns a plain constant operand.
func C(v uint32) Operand { return Operand{IsConst: true, Val: v} }

// CK returns a constant operand with an explicit kind.
func CK(v uint32, k ConstKind) Operand { return Operand{IsConst: true, Val: v, Kind: k} }

// String renders the operand for debugging.
func (o Operand) String() string {
	if !o.IsConst {
		return fmt.Sprintf("t%d", o.Temp)
	}
	switch o.Kind {
	case ConstCode:
		return fmt.Sprintf("code:0x%x", o.Val)
	case ConstData:
		return fmt.Sprintf("data:0x%x", o.Val)
	default:
		return fmt.Sprintf("0x%x", o.Val)
	}
}

// Op enumerates UIR operations. All arithmetic is 32-bit with wraparound;
// comparison ops produce 0 or 1.
type Op uint8

// Binary and unary operations.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDivU
	OpDivS
	OpRemU
	OpRemS
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShrU // logical shift right
	OpShrS // arithmetic shift right
	OpCmpEQ
	OpCmpNE
	OpCmpLTU
	OpCmpLTS
	OpCmpLEU
	OpCmpLES
	// Unary.
	OpNot  // bitwise complement
	OpNeg  // two's complement negation
	OpBool // normalize to 0/1 (x != 0)
	OpSext8
	OpSext16
	OpZext8
	OpZext16

	opCount // sentinel
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDivU: "udiv", OpDivS: "sdiv", OpRemU: "urem", OpRemS: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShrU: "lshr", OpShrS: "ashr",
	OpCmpEQ: "icmp.eq", OpCmpNE: "icmp.ne",
	OpCmpLTU: "icmp.ult", OpCmpLTS: "icmp.slt",
	OpCmpLEU: "icmp.ule", OpCmpLES: "icmp.sle",
	OpNot: "not", OpNeg: "neg", OpBool: "bool",
	OpSext8: "sext8", OpSext16: "sext16",
	OpZext8: "zext8", OpZext16: "zext16",
}

// String returns the mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsUnary reports whether the op takes a single operand.
func (op Op) IsUnary() bool { return op >= OpNot && op < opCount }

// IsCommutative reports whether operand order is semantically irrelevant.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE:
		return true
	}
	return false
}

// IsCompare reports whether the op is a comparison producing 0/1.
func (op Op) IsCompare() bool { return op >= OpCmpEQ && op <= OpCmpLES }

// Stmt is a single UIR statement. The concrete types below are the only
// implementations.
type Stmt interface {
	isStmt()
	String() string
}

// Get reads an architectural register into a temporary.
type Get struct {
	Dst Temp
	Reg Reg
}

// Put writes a value to an architectural register.
type Put struct {
	Reg Reg
	Src Operand
}

// Load reads Size bytes from memory (zero-extended into the 32-bit temp).
type Load struct {
	Dst  Temp
	Addr Operand
	Size uint8 // 1, 2 or 4
}

// Store writes the low Size bytes of Src to memory.
type Store struct {
	Addr Operand
	Src  Operand
	Size uint8
}

// Bin computes a binary operation.
type Bin struct {
	Dst  Temp
	Op   Op
	A, B Operand
}

// Un computes a unary operation.
type Un struct {
	Dst Temp
	Op  Op
	A   Operand
}

// Mov copies an operand into a temporary (constant materialization or copy).
type Mov struct {
	Dst Temp
	Src Operand
}

// Sel selects A when Cond is non-zero, else B (conditional move; used by
// lifters for predicated instructions such as ARM's movCC).
type Sel struct {
	Dst  Temp
	Cond Operand
	A, B Operand
}

// Call transfers control to a procedure. Per the target ABI it implicitly
// reads the argument registers and writes the return-value register and
// the caller-saved set; the strand extractor consults the ABI for these.
type Call struct {
	Target Operand // ConstCode for direct calls, temp for indirect
}

// ExitKind distinguishes the control transfers that terminate (or appear
// inside, for conditional exits) a basic block.
type ExitKind uint8

// Exit kinds.
const (
	ExitJump  ExitKind = iota // unconditional branch
	ExitCond                  // conditional branch (Cond significant)
	ExitRet                   // procedure return
	ExitIndir                 // indirect jump through a temp
)

// Exit is a control transfer. For ExitCond, control goes to Target when
// Cond is non-zero and falls through otherwise.
type Exit struct {
	Kind   ExitKind
	Cond   Operand // meaningful for ExitCond
	Target Operand // ConstCode or temp (ExitIndir)
}

func (Get) isStmt()   {}
func (Put) isStmt()   {}
func (Load) isStmt()  {}
func (Store) isStmt() {}
func (Bin) isStmt()   {}
func (Un) isStmt()    {}
func (Mov) isStmt()   {}
func (Sel) isStmt()   {}
func (Call) isStmt()  {}
func (Exit) isStmt()  {}

func (s Get) String() string  { return fmt.Sprintf("t%d = get r%d", s.Dst, s.Reg) }
func (s Put) String() string  { return fmt.Sprintf("put r%d = %s", s.Reg, s.Src) }
func (s Load) String() string { return fmt.Sprintf("t%d = load%d %s", s.Dst, s.Size, s.Addr) }
func (s Store) String() string {
	return fmt.Sprintf("store%d %s = %s", s.Size, s.Addr, s.Src)
}
func (s Bin) String() string { return fmt.Sprintf("t%d = %s %s, %s", s.Dst, s.Op, s.A, s.B) }
func (s Un) String() string  { return fmt.Sprintf("t%d = %s %s", s.Dst, s.Op, s.A) }
func (s Mov) String() string { return fmt.Sprintf("t%d = %s", s.Dst, s.Src) }
func (s Sel) String() string {
	return fmt.Sprintf("t%d = select %s ? %s : %s", s.Dst, s.Cond, s.A, s.B)
}
func (s Call) String() string { return fmt.Sprintf("call %s", s.Target) }
func (s Exit) String() string {
	switch s.Kind {
	case ExitJump:
		return fmt.Sprintf("jump %s", s.Target)
	case ExitCond:
		return fmt.Sprintf("if %s jump %s", s.Cond, s.Target)
	case ExitRet:
		return "ret"
	default:
		return fmt.Sprintf("ijump %s", s.Target)
	}
}

// Block is one lifted basic block: the statements for all instructions in
// the block, in order, plus the block's address range in the text section.
type Block struct {
	Addr  uint32 // address of the first instruction
	Size  uint32 // byte length of the block
	Stmts []Stmt
}

// Succs returns the statically-known successor addresses of the block:
// conditional-exit targets, the final jump target, and the fallthrough
// address where applicable.
func (b *Block) Succs() []uint32 {
	var out []uint32
	fall := true
	for _, s := range b.Stmts {
		e, ok := s.(Exit)
		if !ok {
			continue
		}
		switch e.Kind {
		case ExitCond:
			if e.Target.IsConst {
				out = append(out, e.Target.Val)
			}
		case ExitJump:
			if e.Target.IsConst {
				out = append(out, e.Target.Val)
			}
			fall = false
		case ExitRet, ExitIndir:
			fall = false
		}
	}
	if fall {
		out = append(out, b.Addr+b.Size)
	}
	return out
}

// String renders the block, one statement per line.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block 0x%x (%d bytes)\n", b.Addr, b.Size)
	for _, s := range b.Stmts {
		sb.WriteString("  ")
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Proc is a lifted procedure: its entry address and basic blocks sorted by
// address.
type Proc struct {
	Name   string // empty in stripped binaries
	Entry  uint32
	Blocks []*Block
	Arch   Arch
}

// ABI describes the calling convention the lifter assumed, consumed by
// strand extraction (argument/return registers, stack pointer for the
// offset-retention rule) and by Call effect modeling.
type ABI struct {
	Arch    Arch
	ArgRegs []Reg // integer argument registers, in order
	RetReg  Reg   // return-value register
	SP      Reg   // stack pointer
	LinkReg Reg   // return-address register (0xFFFF if pushed on stack)
	Scratch []Reg // caller-saved registers clobbered by calls
	// StatusRegs lists condition-flag pseudo registers; they are
	// excluded from strand bases (flag updates are consumed in-block).
	StatusRegs []Reg
	RegNames   map[Reg]string
}

// Status returns the condition-flag registers (nil-safe).
func (a *ABI) Status() []Reg {
	if a == nil {
		return nil
	}
	return a.StatusRegs
}

// NoLinkReg marks ABIs whose return address lives on the stack (x86).
const NoLinkReg Reg = 0xFFFF

// RegName returns a human-readable name for r under this ABI.
func (a *ABI) RegName(r Reg) string {
	if a != nil && a.RegNames != nil {
		if n, ok := a.RegNames[r]; ok {
			return n
		}
	}
	return fmt.Sprintf("r%d", r)
}

// Validate performs internal-consistency checks used by tests and the
// lifter self-checks: SSA single assignment and no use of an undefined
// temporary.
func (b *Block) Validate() error {
	defined := map[Temp]bool{}
	checkUse := func(o Operand) error {
		if o.IsConst {
			return nil
		}
		if !defined[o.Temp] {
			return fmt.Errorf("block 0x%x: use of undefined temp t%d", b.Addr, o.Temp)
		}
		return nil
	}
	def := func(t Temp) error {
		if defined[t] {
			return fmt.Errorf("block 0x%x: temp t%d assigned twice (SSA violation)", b.Addr, t)
		}
		defined[t] = true
		return nil
	}
	for _, s := range b.Stmts {
		var uses []Operand
		var dst *Temp
		switch v := s.(type) {
		case Get:
			dst = &v.Dst
		case Put:
			uses = []Operand{v.Src}
		case Load:
			uses = []Operand{v.Addr}
			dst = &v.Dst
		case Store:
			uses = []Operand{v.Addr, v.Src}
		case Bin:
			uses = []Operand{v.A, v.B}
			dst = &v.Dst
		case Un:
			uses = []Operand{v.A}
			dst = &v.Dst
		case Mov:
			uses = []Operand{v.Src}
			dst = &v.Dst
		case Sel:
			uses = []Operand{v.Cond, v.A, v.B}
			dst = &v.Dst
		case Call:
			uses = []Operand{v.Target}
		case Exit:
			if v.Kind == ExitCond {
				uses = append(uses, v.Cond)
			}
			if v.Kind != ExitRet {
				uses = append(uses, v.Target)
			}
		}
		for _, u := range uses {
			if err := checkUse(u); err != nil {
				return err
			}
		}
		if dst != nil {
			if err := def(*dst); err != nil {
				return err
			}
		}
	}
	return nil
}
