package uir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{T(3), "t3"},
		{C(0x1f), "0x1f"},
		{CK(0x400000, ConstCode), "code:0x400000"},
		{CK(0x10008000, ConstData), "data:0x10008000"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestOpProperties(t *testing.T) {
	comm := map[Op]bool{OpAdd: true, OpMul: true, OpAnd: true, OpOr: true, OpXor: true, OpCmpEQ: true, OpCmpNE: true}
	for op := OpAdd; op < opCount; op++ {
		if got := op.IsCommutative(); got != comm[op] {
			t.Errorf("%v.IsCommutative() = %v, want %v", op, got, comm[op])
		}
		if op.IsUnary() && !strings.Contains("not neg bool sext8 sext16 zext8 zext16", op.String()) {
			t.Errorf("%v unexpectedly unary", op)
		}
	}
	if !OpCmpEQ.IsCompare() || !OpCmpLES.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
}

func TestOpStringsDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := OpAdd; op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

// TestEvalBinMatchesGo cross-checks a few ops against Go's semantics on
// random values.
func TestEvalBinMatchesGo(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := r.Uint32(), r.Uint32()
		checks := []struct {
			op   Op
			want uint32
		}{
			{OpAdd, a + b},
			{OpSub, a - b},
			{OpMul, a * b},
			{OpAnd, a & b},
			{OpOr, a | b},
			{OpXor, a ^ b},
			{OpShl, a << (b & 31)},
			{OpShrU, a >> (b & 31)},
			{OpShrS, uint32(int32(a) >> (b & 31))},
		}
		for _, c := range checks {
			if got := EvalBin(c.op, a, b); got != c.want {
				t.Fatalf("EvalBin(%v, %#x, %#x) = %#x, want %#x", c.op, a, b, got, c.want)
			}
		}
	}
}

func TestEvalDivByZero(t *testing.T) {
	for _, op := range []Op{OpDivU, OpDivS, OpRemU, OpRemS} {
		if got := EvalBin(op, 1234, 0); got != 0 {
			t.Errorf("EvalBin(%v, 1234, 0) = %d, want 0", op, got)
		}
	}
	// INT_MIN / -1 must not fault.
	if got := EvalBin(OpDivS, 0x80000000, 0xFFFFFFFF); got != 0x80000000 {
		t.Errorf("INT_MIN/-1 = %#x, want 0x80000000", got)
	}
	if got := EvalBin(OpRemS, 0x80000000, 0xFFFFFFFF); got != 0 {
		t.Errorf("INT_MIN%%-1 = %#x, want 0", got)
	}
}

// Property: sign extension then zero extension of the same width recovers
// the low bits.
func TestExtensionProperty(t *testing.T) {
	f := func(x uint32) bool {
		return EvalUn(OpZext8, EvalUn(OpSext8, x)) == x&0xFF &&
			EvalUn(OpZext16, EvalUn(OpSext16, x)) == x&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparisons are consistent with each other.
func TestCompareConsistency(t *testing.T) {
	f := func(a, b uint32) bool {
		eq := EvalBin(OpCmpEQ, a, b)
		ne := EvalBin(OpCmpNE, a, b)
		ltu := EvalBin(OpCmpLTU, a, b)
		leu := EvalBin(OpCmpLEU, a, b)
		lts := EvalBin(OpCmpLTS, a, b)
		les := EvalBin(OpCmpLES, a, b)
		if eq^ne != 1 {
			return false
		}
		if leu != (ltu | eq) {
			return false
		}
		if les != (lts | eq) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachineMemory(t *testing.T) {
	m := NewMachine()
	m.WriteMem(100, 0xAABBCCDD, 4)
	if got := m.ReadMem(100, 4); got != 0xAABBCCDD {
		t.Fatalf("ReadMem = %#x", got)
	}
	if got := m.ReadMem(100, 1); got != 0xDD {
		t.Errorf("byte read = %#x, want 0xDD (little-endian)", got)
	}
	if got := m.ReadMem(102, 2); got != 0xAABB {
		t.Errorf("half read = %#x, want 0xAABB", got)
	}
	m.WriteMem(100, 0x11, 1)
	if got := m.ReadMem(100, 4); got != 0xAABBCC11 {
		t.Errorf("after byte write: %#x", got)
	}
}

func TestRunBlockBasic(t *testing.T) {
	// t0 = get r1; t1 = add t0, 5; put r2 = t1
	b := &Block{Addr: 0x1000, Size: 8, Stmts: []Stmt{
		Get{Dst: 0, Reg: 1},
		Bin{Dst: 1, Op: OpAdd, A: T(0), B: C(5)},
		Put{Reg: 2, Src: T(1)},
	}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.Regs[1] = 37
	if err := m.RunBlock(b); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", m.Regs[2])
	}
	if m.Exited != nil {
		t.Error("unexpected exit")
	}
}

func TestRunBlockCondExit(t *testing.T) {
	mk := func(r1 uint32) *Machine {
		b := &Block{Addr: 0, Size: 8, Stmts: []Stmt{
			Get{Dst: 0, Reg: 1},
			Bin{Dst: 1, Op: OpCmpEQ, A: T(0), B: C(0x1F)},
			Exit{Kind: ExitCond, Cond: T(1), Target: CK(0x40E744, ConstCode)},
			Put{Reg: 5, Src: C(1)},
		}}
		m := NewMachine()
		m.Regs[1] = r1
		if err := m.RunBlock(b); err != nil {
			t.Fatal(err)
		}
		return m
	}
	taken := mk(0x1F)
	if taken.Exited == nil || taken.Exited.Target.Val != 0x40E744 {
		t.Error("branch should be taken for 0x1F")
	}
	if _, wrote := taken.Regs[5]; wrote {
		t.Error("statements after taken exit must not execute")
	}
	fallthru := mk(7)
	if fallthru.Exited != nil {
		t.Error("branch must fall through for 7")
	}
	if fallthru.Regs[5] != 1 {
		t.Error("fallthrough must execute trailing statements")
	}
}

func TestRunBlockCallRecording(t *testing.T) {
	b := &Block{Stmts: []Stmt{
		Call{Target: CK(0x40B2AC, ConstCode)},
		Call{Target: CK(0x401000, ConstCode)},
	}}
	m := NewMachine()
	if err := m.RunBlock(b); err != nil {
		t.Fatal(err)
	}
	if len(m.Calls) != 2 || m.Calls[0].Val != 0x40B2AC {
		t.Errorf("calls = %v", m.Calls)
	}
}

func TestValidateCatchesSSAViolation(t *testing.T) {
	b := &Block{Stmts: []Stmt{
		Mov{Dst: 0, Src: C(1)},
		Mov{Dst: 0, Src: C(2)},
	}}
	if err := b.Validate(); err == nil {
		t.Error("double assignment must fail validation")
	}
	b2 := &Block{Stmts: []Stmt{
		Bin{Dst: 0, Op: OpAdd, A: T(7), B: C(1)},
	}}
	if err := b2.Validate(); err == nil {
		t.Error("use of undefined temp must fail validation")
	}
}

func TestBlockSuccs(t *testing.T) {
	b := &Block{Addr: 0x100, Size: 16, Stmts: []Stmt{
		Exit{Kind: ExitCond, Cond: T(0), Target: CK(0x200, ConstCode)},
	}}
	// Cond exit + fallthrough.
	b.Stmts = append([]Stmt{Mov{Dst: 0, Src: C(1)}}, b.Stmts...)
	got := b.Succs()
	if len(got) != 2 || got[0] != 0x200 || got[1] != 0x110 {
		t.Errorf("Succs = %v, want [0x200 0x110]", got)
	}
	j := &Block{Addr: 0, Size: 4, Stmts: []Stmt{Exit{Kind: ExitJump, Target: CK(0x300, ConstCode)}}}
	if got := j.Succs(); len(got) != 1 || got[0] != 0x300 {
		t.Errorf("jump Succs = %v", got)
	}
	r := &Block{Addr: 0, Size: 4, Stmts: []Stmt{Exit{Kind: ExitRet}}}
	if got := r.Succs(); len(got) != 0 {
		t.Errorf("ret Succs = %v, want empty", got)
	}
}

func TestArchString(t *testing.T) {
	want := map[Arch]string{ArchMIPS32: "mips32", ArchARM32: "arm32", ArchPPC32: "ppc32", ArchX86: "x86", ArchNone: "none"}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("Arch(%d).String() = %q, want %q", a, a.String(), w)
		}
	}
}

func TestABIRegName(t *testing.T) {
	abi := &ABI{RegNames: map[Reg]string{4: "a0"}}
	if abi.RegName(4) != "a0" {
		t.Error("named register")
	}
	if abi.RegName(9) != "r9" {
		t.Error("fallback name")
	}
	var nilABI *ABI
	if nilABI.RegName(2) != "r2" {
		t.Error("nil ABI fallback")
	}
}
