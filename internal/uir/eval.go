package uir

import "fmt"

// Machine is a reference interpreter over UIR blocks. It exists for
// testing: lifter correctness and canonicalizer semantics-preservation are
// both checked by executing code under this machine.
type Machine struct {
	Regs map[Reg]uint32
	Mem  map[uint32]byte
	// Calls records the targets of Call statements, in execution order.
	Calls []Operand
	// Exited holds the taken Exit, if any.
	Exited *Exit
}

// NewMachine returns an empty machine; unset registers and memory read as
// zero.
func NewMachine() *Machine {
	return &Machine{Regs: map[Reg]uint32{}, Mem: map[uint32]byte{}}
}

// ReadMem loads size bytes little-endian at addr.
func (m *Machine) ReadMem(addr uint32, size uint8) uint32 {
	var v uint32
	for i := uint8(0); i < size; i++ {
		v |= uint32(m.Mem[addr+uint32(i)]) << (8 * i)
	}
	return v
}

// WriteMem stores the low size bytes of v little-endian at addr.
func (m *Machine) WriteMem(addr uint32, v uint32, size uint8) {
	for i := uint8(0); i < size; i++ {
		m.Mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}

// EvalBin computes a binary operation; division by zero yields zero, the
// convention shared with the canonicalizer's constant folder.
func EvalBin(op Op, a, b uint32) uint32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDivU:
		if b == 0 {
			return 0
		}
		return a / b
	case OpDivS:
		if b == 0 {
			return 0
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a // matches hardware wraparound
		}
		return uint32(int32(a) / int32(b))
	case OpRemU:
		if b == 0 {
			return 0
		}
		return a % b
	case OpRemS:
		if b == 0 {
			return 0
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 31)
	case OpShrU:
		return a >> (b & 31)
	case OpShrS:
		return uint32(int32(a) >> (b & 31))
	case OpCmpEQ:
		return b2u(a == b)
	case OpCmpNE:
		return b2u(a != b)
	case OpCmpLTU:
		return b2u(a < b)
	case OpCmpLTS:
		return b2u(int32(a) < int32(b))
	case OpCmpLEU:
		return b2u(a <= b)
	case OpCmpLES:
		return b2u(int32(a) <= int32(b))
	}
	panic(fmt.Sprintf("uir: EvalBin on non-binary op %v", op))
}

// EvalUn computes a unary operation.
func EvalUn(op Op, a uint32) uint32 {
	switch op {
	case OpNot:
		return ^a
	case OpNeg:
		return -a
	case OpBool:
		return b2u(a != 0)
	case OpSext8:
		return uint32(int32(int8(a)))
	case OpSext16:
		return uint32(int32(int16(a)))
	case OpZext8:
		return a & 0xFF
	case OpZext16:
		return a & 0xFFFF
	}
	panic(fmt.Sprintf("uir: EvalUn on non-unary op %v", op))
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// RunBlock executes the statements of b until the first taken Exit (or the
// end of the block) and returns the machine for inspection. Temporaries
// are block-local.
func (m *Machine) RunBlock(b *Block) error {
	temps := map[Temp]uint32{}
	val := func(o Operand) uint32 {
		if o.IsConst {
			return o.Val
		}
		return temps[o.Temp]
	}
	for _, s := range b.Stmts {
		switch v := s.(type) {
		case Get:
			temps[v.Dst] = m.Regs[v.Reg]
		case Put:
			m.Regs[v.Reg] = val(v.Src)
		case Load:
			temps[v.Dst] = m.ReadMem(val(v.Addr), v.Size)
		case Store:
			m.WriteMem(val(v.Addr), val(v.Src), v.Size)
		case Bin:
			temps[v.Dst] = EvalBin(v.Op, val(v.A), val(v.B))
		case Un:
			temps[v.Dst] = EvalUn(v.Op, val(v.A))
		case Mov:
			temps[v.Dst] = val(v.Src)
		case Sel:
			if val(v.Cond) != 0 {
				temps[v.Dst] = val(v.A)
			} else {
				temps[v.Dst] = val(v.B)
			}
		case Call:
			m.Calls = append(m.Calls, v.Target)
		case Exit:
			take := v.Kind != ExitCond || val(v.Cond) != 0
			if take {
				e := v
				// Resolve indirect targets so callers can follow them.
				if !e.Target.IsConst && e.Kind != ExitRet {
					e.Target = C(val(e.Target))
				}
				m.Exited = &e
				return nil
			}
		default:
			return fmt.Errorf("uir: unknown statement %T", s)
		}
	}
	return nil
}
