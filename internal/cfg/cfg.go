// Package cfg recovers procedures and basic blocks from executables.
//
// This is the role IDA Pro plays in the paper's pipeline. Stripped
// firmware executables carry no procedure symbols, so recovery proceeds
// from first principles: a linear-sweep disassembly of the text section,
// procedure entry discovery from direct call targets (plus the entry
// point and any surviving symbols), extent partitioning, leader-based
// block splitting with MIPS delay-slot placement, and the two
// corroboration checks the paper describes — CFG connectivity and
// coverage of unaccounted-for areas of the text section, which recovers
// procedures that are never directly called.
package cfg

import (
	"fmt"
	"sort"

	"firmup/internal/isa"
	"firmup/internal/obj"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// Telemetry is the optional handle set recovery records against; a nil
// pointer (and any nil field) disables the corresponding metric.
// Recovery output is identical with and without it.
type Telemetry struct {
	// Recover times each RecoverWith call end to end.
	Recover *telemetry.Stage
	// Sweep times the linear-sweep disassembly pass.
	Sweep *telemetry.Stage
	// Lift times the block-splitting and UIR-lifting pass.
	Lift *telemetry.Stage
	// Decoded counts instructions decoded by the sweep (ISA decoder
	// invocations that succeeded).
	Decoded *telemetry.Counter
	// Procs, Blocks and Insts count recovered procedures, lifted basic
	// blocks, and instructions attributed to procedures.
	Procs  *telemetry.Counter
	Blocks *telemetry.Counter
	Insts  *telemetry.Counter
	// CoverageRounds counts iterations of the gap-claiming coverage
	// sweep (pass 3).
	CoverageRounds *telemetry.Counter
}

// Proc is one recovered procedure.
type Proc struct {
	Name     string // symbol name, or sub_<addr> when stripped
	Entry    uint32
	End      uint32 // exclusive extent bound
	Blocks   []*uir.Block
	Insts    []isa.Inst // instructions in address order (for dumps)
	Exported bool
	// Connected reports whether every block is reachable from the entry
	// (one of the lifter-corroboration checks).
	Connected bool
}

// Recovered is the result of analyzing one executable.
type Recovered struct {
	File  *obj.File
	Arch  uir.Arch
	Procs []*Proc
	// Coverage is the fraction of text bytes attributed to some
	// procedure's decoded instructions.
	Coverage float64
}

// Proc returns the recovered procedure with the given name, or nil.
func (r *Recovered) Proc(name string) *Proc {
	for _, p := range r.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// sweep is the dense result of the linear-sweep pass: instructions in
// address order plus an offset-indexed table mapping each text offset to
// its instruction, or -1 where no instruction starts. Dense arrays keep
// the coverage iteration (which re-walks the whole sweep every round)
// off map lookups.
type sweep struct {
	base uint32
	n    uint32     // text-section length in bytes
	idx  []int32    // offset -> index into seq, -1 if none
	seq  []isa.Inst // instructions in address order
}

// index returns the seq index of the instruction at addr, or -1.
func (s *sweep) index(addr uint32) int32 {
	off := addr - s.base
	if off >= s.n { // unsigned wrap also rejects addr < base
		return -1
	}
	return s.idx[off]
}

// at returns the instruction at addr, if one was decoded there.
func (s *sweep) at(addr uint32) (isa.Inst, bool) {
	i := s.index(addr)
	if i < 0 {
		return isa.Inst{}, false
	}
	return s.seq[i], true
}

// Recover analyzes the executable.
func Recover(f *obj.File) (*Recovered, error) {
	return RecoverWith(f, nil)
}

// RecoverWith is Recover recording recovery metrics into tel. The
// recovery itself is identical.
func RecoverWith(f *obj.File, tel *Telemetry) (*Recovered, error) {
	var recoverSpan telemetry.Span
	if tel != nil {
		recoverSpan = tel.Recover.Start()
	}
	be, err := isa.ByArch(f.Arch)
	if err != nil {
		return nil, err
	}
	text := f.Text()
	if text == nil {
		return nil, fmt.Errorf("cfg: no text section")
	}

	// Pass 1: linear-sweep disassembly.
	var sweepSpan telemetry.Span
	if tel != nil {
		sweepSpan = tel.Sweep.Start()
	}
	sw := &sweep{base: text.Addr, n: uint32(len(text.Data)), idx: make([]int32, len(text.Data))}
	for i := range sw.idx {
		sw.idx[i] = -1
	}
	for off := 0; off < len(text.Data); {
		addr := text.Addr + uint32(off)
		inst, err := be.Decode(text.Data, off, addr)
		if err != nil {
			// Resync: skip the minimum instruction size.
			off += int(be.MinInstSize())
			continue
		}
		sw.idx[off] = int32(len(sw.seq))
		sw.seq = append(sw.seq, inst)
		off += int(inst.Size)
	}
	if tel != nil {
		sweepSpan.End()
		tel.Decoded.Add(int64(len(sw.seq)))
	}

	// Pass 2: procedure entries from call targets, the entry point, and
	// any symbols that survived stripping.
	entrySet := map[uint32]bool{f.Entry: true}
	for _, in := range sw.seq {
		if in.Kind == isa.KindCall && in.Target >= text.Addr && in.Target < text.Addr+uint32(len(text.Data)) {
			entrySet[in.Target] = true
		}
	}
	for _, s := range f.Syms {
		if s.Kind == obj.SymFunc {
			entrySet[s.Addr] = true
		}
	}

	// Pass 3 (iterated): partition into extents, walk reachability, and
	// claim unaccounted-for areas as new procedure entries. Each round
	// re-walks from scratch — an entry inserted mid-extent splits it and
	// can legitimately uncover earlier addresses, so incremental coverage
	// would be unsound. The sorted entry slice is maintained by insertion
	// instead of re-sorted.
	entries := make([]uint32, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	covered := make([]bool, len(sw.seq))
	for rounds := 0; rounds < 1024; rounds++ {
		if tel != nil {
			tel.CoverageRounds.Inc()
		}
		for i := range covered {
			covered[i] = false
		}
		markCovered(entries, sw, covered)
		gap, ok := firstGap(sw, covered)
		if !ok {
			break
		}
		if entrySet[gap] {
			break // no progress; avoid looping on undecodable junk
		}
		entrySet[gap] = true
		i := sort.Search(len(entries), func(i int) bool { return entries[i] >= gap })
		entries = append(entries, 0)
		copy(entries[i+1:], entries[i:])
		entries[i] = gap
	}

	var liftSpan telemetry.Span
	if tel != nil {
		liftSpan = tel.Lift.Start()
	}
	rec := &Recovered{File: f, Arch: f.Arch}
	textEnd := text.Addr + uint32(len(text.Data))
	for i, e := range entries {
		end := textEnd
		if i+1 < len(entries) {
			end = entries[i+1]
		}
		p, err := buildProc(be, f, e, end, sw)
		if err != nil {
			continue // unrecoverable region; coverage accounting reflects it
		}
		rec.Procs = append(rec.Procs, p)
	}
	if tel != nil {
		liftSpan.End()
	}

	var bytes uint32
	var blocks, insts int64
	for _, p := range rec.Procs {
		blocks += int64(len(p.Blocks))
		insts += int64(len(p.Insts))
		for _, in := range p.Insts {
			bytes += in.Size
		}
	}
	if len(text.Data) > 0 {
		rec.Coverage = float64(bytes) / float64(len(text.Data))
	}
	if tel != nil {
		tel.Procs.Add(int64(len(rec.Procs)))
		tel.Blocks.Add(blocks)
		tel.Insts.Add(insts)
		recoverSpan.End()
	}
	return rec, nil
}

// markCovered walks intra-procedural control flow from every entry and
// marks reachable instructions in covered (indexed like sw.seq).
func markCovered(entries []uint32, sw *sweep, covered []bool) {
	textEnd := sw.base + sw.n
	var stack []uint32
	for i, e := range entries {
		end := textEnd
		if i+1 < len(entries) {
			end = entries[i+1]
		}
		stack = append(stack[:0], e)
		for len(stack) > 0 {
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for a >= e && a < end {
				ii := sw.index(a)
				if ii < 0 || covered[ii] {
					break
				}
				in := sw.seq[ii]
				covered[ii] = true
				next := a + in.Size
				if in.HasDelay {
					if di := sw.index(next); di >= 0 {
						covered[di] = true
						next += sw.seq[di].Size
					}
				}
				switch in.Kind {
				case isa.KindCondBranch:
					if in.Target >= e && in.Target < end {
						stack = append(stack, in.Target)
					}
					a = next
				case isa.KindJump:
					if in.Target >= e && in.Target < end {
						a = in.Target
					} else {
						a = end // tail transfer out of extent
					}
				case isa.KindRet, isa.KindIndirect:
					a = end
				default: // normal and calls fall through
					a = next
				}
			}
		}
	}
}

// firstGap returns the lowest decoded instruction address not covered by
// any procedure walk.
func firstGap(sw *sweep, covered []bool) (uint32, bool) {
	for i, c := range covered {
		if !c {
			return sw.seq[i].Addr, true
		}
	}
	return 0, false
}

// buildProc splits [entry, end) into basic blocks and lifts them.
func buildProc(be isa.Backend, f *obj.File, entry, end uint32, sw *sweep) (*Proc, error) {
	p := &Proc{Entry: entry, End: end}
	if sym, ok := f.FuncSym(entry); ok && sym.Addr == entry {
		p.Name = sym.Name
		p.Exported = sym.Exported
	} else {
		p.Name = fmt.Sprintf("sub_%x", entry)
	}

	// Collect the procedure's instructions, following address order and
	// skipping unreachable padding conservatively (straight scan).
	for a := entry; a < end; {
		in, ok := sw.at(a)
		if !ok {
			break
		}
		p.Insts = append(p.Insts, in)
		a += in.Size
	}
	if len(p.Insts) == 0 {
		return nil, fmt.Errorf("cfg: empty procedure at %#x", entry)
	}

	// Leaders: entry, branch targets, instruction after a transfer
	// (accounting for delay slots, which stay inside the branch's block).
	leaders := map[uint32]bool{entry: true}
	inDelay := map[uint32]bool{}
	for _, in := range p.Insts {
		a := in.Addr
		next := a + in.Size
		if in.HasDelay {
			inDelay[next] = true
			if d, ok := sw.at(next); ok {
				next += d.Size
			}
		}
		switch in.Kind {
		case isa.KindCondBranch, isa.KindJump:
			if in.Target >= entry && in.Target < end {
				leaders[in.Target] = true
			}
			if next < end {
				leaders[next] = true
			}
		case isa.KindRet, isa.KindIndirect:
			if next < end {
				leaders[next] = true
			}
		}
	}
	// A delay slot can never start a block.
	for a := range inDelay {
		delete(leaders, a)
	}

	// Build and lift blocks.
	var starts []uint32
	for a := range leaders {
		if _, ok := sw.at(a); ok {
			starts = append(starts, a)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, s := range starts {
		blockEnd := end
		if i+1 < len(starts) {
			blockEnd = starts[i+1]
		}
		blk, err := liftBlock(be, sw, s, blockEnd)
		if err != nil {
			return nil, err
		}
		p.Blocks = append(p.Blocks, blk)
	}

	// Connectivity corroboration.
	p.Connected = checkConnectivity(p)
	return p, nil
}

// liftBlock lifts instructions in [start, end), reordering delay slots so
// the transfer's Exit statement comes last.
func liftBlock(be isa.Backend, sw *sweep, start, end uint32) (*uir.Block, error) {
	lb := &isa.LiftBuilder{}
	a := start
	for a < end {
		in, ok := sw.at(a)
		if !ok {
			break
		}
		next := a + in.Size
		if in.HasDelay {
			if d, ok := sw.at(next); ok {
				if err := be.Lift(d, lb); err != nil {
					return nil, err
				}
				next += d.Size
			}
		}
		if err := be.Lift(in, lb); err != nil {
			return nil, err
		}
		a = next
		// Calls do not terminate basic blocks; everything else that is
		// not a plain instruction does.
		if in.Kind != isa.KindNormal && in.Kind != isa.KindCall {
			break
		}
	}
	return &uir.Block{Addr: start, Size: a - start, Stmts: lb.Stmts}, nil
}

// checkConnectivity reports whether every block is reachable from the
// entry block.
func checkConnectivity(p *Proc) bool {
	if len(p.Blocks) == 0 {
		return false
	}
	byAddr := map[uint32]int{}
	for i, b := range p.Blocks {
		byAddr[b.Addr] = i
	}
	seen := make([]bool, len(p.Blocks))
	var stack []int
	stack = append(stack, 0)
	seen[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.Blocks[i].Succs() {
			if j, ok := byAddr[s]; ok && !seen[j] {
				seen[j] = true
				stack = append(stack, j)
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}
