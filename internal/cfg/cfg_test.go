package cfg

import (
	"testing"

	"firmup/internal/compiler"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/uir"
)

func buildExe(t *testing.T, arch uir.Arch, level int) (*obj.File, *isa.Artifact) {
	t.Helper()
	pkg, err := compiler.CompileToMIR(isatest.Source, compiler.Profile{OptLevel: level})
	if err != nil {
		t.Fatal(err)
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	return obj.FromArtifact(art), art
}

func TestRecoverNonStripped(t *testing.T) {
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		f, art := buildExe(t, arch, 2)
		rec, err := Recover(f)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if len(rec.Procs) != len(art.Procs) {
			t.Errorf("%v: recovered %d procs, want %d", arch, len(rec.Procs), len(art.Procs))
		}
		for _, want := range art.Procs {
			p := rec.Proc(want.Name)
			if p == nil {
				t.Errorf("%v: procedure %s not recovered", arch, want.Name)
				continue
			}
			if p.Entry != want.Addr {
				t.Errorf("%v: %s entry %#x, want %#x", arch, p.Name, p.Entry, want.Addr)
			}
			if !p.Connected {
				t.Errorf("%v: %s failed connectivity check", arch, p.Name)
			}
			if len(p.Blocks) == 0 {
				t.Errorf("%v: %s has no blocks", arch, p.Name)
			}
			for _, b := range p.Blocks {
				if err := b.Validate(); err != nil {
					t.Errorf("%v: %s: %v", arch, p.Name, err)
				}
			}
		}
		if rec.Coverage < 0.999 {
			t.Errorf("%v: coverage %.3f, want ~1.0", arch, rec.Coverage)
		}
	}
}

// Stripped executables must still be fully partitioned: the same entry
// addresses recovered, under sub_<addr> names, via call targets plus the
// unaccounted-area sweep.
func TestRecoverStripped(t *testing.T) {
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		f, art := buildExe(t, arch, 2)
		f.Strip()
		rec, err := Recover(f)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if len(rec.Procs) != len(art.Procs) {
			t.Errorf("%v: stripped recovery found %d procs, want %d", arch, len(rec.Procs), len(art.Procs))
		}
		found := map[uint32]bool{}
		for _, p := range rec.Procs {
			found[p.Entry] = true
			if p.Name[:4] != "sub_" {
				t.Errorf("%v: stripped proc has name %q", arch, p.Name)
			}
		}
		for _, want := range art.Procs {
			if !found[want.Addr] {
				t.Errorf("%v: stripped recovery missed proc at %#x (%s)", arch, want.Addr, want.Name)
			}
		}
		if rec.Coverage < 0.999 {
			t.Errorf("%v: stripped coverage %.3f", arch, rec.Coverage)
		}
	}
}

func TestExportedSurviveStripping(t *testing.T) {
	f, _ := buildExe(t, uir.ArchMIPS32, 1)
	f.MarkExported("table_sum")
	f.Strip()
	rec, err := Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	p := rec.Proc("table_sum")
	if p == nil {
		t.Fatal("exported procedure lost its name after stripping")
	}
	if !p.Exported {
		t.Error("Exported flag not set")
	}
}

// Delay slots: on MIPS every branch's delay instruction must stay inside
// the branch's block, and no block may start in a delay slot.
func TestMIPSDelaySlotBlocks(t *testing.T) {
	f, _ := buildExe(t, uir.ArchMIPS32, 2)
	rec, err := Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rec.Procs {
		delayAddrs := map[uint32]bool{}
		for _, in := range p.Insts {
			if in.HasDelay {
				delayAddrs[in.Addr+in.Size] = true
			}
		}
		for _, b := range p.Blocks {
			if delayAddrs[b.Addr] {
				t.Fatalf("%s: block starts inside a delay slot at %#x", p.Name, b.Addr)
			}
		}
	}
}

// Lifted blocks of the recovered CFG must reproduce the executable's
// behavior: run a procedure by walking recovered blocks and compare with
// the executor.
func TestRecoveredBlocksValidateEverywhere(t *testing.T) {
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		for level := 0; level <= 3; level++ {
			f, _ := buildExe(t, arch, level)
			rec, err := Recover(f)
			if err != nil {
				t.Fatalf("%v/O%d: %v", arch, level, err)
			}
			for _, p := range rec.Procs {
				for _, b := range p.Blocks {
					if err := b.Validate(); err != nil {
						t.Errorf("%v/O%d %s: %v", arch, level, p.Name, err)
					}
				}
			}
		}
	}
}

func TestRecoverRejectsMissingText(t *testing.T) {
	f := &obj.File{Arch: uir.ArchMIPS32}
	if _, err := Recover(f); err == nil {
		t.Error("Recover without text section must fail")
	}
}

// Block successor addresses must land on recovered block starts
// (intra-procedure CFG integrity).
func TestBlockSuccessorsResolve(t *testing.T) {
	f, _ := buildExe(t, uir.ArchPPC32, 2)
	rec, err := Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rec.Procs {
		starts := map[uint32]bool{}
		for _, b := range p.Blocks {
			starts[b.Addr] = true
		}
		for _, b := range p.Blocks {
			for _, s := range b.Succs() {
				if s >= p.Entry && s < p.End && !starts[s] {
					t.Errorf("%s: block %#x successor %#x is not a block start", p.Name, b.Addr, s)
				}
			}
		}
	}
}
