package strand

import (
	"fmt"
	"math/rand"
	"testing"

	"firmup/internal/uir"
)

// evalNode interprets a DAG node against a concrete machine state —
// the reference semantics the canonicalizer must preserve.
func evalNode(n *node, regs map[uir.Reg]uint32, mem func(addr uint32, size uint8) uint32) uint32 {
	switch n.kind {
	case nConst:
		return n.val
	case nInput:
		return regs[n.reg]
	case nCallRes:
		panic("soundness test does not generate calls")
	case nLoad:
		return mem(evalNode(n.a, regs, mem), n.size)
	case nBin:
		return uir.EvalBin(n.op, evalNode(n.a, regs, mem), evalNode(n.b, regs, mem))
	case nUn:
		return uir.EvalUn(n.op, evalNode(n.a, regs, mem))
	case nSel:
		if evalNode(n.a, regs, mem) != 0 {
			return evalNode(n.b, regs, mem)
		}
		return evalNode(n.c, regs, mem)
	}
	panic("unknown node kind")
}

// randomBlock builds a structured random straight-line block over a small
// register file: arithmetic, compares, selects, register traffic, loads
// and stores. Addresses are confined to a private arena (base register
// r14, which holds a fixed arena pointer) with small offsets, so distinct
// symbolic addresses never alias concretely.
func randomBlock(rng *rand.Rand, nStmts int) *uir.Block {
	const arenaReg = uir.Reg(14)
	b := &uir.Block{Addr: 0x1000}
	var next uir.Temp
	var defined []uir.Temp
	newTemp := func() uir.Temp {
		t := next
		next++
		return t
	}
	operand := func() uir.Operand {
		if len(defined) == 0 || rng.Intn(3) == 0 {
			return uir.C(uint32(rng.Intn(64)))
		}
		return uir.T(defined[rng.Intn(len(defined))])
	}
	// Seed with a few register reads.
	for r := uir.Reg(0); r < 4; r++ {
		t := newTemp()
		b.Stmts = append(b.Stmts, uir.Get{Dst: t, Reg: r})
		defined = append(defined, t)
	}
	arena := newTemp()
	b.Stmts = append(b.Stmts, uir.Get{Dst: arena, Reg: arenaReg})
	binOps := []uir.Op{uir.OpAdd, uir.OpSub, uir.OpMul, uir.OpAnd, uir.OpOr, uir.OpXor,
		uir.OpShl, uir.OpShrU, uir.OpShrS, uir.OpCmpEQ, uir.OpCmpNE,
		uir.OpCmpLTS, uir.OpCmpLTU, uir.OpCmpLES, uir.OpCmpLEU,
		uir.OpDivU, uir.OpDivS, uir.OpRemU, uir.OpRemS}
	unOps := []uir.Op{uir.OpNot, uir.OpNeg, uir.OpBool, uir.OpSext8, uir.OpSext16, uir.OpZext8, uir.OpZext16}
	arenaAddr := func() uir.Temp {
		off := uint32(rng.Intn(16)) * 4
		t := newTemp()
		b.Stmts = append(b.Stmts, uir.Bin{Dst: t, Op: uir.OpAdd, A: uir.T(arena), B: uir.C(off)})
		return t
	}
	for i := 0; i < nStmts; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			t := newTemp()
			b.Stmts = append(b.Stmts, uir.Bin{Dst: t, Op: binOps[rng.Intn(len(binOps))], A: operand(), B: operand()})
			defined = append(defined, t)
		case 4:
			t := newTemp()
			b.Stmts = append(b.Stmts, uir.Un{Dst: t, Op: unOps[rng.Intn(len(unOps))], A: operand()})
			defined = append(defined, t)
		case 5:
			t := newTemp()
			b.Stmts = append(b.Stmts, uir.Sel{Dst: t, Cond: operand(), A: operand(), B: operand()})
			defined = append(defined, t)
		case 6: // register write (possibly overwriting)
			b.Stmts = append(b.Stmts, uir.Put{Reg: uir.Reg(rng.Intn(8)), Src: operand()})
		case 7: // store into the arena
			b.Stmts = append(b.Stmts, uir.Store{Addr: uir.T(arenaAddr()), Src: operand(), Size: 4})
		case 8: // load from the arena
			t := newTemp()
			b.Stmts = append(b.Stmts, uir.Load{Dst: t, Addr: uir.T(arenaAddr()), Size: 4})
			defined = append(defined, t)
		default: // copy
			t := newTemp()
			b.Stmts = append(b.Stmts, uir.Mov{Dst: t, Src: operand()})
			defined = append(defined, t)
		}
	}
	return b
}

// TestCanonicalizationSoundness is the canonicalizer's semantic safety
// net: for random blocks and random initial machine states, every final
// register value the DAG predicts must equal what the reference machine
// computes, and every store effect must appear in the machine's memory.
// A wrong algebraic rule would corrupt both sides of a similarity
// comparison identically — invisible to matching tests, caught here.
func TestCanonicalizationSoundness(t *testing.T) {
	const arenaBase = 0x20000
	rng := rand.New(rand.NewSource(99))
	opt := &Options{}
	for trial := 0; trial < 300; trial++ {
		blk := randomBlock(rng, 4+rng.Intn(24))
		if err := blk.Validate(); err != nil {
			t.Fatalf("trial %d: generator emitted invalid block: %v", trial, err)
		}
		// Concrete initial state.
		m := uir.NewMachine()
		initRegs := map[uir.Reg]uint32{}
		for r := uir.Reg(0); r < 8; r++ {
			v := rng.Uint32()
			m.Regs[r] = v
			initRegs[r] = v
		}
		m.Regs[14] = arenaBase
		initRegs[14] = arenaBase
		for i := uint32(0); i < 64; i++ {
			m.Mem[arenaBase+i] = byte(rng.Intn(256))
		}
		initMem := func(addr uint32, size uint8) uint32 {
			var v uint32
			for k := uint8(0); k < size; k++ {
				v |= uint32(m0(addr+uint32(k), m)) << (8 * k)
			}
			return v
		}
		// Snapshot memory before running (loads in the DAG read the
		// initial state under the no-alias discipline).
		snapshot := map[uint32]byte{}
		for a, b := range m.Mem {
			snapshot[a] = b
		}
		readSnap := func(addr uint32, size uint8) uint32 {
			var v uint32
			for k := uint8(0); k < size; k++ {
				v |= uint32(snapshot[addr+uint32(k)]) << (8 * k)
			}
			return v
		}
		_ = initMem

		if err := m.RunBlock(blk); err != nil {
			t.Fatalf("trial %d: machine: %v", trial, err)
		}

		st := analyzeBlock(blk, opt)
		for r, n := range st.regs {
			if st.inputs[r] == n {
				continue
			}
			got := evalNodeSnap(t, trial, n, initRegs, readSnap)
			if got != m.Regs[r] {
				t.Fatalf("trial %d: canonical value of r%d = %#x, machine says %#x\nblock:\n%s",
					trial, r, got, m.Regs[r], blk)
			}
		}
		// Store effects: the last store to each concrete address must
		// leave the machine memory with the DAG-predicted value.
		finalStores := map[uint32]uint32{}
		for _, e := range st.effects {
			if e.kind != "store" {
				continue
			}
			addr := evalNodeSnap(t, trial, e.a, initRegs, readSnap)
			val := evalNodeSnap(t, trial, e.b, initRegs, readSnap)
			finalStores[addr] = val
		}
		for addr, want := range finalStores {
			var got uint32
			for k := uint32(0); k < 4; k++ {
				got |= uint32(m.Mem[addr+k]) << (8 * k)
			}
			if got != want {
				t.Fatalf("trial %d: store at %#x: canonical %#x, machine %#x\nblock:\n%s",
					trial, addr, want, got, blk)
			}
		}
	}
}

func evalNodeSnap(t *testing.T, trial int, n *node, regs map[uir.Reg]uint32, mem func(uint32, uint8) uint32) uint32 {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("trial %d: eval panic: %v", trial, r)
		}
	}()
	return evalNode(n, regs, mem)
}

func m0(addr uint32, m *uir.Machine) byte { return m.Mem[addr] }

// The generator itself must be deterministic so failures replay.
func TestRandomBlockDeterministic(t *testing.T) {
	a := randomBlock(rand.New(rand.NewSource(5)), 12)
	b := randomBlock(rand.New(rand.NewSource(5)), 12)
	if fmt.Sprint(a.Stmts) != fmt.Sprint(b.Stmts) {
		t.Error("randomBlock not deterministic for a fixed seed")
	}
}
