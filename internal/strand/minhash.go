package strand

// MinHash signatures over interned strand-ID sets. A signature is a
// constant-size sketch of a procedure's strand set: SigWords
// independent permutations of the ID space, each contributing the
// minimum permuted value over the set. Two sets' signatures agree in an
// expected fraction of positions equal to their Jaccard similarity,
// which is what the corpusindex LSH tier bands on.
//
// Signatures are a pure function of the dense IDs and the fixed seed
// schedule below, so every consumer of one ID space — a live analyzer
// session, the sealed corpus it freezes into, the FWCORP shards that
// persist it, and the per-request query overlays layered above it —
// computes bit-identical signatures without coordination. Query
// overlays assign private IDs strictly above the frozen vocabulary
// (strand.Rebased), so a never-sealed query strand can never alias a
// corpus strand's permuted value source.

// SigWords is the number of hash functions per MinHash signature, and
// therefore the fixed word count of every signature. Changing it is a
// snapshot format break (the FWCORP corpus-sigs slab stores raw
// signatures); bump the corpus format version if it ever changes.
const SigWords = 64

// sigSeedBase seeds the per-word permutation schedule. It is a fixed
// protocol constant — NOT derived from any vocabulary contents — so
// signatures computed while a live session is still interning new
// strands remain valid verbatim after Seal freezes the vocabulary.
const sigSeedBase uint64 = 0x46572d4c53482d31 // "FW-LSH-1"

// SigEmptyWord is the signature word of an empty set: no element ever
// produces it in practice, so consumers can use an all-SigEmptyWord
// signature as the "no strands / no signature" sentinel and keep such
// procedures out of LSH buckets.
const SigEmptyWord uint32 = 0xffffffff

var sigSeeds = func() [SigWords]uint64 {
	var s [SigWords]uint64
	x := sigSeedBase
	for i := range s {
		// splitmix64: the standard seed-stream generator.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s[i] = z ^ (z >> 31)
	}
	return s
}()

// sigMix is the per-element permutation: a strong 64-bit finalizer over
// the ID xor the word seed. Only the low 32 bits are kept — a 1/2^32
// per-pair collision rate is far below the banding noise floor and
// halves the slab footprint.
func sigMix(id uint32, seed uint64) uint64 {
	z := uint64(id) ^ seed
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// MinHashInto writes the SigWords-word MinHash signature of ids into
// dst (len(dst) must be at least SigWords) and returns dst[:SigWords].
// An empty ids set yields the all-SigEmptyWord sentinel signature.
func MinHashInto(dst []uint32, ids []uint32) []uint32 {
	dst = dst[:SigWords]
	for k := range dst {
		dst[k] = SigEmptyWord
	}
	for _, id := range ids {
		for k := 0; k < SigWords; k++ {
			if v := uint32(sigMix(id, sigSeeds[k])); v < dst[k] {
				dst[k] = v
			}
		}
	}
	return dst
}

// MinHash is MinHashInto with a fresh buffer.
func MinHash(ids []uint32) []uint32 {
	return MinHashInto(make([]uint32, SigWords), ids)
}

// SigEmpty reports whether sig is the empty-set sentinel signature
// (every word SigEmptyWord). Bucket builders skip such signatures so empty
// procedures never band-collide with each other.
func SigEmpty(sig []uint32) bool {
	for _, w := range sig {
		if w != SigEmptyWord {
			return false
		}
	}
	return true
}
