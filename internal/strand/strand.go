package strand

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"firmup/internal/obj"
	"firmup/internal/uir"
)

// Options parameterize extraction.
type Options struct {
	// ABI supplies the calling convention: argument registers feed call
	// effects, and the stack pointer renders as a stable token so stack
	// offsets survive canonicalization as the paper prescribes.
	ABI *uir.ABI
	// Sections drives offset elimination: constants inside the text or
	// data ranges are abstracted to positional offN tokens.
	Sections obj.SectionMap
	// KeepTrivial retains strands whose expression is a bare input or
	// constant; by default they are dropped as noise (every executable
	// shares them).
	KeepTrivial bool
}

// Strand is one canonical strand.
type Strand struct {
	Hash uint64
	Text string
}

// ExtractBlock decomposes one lifted basic block into canonical strands.
//
// The implementation fuses Algorithm 1 with the re-optimization step: the
// block (already in SSA form) is converted to an expression DAG by
// forward substitution — which performs constant propagation, copy
// propagation and CSE by construction — and each outward-facing effect
// (a store, a call, a control-flow exit, or the final value of an
// architectural register) becomes the basis of one strand: exactly the
// use-def chain Algorithm 1 would slice, already in simplified form.
// Dead intermediate computations disappear, mirroring DCE.
//
// Batch callers (analyzer sessions) should prefer an Extractor, which
// reuses the analysis scratch across blocks and consults the session's
// block canonicalization cache.
func ExtractBlock(b *uir.Block, opt *Options) []Strand {
	sc := newExtractScratch()
	st := sc.analyze(b, opt)
	return st.render(opt)
}

// blockState is the analyzed form of one block: the expression DAG plus
// the outward-facing effects. Exposed internally for the soundness
// property tests, which evaluate the DAG against the reference machine.
type blockState struct {
	bd      *builder
	regs    map[uir.Reg]*node
	inputs  map[uir.Reg]*node
	effects []effect
}

type effect struct {
	kind   string // "store", "call", "br", "jump", "ijump", "retx"
	a, b   *node
	args   []*node
	size   uint8
	target *node
}

// memKey identifies one store-to-load forwarding slot.
type memKey struct {
	addr *node
	size uint8
}

// extractScratch is the reusable per-worker state of block analysis:
// the node builder with its arena, the forward-substitution maps, and
// the effect list. One scratch serves any number of blocks serially;
// reuse turns per-block map and slab allocations into clears.
type extractScratch struct {
	bd      *builder
	regs    map[uir.Reg]*node
	inputs  map[uir.Reg]*node
	temps   map[uir.Temp]*node
	mem     map[memKey]*node
	effects []effect
	st      blockState
}

func newExtractScratch() *extractScratch {
	return &extractScratch{
		bd:     newBuilder(),
		regs:   map[uir.Reg]*node{},
		inputs: map[uir.Reg]*node{},
		temps:  map[uir.Temp]*node{},
		mem:    map[memKey]*node{},
	}
}

// analyzeBlock performs the forward-substitution walk with one-shot
// scratch (the soundness property tests inspect the returned state).
func analyzeBlock(b *uir.Block, opt *Options) *blockState {
	return newExtractScratch().analyze(b, opt)
}

// analyze performs the forward-substitution walk. The returned state
// aliases the scratch and is valid until the next analyze call.
func (sc *extractScratch) analyze(b *uir.Block, opt *Options) *blockState {
	sc.bd.reset()
	clear(sc.regs)
	clear(sc.inputs)
	clear(sc.temps)
	clear(sc.mem)
	sc.effects = sc.effects[:0]

	bd := sc.bd
	regs := sc.regs // current register values
	inputs := sc.inputs
	getReg := func(r uir.Reg) *node {
		if n, ok := regs[r]; ok {
			return n
		}
		n := bd.input(r)
		regs[r] = n
		inputs[r] = n
		return n
	}
	temps := sc.temps
	operand := func(o uir.Operand) *node {
		if o.IsConst {
			return bd.konst(o.Val)
		}
		return temps[o.Temp]
	}
	mem := sc.mem
	effects := sc.effects
	callCount := 0

	for _, s := range b.Stmts {
		switch v := s.(type) {
		case uir.Get:
			temps[v.Dst] = getReg(v.Reg)
		case uir.Put:
			regs[v.Reg] = operand(v.Src)
		case uir.Mov:
			temps[v.Dst] = operand(v.Src)
		case uir.Bin:
			temps[v.Dst] = bd.bin(v.Op, operand(v.A), operand(v.B))
		case uir.Un:
			temps[v.Dst] = bd.un(v.Op, operand(v.A))
		case uir.Sel:
			temps[v.Dst] = bd.sel(operand(v.Cond), operand(v.A), operand(v.B))
		case uir.Load:
			addr := operand(v.Addr)
			k := memKey{addr, v.Size}
			if val, ok := mem[k]; ok {
				temps[v.Dst] = val // store-to-load forwarding
			} else {
				temps[v.Dst] = bd.load(addr, v.Size)
			}
		case uir.Store:
			addr := operand(v.Addr)
			val := operand(v.Src)
			mem[memKey{addr, v.Size}] = val
			effects = append(effects, effect{kind: "store", a: addr, b: val, size: v.Size})
		case uir.Call:
			var args []*node
			if opt.ABI != nil {
				for _, r := range opt.ABI.ArgRegs {
					args = append(args, getReg(r))
				}
				// Clobber caller-saved state.
				for _, r := range opt.ABI.Scratch {
					delete(regs, r)
				}
				regs[opt.ABI.RetReg] = bd.callRes(callCount)
			}
			effects = append(effects, effect{kind: "call", args: args, target: operand(v.Target)})
			callCount++
		case uir.Exit:
			switch v.Kind {
			case uir.ExitJump:
				effects = append(effects, effect{kind: "jump", target: operand(v.Target)})
			case uir.ExitCond:
				effects = append(effects, effect{kind: "br", a: operand(v.Cond), target: operand(v.Target)})
			case uir.ExitRet:
				effects = append(effects, effect{kind: "retx"})
			case uir.ExitIndir:
				effects = append(effects, effect{kind: "ijump", target: operand(v.Target)})
			}
		}
	}

	sc.effects = effects
	sc.st = blockState{bd: bd, regs: regs, inputs: inputs, effects: effects}
	return &sc.st
}

// render turns the analyzed state into canonical strands.
func (st *blockState) render(opt *Options) []Strand {
	bd, regs, inputs, effects := st.bd, st.regs, st.inputs, st.effects
	// Final register values are outward-facing (register folding drops
	// the destination identity). The stack pointer, link register and
	// status flags are excluded: their updates are universal scaffolding,
	// not procedure semantics.
	excluded := map[uir.Reg]bool{}
	if opt.ABI != nil {
		excluded[opt.ABI.SP] = true
		if opt.ABI.LinkReg != uir.NoLinkReg {
			excluded[opt.ABI.LinkReg] = true
		}
		for _, r := range opt.ABI.Status() {
			excluded[r] = true
		}
	}
	var out []Strand
	seen := map[uint64]bool{}
	add := func(text string) {
		h := fnv.New64a()
		h.Write([]byte(text))
		hash := h.Sum64()
		if seen[hash] {
			return
		}
		seen[hash] = true
		out = append(out, Strand{Hash: hash, Text: text})
	}

	rd := newRenderer(bd, opt)
	for _, r := range sortedRegs(regs) {
		if excluded[r] {
			continue
		}
		n := regs[r]
		if inputs[r] == n {
			continue // register unchanged
		}
		if !opt.KeepTrivial && isTrivial(n) {
			continue
		}
		rd.reset(bd, opt)
		expr := rd.expr(n)
		add(rd.finish(fmt.Sprintf("ret %s", expr)))
	}
	for _, e := range effects {
		rd.reset(bd, opt)
		switch e.kind {
		case "store":
			addr := rd.expr(e.a)
			val := rd.expr(e.b)
			add(rd.finish(fmt.Sprintf("store%d %s <- %s", e.size, addr, val)))
		case "call":
			parts := make([]string, len(e.args))
			for i, a := range e.args {
				parts[i] = rd.expr(a)
			}
			add(rd.finish(fmt.Sprintf("call proc(%s)", strings.Join(parts, ", "))))
		case "br":
			cond := rd.expr(e.a)
			add(rd.finish(fmt.Sprintf("br %s -> %s", cond, rd.exprTarget(e.target))))
		case "jump":
			if !opt.KeepTrivial {
				continue // unconditional jumps carry no semantics
			}
			add(rd.finish(fmt.Sprintf("jump %s", rd.exprTarget(e.target))))
		case "ijump":
			add(rd.finish(fmt.Sprintf("ijump %s", rd.expr(e.target))))
		case "retx":
			// A bare return carries no data flow; covered by the ret-reg
			// value strand.
		}
	}
	return out
}

// isTrivial reports whether the node is a bare input or call result —
// strands every block everywhere shares. Bare constants are kept: a
// specific returned constant (e.g. an error code) is real signal.
func isTrivial(n *node) bool {
	switch n.kind {
	case nInput, nCallRes:
		return true
	}
	return false
}

// renderer linearizes one strand into canonical text with names assigned
// in order of appearance.
type renderer struct {
	bd   *builder
	opt  *Options
	args map[*node]int // input nodes → argN
	offs map[uint32]int
	lets []string
	lnum map[*node]string
}

func newRenderer(bd *builder, opt *Options) *renderer {
	return &renderer{bd: bd, opt: opt, args: map[*node]int{}, offs: map[uint32]int{}, lnum: map[*node]string{}}
}

// reset prepares the renderer for the next strand, reusing its maps.
func (rd *renderer) reset(bd *builder, opt *Options) {
	rd.bd, rd.opt = bd, opt
	clear(rd.args)
	clear(rd.offs)
	clear(rd.lnum)
	rd.lets = rd.lets[:0]
}

// classify applies offset elimination to a constant.
func (rd *renderer) classify(v uint32) string {
	m := rd.opt.Sections
	inText := m.TextHi > m.TextLo && v >= m.TextLo && v < m.TextHi
	inData := m.DataHi > m.DataLo && v >= m.DataLo && v < m.DataHi
	if inText || inData {
		idx, ok := rd.offs[v]
		if !ok {
			idx = len(rd.offs)
			rd.offs[v] = idx
		}
		return fmt.Sprintf("off%d", idx)
	}
	return fmt.Sprintf("0x%x", v)
}

// expr renders a node, emitting let-bindings for shared interior nodes.
func (rd *renderer) expr(n *node) string {
	if s, ok := rd.lnum[n]; ok {
		return s
	}
	var s string
	switch n.kind {
	case nConst:
		s = rd.classify(n.val)
	case nInput:
		if rd.opt.ABI != nil && n.reg == rd.opt.ABI.SP {
			s = "sp"
		} else {
			idx, ok := rd.args[n]
			if !ok {
				idx = len(rd.args)
				rd.args[n] = idx
			}
			s = fmt.Sprintf("arg%d", idx)
		}
	case nCallRes:
		// The k-th call result; k is block-relative which is stable
		// across compilations of the same block.
		idx, ok := rd.args[n]
		if !ok {
			idx = len(rd.args)
			rd.args[n] = idx
		}
		s = fmt.Sprintf("cres%d", idx)
	case nLoad:
		s = fmt.Sprintf("load%d(%s)", n.size, rd.expr(n.a))
	case nBin:
		s = fmt.Sprintf("%s(%s, %s)", n.op, rd.expr(n.a), rd.expr(n.b))
	case nUn:
		s = fmt.Sprintf("%s(%s)", n.op, rd.expr(n.a))
	case nSel:
		s = fmt.Sprintf("select(%s, %s, %s)", rd.expr(n.a), rd.expr(n.b), rd.expr(n.c))
	}
	// Bind interior operation nodes so shared subexpressions render once.
	if n.kind == nBin || n.kind == nUn || n.kind == nSel || n.kind == nLoad {
		name := fmt.Sprintf("n%d", len(rd.lets))
		rd.lets = append(rd.lets, fmt.Sprintf("%s = %s", name, s))
		rd.lnum[n] = name
		return name
	}
	rd.lnum[n] = s
	return s
}

// exprTarget renders a control-transfer target: code constants are fully
// abstracted.
func (rd *renderer) exprTarget(n *node) string {
	if n == nil {
		return "?"
	}
	if n.kind == nConst {
		return rd.classify(n.val)
	}
	return rd.expr(n)
}

// finish assembles the canonical text: let-bindings then the basis line.
func (rd *renderer) finish(basis string) string {
	if len(rd.lets) == 0 {
		return basis
	}
	return strings.Join(rd.lets, "\n") + "\n" + basis
}

// ConstMarkers collects a procedure's distinctive plain constants — the
// automated analog of the paper's semi-manual confirmation "markers such
// as string constants, use of global memory, structures access".
//
// Markers are read off the canonical strands, after constant folding and
// offset elimination, so split address materializations (lui/ori halves)
// never leak in. Constants that are small, powers of two, all-ones masks,
// aligned offset-shaped values, or negatives carry no identity and are
// skipped; what remains (protocol codes, magic numbers, hash multipliers)
// fingerprints the source procedure across compilations.
func ConstMarkers(blocks []*uir.Block, opt *Options) []uint32 {
	seen := map[uint32]bool{}
	for _, b := range blocks {
		for _, st := range ExtractBlock(b, opt) {
			collectHexConstants(st.Text, func(v uint32) {
				if isMarker(v) {
					seen[v] = true
				}
			})
		}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isMarker filters constants down to identity-bearing ones.
func isMarker(v uint32) bool {
	switch {
	case v <= 8:
		return false // tiny values: loop bounds, flags
	case v&(v-1) == 0:
		return false // power of two: sizes, bit flags
	case v&(v+1) == 0:
		return false // all-ones: width masks (0x1f, 0xff, 0xffff, ...)
	case v%4 == 0 && v < 0x1000:
		return false // word-aligned small value: stack/struct offsets
	case v >= 0xFFFF0000:
		return false // small negative
	}
	return true
}

// collectHexConstants invokes f for every 0x-prefixed literal in a
// canonical strand text (offsets were already abstracted to offN tokens).
func collectHexConstants(text string, f func(uint32)) {
	for i := 0; i+2 < len(text); i++ {
		if text[i] != '0' || text[i+1] != 'x' {
			continue
		}
		j := i + 2
		var v uint64
		for j < len(text) {
			c := text[j]
			switch {
			case c >= '0' && c <= '9':
				v = v<<4 | uint64(c-'0')
			case c >= 'a' && c <= 'f':
				v = v<<4 | uint64(c-'a'+10)
			default:
				goto done
			}
			j++
		}
	done:
		if j > i+2 && v <= 0xFFFFFFFF {
			f(uint32(v))
		}
		i = j - 1
	}
}

// MarkerOverlap computes the fraction of q's markers present in t (both
// sorted). Returns 1 when q has no markers to check.
func MarkerOverlap(q, t []uint32) float64 {
	if len(q) == 0 {
		return 1
	}
	i, j, n := 0, 0, 0
	for i < len(q) && j < len(t) {
		switch {
		case q[i] == t[j]:
			n++
			i++
			j++
		case q[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return float64(n) / float64(len(q))
}

// Interner maps 64-bit canonical strand hashes to dense IDs shared
// across every executable analyzed under one session. Implementations
// must be safe for concurrent use and assign each hash exactly one ID
// for the interner's lifetime.
type Interner interface {
	Intern(hash uint64) uint32
}

// BulkInterner is an Interner that can intern a whole batch per lock
// round. Interned and the block extractor prefer it when available.
type BulkInterner interface {
	Interner
	// InternAll appends the dense IDs of hashes to out and returns it,
	// in input order.
	InternAll(hashes []uint64, out []uint32) []uint32
}

// Rebased is an Interner layered over a base interner whose ID space it
// extends without mutating: hashes known to the base keep their base
// IDs, and hashes the base has never seen are assigned private IDs
// strictly above the base's ID space. A sealed corpus hands each query
// such an overlay, so query analysis never writes to shared state while
// the query's known-strand IDs stay directly comparable with the
// corpus's.
type Rebased interface {
	Interner
	// BaseInterner returns the read-only interner this overlay extends.
	BaseInterner() Interner
}

// Compatible reports whether a set interned by q carries dense IDs
// valid against the ID space of a set (or index) interned by t. That
// holds when the two are the same interner, or when one is a Rebased
// overlay of the other: overlay IDs for base-known hashes are the base
// IDs themselves, and overlay-private IDs lie above the base space so
// they can never collide with a base-assigned ID. Two distinct overlays
// of one base are NOT compatible — their private IDs overlap while
// standing for different hashes.
func Compatible(q, t Interner) bool {
	if q == nil || t == nil {
		return false
	}
	if q == t {
		return true
	}
	if r, ok := q.(Rebased); ok && r.BaseInterner() == t {
		return true
	}
	if r, ok := t.(Rebased); ok && r.BaseInterner() == q {
		return true
	}
	return false
}

// Set is a procedure's strand-hash set, the unit Sim operates on.
type Set struct {
	Hashes []uint64 // sorted, unique
	// IDs are the dense interned equivalents of Hashes (sorted, unique),
	// present only when the set was built under an analyzer session.
	IDs []uint32
	// It is the session interner that assigned IDs. Two sets are
	// ID-comparable only when they share the same It.
	It Interner
}

// Interned returns a copy of the set with dense IDs assigned by it.
// A nil interner returns the set unchanged.
func (s Set) Interned(it Interner) Set {
	if it == nil {
		return s
	}
	ids := internAll(it, s.Hashes, make([]uint32, 0, len(s.Hashes)))
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return Set{Hashes: s.Hashes, IDs: ids, It: it}
}

// internAll interns hashes in input order, using the bulk path when the
// interner supports it.
func internAll(it Interner, hashes []uint64, out []uint32) []uint32 {
	if bi, ok := it.(BulkInterner); ok {
		return bi.InternAll(hashes, out)
	}
	for _, h := range hashes {
		out = append(out, it.Intern(h))
	}
	return out
}

// FromBlocks extracts and merges strands of all blocks of a procedure.
func FromBlocks(blocks []*uir.Block, opt *Options) Set {
	seen := map[uint64]bool{}
	for _, b := range blocks {
		for _, s := range ExtractBlock(b, opt) {
			seen[s.Hash] = true
		}
	}
	out := make([]uint64, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Set{Hashes: out}
}

// Size returns the number of unique strands.
func (s Set) Size() int { return len(s.Hashes) }

// Intersect counts shared strands between two sorted sets: the paper's
// Sim(q, t).
func (s Set) Intersect(t Set) int {
	i, j, n := 0, 0, 0
	for i < len(s.Hashes) && j < len(t.Hashes) {
		switch {
		case s.Hashes[i] == t.Hashes[j]:
			n++
			i++
			j++
		case s.Hashes[i] < t.Hashes[j]:
			i++
		default:
			j++
		}
	}
	return n
}
