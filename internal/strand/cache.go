package strand

import (
	"sort"
	"sync"
	"sync/atomic"

	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// Telemetry is the optional handle set extraction records against; a
// nil pointer (and any nil field) disables the corresponding metric.
// It deliberately lives outside Options: Options is hashed into the
// block-cache context seed (contextSeed), and telemetry must never
// influence cache keys.
type Telemetry struct {
	// Blocks counts blocks canonicalized (cache hits included).
	Blocks *telemetry.Counter
	// Computed counts blocks that ran full extraction (cache misses
	// plus uncached extractors).
	Computed *telemetry.Counter
	// Strands counts canonical strands produced by full extraction.
	Strands *telemetry.Counter
}

// blockEntry is one cached canonicalization result: everything the
// analysis pipeline derives from a single lifted block, ready to merge
// into a procedure without re-running extraction.
type blockEntry struct {
	// hashes are the block's canonical strand hashes, sorted unique.
	hashes []uint64
	// ids are the dense interned equivalents of hashes, sorted unique;
	// nil when the cache's session has no interner.
	ids []uint32
	// markers are the block's identity-bearing constants (see
	// ConstMarkers), sorted unique.
	markers []uint32
}

// BlockCache is a session-scoped block canonicalization cache: it maps
// the pre-canonical fingerprint of a lifted basic block to the block's
// already-computed canonical strand hashes, dense strand IDs and marker
// constants. Firmware corpora are massively self-similar — the same
// statically-linked library code repeats across executables and images
// — so a session analyzing many executables sees the same block over
// and over; a hit skips strand extraction, compiler-style
// re-optimization, hashing and interning for that block.
//
// Soundness: an entry is keyed by a 128-bit fingerprint of the block's
// statement stream seeded with a hash of the full extraction context
// (ABI, options, absolute section map) — exactly the inputs extraction
// is a pure function of — so fingerprint equality implies identical
// canonical strands up to hash collision (see uir.BlockFingerprint).
//
// A BlockCache is safe for concurrent use; entries are immutable once
// published. Dense IDs are only meaningful under the session interner
// the cache was created for: extractors attached to a different
// interner bypass the cache entirely.
type BlockCache struct {
	it   Interner
	mu   sync.RWMutex
	m    map[uir.Fingerprint]*blockEntry
	seen atomic.Int64
	hits atomic.Int64
}

// NewBlockCache creates an empty cache bound to a session interner
// (which may be nil for session-less use; entries then carry no dense
// IDs).
func NewBlockCache(it Interner) *BlockCache {
	return &BlockCache{it: it, m: map[uir.Fingerprint]*blockEntry{}}
}

// CacheStats summarizes a BlockCache's traffic.
type CacheStats struct {
	// Blocks is the number of blocks looked up.
	Blocks int64
	// Hits is the number of lookups answered from the cache.
	Hits int64
	// Unique is the number of distinct canonicalized blocks stored.
	Unique int
}

// HitRate returns Hits/Blocks, or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Blocks)
}

// Stats reports the cache's lookup and occupancy counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.RLock()
	unique := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Blocks: c.seen.Load(), Hits: c.hits.Load(), Unique: unique}
}

func (c *BlockCache) lookup(k uir.Fingerprint) *blockEntry {
	c.mu.RLock()
	e := c.m[k]
	c.mu.RUnlock()
	c.seen.Add(1)
	if e != nil {
		c.hits.Add(1)
	}
	return e
}

// store publishes an entry, first-writer-wins: by the soundness
// contract concurrent writers computed identical entries, so keeping
// either is correct and the returned entry is the canonical one.
func (c *BlockCache) store(k uir.Fingerprint, e *blockEntry) *blockEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[k]; ok {
		return prev
	}
	c.m[k] = e
	return e
}

// Extractor is a per-worker front end to strand extraction: it owns the
// reusable analysis scratch (node arena, substitution maps, renderer)
// and consults the session's BlockCache. An Extractor is NOT safe for
// concurrent use — create one per worker goroutine; the cache behind
// them is shared.
type Extractor struct {
	opt    *Options
	it     Interner
	cache  *BlockCache
	seed   uint64
	ranges uir.SectionRanges

	sc *extractScratch
	// merge scratch, reused across procedures.
	accH, tmpH []uint64
	accI, tmpI []uint32
	accM, tmpM []uint32
	blockM     []uint32

	// telemetry handles, copied out of the Telemetry struct so recording
	// is an unconditional nil-safe call.
	telBlocks   *telemetry.Counter
	telComputed *telemetry.Counter
	telStrands  *telemetry.Counter
}

// NewExtractor creates an extractor for one executable's extraction
// options under an analyzer session. A nil cache — or a cache bound to
// a different interner than it — disables caching; extraction then
// still runs single-pass with reused scratch.
func NewExtractor(opt *Options, it Interner, cache *BlockCache) *Extractor {
	return NewExtractorWith(opt, it, cache, nil)
}

// NewExtractorWith is NewExtractor recording extraction metrics into
// tel. Extraction output (and cache keys) are identical.
func NewExtractorWith(opt *Options, it Interner, cache *BlockCache, tel *Telemetry) *Extractor {
	ex := &Extractor{opt: opt, it: it, sc: newExtractScratch()}
	if cache != nil && cache.it == it {
		ex.cache = cache
		ex.seed = contextSeed(opt)
		ex.ranges = uir.SectionRanges{
			TextLo: opt.Sections.TextLo, TextHi: opt.Sections.TextHi,
			DataLo: opt.Sections.DataLo, DataHi: opt.Sections.DataHi,
		}
	}
	if tel != nil {
		ex.telBlocks = tel.Blocks
		ex.telComputed = tel.Computed
		ex.telStrands = tel.Strands
	}
	return ex
}

// contextSeed hashes every extraction input that is not part of the
// block itself: the options and the absolute section map. Folding it
// into the fingerprint seed keys the cache per extraction context, which
// is what makes a fingerprint hit imply identical canonical strands.
func contextSeed(opt *Options) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	word := func(w uint64) { h = (h ^ w) * prime }
	if opt.KeepTrivial {
		word(1)
	}
	m := opt.Sections
	word(uint64(m.TextLo))
	word(uint64(m.TextHi))
	word(uint64(m.DataLo))
	word(uint64(m.DataHi))
	if abi := opt.ABI; abi != nil {
		word(2)
		word(uint64(abi.Arch))
		word(uint64(abi.RetReg))
		word(uint64(abi.SP))
		word(uint64(abi.LinkReg))
		for _, r := range abi.ArgRegs {
			word(3<<32 | uint64(r))
		}
		for _, r := range abi.Scratch {
			word(4<<32 | uint64(r))
		}
		for _, r := range abi.StatusRegs {
			word(5<<32 | uint64(r))
		}
	}
	return h
}

// Proc extracts every block of one procedure in a single pass,
// returning the merged canonical strand set (with dense IDs when under
// a session) and the procedure's marker constants. It replaces the
// FromBlocks + ConstMarkers pair, which each re-extracted every block.
func (ex *Extractor) Proc(blocks []*uir.Block) (Set, []uint32) {
	ex.accH = ex.accH[:0]
	ex.accI = ex.accI[:0]
	ex.accM = ex.accM[:0]
	for _, b := range blocks {
		e := ex.block(b)
		ex.accH, ex.tmpH = mergeU64(ex.tmpH[:0], ex.accH, e.hashes), ex.accH
		ex.accM, ex.tmpM = mergeU32(ex.tmpM[:0], ex.accM, e.markers), ex.accM
		if e.ids != nil {
			ex.accI, ex.tmpI = mergeU32(ex.tmpI[:0], ex.accI, e.ids), ex.accI
		}
	}
	set := Set{Hashes: append(make([]uint64, 0, len(ex.accH)), ex.accH...)}
	if ex.it != nil {
		set.IDs = append(make([]uint32, 0, len(ex.accI)), ex.accI...)
		set.It = ex.it
	}
	var markers []uint32
	if len(ex.accM) > 0 {
		markers = append(make([]uint32, 0, len(ex.accM)), ex.accM...)
	}
	return set, markers
}

// block returns the canonicalization of one block, from the cache when
// possible.
func (ex *Extractor) block(b *uir.Block) *blockEntry {
	ex.telBlocks.Inc()
	if ex.cache == nil {
		return ex.compute(b)
	}
	k := uir.BlockFingerprint(b, ex.ranges, ex.seed)
	if e := ex.cache.lookup(k); e != nil {
		return e
	}
	return ex.cache.store(k, ex.compute(b))
}

// compute runs extraction for one block and packages the result as an
// immutable entry.
func (ex *Extractor) compute(b *uir.Block) *blockEntry {
	st := ex.sc.analyze(b, ex.opt)
	strands := st.render(ex.opt)
	ex.telComputed.Inc()
	ex.telStrands.Add(int64(len(strands)))
	e := &blockEntry{}
	if len(strands) == 0 {
		return e
	}
	e.hashes = make([]uint64, len(strands))
	ex.blockM = ex.blockM[:0]
	for i, s := range strands {
		e.hashes[i] = s.Hash
		collectHexConstants(s.Text, func(v uint32) {
			if isMarker(v) {
				ex.blockM = append(ex.blockM, v)
			}
		})
	}
	// Strands are unique by hash already (render dedups); sort for merge.
	sort.Slice(e.hashes, func(i, j int) bool { return e.hashes[i] < e.hashes[j] })
	if len(ex.blockM) > 0 {
		sort.Slice(ex.blockM, func(i, j int) bool { return ex.blockM[i] < ex.blockM[j] })
		e.markers = append(make([]uint32, 0, len(ex.blockM)), ex.blockM[0])
		for _, v := range ex.blockM[1:] {
			if v != e.markers[len(e.markers)-1] {
				e.markers = append(e.markers, v)
			}
		}
	}
	if ex.it != nil {
		e.ids = internAll(ex.it, e.hashes, make([]uint32, 0, len(e.hashes)))
		sort.Slice(e.ids, func(i, j int) bool { return e.ids[i] < e.ids[j] })
	}
	return e
}

// mergeU64 appends the sorted-unique union of a and b (each sorted
// unique) to dst and returns it.
func mergeU64(dst, a, b []uint64) []uint64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// mergeU32 is mergeU64 for uint32 slices.
func mergeU32(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
