package strand

import (
	"strings"
	"testing"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	"firmup/internal/isa/isatest"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/uir"
)

// --- builder rule tests ---

func TestCommutativeOrderingIgnoresRegisters(t *testing.T) {
	bd := newBuilder()
	a := bd.input(5)
	b := bd.input(9)
	// add(a,b) and add(b,a) must canonicalize identically modulo input
	// naming: their blind keys are equal, so ordering is stable — and the
	// rendered text (which renames inputs by appearance) must agree.
	n1 := bd.bin(uir.OpAdd, a, b)
	n2 := bd.bin(uir.OpAdd, b, a)
	opt := &Options{}
	r1 := newRenderer(bd, opt)
	t1 := r1.finish("ret " + r1.expr(n1))
	r2 := newRenderer(bd, opt)
	t2 := r2.finish("ret " + r2.expr(n2))
	if t1 != t2 {
		t.Errorf("commutative renders differ:\n%s\nvs\n%s", t1, t2)
	}
}

func TestConstantFolding(t *testing.T) {
	bd := newBuilder()
	n := bd.bin(uir.OpAdd, bd.konst(2), bd.konst(3))
	if n.kind != nConst || n.val != 5 {
		t.Errorf("2+3 = %+v", n)
	}
	// lui/ori pair: (0x47<<16) | 0x1234.
	hi := bd.konst(0x47 << 16)
	lo := bd.bin(uir.OpOr, hi, bd.konst(0x1234))
	if lo.kind != nConst || lo.val != 0x471234 {
		t.Errorf("lui/ori fold = %+v", lo)
	}
}

func TestIdentities(t *testing.T) {
	bd := newBuilder()
	x := bd.input(4)
	cases := []struct {
		got  *node
		want *node
	}{
		{bd.bin(uir.OpAdd, x, bd.konst(0)), x},
		{bd.bin(uir.OpMul, x, bd.konst(1)), x},
		{bd.bin(uir.OpXor, x, x), bd.konst(0)},
		{bd.bin(uir.OpSub, x, x), bd.konst(0)},
		{bd.bin(uir.OpAnd, x, x), x},
		{bd.bin(uir.OpOr, x, x), x},
		{bd.bin(uir.OpSub, bd.konst(0), x), bd.un(uir.OpNeg, x)},
		{bd.un(uir.OpNot, bd.un(uir.OpNot, x)), x},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %+v want %+v", i, c.got, c.want)
		}
	}
}

func TestMulByShiftNormalization(t *testing.T) {
	bd := newBuilder()
	x := bd.input(4)
	byMul := bd.bin(uir.OpMul, x, bd.konst(8))
	byShift := bd.bin(uir.OpShl, x, bd.konst(3))
	if byMul != byShift {
		t.Error("x*8 and x<<3 must canonicalize to the same node")
	}
}

func TestCompareNegationRules(t *testing.T) {
	bd := newBuilder()
	a, b := bd.input(4), bd.input(5)
	// xor(slt(b,a), 1) — the MIPS LE idiom — must equal les(a,b).
	mipsLE := bd.bin(uir.OpXor, bd.bin(uir.OpCmpLTS, b, a), bd.konst(1))
	les := bd.bin(uir.OpCmpLES, a, b)
	if mipsLE != les {
		t.Error("xor(lt(b,a),1) != les(a,b)")
	}
	// or(lts(a,b), eq(a,b)) — the flags LE idiom — must equal les(a,b).
	flagsLE := bd.bin(uir.OpOr, bd.bin(uir.OpCmpLTS, a, b), bd.bin(uir.OpCmpEQ, a, b))
	if flagsLE != les {
		t.Error("or(lt,eq) != les")
	}
	// ltu(0,x) — the sltu-zero idiom — must equal ne(x,0).
	sltuZero := bd.bin(uir.OpCmpLTU, bd.konst(0), a)
	ne := bd.bin(uir.OpCmpNE, a, bd.konst(0))
	if sltuZero != ne {
		t.Error("ltu(0,x) != ne(x,0)")
	}
}

func TestSignExtensionIdioms(t *testing.T) {
	bd := newBuilder()
	x := bd.input(4)
	shiftPair := bd.bin(uir.OpShrS, bd.bin(uir.OpShl, x, bd.konst(24)), bd.konst(24))
	direct := bd.un(uir.OpSext8, x)
	if shiftPair != direct {
		t.Error("shl/sar pair != sext8")
	}
	zextShift := bd.bin(uir.OpShrU, bd.bin(uir.OpShl, x, bd.konst(24)), bd.konst(24))
	andMask := bd.bin(uir.OpAnd, x, bd.konst(0xFF))
	zext := bd.un(uir.OpZext8, x)
	if zextShift != andMask || zext != andMask {
		t.Error("zero-extension idioms disagree")
	}
}

func TestSelectNormalization(t *testing.T) {
	bd := newBuilder()
	a, b := bd.input(4), bd.input(5)
	cond := bd.bin(uir.OpCmpEQ, a, b)
	if got := bd.sel(cond, bd.konst(1), bd.konst(0)); got != cond {
		t.Errorf("select(eq,1,0) = %+v, want the compare itself", got)
	}
	ne := bd.bin(uir.OpCmpNE, a, b)
	if got := bd.sel(cond, bd.konst(0), bd.konst(1)); got != ne {
		t.Errorf("select(eq,0,1) = %+v, want ne", got)
	}
}

func TestMaskElimination(t *testing.T) {
	bd := newBuilder()
	x := bd.input(4)
	load1 := bd.load(x, 1)
	if got := bd.bin(uir.OpAnd, load1, bd.konst(0xFF)); got != load1 {
		t.Error("mask of a byte load must vanish")
	}
	nested := bd.bin(uir.OpAnd, bd.bin(uir.OpAnd, x, bd.konst(0xFFF)), bd.konst(0xFF))
	single := bd.bin(uir.OpAnd, x, bd.konst(0xFF))
	if nested != single {
		t.Error("nested masks must combine")
	}
}

// --- Fig. 3-style canonicalization test ---

// A MIPS sequence materializing 0x1F and branching on equality must
// produce the compact canonical branch strand of the paper's Fig. 3.
func TestFig3Canonicalization(t *testing.T) {
	// move s5, v0 ; li v0, 0x1F ; bne s5, v0, 0x40E744
	blk := &uir.Block{Addr: 0x400100, Size: 12, Stmts: []uir.Stmt{
		uir.Get{Dst: 0, Reg: 2},                                    // v0
		uir.Put{Reg: 21, Src: uir.T(0)},                            // s5 = v0
		uir.Put{Reg: 2, Src: uir.C(0x1F)},                          // li v0, 0x1F
		uir.Get{Dst: 1, Reg: 21},                                   // s5
		uir.Get{Dst: 2, Reg: 2},                                    // v0
		uir.Bin{Dst: 3, Op: uir.OpCmpNE, A: uir.T(1), B: uir.T(2)}, // s5 != v0
		uir.Exit{Kind: uir.ExitCond, Cond: uir.T(3), Target: uir.CK(0x40E744, uir.ConstCode)},
	}}
	opt := &Options{
		Sections: obj.SectionMap{TextLo: 0x400000, TextHi: 0x500000},
	}
	strands := ExtractBlock(blk, opt)
	var branch string
	for _, s := range strands {
		if strings.Contains(s.Text, "br ") {
			branch = s.Text
		}
	}
	if branch == "" {
		t.Fatalf("no branch strand in %v", strands)
	}
	// The constant is folded into the compare, the register identity is
	// folded into arg0, and the code offset is eliminated.
	want := "n0 = icmp.ne(arg0, 0x1f)\nbr n0 -> off0"
	if branch != want {
		t.Errorf("branch strand:\n%s\nwant:\n%s", branch, want)
	}
}

func TestOffsetElimination(t *testing.T) {
	blk := &uir.Block{Stmts: []uir.Stmt{
		// Materialize a data address and a plain constant; store the
		// constant at a struct offset from the data address.
		uir.Mov{Dst: 0, Src: uir.C(0x10008000)}, // in data range
		uir.Bin{Dst: 1, Op: uir.OpAdd, A: uir.T(0), B: uir.C(16)},
		uir.Store{Addr: uir.T(1), Src: uir.C(0x1F), Size: 4},
	}}
	opt := &Options{Sections: obj.SectionMap{DataLo: 0x10000000, DataHi: 0x10010000}}
	strands := ExtractBlock(blk, opt)
	if len(strands) == 0 {
		t.Fatal("no strands")
	}
	text := strands[0].Text
	if !strings.Contains(text, "off0") {
		t.Errorf("data address not eliminated: %s", text)
	}
	if strings.Contains(text, "0x10008000") {
		t.Errorf("raw data address leaked: %s", text)
	}
	if !strings.Contains(text, "0x1f") {
		t.Errorf("plain constant must be retained: %s", text)
	}
}

// Struct offsets from a pointer argument (not a static address) must be
// retained — they describe the type of data the procedure handles.
func TestStructOffsetRetained(t *testing.T) {
	blk := &uir.Block{Stmts: []uir.Stmt{
		uir.Get{Dst: 0, Reg: 4}, // pointer argument
		uir.Bin{Dst: 1, Op: uir.OpAdd, A: uir.T(0), B: uir.C(16)},
		uir.Store{Addr: uir.T(1), Src: uir.C(0x1F), Size: 4},
	}}
	opt := &Options{Sections: obj.SectionMap{DataLo: 0x10000000, DataHi: 0x10010000}}
	strands := ExtractBlock(blk, opt)
	if len(strands) != 1 {
		t.Fatalf("strands = %v", render(strands))
	}
	if !strings.Contains(strands[0].Text, "0x10") {
		t.Errorf("struct offset lost: %s", strands[0].Text)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	blk := &uir.Block{Stmts: []uir.Stmt{
		uir.Get{Dst: 0, Reg: 29},
		uir.Bin{Dst: 1, Op: uir.OpAdd, A: uir.T(0), B: uir.C(8)},
		uir.Store{Addr: uir.T(1), Src: uir.C(7), Size: 4},
		uir.Load{Dst: 2, Addr: uir.T(1), Size: 4},
		uir.Bin{Dst: 3, Op: uir.OpAdd, A: uir.T(2), B: uir.C(1)},
		uir.Put{Reg: 16, Src: uir.T(3)},
	}}
	abi := &uir.ABI{SP: 29}
	strands := ExtractBlock(blk, &Options{ABI: abi})
	found := false
	for _, s := range strands {
		if s.Text == "ret 0x8" {
			found = true // load forwarded 7, then folded 7+1
		}
	}
	if !found {
		t.Errorf("store-to-load forwarding failed: %v", render(strands))
	}
}

func render(ss []Strand) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s.Text)
	}
	return out
}

// --- set operations ---

func TestSetIntersect(t *testing.T) {
	a := Set{Hashes: []uint64{1, 3, 5, 7}}
	b := Set{Hashes: []uint64{2, 3, 4, 7, 9}}
	if got := a.Intersect(b); got != 2 {
		t.Errorf("Intersect = %d, want 2", got)
	}
	if got := b.Intersect(a); got != 2 {
		t.Error("Intersect must be symmetric")
	}
	if a.Intersect(Set{}) != 0 {
		t.Error("empty set")
	}
	if a.Intersect(a) != a.Size() {
		t.Error("self intersection")
	}
}

// --- integration: cross-tool-chain similarity ---

func buildSets(t *testing.T, arch uir.Arch, prof compiler.Profile, opt isa.Options) map[string]Set {
	t.Helper()
	pkg, err := compiler.CompileToMIR(isatest.Source, prof)
	if err != nil {
		t.Fatal(err)
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, opt)
	if err != nil {
		t.Fatal(err)
	}
	f := obj.FromArtifact(art)
	rec, err := cfg.Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	sets := map[string]Set{}
	for _, p := range rec.Procs {
		sets[p.Name] = FromBlocks(p.Blocks, &Options{ABI: be.ABI(), Sections: f.Map()})
	}
	return sets
}

// Same source, two divergent tool chains, same architecture: every
// procedure's best match in the other binary must be itself.
func TestCrossToolchainBestMatch(t *testing.T) {
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		q := buildSets(t, arch, compiler.Profile{OptLevel: 2},
			isa.Options{TextBase: 0x400000, RegSeed: 1, SchedSeed: 1, MulByShift: true})
		tt := buildSets(t, arch, compiler.Profile{OptLevel: 1},
			isa.Options{TextBase: 0x80000000, RegSeed: 77, SchedSeed: 42, ShuffleProcs: true})
		correct, total := 0, 0
		for name, qs := range q {
			if qs.Size() < 3 {
				continue // tiny procedures carry too little signal alone
			}
			total++
			best, bestSim := "", -1
			for tname, ts := range tt {
				if sim := qs.Intersect(ts); sim > bestSim {
					best, bestSim = tname, sim
				}
			}
			if best == name {
				correct++
			}
		}
		if total == 0 {
			t.Fatalf("%v: no procedures to match", arch)
		}
		if ratio := float64(correct) / float64(total); ratio < 0.8 {
			t.Errorf("%v: cross-tool-chain best-match accuracy %.2f (%d/%d), want >= 0.8",
				arch, ratio, correct, total)
		}
	}
}

// Cross-architecture: the canonicalizer must bridge at least the three
// register-argument ISAs for most procedures.
func TestCrossArchitectureOverlap(t *testing.T) {
	mips := buildSets(t, uir.ArchMIPS32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000})
	arm := buildSets(t, uir.ArchARM32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x8000})
	ppc := buildSets(t, uir.ArchPPC32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x10000000})
	pairs := []struct {
		name string
		a, b map[string]Set
	}{{"mips-arm", mips, arm}, {"mips-ppc", mips, ppc}, {"arm-ppc", arm, ppc}}
	for _, pr := range pairs {
		correct, total := 0, 0
		for name, qs := range pr.a {
			if qs.Size() < 4 {
				continue
			}
			total++
			best, bestSim := "", -1
			for tname, ts := range pr.b {
				if sim := qs.Intersect(ts); sim > bestSim {
					best, bestSim = tname, sim
				}
			}
			if best == name {
				correct++
			}
		}
		if total == 0 {
			t.Fatalf("%s: nothing to match", pr.name)
		}
		ratio := float64(correct) / float64(total)
		t.Logf("%s: cross-arch best-match accuracy %.2f (%d/%d)", pr.name, ratio, correct, total)
		if ratio < 0.6 {
			t.Errorf("%s: cross-arch accuracy %.2f too low", pr.name, ratio)
		}
	}
}

// Determinism: extraction of the same binary twice yields identical sets.
func TestExtractionDeterministic(t *testing.T) {
	a := buildSets(t, uir.ArchMIPS32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000})
	b := buildSets(t, uir.ArchMIPS32, compiler.Profile{OptLevel: 2}, isa.Options{TextBase: 0x400000})
	for name, sa := range a {
		sb := b[name]
		if sa.Size() != sb.Size() || sa.Intersect(sb) != sa.Size() {
			t.Errorf("%s: extraction not deterministic", name)
		}
	}
}

type countingInterner struct {
	ids map[uint64]uint32
}

func (it *countingInterner) Intern(h uint64) uint32 {
	id, ok := it.ids[h]
	if !ok {
		id = uint32(len(it.ids))
		it.ids[h] = id
	}
	return id
}

func TestSetInterned(t *testing.T) {
	it := &countingInterner{ids: map[uint64]uint32{}}
	// Intentionally intern a set whose hash order differs from the
	// interner's assignment order by pre-seeding one hash.
	it.Intern(900)
	s := Set{Hashes: []uint64{5, 200, 900}}.Interned(it)
	if s.It != Interner(it) {
		t.Error("interned set must carry its session")
	}
	if len(s.IDs) != 3 {
		t.Fatalf("IDs = %v, want 3 entries", s.IDs)
	}
	for i := 1; i < len(s.IDs); i++ {
		if s.IDs[i-1] >= s.IDs[i] {
			t.Errorf("IDs not sorted unique: %v", s.IDs)
		}
	}
	// The same hashes interned again map to the same IDs.
	s2 := Set{Hashes: []uint64{200, 900}}.Interned(it)
	if s2.IDs[0] != s.IDs[0] && s2.IDs[0] != s.IDs[1] && s2.IDs[0] != s.IDs[2] {
		t.Errorf("re-interned hash got a fresh ID: %v vs %v", s2.IDs, s.IDs)
	}
	// Nil interner is the identity.
	if n := (Set{Hashes: []uint64{1}}).Interned(nil); n.It != nil || n.IDs != nil {
		t.Error("Interned(nil) must be a no-op")
	}
}
