// Package strand implements procedure decomposition into canonical
// strands — the representation at the core of the paper's similarity
// metric.
//
// A lifted basic block is decomposed into data-flow slices (Algorithm 1),
// each slice is brought to a succinct canonical form (standing in for the
// paper's LLVM `opt` re-optimization: constant folding and propagation,
// expression simplification, instruction combining, common-subexpression
// elimination and dead-code elimination), offsets into the binary's code
// and data sections are eliminated while stack and struct offsets are
// retained, input registers are folded into positional arguments, names
// are normalized by order of appearance, and the rendered text is hashed.
package strand

import (
	"fmt"
	"sort"
	"strings"

	"firmup/internal/uir"
)

// Node kinds of the expression DAG.
type nodeKind uint8

const (
	nConst   nodeKind = iota
	nInput            // architectural register read before written
	nCallRes          // value produced by the k-th call in the block
	nLoad             // memory read with no dominating store in the block
	nBin
	nUn
	nSel
)

// node is a hash-consed DAG node; equal structure ⇒ identical pointer
// within one builder.
type node struct {
	kind    nodeKind
	op      uir.Op
	val     uint32
	reg     uir.Reg
	idx     int   // call index for nCallRes
	size    uint8 // load size
	a, b, c *node
}

// builder constructs and canonicalizes DAG nodes for one basic block.
// Nodes are allocated from a chunked arena so a builder reused across
// many blocks (an Extractor's per-worker scratch) allocates node memory
// in slabs instead of one heap object per node.
type builder struct {
	cons  map[string]*node
	blind map[*node]string
	arena []node
}

// arenaChunk is the node-slab size. Chunks are never grown in place —
// a full chunk is abandoned to the nodes pointing into it and a fresh
// one started — so node pointers stay stable.
const arenaChunk = 256

func newBuilder() *builder {
	return &builder{cons: map[string]*node{}, blind: map[*node]string{}}
}

// reset clears the interning tables for the next block. The current
// arena chunk keeps filling: nodes of previous blocks are unreachable
// once their strands are rendered, and the chunk tail is still free.
func (bd *builder) reset() {
	clear(bd.cons)
	clear(bd.blind)
}

func (bd *builder) alloc() *node {
	if len(bd.arena) == cap(bd.arena) {
		bd.arena = make([]node, 0, arenaChunk)
	}
	bd.arena = bd.arena[:len(bd.arena)+1]
	return &bd.arena[len(bd.arena)-1]
}

// intern hash-conses a node.
func (bd *builder) intern(n node) *node {
	k := identKey(&n)
	if p, ok := bd.cons[k]; ok {
		return p
	}
	p := bd.alloc()
	*p = n
	bd.cons[k] = p
	return p
}

// identKey is the identity-full structural key used for hash-consing.
func identKey(n *node) string {
	var sb strings.Builder
	writeIdentKey(&sb, n)
	return sb.String()
}

func writeIdentKey(sb *strings.Builder, n *node) {
	switch n.kind {
	case nConst:
		fmt.Fprintf(sb, "c%x", n.val)
	case nInput:
		fmt.Fprintf(sb, "i%d", n.reg)
	case nCallRes:
		fmt.Fprintf(sb, "r%d", n.idx)
	case nLoad:
		fmt.Fprintf(sb, "l%d(", n.size)
		writeIdentKey(sb, n.a)
		sb.WriteByte(')')
	case nBin:
		fmt.Fprintf(sb, "b%d(", n.op)
		writeIdentKey(sb, n.a)
		sb.WriteByte(',')
		writeIdentKey(sb, n.b)
		sb.WriteByte(')')
	case nUn:
		fmt.Fprintf(sb, "u%d(", n.op)
		writeIdentKey(sb, n.a)
		sb.WriteByte(')')
	case nSel:
		sb.WriteString("s(")
		writeIdentKey(sb, n.a)
		sb.WriteByte(',')
		writeIdentKey(sb, n.b)
		sb.WriteByte(',')
		writeIdentKey(sb, n.c)
		sb.WriteByte(')')
	}
}

// blindKey is the register-identity-blind structural key used for
// commutative operand ordering, so that two compilations assigning
// different registers order operands the same way.
func (bd *builder) blindKey(n *node) string {
	if k, ok := bd.blind[n]; ok {
		return k
	}
	var sb strings.Builder
	switch n.kind {
	case nConst:
		// Constants rank last so canonical operand order is
		// expression-then-constant (LLVM style).
		fmt.Fprintf(&sb, "9c%x", n.val)
	case nInput:
		sb.WriteString("1i")
	case nCallRes:
		sb.WriteString("1r")
	case nLoad:
		fmt.Fprintf(&sb, "2l%d(%s)", n.size, bd.blindKey(n.a))
	case nBin:
		fmt.Fprintf(&sb, "3b%02d(%s,%s)", n.op, bd.blindKey(n.a), bd.blindKey(n.b))
	case nUn:
		fmt.Fprintf(&sb, "3u%02d(%s)", n.op, bd.blindKey(n.a))
	case nSel:
		fmt.Fprintf(&sb, "3s(%s,%s,%s)", bd.blindKey(n.a), bd.blindKey(n.b), bd.blindKey(n.c))
	}
	k := sb.String()
	bd.blind[n] = k
	return k
}

func (bd *builder) konst(v uint32) *node  { return bd.intern(node{kind: nConst, val: v}) }
func (bd *builder) input(r uir.Reg) *node { return bd.intern(node{kind: nInput, reg: r}) }
func (bd *builder) callRes(idx int) *node { return bd.intern(node{kind: nCallRes, idx: idx}) }
func (bd *builder) load(addr *node, size uint8) *node {
	return bd.intern(node{kind: nLoad, a: addr, size: size})
}

// maxBits returns an upper bound on the number of significant low bits of
// the node's value, or 32 when unknown. Used for mask elimination.
func maxBits(n *node) int {
	switch n.kind {
	case nConst:
		b := 0
		for v := n.val; v != 0; v >>= 1 {
			b++
		}
		return b
	case nLoad:
		return int(n.size) * 8
	case nBin:
		if n.op.IsCompare() {
			return 1
		}
		if n.op == uir.OpAnd {
			return min(maxBits(n.a), maxBits(n.b))
		}
	case nUn:
		switch n.op {
		case uir.OpBool:
			return 1
		case uir.OpZext8:
			return 8
		case uir.OpZext16:
			return 16
		}
	case nSel:
		return max(maxBits(n.b), maxBits(n.c))
	}
	return 32
}

func isBoolean(n *node) bool { return maxBits(n) == 1 }

// negateCompare returns the complement of a comparison node, or nil.
func (bd *builder) negateCompare(n *node) *node {
	if n.kind != nBin || !n.op.IsCompare() {
		return nil
	}
	switch n.op {
	case uir.OpCmpEQ:
		return bd.bin(uir.OpCmpNE, n.a, n.b)
	case uir.OpCmpNE:
		return bd.bin(uir.OpCmpEQ, n.a, n.b)
	case uir.OpCmpLTS:
		return bd.bin(uir.OpCmpLES, n.b, n.a)
	case uir.OpCmpLES:
		return bd.bin(uir.OpCmpLTS, n.b, n.a)
	case uir.OpCmpLTU:
		return bd.bin(uir.OpCmpLEU, n.b, n.a)
	case uir.OpCmpLEU:
		return bd.bin(uir.OpCmpLTU, n.b, n.a)
	}
	return nil
}

// bin builds a canonicalized binary node.
func (bd *builder) bin(op uir.Op, a, b *node) *node {
	// Constant folding.
	if a.kind == nConst && b.kind == nConst {
		return bd.konst(uir.EvalBin(op, a.val, b.val))
	}
	// Put the constant operand on the right for commutative ops so the
	// pattern rules below need only check one side.
	if op.IsCommutative() && a.kind == nConst && b.kind != nConst {
		a, b = b, a
	}
	// Normalize multiplication by a power of two to a shift (dissolving
	// the mul-vs-shift instruction-selection idiom).
	if op == uir.OpMul {
		if c, x, ok := constOperand(a, b); ok && c.val != 0 && c.val&(c.val-1) == 0 {
			k := uint32(0)
			for v := c.val; v > 1; v >>= 1 {
				k++
			}
			return bd.bin(uir.OpShl, x, bd.konst(k))
		}
	}
	// Identities and annihilators with a constant operand.
	if c, x, ok := constOperand(a, b); ok {
		switch op {
		case uir.OpAdd, uir.OpOr, uir.OpXor:
			if c.val == 0 {
				return x
			}
		case uir.OpMul:
			if c.val == 1 {
				return x
			}
			if c.val == 0 {
				return bd.konst(0)
			}
		case uir.OpAnd:
			if c.val == 0xFFFFFFFF {
				return x
			}
			if c.val == 0 {
				return bd.konst(0)
			}
			// Mask already implied by the operand's width.
			if bits := maxBits(x); bits < 32 && c.val == (uint32(1)<<bits)-1 {
				return x
			}
		}
	}
	// Right-constant identities for non-commutative ops.
	if b.kind == nConst {
		switch op {
		case uir.OpSub, uir.OpShl, uir.OpShrU, uir.OpShrS:
			if b.val == 0 {
				return a
			}
		case uir.OpDivS, uir.OpDivU:
			if b.val == 1 {
				return a
			}
		}
	}
	// 0 - x → neg x.
	if op == uir.OpSub && a.kind == nConst && a.val == 0 {
		return bd.un(uir.OpNeg, b)
	}
	// x - x → 0, x ^ x → 0, x & x → x, x | x → x.
	if a == b {
		switch op {
		case uir.OpSub, uir.OpXor:
			return bd.konst(0)
		case uir.OpAnd, uir.OpOr:
			return a
		case uir.OpCmpEQ, uir.OpCmpLES, uir.OpCmpLEU:
			return bd.konst(1)
		case uir.OpCmpNE, uir.OpCmpLTS, uir.OpCmpLTU:
			return bd.konst(0)
		}
	}
	// Nested masks: (x & C1) & C2 → x & (C1 & C2).
	if op == uir.OpAnd && b.kind == nConst && a.kind == nBin && a.op == uir.OpAnd && a.b.kind == nConst {
		return bd.bin(uir.OpAnd, a.a, bd.konst(a.b.val&b.val))
	}
	// Reassociate constant adds: (x + C1) + C2 → x + (C1+C2).
	if op == uir.OpAdd && b.kind == nConst && a.kind == nBin && a.op == uir.OpAdd && a.b.kind == nConst {
		return bd.bin(uir.OpAdd, a.a, bd.konst(a.b.val+b.val))
	}
	// Logical negation of a boolean: x ^ 1.
	if op == uir.OpXor {
		if c, x, ok := constOperand(a, b); ok && c.val == 1 && isBoolean(x) {
			if neg := bd.negateCompare(x); neg != nil {
				return neg
			}
			if x.kind == nUn && x.op == uir.OpBool {
				return bd.bin(uir.OpCmpEQ, x.a, bd.konst(0))
			}
		}
	}
	// ltu(0, x) → ne(x, 0)  (the "set if non-zero" idiom).
	if op == uir.OpCmpLTU && a.kind == nConst && a.val == 0 {
		return bd.bin(uir.OpCmpNE, b, bd.konst(0))
	}
	// lt(a,b) | eq(a,b) → le(a,b)  (LE synthesized from two bits).
	if op == uir.OpOr {
		if le := bd.combineLE(a, b); le != nil {
			return le
		}
		if le := bd.combineLE(b, a); le != nil {
			return le
		}
	}
	// Shift-pair extensions: (x << k) >>s k → sext, (x << k) >>u k → mask.
	if (op == uir.OpShrS || op == uir.OpShrU) && b.kind == nConst &&
		a.kind == nBin && a.op == uir.OpShl && a.b.kind == nConst && a.b.val == b.val {
		switch {
		case op == uir.OpShrS && b.val == 24:
			return bd.un(uir.OpSext8, a.a)
		case op == uir.OpShrS && b.val == 16:
			return bd.un(uir.OpSext16, a.a)
		case op == uir.OpShrU && b.val == 24:
			return bd.bin(uir.OpAnd, a.a, bd.konst(0xFF))
		case op == uir.OpShrU && b.val == 16:
			return bd.bin(uir.OpAnd, a.a, bd.konst(0xFFFF))
		}
	}
	// Commutative operand ordering by register-blind structural key;
	// stable on ties.
	if op.IsCommutative() {
		if bd.blindKey(b) < bd.blindKey(a) {
			a, b = b, a
		}
	}
	return bd.intern(node{kind: nBin, op: op, a: a, b: b})
}

// combineLE recognizes lt(a,b)|eq({a,b}) → le(a,b).
func (bd *builder) combineLE(lt, eq *node) *node {
	if lt.kind != nBin || eq.kind != nBin || eq.op != uir.OpCmpEQ {
		return nil
	}
	if lt.op != uir.OpCmpLTS && lt.op != uir.OpCmpLTU {
		return nil
	}
	sameOperands := (eq.a == lt.a && eq.b == lt.b) || (eq.a == lt.b && eq.b == lt.a)
	if !sameOperands {
		return nil
	}
	if lt.op == uir.OpCmpLTS {
		return bd.bin(uir.OpCmpLES, lt.a, lt.b)
	}
	return bd.bin(uir.OpCmpLEU, lt.a, lt.b)
}

func constOperand(a, b *node) (c, x *node, ok bool) {
	if a.kind == nConst {
		return a, b, true
	}
	if b.kind == nConst {
		return b, a, true
	}
	return nil, nil, false
}

// un builds a canonicalized unary node.
func (bd *builder) un(op uir.Op, a *node) *node {
	if a.kind == nConst {
		return bd.konst(uir.EvalUn(op, a.val))
	}
	switch op {
	case uir.OpBool:
		if isBoolean(a) {
			return a
		}
		return bd.bin(uir.OpCmpNE, a, bd.konst(0))
	case uir.OpZext8:
		return bd.bin(uir.OpAnd, a, bd.konst(0xFF))
	case uir.OpZext16:
		return bd.bin(uir.OpAnd, a, bd.konst(0xFFFF))
	case uir.OpNot:
		if a.kind == nUn && a.op == uir.OpNot {
			return a.a
		}
	case uir.OpNeg:
		if a.kind == nUn && a.op == uir.OpNeg {
			return a.a
		}
	}
	return bd.intern(node{kind: nUn, op: op, a: a})
}

// sel builds a canonicalized select node.
func (bd *builder) sel(cond, a, b *node) *node {
	if cond.kind == nConst {
		if cond.val != 0 {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	// select(c, 1, 0) → bool(c); select(c, 0, 1) → !c.
	if a.kind == nConst && b.kind == nConst {
		if a.val == 1 && b.val == 0 {
			return bd.un(uir.OpBool, cond)
		}
		if a.val == 0 && b.val == 1 {
			return bd.bin(uir.OpXor, bd.un(uir.OpBool, cond), bd.konst(1))
		}
	}
	return bd.intern(node{kind: nSel, a: cond, b: a, c: b})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sortedRegs returns map keys in ascending register order (deterministic
// iteration for effect emission).
func sortedRegs(m map[uir.Reg]*node) []uir.Reg {
	out := make([]uir.Reg, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
