package strand

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestMinHashDeterminism pins that signatures depend only on the ID
// multiset, not on element order or call history: the seed schedule is
// a protocol constant shared by live sessions and sealed shards.
func TestMinHashDeterminism(t *testing.T) {
	ids := []uint32{3, 17, 42, 99, 100000, 7}
	a := MinHash(ids)
	if len(a) != SigWords {
		t.Fatalf("signature has %d words, want %d", len(a), SigWords)
	}
	shuffled := []uint32{100000, 7, 42, 3, 99, 17}
	if b := MinHash(shuffled); !reflect.DeepEqual(a, b) {
		t.Error("signature depends on element order")
	}
	// Reusing a dirty buffer must not leak previous minima.
	buf := make([]uint32, SigWords)
	for i := range buf {
		buf[i] = 0
	}
	if c := MinHashInto(buf, ids); !reflect.DeepEqual(a, c) {
		t.Error("MinHashInto leaks previous buffer contents")
	}
}

func TestMinHashEmptySentinel(t *testing.T) {
	e := MinHash(nil)
	if !SigEmpty(e) {
		t.Error("empty set signature is not the sentinel")
	}
	if SigEmpty(MinHash([]uint32{1})) {
		t.Error("non-empty signature reported as sentinel")
	}
}

// TestMinHashJaccardEstimate checks the defining MinHash property: the
// fraction of agreeing signature words estimates the Jaccard
// similarity of the underlying sets. With 64 words the standard error
// is ~1/8, so the tolerances below are loose but would still catch a
// broken permutation schedule (which collapses to 0 or 1 agreement).
func TestMinHashJaccardEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]uint32, 0, 400)
	seen := map[uint32]bool{}
	for len(base) < 400 {
		id := uint32(rng.Intn(1 << 20))
		if !seen[id] {
			seen[id] = true
			base = append(base, id)
		}
	}
	for _, overlap := range []float64{0.2, 0.5, 0.9} {
		nShared := int(float64(len(base)) * overlap)
		other := append([]uint32(nil), base[:nShared]...)
		for len(other) < len(base) {
			id := uint32(1<<20 + rng.Intn(1<<20)) // disjoint range
			other = append(other, id)
		}
		jaccard := float64(nShared) / float64(2*len(base)-nShared)
		a, b := MinHash(base), MinHash(other)
		agree := 0
		for k := range a {
			if a[k] == b[k] {
				agree++
			}
		}
		est := float64(agree) / float64(SigWords)
		if diff := est - jaccard; diff < -0.2 || diff > 0.2 {
			t.Errorf("overlap %.1f: signature agreement %.3f vs true Jaccard %.3f", overlap, est, jaccard)
		}
	}
}
