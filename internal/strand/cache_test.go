package strand

import (
	"reflect"
	"sync"
	"testing"

	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/isa"
	"firmup/internal/isa/isatest"
	"firmup/internal/obj"
	"firmup/internal/uir"
)

// lockedInterner is a minimal thread-safe session interner for cache
// tests (the real one lives in corpusindex, which this package cannot
// import).
type lockedInterner struct {
	mu  sync.Mutex
	ids map[uint64]uint32
}

func newLockedInterner() *lockedInterner {
	return &lockedInterner{ids: map[uint64]uint32{}}
}

func (it *lockedInterner) Intern(h uint64) uint32 {
	it.mu.Lock()
	defer it.mu.Unlock()
	id, ok := it.ids[h]
	if !ok {
		id = uint32(len(it.ids))
		it.ids[h] = id
	}
	return id
}

// recoverProcs compiles the shared test source for one architecture and
// returns the recovered procedures plus the extraction options.
func recoverProcs(t *testing.T, arch uir.Arch) ([]*cfg.Proc, *Options) {
	t.Helper()
	pkg, err := compiler.CompileToMIR(isatest.Source, compiler.Profile{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	be, err := isa.ByArch(arch)
	if err != nil {
		t.Fatal(err)
	}
	art, err := be.Generate(pkg, isa.Options{TextBase: 0x400000})
	if err != nil {
		t.Fatal(err)
	}
	f := obj.FromArtifact(art)
	rec, err := cfg.Recover(f)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Procs, &Options{ABI: be.ABI(), Sections: f.Map()}
}

func sameU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The single-pass extractor must reproduce the FromBlocks + ConstMarkers
// pair exactly — hashes, dense IDs and markers — with the cache off, with
// the cache cold, and with the cache warm.
func TestExtractorMatchesFromBlocks(t *testing.T) {
	for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
		procs, opt := recoverProcs(t, arch)
		it := newLockedInterner()
		cache := NewBlockCache(it)
		plain := NewExtractor(opt, it, nil)
		cold := NewExtractor(opt, it, cache)
		warm := NewExtractor(opt, it, cache)
		for _, p := range procs {
			want := FromBlocks(p.Blocks, opt).Interned(it)
			wantMarkers := ConstMarkers(p.Blocks, opt)
			for name, ex := range map[string]*Extractor{"plain": plain, "cold": cold, "warm": warm} {
				set, markers := ex.Proc(p.Blocks)
				if !reflect.DeepEqual(set.Hashes, want.Hashes) {
					t.Fatalf("%v/%s/%s: hashes = %v, want %v", arch, p.Name, name, set.Hashes, want.Hashes)
				}
				if !sameU32(set.IDs, want.IDs) {
					t.Fatalf("%v/%s/%s: IDs = %v, want %v", arch, p.Name, name, set.IDs, want.IDs)
				}
				if set.It != Interner(it) {
					t.Fatalf("%v/%s/%s: set must carry the session interner", arch, p.Name, name)
				}
				if !sameU32(markers, wantMarkers) {
					t.Fatalf("%v/%s/%s: markers = %v, want %v", arch, p.Name, name, markers, wantMarkers)
				}
			}
		}
		st := cache.Stats()
		if st.Blocks == 0 || st.Unique == 0 {
			t.Fatalf("%v: cache saw no traffic: %+v", arch, st)
		}
		// The warm extractor replayed every block the cold one stored.
		if st.Hits < st.Blocks/2 {
			t.Fatalf("%v: expected ≥half hits after identical replay, got %+v", arch, st)
		}
	}
}

// Serial stats bookkeeping: every lookup is counted, and each miss
// stores exactly one entry.
func TestBlockCacheStats(t *testing.T) {
	procs, opt := recoverProcs(t, uir.ArchMIPS32)
	it := newLockedInterner()
	cache := NewBlockCache(it)
	ex := NewExtractor(opt, it, cache)
	blocks := 0
	for _, p := range procs {
		ex.Proc(p.Blocks)
		blocks += len(p.Blocks)
	}
	st := cache.Stats()
	if st.Blocks != int64(blocks) {
		t.Errorf("Blocks = %d, want %d", st.Blocks, blocks)
	}
	if int64(st.Unique) != st.Blocks-st.Hits {
		t.Errorf("Unique = %d, want Blocks-Hits = %d", st.Unique, st.Blocks-st.Hits)
	}
	if got := st.HitRate(); got < 0 || got > 1 {
		t.Errorf("HitRate = %v out of range", got)
	}
	for _, p := range procs {
		ex.Proc(p.Blocks)
	}
	st2 := cache.Stats()
	if st2.Hits != st.Hits+int64(blocks) {
		t.Errorf("replay hits = %d, want %d", st2.Hits, st.Hits+int64(blocks))
	}
	if st2.Unique != st.Unique {
		t.Errorf("replay grew the cache: %d -> %d", st.Unique, st2.Unique)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("zero-traffic HitRate must be 0")
	}
}

// A cache bound to a different interner than the extractor must be
// bypassed: dense IDs cached under one session are meaningless in
// another.
func TestExtractorCacheInternerMismatch(t *testing.T) {
	procs, opt := recoverProcs(t, uir.ArchMIPS32)
	cacheIt := newLockedInterner()
	exIt := newLockedInterner()
	cache := NewBlockCache(cacheIt)
	ex := NewExtractor(opt, exIt, cache)
	want := NewExtractor(opt, exIt, nil)
	for _, p := range procs {
		got, gotM := ex.Proc(p.Blocks)
		exp, expM := want.Proc(p.Blocks)
		if !reflect.DeepEqual(got.Hashes, exp.Hashes) || !sameU32(got.IDs, exp.IDs) || !sameU32(gotM, expM) {
			t.Fatalf("%s: mismatched-interner extraction diverged", p.Name)
		}
	}
	if st := cache.Stats(); st.Blocks != 0 || st.Unique != 0 {
		t.Errorf("mismatched-interner cache saw traffic: %+v", st)
	}
}

// Concurrent extractors sharing one cache must agree with a serial
// uncached run (exercised with -race in CI).
func TestBlockCacheConcurrent(t *testing.T) {
	procs, opt := recoverProcs(t, uir.ArchARM32)
	it := newLockedInterner()
	serial := NewExtractor(opt, it, nil)
	wantH := make([][]uint64, len(procs))
	wantM := make([][]uint32, len(procs))
	for i, p := range procs {
		s, m := serial.Proc(p.Blocks)
		wantH[i], wantM[i] = s.Hashes, m
	}
	cache := NewBlockCache(it)
	const workers = 8
	got := make([][]Set, workers)
	gotM := make([][][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := NewExtractor(opt, it, cache)
			got[w] = make([]Set, len(procs))
			gotM[w] = make([][]uint32, len(procs))
			for i, p := range procs {
				got[w][i], gotM[w][i] = ex.Proc(p.Blocks)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := range procs {
			if !reflect.DeepEqual(got[w][i].Hashes, wantH[i]) {
				t.Fatalf("worker %d proc %d: hashes diverged", w, i)
			}
			if !sameU32(gotM[w][i], wantM[i]) {
				t.Fatalf("worker %d proc %d: markers diverged", w, i)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("concurrent replay produced no hits: %+v", st)
	}
}
