// Package obj implements FWELF, the executable container format of this
// reproduction (standing in for ELF). It supports the phenomena the paper
// deals with in the wild: stripped symbol tables (with exported symbols
// optionally retained, as in shared libraries), multiple sections, and
// deliberately corrupted headers — firmware images frequently carry a
// wrong class byte, which readers must tolerate (cf. MIPS64 executables
// shipped with ELFCLASS32 headers).
package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"firmup/internal/isa"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// Magic identifies an FWELF file.
var Magic = [4]byte{'F', 'E', 'L', 'F'}

// SectionKind classifies sections.
type SectionKind uint8

// Section kinds.
const (
	SecText SectionKind = 1
	SecData SectionKind = 2
)

// Section is a loadable address range.
type Section struct {
	Name string
	Addr uint32
	Kind SectionKind
	Data []byte
}

// SymKind classifies symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc   SymKind = 1
	SymObject SymKind = 2
)

// Symbol names an address range. Exported symbols survive stripping, the
// way dynamic symbols do in real libraries; the paper's second labeled
// group ("exported procedures ... can be easily located even when the
// executable is stripped") relies on this.
type Symbol struct {
	Name     string
	Addr     uint32
	Size     uint32
	Kind     SymKind
	Exported bool
}

// File is a parsed or constructed FWELF executable.
type File struct {
	Arch     uir.Arch
	Entry    uint32
	Sections []Section
	Syms     []Symbol
	// Stripped records whether the local (non-exported) symbols were
	// removed.
	Stripped bool
	// BadClass reproduces the wrong-ELFCLASS quirk: the header class
	// byte claims a 64-bit file. Readers tolerate it and flag it here.
	BadClass bool
}

// FromArtifact wraps a code-generation artifact into a file, with every
// procedure and global as a named symbol.
func FromArtifact(art *isa.Artifact) *File {
	f := &File{
		Arch:  art.Arch,
		Entry: art.TextBase,
		Sections: []Section{
			{Name: ".text", Addr: art.TextBase, Kind: SecText, Data: append([]byte(nil), art.Text...)},
			{Name: ".data", Addr: art.DataBase, Kind: SecData, Data: append([]byte(nil), art.Data...)},
		},
	}
	for _, p := range art.Procs {
		f.Syms = append(f.Syms, Symbol{Name: p.Name, Addr: p.Addr, Size: p.Size, Kind: SymFunc})
	}
	for _, g := range art.Globals {
		f.Syms = append(f.Syms, Symbol{Name: g.Name, Addr: g.Addr, Size: g.Size, Kind: SymObject})
	}
	return f
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Text returns the text section, or nil.
func (f *File) Text() *Section {
	for i := range f.Sections {
		if f.Sections[i].Kind == SecText {
			return &f.Sections[i]
		}
	}
	return nil
}

// FuncSym returns the function symbol covering addr, if any.
func (f *File) FuncSym(addr uint32) (Symbol, bool) {
	for _, s := range f.Syms {
		if s.Kind == SymFunc && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// NamedSym returns the symbol with the given name, if any.
func (f *File) NamedSym(name string) (Symbol, bool) {
	for _, s := range f.Syms {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Strip removes local symbols; exported symbols are retained, matching
// how stripping treats a dynamic symbol table.
func (f *File) Strip() {
	var kept []Symbol
	for _, s := range f.Syms {
		if s.Exported {
			kept = append(kept, s)
		}
	}
	f.Syms = kept
	f.Stripped = true
}

// MarkExported flags the named symbols as exported (surviving Strip).
func (f *File) MarkExported(names ...string) {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for i := range f.Syms {
		if set[f.Syms[i].Name] {
			f.Syms[i].Exported = true
		}
	}
}

// SectionMap gives the canonicalizer the address ranges it needs for
// offset elimination.
type SectionMap struct {
	TextLo, TextHi uint32
	DataLo, DataHi uint32
}

// Map computes the section map.
func (f *File) Map() SectionMap {
	var m SectionMap
	for _, s := range f.Sections {
		lo := s.Addr
		hi := s.Addr + uint32(len(s.Data))
		switch s.Kind {
		case SecText:
			m.TextLo, m.TextHi = lo, hi
		case SecData:
			m.DataLo, m.DataHi = lo, hi
		}
	}
	return m
}

// Header layout constants.
const (
	classOK      = 1
	classBad     = 2
	flagStripped = 1 << 0
)

// WriteTo serializes the file. It implements io.WriterTo.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	class := byte(classOK)
	if f.BadClass {
		class = classBad
	}
	flags := uint16(0)
	if f.Stripped {
		flags |= flagStripped
	}
	buf.WriteByte(1) // version
	buf.WriteByte(class)
	buf.WriteByte(byte(f.Arch))
	buf.WriteByte(0) // pad
	le := binary.LittleEndian
	var tmp [4]byte
	w32 := func(v uint32) { le.PutUint32(tmp[:], v); buf.Write(tmp[:]) }
	w16 := func(v uint16) { le.PutUint16(tmp[:2], v); buf.Write(tmp[:2]) }
	wstr := func(s string) { w16(uint16(len(s))); buf.WriteString(s) }
	w32(f.Entry)
	w16(flags)
	w16(uint16(len(f.Sections)))
	w32(uint32(len(f.Syms)))
	for _, s := range f.Sections {
		wstr(s.Name)
		w32(s.Addr)
		buf.WriteByte(byte(s.Kind))
		w32(uint32(len(s.Data)))
		buf.Write(s.Data)
	}
	for _, s := range f.Syms {
		wstr(s.Name)
		w32(s.Addr)
		w32(s.Size)
		kind := byte(s.Kind)
		if s.Exported {
			kind |= 0x80
		}
		buf.WriteByte(kind)
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Bytes serializes the file to memory.
func (f *File) Bytes() []byte {
	var buf bytes.Buffer
	_, _ = f.WriteTo(&buf) // writing to a bytes.Buffer cannot fail
	return buf.Bytes()
}

// Telemetry is the optional handle set object parsing records against;
// a nil pointer (and any nil field) disables the corresponding metric.
type Telemetry struct {
	// Parse times each Read call (count + wall ns).
	Parse *telemetry.Stage
	// Bytes counts input bytes parsed.
	Bytes *telemetry.Counter
	// BadClass counts files read despite a corrupted class byte.
	BadClass *telemetry.Counter
}

// ReadWith is Read recording into tel. The parse itself is identical.
func ReadWith(data []byte, tel *Telemetry) (*File, error) {
	if tel == nil {
		return Read(data)
	}
	sp := tel.Parse.Start()
	f, err := Read(data)
	sp.End()
	if err == nil {
		tel.Bytes.Add(int64(len(data)))
		if f.BadClass {
			tel.BadClass.Inc()
		}
	}
	return f, err
}

// Read parses an FWELF file. A wrong class byte is tolerated and
// reported through File.BadClass rather than rejected, mirroring how the
// paper's pipeline had to cope with mislabeled ELF headers.
func Read(data []byte) (*File, error) {
	r := &reader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != Magic {
		return nil, fmt.Errorf("obj: bad magic %q", magic[:])
	}
	version := r.u8()
	if version != 1 {
		return nil, fmt.Errorf("obj: unsupported version %d", version)
	}
	class := r.u8()
	f := &File{}
	switch class {
	case classOK:
	case classBad:
		f.BadClass = true
	default:
		return nil, fmt.Errorf("obj: invalid class %d", class)
	}
	f.Arch = uir.Arch(r.u8())
	r.u8() // pad
	f.Entry = r.u32()
	flags := r.u16()
	f.Stripped = flags&flagStripped != 0
	nsec := int(r.u16())
	nsym := int(r.u32())
	if nsec > 64 {
		return nil, fmt.Errorf("obj: implausible section count %d", nsec)
	}
	if nsym > 1<<20 {
		return nil, fmt.Errorf("obj: implausible symbol count %d", nsym)
	}
	for i := 0; i < nsec && r.err == nil; i++ {
		var s Section
		s.Name = r.str()
		s.Addr = r.u32()
		s.Kind = SectionKind(r.u8())
		n := int(r.u32())
		if r.err == nil && (n < 0 || r.off+n > len(r.data)) {
			return nil, fmt.Errorf("obj: section %q size %d overruns file", s.Name, n)
		}
		s.Data = make([]byte, n)
		r.bytes(s.Data)
		f.Sections = append(f.Sections, s)
	}
	for i := 0; i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Addr = r.u32()
		s.Size = r.u32()
		kind := r.u8()
		s.Exported = kind&0x80 != 0
		s.Kind = SymKind(kind & 0x7F)
		f.Syms = append(f.Syms, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.data) {
		r.err = fmt.Errorf("obj: truncated file at offset %d", r.off)
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

func (r *reader) u8() byte {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *reader) u16() uint16 {
	var b [2]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	if n > 4096 {
		r.err = fmt.Errorf("obj: implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}
