package obj

import (
	"bytes"
	"testing"
	"testing/quick"

	"firmup/internal/uir"
)

func sampleFile() *File {
	return &File{
		Arch:  uir.ArchMIPS32,
		Entry: 0x400000,
		Sections: []Section{
			{Name: ".text", Addr: 0x400000, Kind: SecText, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: ".data", Addr: 0x401000, Kind: SecData, Data: []byte{9, 10}},
		},
		Syms: []Symbol{
			{Name: "main", Addr: 0x400000, Size: 4, Kind: SymFunc},
			{Name: "curl_easy_unescape", Addr: 0x400004, Size: 4, Kind: SymFunc, Exported: true},
			{Name: "gbl", Addr: 0x401000, Size: 2, Kind: SymObject},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	data := f.Bytes()
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Arch != f.Arch || g.Entry != f.Entry {
		t.Errorf("header mismatch: %+v", g)
	}
	if len(g.Sections) != 2 || g.Sections[0].Name != ".text" || !bytes.Equal(g.Sections[0].Data, f.Sections[0].Data) {
		t.Errorf("sections mismatch: %+v", g.Sections)
	}
	if len(g.Syms) != 3 || g.Syms[1].Name != "curl_easy_unescape" || !g.Syms[1].Exported {
		t.Errorf("symbols mismatch: %+v", g.Syms)
	}
}

func TestStripKeepsExported(t *testing.T) {
	f := sampleFile()
	f.Strip()
	if !f.Stripped {
		t.Error("Stripped flag unset")
	}
	if len(f.Syms) != 1 || f.Syms[0].Name != "curl_easy_unescape" {
		t.Errorf("strip kept %+v, want only the exported symbol", f.Syms)
	}
	// Round-trip preserves the stripped flag.
	g, err := Read(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Stripped || len(g.Syms) != 1 {
		t.Errorf("after round trip: stripped=%v syms=%v", g.Stripped, g.Syms)
	}
}

func TestMarkExported(t *testing.T) {
	f := sampleFile()
	f.MarkExported("main")
	f.Strip()
	if len(f.Syms) != 2 {
		t.Errorf("syms = %+v", f.Syms)
	}
}

func TestBadClassTolerated(t *testing.T) {
	f := sampleFile()
	f.BadClass = true
	g, err := Read(f.Bytes())
	if err != nil {
		t.Fatalf("wrong class byte must be tolerated: %v", err)
	}
	if !g.BadClass {
		t.Error("BadClass not reported")
	}
}

func TestRejectGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("FELF"),
		[]byte("ELF\x7f junk here"),
		bytes.Repeat([]byte{0xFF}, 64),
	}
	for _, c := range cases {
		if _, err := Read(c); err == nil {
			t.Errorf("Read(%q) unexpectedly succeeded", c)
		}
	}
}

// Property: Read never panics on arbitrary mutations of a valid file and
// either errors or returns a structurally valid result.
func TestReadRobustness(t *testing.T) {
	base := sampleFile().Bytes()
	f := func(pos uint16, val byte) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		g, err := Read(data)
		if err != nil {
			return true
		}
		// On success the sections must be in-bounds copies.
		for _, s := range g.Sections {
			if len(s.Data) > len(data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLookupHelpers(t *testing.T) {
	f := sampleFile()
	if s := f.Section(".data"); s == nil || s.Addr != 0x401000 {
		t.Error("Section lookup")
	}
	if f.Text() == nil || f.Text().Name != ".text" {
		t.Error("Text lookup")
	}
	if sym, ok := f.FuncSym(0x400006); !ok || sym.Name != "curl_easy_unescape" {
		t.Errorf("FuncSym = %v %v", sym, ok)
	}
	if _, ok := f.FuncSym(0x500000); ok {
		t.Error("FuncSym out of range")
	}
	if sym, ok := f.NamedSym("gbl"); !ok || sym.Kind != SymObject {
		t.Errorf("NamedSym = %v %v", sym, ok)
	}
	m := f.Map()
	if m.TextLo != 0x400000 || m.TextHi != 0x400008 || m.DataLo != 0x401000 || m.DataHi != 0x401002 {
		t.Errorf("Map = %+v", m)
	}
}
