// Package serve implements the firmupd query service over a sealed
// corpus: an HTTP handler set that analyzes uploaded query executables
// against the corpus and returns findings JSON, with per-request worker
// budgets, admission control (bounded in-flight searches, 429 +
// Retry-After on overload) and graceful corpus hot-swap.
//
// Concurrency model: the sealed corpus is immutable, so request
// handlers share it with no locks. The only cross-request coordination
// is the admission semaphore (a buffered channel) and the atomic corpus
// pointer; a swap installs the new corpus for subsequent requests while
// every in-flight request keeps the pointer it loaded at admission, so
// no request ever observes a half-swapped corpus or is dropped by a
// swap.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/telemetry"
)

// SchemaVersion identifies the /search response layout. Bumped on any
// incompatible change.
const SchemaVersion = 1

// TraceHeader is the request/response header carrying the request's
// trace ID (16 lowercase hex digits). A request that sends one is
// always traced under that ID; otherwise Config.TraceSample decides,
// and the server mints the ID. Traced responses echo the ID in this
// header and in the trace_id response field.
const TraceHeader = "X-Firmup-Trace"

// Corpus is one loaded sealed corpus with its serving identity.
type Corpus struct {
	// Name labels the corpus in responses (typically the artifact path).
	Name string
	// Sealed is the corpus itself.
	Sealed *firmup.SealedCorpus
	// LoadedAt records when the corpus was installed.
	LoadedAt time.Time
}

// Config tunes a Server. The zero value selects the defaults.
type Config struct {
	// MaxInFlight bounds concurrently admitted /search requests; further
	// requests are rejected with 429 + Retry-After (default
	// 2×GOMAXPROCS).
	MaxInFlight int
	// RetryAfter is the Retry-After hint attached to 429 responses, in
	// seconds (default 1).
	RetryAfter int
	// QueryWorkers is the per-request worker budget for analyzing the
	// uploaded query executable (default GOMAXPROCS). One request never
	// gets more than this many analysis goroutines.
	QueryWorkers int
	// SearchWorkers is the per-request worker budget for the game search
	// (default GOMAXPROCS).
	SearchWorkers int
	// MaxQueryBytes bounds the accepted /search body (default 64 MiB).
	MaxQueryBytes int64
	// Approx selects the approximate LSH candidate tier as the default
	// probe mode for /search requests (firmup.Options.Approx). A request
	// overrides it with the approx=0/1 query parameter. Corpora without
	// signature slabs serve exact searches regardless.
	Approx bool
	// BatchWindow, when positive, coalesces concurrent /search requests:
	// the first request for a (corpus, image, options) key waits this
	// long collecting followers, then runs all collected queries in one
	// batched game-engine pass (SealedCorpus.SearchBatch), which shares
	// matcher caches across queries. Each request still holds its own
	// admission slot while batched, so MaxInFlight/429 semantics are
	// unchanged. Zero (the default) disables coalescing.
	BatchWindow time.Duration
	// Registry, when non-nil, receives the server's request metrics:
	// serve.requests, serve.rejected, serve.inflight, serve.swaps, the
	// serve.latency_us histogram (whose Report quantiles are the p50/p99
	// the load benchmark records), per-endpoint serve.req.* counters,
	// the serve.uptime_s / serve.corpus_age_s gauges, and — under
	// BatchWindow — the serve.batches counter and serve.batch_size
	// histogram. GET /metrics serves it as JSON, or as Prometheus text
	// exposition with ?format=prom.
	Registry *telemetry.Registry
	// TraceSample controls head sampling for requests that do not carry
	// a TraceHeader: 0 (the default) traces header-carrying requests
	// only, 1 traces every request, N > 1 every Nth. Tracing records a
	// pooled span tree per sampled request (serve stages, shard
	// fan-out, core search) served from GET /debug/requests; unsampled
	// requests pay one nil check per span site.
	TraceSample int
	// TraceSlow is the latency at or above which a completed trace is
	// always retained for /debug/requests, regardless of how it ranks
	// among the slowest (default 500ms; negative disables the
	// threshold ring).
	TraceSlow time.Duration
	// TraceKeep is how many slowest traces /debug/requests retains
	// (default 16).
	TraceKeep int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request: method, path, status, bytes, elapsed_ms, and the trace
	// ID when the request was traced.
	AccessLog *telemetry.Logger
}

func (c *Config) maxInFlight() int {
	if c == nil || c.MaxInFlight <= 0 {
		return 2 * runtime.GOMAXPROCS(0)
	}
	return c.MaxInFlight
}

func (c *Config) retryAfter() int {
	if c == nil || c.RetryAfter <= 0 {
		return 1
	}
	return c.RetryAfter
}

func (c *Config) maxQueryBytes() int64 {
	if c == nil || c.MaxQueryBytes <= 0 {
		return 64 << 20
	}
	return c.MaxQueryBytes
}

func (c *Config) traceSlow() time.Duration {
	if c == nil || c.TraceSlow == 0 {
		return 500 * time.Millisecond
	}
	if c.TraceSlow < 0 {
		return 0
	}
	return c.TraceSlow
}

func (c *Config) traceKeep() int {
	if c == nil || c.TraceKeep <= 0 {
		return 16
	}
	return c.TraceKeep
}

// Server serves CVE-search queries against a hot-swappable sealed
// corpus. Create with New, install handlers via Handler, swap corpora
// at runtime with Swap.
type Server struct {
	cfg    Config
	corpus atomic.Pointer[Corpus]
	// sem is the admission semaphore: a slot must be acquired before any
	// per-request work (body read, analysis, search) begins.
	sem chan struct{}

	// batchMu guards pending, the open coalescing groups keyed by
	// (corpus, image, options). The first request to open a key is the
	// group's leader: it sleeps out the batch window, removes the group,
	// and runs one batched pass for every request that joined meanwhile.
	batchMu sync.Mutex
	pending map[batchKey]*batchGroup

	// traceBuf tail-samples completed request traces: the slowest
	// TraceKeep plus everything at or over TraceSlow, for
	// /debug/requests.
	traceBuf *telemetry.TraceBuffer
	// traceSeq drives every-Nth head sampling when TraceSample > 1.
	traceSeq atomic.Uint64
	// start is the server's construction time, for serve.uptime_s and
	// /healthz.
	start time.Time

	reqs      *telemetry.Counter
	rejected  *telemetry.Counter
	swaps     *telemetry.Counter
	inflight  *telemetry.Gauge
	latency   *telemetry.Histogram
	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
	// endpoints maps route paths to their serve.req.* counters;
	// reqOther counts everything unrouted.
	endpoints map[string]*telemetry.Counter
	reqOther  *telemetry.Counter
}

// batchKey identifies searches that may share one batched pass: same
// installed corpus, same image scope, same search options. firmup's
// Options is all scalar fields, so the struct is a valid map key. The
// trace fields are zeroed before keying (see searchCoalesced): tracing
// is observational and must never split otherwise-identical requests
// into separate batches.
type batchKey struct {
	corpus *Corpus
	image  int
	opt    firmup.Options
}

// batchGroup is one open coalescing group; entries joined during the
// leader's window.
type batchGroup struct {
	entries []*batchEntry
}

// batchEntry is one request's seat in a group.
type batchEntry struct {
	query *firmup.Executable
	proc  string
	done  chan batchResult
}

type batchResult struct {
	images []firmup.ImageFindings
	err    error
	// size is the group's entry count and leader the trace ID the
	// shared pass ran under (0 when the leader was untraced) — span
	// attributes for every traced member of the group.
	size   int
	leader telemetry.TraceID
}

// New creates a server over an initial corpus (which may be nil; /search
// then answers 503 until the first Swap).
func New(initial *Corpus, cfg *Config) *Server {
	s := &Server{}
	if cfg != nil {
		s.cfg = *cfg
	}
	s.sem = make(chan struct{}, s.cfg.maxInFlight())
	s.pending = map[batchKey]*batchGroup{}
	s.start = time.Now()
	s.traceBuf = telemetry.NewTraceBuffer(s.cfg.traceKeep(), s.cfg.traceSlow(), 0)
	if r := s.cfg.Registry; r != nil {
		s.reqs = r.Counter("serve.requests")
		s.rejected = r.Counter("serve.rejected")
		s.swaps = r.Counter("serve.swaps")
		s.inflight = r.Gauge("serve.inflight")
		s.latency = r.Histogram("serve.latency_us")
		s.batches = r.Counter("serve.batches")
		s.batchSize = r.Histogram("serve.batch_size")
		s.endpoints = map[string]*telemetry.Counter{
			"/search":         r.Counter("serve.req.search"),
			"/healthz":        r.Counter("serve.req.healthz"),
			"/corpus":         r.Counter("serve.req.corpus"),
			"/metrics":        r.Counter("serve.req.metrics"),
			"/debug/requests": r.Counter("serve.req.debug_requests"),
		}
		s.reqOther = r.Counter("serve.req.other")
		start := s.start
		r.GaugeFunc("serve.uptime_s", func() int64 {
			return int64(time.Since(start).Seconds())
		})
		r.GaugeFunc("serve.corpus_age_s", func() int64 {
			cs := s.corpus.Load()
			if cs == nil {
				return -1
			}
			return int64(time.Since(cs.LoadedAt).Seconds())
		})
	}
	if initial != nil {
		s.corpus.Store(initial)
	}
	return s
}

// Swap atomically installs a new corpus. In-flight requests finish
// against the corpus they were admitted under; subsequent requests see
// the new one. The previous corpus is returned so the caller can log or
// release it.
func (s *Server) Swap(next *Corpus) *Corpus {
	prev := s.corpus.Swap(next)
	s.swaps.Inc()
	return prev
}

// Current returns the currently installed corpus, or nil.
func (s *Server) Current() *Corpus { return s.corpus.Load() }

// Handler returns the server's HTTP routes:
//
//	POST /search?proc=NAME[&image=N]  query executable in the body → findings JSON
//	GET  /healthz           liveness + build identity JSON
//	GET  /corpus            installed-corpus summary
//	GET  /metrics           telemetry snapshot JSON (?format=prom for Prometheus)
//	GET  /debug/requests    tail-sampled slow-request traces
//
// Every route runs under the instrumentation middleware: per-endpoint
// request counters plus, when Config.AccessLog is set, one structured
// log line per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/corpus", s.handleCorpus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	return s.instrument(mux)
}

// statusWriter captures the response status and body size for the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// instrument wraps the route mux with the cross-cutting request
// observability: per-endpoint counters and the structured access log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if c, ok := s.endpoints[r.URL.Path]; ok {
			c.Inc()
		} else {
			s.reqOther.Inc()
		}
		if lg := s.cfg.AccessLog; lg.Enabled(telemetry.LevelInfo) {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			fields := []telemetry.Field{
				telemetry.String("method", r.Method),
				telemetry.String("path", r.URL.Path),
				telemetry.Int("status", int64(status)),
				telemetry.Int("bytes", sw.bytes),
				telemetry.F64("elapsed_ms", float64(time.Since(t0))/float64(time.Millisecond)),
			}
			if tid := sw.Header().Get(TraceHeader); tid != "" {
				fields = append(fields, telemetry.String("trace", tid))
			}
			lg.Info("request", fields...)
		}
	})
}

// SearchResponse is the /search response schema.
type SearchResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Corpus        string `json:"corpus"`
	Procedure     string `json:"procedure"`
	// QueryStrands is the query procedure's strand-set size — the
	// denominator behind every finding's confidence.
	QueryStrands int `json:"query_strands"`
	// Images holds one entry per corpus image, in corpus order.
	Images []firmup.ImageFindings `json:"images"`
	// TotalFindings sums findings across images.
	TotalFindings int `json:"total_findings"`
	// ElapsedMS is the server-side request latency in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID echoes the request's trace ID when the request was traced
	// (the same value the TraceHeader response header carries).
	TraceID string `json:"trace_id,omitempty"`
}

// errorResponse is the JSON error envelope on every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a query executable to /search")
		return
	}
	// Admission control: bounded in-flight searches. Reject before any
	// expensive work so an overloaded server sheds load in microseconds.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d in-flight searches); retry later", s.cfg.maxInFlight())
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.reqs.Inc()
	t0 := time.Now()

	// Request-scoped tracing: sampled requests carry a pooled span tree
	// down through the search layers. The trace header goes out before
	// any body write, and the deferred Offer covers every return path —
	// error responses are traced too.
	tr, traceID := s.sampleTrace(r)
	var root telemetry.SpanRef
	if tr != nil {
		w.Header().Set(TraceHeader, traceID.String())
		root = tr.Start("request", 0)
		root.SetAttrStr("endpoint", "/search")
		defer func() {
			root.End()
			s.traceBuf.Offer(tr, time.Since(t0))
		}()
	}

	cs := s.corpus.Load()
	if cs == nil {
		writeError(w, http.StatusServiceUnavailable, "no corpus loaded")
		return
	}
	proc := r.URL.Query().Get("proc")
	if proc == "" {
		writeError(w, http.StatusBadRequest, "missing required query parameter: proc")
		return
	}
	opt, err := searchOptions(r, &s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	image, err := imageParam(r, cs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rsp := tr.Start("read_body", root.ID())
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxQueryBytes()))
	rsp.SetAttr("bytes", int64(len(body)))
	rsp.End()
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading query executable: %v", err)
		return
	}
	asp := tr.Start("analyze_query", root.ID())
	query, err := cs.Sealed.AnalyzeQueryWith("query", body, s.cfg.QueryWorkers)
	asp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "analyzing query executable: %v", err)
		return
	}
	ssp := tr.Start("search", root.ID())
	if opt != nil {
		opt.Trace = tr
		opt.TraceSpan = ssp.ID()
	}
	var images []firmup.ImageFindings
	if s.cfg.BatchWindow > 0 {
		// Pre-validate the procedure name so a bad request gets its own
		// 400 instead of failing the whole coalesced batch.
		if queryProcIndex(query, proc) < 0 {
			ssp.End()
			writeError(w, http.StatusBadRequest, "firmup: query executable has no procedure %q", proc)
			return
		}
		images, err = s.searchCoalesced(cs, image, query, proc, opt)
	} else {
		images, err = searchImages(cs, image, query, proc, opt)
	}
	ssp.End()
	if err != nil {
		// The only search error is an unknown procedure name.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := &SearchResponse{
		SchemaVersion: SchemaVersion,
		Corpus:        cs.Name,
		Procedure:     proc,
		Images:        images,
	}
	if tr != nil {
		resp.TraceID = traceID.String()
	}
	for i := range images {
		if images[i].Findings == nil {
			images[i].Findings = []firmup.Finding{}
		}
		resp.TotalFindings += len(images[i].Findings)
	}
	if qi := queryProcIndex(query, proc); qi >= 0 {
		resp.QueryStrands = query.Procedures()[qi].Strands
	}
	elapsed := time.Since(t0)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	s.latency.Observe(elapsed.Microseconds())
	writeJSON(w, http.StatusOK, resp)
}

// sampleTrace decides whether this request is traced and under which
// ID. A well-formed caller-provided TraceHeader ID always wins and
// forces sampling; otherwise TraceSample picks (0 = header-only,
// 1 = all, N = every Nth) and the server mints the ID.
func (s *Server) sampleTrace(r *http.Request) (*telemetry.Trace, telemetry.TraceID) {
	if hv := r.Header.Get(TraceHeader); hv != "" {
		if id, ok := telemetry.ParseTraceID(hv); ok {
			return telemetry.NewTrace(id), id
		}
	}
	n := s.cfg.TraceSample
	switch {
	case n <= 0:
		return nil, 0
	case n == 1:
	default:
		if s.traceSeq.Add(1)%uint64(n) != 0 {
			return nil, 0
		}
	}
	id := telemetry.NewTraceID()
	return telemetry.NewTrace(id), id
}

// imageParam parses the optional image query parameter: an index into
// the corpus's Images(), or -1 (absent) for a corpus-wide search.
func imageParam(r *http.Request, cs *Corpus) (int, error) {
	v := r.URL.Query().Get("image")
	if v == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n >= len(cs.Sealed.Images()) {
		return 0, fmt.Errorf("bad image %q (corpus has %d images)", v, len(cs.Sealed.Images()))
	}
	return n, nil
}

// searchImages is the uncoalesced search: the whole corpus, or a single
// image when image >= 0.
func searchImages(cs *Corpus, image int, query *firmup.Executable, proc string, opt *firmup.Options) ([]firmup.ImageFindings, error) {
	if image < 0 {
		return cs.Sealed.SearchAll(query, proc, opt)
	}
	img := cs.Sealed.Images()[image]
	res, err := cs.Sealed.SearchImageDetailed(query, proc, img, opt)
	if err != nil {
		return nil, err
	}
	return []firmup.ImageFindings{imageFindings(img, res.Findings, res.Examined)}, nil
}

func imageFindings(img *firmup.SealedImage, findings []firmup.Finding, examined int) firmup.ImageFindings {
	return firmup.ImageFindings{
		Vendor:   img.Vendor,
		Device:   img.Device,
		Version:  img.Version,
		Findings: findings,
		Examined: examined,
	}
}

// searchCoalesced joins (or opens) the coalescing group for this
// request's batch key and returns this request's share of the group's
// single batched pass. The leader — the request that opened the group —
// sleeps out the batch window, then runs every joined query through
// SealedCorpus.SearchBatch/SearchAllBatch; followers just wait on their
// result channel. Batched results are byte-identical to the sequential
// path (the core batch equivalence suites pin this), so coalescing is
// invisible in responses.
func (s *Server) searchCoalesced(cs *Corpus, image int, query *firmup.Executable, proc string, opt *firmup.Options) ([]firmup.ImageFindings, error) {
	e := &batchEntry{query: query, proc: proc, done: make(chan batchResult, 1)}
	// Zero the trace fields in the key: requests that differ only in
	// tracing still coalesce (and each keeps its own trace ID — only
	// the leader's trace sees the shared pass's inner spans).
	ko := *opt
	ko.Trace, ko.TraceSpan = nil, 0
	key := batchKey{corpus: cs, image: image, opt: ko}
	csp := opt.Trace.Start("serve.coalesce", opt.TraceSpan)
	s.batchMu.Lock()
	g, ok := s.pending[key]
	if !ok {
		g = &batchGroup{}
		s.pending[key] = g
	}
	g.entries = append(g.entries, e)
	s.batchMu.Unlock()
	if !ok {
		time.Sleep(s.cfg.BatchWindow)
		s.batchMu.Lock()
		delete(s.pending, key)
		entries := g.entries
		s.batchMu.Unlock()
		// The shared pass runs under the leader's coalesce span, so the
		// leader's trace attributes the whole batch's latency.
		lo := *opt
		if csp.Active() {
			lo.TraceSpan = csp.ID()
		}
		s.runBatch(cs, image, entries, &lo)
	}
	res := <-e.done
	if csp.Active() {
		csp.SetAttr("batch_size", int64(res.size))
		if res.leader != 0 && res.leader != opt.Trace.ID() {
			csp.SetAttrStr("leader_trace", res.leader.String())
		}
	}
	csp.End()
	return res.images, res.err
}

// runBatch executes one coalesced group and fans results back out to
// its entries.
func (s *Server) runBatch(cs *Corpus, image int, entries []*batchEntry, opt *firmup.Options) {
	s.batches.Inc()
	s.batchSize.Observe(int64(len(entries)))
	size := len(entries)
	leader := opt.Trace.ID()
	queries := make([]firmup.BatchQuery, len(entries))
	for i, e := range entries {
		queries[i] = firmup.BatchQuery{Query: e.query, Procedure: e.proc}
	}
	if image < 0 {
		res, err := cs.Sealed.SearchAllBatch(queries, opt)
		for i, e := range entries {
			if err != nil {
				e.done <- batchResult{err: err, size: size, leader: leader}
			} else {
				e.done <- batchResult{images: res[i], size: size, leader: leader}
			}
		}
		return
	}
	img := cs.Sealed.Images()[image]
	res, err := cs.Sealed.SearchBatch(queries, img, opt)
	for i, e := range entries {
		if err != nil {
			e.done <- batchResult{err: err, size: size, leader: leader}
		} else {
			e.done <- batchResult{images: []firmup.ImageFindings{imageFindings(img, res[i].Findings, res[i].Examined)}, size: size, leader: leader}
		}
	}
}

// queryProcIndex finds the query procedure's index by name.
func queryProcIndex(query *firmup.Executable, proc string) int {
	for i, p := range query.Procedures() {
		if p.Name == proc {
			return i
		}
	}
	return -1
}

// searchOptions builds the per-request search options from the URL
// parameters, bounded by the server's worker budget.
func searchOptions(r *http.Request, cfg *Config) (*firmup.Options, error) {
	opt := &firmup.Options{Workers: cfg.SearchWorkers, Approx: cfg.Approx}
	q := r.URL.Query()
	if v := q.Get("approx"); v != "" {
		switch v {
		case "1", "true":
			opt.Approx = true
		case "0", "false":
			opt.Approx = false
		default:
			return nil, fmt.Errorf("bad approx %q", v)
		}
	}
	if v := q.Get("min_score"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad min_score %q", v)
		}
		opt.MinScore = n
	}
	if v := q.Get("min_ratio"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad min_ratio %q", v)
		}
		opt.MinRatio = f
	}
	if v := q.Get("exhaustive"); v == "1" || v == "true" {
		opt.Exhaustive = true
	}
	return opt, nil
}

// HealthInfo is the /healthz response schema: liveness plus the build
// identity, so a deployed daemon can always be matched back to the
// commit it was built from.
type HealthInfo struct {
	Status    string  `json:"status"`
	Revision  string  `json:"revision"`
	GoVersion string  `json:"go_version"`
	UptimeS   float64 `json:"uptime_s"`
	Corpus    string  `json:"corpus,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	info := HealthInfo{
		Status:    "ok",
		Revision:  buildinfo.Revision(),
		GoVersion: buildinfo.GoVersion(),
		UptimeS:   time.Since(s.start).Seconds(),
	}
	if cs := s.corpus.Load(); cs != nil {
		info.Corpus = cs.Name
	}
	writeJSON(w, http.StatusOK, info)
}

// CorpusInfo is the /corpus response schema. Shards is present only
// when the serving corpus is backed by FWCORP v2 shard files.
type CorpusInfo struct {
	Name          string               `json:"name"`
	Images        int                  `json:"images"`
	Executables   int                  `json:"executables"`
	UniqueStrands int                  `json:"unique_strands"`
	LoadedAt      string               `json:"loaded_at"`
	Swaps         int64                `json:"swaps"`
	Shards        []firmup.SealedShard `json:"shards,omitempty"`
}

func (s *Server) handleCorpus(w http.ResponseWriter, _ *http.Request) {
	cs := s.corpus.Load()
	if cs == nil {
		writeError(w, http.StatusServiceUnavailable, "no corpus loaded")
		return
	}
	writeJSON(w, http.StatusOK, CorpusInfo{
		Name:          cs.Name,
		Images:        len(cs.Sealed.Images()),
		Executables:   cs.Sealed.Executables(),
		UniqueStrands: cs.Sealed.UniqueStrands(),
		LoadedAt:      cs.LoadedAt.UTC().Format(time.RFC3339),
		Swaps:         s.swaps.Value(),
		Shards:        cs.Sealed.Shards(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WritePrometheus(w, s.cfg.Registry)
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Registry.Snapshot())
}

// handleDebugRequests serves the tail-sampling buffer: the slowest
// retained traces plus the recent over-threshold ring, as full span
// trees with per-shard latency attribution.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.traceBuf.Snapshot())
}
